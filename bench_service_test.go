package perftrack

// Service-layer benchmarks: what a submission costs when the pipeline
// actually runs (cold), when the content-addressed cache answers
// (cached), and how the daemon sustains a concurrent stream of distinct
// jobs through its worker pool and bounded queue. Recorded in
// BENCH_service.json.

import (
	"context"
	"testing"
	"time"

	"perftrack/internal/service"
)

// coldReq returns a synthetic-study request whose cache key is unique per
// i: MinCorrelation is perturbed far below any observable effect on the
// analysis but enough to change the fingerprint.
func coldReq(i int) service.JobRequest {
	return service.JobRequest{
		Study:  "Synthetic",
		Config: &service.ConfigSpec{MinCorrelation: 0.05 + float64(i+1)*1e-12},
	}
}

func newBench(b *testing.B, cfg service.Config) *service.Server {
	b.Helper()
	s, err := service.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func submitWait(b *testing.B, s *service.Server, req service.JobRequest) {
	b.Helper()
	j, _, err := s.Submit(req)
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Wait(ctx, j); err != nil {
		b.Fatal(err)
	}
	if _, state, errMsg := s.Result(j); state != service.StateDone {
		b.Fatalf("job state %s (%s)", state, errMsg)
	}
}

// BenchmarkServiceSubmitCold measures the end-to-end latency of a
// submission that misses the cache: queue wait, simulation, clustering,
// tracking and export.
func BenchmarkServiceSubmitCold(b *testing.B) {
	s := newBench(b, service.Config{Workers: 2, QueueDepth: 8, CacheMaxEntries: 4})
	defer s.Shutdown(context.Background())
	submitWait(b, s, coldReq(-1)) // warm code paths, not the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		submitWait(b, s, coldReq(i))
	}
}

// BenchmarkServiceSubmitCached measures the same submission when the
// result cache answers: resolve + fingerprint + lookup, no pipeline.
func BenchmarkServiceSubmitCached(b *testing.B) {
	s := newBench(b, service.Config{Workers: 2, QueueDepth: 8})
	defer s.Shutdown(context.Background())
	req := service.JobRequest{Study: "Synthetic"}
	submitWait(b, s, req) // populate the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		submitWait(b, s, req)
	}
}

// BenchmarkServiceSubmitColdJournaled is the cold path with the full
// durability stack enabled: every submission fsyncs a journal intent
// before its ack, and every completion lands in the perfdb store and
// resolves its intent. The delta against BenchmarkServiceSubmitCold is
// the price of crash-durability on a cache miss.
func BenchmarkServiceSubmitColdJournaled(b *testing.B) {
	s := newBench(b, service.Config{
		Workers: 2, QueueDepth: 8, CacheMaxEntries: 4,
		StoreDir: b.TempDir(),
	})
	defer s.Shutdown(context.Background())
	submitWait(b, s, coldReq(-1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		submitWait(b, s, coldReq(i))
	}
}

// BenchmarkServiceSubmitCachedJournaled is the cached path with the
// journal enabled: the hit is answered from the in-memory cache before
// any intent is written, so this should track BenchmarkServiceSubmitCached
// closely — it exists to prove the durability stack stays off the hot
// read path.
func BenchmarkServiceSubmitCachedJournaled(b *testing.B) {
	s := newBench(b, service.Config{
		Workers: 2, QueueDepth: 8,
		StoreDir: b.TempDir(),
	})
	defer s.Shutdown(context.Background())
	req := service.JobRequest{Study: "Synthetic"}
	submitWait(b, s, req) // populate the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		submitWait(b, s, req)
	}
}

// BenchmarkServiceThroughput streams b.N distinct jobs through the
// daemon's sized-for-production configuration (8 workers, 64-deep queue),
// honouring backpressure the way a polite client would, and reports
// sustained jobs per second.
func BenchmarkServiceThroughput(b *testing.B) {
	s := newBench(b, service.Config{Workers: 8, QueueDepth: 64, CacheMaxEntries: 16})
	defer s.Shutdown(context.Background())
	submitWait(b, s, coldReq(-1))
	b.ResetTimer()
	start := time.Now()

	jobs := make([]*service.Job, 0, b.N)
	for i := 0; i < b.N; i++ {
		for {
			j, _, err := s.Submit(coldReq(i))
			if err == service.ErrQueueFull {
				time.Sleep(time.Millisecond)
				continue
			}
			if err != nil {
				b.Fatal(err)
			}
			jobs = append(jobs, j)
			break
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	for i, j := range jobs {
		if err := s.Wait(ctx, j); err != nil {
			b.Fatal(err)
		}
		if _, state, errMsg := s.Result(j); state != service.StateDone {
			b.Fatalf("job %d state %s (%s)", i, state, errMsg)
		}
	}
	elapsed := time.Since(start)
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "jobs/s")
	if b.N >= 8 {
		b.Logf("throughput: %d jobs in %s (%.1f jobs/s)",
			b.N, elapsed.Round(time.Millisecond), float64(b.N)/elapsed.Seconds())
	}
}
