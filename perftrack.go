// Package perftrack applies object-tracking techniques to parallel
// application performance analysis, reproducing the SC'13 paper "On the
// usefulness of object tracking techniques in performance analysis"
// (Llort, Servat, Giménez, Labarta — Barcelona Supercomputing Center).
//
// The library converts burst-level performance traces of multiple
// experiments into a sequence of "images" of the performance space,
// detects objects (behavioural clusters of CPU bursts) in each image with
// density-based clustering, and tracks how those objects move, split and
// merge across the sequence using four cooperating heuristics:
// displacements in the performance space, SPMD simultaneity, call-stack
// references and the execution sequence. The result is a set of tracked
// regions whose per-metric trends explain how each part of the code reacts
// to changes in the execution conditions.
//
// Quick start:
//
//	study, _ := perftrack.CatalogStudy("WRF")
//	res, _ := perftrack.RunStudy(study)
//	for _, trend := range res.TopTrends(perftrack.IPC, 0.03) {
//	    fmt.Println(trend.RegionID, trend.Means())
//	}
//
// The subpackages under internal/ hold the substrates: trace model and
// codec, SPMD application simulator, machine model, DBSCAN clustering,
// sequence alignment, the tracking core, plotting and reporting.
package perftrack

import (
	"context"
	"fmt"
	"io"

	"perftrack/internal/apps"
	"perftrack/internal/core"
	"perftrack/internal/metrics"
	"perftrack/internal/mpisim"
	"perftrack/internal/profile"
	"perftrack/internal/trace"
)

// Re-exported types: the stable public surface of the library.
type (
	// Trace is a burst-level performance trace of one experiment.
	Trace = trace.Trace
	// Burst is one sequential computing region of one task.
	Burst = trace.Burst
	// CallstackRef locates the source code a burst executes.
	CallstackRef = trace.CallstackRef
	// Metric is one axis of the performance space.
	Metric = metrics.Metric
	// Config parametrises the tracking pipeline.
	Config = core.Config
	// Frame is one clustered image of the performance space.
	Frame = core.Frame
	// Result is the outcome of tracking a frame sequence.
	Result = core.Result
	// TrackedRegion is a region followed along the whole sequence.
	TrackedRegion = core.TrackedRegion
	// RegionTrend is the evolution of one metric for one region.
	RegionTrend = core.RegionTrend
	// Relation is one correspondence between consecutive frames.
	Relation = core.Relation
	// Diagnostics accounts for what the degraded-mode pipeline dropped
	// or bridged over (quarantined bursts, skipped lines, degraded and
	// bridged frames).
	Diagnostics = core.Diagnostics
	// DecodeOptions selects strict or lenient trace decoding.
	DecodeOptions = trace.DecodeOptions
	// DecodeDiagnostics reports the lines a lenient decode quarantined.
	DecodeDiagnostics = trace.DecodeDiagnostics
	// Study is a catalog entry describing a multi-experiment analysis.
	Study = apps.Study
	// Scenario fixes the execution conditions of one simulated run.
	Scenario = mpisim.Scenario
	// AppSpec is a synthetic application model for the simulator.
	AppSpec = mpisim.AppSpec
)

// Standard metrics, re-exported for convenience.
var (
	IPC          = metrics.IPC
	Instructions = metrics.Instructions
	Cycles       = metrics.Cycles
	DurationMS   = metrics.DurationMS
	L1DMisses    = metrics.L1DMisses
	L2DMisses    = metrics.L2DMisses
	TLBMisses    = metrics.TLBMisses
)

// CatalogStudy returns one of the built-in case studies reproducing the
// paper's Table 2 (names: "Gadget", "QuantumESPRESSO", "WRF", "Gromacs",
// "CGPOP", "NAS BT", "HydroC", "MR-Genesis", "NAS FT",
// "Gromacs-evolution").
func CatalogStudy(name string) (Study, error) { return apps.ByName(name) }

// CatalogStudies returns every built-in case study in Table 2 order.
func CatalogStudies() []Study { return apps.All() }

// SimulateStudy produces the trace sequence of a study: one trace per run,
// or — for single-run studies with Windows > 0 — one trace per time window
// of the single run (the paper's "evolution along time intervals within
// the same experiment" mode).
func SimulateStudy(st Study) ([]*Trace, error) {
	return SimulateStudyContext(context.Background(), st)
}

// Track runs the full pipeline over a trace sequence: frame construction
// (filtering, metric evaluation, per-frame clustering), cross-experiment
// scale normalisation and tracking.
func Track(traces []*Trace, cfg Config) (*Result, error) {
	return TrackContext(context.Background(), traces, cfg)
}

// TrackContext is Track with cancellation: frame building, clustering and
// the tracker's evaluator stages poll ctx, so a cancelled or timed-out
// analysis stops burning CPU mid-pipeline. This is what lets a serving
// layer enforce per-job timeouts and cancel abandoned work.
func TrackContext(ctx context.Context, traces []*Trace, cfg Config) (*Result, error) {
	frames, err := core.BuildFramesContext(ctx, traces, cfg)
	if err != nil {
		return nil, err
	}
	return core.NewTracker(cfg).TrackContext(ctx, frames)
}

// RunStudy simulates a catalog study and tracks its frames with the
// study's configuration.
func RunStudy(st Study) (*Result, error) {
	return RunStudyContext(context.Background(), st)
}

// RunStudyContext is RunStudy with cancellation threaded through the
// simulation and the whole tracking pipeline.
func RunStudyContext(ctx context.Context, st Study) (*Result, error) {
	traces, err := SimulateStudyContext(ctx, st)
	if err != nil {
		return nil, err
	}
	return TrackContext(ctx, traces, st.Track)
}

// SimulateStudyContext is SimulateStudy with cancellation between runs.
func SimulateStudyContext(ctx context.Context, st Study) ([]*Trace, error) {
	traces, err := mpisim.SimulateSeriesContext(ctx, st.Runs)
	if err != nil {
		return nil, err
	}
	if st.Windows > 1 {
		if len(traces) != 1 {
			return nil, fmt.Errorf("perftrack: study %s: windowed analysis needs exactly one run, got %d", st.Name, len(traces))
		}
		return traces[0].SplitWindows(st.Windows), nil
	}
	return traces, nil
}

// Simulate runs a synthetic application under a scenario — the entry
// point for building custom studies on the public API.
func Simulate(app AppSpec, sc Scenario) (*Trace, error) {
	return mpisim.Simulate(app, sc)
}

// Profile is the flat per-region summary a classic profiler would report
// — the baseline the paper compares its approach against.
type Profile = profile.Profile

// NewProfile aggregates a trace into the profile-based baseline view.
// Its MultimodalRows method exposes the regions whose averages hide
// distinct behaviours, which is what the tracking approach resolves.
func NewProfile(t *Trace) *Profile { return profile.New(t) }

// CompareProfiles subtracts two profiles region by region — the classic
// "performance algebra" multi-experiment comparison.
func CompareProfiles(a, b *Profile) []profile.Delta { return profile.Compare(a, b) }

// WriteResultJSON serialises a tracking result (with the mean trends of
// the given metrics) for external tooling.
func WriteResultJSON(w io.Writer, res *Result, ms []Metric) error {
	return res.WriteJSON(w, ms)
}

// ReadTraceFile and WriteTraceFile expose the text trace codec.
func ReadTraceFile(path string) (*Trace, error)  { return trace.ReadFile(path) }
func WriteTraceFile(path string, t *Trace) error { return trace.WriteFile(path, t) }

// ReadTraceFileLenient decodes a trace file tolerating malformed burst
// lines: instead of failing, each bad line is quarantined and reported in
// the returned diagnostics. Use it to salvage partially corrupt traces.
func ReadTraceFileLenient(path string) (*Trace, DecodeDiagnostics, error) {
	return trace.ReadFileWith(path, trace.DecodeOptions{Strict: false})
}

func DefaultMetrics() []Metric                            { return metrics.DefaultSpace() }
func MetricByName(name string) (Metric, bool)             { return metrics.ByName(name) }
func NewTracker(cfg Config) *core.Tracker                 { return core.NewTracker(cfg) }
func BuildFrames(ts []*Trace, c Config) ([]*Frame, error) { return core.BuildFrames(ts, c) }
