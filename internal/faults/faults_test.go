package faults

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"perftrack/internal/metrics"
	"perftrack/internal/trace"
)

// sample builds a small deterministic trace: ranks tasks, iters bursts
// each, two alternating code regions.
func sample(ranks, iters int) *trace.Trace {
	t := &trace.Trace{Meta: trace.Metadata{App: "synth", Label: "run", Ranks: ranks}}
	for task := 0; task < ranks; task++ {
		clock := int64(0)
		for it := 0; it < iters; it++ {
			dur := int64(1_000_000 + 10_000*((task+it)%7))
			var c metrics.CounterVector
			c[metrics.CtrInstructions] = 2e6 + 1e4*float64(it%5)
			c[metrics.CtrCycles] = 3e6
			c[metrics.CtrL1DMisses] = 1e3
			stack := trace.CallstackRef{Function: "compute", File: "a.f90", Line: 10}
			if it%2 == 1 {
				stack = trace.CallstackRef{Function: "exchange", File: "a.f90", Line: 99}
			}
			t.Bursts = append(t.Bursts, trace.Burst{
				Task: task, StartNS: clock, DurationNS: dur,
				Stack: stack, Counters: c, Phase: it % 2,
			})
			clock += dur + 50_000
		}
	}
	return t
}

// TestDeterministic applies every injector twice with the same seed and
// once with a different seed: same seed must reproduce the corruption
// byte for byte, different seeds must (for the randomised injectors)
// diverge somewhere across the matrix.
func TestDeterministic(t *testing.T) {
	in := sample(8, 20)
	for _, inj := range TraceInjectors(0.2) {
		a, ra := inj.Apply(in, 42)
		b, rb := inj.Apply(in, 42)
		if ra != rb {
			t.Errorf("%s: reports differ across identical applications: %+v vs %+v", inj.Name(), ra, rb)
		}
		if !tracesEqual(a, b) {
			t.Errorf("%s: corrupted traces differ across identical applications", inj.Name())
		}
	}
	enc := encode(t, in)
	for _, inj := range ByteInjectors(0.2) {
		a, ra := inj.ApplyBytes(enc, 42)
		b, rb := inj.ApplyBytes(enc, 42)
		if ra != rb || !bytes.Equal(a, b) {
			t.Errorf("%s: not deterministic for a fixed seed", inj.Name())
		}
	}
}

// TestInputImmutable checks injectors never mutate the trace (or bytes)
// they are given.
func TestInputImmutable(t *testing.T) {
	in := sample(6, 12)
	want := in.Clone()
	for _, inj := range TraceInjectors(0.3) {
		inj.Apply(in, 7)
		if !reflect.DeepEqual(in, want) {
			t.Fatalf("%s mutated its input", inj.Name())
		}
	}
	enc := encode(t, in)
	orig := append([]byte(nil), enc...)
	for _, inj := range ByteInjectors(0.3) {
		inj.ApplyBytes(enc, 7)
		if !bytes.Equal(enc, orig) {
			t.Fatalf("%s mutated its input bytes", inj.Name())
		}
	}
}

// TestFaultCounts verifies each injector's report matches the observable
// damage.
func TestFaultCounts(t *testing.T) {
	in := sample(10, 20) // 200 bursts

	out, rep := DropRanks{Frac: 0.2}.Apply(in, 1)
	if got := len(in.Bursts) - len(out.Bursts); got != rep.Faults {
		t.Errorf("drop-ranks: reported %d faults, dropped %d bursts", rep.Faults, got)
	}
	if rep.Faults != 2*20 {
		t.Errorf("drop-ranks at 0.2 over 10 tasks: want 40 bursts gone, got %d", rep.Faults)
	}

	out, rep = TruncateTasks{Frac: 0.2}.Apply(in, 1)
	if got := len(in.Bursts) - len(out.Bursts); got != rep.Faults {
		t.Errorf("truncate-tasks: reported %d faults, dropped %d bursts", rep.Faults, got)
	}

	for _, mode := range []string{ModeZero, ModeNaN, ModeInf} {
		out, rep = CorruptCounters{Frac: 0.1, Mode: mode}.Apply(in, 1)
		bad := 0
		for _, b := range out.Bursts {
			for _, v := range b.Counters {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					bad++
					break
				}
			}
			if mode == ModeZero && b.Counters == (metrics.CounterVector{}) {
				bad++
			}
		}
		if bad != rep.Faults {
			t.Errorf("counter-%s: reported %d faults, observed %d corrupt bursts", mode, rep.Faults, bad)
		}
	}

	out, rep = DuplicateBursts{Frac: 0.15}.Apply(in, 1)
	if got := len(out.Bursts) - len(in.Bursts); got != rep.Faults {
		t.Errorf("duplicate-bursts: reported %d, appended %d", rep.Faults, got)
	}

	out, rep = SkewClocks{Frac: 0.2, MaxSkewNS: 1000}.Apply(in, 1)
	moved := 0
	for i := range out.Bursts {
		if out.Bursts[i].StartNS != in.Bursts[i].StartNS {
			moved++
		}
	}
	if moved != rep.Faults {
		t.Errorf("skew-clocks: reported %d, moved %d", rep.Faults, moved)
	}

	out, rep = ReorderBursts{Frac: 0.2}.Apply(in, 1)
	moved = 0
	for i := range out.Bursts {
		if out.Bursts[i].StartNS != in.Bursts[i].StartNS {
			moved++
		}
	}
	if moved != rep.Faults {
		t.Errorf("reorder-bursts: reported %d, moved %d", rep.Faults, moved)
	}
}

// TestTruncateBytesCounts checks the removed-line accounting against a
// hand-built file.
func TestTruncateBytesCounts(t *testing.T) {
	data := []byte("l1\nl2\nl3\nl4\n")
	out, rep := TruncateBytes{Frac: 0.5}.ApplyBytes(data, 0)
	if len(out) != 6 {
		t.Fatalf("want 6 bytes kept, got %d (%q)", len(out), out)
	}
	if rep.Faults != 2 {
		t.Errorf("removing %q: want 2 lines lost, got %d", data[6:], rep.Faults)
	}
	// Cut mid-line: "l3\nl4\n" minus 7 bytes removes "4\n", "l3\n" and
	// leaves a partial "l" — removed region "3\nl4\n" holds both newlines.
	out, rep = TruncateBytes{Frac: 7.0 / 12.0}.ApplyBytes(data, 0)
	if string(out) != "l1\nl2\n" {
		// keep = 12 - floor(12*7/12) = 5 → "l1\nl2" (partial second line)
		if string(out) != "l1\nl2" {
			t.Fatalf("unexpected kept prefix %q", out)
		}
		if rep.Faults != 3 {
			t.Errorf("partial cut: want 3 affected lines, got %d", rep.Faults)
		}
	}
	out, rep = TruncateBytes{Frac: 0}.ApplyBytes(data, 0)
	if !bytes.Equal(out, data) || rep.Faults != 0 {
		t.Errorf("frac 0 must be the identity, got %q with %d faults", out, rep.Faults)
	}
}

// TestGarbleLinesSparesHeader checks only burst records are touched.
func TestGarbleLinesSparesHeader(t *testing.T) {
	in := sample(4, 10)
	enc := encode(t, in)
	out, rep := GarbleLines{Frac: 0.5}.ApplyBytes(enc, 3)
	if rep.Faults == 0 {
		t.Fatal("garble-lines reported no faults at frac 0.5")
	}
	inLines, outLines := bytes.Split(enc, []byte("\n")), bytes.Split(out, []byte("\n"))
	if len(inLines) != len(outLines) {
		t.Fatalf("line count changed: %d -> %d", len(inLines), len(outLines))
	}
	changed := 0
	for i := range inLines {
		if bytes.Equal(inLines[i], outLines[i]) {
			continue
		}
		changed++
		if !bytes.HasPrefix(inLines[i], []byte("B ")) {
			t.Errorf("non-burst line %d garbled: %q -> %q", i, inLines[i], outLines[i])
		}
	}
	if changed > rep.Faults {
		t.Errorf("garbled %d lines but reported only %d faults", changed, rep.Faults)
	}
}

// tracesEqual is reflect.DeepEqual with NaN counters comparing equal
// (DeepEqual uses ==, under which NaN != NaN).
func tracesEqual(a, b *trace.Trace) bool {
	if !reflect.DeepEqual(a.Meta, b.Meta) || len(a.Bursts) != len(b.Bursts) {
		return false
	}
	for i := range a.Bursts {
		ba, bb := a.Bursts[i], b.Bursts[i]
		ca, cb := ba.Counters, bb.Counters
		ba.Counters, bb.Counters = metrics.CounterVector{}, metrics.CounterVector{}
		if ba != bb {
			return false
		}
		for j := range ca {
			if ca[j] != cb[j] && !(math.IsNaN(ca[j]) && math.IsNaN(cb[j])) {
				return false
			}
		}
	}
	return true
}

func encode(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
