// Package faults provides deterministic, seeded fault injectors that
// corrupt burst-level traces the way real collection pipelines do: dead
// ranks, tasks truncated mid-run, zeroed/NaN/Inf hardware counters,
// duplicated and reordered bursts, skewed per-task clocks, and truncated
// or garbled trace files. Injectors never mutate their input; the same
// (input, seed) pair always produces the same corruption, so the
// robustness matrix in the test suite is reproducible burst for burst.
//
// Two injector families exist: Injector corrupts a *trace.Trace in
// memory (the faults survive a clean encode/decode round trip), and
// BytesInjector corrupts the serialised file form (the faults exercise
// the lenient decoder).
package faults

import (
	"bytes"
	"math"
	"math/rand/v2"
	"sort"

	"perftrack/internal/metrics"
	"perftrack/internal/trace"
)

// Report describes what one injector did.
type Report struct {
	// Injector is the injector's Name.
	Injector string
	// Faults counts the injected faults: bursts dropped, corrupted,
	// duplicated, reordered or skewed for in-memory injectors; lines
	// removed or garbled for byte-level injectors.
	Faults int
}

// Injector corrupts a trace in memory and reports what it did.
type Injector interface {
	Name() string
	Apply(t *trace.Trace, seed uint64) (*trace.Trace, Report)
}

// BytesInjector corrupts a serialised trace file.
type BytesInjector interface {
	Name() string
	ApplyBytes(data []byte, seed uint64) ([]byte, Report)
}

// Counter corruption modes for CorruptCounters.
const (
	ModeZero = "zero" // a dead PAPI read: every counter comes back 0
	ModeNaN  = "nan"  // one counter slot becomes NaN
	ModeInf  = "inf"  // one counter slot becomes +Inf
)

// TraceInjectors returns the full in-memory injector matrix at the given
// severity: frac is the fraction of bursts (or ranks, for the rank-level
// injectors) affected.
func TraceInjectors(frac float64) []Injector {
	return []Injector{
		DropRanks{Frac: frac},
		TruncateTasks{Frac: frac},
		CorruptCounters{Frac: frac, Mode: ModeZero},
		CorruptCounters{Frac: frac, Mode: ModeNaN},
		CorruptCounters{Frac: frac, Mode: ModeInf},
		DuplicateBursts{Frac: frac},
		ReorderBursts{Frac: frac},
		SkewClocks{Frac: frac, MaxSkewNS: 5_000_000},
	}
}

// ByteInjectors returns the serialised-form injector matrix at the given
// severity (fraction of the file / of the burst lines affected).
func ByteInjectors(frac float64) []BytesInjector {
	return []BytesInjector{
		TruncateBytes{Frac: frac},
		GarbleLines{Frac: frac},
	}
}

// rng derives an independent deterministic stream per injector name so
// applying several injectors with the same base seed stays uncorrelated.
func rng(name string, seed uint64) *rand.Rand {
	h := uint64(1469598103934665603)
	for _, c := range []byte(name) {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return rand.New(rand.NewPCG(seed, h))
}

// affected returns how many of n items a severity fraction touches: at
// least one (when n > 0 and frac > 0), at most all.
func affected(n int, frac float64) int {
	if n == 0 || frac <= 0 {
		return 0
	}
	k := int(math.Round(frac * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// taskIDs returns the sorted distinct task ids of a trace.
func taskIDs(t *trace.Trace) []int {
	seen := map[int]bool{}
	for _, b := range t.Bursts {
		seen[b.Task] = true
	}
	ids := make([]int, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// pickTasks selects k random task ids from the trace.
func pickTasks(t *trace.Trace, frac float64, r *rand.Rand) map[int]bool {
	ids := taskIDs(t)
	k := affected(len(ids), frac)
	chosen := map[int]bool{}
	for _, i := range r.Perm(len(ids))[:k] {
		chosen[ids[i]] = true
	}
	return chosen
}

// DropRanks removes every burst of a random fraction of the tasks — the
// dead ranks of a crashed node or an unflushed trace buffer.
type DropRanks struct {
	// Frac is the fraction of tasks dropped (at least one).
	Frac float64
}

func (d DropRanks) Name() string { return "drop-ranks" }

func (d DropRanks) Apply(t *trace.Trace, seed uint64) (*trace.Trace, Report) {
	r := rng(d.Name(), seed)
	drop := pickTasks(t, d.Frac, r)
	out := &trace.Trace{Meta: t.Meta}
	faults := 0
	for _, b := range t.Bursts {
		if drop[b.Task] {
			faults++
			continue
		}
		out.Bursts = append(out.Bursts, b)
	}
	return out, Report{d.Name(), faults}
}

// TruncateTasks cuts a random fraction of the tasks mid-run: the trailing
// half of each affected task's bursts is lost, as when tracing stops
// before the application does.
type TruncateTasks struct {
	// Frac is the fraction of tasks truncated (at least one).
	Frac float64
}

func (tt TruncateTasks) Name() string { return "truncate-tasks" }

func (tt TruncateTasks) Apply(t *trace.Trace, seed uint64) (*trace.Trace, Report) {
	r := rng(tt.Name(), seed)
	cut := pickTasks(t, tt.Frac, r)
	// Chronological per-task order decides what "trailing" means.
	seqs := t.PerTaskSequences()
	dropIdx := map[int]bool{}
	for task := range cut {
		s := seqs[task]
		for _, bi := range s[len(s)/2:] {
			dropIdx[bi] = true
		}
	}
	out := &trace.Trace{Meta: t.Meta}
	for i, b := range t.Bursts {
		if dropIdx[i] {
			continue
		}
		out.Bursts = append(out.Bursts, b)
	}
	return out, Report{tt.Name(), len(dropIdx)}
}

// CorruptCounters damages the hardware counter vector of a random
// fraction of the bursts, in one of three modes: a dead read zeroing the
// whole vector, or a single slot becoming NaN or +Inf.
type CorruptCounters struct {
	// Frac is the fraction of bursts corrupted (at least one).
	Frac float64
	// Mode is ModeZero, ModeNaN or ModeInf (default ModeNaN).
	Mode string
}

func (cc CorruptCounters) mode() string {
	if cc.Mode == "" {
		return ModeNaN
	}
	return cc.Mode
}

func (cc CorruptCounters) Name() string { return "counter-" + cc.mode() }

func (cc CorruptCounters) Apply(t *trace.Trace, seed uint64) (*trace.Trace, Report) {
	r := rng(cc.Name(), seed)
	out := t.Clone()
	k := affected(len(out.Bursts), cc.Frac)
	for _, bi := range r.Perm(len(out.Bursts))[:k] {
		b := &out.Bursts[bi]
		switch cc.mode() {
		case ModeZero:
			b.Counters = metrics.CounterVector{}
		case ModeInf:
			b.Counters[r.IntN(int(metrics.NumCounters))] = math.Inf(1)
		default: // ModeNaN
			b.Counters[r.IntN(int(metrics.NumCounters))] = math.NaN()
		}
	}
	return out, Report{cc.Name(), k}
}

// DuplicateBursts appends copies of a random fraction of the bursts —
// the double flush of a crashed writer or a merge of overlapping chunks.
type DuplicateBursts struct {
	// Frac is the fraction of bursts duplicated (at least one).
	Frac float64
}

func (db DuplicateBursts) Name() string { return "duplicate-bursts" }

func (db DuplicateBursts) Apply(t *trace.Trace, seed uint64) (*trace.Trace, Report) {
	r := rng(db.Name(), seed)
	out := t.Clone()
	k := affected(len(t.Bursts), db.Frac)
	for _, bi := range r.Perm(len(t.Bursts))[:k] {
		out.Bursts = append(out.Bursts, t.Bursts[bi])
	}
	return out, Report{db.Name(), k}
}

// ReorderBursts breaks the chronological order within tasks by swapping
// the start times of a random fraction of consecutive same-task burst
// pairs — out-of-order buffer flushes and non-monotonic clocks.
type ReorderBursts struct {
	// Frac is the fraction of bursts whose order is disturbed.
	Frac float64
}

func (rb ReorderBursts) Name() string { return "reorder-bursts" }

func (rb ReorderBursts) Apply(t *trace.Trace, seed uint64) (*trace.Trace, Report) {
	r := rng(rb.Name(), seed)
	out := t.Clone()
	seqs := out.PerTaskSequences()
	tasks := taskIDs(out)
	// Collect all consecutive same-task index pairs, then swap a sample.
	var pairs [][2]int
	for _, task := range tasks {
		s := seqs[task]
		for i := 0; i+1 < len(s); i++ {
			pairs = append(pairs, [2]int{s[i], s[i+1]})
		}
	}
	k := affected(len(pairs), rb.Frac/2) // each swap disturbs two bursts
	faults := 0
	for _, pi := range r.Perm(len(pairs))[:k] {
		a, b := pairs[pi][0], pairs[pi][1]
		out.Bursts[a].StartNS, out.Bursts[b].StartNS = out.Bursts[b].StartNS, out.Bursts[a].StartNS
		faults += 2
	}
	return out, Report{rb.Name(), faults}
}

// SkewClocks shifts the clock of a random fraction of the tasks by a
// constant positive offset — unsynchronised node clocks.
type SkewClocks struct {
	// Frac is the fraction of tasks skewed (at least one).
	Frac float64
	// MaxSkewNS bounds the per-task offset (default 1ms).
	MaxSkewNS int64
}

func (sc SkewClocks) Name() string { return "skew-clocks" }

func (sc SkewClocks) Apply(t *trace.Trace, seed uint64) (*trace.Trace, Report) {
	r := rng(sc.Name(), seed)
	maxSkew := sc.MaxSkewNS
	if maxSkew <= 0 {
		maxSkew = 1_000_000
	}
	skewed := pickTasks(t, sc.Frac, r)
	offsets := map[int]int64{}
	for _, task := range taskIDs(t) {
		if skewed[task] {
			offsets[task] = 1 + r.Int64N(maxSkew)
		}
	}
	out := t.Clone()
	faults := 0
	for i := range out.Bursts {
		if off, ok := offsets[out.Bursts[i].Task]; ok {
			out.Bursts[i].StartNS += off
			faults++
		}
	}
	return out, Report{sc.Name(), faults}
}

// TruncateBytes cuts the trailing fraction of a serialised trace — the
// partial file left behind by a full disk or a killed writer. The report
// counts the lines fully or partially lost.
type TruncateBytes struct {
	// Frac is the fraction of the file removed from the end.
	Frac float64
}

func (tb TruncateBytes) Name() string { return "truncate-bytes" }

func (tb TruncateBytes) ApplyBytes(data []byte, seed uint64) ([]byte, Report) {
	keep := len(data) - int(float64(len(data))*tb.Frac)
	if keep < 0 {
		keep = 0
	}
	if keep >= len(data) {
		return append([]byte(nil), data...), Report{tb.Name(), 0}
	}
	// Every affected line contributes its terminating newline to the
	// removed region, except a final line the original file left
	// unterminated. A cut mid-line leaves a partial line in the kept
	// prefix, which the lenient decoder must quarantine; that line's
	// newline is also in the removed region, so it is already counted.
	removed := data[keep:]
	faults := bytes.Count(removed, []byte("\n"))
	if len(removed) > 0 && removed[len(removed)-1] != '\n' {
		faults++
	}
	return append([]byte(nil), data[:keep]...), Report{tb.Name(), faults}
}

// GarbleLines overwrites random bytes inside a random fraction of the
// burst records of a serialised trace — bit rot, racing writers, charset
// mangling. Only "B " records are touched so the header stays parseable;
// a garbled record either fails to parse (and is quarantined by the
// lenient decoder) or silently carries wrong values (and is quarantined
// later by frame construction when the values are non-finite).
type GarbleLines struct {
	// Frac is the fraction of burst lines garbled (at least one).
	Frac float64
}

func (gl GarbleLines) Name() string { return "garble-lines" }

func (gl GarbleLines) ApplyBytes(data []byte, seed uint64) ([]byte, Report) {
	r := rng(gl.Name(), seed)
	lines := bytes.SplitAfter(data, []byte("\n"))
	var burstLines []int
	for i, l := range lines {
		if bytes.HasPrefix(l, []byte("B ")) {
			burstLines = append(burstLines, i)
		}
	}
	k := affected(len(burstLines), gl.Frac)
	junk := []byte("x?!NaN#~")
	for _, li := range r.Perm(len(burstLines))[:k] {
		l := append([]byte(nil), lines[burstLines[li]]...)
		// Mutate a few bytes after the "B " prefix, sparing the newline.
		span := len(l) - 3
		if span <= 0 {
			continue
		}
		for n := 1 + r.IntN(4); n > 0; n-- {
			l[2+r.IntN(span)] = junk[r.IntN(len(junk))]
		}
		lines[burstLines[li]] = l
	}
	return bytes.Join(lines, nil), Report{gl.Name(), k}
}
