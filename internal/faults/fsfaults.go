package faults

// Filesystem-boundary fault injection: the third injector family, after
// the in-memory trace injectors and the byte-level file injectors. Where
// those corrupt the *data* a pipeline reads, FaultFS corrupts the *IO*
// a durable component performs — short writes, fsync errors, ENOSPC,
// torn renames — the failure modes real disks and filesystems exhibit
// under pressure. perfdb's segment store and trackd's job journal both
// take an FS through their Options, so the same injector exercises every
// write path the fault-tolerance layer must survive.
//
// Faults are deterministic: triggers are op-count and byte-count based
// (every Nth write, every Nth fsync, after B bytes), so a failing test
// reproduces with the same configuration, no seeds required. The Report
// counts what actually fired, letting tests assert both that faults were
// injected and that the component under test absorbed them.

import (
	"io"
	"os"
	"sync"
	"syscall"
)

// File is the subset of *os.File durable components need. *os.File
// satisfies it directly.
type File interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.Closer
	Sync() error
	Stat() (os.FileInfo, error)
}

// FS abstracts the filesystem operations of the store and journal so
// fault injectors can sit underneath them. OS is the passthrough
// implementation; FaultFS wraps any FS with injected failures.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(dir string) ([]os.DirEntry, error)
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	Truncate(path string, size int64) error
	Remove(path string) error
	Rename(oldPath, newPath string) error
}

// OS is the real filesystem.
type OS struct{}

func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (OS) ReadDir(dir string) ([]os.DirEntry, error)    { return os.ReadDir(dir) }
func (OS) Truncate(path string, size int64) error       { return os.Truncate(path, size) }
func (OS) Remove(path string) error                     { return os.Remove(path) }
func (OS) Rename(oldPath, newPath string) error         { return os.Rename(oldPath, newPath) }
func (OS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(path, flag, perm)
}

// FSFaults configures which IO faults a FaultFS injects. Zero values
// disable each fault.
type FSFaults struct {
	// ShortWriteEveryN makes every Nth write (counted across all files)
	// persist only the first half of its buffer and return
	// io.ErrShortWrite — the torn page of a power cut or a full pipe.
	ShortWriteEveryN int
	// SyncFailEveryN makes every Nth fsync return EIO without syncing —
	// the failure mode behind fsyncgate.
	SyncFailEveryN int
	// ENOSPCAfterBytes fails every write once the cumulative bytes
	// written through this FS exceed the bound: the disk filled up.
	// Writes crossing the boundary persist the portion that fits (a
	// short write) and return ENOSPC.
	ENOSPCAfterBytes int64
	// TornRename makes Rename copy only the first half of the source
	// into the destination and return EIO, leaving the source intact —
	// a crash midway through a non-atomic metadata operation.
	TornRename bool
}

// FSReport counts the faults a FaultFS actually injected.
type FSReport struct {
	ShortWrites int
	SyncErrors  int
	ENOSPC      int
	TornRenames int
}

// FaultFS wraps a base FS (default OS) and injects the configured
// faults deterministically. Safe for concurrent use.
type FaultFS struct {
	Base   FS
	Faults FSFaults

	mu      sync.Mutex
	writes  int   // write ops seen
	syncs   int   // fsync ops seen
	written int64 // cumulative bytes successfully written
	report  FSReport
}

// NewFaultFS wraps the OS filesystem with the given fault plan.
func NewFaultFS(f FSFaults) *FaultFS { return &FaultFS{Base: OS{}, Faults: f} }

func (f *FaultFS) base() FS {
	if f.Base == nil {
		return OS{}
	}
	return f.Base
}

// Report snapshots the injected-fault counters.
func (f *FaultFS) Report() FSReport {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.report
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error { return f.base().MkdirAll(path, perm) }
func (f *FaultFS) ReadDir(dir string) ([]os.DirEntry, error)    { return f.base().ReadDir(dir) }
func (f *FaultFS) Truncate(path string, size int64) error       { return f.base().Truncate(path, size) }
func (f *FaultFS) Remove(path string) error                     { return f.base().Remove(path) }

func (f *FaultFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	base, err := f.base().OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, File: base}, nil
}

// Rename injects the torn-rename fault: the destination receives only a
// prefix of the source and the operation reports failure, as when the
// process dies mid-copy on a filesystem without atomic rename. The
// source survives, so recovery code that unions old and new state (the
// journal's generation scan) loses nothing.
func (f *FaultFS) Rename(oldPath, newPath string) error {
	if !f.Faults.TornRename {
		return f.base().Rename(oldPath, newPath)
	}
	f.mu.Lock()
	f.report.TornRenames++
	f.mu.Unlock()
	src, err := f.base().OpenFile(oldPath, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	defer src.Close()
	fi, err := src.Stat()
	if err != nil {
		return err
	}
	buf := make([]byte, fi.Size()/2)
	if _, err := io.ReadFull(src, buf); err != nil && err != io.ErrUnexpectedEOF {
		return err
	}
	dst, err := f.base().OpenFile(newPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	dst.Write(buf)
	dst.Close()
	return syscall.EIO
}

// faultFile interposes on the write-side operations of one open file.
type faultFile struct {
	fs *FaultFS
	File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	f := ff.fs
	f.mu.Lock()
	f.writes++
	// Disk-full: persist what fits below the bound, fail the rest.
	if b := f.Faults.ENOSPCAfterBytes; b > 0 && f.written+int64(len(p)) > b {
		fit := b - f.written
		if fit < 0 {
			fit = 0
		}
		f.report.ENOSPC++
		f.mu.Unlock()
		n, _ := ff.File.Write(p[:fit])
		f.mu.Lock()
		f.written += int64(n)
		f.mu.Unlock()
		return n, syscall.ENOSPC
	}
	if n := f.Faults.ShortWriteEveryN; n > 0 && f.writes%n == 0 && len(p) > 1 {
		f.report.ShortWrites++
		f.mu.Unlock()
		n, _ := ff.File.Write(p[:len(p)/2])
		f.mu.Lock()
		f.written += int64(n)
		f.mu.Unlock()
		return n, io.ErrShortWrite
	}
	f.mu.Unlock()
	n, err := ff.File.Write(p)
	f.mu.Lock()
	f.written += int64(n)
	f.mu.Unlock()
	return n, err
}

func (ff *faultFile) Sync() error {
	f := ff.fs
	f.mu.Lock()
	f.syncs++
	if n := f.Faults.SyncFailEveryN; n > 0 && f.syncs%n == 0 {
		f.report.SyncErrors++
		f.mu.Unlock()
		return syscall.EIO
	}
	f.mu.Unlock()
	return ff.File.Sync()
}
