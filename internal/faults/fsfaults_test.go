package faults

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func openRW(t *testing.T, fs FS, path string) File {
	t.Helper()
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestOSPassthrough: the OS implementation behaves like the os package.
func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	var fs FS = OS{}
	if err := fs.MkdirAll(filepath.Join(dir, "a/b"), 0o755); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, "a/b/x")
	f := openRW(t, fs, p)
	if _, err := f.Write([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := fs.Truncate(p, 5); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(p, p+"2"); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(p + "2")
	if err != nil || string(got) != "hello" {
		t.Fatalf("after truncate+rename: %q, %v", got, err)
	}
	ents, err := fs.ReadDir(filepath.Join(dir, "a/b"))
	if err != nil || len(ents) != 1 {
		t.Fatalf("ReadDir: %v, %v", ents, err)
	}
	if err := fs.Remove(p + "2"); err != nil {
		t.Fatal(err)
	}
}

// TestShortWriteEveryN: the Nth write persists half its buffer and
// reports io.ErrShortWrite; the on-disk bytes match exactly what the
// returned n claims was written.
func TestShortWriteEveryN(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(FSFaults{ShortWriteEveryN: 3})
	p := filepath.Join(dir, "f")
	f := openRW(t, fs, p)
	defer f.Close()

	var want []byte
	for i := 0; i < 7; i++ {
		buf := []byte("0123456789")
		n, err := f.Write(buf)
		if (i+1)%3 == 0 {
			if err != io.ErrShortWrite {
				t.Fatalf("write %d: err %v, want ErrShortWrite", i, err)
			}
			if n != 5 {
				t.Fatalf("write %d: n=%d, want 5", i, n)
			}
		} else if err != nil || n != 10 {
			t.Fatalf("write %d: n=%d err=%v", i, n, err)
		}
		want = append(want, buf[:n]...)
	}
	got, _ := os.ReadFile(p)
	if string(got) != string(want) {
		t.Fatalf("on-disk %q != acknowledged %q", got, want)
	}
	if r := fs.Report(); r.ShortWrites != 2 {
		t.Fatalf("report %+v, want 2 short writes", r)
	}
}

// TestSyncFailEveryN: every Nth fsync fails with EIO, others succeed.
func TestSyncFailEveryN(t *testing.T) {
	fs := NewFaultFS(FSFaults{SyncFailEveryN: 2})
	f := openRW(t, fs, filepath.Join(t.TempDir(), "f"))
	defer f.Close()
	for i := 0; i < 6; i++ {
		err := f.Sync()
		if (i+1)%2 == 0 {
			if !errors.Is(err, syscall.EIO) {
				t.Fatalf("sync %d: err %v, want EIO", i, err)
			}
		} else if err != nil {
			t.Fatalf("sync %d: %v", i, err)
		}
	}
	if r := fs.Report(); r.SyncErrors != 3 {
		t.Fatalf("report %+v, want 3 sync errors", r)
	}
}

// TestENOSPCAfterBytes: writes crossing the byte budget persist the
// fitting prefix and fail with ENOSPC; every later write fails too.
func TestENOSPCAfterBytes(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(FSFaults{ENOSPCAfterBytes: 25})
	p := filepath.Join(dir, "f")
	f := openRW(t, fs, p)
	defer f.Close()

	for i := 0; i < 2; i++ { // 20 bytes fit
		if n, err := f.Write([]byte("0123456789")); n != 10 || err != nil {
			t.Fatalf("write %d: n=%d err=%v", i, n, err)
		}
	}
	n, err := f.Write([]byte("0123456789")) // crosses: 5 fit
	if n != 5 || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("crossing write: n=%d err=%v", n, err)
	}
	if n, err := f.Write([]byte("x")); n != 0 || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("post-full write: n=%d err=%v", n, err)
	}
	got, _ := os.ReadFile(p)
	if len(got) != 25 {
		t.Fatalf("on-disk %d bytes, want 25", len(got))
	}
	if r := fs.Report(); r.ENOSPC != 2 {
		t.Fatalf("report %+v, want 2 ENOSPC", r)
	}
}

// TestTornRename: the destination holds only a prefix of the source, the
// source survives, and the operation reports failure — exactly the state
// union-based recovery must tolerate.
func TestTornRename(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(FSFaults{TornRename: true})
	src := filepath.Join(dir, "src")
	dst := filepath.Join(dir, "dst")
	if err := os.WriteFile(src, []byte("0123456789abcdef"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(src, dst); !errors.Is(err, syscall.EIO) {
		t.Fatalf("rename err %v, want EIO", err)
	}
	srcBytes, err := os.ReadFile(src)
	if err != nil || len(srcBytes) != 16 {
		t.Fatalf("source damaged: %q, %v", srcBytes, err)
	}
	dstBytes, err := os.ReadFile(dst)
	if err != nil || string(dstBytes) != "01234567" {
		t.Fatalf("destination %q, want the 8-byte prefix", dstBytes)
	}
	if r := fs.Report(); r.TornRenames != 1 {
		t.Fatalf("report %+v", r)
	}
}
