// Package oracle holds naive, obviously-correct reference implementations
// of the pipeline's optimized hot paths, plus seeded scenario generators
// and partition-agreement scoring. It exists only to be imported by tests:
// every grid-accelerated, parallelised or otherwise clever code path in
// internal/cluster, internal/core and internal/align is required (by the
// differential harness, `make oracle`) to produce answers identical to the
// transparent O(n²)/exhaustive versions here.
//
// The implementations are deliberately the dumbest thing that can be
// right: linear scans, full pairwise distance tables, textbook DBSCAN with
// an explicit region query, exponential-time alignment search. Nothing in
// this package may import the packages it checks (no import cycles, no
// shared bugs); the only shared convention is the tie-break specification
// pinned in internal/cluster/nn.go, which both sides implement
// independently.
package oracle

import "math"

// sqDist returns the squared Euclidean distance between a and b, with the
// exact same operation order as the optimized implementations so results
// are bit-identical, not merely close.
func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Nearest is the brute-force nearest-neighbour reference: a left-to-right
// linear scan over all points. It returns the index of the closest point
// to q and the Euclidean distance, or (-1, +Inf) for an empty set. Ties
// resolve to the lowest index because only a strictly smaller distance
// displaces the incumbent — this IS the canonical tie-break rule the grid
// index must reproduce.
func Nearest(points [][]float64, q []float64) (int, float64) {
	best, bestSq := -1, math.Inf(1)
	for i, p := range points {
		if d := sqDist(p, q); d < bestSq {
			best, bestSq = i, d
		}
	}
	return best, math.Sqrt(bestSq)
}

// DBSCAN is the textbook O(n²) reference implementation: the region query
// is an explicit linear scan, so there is no index structure to get wrong.
// Labels are 1-based cluster ids in discovery order with 0 for noise,
// matching the semantics documented in internal/cluster:
//
//   - seeds are examined in point-index order, so cluster c is the one
//     whose lowest-index core point precedes every core point of c+1;
//   - a border point reachable from several clusters is adopted by the
//     earliest-discovered (lowest-numbered) one;
//   - neighbourhoods use sqDist(p, q) <= eps², inclusive.
func DBSCAN(points [][]float64, eps float64, minPts int) []int {
	n := len(points)
	labels := make([]int, n)
	if n == 0 {
		return labels
	}
	const (
		unvisited = 0
		noiseMark = -1
	)
	state := make([]int, n)
	eps2 := eps * eps
	query := func(q []float64) []int {
		var out []int
		for j, p := range points {
			if sqDist(p, q) <= eps2 {
				out = append(out, j)
			}
		}
		return out
	}
	next := 0
	for i := 0; i < n; i++ {
		if state[i] != unvisited {
			continue
		}
		neigh := query(points[i])
		if len(neigh) < minPts {
			state[i] = noiseMark
			continue
		}
		next++
		state[i] = next
		queue := append([]int(nil), neigh...)
		for qi := 0; qi < len(queue); qi++ {
			j := queue[qi]
			if state[j] == noiseMark {
				state[j] = next // border point adopted by the cluster
				continue
			}
			if state[j] != unvisited {
				continue
			}
			state[j] = next
			jn := query(points[j])
			if len(jn) >= minPts {
				queue = append(queue, jn...)
			}
		}
	}
	for i, s := range state {
		if s == noiseMark {
			labels[i] = 0
		} else {
			labels[i] = s
		}
	}
	return labels
}

// Displacement is the brute-force reference for the cross-classification
// evaluator (core.Displacement): every clustered point of frame A is
// classified onto the nearest clustered point of frame B by linear scan,
// the per-cluster tallies are row-normalised, and cells strictly below
// minCorr are zeroed. The returned matrix is (aK+1)×(bK+1), 1-based like
// core.Matrix.P, and must match the optimized version bit for bit.
func Displacement(aNorm [][]float64, aLabels []int, aK int,
	bNorm [][]float64, bLabels []int, bK int, minCorr float64) [][]float64 {
	m := make([][]float64, aK+1)
	for i := range m {
		m[i] = make([]float64, bK+1)
	}
	// Index only the clustered points of b, in index order — the same
	// subset the optimized path feeds its grid.
	var pts [][]float64
	var lbl []int
	for i, l := range bLabels {
		if l > 0 {
			pts = append(pts, bNorm[i])
			lbl = append(lbl, l)
		}
	}
	if len(pts) == 0 || aK == 0 {
		return m
	}
	counts := make([]float64, aK+1)
	for i, la := range aLabels {
		if la <= 0 {
			continue
		}
		j, _ := Nearest(pts, aNorm[i])
		if j < 0 {
			continue
		}
		m[la][lbl[j]]++
		counts[la]++
	}
	for i := 1; i <= aK; i++ {
		if counts[i] == 0 {
			continue
		}
		for j := 1; j <= bK; j++ {
			m[i][j] /= counts[i]
		}
	}
	for i := 1; i <= aK; i++ {
		for j := 1; j <= bK; j++ {
			if m[i][j] < minCorr {
				m[i][j] = 0
			}
		}
	}
	return m
}
