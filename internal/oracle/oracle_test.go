package oracle

import (
	"math"
	"testing"
)

// The oracle must itself be trustworthy: these tests check it against
// hand-computed answers on cases small enough to verify on paper.

func TestNearestHandCases(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 0}, {0, 1}, {1, 0}}
	if i, d := Nearest(pts, []float64{0.9, 0}); i != 1 || math.Abs(d-0.1) > 1e-12 {
		t.Fatalf("Nearest = (%d, %v), want (1, ~0.1)", i, d)
	}
	// Exact tie between index 1 and its duplicate at index 3: lowest wins.
	if i, _ := Nearest(pts, []float64{1, 0}); i != 1 {
		t.Fatalf("tie resolved to %d, want 1", i)
	}
	if i, d := Nearest(nil, []float64{0, 0}); i != -1 || !math.IsInf(d, 1) {
		t.Fatalf("empty set = (%d, %v), want (-1, +Inf)", i, d)
	}
}

func TestDBSCANHandCase(t *testing.T) {
	// Two tight triples far apart plus one isolated point.
	pts := [][]float64{
		{0, 0}, {0.05, 0}, {0, 0.05}, // cluster 1
		{1, 1}, {0.95, 1}, {1, 0.95}, // cluster 2
		{0.5, 0.5}, // noise
	}
	got := DBSCAN(pts, 0.1, 3)
	want := []int{1, 1, 1, 2, 2, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("labels = %v, want %v", got, want)
		}
	}
}

func TestDBSCANBorderAdoption(t *testing.T) {
	// The point at x=2 is within eps of cores of both clusters but is not
	// core itself (only 3 neighbours, minPts=4). Visited first, it is
	// marked noise; the earlier-discovered cluster must then adopt it.
	pts := [][]float64{
		{2, 0},                             // border point, seen first
		{0, 0}, {0.4, 0}, {0.8, 0}, {1, 0}, // cluster 1
		{3, 0}, {3.4, 0}, {3.8, 0}, {4, 0}, // cluster 2
	}
	got := DBSCAN(pts, 1.1, 4)
	want := []int{1, 1, 1, 1, 1, 2, 2, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("labels = %v, want %v", got, want)
		}
	}
}

func TestARIProperties(t *testing.T) {
	a := []int{1, 1, 1, 2, 2, 0}
	if got := ARI(a, a); got != 1 {
		t.Errorf("ARI(a, a) = %v, want 1", got)
	}
	// Renaming clusters must not change the score.
	b := []int{7, 7, 7, 3, 3, 9}
	if got := ARI(a, b); got != 1 {
		t.Errorf("ARI under relabeling = %v, want 1", got)
	}
	// Splitting a cluster must lower it below 1.
	c := []int{1, 1, 4, 2, 2, 0}
	if got := ARI(a, c); got >= 1 || got <= 0 {
		t.Errorf("ARI(a, split) = %v, want in (0, 1)", got)
	}
	if got := ARI([]int{1, 2}, []int{1}); got != 0 {
		t.Errorf("ARI on mismatched lengths = %v, want 0", got)
	}
}

func TestAlignScoreHandCases(t *testing.T) {
	cases := []struct {
		a, b []int
		want float64
	}{
		{[]int{1, 2, 3}, []int{1, 2, 3}, 6},       // 3 matches
		{[]int{1, 2, 3}, []int{1, 3}, 3},          // 2 matches + 1 gap
		{[]int{1}, []int{2}, -1},                  // single mismatch
		{nil, []int{5, 5}, -2},                    // all gaps
		{[]int{1, 2}, []int{2, 1}, 0},              // gap+match+gap beats 2 mismatches
		{[]int{1, 2, 3, 4}, []int{4, 3, 2, 1}, -2}, // gap, mis, match, mis, gap
	}
	for _, c := range cases {
		if got := AlignScore(c.a, c.b, 2, -1, -1); got != c.want {
			t.Errorf("AlignScore(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestGenScenarioDeterministicAndQuantised(t *testing.T) {
	s1, s2 := GenScenario(42), GenScenario(42)
	if len(s1.Points) != len(s2.Points) || s1.Eps != s2.Eps || s1.MinPts != s2.MinPts {
		t.Fatal("GenScenario is not deterministic")
	}
	for i := range s1.Points {
		for d := range s1.Points[i] {
			if s1.Points[i][d] != s2.Points[i][d] {
				t.Fatal("GenScenario points differ across calls")
			}
			if q := s1.Points[i][d] / quantum; q != math.Trunc(q) {
				t.Fatalf("coordinate %v is not on the lattice", s1.Points[i][d])
			}
		}
	}
}

func TestGenSeparatedTruthRecoverable(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		sc, truth := GenSeparated(seed)
		got := DBSCAN(sc.Points, sc.Eps, sc.MinPts)
		if ari := ARI(got, truth); ari < 1 {
			t.Errorf("seed %d: oracle DBSCAN recovers planted truth with ARI %v, want 1", seed, ari)
		}
	}
}

func TestGenTracesShape(t *testing.T) {
	tr := GenTraces(7, "a", 4, 3, 3)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := len(tr.Bursts), 4*3*3; got != want {
		t.Fatalf("bursts = %d, want %d", got, want)
	}
	// Strictly increasing per-task start times (permutation-invariance
	// of the sequence extraction depends on this).
	last := map[int]int64{}
	for _, b := range tr.Bursts {
		if prev, ok := last[b.Task]; ok && b.StartNS <= prev {
			t.Fatalf("task %d start times not strictly increasing", b.Task)
		}
		last[b.Task] = b.StartNS
		if b.Phase < 1 || b.Phase > 3 {
			t.Fatalf("burst has phase %d outside [1,3]", b.Phase)
		}
	}
	tr2 := GenTraces(7, "a", 4, 3, 3)
	for i := range tr.Bursts {
		if tr.Bursts[i] != tr2.Bursts[i] {
			t.Fatal("GenTraces is not deterministic")
		}
	}
}
