package oracle

import "math"

// AlignScore computes the optimal global-alignment score of two integer
// sequences by exhaustive recursion over the full alignment space: at
// every position try match/mismatch, gap-in-a, gap-in-b, and take the max.
// It is O(3^(len(a)+len(b))) and therefore only usable for sequences of a
// handful of symbols — exactly why it cannot share a bug with the
// dynamic-programming implementation in internal/align, whose score it
// certifies. Scoring parameters are passed explicitly so this package
// needs no import of the package under test.
func AlignScore(a, b []int, match, mismatch, gap float64) float64 {
	var rec func(i, j int) float64
	rec = func(i, j int) float64 {
		if i == len(a) && j == len(b) {
			return 0
		}
		best := math.Inf(-1)
		if i < len(a) && j < len(b) {
			s := mismatch
			if a[i] == b[j] {
				s = match
			}
			best = math.Max(best, s+rec(i+1, j+1))
		}
		if i < len(a) {
			best = math.Max(best, gap+rec(i+1, j))
		}
		if j < len(b) {
			best = math.Max(best, gap+rec(i, j+1))
		}
		return best
	}
	return rec(0, 0)
}
