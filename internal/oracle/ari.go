package oracle

// ARI computes the adjusted Rand index between two labelings of the same
// point set, directly from the pair-counting contingency table. 1 means
// identical partitions (up to renaming), 0 is chance-level agreement.
// Labels are opaque ints; noise (0) is treated as its own class, so two
// labelings must also agree on what is noise to score 1.
func ARI(a, b []int) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	type pair struct{ x, y int }
	cont := map[pair]float64{}
	rowSum := map[int]float64{}
	colSum := map[int]float64{}
	for i := range a {
		cont[pair{a[i], b[i]}]++
		rowSum[a[i]]++
		colSum[b[i]]++
	}
	choose2 := func(n float64) float64 { return n * (n - 1) / 2 }
	var sumCont, sumRow, sumCol float64
	for _, n := range cont {
		sumCont += choose2(n)
	}
	for _, n := range rowSum {
		sumRow += choose2(n)
	}
	for _, n := range colSum {
		sumCol += choose2(n)
	}
	total := choose2(float64(len(a)))
	expected := sumRow * sumCol / total
	maxIdx := (sumRow + sumCol) / 2
	if maxIdx == expected {
		return 1 // both partitions trivial (all-one-cluster or all-singletons)
	}
	return (sumCont - expected) / (maxIdx - expected)
}
