package oracle

import (
	"fmt"
	"math/rand/v2"

	"perftrack/internal/metrics"
	"perftrack/internal/trace"
)

// Distinct PCG stream constants so the three generators draw independent
// sequences even when fed the same seed.
const (
	streamScenario  = 0x5ce7a210
	streamSeparated = 0x5e9a7a7e
	streamTraces    = 0x77ace5
	streamSequence  = 0x3e9ce11c
)

// quantum is the coordinate lattice spacing for free-form scenarios. All
// coordinates (and the eps radii) are exact multiples of 1/32, which is
// exactly representable in binary floating point. That makes exact
// distance ties and points sitting exactly on the eps boundary *common*
// rather than measure-zero — precisely the inputs that flush out tie-break
// and boundary (< vs <=) divergences between optimized and oracle paths.
const quantum = 1.0 / 32

// Scenario is one seeded clustering problem for the differential harness.
type Scenario struct {
	Points [][]float64
	Eps    float64
	MinPts int
}

// GenScenario derives a free-form scenario from seed: 10–129 points on the
// quantised unit lattice (about 15% exact duplicates), 2 or 3 dimensions,
// lattice-aligned eps and a small MinPts. The same seed always produces
// the same scenario.
func GenScenario(seed uint64) Scenario {
	rng := rand.New(rand.NewPCG(seed, streamScenario))
	dims := 2 + rng.IntN(2)
	n := 10 + rng.IntN(120)
	pts := make([][]float64, 0, n)
	for i := 0; i < n; i++ {
		if len(pts) > 0 && rng.Float64() < 0.15 {
			// Exact duplicate of an earlier point.
			dup := pts[rng.IntN(len(pts))]
			pts = append(pts, append([]float64(nil), dup...))
			continue
		}
		p := make([]float64, dims)
		for d := range p {
			p[d] = float64(rng.IntN(33)) * quantum
		}
		pts = append(pts, p)
	}
	return Scenario{
		Points: pts,
		Eps:    float64(2+rng.IntN(8)) * quantum,
		MinPts: 2 + rng.IntN(4),
	}
}

// GenQuery draws one quantised query point for nearest-neighbour
// differential tests; qi decorrelates successive queries of one scenario.
// Queries may fall outside [0,1] to exercise the out-of-bbox fallback.
func GenQuery(seed uint64, qi int, dims int) []float64 {
	rng := rand.New(rand.NewPCG(seed+uint64(qi)*0x9e3779b97f4a7c15, streamScenario^1))
	q := make([]float64, dims)
	for d := range q {
		q[d] = float64(rng.IntN(49)-8) * quantum // [-0.25, 1.25]
	}
	return q
}

// GenSeparated derives a planted-truth scenario: 2–5 compact clusters
// whose centres sit at least 0.33 apart (≫ eps) with every member within
// 0.025 of its centre, plus up to 3 isolated noise points. It returns the
// scenario and the ground-truth labels (cluster ids in generation order,
// 0 for noise). Because inter-cluster gaps dwarf eps and intra-cluster
// spreads fit inside it, any correct density clusterer must recover the
// planted partition exactly — the margin is what makes the metamorphic
// assertions (permutation, duplication, scaling) robust to floating-point
// noise.
func GenSeparated(seed uint64) (Scenario, []int) {
	rng := rand.New(rand.NewPCG(seed, streamSeparated))
	k := 2 + rng.IntN(4)
	noise := rng.IntN(4)
	// Pick k+noise distinct cells of a 4×4 grid with 0.33 spacing.
	perm := rng.Perm(16)
	center := func(cell int) (float64, float64) {
		return 0.05 + float64(cell%4)*0.33, 0.05 + float64(cell/4)*0.33
	}
	var pts [][]float64
	var truth []int
	for c := 0; c < k; c++ {
		cx, cy := center(perm[c])
		m := 8 + rng.IntN(12)
		for i := 0; i < m; i++ {
			pts = append(pts, []float64{
				cx + (rng.Float64()-0.5)*0.05,
				cy + (rng.Float64()-0.5)*0.05,
			})
			truth = append(truth, c+1)
		}
	}
	for o := 0; o < noise; o++ {
		cx, cy := center(perm[k+o])
		pts = append(pts, []float64{cx, cy})
		truth = append(truth, 0)
	}
	return Scenario{Points: pts, Eps: 0.07, MinPts: 3}, truth
}

// GenTraces builds a seeded synthetic SPMD trace with planted phases, in
// the style of the core test helpers: every iteration runs the phases in
// order with all ranks synchronising after each one (barrier semantics, 1
// cycle/ns), and each burst is annotated with its ground-truth Phase. The
// phases occupy well-separated positions of the (IPC, log instructions)
// performance space — IPC levels 0.6 apart, instruction counts a factor 8
// apart — while a ±1% per-burst jitter keeps every point distinct. Per-
// task start times are strictly increasing, so the per-task sequence
// extraction has a unique order regardless of burst permutations.
func GenTraces(seed uint64, label string, ranks, iters, phases int) *trace.Trace {
	rng := rand.New(rand.NewPCG(seed, streamTraces))
	if phases < 1 {
		phases = 1
	}
	type phaseDef struct{ ipc, instr float64 }
	defs := make([]phaseDef, phases)
	for p := range defs {
		defs[p] = phaseDef{
			ipc:   0.8 + 0.6*float64(p),
			instr: 1e6 * pow(8, p),
		}
	}
	t := &trace.Trace{Meta: trace.Metadata{App: "oracle", Label: label, Ranks: ranks}}
	clock := make([]int64, ranks)
	for it := 0; it < iters; it++ {
		for pi, ph := range defs {
			var maxEnd int64
			for r := 0; r < ranks; r++ {
				ipc := ph.ipc * (1 + (rng.Float64()-0.5)*0.02)
				instr := ph.instr * (1 + (rng.Float64()-0.5)*0.02)
				cycles := instr / ipc
				b := trace.Burst{
					Task:       r,
					StartNS:    clock[r],
					DurationNS: int64(cycles),
					Stack: trace.CallstackRef{
						Function: fmt.Sprintf("phase_%d", pi+1),
						File:     "oracle.f90",
						Line:     100 * (pi + 1),
					},
					Phase: pi + 1,
				}
				b.Counters[metrics.CtrInstructions] = instr
				b.Counters[metrics.CtrCycles] = cycles
				t.Bursts = append(t.Bursts, b)
				clock[r] += int64(cycles)
				if clock[r] > maxEnd {
					maxEnd = clock[r]
				}
			}
			for r := range clock {
				clock[r] = maxEnd + 1000
			}
		}
	}
	t.SortByTaskTime()
	return t
}

// PhaseTrack plants one ground-truth region along a frame sequence for
// GenSequence. IPC and Instr give the phase's per-frame position in the
// performance space; a non-positive entry means the phase is absent from
// that frame (cluster birth/death). Two tracks that share the same
// position in some frame intentionally collide there (merge/split
// stress). NoStack strips the source references, forcing the tracker to
// correlate on displacement, simultaneity and sequence evidence alone.
type PhaseTrack struct {
	// ID is the planted phase annotation (must be >= 1 and unique).
	ID int
	// IPC and Instr are per-frame values; both slices share the corpus
	// frame count. <= 0 marks the phase absent in that frame.
	IPC   []float64
	Instr []float64
	// NoStack leaves every burst of this track without a call-stack
	// reference.
	NoStack bool
}

// GenSequence generalises GenTraces from static phases to per-frame phase
// schedules: it builds one trace per frame, each running the present
// tracks in order with barrier semantics (1 cycle/ns) and a ±1% per-burst
// jitter, every burst annotated with its ground-truth Phase. Each frame
// draws from an independent seeded stream, so frame fi of a scenario is
// reproducible regardless of how many frames surround it. The frame count
// is len(tracks[0].IPC); shorter tracks are treated as absent past their
// end.
func GenSequence(seed uint64, label string, ranks, iters int, tracks []PhaseTrack) []*trace.Trace {
	frames := 0
	for _, tk := range tracks {
		if len(tk.IPC) > frames {
			frames = len(tk.IPC)
		}
	}
	out := make([]*trace.Trace, 0, frames)
	for fi := 0; fi < frames; fi++ {
		rng := rand.New(rand.NewPCG(seed+uint64(fi)*0x9e3779b97f4a7c15, streamSequence))
		t := &trace.Trace{Meta: trace.Metadata{
			App:   "trackeval",
			Label: fmt.Sprintf("%s-f%02d", label, fi),
			Ranks: ranks,
		}}
		clock := make([]int64, ranks)
		for it := 0; it < iters; it++ {
			for _, tk := range tracks {
				if fi >= len(tk.IPC) || fi >= len(tk.Instr) ||
					tk.IPC[fi] <= 0 || tk.Instr[fi] <= 0 {
					continue
				}
				var maxEnd int64
				for r := 0; r < ranks; r++ {
					ipc := tk.IPC[fi] * (1 + (rng.Float64()-0.5)*0.02)
					instr := tk.Instr[fi] * (1 + (rng.Float64()-0.5)*0.02)
					cycles := instr / ipc
					b := trace.Burst{
						Task:       r,
						StartNS:    clock[r],
						DurationNS: int64(cycles),
						Phase:      tk.ID,
					}
					if !tk.NoStack {
						b.Stack = trace.CallstackRef{
							Function: fmt.Sprintf("phase_%d", tk.ID),
							File:     "trackeval.f90",
							Line:     100 * tk.ID,
						}
					}
					b.Counters[metrics.CtrInstructions] = instr
					b.Counters[metrics.CtrCycles] = cycles
					t.Bursts = append(t.Bursts, b)
					clock[r] += int64(cycles)
					if clock[r] > maxEnd {
						maxEnd = clock[r]
					}
				}
				for r := range clock {
					clock[r] = maxEnd + 1000
				}
			}
		}
		t.SortByTaskTime()
		out = append(out, t)
	}
	return out
}

func pow(base float64, exp int) float64 {
	out := 1.0
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}
