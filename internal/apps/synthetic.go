package apps

import (
	"fmt"
	"math/rand/v2"

	"perftrack/internal/machine"
	"perftrack/internal/mpisim"
)

// SyntheticParams parametrises a fully configurable SPMD study for
// robustness experiments: how many behaviours, how far apart they sit,
// how noisy each instance is, and how much the behaviours drift between
// consecutive experiments.
type SyntheticParams struct {
	// Phases is the number of distinct computing regions (default 6).
	Phases int
	// Ranks and Iterations size each experiment (defaults 16 and 6).
	Ranks, Iterations int
	// FrameCount is the number of experiments in the series (default 4).
	FrameCount int
	// NoiseIPC is the per-burst relative IPC jitter (default 0.01).
	NoiseIPC float64
	// DriftPerFrame shifts every phase's IPC by this relative amount per
	// frame, alternating direction per phase (default 0.02): the smooth
	// motion the displacement evaluator follows.
	DriftPerFrame float64
	// Seed drives all randomness.
	Seed uint64
}

func (p SyntheticParams) withDefaults() SyntheticParams {
	if p.Phases <= 0 {
		p.Phases = 6
	}
	if p.Ranks <= 0 {
		p.Ranks = 16
	}
	if p.Iterations <= 0 {
		p.Iterations = 6
	}
	if p.FrameCount <= 0 {
		p.FrameCount = 4
	}
	if p.NoiseIPC == 0 {
		p.NoiseIPC = 0.01
	}
	if p.DriftPerFrame == 0 {
		p.DriftPerFrame = 0.02
	}
	return p
}

// Synthetic builds a study whose ground truth is exactly known: Phases
// well-separated behaviours drifting smoothly across FrameCount
// experiments under the given noise. It is the workload behind the noise
// and epsilon robustness benchmarks.
func Synthetic(p SyntheticParams) Study {
	p = p.withDefaults()
	arch := machine.MinoTauro()
	phases := make([]mpisim.PhaseSpec, p.Phases)
	for i := range phases {
		i := i
		// Spread instruction counts geometrically and alternate IPC so
		// adjacent phases separate on both axes.
		instr := 4e6 * pow(1.5, i)
		ipc := 0.6 + 0.13*float64(i%5)
		dir := 1.0
		if i%2 == 1 {
			dir = -1
		}
		phases[i] = mpisim.PhaseSpec{
			Name:      fmt.Sprintf("phase%d", i+1),
			Stack:     stackRef(fmt.Sprintf("phase%d", i+1), "synthetic.c", 100+i),
			Instr:     constInstr(instr),
			IPCFactor: ipc / arch.BaseIPC,
			MemFrac:   0.02,
			NoiseIPC:  p.NoiseIPC,
			Vary: func(s mpisim.Scenario, _, _ int, _ *rand.Rand) mpisim.Variation {
				// ProblemScale carries the frame index; each phase drifts
				// by DriftPerFrame per frame in its own direction.
				return mpisim.Variation{IPCMul: 1 + dir*p.DriftPerFrame*(s.ProblemScale-1)}
			},
		}
	}
	app := mpisim.AppSpec{Name: "synthetic", Phases: phases}
	runs := make([]mpisim.Run, p.FrameCount)
	params := make([]float64, p.FrameCount)
	for f := 0; f < p.FrameCount; f++ {
		runs[f] = mpisim.Run{
			App: app,
			Scenario: mpisim.Scenario{
				Label:        fmt.Sprintf("frame-%d", f+1),
				Ranks:        p.Ranks,
				Arch:         arch,
				Compiler:     machine.GFortran(),
				Iterations:   p.Iterations,
				ProblemScale: float64(f + 1),
				Seed:         p.Seed + uint64(f),
			},
		}
		params[f] = float64(f + 1)
	}
	return Study{
		Name:             "Synthetic",
		Description:      fmt.Sprintf("synthetic robustness study (%d phases, noise %.0f%%)", p.Phases, 100*p.NoiseIPC),
		Runs:             runs,
		Track:            defaultTrack(),
		ParamName:        "frame",
		ParamValues:      params,
		ExpectedImages:   p.FrameCount,
		ExpectedRegions:  p.Phases,
		ExpectedCoverage: 1,
	}
}

func pow(base float64, exp int) float64 {
	out := 1.0
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}
