package apps

import (
	"perftrack/internal/machine"
	"perftrack/internal/mpisim"
)

// WRFScalability is an extension study beyond the paper's two-point WRF
// comparison: the same model followed across five rank counts (32 to 512),
// the "program scalability" analysis the paper's conclusions mention. It
// is not part of the Table 2 catalog (All's ten rows stay faithful to the
// paper); it backs the scalability-prediction example and tests.
func WRFScalability() Study {
	base := WRF()
	app := base.Runs[0].App
	arch := machine.MareNostrum()
	rankCounts := []int{32, 64, 128, 256, 512}
	runs := make([]mpisim.Run, len(rankCounts))
	params := make([]float64, len(rankCounts))
	for i, ranks := range rankCounts {
		runs[i] = mpisim.Run{
			App: app,
			Scenario: mpisim.Scenario{
				Label:      labelTasks(ranks),
				Ranks:      ranks,
				Arch:       arch,
				Compiler:   machine.GFortran(),
				Iterations: 8,
				Seed:       47,
			},
		}
		params[i] = float64(ranks)
	}
	return Study{
		Name:             "WRF-scalability",
		Description:      "WRF followed across 32..512 tasks (extension: scalability + prediction)",
		Runs:             runs,
		Track:            defaultTrack(),
		ParamName:        "ranks",
		ParamValues:      params,
		ExpectedImages:   len(rankCounts),
		ExpectedRegions:  12,
		ExpectedCoverage: 1,
	}
}
