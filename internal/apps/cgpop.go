package apps

import (
	"math/rand/v2"

	"perftrack/internal/machine"
	"perftrack/internal/mpisim"
)

// CGPOP models the platform/compiler study of Section 4.1 (Fig. 8,
// Table 3): the Parallel Ocean Program proxy run with 128 processes on
// MareNostrum (gfortran vs xlf) and MinoTauro (gfortran vs ifort).
// Published behaviours encoded:
//
//   - Two main instruction trends (regions 1 and 2). On MareNostrum with
//     gfortran: region 1 at 6.8M instructions / 0.25 IPC, region 2 at
//     4.5M / 0.25 (Table 3).
//   - Specialised compilers trade instructions for IPC in the same
//     proportion: xlf -36% instructions at -36% IPC, ifort -30% at -28%,
//     leaving durations flat (the compiler model in package machine).
//   - Changing platform changes the code's behaviour: on MinoTauro the
//     instruction count shrinks (different ISA) and the achieved IPC
//     rises; region 2 shows a bimodal split the tracker must group.
//   - The bimodal split makes every frame show 3 objects of which only 2
//     relations can be resolved: Table 2's 66% coverage for CGPOP.
func CGPOP() Study {
	const file = "solvers.F90"
	mn := machine.MareNostrum()
	mt := machine.MinoTauro()

	// Architecture-dependent factors (relative to MareNostrum/gfortran).
	// On MinoTauro region 1 runs 5M instructions at 0.42 IPC and region 2
	// 3.3M at 0.50 (Table 3).
	archVary := func(instrMT, ipcMT float64) func(mpisim.Scenario, int, int, *rand.Rand) mpisim.Variation {
		return func(s mpisim.Scenario, _, _ int, _ *rand.Rand) mpisim.Variation {
			if s.Arch.Name == mt.Name {
				return mpisim.Variation{InstrMul: instrMT, IPCMul: ipcMT}
			}
			return mpisim.Variation{}
		}
	}

	// Region 1: the conjugate-gradient inner loop, executed ~4x per
	// iteration. Target 0.25 IPC on MareNostrum.
	r1 := mpisim.PhaseSpec{
		Name:      "pcg_halo_sum",
		Stack:     stackRef("pcg_halo_sum", file, 401),
		Instr:     constInstr(6.8 * M),
		IPCFactor: 0.25 / mn.BaseIPC,
		MemFrac:   0.02,
		Repeat:    4,
		// MinoTauro: 5/6.8 instructions, IPC 0.42 = 2.2*(0.25/1.6)*1.2218.
		Vary: archVary(5.0/6.8, 0.42/0.25*mn.BaseIPC/mt.BaseIPC),
	}
	// Region 2: the matrix-vector product, bimodal across ranks on every
	// platform (two nearby behaviours the heuristics cannot separate, so
	// they are grouped — the paper's sub-optimal coverage case).
	r2 := mpisim.PhaseSpec{
		Name:      "btrop_operator",
		Stack:     stackRef("btrop_operator", file, 522),
		Instr:     constInstr(4.5 * M),
		IPCFactor: 0.25 / mn.BaseIPC,
		MemFrac:   0.02,
		Vary: combineVary(
			archVary(3.3/4.5, 0.50/0.25*mn.BaseIPC/mt.BaseIPC),
			rankBimodal(1, 2, 1.08, 0.925),
		),
	}

	app := mpisim.AppSpec{Name: "CGPOP", Phases: []mpisim.PhaseSpec{r1, r2}}
	mkRun := func(arch machine.Arch, comp machine.Compiler) mpisim.Run {
		return mpisim.Run{
			App: app,
			Scenario: mpisim.Scenario{
				Label:      arch.Name + "/" + comp.Name,
				Ranks:      128,
				Arch:       arch,
				Compiler:   comp,
				Iterations: 6,
				Seed:       7,
			},
		}
	}
	return Study{
		Name:        "CGPOP",
		Description: "2 platforms x 2 compilers at 128 processes (paper Fig. 8, Table 3)",
		Runs: []mpisim.Run{
			mkRun(mn, machine.GFortran()),
			mkRun(mn, machine.XLF()),
			mkRun(mt, machine.GFortran()),
			mkRun(mt, machine.IFort()),
		},
		Track:            defaultTrack(),
		ParamName:        "configuration",
		ParamValues:      []float64{1, 2, 3, 4},
		ExpectedImages:   4,
		ExpectedRegions:  2,
		ExpectedCoverage: 2.0 / 3.0,
		// Whole-run invocation counts behind Table 3's durations: region 1
		// executes ~1022 times, region 2 ~272 (12.09s / 11.8ms and
		// 2.13s / 7.8ms respectively).
		PhaseNominal: map[int]int{1: 1022, 2: 272},
	}
}
