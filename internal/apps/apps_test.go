package apps

import (
	"math/rand/v2"
	"testing"

	"perftrack/internal/machine"
	"perftrack/internal/mpisim"
)

func TestCatalogComplete(t *testing.T) {
	all := All()
	if len(all) != 10 {
		t.Fatalf("catalog size = %d, want the 10 studies of Table 2", len(all))
	}
	// Table 2 order and image counts.
	wantImages := map[string]int{
		"Gadget": 2, "QuantumESPRESSO": 2, "WRF": 2, "Gromacs": 3,
		"CGPOP": 4, "NAS BT": 4, "HydroC": 12, "MR-Genesis": 12,
		"NAS FT": 15, "Gromacs-evolution": 20,
	}
	seen := map[string]bool{}
	for _, st := range all {
		if seen[st.Name] {
			t.Errorf("duplicate study %q", st.Name)
		}
		seen[st.Name] = true
		if st.ExpectedImages != wantImages[st.Name] {
			t.Errorf("%s: ExpectedImages = %d, want %d", st.Name, st.ExpectedImages, wantImages[st.Name])
		}
		images := len(st.Runs)
		if st.Windows > 1 {
			images = st.Windows
		}
		if images != st.ExpectedImages {
			t.Errorf("%s: runs/windows produce %d images, expected %d", st.Name, images, st.ExpectedImages)
		}
		if st.ExpectedRegions <= 0 || st.ExpectedCoverage <= 0 || st.ExpectedCoverage > 1 {
			t.Errorf("%s: expectations missing: %d regions, %v coverage", st.Name, st.ExpectedRegions, st.ExpectedCoverage)
		}
		if len(st.ParamValues) != st.ExpectedImages {
			t.Errorf("%s: %d param values for %d images", st.Name, len(st.ParamValues), st.ExpectedImages)
		}
		if st.Description == "" || st.ParamName == "" {
			t.Errorf("%s: missing description or param name", st.Name)
		}
	}
}

func TestCatalogAppsValidate(t *testing.T) {
	for _, st := range All() {
		for i, run := range st.Runs {
			if err := run.App.Validate(); err != nil {
				t.Errorf("%s run %d app invalid: %v", st.Name, i, err)
			}
			if err := run.Scenario.Validate(); err != nil {
				t.Errorf("%s run %d scenario invalid: %v", st.Name, i, err)
			}
		}
	}
}

func TestByName(t *testing.T) {
	st, err := ByName("WRF")
	if err != nil || st.Name != "WRF" {
		t.Errorf("ByName(WRF) = %v, %v", st.Name, err)
	}
	if _, err := ByName("LINPACK"); err == nil {
		t.Error("unknown study accepted")
	}
	names := Names()
	if len(names) != 10 || names[0] != "Gadget" {
		t.Errorf("Names = %v", names)
	}
}

func TestCatalogStacksDistinguishPhases(t *testing.T) {
	// Within each app, phases that are meant to be distinct code must
	// carry some call-stack reference; phases may legitimately share one
	// (the paper's bimodal regions), but none may be empty.
	for _, st := range All() {
		for _, ph := range st.Runs[0].App.Phases {
			if ph.Stack.IsZero() {
				t.Errorf("%s: phase %s has no call-stack reference", st.Name, ph.Name)
			}
		}
	}
}

func TestHelperRankBimodal(t *testing.T) {
	v := rankBimodal(1, 2, 1.1, 0.9)
	rng := rand.New(rand.NewPCG(1, 1))
	sc := mpisim.Scenario{Ranks: 4}
	if got := v(sc, 0, 0, rng); got.IPCMul != 1.1 {
		t.Errorf("even rank mode = %v", got.IPCMul)
	}
	if got := v(sc, 1, 0, rng); got.IPCMul != 0.9 {
		t.Errorf("odd rank mode = %v", got.IPCMul)
	}
}

func TestHelperIterBimodal(t *testing.T) {
	v := iterBimodal(1.0, 0.8)
	rng := rand.New(rand.NewPCG(1, 1))
	sc := mpisim.Scenario{Ranks: 4}
	if got := v(sc, 0, 0, rng); got.IPCMul != 1.0 {
		t.Errorf("even iter = %v", got.IPCMul)
	}
	if got := v(sc, 0, 1, rng); got.IPCMul != 0.8 {
		t.Errorf("odd iter = %v", got.IPCMul)
	}
}

func TestHelperRankLinearImbalance(t *testing.T) {
	v := rankLinearImbalance(0.2)
	rng := rand.New(rand.NewPCG(1, 1))
	sc := mpisim.Scenario{Ranks: 5}
	lo := v(sc, 0, 0, rng).InstrMul
	hi := v(sc, 4, 0, rng).InstrMul
	if lo != 0.8 || hi != 1.2 {
		t.Errorf("imbalance endpoints = %v, %v", lo, hi)
	}
	mid := v(sc, 2, 0, rng).InstrMul
	if mid != 1.0 {
		t.Errorf("imbalance midpoint = %v", mid)
	}
	// Single rank: no imbalance.
	if got := v(mpisim.Scenario{Ranks: 1}, 0, 0, rng); got.InstrMul != 0 && got.InstrMul != 1 {
		t.Errorf("single-rank imbalance = %+v", got)
	}
}

func TestHelperCombineVary(t *testing.T) {
	a := func(mpisim.Scenario, int, int, *rand.Rand) mpisim.Variation {
		return mpisim.Variation{IPCMul: 2}
	}
	b := func(mpisim.Scenario, int, int, *rand.Rand) mpisim.Variation {
		return mpisim.Variation{IPCMul: 3, Skip: true}
	}
	got := combineVary(a, nil, b)(mpisim.Scenario{}, 0, 0, nil)
	if got.IPCMul != 6 {
		t.Errorf("combined IPCMul = %v, want 6", got.IPCMul)
	}
	if !got.Skip {
		t.Error("Skip lost in combination")
	}
	if got.InstrMul != 1 || got.WSMul != 1 {
		t.Errorf("neutral factors = %+v", got)
	}
}

func TestHelperScaleFunctions(t *testing.T) {
	sc := mpisim.Scenario{Ranks: 8, ProblemScale: 3}
	if got := constInstr(5)(sc); got != 5 {
		t.Errorf("constInstr = %v", got)
	}
	if got := strongScaled(80)(sc); got != 10 {
		t.Errorf("strongScaled = %v", got)
	}
	if got := problemScaled(4)(sc); got != 12 {
		t.Errorf("problemScaled = %v", got)
	}
	if got := constWS(7)(sc); got != 7 {
		t.Errorf("constWS = %v", got)
	}
	if got := problemWS(2)(sc); got != 6 {
		t.Errorf("problemWS = %v", got)
	}
}

func TestCompilerFactorsMatchPaper(t *testing.T) {
	// Table 3's arithmetic hinges on these exact factors.
	xlf := machine.XLF()
	if xlf.InstrFactor != 0.64 || xlf.IPCFactor != 0.64 {
		t.Errorf("xlf factors = %+v", xlf)
	}
	ifort := machine.IFort()
	if ifort.InstrFactor != 0.70 {
		t.Errorf("ifort instr factor = %v", ifort.InstrFactor)
	}
}
