package apps

import (
	"math"
	"math/rand/v2"

	"perftrack/internal/machine"
	"perftrack/internal/mpisim"
)

// NASBT models the problem-size study of Section 4.2 (Figs. 9-10): the NAS
// BT solver run on MareNostrum with 16 processes for classes W, A, B and
// C. Published behaviours encoded:
//
//   - Six main computing regions, identifiable in all classes.
//   - Instructions grow two orders of magnitude from W to C (NAS class
//     sizes: 24^3, 64^3, 102^3, 162^3 grid points).
//   - Two IPC trend groups (Fig. 10a): regions 1, 2, 4 and 5 lose 40-65%
//     of IPC as soon as the working set overflows the 1 MB L2 between W
//     and A, then stabilise; regions 3 and 6 have smaller footprints and
//     keep degrading until class B.
//   - The IPC loss correlates with rising L2 data cache misses
//     (Fig. 10b).
//   - Class W shows large IPC variability that mostly vanishes for
//     bigger classes, except for region 2.
func NASBT() Study {
	const file = "bt.f"
	arch := machine.MareNostrum()
	// Per-rank millions of instructions and working sets at class W
	// (ProblemScale 1); both scale with the class size. The first group
	// crosses L2 (1 MB) between W and A; the second between A and B.
	type region struct {
		name   string
		line   int
		instrM float64
		ipc    float64
		wsW    float64 // class-W working set, bytes
	}
	regions := []region{
		{"x_solve", 2583, 40, 1.15, 0.42 * MB},
		{"y_solve", 2834, 28, 0.95, 0.40 * MB},
		{"compute_rhs", 1892, 20, 1.30, 78 * KB},
		{"z_solve", 3085, 14, 1.05, 0.44 * MB},
		{"matmul_sub", 3346, 9, 0.85, 0.38 * MB},
		{"add", 1671, 6, 1.25, 70 * KB},
	}
	phases := make([]mpisim.PhaseSpec, len(regions))
	for i, r := range regions {
		i, r := i, r
		phases[i] = mpisim.PhaseSpec{
			Name:       r.name,
			Stack:      stackRef(r.name, file, r.line),
			Instr:      problemScaled(r.instrM * M),
			WorkingSet: problemWS(r.wsW),
			IPCFactor:  r.ipc / arch.BaseIPC,
			MemFrac:    0.012,
			Vary: func(s mpisim.Scenario, rank, iter int, rng *rand.Rand) mpisim.Variation {
				// Class W presents large IPC variability which greatly
				// reduces afterwards, except for region 2.
				if s.ProblemScale <= 1 || i == 1 {
					return ipcNoise(0.05)(s, rank, iter, rng)
				}
				return mpisim.Variation{}
			},
		}
	}
	app := mpisim.AppSpec{Name: "NAS-BT", Phases: phases}
	classes := []struct {
		label string
		scale float64
	}{
		// Scales follow the grid-point ratios of the NAS classes
		// relative to W (24^3): A=64^3, B=102^3, C=162^3.
		{"Class W", 1},
		{"Class A", math.Pow(64.0/24.0, 3)},
		{"Class B", math.Pow(102.0/24.0, 3)},
		{"Class C", math.Pow(162.0/24.0, 3)},
	}
	runs := make([]mpisim.Run, len(classes))
	params := make([]float64, len(classes))
	for i, c := range classes {
		runs[i] = mpisim.Run{
			App: app,
			Scenario: mpisim.Scenario{
				Label:        c.label,
				Ranks:        16,
				Arch:         arch,
				Compiler:     machine.GFortran(),
				Iterations:   10,
				ProblemScale: c.scale,
				Seed:         11,
			},
		}
		params[i] = c.scale
	}
	return Study{
		Name:             "NAS BT",
		Description:      "problem classes W, A, B, C with 16 processes (paper Figs. 9-10)",
		Runs:             runs,
		Track:            defaultTrack(),
		ParamName:        "problemScale",
		ParamValues:      params,
		ExpectedImages:   4,
		ExpectedRegions:  6,
		ExpectedCoverage: 1.0,
	}
}

// NASFT models the Table 2 NAS FT row: a long sequence of 15 experiments
// with steadily growing problem sizes and two dominant computing regions
// (the FFT butterfly and the evolve step). Tracking must follow both
// regions through 15 frames univocally.
func NASFT() Study {
	const file = "ft.f"
	arch := machine.MareNostrum()
	phases := []mpisim.PhaseSpec{
		{
			Name:       "fftXYZ",
			Stack:      stackRef("fftXYZ", file, 1204),
			Instr:      problemScaled(60 * M),
			WorkingSet: problemWS(0.5 * MB),
			IPCFactor:  1.05 / arch.BaseIPC,
			MemFrac:    0.010,
		},
		{
			Name:       "evolve",
			Stack:      stackRef("evolve", file, 788),
			Instr:      problemScaled(18 * M),
			WorkingSet: problemWS(0.3 * MB),
			IPCFactor:  0.80 / arch.BaseIPC,
			MemFrac:    0.008,
		},
	}
	app := mpisim.AppSpec{Name: "NAS-FT", Phases: phases}
	const n = 15
	runs := make([]mpisim.Run, n)
	params := make([]float64, n)
	for i := 0; i < n; i++ {
		scale := math.Pow(1.35, float64(i))
		runs[i] = mpisim.Run{
			App: app,
			Scenario: mpisim.Scenario{
				Label:        "size-" + strconvItoa(i+1),
				Ranks:        16,
				Arch:         arch,
				Compiler:     machine.GFortran(),
				Iterations:   8,
				ProblemScale: scale,
				Seed:         13,
			},
		}
		params[i] = scale
	}
	return Study{
		Name:             "NAS FT",
		Description:      "15 experiments with growing problem size (paper Table 2)",
		Runs:             runs,
		Track:            defaultTrack(),
		ParamName:        "problemScale",
		ParamValues:      params,
		ExpectedImages:   15,
		ExpectedRegions:  2,
		ExpectedCoverage: 1.0,
	}
}
