package apps

import (
	"math"
	"math/rand/v2"
	"strconv"

	"perftrack/internal/machine"
	"perftrack/internal/mpisim"
)

// strconvItoa is a tiny alias so app files can share it without importing
// strconv everywhere.
func strconvItoa(v int) string { return strconv.Itoa(v) }

// HydroC models the block-size study of Section 4.4 (Fig. 12): the HYDRO
// proxy of RAMSES run on MinoTauro while the 2D block size grows from 4 to
// 1024. Published behaviours encoded:
//
//   - A single computing phase with bimodal behaviour → two tracked
//     regions. The bimodality alternates across iterations (Godunov
//     sweeps along X then Y), so the two behaviours never execute
//     simultaneously and the tracker correctly keeps them apart.
//   - Small blocks execute more control instructions: the count falls
//     1-3% per step up to block 32, then stays flat (Fig. 12a).
//   - Blocks store 8-byte elements, so at block size 64 the working set
//     (64*64*8 = 32 KB) exactly reaches the L1 limit; the next size
//     overflows it, L1 misses jump ~40% (Fig. 12c) and IPC dips sharply —
//     about -5% overall for region 1 and -10% for region 2 (Fig. 12b).
func HydroC() Study {
	const file = "hydro_godunov.c"
	arch := machine.MinoTauro()

	phase := mpisim.PhaseSpec{
		Name:  "hydro_godunov",
		Stack: stackRef("hydro_godunov", file, 214),
		// Control-flow overhead shrinks as blocks grow — 1-3% per step up
		// to block ~32, flat beyond (Fig. 12a).
		Instr: func(s mpisim.Scenario) float64 {
			return 55 * M * (1 + 0.35/float64(s.BlockSize))
		},
		WorkingSet: func(s mpisim.Scenario) float64 {
			b := float64(s.BlockSize)
			ws := b * b * 8 // one 2D block of 8-byte elements
			// Very large blocks are traversed in strips, so the live
			// footprint saturates well below the full block.
			return math.Min(ws, 2*MB)
		},
		IPCFactor: 1.35 / arch.BaseIPC,
		MemFrac:   0.30,
		// Blocked stencil profile: compulsory floor of roughly one miss
		// per cache line (8 elements) damped by in-block reuse, and only
		// a modest ceiling once the block stops fitting — the +40% L1
		// jump of Fig. 12c rather than a capacity cliff. The streams are
		// prefetch-friendly, so last-level misses stay cheap and rare.
		L1Floor: 0.044,
		L1Ceil:  0.0673,
		L2Ceil:  0.04,
		MLP:     8,
		// The X sweep (even iterations) runs at full speed; the Y sweep
		// (odd) is strided: lower IPC and twice the memory intensity, so
		// its dip at the L1 boundary is about twice as deep.
		Vary: func(_ mpisim.Scenario, _, iter int, _ *rand.Rand) mpisim.Variation {
			if iter%2 == 0 {
				return mpisim.Variation{}
			}
			// A distinct behaviour in its own right (tagged for the
			// ground-truth annotation): the tracker keeps it separate
			// because it never runs simultaneously with the X sweep.
			return mpisim.Variation{IPCMul: 0.80, MemFracMul: 2.0, PhaseTag: 1}
		},
	}

	app := mpisim.AppSpec{Name: "HydroC", Phases: []mpisim.PhaseSpec{phase}}
	blockSizes := []int{4, 8, 12, 16, 24, 32, 48, 64, 128, 256, 512, 1024}
	runs := make([]mpisim.Run, len(blockSizes))
	params := make([]float64, len(blockSizes))
	for i, b := range blockSizes {
		runs[i] = mpisim.Run{
			App: app,
			Scenario: mpisim.Scenario{
				Label:      "block-" + strconv.Itoa(b),
				Ranks:      12,
				Arch:       arch,
				Compiler:   machine.GFortran(),
				Iterations: 24,
				BlockSize:  b,
				Seed:       23,
			},
		}
		params[i] = float64(b)
	}
	return Study{
		Name:             "HydroC",
		Description:      "block size 4 -> 1024 on MinoTauro (paper Fig. 12)",
		Runs:             runs,
		Track:            defaultTrack(),
		ParamName:        "blockSize",
		ParamValues:      params,
		ExpectedImages:   12,
		ExpectedRegions:  2,
		ExpectedCoverage: 1.0,
	}
}
