// Package apps is the catalog of synthetic application models standing in
// for the ten case studies of the paper's Table 2: Gadget, Quantum
// ESPRESSO, WRF, Gromacs (two studies), CGPOP, NAS BT, HydroC, MR-Genesis
// and NAS FT. Each model encodes the published structural facts of its
// real counterpart — phase structure, imbalance, bimodality, working-set
// scaling, compiler/architecture sensitivity — so the clustering and
// tracking pipeline exercises the same code paths it would on real traces
// and reproduces the paper's qualitative results.
package apps

import (
	"fmt"
	"math"
	"math/rand/v2"

	"perftrack/internal/cluster"
	"perftrack/internal/core"
	"perftrack/internal/mpisim"
	"perftrack/internal/trace"
)

// M is one million, the natural unit for per-burst instruction counts.
const M = 1e6

// KB and MB are working-set size units.
const (
	KB = 1024.0
	MB = 1024.0 * KB
)

// Study describes one multi-experiment analysis: the runs (or the single
// run plus time windows) whose traces become the frame sequence, the
// tracking configuration, and the expectations from the paper used by the
// reproduction harness.
type Study struct {
	// Name matches the paper's Table 2 row (plus a disambiguating suffix
	// for the two Gromacs studies).
	Name string
	// Description is a one-line summary of what the study varies.
	Description string
	// Runs are the experiments, in frame order.
	Runs []mpisim.Run
	// Windows, when > 0, means the study analyses the evolution within a
	// single experiment: only Runs[0] is simulated and its trace is split
	// into this many time windows, each becoming a frame.
	Windows int
	// Track is the tracking configuration tuned for this study.
	Track core.Config
	// ParamName and ParamValues describe the per-frame explanatory
	// variable of the study (rank count, problem class, block size, ...).
	ParamName   string
	ParamValues []float64
	// ExpectedImages, ExpectedRegions and ExpectedCoverage are the
	// corresponding Table 2 cells.
	ExpectedImages   int
	ExpectedRegions  int
	ExpectedCoverage float64
	// PhaseNominal maps simulator phase ids to the nominal whole-run
	// invocation counts used to scale per-burst durations up to the
	// region durations the paper reports (see EXPERIMENTS.md).
	PhaseNominal map[int]int
}

// All returns the ten studies in the order of the paper's Table 2.
func All() []Study {
	return []Study{
		Gadget(),
		QuantumESPRESSO(),
		WRF(),
		GromacsVersions(),
		CGPOP(),
		NASBT(),
		HydroC(),
		MRGenesis(),
		NASFT(),
		GromacsEvolution(),
	}
}

// ByName resolves a study by its Table 2 name. The default synthetic
// robustness study is addressable as "Synthetic", which is what service
// smoke tests and benchmarks submit when they need a fast, fully known
// workload outside the paper's catalog.
func ByName(name string) (Study, error) {
	if name == "Synthetic" {
		return Synthetic(SyntheticParams{}), nil
	}
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Study{}, fmt.Errorf("apps: unknown study %q", name)
}

// Names lists the catalog in Table 2 order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, s := range all {
		out[i] = s.Name
	}
	return out
}

// defaultTrack is the tracking configuration shared by the studies: a
// fixed DBSCAN radius in the per-frame normalised space (the synthetic
// frames are well conditioned, so the k-dist heuristic is unnecessary) and
// a small cluster-weight cut to drop stragglers.
func defaultTrack() core.Config {
	return core.Config{
		Cluster: cluster.Config{
			Eps:              0.07,
			MinPts:           5,
			MinClusterWeight: 0.002,
		},
	}
}

// stackRef builds a call-stack reference.
func stackRef(fn, file string, line int) trace.CallstackRef {
	return trace.CallstackRef{Function: fn, File: file, Line: line}
}

// constInstr returns a scenario-independent per-rank instruction count.
func constInstr(n float64) func(mpisim.Scenario) float64 {
	return func(mpisim.Scenario) float64 { return n }
}

// strongScaled returns a per-rank instruction count for strong scaling: a
// fixed total divided by the rank count.
func strongScaled(total float64) func(mpisim.Scenario) float64 {
	return func(s mpisim.Scenario) float64 { return total / float64(s.Ranks) }
}

// problemScaled returns per-rank instructions proportional to the problem
// scale.
func problemScaled(base float64) func(mpisim.Scenario) float64 {
	return func(s mpisim.Scenario) float64 { return base * s.ProblemScale }
}

// constWS returns a scenario-independent working set.
func constWS(bytes float64) func(mpisim.Scenario) float64 {
	return func(mpisim.Scenario) float64 { return bytes }
}

// problemWS returns a working set proportional to the problem scale.
func problemWS(base float64) func(mpisim.Scenario) float64 {
	return func(s mpisim.Scenario) float64 { return base * s.ProblemScale }
}

// rankBimodal returns a Vary hook that splits the ranks into two
// performance modes: ranks whose index satisfies rank%den < num run at
// ipcA, the rest at ipcB. Splitting across ranks (rather than time) is
// what makes the two resulting clusters simultaneous, so the SPMD
// evaluator groups them as one code region.
func rankBimodal(num, den int, ipcA, ipcB float64) func(mpisim.Scenario, int, int, *rand.Rand) mpisim.Variation {
	return func(_ mpisim.Scenario, rank, _ int, _ *rand.Rand) mpisim.Variation {
		if rank%den < num {
			return mpisim.Variation{IPCMul: ipcA}
		}
		return mpisim.Variation{IPCMul: ipcB}
	}
}

// iterBimodal returns a Vary hook alternating two modes across iterations
// (bimodality distributed in time, not across ranks — the two clusters
// are never simultaneous, so tracking keeps them apart; this is how
// HydroC's "single computing phase with bimodal behaviour" stays two
// tracked regions).
func iterBimodal(ipcEven, ipcOdd float64) func(mpisim.Scenario, int, int, *rand.Rand) mpisim.Variation {
	return func(_ mpisim.Scenario, _, iter int, _ *rand.Rand) mpisim.Variation {
		if iter%2 == 0 {
			return mpisim.Variation{IPCMul: ipcEven}
		}
		// The odd mode is a genuinely distinct behaviour: tag it so the
		// ground-truth annotation distinguishes the two regions.
		return mpisim.Variation{IPCMul: ipcOdd, PhaseTag: 1}
	}
}

// rankLinearImbalance returns a Vary hook spreading the instruction count
// linearly across ranks in [1-spread, 1+spread] — the paper's "clusters
// that stretch vertically denote instructions imbalance".
func rankLinearImbalance(spread float64) func(mpisim.Scenario, int, int, *rand.Rand) mpisim.Variation {
	return func(s mpisim.Scenario, rank, _ int, _ *rand.Rand) mpisim.Variation {
		if s.Ranks <= 1 {
			return mpisim.Variation{}
		}
		frac := float64(rank)/float64(s.Ranks-1) - 0.5
		return mpisim.Variation{InstrMul: 1 + 2*spread*frac}
	}
}

// combineVary chains Vary hooks, multiplying their factor effects. Later
// hooks win for Stack and Skip.
func combineVary(hooks ...func(mpisim.Scenario, int, int, *rand.Rand) mpisim.Variation) func(mpisim.Scenario, int, int, *rand.Rand) mpisim.Variation {
	return func(s mpisim.Scenario, rank, iter int, rng *rand.Rand) mpisim.Variation {
		out := mpisim.Variation{InstrMul: 1, IPCMul: 1, WSMul: 1}
		for _, h := range hooks {
			if h == nil {
				continue
			}
			v := h(s, rank, iter, rng)
			out.InstrMul *= nonZeroF(v.InstrMul)
			out.IPCMul *= nonZeroF(v.IPCMul)
			out.WSMul *= nonZeroF(v.WSMul)
			if v.Stack != nil {
				out.Stack = v.Stack
			}
			if v.Skip {
				out.Skip = true
			}
		}
		return out
	}
}

func nonZeroF(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}

// ipcNoise returns a Vary hook adding extra multiplicative IPC jitter.
func ipcNoise(sigma float64) func(mpisim.Scenario, int, int, *rand.Rand) mpisim.Variation {
	return func(_ mpisim.Scenario, _, _ int, rng *rand.Rand) mpisim.Variation {
		return mpisim.Variation{IPCMul: math.Exp(rng.NormFloat64() * sigma)}
	}
}
