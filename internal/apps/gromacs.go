package apps

import (
	"math/rand/v2"

	"perftrack/internal/machine"
	"perftrack/internal/mpisim"
)

// gromacsCommon builds the shared structure of the two Gromacs studies:
// nonbonded force kernels dominate, with PME, bonded forces and neighbour
// search behind.
//
// When bimodal is true the two nonbonded kernel variants live in one phase
// split across ranks (same source reference): the SPMD evaluator groups
// the resulting pair of clusters into a single wide relation, which is
// what caps the evolution study at 80% coverage. When false they are two
// separate phases with distinct references, fully trackable.
func gromacsCommon(arch machine.Arch, bimodal bool) []mpisim.PhaseSpec {
	const file = "nonbonded_kernels.c"
	var nonbonded []mpisim.PhaseSpec
	if bimodal {
		nonbonded = []mpisim.PhaseSpec{{
			Name:      "nb_kernel_elec_vdw",
			Stack:     stackRef("nb_kernel_elec_vdw", file, 310),
			Instr:     strongScaled(38_000 * M),
			IPCFactor: 1.45 / arch.BaseIPC,
			MemFrac:   0.02,
			Vary:      rankBimodal(1, 2, 1.10, 0.91),
		}}
	} else {
		nonbonded = []mpisim.PhaseSpec{
			{
				Name:      "nb_kernel_water",
				Stack:     stackRef("nb_kernel_water", file, 310),
				Instr:     strongScaled(22_000 * M),
				IPCFactor: 1.58 / arch.BaseIPC,
				MemFrac:   0.02,
			},
			{
				Name:      "nb_kernel_generic",
				Stack:     stackRef("nb_kernel_generic", file, 742),
				Instr:     strongScaled(16_000 * M),
				IPCFactor: 1.28 / arch.BaseIPC,
				MemFrac:   0.02,
			},
		}
	}
	rest := []mpisim.PhaseSpec{
		{
			Name:      "pme_spread_gather",
			Stack:     stackRef("pme_spread_gather", "pme.c", 1210),
			Instr:     strongScaled(9_500 * M),
			IPCFactor: 0.95 / arch.BaseIPC,
			MemFrac:   0.02,
		},
		{
			Name:      "bonded_forces",
			Stack:     stackRef("bonded_forces", "bondfree.c", 2240),
			Instr:     strongScaled(5_200 * M),
			IPCFactor: 1.20 / arch.BaseIPC,
			MemFrac:   0.02,
		},
		{
			Name:      "ns_grid_search",
			Stack:     stackRef("ns_grid_search", "ns.c", 880),
			Instr:     strongScaled(2_600 * M),
			IPCFactor: 0.72 / arch.BaseIPC,
			MemFrac:   0.02,
		},
	}
	return append(nonbonded, rest...)
}

// GromacsVersions models the first Gromacs row of Table 2: three
// experiments comparing program versions (a software-change study), five
// objects per frame, all correlated univocally (100% coverage).
func GromacsVersions() Study {
	arch := machine.MinoTauro()
	phases := gromacsCommon(arch, false)
	// Version-dependent effects: v4.5 speeds up PME by 12%; v4.6 keeps
	// that, vectorises the nonbonded kernels (+18% IPC) and adds 6% more
	// instructions to bonded forces.
	version := func(phase int) func(mpisim.Scenario, int, int, *rand.Rand) mpisim.Variation {
		return func(s mpisim.Scenario, _, _ int, _ *rand.Rand) mpisim.Variation {
			v := mpisim.Variation{}
			switch s.Label {
			case "v4.5":
				if phase == 2 {
					v.IPCMul = 1.12
				}
			case "v4.6":
				switch phase {
				case 2:
					v.IPCMul = 1.12
				case 0, 1:
					v.IPCMul = 1.18
				case 3:
					v.InstrMul = 1.06
				}
			}
			return v
		}
	}
	for i := range phases {
		phases[i].Vary = combineVary(phases[i].Vary, version(i))
	}
	app := mpisim.AppSpec{Name: "Gromacs", Phases: phases}
	mkRun := func(label string) mpisim.Run {
		return mpisim.Run{
			App: app,
			Scenario: mpisim.Scenario{
				Label:      label,
				Ranks:      64,
				Arch:       arch,
				Compiler:   machine.GFortran(),
				Iterations: 10,
				Seed:       29,
			},
		}
	}
	return Study{
		Name:             "Gromacs",
		Description:      "three program versions at 64 processes (paper Table 2, 3-image study)",
		Runs:             []mpisim.Run{mkRun("v4.0"), mkRun("v4.5"), mkRun("v4.6")},
		Track:            defaultTrack(),
		ParamName:        "version",
		ParamValues:      []float64{1, 2, 3},
		ExpectedImages:   3,
		ExpectedRegions:  5,
		ExpectedCoverage: 1.0,
	}
}

// GromacsEvolution models the last Table 2 row: the evolution of a single
// long Gromacs run analysed as 20 consecutive time windows. Load imbalance
// builds up as particles migrate, so the nonbonded kernels slowly lose IPC
// along the run. The bimodal nonbonded pair stays grouped (wide relation),
// giving 4 tracked regions out of 5 objects — the paper's 80% coverage.
func GromacsEvolution() Study {
	arch := machine.MinoTauro()
	phases := gromacsCommon(arch, true)
	// IPC of the nonbonded kernels decays ~12% over the full run.
	drift := func(s mpisim.Scenario, _, iter int, _ *rand.Rand) mpisim.Variation {
		frac := float64(iter) / float64(s.Iterations)
		return mpisim.Variation{IPCMul: 1 - 0.12*frac}
	}
	phases[0].Vary = combineVary(phases[0].Vary, drift)
	app := mpisim.AppSpec{Name: "Gromacs", Phases: phases}
	run := mpisim.Run{
		App: app,
		Scenario: mpisim.Scenario{
			Label:      "long-run",
			Ranks:      64,
			Arch:       arch,
			Compiler:   machine.GFortran(),
			Iterations: 100,
			Seed:       31,
		},
	}
	params := make([]float64, 20)
	for i := range params {
		params[i] = float64(i + 1)
	}
	return Study{
		Name:             "Gromacs-evolution",
		Description:      "one long run split into 20 time windows (paper Table 2, 20-image study)",
		Runs:             []mpisim.Run{run},
		Windows:          20,
		Track:            defaultTrack(),
		ParamName:        "window",
		ParamValues:      params,
		ExpectedImages:   20,
		ExpectedRegions:  4,
		ExpectedCoverage: 0.8,
	}
}
