package apps

import (
	"fmt"
	"math"
	"math/rand/v2"
	"strconv"

	"perftrack/internal/machine"
	"perftrack/internal/mpisim"
)

// WRF models the Weather Research & Forecasting study of the paper's
// Figures 1, 3-7 and Table 1: twelve main computing regions, run with 128
// and then 256 tasks on MareNostrum. The published behaviours encoded
// here:
//
//   - Per-rank instructions halve when the rank count doubles (strong
//     scaling); after rank-weighting the normalised structure is stable.
//   - Region 1 replicates ~5% of its work when doubling ranks (Fig. 7b).
//   - Regions 11 and 12 lose ~20% IPC at 256 tasks; regions 4, 6 and 7
//     gain ~5% (Fig. 7a).
//   - Region 2 is instruction-imbalanced (vertical stretch in Fig. 1a);
//     regions 7 and 11 have IPC variability (horizontal stretch).
//   - At 256 tasks, regions 2 and 9 develop a rank-distributed bimodal
//     split — the extra clusters of Fig. 1b that the SPMD evaluator must
//     re-group ("some processes execute different computations
//     simultaneously; these are the same regions of code").
//   - Regions 2 and 5 share a source reference, as do 11 and 12 (the
//     non-univocal call-stack relations of Table 1).
func WRF() Study {
	const file = "module_comm_dm.f90"
	// Per-rank instruction counts at the 128-task reference, in millions,
	// and target IPCs on MareNostrum. Ordered so that total duration
	// decreases with the region number, matching the paper's numbering
	// convention (clusters are ranked by the time they represent).
	type region struct {
		instrM float64 // per-rank instructions at 128 tasks, millions
		ipc    float64 // target IPC on MareNostrum (gfortran)
		line   int
	}
	regions := []region{
		{900, 0.95, 4939}, // 1: most instructions, replicated work
		{640, 0.72, 6474}, // 2: imbalanced, shares stack with 5, splits at 256
		{520, 1.00, 6060}, // 3
		{420, 0.85, 2472}, // 4: +5% IPC at 256
		{330, 0.78, 6474}, // 5: same code as 2, second behaviour
		{260, 1.12, 3105}, // 6: +5% IPC at 256
		{195, 0.90, 5734}, // 7: IPC variability, +5% at 256
		{150, 0.80, 1812}, // 8
		{118, 1.10, 2956}, // 9: splits bimodally at 256
		{92, 0.70, 3517},  // 10
		{72, 0.50, 6275},  // 11: IPC variability, -20% at 256, shares stack with 12
		{56, 0.92, 6275},  // 12: -20% at 256
	}
	arch := machine.MareNostrum()

	phases := make([]mpisim.PhaseSpec, len(regions))
	for i, r := range regions {
		i, r := i, r
		// The function name derives from the source line so that phases
		// sharing a line (2 and 5, 11 and 12) share the full reference,
		// exactly as one code region with two behaviours would.
		ph := mpisim.PhaseSpec{
			Name:      wrfPhaseName(i + 1),
			Stack:     stackRef(fmt.Sprintf("halo_sub_%d", r.line), file, r.line),
			IPCFactor: r.ipc / arch.BaseIPC,
			MemFrac:   0.05,
			Instr:     strongScaled(r.instrM * M * 128),
		}
		var hooks []func(mpisim.Scenario, int, int, *rand.Rand) mpisim.Variation
		switch i + 1 {
		case 1:
			// ~5% code replication per rank doubling: the total
			// instruction count grows instead of staying constant.
			ph.Instr = func(s mpisim.Scenario) float64 {
				total := r.instrM * M * 128
				repl := 1 + 0.05*(math.Log2(float64(s.Ranks))-7)
				return total * repl / float64(s.Ranks)
			}
		case 2:
			hooks = append(hooks, rankLinearImbalance(0.15))
			hooks = append(hooks, at256(rankBimodal(1, 2, 1.09, 0.92)))
		case 4, 6, 7:
			hooks = append(hooks, at256(constIPC(1.05)))
		case 9:
			hooks = append(hooks, at256(rankBimodal(1, 2, 1.09, 0.92)))
		case 11:
			hooks = append(hooks, at256(constIPC(0.80)))
		case 12:
			hooks = append(hooks, at256(constIPC(0.80)))
		}
		switch i + 1 {
		case 7:
			ph.NoiseIPC = 0.04 // horizontal stretch of Fig. 1a
		case 11:
			ph.NoiseIPC = 0.03
		}
		if len(hooks) > 0 {
			ph.Vary = combineVary(hooks...)
		}
		phases[i] = ph
	}

	app := mpisim.AppSpec{Name: "WRF", Phases: phases}
	mkRun := func(ranks int) mpisim.Run {
		return mpisim.Run{
			App: app,
			Scenario: mpisim.Scenario{
				Label:      labelTasks(ranks),
				Ranks:      ranks,
				Arch:       arch,
				Compiler:   machine.GFortran(),
				Iterations: 8,
				Seed:       42,
			},
		}
	}
	return Study{
		Name:             "WRF",
		Description:      "strong scaling 128 -> 256 tasks (paper Figs. 1, 3-7, Table 1)",
		Runs:             []mpisim.Run{mkRun(128), mkRun(256)},
		Track:            defaultTrack(),
		ParamName:        "ranks",
		ParamValues:      []float64{128, 256},
		ExpectedImages:   2,
		ExpectedRegions:  12,
		ExpectedCoverage: 1.0,
	}
}

func wrfPhaseName(i int) string {
	names := []string{
		"", "advance_uv", "advance_mu_t", "advance_w", "advect_scalar",
		"halo_exchange", "small_step_prep", "rk_step_prep", "phys_bc",
		"set_physical_bc2d", "spec_bdy", "relax_bdy", "calc_coef_w",
	}
	if i < len(names) {
		return names[i]
	}
	return "phase"
}

// at256 gates a Vary hook to scenarios with 256 or more ranks.
func at256(h func(mpisim.Scenario, int, int, *rand.Rand) mpisim.Variation) func(mpisim.Scenario, int, int, *rand.Rand) mpisim.Variation {
	return func(s mpisim.Scenario, rank, iter int, rng *rand.Rand) mpisim.Variation {
		if s.Ranks < 256 {
			return mpisim.Variation{}
		}
		return h(s, rank, iter, rng)
	}
}

// constIPC returns a Vary hook applying a constant IPC multiplier.
func constIPC(mul float64) func(mpisim.Scenario, int, int, *rand.Rand) mpisim.Variation {
	return func(mpisim.Scenario, int, int, *rand.Rand) mpisim.Variation {
		return mpisim.Variation{IPCMul: mul}
	}
}

func labelTasks(ranks int) string {
	return strconv.Itoa(ranks) + "-tasks"
}
