package apps

import (
	"strconv"

	"perftrack/internal/machine"
	"perftrack/internal/mpisim"
)

// MRGenesis models the multi-core resource-sharing study of Section 4.3
// (Fig. 11): the relativistic MHD code run on MinoTauro with 12 processes
// while the allowed tasks per node grows from 1 (12 nodes, one process
// each) to 12 (a single fully packed node). Published behaviours encoded:
//
//   - Two main computing regions with the same qualitative behaviour.
//   - The total instruction count stays constant across trials (only the
//     physical mapping changes).
//   - IPC declines slowly (steps under ~1.5%) up to 8 tasks per node,
//     then drops sharply — an ~8.5% step as the node saturates — for an
//     overall degradation around 17.5% (Fig. 11a).
//   - L2 misses grow as co-located processes shrink the effective shared
//     cache, inversely mirroring the IPC curve (Fig. 11b).
//
// The mechanism in the machine model: per-process bandwidth demand times
// the number of co-located processes approaches the node's memory
// bandwidth, and the queueing factor 1/(1-utilisation) inflates the
// memory stall nonlinearly; on top, the shared last-level cache is divided
// among socket neighbours, raising the miss count itself.
func MRGenesis() Study {
	const file = "mrgenesis_rmhd.F90"
	arch := machine.MinoTauro()
	mk := func(name string, line int, instr float64, ipc float64) mpisim.PhaseSpec {
		return mpisim.PhaseSpec{
			Name:  name,
			Stack: stackRef(name, file, line),
			Instr: constInstr(instr),
			// A bit above the per-process share of the socket's last
			// level cache once the node is almost full, so the miss count
			// itself starts creeping up at 11-12 tasks per node.
			WorkingSet: constWS(2.1 * MB),
			IPCFactor:  ipc / arch.BaseIPC,
			MemFrac:    0.25,
			// Streaming flux updates: high raw miss traffic but deeply
			// pipelined by the hardware prefetchers. Calibrated so the
			// aggregate bandwidth demand of 12 processes reaches ~80% of
			// the node bandwidth: IPC steps stay under ~1.5% up to 8
			// tasks/node, then the queueing knee bites (Fig. 11a).
			L2Floor: 0.24,
			MLP:     45,
		}
	}
	phases := []mpisim.PhaseSpec{
		mk("flux_ct", 911, 30*M, 1.30),
		mk("riemann_solver", 1387, 12*M, 1.05),
	}
	app := mpisim.AppSpec{Name: "MR-Genesis", Phases: phases}

	const n = 12
	runs := make([]mpisim.Run, n)
	params := make([]float64, n)
	for i := 0; i < n; i++ {
		tpn := i + 1
		runs[i] = mpisim.Run{
			App: app,
			Scenario: mpisim.Scenario{
				Label:        strconv.Itoa(tpn) + "-per-node",
				Ranks:        12,
				TasksPerNode: tpn,
				Arch:         arch,
				Compiler:     machine.GFortran(),
				Iterations:   16,
				Seed:         17,
			},
		}
		params[i] = float64(tpn)
	}
	return Study{
		Name:             "MR-Genesis",
		Description:      "12 processes packed onto 1..12 cores per node (paper Fig. 11)",
		Runs:             runs,
		Track:            defaultTrack(),
		ParamName:        "tasksPerNode",
		ParamValues:      params,
		ExpectedImages:   12,
		ExpectedRegions:  2,
		ExpectedCoverage: 1.0,
	}
}
