package apps

import (
	"perftrack/internal/machine"
	"perftrack/internal/mpisim"
)

// Gadget models the first Table 2 row: the cosmological N-body/SPH code
// compared across two experiments (strong scaling 64 -> 128 tasks). Eight
// computing phases dominate; the tree-walk phase is bimodal across ranks
// (particle-density dependent kernel paths), so each frame shows nine
// objects of which eight relations can be resolved — Table 2's 88%
// coverage.
func Gadget() Study {
	const file = "gravtree.c"
	arch := machine.MareNostrum()
	type region struct {
		name   string
		file   string
		line   int
		instrT float64 // total instructions across ranks, millions
		ipc    float64
	}
	regions := []region{
		{"force_treeevaluate", file, 512, 96_000, 1.00},
		{"density_loop", "density.c", 330, 64_000, 0.78},
		{"hydro_force", "hydra.c", 270, 42_000, 1.12},
		{"domain_decompose", "domain.c", 154, 26_000, 0.62},
		{"pmforce_periodic", "pm_periodic.c", 441, 17_000, 0.92},
		{"timestep_update", "timestep.c", 98, 11_000, 1.22},
		{"tree_build", "forcetree.c", 702, 7_000, 0.70},
		{"io_buffering", "io.c", 215, 4_200, 1.05},
	}
	phases := make([]mpisim.PhaseSpec, len(regions))
	for i, r := range regions {
		phases[i] = mpisim.PhaseSpec{
			Name:      r.name,
			Stack:     stackRef(r.name, r.file, r.line),
			Instr:     strongScaled(r.instrT * M),
			IPCFactor: r.ipc / arch.BaseIPC,
			MemFrac:   0.03,
		}
	}
	// The tree walk takes two speeds depending on local particle density,
	// distributed across ranks: the ninth object.
	phases[0].Vary = rankBimodal(1, 2, 1.11, 0.90)

	app := mpisim.AppSpec{Name: "Gadget", Phases: phases}
	mkRun := func(ranks int) mpisim.Run {
		return mpisim.Run{
			App: app,
			Scenario: mpisim.Scenario{
				Label:      labelTasks(ranks),
				Ranks:      ranks,
				Arch:       arch,
				Compiler:   machine.GFortran(),
				Iterations: 8,
				Seed:       37,
			},
		}
	}
	return Study{
		Name:             "Gadget",
		Description:      "strong scaling 64 -> 128 tasks (paper Table 2, 2-image study)",
		Runs:             []mpisim.Run{mkRun(64), mkRun(128)},
		Track:            defaultTrack(),
		ParamName:        "ranks",
		ParamValues:      []float64{64, 128},
		ExpectedImages:   2,
		ExpectedRegions:  8,
		ExpectedCoverage: 8.0 / 9.0,
	}
}

// QuantumESPRESSO models the second Table 2 row: the plane-wave DFT code
// compared across two experiments. Three of its six phases (the FFT-bound
// ones) are bimodal across ranks — planes assigned to different FFT grid
// shapes — so each frame shows nine objects grouped into six relations:
// Table 2's 66% coverage.
func QuantumESPRESSO() Study {
	arch := machine.MareNostrum()
	type region struct {
		name    string
		file    string
		line    int
		instrT  float64
		ipc     float64
		bimodal bool
	}
	regions := []region{
		{"fft_scatter", "fft_base.f90", 601, 88_000, 1.02, true},
		{"h_psi", "h_psi.f90", 122, 55_000, 0.80, true},
		{"cegterg_diag", "cegterg.f90", 345, 34_000, 1.18, false},
		{"vloc_psi", "vloc_psi.f90", 210, 21_000, 0.66, true},
		{"sum_band", "sum_band.f90", 179, 13_000, 0.95, false},
		{"mix_rho", "mix_rho.f90", 88, 8_000, 1.25, false},
	}
	phases := make([]mpisim.PhaseSpec, len(regions))
	for i, r := range regions {
		total := r.instrT * M
		phases[i] = mpisim.PhaseSpec{
			Name:  r.name,
			Stack: stackRef(r.name, r.file, r.line),
			// The larger input grows the work proportionally.
			Instr: func(s mpisim.Scenario) float64 {
				return total * s.ProblemScale / float64(s.Ranks)
			},
			IPCFactor: r.ipc / arch.BaseIPC,
			MemFrac:   0.03,
		}
		if r.bimodal {
			phases[i].Vary = rankBimodal(1, 2, 1.10, 0.90)
		}
	}
	app := mpisim.AppSpec{Name: "QuantumESPRESSO", Phases: phases}
	mkRun := func(label string, scale float64) mpisim.Run {
		return mpisim.Run{
			App: app,
			Scenario: mpisim.Scenario{
				Label:        label,
				Ranks:        64,
				Arch:         arch,
				Compiler:     machine.GFortran(),
				Iterations:   8,
				ProblemScale: scale,
				Seed:         41,
			},
		}
	}
	return Study{
		Name:             "QuantumESPRESSO",
		Description:      "two inputs at 64 processes (paper Table 2, 2-image study)",
		Runs:             []mpisim.Run{mkRun("input-small", 1), mkRun("input-large", 1.6)},
		Track:            defaultTrack(),
		ParamName:        "problemScale",
		ParamValues:      []float64{1, 1.6},
		ExpectedImages:   2,
		ExpectedRegions:  6,
		ExpectedCoverage: 2.0 / 3.0,
	}
}
