// Package profile implements the baseline the paper positions itself
// against: classic profile-based multi-experiment comparison, where
// performance data is summarised as per-code-region averages (the
// SCALASCA "performance algebra" / PerfExplorer / phase-profiling model of
// Section 5).
//
// A profile aggregates every burst of one call-stack reference into a
// single row: invocation count, total/mean duration, mean IPC. Comparing
// two experiments subtracts such profiles. The paper's core criticism —
// "one same section of code can exhibit different behaviors, thus making
// averages will hide divergent performance trends" — is made measurable
// here: each row also carries dispersion and bimodality statistics, so the
// library can quantify exactly what the averages are hiding and the
// comparison against the tracking approach can be run programmatically.
package profile

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"perftrack/internal/metrics"
	"perftrack/internal/stats"
	"perftrack/internal/trace"
)

// Row is the aggregate of one code region (one call-stack reference) in
// one experiment — what a traditional profiler reports.
type Row struct {
	Stack trace.CallstackRef
	// Count is the number of invocations (bursts).
	Count int
	// TotalDurationNS and MeanDurationNS summarise the time.
	TotalDurationNS float64
	MeanDurationNS  float64
	// MeanIPC and MeanInstructions are the per-invocation averages a
	// profiler would report.
	MeanIPC          float64
	MeanInstructions float64
	// StdIPC is the dispersion hidden behind MeanIPC.
	StdIPC float64
	// BimodalityIPC is Sarle's bimodality coefficient of the IPC sample:
	// (skewness^2 + 1) / kurtosis. Values above ~0.555 (the uniform
	// distribution's coefficient) indicate multi-modal behaviour that the
	// mean misrepresents.
	BimodalityIPC float64
}

// Profile is the per-region summary of one experiment.
type Profile struct {
	Label string
	Rows  []Row
}

// BimodalityThreshold is Sarle's uniform-distribution reference value:
// samples whose coefficient exceeds it are suspect of multi-modality.
const BimodalityThreshold = 5.0 / 9.0

// New aggregates a trace into a profile, one row per distinct call-stack
// reference, ordered by decreasing total duration.
func New(t *trace.Trace) *Profile {
	type acc struct {
		count    int
		totalDur float64
		ipcs     []float64
		instrs   []float64
	}
	byStack := map[trace.CallstackRef]*acc{}
	for _, b := range t.Bursts {
		a := byStack[b.Stack]
		if a == nil {
			a = &acc{}
			byStack[b.Stack] = a
		}
		a.count++
		a.totalDur += float64(b.DurationNS)
		a.ipcs = append(a.ipcs, metrics.IPC.Eval(b.Sample()))
		a.instrs = append(a.instrs, metrics.Instructions.Eval(b.Sample()))
	}
	p := &Profile{Label: t.Meta.Label}
	for st, a := range byStack {
		row := Row{
			Stack:            st,
			Count:            a.count,
			TotalDurationNS:  a.totalDur,
			MeanDurationNS:   a.totalDur / float64(a.count),
			MeanIPC:          stats.Mean(a.ipcs),
			MeanInstructions: stats.Mean(a.instrs),
			StdIPC:           stats.StdDev(a.ipcs),
			BimodalityIPC:    bimodality(a.ipcs),
		}
		p.Rows = append(p.Rows, row)
	}
	sort.Slice(p.Rows, func(i, j int) bool {
		if p.Rows[i].TotalDurationNS != p.Rows[j].TotalDurationNS {
			return p.Rows[i].TotalDurationNS > p.Rows[j].TotalDurationNS
		}
		return lessStack(p.Rows[i].Stack, p.Rows[j].Stack)
	})
	return p
}

func lessStack(a, b trace.CallstackRef) bool {
	if a.File != b.File {
		return a.File < b.File
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Function < b.Function
}

// bimodality computes Sarle's bimodality coefficient in its asymptotic
// form b = (g1^2 + 1) / (g2 + 3) over the population moments, where g1 is
// the skewness and g2 the excess kurtosis. A uniform distribution scores
// exactly 5/9 (the threshold), a normal one 1/3, and a clean two-mode
// mixture approaches 1. Samples smaller than 4 or with zero variance
// report 0.
func bimodality(xs []float64) float64 {
	n := float64(len(xs))
	if n < 4 {
		return 0
	}
	m := stats.Mean(xs)
	var m2, m3, m4 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
		m4 += d * d * d * d
	}
	m2 /= n
	m3 /= n
	m4 /= n
	if m2 == 0 {
		return 0
	}
	g1 := m3 / math.Pow(m2, 1.5)
	g2 := m4/(m2*m2) - 3
	denom := g2 + 3
	if denom <= 0 {
		return 0
	}
	return (g1*g1 + 1) / denom
}

// Find returns the row of a reference, or nil.
func (p *Profile) Find(st trace.CallstackRef) *Row {
	for i := range p.Rows {
		if p.Rows[i].Stack == st {
			return &p.Rows[i]
		}
	}
	return nil
}

// MultimodalRows returns the rows whose IPC distribution looks
// multi-modal — the regions whose profile average is actively misleading.
func (p *Profile) MultimodalRows() []Row {
	var out []Row
	for _, r := range p.Rows {
		if r.BimodalityIPC > BimodalityThreshold {
			out = append(out, r)
		}
	}
	return out
}

// Delta is the per-region difference between two experiments, the
// "performance algebra" subtraction of SCALASCA.
type Delta struct {
	Stack trace.CallstackRef
	// A and B are the rows of each experiment (nil when absent).
	A, B *Row
	// DurationRatio is B's total duration over A's (0 when undefined).
	DurationRatio float64
	// IPCRatio is B's mean IPC over A's (0 when undefined).
	IPCRatio float64
}

// Compare subtracts profile a from profile b region by region.
func Compare(a, b *Profile) []Delta {
	refs := map[trace.CallstackRef]bool{}
	for _, r := range a.Rows {
		refs[r.Stack] = true
	}
	for _, r := range b.Rows {
		refs[r.Stack] = true
	}
	ordered := make([]trace.CallstackRef, 0, len(refs))
	for st := range refs {
		ordered = append(ordered, st)
	}
	sort.Slice(ordered, func(i, j int) bool { return lessStack(ordered[i], ordered[j]) })
	var out []Delta
	for _, st := range ordered {
		d := Delta{Stack: st, A: a.Find(st), B: b.Find(st)}
		if d.A != nil && d.B != nil {
			if d.A.TotalDurationNS > 0 {
				d.DurationRatio = d.B.TotalDurationNS / d.A.TotalDurationNS
			}
			if d.A.MeanIPC > 0 {
				d.IPCRatio = d.B.MeanIPC / d.A.MeanIPC
			}
		}
		out = append(out, d)
	}
	return out
}

// String renders the profile as a classic flat profile listing.
func (p *Profile) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "flat profile of %s (%d regions)\n", p.Label, len(p.Rows))
	fmt.Fprintf(&sb, "%-34s %8s %12s %10s %8s %8s %6s\n",
		"region", "calls", "total(ms)", "mean(ms)", "IPC", "sd(IPC)", "bimod")
	for _, r := range p.Rows {
		flag := " "
		if r.BimodalityIPC > BimodalityThreshold {
			flag = "*"
		}
		fmt.Fprintf(&sb, "%-34s %8d %12.3f %10.4f %8.3f %8.3f %5.2f%s\n",
			r.Stack.String(), r.Count, r.TotalDurationNS/1e6, r.MeanDurationNS/1e6,
			r.MeanIPC, r.StdIPC, r.BimodalityIPC, flag)
	}
	if rows := p.MultimodalRows(); len(rows) > 0 {
		fmt.Fprintf(&sb, "* %d region(s) show multi-modal IPC: the mean hides distinct behaviours\n", len(rows))
	}
	return sb.String()
}
