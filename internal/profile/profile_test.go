package profile

import (
	"math"
	"strings"
	"testing"

	"perftrack/internal/metrics"
	"perftrack/internal/trace"
)

func mk(fn string, line int, ipc, instr float64, n int) []trace.Burst {
	out := make([]trace.Burst, n)
	for i := range out {
		b := trace.Burst{
			Task:       i,
			DurationNS: int64(instr / ipc),
			Stack:      trace.CallstackRef{Function: fn, File: "f.c", Line: line},
		}
		b.Counters[metrics.CtrInstructions] = instr
		b.Counters[metrics.CtrCycles] = instr / ipc
		out[i] = b
	}
	return out
}

func unimodalTrace() *trace.Trace {
	t := &trace.Trace{Meta: trace.Metadata{Label: "uni", Ranks: 8}}
	t.Bursts = append(t.Bursts, mk("solve", 10, 1.0, 1e6, 8)...)
	t.Bursts = append(t.Bursts, mk("halo", 20, 0.5, 2e5, 8)...)
	return t
}

// bimodalTrace gives "solve" two distinct IPC modes across its
// invocations: the case profiles mislead on.
func bimodalTrace() *trace.Trace {
	t := &trace.Trace{Meta: trace.Metadata{Label: "bi", Ranks: 8}}
	t.Bursts = append(t.Bursts, mk("solve", 10, 1.4, 1e6, 8)...)
	t.Bursts = append(t.Bursts, mk("solve", 10, 0.6, 1e6, 8)...)
	t.Bursts = append(t.Bursts, mk("halo", 20, 0.5, 2e5, 8)...)
	return t
}

func TestNewProfileBasics(t *testing.T) {
	p := New(unimodalTrace())
	if len(p.Rows) != 2 {
		t.Fatalf("rows = %d", len(p.Rows))
	}
	// Ordered by total duration: solve (8e6 ns) first, halo (3.2e6) next.
	if p.Rows[0].Stack.Function != "solve" {
		t.Errorf("row order: %v", p.Rows[0].Stack)
	}
	r := p.Rows[0]
	if r.Count != 8 {
		t.Errorf("count = %d", r.Count)
	}
	if math.Abs(r.MeanIPC-1.0) > 1e-9 {
		t.Errorf("mean IPC = %v", r.MeanIPC)
	}
	if math.Abs(r.MeanInstructions-1e6) > 1e-6 {
		t.Errorf("mean instructions = %v", r.MeanInstructions)
	}
	if math.Abs(r.TotalDurationNS-8e6) > 1 {
		t.Errorf("total duration = %v", r.TotalDurationNS)
	}
	if r.StdIPC != 0 {
		t.Errorf("unimodal std = %v", r.StdIPC)
	}
}

func TestBimodalityDetection(t *testing.T) {
	uni := New(unimodalTrace())
	if rows := uni.MultimodalRows(); len(rows) != 0 {
		t.Errorf("unimodal profile flagged: %v", rows)
	}
	bi := New(bimodalTrace())
	rows := bi.MultimodalRows()
	if len(rows) != 1 || rows[0].Stack.Function != "solve" {
		t.Fatalf("multimodal rows = %+v", rows)
	}
	// The profile's headline number actively misleads: the mean IPC 1.0
	// is a value NO invocation ever achieved (modes at 1.4 and 0.6).
	r := bi.Find(trace.CallstackRef{Function: "solve", File: "f.c", Line: 10})
	if math.Abs(r.MeanIPC-1.0) > 1e-9 {
		t.Errorf("bimodal mean = %v", r.MeanIPC)
	}
	if r.BimodalityIPC <= BimodalityThreshold {
		t.Errorf("bimodality coefficient = %v, want > %v", r.BimodalityIPC, BimodalityThreshold)
	}
}

func TestBimodalityEdgeCases(t *testing.T) {
	if got := bimodality([]float64{1, 2}); got != 0 {
		t.Errorf("tiny sample = %v", got)
	}
	if got := bimodality([]float64{3, 3, 3, 3, 3}); got != 0 {
		t.Errorf("zero variance = %v", got)
	}
	// A clean two-point mixture maxes the coefficient.
	two := []float64{1, 1, 1, 1, 2, 2, 2, 2}
	if got := bimodality(two); got <= BimodalityThreshold {
		t.Errorf("two-mode sample = %v", got)
	}
}

func TestFind(t *testing.T) {
	p := New(unimodalTrace())
	if p.Find(trace.CallstackRef{Function: "nope"}) != nil {
		t.Error("found a missing region")
	}
	if p.Find(trace.CallstackRef{Function: "halo", File: "f.c", Line: 20}) == nil {
		t.Error("missed an existing region")
	}
}

func TestCompare(t *testing.T) {
	a := New(unimodalTrace())
	fast := unimodalTrace()
	// Experiment B: solve doubles its IPC (duration halves).
	for i := range fast.Bursts {
		if fast.Bursts[i].Stack.Function == "solve" {
			fast.Bursts[i].Counters[metrics.CtrCycles] /= 2
			fast.Bursts[i].DurationNS /= 2
		}
	}
	fast.Meta.Label = "fast"
	b := New(fast)
	deltas := Compare(a, b)
	if len(deltas) != 2 {
		t.Fatalf("deltas = %d", len(deltas))
	}
	for _, d := range deltas {
		switch d.Stack.Function {
		case "solve":
			if math.Abs(d.IPCRatio-2.0) > 1e-9 {
				t.Errorf("solve IPC ratio = %v", d.IPCRatio)
			}
			if math.Abs(d.DurationRatio-0.5) > 1e-9 {
				t.Errorf("solve duration ratio = %v", d.DurationRatio)
			}
		case "halo":
			if math.Abs(d.IPCRatio-1.0) > 1e-9 {
				t.Errorf("halo IPC ratio = %v", d.IPCRatio)
			}
		}
	}
}

func TestCompareDisjointRegions(t *testing.T) {
	a := New(unimodalTrace())
	other := &trace.Trace{Meta: trace.Metadata{Label: "o", Ranks: 8}}
	other.Bursts = mk("brand_new", 99, 1.0, 1e6, 8)
	b := New(other)
	deltas := Compare(a, b)
	if len(deltas) != 3 {
		t.Fatalf("deltas = %d", len(deltas))
	}
	for _, d := range deltas {
		if d.Stack.Function == "brand_new" {
			if d.A != nil || d.B == nil {
				t.Errorf("new region sides: %+v", d)
			}
			if d.IPCRatio != 0 {
				t.Errorf("undefined ratio = %v", d.IPCRatio)
			}
		}
	}
}

func TestProfileString(t *testing.T) {
	s := New(bimodalTrace()).String()
	for _, want := range []string{"flat profile", "solve", "halo", "multi-modal"} {
		if !strings.Contains(s, want) {
			t.Errorf("profile listing missing %q:\n%s", want, s)
		}
	}
}
