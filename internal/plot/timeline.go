package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// TimeSpan is one coloured interval of a task timeline: a burst of a given
// cluster/region executed by a task over [Start, End).
type TimeSpan struct {
	Task       int
	Start, End float64
	Class      int
}

// Timeline renders the temporal sequence of clusters per task — the
// paper's Figure 4, a Paraver-style view where the Y axis is the task and
// the X axis is time, coloured by cluster.
type Timeline struct {
	Title  string
	XLabel string
	Spans  []TimeSpan
	// Width and Height of the SVG canvas; zero selects 760x360.
	Width, Height int
}

func (t *Timeline) size() (int, int) {
	w, h := t.Width, t.Height
	if w <= 0 {
		w = 760
	}
	if h <= 0 {
		h = 360
	}
	return w, h
}

func (t *Timeline) extent() (tasks []int, lo, hi float64) {
	seen := map[int]bool{}
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, s := range t.Spans {
		seen[s.Task] = true
		if s.Start < lo {
			lo = s.Start
		}
		if s.End > hi {
			hi = s.End
		}
	}
	for task := range seen {
		tasks = append(tasks, task)
	}
	sort.Ints(tasks)
	if lo > hi {
		lo, hi = 0, 1
	}
	return tasks, lo, hi
}

// SVG renders the timeline.
func (t *Timeline) SVG() string {
	w, h := t.size()
	tasks, lo, hi := t.extent()
	if len(tasks) == 0 {
		tasks = []int{0}
	}
	row := map[int]int{}
	for i, task := range tasks {
		row[task] = i
	}
	left, right := 70.0, float64(w-20)
	top, bottom := float64(marginTop), float64(h-marginBottom)
	rowH := (bottom - top) / float64(len(tasks))
	px := func(x float64) float64 {
		if hi == lo {
			return left
		}
		return left + (x-lo)/(hi-lo)*(right-left)
	}

	var sb strings.Builder
	svgHeader(&sb, w, h, t.Title)
	fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#888"/>`+"\n",
		left, top, right-left, bottom-top)
	for _, s := range t.Spans {
		r, ok := row[s.Task]
		if !ok {
			continue
		}
		x0, x1 := px(s.Start), px(s.End)
		if x1-x0 < 0.5 {
			x1 = x0 + 0.5
		}
		fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
			x0, top+float64(r)*rowH, x1-x0, rowH*0.92, ColorFor(s.Class))
	}
	// Task labels: first, middle, last.
	marks := []int{0, len(tasks) / 2, len(tasks) - 1}
	for _, i := range marks {
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-size="10" text-anchor="end" fill="#444">task %d</text>`+"\n",
			left-6, top+float64(i)*rowH+rowH*0.7, tasks[i])
	}
	if t.XLabel != "" {
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-size="12" text-anchor="middle" fill="#222">%s</text>`+"\n",
			(left+right)/2, bottom+24, escape(t.XLabel))
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

// ASCII renders the timeline as rows of glyphs (one row per task, sampled
// to at most `rows` tasks).
func (t *Timeline) ASCII(cols, rows int) string {
	if cols <= 0 {
		cols = 78
	}
	if rows <= 0 {
		rows = 16
	}
	tasks, lo, hi := t.extent()
	if len(tasks) == 0 || hi <= lo {
		return "(empty timeline)\n"
	}
	step := 1
	if len(tasks) > rows {
		step = (len(tasks) + rows - 1) / rows
	}
	keep := map[int]int{} // task -> output row
	outRows := 0
	for i := 0; i < len(tasks); i += step {
		keep[tasks[i]] = outRows
		outRows++
	}
	grid := make([][]byte, outRows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	for _, s := range t.Spans {
		r, ok := keep[s.Task]
		if !ok {
			continue
		}
		c0 := int((s.Start - lo) / (hi - lo) * float64(cols-1))
		c1 := int((s.End - lo) / (hi - lo) * float64(cols-1))
		g := GlyphFor(s.Class)
		for c := c0; c <= c1 && c < cols; c++ {
			if c >= 0 {
				grid[r][c] = g
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "%s\n", t.Title)
	}
	for r := 0; r < outRows; r++ {
		sb.WriteByte('|')
		sb.Write(grid[r])
		sb.WriteString("|\n")
	}
	fmt.Fprintf(&sb, "%d tasks (1 row per %d), time %s .. %s\n", len(tasks), step, formatTick(lo), formatTick(hi))
	return sb.String()
}
