// Package plot renders the paper's visual artefacts without external
// dependencies: scatter "frames" of the performance space (Figs. 1, 6, 8,
// 9), trend line charts (Figs. 7, 10-12), cluster timelines (Fig. 4) and
// multi-frame SVG filmstrips (the tool's "simple animation"). Every
// renderer has an SVG backend for files and an ASCII backend for
// terminals; both are deterministic so outputs can be diffed across runs.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// palette is a categorical colour cycle for cluster/region identifiers,
// chosen for contrast on white. Index 0 (noise) renders grey.
var palette = []string{
	"#4363d8", "#e6194B", "#3cb44b", "#ffb000", "#911eb4",
	"#42d4f4", "#f58231", "#607d3b", "#f032e6", "#9A6324",
	"#469990", "#800000", "#808000", "#000075", "#e6beff",
	"#aaffc3", "#ffd8b1", "#fffac8",
}

// ColorFor returns the colour of class id (0 = noise/untracked = grey).
func ColorFor(id int) string {
	if id <= 0 {
		return "#bbbbbb"
	}
	return palette[(id-1)%len(palette)]
}

// glyphs is the ASCII counterpart of the palette.
const glyphs = "123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"

// GlyphFor returns the terminal glyph of class id (0 = noise = '.').
func GlyphFor(id int) byte {
	if id <= 0 {
		return '.'
	}
	return glyphs[(id-1)%len(glyphs)]
}

// Range is a plotting interval.
type axisRange struct{ lo, hi float64 }

func (r axisRange) width() float64 { return r.hi - r.lo }

// rangeOf computes the padded data range of xs, falling back to [0,1] for
// empty or degenerate data.
func rangeOf(xs []float64, pad float64) axisRange {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if lo > hi {
		return axisRange{0, 1}
	}
	if lo == hi {
		d := math.Abs(lo) * 0.1
		if d == 0 {
			d = 1
		}
		return axisRange{lo - d, hi + d}
	}
	w := hi - lo
	return axisRange{lo - pad*w, hi + pad*w}
}

// niceTicks returns ~n human-friendly tick positions covering r.
func niceTicks(r axisRange, n int) []float64 {
	if n < 2 {
		n = 2
	}
	raw := r.width() / float64(n)
	if raw <= 0 {
		return []float64{r.lo}
	}
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch norm := raw / mag; {
	case norm < 1.5:
		step = mag
	case norm < 3:
		step = 2 * mag
	case norm < 7:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	first := math.Ceil(r.lo/step) * step
	var ticks []float64
	for v := first; v <= r.hi+step*1e-9; v += step {
		ticks = append(ticks, v)
	}
	return ticks
}

// formatTick renders a tick label compactly, with SI-ish suffixes for
// large magnitudes (instruction counts).
func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e9:
		return trimZero(fmt.Sprintf("%.1fG", v/1e9))
	case av >= 1e6:
		return trimZero(fmt.Sprintf("%.1fM", v/1e6))
	case av >= 1e3:
		return trimZero(fmt.Sprintf("%.1fk", v/1e3))
	case av == 0:
		return "0"
	case av < 0.01:
		return fmt.Sprintf("%.1e", v)
	default:
		return trimZero(fmt.Sprintf("%.2f", v))
	}
}

// trimZero turns "4.0M" into "4M" and "0.50" into "0.5".
func trimZero(s string) string {
	num, suffix := s, ""
	if n := len(s); n > 0 && (s[n-1] < '0' || s[n-1] > '9') {
		num, suffix = s[:n-1], s[n-1:]
	}
	if !strings.Contains(num, ".") {
		return s
	}
	num = strings.TrimRight(num, "0")
	num = strings.TrimSuffix(num, ".")
	return num + suffix
}

// logSafe maps v onto a log10 axis, clamping non-positive values.
func logSafe(v float64) float64 {
	if v < 1e-12 {
		v = 1e-12
	}
	return math.Log10(v)
}
