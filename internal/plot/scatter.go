package plot

import (
	"fmt"
	"sort"
	"strings"
)

// ScatterPoint is one burst in the performance space, classified by its
// cluster or tracked-region id (0 = noise).
type ScatterPoint struct {
	X, Y  float64
	Class int
}

// Scatter renders one frame of the performance space — the paper's Figures
// 1, 6, 8 and 9.
type Scatter struct {
	Title  string
	XLabel string
	YLabel string
	Points []ScatterPoint
	// XLog/YLog select logarithmic axes (the paper's instruction axes).
	XLog, YLog bool
	// Width and Height of the SVG canvas in pixels; zero selects 640x480.
	Width, Height int
	// ClassNames optionally labels legend entries (index = class id).
	ClassNames map[int]string
}

const (
	marginLeft   = 64
	marginRight  = 150
	marginTop    = 36
	marginBottom = 46
)

func (s *Scatter) size() (int, int) {
	w, h := s.Width, s.Height
	if w <= 0 {
		w = 640
	}
	if h <= 0 {
		h = 480
	}
	return w, h
}

// classes returns the sorted distinct class ids present.
func (s *Scatter) classes() []int {
	seen := map[int]bool{}
	for _, p := range s.Points {
		seen[p.Class] = true
	}
	out := make([]int, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// transformed returns the axis values after the optional log transform.
func (s *Scatter) transformed() (xs, ys []float64) {
	xs = make([]float64, len(s.Points))
	ys = make([]float64, len(s.Points))
	for i, p := range s.Points {
		x, y := p.X, p.Y
		if s.XLog {
			x = logSafe(x)
		}
		if s.YLog {
			y = logSafe(y)
		}
		xs[i], ys[i] = x, y
	}
	return xs, ys
}

// SVG renders the scatter plot.
func (s *Scatter) SVG() string {
	w, h := s.size()
	xs, ys := s.transformed()
	xr := rangeOf(xs, 0.05)
	yr := rangeOf(ys, 0.05)
	plotW := float64(w - marginLeft - marginRight)
	plotH := float64(h - marginTop - marginBottom)
	px := func(x float64) float64 { return float64(marginLeft) + (x-xr.lo)/xr.width()*plotW }
	py := func(y float64) float64 { return float64(marginTop) + (1-(y-yr.lo)/yr.width())*plotH }

	var sb strings.Builder
	svgHeader(&sb, w, h, s.Title)
	svgAxes(&sb, w, h, s.XLabel, s.YLabel, xr, yr, s.XLog, s.YLog, px, py)
	for i, p := range s.Points {
		fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="2.2" fill="%s" fill-opacity="0.75"/>`+"\n",
			px(xs[i]), py(ys[i]), ColorFor(p.Class))
	}
	s.legend(&sb, w)
	sb.WriteString("</svg>\n")
	return sb.String()
}

func (s *Scatter) legend(sb *strings.Builder, w int) {
	x := w - marginRight + 14
	y := marginTop + 6
	for _, c := range s.classes() {
		name := s.ClassNames[c]
		if name == "" {
			if c == 0 {
				name = "noise"
			} else {
				name = fmt.Sprintf("Region %d", c)
			}
		}
		fmt.Fprintf(sb, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n", x, y, ColorFor(c))
		fmt.Fprintf(sb, `<text x="%d" y="%d" font-size="11" fill="#333">%s</text>`+"\n", x+14, y+9, escape(name))
		y += 16
	}
}

// ASCII renders the scatter as a character grid of the given size (zero
// selects 78x24). Each cell shows the glyph of the dominant class in it.
func (s *Scatter) ASCII(cols, rows int) string {
	if cols <= 0 {
		cols = 78
	}
	if rows <= 0 {
		rows = 24
	}
	xs, ys := s.transformed()
	xr := rangeOf(xs, 0.02)
	yr := rangeOf(ys, 0.02)
	// counts[row][col][class]
	type cellCount map[int]int
	grid := make([]cellCount, rows*cols)
	for i := range s.Points {
		c := int((xs[i] - xr.lo) / xr.width() * float64(cols-1))
		r := int((1 - (ys[i]-yr.lo)/yr.width()) * float64(rows-1))
		if c < 0 || c >= cols || r < 0 || r >= rows {
			continue
		}
		if grid[r*cols+c] == nil {
			grid[r*cols+c] = cellCount{}
		}
		grid[r*cols+c][s.Points[i].Class]++
	}
	var sb strings.Builder
	if s.Title != "" {
		fmt.Fprintf(&sb, "%s\n", s.Title)
	}
	for r := 0; r < rows; r++ {
		sb.WriteByte('|')
		for c := 0; c < cols; c++ {
			cell := grid[r*cols+c]
			if len(cell) == 0 {
				sb.WriteByte(' ')
				continue
			}
			best, bestN := 0, -1
			ids := make([]int, 0, len(cell))
			for id := range cell {
				ids = append(ids, id)
			}
			sort.Ints(ids)
			for _, id := range ids {
				if cell[id] > bestN {
					best, bestN = id, cell[id]
				}
			}
			sb.WriteByte(GlyphFor(best))
		}
		sb.WriteString("|\n")
	}
	fmt.Fprintf(&sb, "X: %s [%s .. %s]   Y: %s [%s .. %s]\n",
		s.XLabel, formatTick(unlog(xr.lo, s.XLog)), formatTick(unlog(xr.hi, s.XLog)),
		s.YLabel, formatTick(unlog(yr.lo, s.YLog)), formatTick(unlog(yr.hi, s.YLog)))
	return sb.String()
}

func unlog(v float64, isLog bool) float64 {
	if isLog {
		return pow10(v)
	}
	return v
}

func pow10(v float64) float64 {
	return mathPow10(v)
}
