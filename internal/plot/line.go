package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one line of a trend chart: the evolution of a metric for one
// tracked region along the frame sequence.
type Series struct {
	Name string
	// Y holds one value per x position; NaN marks a gap (region absent).
	Y []float64
	// Class selects the line colour (tracked region id).
	Class int
}

// LineChart renders per-region performance trends — the paper's Figures 7,
// 10, 11 and 12.
type LineChart struct {
	Title  string
	XLabel string
	YLabel string
	// XTicks labels the x positions (experiment labels: "128-tasks",
	// "Class A", "block-64", ...).
	XTicks []string
	Series []Series
	YLog   bool
	// Width and Height of the SVG canvas in pixels; zero selects 720x420.
	Width, Height int
}

func (l *LineChart) size() (int, int) {
	w, h := l.Width, l.Height
	if w <= 0 {
		w = 720
	}
	if h <= 0 {
		h = 420
	}
	return w, h
}

func (l *LineChart) xCount() int {
	n := len(l.XTicks)
	for _, s := range l.Series {
		if len(s.Y) > n {
			n = len(s.Y)
		}
	}
	return n
}

func (l *LineChart) yValues() []float64 {
	var ys []float64
	for _, s := range l.Series {
		for _, v := range s.Y {
			if !math.IsNaN(v) {
				if l.YLog {
					v = logSafe(v)
				}
				ys = append(ys, v)
			}
		}
	}
	return ys
}

// SVG renders the chart.
func (l *LineChart) SVG() string {
	w, h := l.size()
	n := l.xCount()
	if n < 1 {
		n = 1
	}
	yr := rangeOf(l.yValues(), 0.08)
	plotW := float64(w - marginLeft - marginRight)
	plotH := float64(h - marginTop - marginBottom)
	px := func(i int) float64 {
		if n == 1 {
			return float64(marginLeft) + plotW/2
		}
		return float64(marginLeft) + float64(i)/float64(n-1)*plotW
	}
	py := func(y float64) float64 {
		if l.YLog {
			y = logSafe(y)
		}
		return float64(marginTop) + (1-(y-yr.lo)/yr.width())*plotH
	}

	var sb strings.Builder
	svgHeader(&sb, w, h, l.Title)
	// Y axis with ticks; X axis with categorical labels.
	left, right := float64(marginLeft), float64(w-marginRight)
	top, bottom := float64(marginTop), float64(h-marginBottom)
	fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#888"/>`+"\n",
		left, top, right-left, bottom-top)
	for _, t := range niceTicks(yr, 6) {
		y := float64(marginTop) + (1-(t-yr.lo)/yr.width())*plotH
		fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#eee"/>`+"\n", left, y, right, y)
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-size="10" text-anchor="end" fill="#444">%s</text>`+"\n",
			left-7, y+3, escape(tickLabel(t, l.YLog)))
	}
	step := 1
	if n > 12 {
		step = (n + 11) / 12
	}
	for i := 0; i < n; i++ {
		x := px(i)
		fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#888"/>`+"\n", x, bottom, x, bottom+4)
		if i%step == 0 && i < len(l.XTicks) {
			fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-size="10" text-anchor="middle" fill="#444">%s</text>`+"\n",
				x, bottom+16, escape(l.XTicks[i]))
		}
	}
	if l.XLabel != "" {
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-size="12" text-anchor="middle" fill="#222">%s</text>`+"\n",
			(left+right)/2, bottom+34, escape(l.XLabel))
	}
	if l.YLabel != "" {
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-size="12" text-anchor="middle" fill="#222" transform="rotate(-90 %.1f %.1f)">%s</text>`+"\n",
			left-46, (top+bottom)/2, left-46, (top+bottom)/2, escape(l.YLabel))
	}

	// Lines and markers.
	for _, s := range l.Series {
		color := ColorFor(s.Class)
		var path strings.Builder
		pen := false
		for i, v := range s.Y {
			if math.IsNaN(v) {
				pen = false
				continue
			}
			cmd := "L"
			if !pen {
				cmd = "M"
				pen = true
			}
			fmt.Fprintf(&path, "%s%.1f %.1f ", cmd, px(i), py(v))
		}
		fmt.Fprintf(&sb, `<path d="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n", strings.TrimSpace(path.String()), color)
		for i, v := range s.Y {
			if !math.IsNaN(v) {
				fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", px(i), py(v), color)
			}
		}
	}
	// Legend.
	x := w - marginRight + 14
	y := marginTop + 6
	for _, s := range l.Series {
		fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n", x, y, ColorFor(s.Class))
		fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="11" fill="#333">%s</text>`+"\n", x+14, y+9, escape(s.Name))
		y += 16
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

// ASCII renders the chart as a character grid (zero size selects 72x20).
func (l *LineChart) ASCII(cols, rows int) string {
	if cols <= 0 {
		cols = 72
	}
	if rows <= 0 {
		rows = 20
	}
	n := l.xCount()
	yr := rangeOf(l.yValues(), 0.05)
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	for _, s := range l.Series {
		g := GlyphFor(s.Class)
		for i, v := range s.Y {
			if math.IsNaN(v) {
				continue
			}
			if l.YLog {
				v = logSafe(v)
			}
			c := 0
			if n > 1 {
				c = i * (cols - 1) / (n - 1)
			}
			r := int((1 - (v-yr.lo)/yr.width()) * float64(rows-1))
			if r >= 0 && r < rows && c >= 0 && c < cols {
				grid[r][c] = g
			}
		}
	}
	var sb strings.Builder
	if l.Title != "" {
		fmt.Fprintf(&sb, "%s\n", l.Title)
	}
	for r := 0; r < rows; r++ {
		sb.WriteByte('|')
		sb.Write(grid[r])
		sb.WriteString("|\n")
	}
	fmt.Fprintf(&sb, "Y: %s [%s .. %s]  X: %s",
		l.YLabel, formatTick(unlog(yr.lo, l.YLog)), formatTick(unlog(yr.hi, l.YLog)), l.XLabel)
	if len(l.XTicks) > 0 {
		fmt.Fprintf(&sb, " (%s .. %s)", l.XTicks[0], l.XTicks[len(l.XTicks)-1])
	}
	sb.WriteByte('\n')
	for _, s := range l.Series {
		fmt.Fprintf(&sb, "  %c = %s\n", GlyphFor(s.Class), s.Name)
	}
	return sb.String()
}
