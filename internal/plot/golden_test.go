package plot

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// Golden-file tests pin the exact rendered bytes of every plot kind, SVG
// and ASCII. The renderers sort all map-derived collections (classes,
// tasks, cell glyph counts) before emitting, so output is byte-stable; a
// diff here means the rendering changed, which is worth a deliberate
// `go test ./internal/plot -run Golden -update` and a review of the new
// files, never an accident.

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (create with -update): %v", name, err)
	}
	if got == string(want) {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w string
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if g != w {
			t.Fatalf("%s: first difference at line %d:\n  got:  %q\n  want: %q\n(rerun with -update if the change is intended)",
				name, i+1, g, w)
		}
	}
	t.Fatalf("%s: output differs from golden (rerun with -update if intended)", name)
}

// goldenScatter is a tiny hand-built frame: two clusters, noise, log X
// axis and named legend entries — every scatter feature in one figure.
func goldenScatter() *Scatter {
	s := &Scatter{
		Title:  "golden frame",
		XLabel: "Instructions",
		YLabel: "IPC",
		XLog:   true,
		ClassNames: map[int]string{
			1: "compute",
			2: "halo",
		},
	}
	for i := 0; i < 8; i++ {
		s.Points = append(s.Points,
			ScatterPoint{X: 1e6 * (1 + 0.01*float64(i)), Y: 1.4 + 0.005*float64(i), Class: 1},
			ScatterPoint{X: 4e7 * (1 + 0.01*float64(i)), Y: 0.6 + 0.005*float64(i), Class: 2},
		)
	}
	s.Points = append(s.Points, ScatterPoint{X: 9e6, Y: 1.0, Class: 0})
	return s
}

func TestGoldenScatter(t *testing.T) {
	s := goldenScatter()
	checkGolden(t, "scatter.svg.golden", s.SVG())
	checkGolden(t, "scatter.ascii.golden", s.ASCII(60, 16))
}

func TestGoldenLineChart(t *testing.T) {
	l := &LineChart{
		Title:  "golden trend",
		XLabel: "experiment",
		YLabel: "IPC",
		XTicks: []string{"32-tasks", "64-tasks", "128-tasks", "256-tasks"},
		Series: []Series{
			{Name: "compute", Class: 1, Y: []float64{1.42, 1.38, 1.31, 1.18}},
			{Name: "halo", Class: 2, Y: []float64{0.61, 0.58, math.NaN(), 0.44}},
		},
	}
	checkGolden(t, "line.svg.golden", l.SVG())
	checkGolden(t, "line.ascii.golden", l.ASCII(60, 14))
}

func TestGoldenTimeline(t *testing.T) {
	tl := &Timeline{Title: "golden timeline", XLabel: "time (ms)"}
	for task := 0; task < 4; task++ {
		off := 0.3 * float64(task)
		tl.Spans = append(tl.Spans,
			TimeSpan{Task: task, Start: 0 + off, Class: 1, End: 4 + off},
			TimeSpan{Task: task, Start: 4 + off, Class: 2, End: 6 + off},
			TimeSpan{Task: task, Start: 6 + off, Class: 1, End: 10 + off},
		)
	}
	checkGolden(t, "timeline.svg.golden", tl.SVG())
	checkGolden(t, "timeline.ascii.golden", tl.ASCII(60, 8))
}

func TestGoldenFilmstrip(t *testing.T) {
	fs := &Filmstrip{Title: "golden filmstrip", Columns: 2}
	for f := 0; f < 3; f++ {
		sc := &Scatter{
			Title:  fmt.Sprintf("frame %d", f),
			XLabel: "x",
			YLabel: "y",
			Width:  320,
			Height: 240,
		}
		for i := 0; i < 6; i++ {
			sc.Points = append(sc.Points, ScatterPoint{
				X:     float64(i) + 0.2*float64(f),
				Y:     1 + 0.1*float64(i*f),
				Class: 1 + i%2,
			})
		}
		fs.Frames = append(fs.Frames, sc)
	}
	checkGolden(t, "filmstrip.grid.svg.golden", fs.GridSVG())
	checkGolden(t, "filmstrip.anim.svg.golden", fs.AnimatedSVG())
}
