package plot

import (
	"fmt"
	"math"
	"strings"
)

// svgHeader opens the document and draws the background and title.
func svgHeader(sb *strings.Builder, w, h int, title string) {
	fmt.Fprintf(sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="Helvetica,Arial,sans-serif">`+"\n", w, h, w, h)
	fmt.Fprintf(sb, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	if title != "" {
		fmt.Fprintf(sb, `<text x="%d" y="20" font-size="14" font-weight="bold" text-anchor="middle" fill="#222">%s</text>`+"\n", w/2, escape(title))
	}
}

// svgAxes draws the plot box, ticks, grid lines and axis labels. px/py map
// data coordinates (already log-transformed when applicable) to pixels.
func svgAxes(sb *strings.Builder, w, h int, xlabel, ylabel string,
	xr, yr axisRange, xlog, ylog bool, px, py func(float64) float64) {

	left, right := float64(marginLeft), float64(w-marginRight)
	top, bottom := float64(marginTop), float64(h-marginBottom)
	fmt.Fprintf(sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#888"/>`+"\n",
		left, top, right-left, bottom-top)

	for _, t := range niceTicks(xr, 6) {
		x := px(t)
		fmt.Fprintf(sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#eee"/>`+"\n", x, top, x, bottom)
		fmt.Fprintf(sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#888"/>`+"\n", x, bottom, x, bottom+4)
		fmt.Fprintf(sb, `<text x="%.1f" y="%.1f" font-size="10" text-anchor="middle" fill="#444">%s</text>`+"\n",
			x, bottom+16, escape(tickLabel(t, xlog)))
	}
	for _, t := range niceTicks(yr, 6) {
		y := py(t)
		fmt.Fprintf(sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#eee"/>`+"\n", left, y, right, y)
		fmt.Fprintf(sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#888"/>`+"\n", left-4, y, left, y)
		fmt.Fprintf(sb, `<text x="%.1f" y="%.1f" font-size="10" text-anchor="end" fill="#444">%s</text>`+"\n",
			left-7, y+3, escape(tickLabel(t, ylog)))
	}
	if xlabel != "" {
		fmt.Fprintf(sb, `<text x="%.1f" y="%.1f" font-size="12" text-anchor="middle" fill="#222">%s</text>`+"\n",
			(left+right)/2, bottom+34, escape(xlabel))
	}
	if ylabel != "" {
		fmt.Fprintf(sb, `<text x="%.1f" y="%.1f" font-size="12" text-anchor="middle" fill="#222" transform="rotate(-90 %.1f %.1f)">%s</text>`+"\n",
			left-46, (top+bottom)/2, left-46, (top+bottom)/2, escape(ylabel))
	}
}

// tickLabel formats a tick value, undoing the log transform for display.
func tickLabel(t float64, isLog bool) string {
	if isLog {
		return formatTick(math.Pow(10, t))
	}
	return formatTick(t)
}

// mathPow10 exists so scatter.go can avoid importing math twice through
// helper indirection.
func mathPow10(v float64) float64 { return math.Pow(10, v) }

// escape sanitises text content for SVG.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
