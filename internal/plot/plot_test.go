package plot

import (
	"encoding/xml"
	"math"
	"strings"
	"testing"
)

func TestColorFor(t *testing.T) {
	if ColorFor(0) != "#bbbbbb" || ColorFor(-1) != "#bbbbbb" {
		t.Error("noise colour wrong")
	}
	if ColorFor(1) == ColorFor(2) {
		t.Error("adjacent classes share a colour")
	}
	// Palette cycles without panicking.
	if ColorFor(1) != ColorFor(1+len(palette)) {
		t.Error("palette does not cycle")
	}
}

func TestGlyphFor(t *testing.T) {
	if GlyphFor(0) != '.' {
		t.Error("noise glyph wrong")
	}
	if GlyphFor(1) != '1' || GlyphFor(10) != 'a' {
		t.Errorf("glyphs: %c %c", GlyphFor(1), GlyphFor(10))
	}
	if GlyphFor(1) != GlyphFor(1+len(glyphs)) {
		t.Error("glyphs do not cycle")
	}
}

func TestRangeOf(t *testing.T) {
	r := rangeOf([]float64{1, 5, 3}, 0)
	if r.lo != 1 || r.hi != 5 {
		t.Errorf("range = %+v", r)
	}
	// Padding widens symmetrically.
	r = rangeOf([]float64{0, 10}, 0.1)
	if r.lo != -1 || r.hi != 11 {
		t.Errorf("padded range = %+v", r)
	}
	// Degenerate and empty inputs stay usable.
	r = rangeOf([]float64{4, 4}, 0.1)
	if r.width() <= 0 {
		t.Errorf("degenerate range = %+v", r)
	}
	r = rangeOf(nil, 0.1)
	if r.lo != 0 || r.hi != 1 {
		t.Errorf("empty range = %+v", r)
	}
	// NaN and Inf are ignored.
	r = rangeOf([]float64{math.NaN(), 2, math.Inf(1), 4}, 0)
	if r.lo != 2 || r.hi != 4 {
		t.Errorf("NaN-tolerant range = %+v", r)
	}
}

func TestNiceTicks(t *testing.T) {
	ticks := niceTicks(axisRange{0, 10}, 5)
	if len(ticks) < 3 {
		t.Fatalf("ticks = %v", ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Fatalf("ticks not increasing: %v", ticks)
		}
	}
	if ticks[0] < 0 || ticks[len(ticks)-1] > 10+1e-9 {
		t.Errorf("ticks escape the range: %v", ticks)
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		2.5e9:   "2.5G",
		4e6:     "4M",
		1500:    "1.5k",
		0.5:     "0.5",
		0.001:   "1.0e-03",
		1.25:    "1.25",
		1000000: "1M",
	}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Errorf("formatTick(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestTrimZero(t *testing.T) {
	cases := map[string]string{
		"4.0M":  "4M",
		"0.50":  "0.5",
		"1.25":  "1.25",
		"10":    "10",
		"3.00k": "3k",
	}
	for in, want := range cases {
		if got := trimZero(in); got != want {
			t.Errorf("trimZero(%q) = %q, want %q", in, got, want)
		}
	}
}

func sampleScatter() *Scatter {
	s := &Scatter{Title: "t < test >", XLabel: "IPC", YLabel: "Instructions", YLog: true}
	for i := 0; i < 50; i++ {
		s.Points = append(s.Points, ScatterPoint{X: float64(i % 10), Y: 1e6 * float64(1+i), Class: i % 3})
	}
	return s
}

func TestScatterSVGWellFormed(t *testing.T) {
	svg := sampleScatter().SVG()
	if !strings.HasPrefix(svg, "<svg") {
		t.Fatal("not an SVG document")
	}
	// Must be well-formed XML (this catches unescaped titles/labels).
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG not well-formed: %v", err)
		}
	}
	if !strings.Contains(svg, "<circle") {
		t.Error("no points rendered")
	}
	if !strings.Contains(svg, "&lt; test &gt;") {
		t.Error("title not escaped")
	}
	if !strings.Contains(svg, "Region 1") || !strings.Contains(svg, "noise") {
		t.Error("legend missing")
	}
}

func TestScatterASCII(t *testing.T) {
	out := sampleScatter().ASCII(40, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + 10 grid rows + axis line.
	if len(lines) != 12 {
		t.Fatalf("ascii lines = %d:\n%s", len(lines), out)
	}
	for _, l := range lines[1:11] {
		if len(l) != 42 { // | + 40 + |
			t.Fatalf("row width = %d", len(l))
		}
	}
	if !strings.ContainsAny(out, "12") {
		t.Error("no class glyphs rendered")
	}
}

func TestScatterClassNames(t *testing.T) {
	s := sampleScatter()
	s.ClassNames = map[int]string{1: "solver"}
	if !strings.Contains(s.SVG(), "solver") {
		t.Error("custom class name missing from legend")
	}
}

func sampleLine() *LineChart {
	return &LineChart{
		Title:  "trend",
		XLabel: "ranks",
		YLabel: "IPC",
		XTicks: []string{"a", "b", "c"},
		Series: []Series{
			{Name: "Region 1", Y: []float64{1, 0.9, 0.8}, Class: 1},
			{Name: "Region 2", Y: []float64{0.5, math.NaN(), 0.6}, Class: 2},
		},
	}
}

func TestLineChartSVG(t *testing.T) {
	svg := sampleLine().SVG()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("line chart SVG malformed: %v", err)
		}
	}
	if !strings.Contains(svg, "<path") {
		t.Error("no line paths")
	}
	if !strings.Contains(svg, "Region 2") {
		t.Error("legend entry missing")
	}
	// NaN gap: region 2's path contains two Move commands.
	if got := strings.Count(svg, `d="M`); got < 2 {
		t.Errorf("expected separate path segments, got %d paths", got)
	}
}

func TestLineChartASCII(t *testing.T) {
	out := sampleLine().ASCII(30, 8)
	if !strings.Contains(out, "1") || !strings.Contains(out, "2") {
		t.Errorf("glyphs missing:\n%s", out)
	}
	if !strings.Contains(out, "Region 1") {
		t.Error("legend missing")
	}
}

func TestLineChartEmpty(t *testing.T) {
	lc := &LineChart{Title: "empty"}
	if svg := lc.SVG(); !strings.HasPrefix(svg, "<svg") {
		t.Error("empty chart should still render")
	}
}

func sampleTimeline() *Timeline {
	tl := &Timeline{Title: "seq", XLabel: "time"}
	for task := 0; task < 4; task++ {
		for i := 0; i < 5; i++ {
			tl.Spans = append(tl.Spans, TimeSpan{
				Task:  task,
				Start: float64(i * 10),
				End:   float64(i*10 + 8),
				Class: i%2 + 1,
			})
		}
	}
	return tl
}

func TestTimelineSVG(t *testing.T) {
	svg := sampleTimeline().SVG()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("timeline SVG malformed: %v", err)
		}
	}
	if strings.Count(svg, "<rect") < 20 {
		t.Error("span rectangles missing")
	}
	if !strings.Contains(svg, "task 0") {
		t.Error("task labels missing")
	}
}

func TestTimelineASCII(t *testing.T) {
	out := sampleTimeline().ASCII(40, 8)
	if !strings.Contains(out, "1") || !strings.Contains(out, "2") {
		t.Errorf("timeline glyphs missing:\n%s", out)
	}
	if !strings.Contains(out, "4 tasks") {
		t.Errorf("footer missing:\n%s", out)
	}
	empty := &Timeline{}
	if got := empty.ASCII(10, 4); !strings.Contains(got, "empty") {
		t.Errorf("empty timeline = %q", got)
	}
}

func TestTimelineSampling(t *testing.T) {
	tl := &Timeline{}
	for task := 0; task < 100; task++ {
		tl.Spans = append(tl.Spans, TimeSpan{Task: task, Start: 0, End: 1, Class: 1})
	}
	out := tl.ASCII(20, 10)
	rows := strings.Count(out, "|") / 2
	if rows > 10 {
		t.Errorf("timeline did not sample tasks: %d rows", rows)
	}
}

func TestEscape(t *testing.T) {
	if got := escape(`a<b>&"c"`); got != "a&lt;b&gt;&amp;&quot;c&quot;" {
		t.Errorf("escape = %q", got)
	}
}
