package plot

import (
	"fmt"
	"strings"
)

// Filmstrip renders a sequence of scatter frames — the paper's "simple
// animation" of the tracked performance space — either as a static grid
// (every frame side by side) or as a self-playing SVG animation that
// cycles through the frames.
type Filmstrip struct {
	Title  string
	Frames []*Scatter
	// Columns of the static grid layout; 0 picks a near-square layout.
	Columns int
	// FrameSeconds is the per-frame display time of the animation; 0
	// selects 1s.
	FrameSeconds float64
}

// GridSVG renders all frames in a static grid.
func (fs *Filmstrip) GridSVG() string {
	if len(fs.Frames) == 0 {
		return "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"10\" height=\"10\"/>\n"
	}
	cols := fs.Columns
	if cols <= 0 {
		cols = 1
		for cols*cols < len(fs.Frames) {
			cols++
		}
	}
	rows := (len(fs.Frames) + cols - 1) / cols
	fw, fh := fs.Frames[0].size()
	const gap = 10
	totalW := cols*(fw+gap) + gap
	totalH := rows*(fh+gap) + gap + 24

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		totalW, totalH, totalW, totalH)
	fmt.Fprintf(&sb, `<rect width="%d" height="%d" fill="#fafafa"/>`+"\n", totalW, totalH)
	if fs.Title != "" {
		fmt.Fprintf(&sb, `<text x="%d" y="18" font-size="14" font-weight="bold" text-anchor="middle" fill="#222" font-family="Helvetica,Arial,sans-serif">%s</text>`+"\n",
			totalW/2, escape(fs.Title))
	}
	for i, frame := range fs.Frames {
		r, c := i/cols, i%cols
		x := gap + c*(fw+gap)
		y := 24 + gap + r*(fh+gap)
		fmt.Fprintf(&sb, `<g transform="translate(%d %d)">`+"\n", x, y)
		sb.WriteString(inner(frame.SVG()))
		sb.WriteString("</g>\n")
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

// AnimatedSVG renders a self-playing animation cycling through the frames
// using SMIL visibility switching (supported by every major browser).
func (fs *Filmstrip) AnimatedSVG() string {
	if len(fs.Frames) == 0 {
		return "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"10\" height=\"10\"/>\n"
	}
	sec := fs.FrameSeconds
	if sec <= 0 {
		sec = 1
	}
	w, h := fs.Frames[0].size()
	total := sec * float64(len(fs.Frames))

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		w, h+20, w, h+20)
	if fs.Title != "" {
		fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="12" text-anchor="middle" fill="#222" font-family="Helvetica,Arial,sans-serif">%s</text>`+"\n",
			w/2, h+14, escape(fs.Title))
	}
	n := float64(len(fs.Frames))
	for i, frame := range fs.Frames {
		t0 := float64(i) / n
		t1 := float64(i+1) / n
		fmt.Fprintf(&sb, `<g display="none">`+"\n")
		sb.WriteString(inner(frame.SVG()))
		// Show this frame only during its slot of every cycle.
		fmt.Fprintf(&sb, `<animate attributeName="display" values="none;inline;none" keyTimes="0;%.4f;%.4f" calcMode="discrete" dur="%.2fs" repeatCount="indefinite"/>`+"\n",
			t0, t1, total)
		sb.WriteString("</g>\n")
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

// inner strips the outer <svg> element of a rendered frame so it can be
// embedded in a group.
func inner(svg string) string {
	start := strings.Index(svg, ">")
	end := strings.LastIndex(svg, "</svg>")
	if start < 0 || end < 0 || end <= start {
		return svg
	}
	return svg[start+1 : end]
}
