package plot

import (
	"encoding/xml"
	"strings"
	"testing"
)

func strip3() *Filmstrip {
	fs := &Filmstrip{Title: "anim"}
	for i := 0; i < 3; i++ {
		fs.Frames = append(fs.Frames, sampleScatter())
	}
	return fs
}

func checkXML(t *testing.T, doc string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(doc))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("malformed SVG: %v", err)
		}
	}
}

func TestFilmstripGrid(t *testing.T) {
	doc := strip3().GridSVG()
	checkXML(t, doc)
	// Three embedded frames, each translated into place.
	if got := strings.Count(doc, "<g transform="); got != 3 {
		t.Errorf("embedded frames = %d", got)
	}
	if !strings.Contains(doc, "anim") {
		t.Error("title missing")
	}
	// No nested <svg> elements: frames are inlined.
	if got := strings.Count(doc, "<svg"); got != 1 {
		t.Errorf("svg elements = %d, want 1", got)
	}
}

func TestFilmstripAnimated(t *testing.T) {
	fs := strip3()
	fs.FrameSeconds = 0.5
	doc := fs.AnimatedSVG()
	checkXML(t, doc)
	if got := strings.Count(doc, "<animate"); got != 3 {
		t.Errorf("animate elements = %d", got)
	}
	if !strings.Contains(doc, `dur="1.50s"`) {
		t.Errorf("cycle duration missing:\n%.300s", doc)
	}
	// Frame slots cover [0, 1] in thirds.
	if !strings.Contains(doc, `keyTimes="0;0.0000;0.3333"`) {
		t.Error("first frame slot wrong")
	}
	if !strings.Contains(doc, `keyTimes="0;0.6667;1.0000"`) {
		t.Error("last frame slot wrong")
	}
}

func TestFilmstripEmpty(t *testing.T) {
	fs := &Filmstrip{}
	checkXML(t, fs.GridSVG())
	checkXML(t, fs.AnimatedSVG())
}

func TestFilmstripColumns(t *testing.T) {
	fs := strip3()
	fs.Columns = 1
	doc := fs.GridSVG()
	checkXML(t, doc)
	// Single column: all frames share x offset 10 (the gap).
	if got := strings.Count(doc, `translate(10 `); got != 3 {
		t.Errorf("single-column offsets = %d", got)
	}
}
