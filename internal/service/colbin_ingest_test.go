package service

// Content-type sniffing at the service boundary and the convert-on-
// first-read trace cache: binary columnar bodies on /v1/jobs and stream
// appends, the equivalence of text and binary submissions of the same
// traces, and the cache hit/miss/poison lifecycle.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"perftrack/internal/apps"
	"perftrack/internal/mpisim"
	"perftrack/internal/trace"
)

// uploadPair simulates the synthetic study and returns its runs both as
// text strings and colbin encodings.
func uploadPair(t *testing.T) (texts []string, bins [][]byte) {
	t.Helper()
	st, err := apps.ByName("Synthetic")
	if err != nil {
		t.Fatal(err)
	}
	traces, err := mpisim.SimulateSeries(st.Runs)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range traces {
		var buf bytes.Buffer
		if err := trace.Write(&buf, tr); err != nil {
			t.Fatal(err)
		}
		texts = append(texts, buf.String())
		// Encode the PARSED text, not the in-memory trace: the text
		// writer canonicalises burst order, and the binary submission
		// must fingerprint identically to the text one.
		parsed, err := trace.Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		bins = append(bins, trace.EncodeColbin(parsed))
	}
	return texts, bins
}

// TestBinarySubmitMatchesText is the ingest equivalence contract: the
// same traces submitted as a JSON text upload and as a raw concatenated
// colbin body resolve to the same fingerprint, so the second submission
// is a content-addressed cache hit of the first.
func TestBinarySubmitMatchesText(t *testing.T) {
	texts, bins := uploadPair(t)
	s := newTest(t, Config{Workers: 2})
	defer shutdown(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	jsonBody, err := json.Marshal(JobRequest{Traces: texts})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(jsonBody))
	if err != nil {
		t.Fatal(err)
	}
	var textView JobView
	json.NewDecoder(resp.Body).Decode(&textView)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("text submit: %s", resp.Status)
	}

	var raw []byte
	for _, b := range bins {
		raw = append(raw, b...)
	}
	resp, err = http.Post(srv.URL+"/v1/jobs", "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var binView JobView
	json.NewDecoder(resp.Body).Decode(&binView)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("binary submit: %s", resp.Status)
	}
	if binView.Key != textView.Key {
		t.Fatalf("binary submission fingerprints %s, text %s — formats are not equivalent", binView.Key, textView.Key)
	}
	if got := s.m.jobsBinary.Value(); got != 1 {
		t.Fatalf("binary submissions counter %d, want 1", got)
	}

	// The TracesBin round trip through JSON (journal intents, mesh
	// forwarding) must preserve the key too.
	intent, err := json.Marshal(JobRequest{TracesBin: bins})
	if err != nil {
		t.Fatal(err)
	}
	var back JobRequest
	if err := json.Unmarshal(intent, &back); err != nil {
		t.Fatal(err)
	}
	spec, err := resolve(back)
	if err != nil {
		t.Fatal(err)
	}
	if spec.key != textView.Key {
		t.Fatalf("re-marshalled tracesBin fingerprints %s, want %s", spec.key, textView.Key)
	}
}

// TestSubmitBodySniffing pins the 4xx-vs-accept decisions at the job
// boundary for every body shape the sniffer distinguishes.
func TestSubmitBodySniffing(t *testing.T) {
	_, bins := uploadPair(t)
	s := newTest(t, Config{Workers: 1})
	defer shutdown(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	valid := append(append([]byte(nil), bins[0]...), bins[1]...)
	corruptMagic := append([]byte(nil), valid...)
	corruptMagic[6] ^= 0xFF // inside the magic: not colbin, not JSON
	torn := valid[:len(valid)-10]
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x01 // valid magic, broken section CRC

	cases := []struct {
		name string
		body []byte
		want []int
	}{
		{"valid binary", valid, []int{http.StatusOK, http.StatusAccepted}},
		{"corrupt magic", corruptMagic, []int{http.StatusBadRequest}},
		{"torn binary", torn, []int{http.StatusBadRequest}},
		{"crc broken binary", flipped, []int{http.StatusBadRequest}},
		{"empty body", nil, []int{http.StatusBadRequest}},
		{"garbage text", []byte("not json, not colbin"), []int{http.StatusBadRequest}},
		{"single binary trace", bins[0], []int{http.StatusBadRequest}}, // needs >= 2 traces or windows
	}
	for _, tc := range cases {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/octet-stream", bytes.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		ok := false
		for _, w := range tc.want {
			ok = ok || resp.StatusCode == w
		}
		if !ok {
			t.Errorf("%s: got %s, want one of %v", tc.name, resp.Status, tc.want)
		}
	}

	// windows=N rides the query string on binary submissions.
	resp, err := http.Post(srv.URL+"/v1/jobs?windows=4", "application/octet-stream", bytes.NewReader(bins[0]))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Errorf("single binary trace with ?windows=4: got %s, want accept", resp.Status)
	}
	resp, err = http.Post(srv.URL+"/v1/jobs?windows=bogus", "application/octet-stream", bytes.NewReader(bins[0]))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("windows=bogus: got %s, want 400", resp.Status)
	}
}

// TestStreamAppendSniffing drives the same format decisions on the
// stream ingest boundary: text chunks, binary chunks, corrupt binary,
// and empty bodies in strict and lenient mode.
func TestStreamAppendSniffing(t *testing.T) {
	texts, bins := uploadPair(t)
	s := newTest(t, Config{Workers: 1})
	defer shutdown(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/streams", "application/json",
		strings.NewReader(`{"label":"sniff","window":{"countN":64}}`))
	if err != nil {
		t.Fatal(err)
	}
	var sv StreamView
	json.NewDecoder(resp.Body).Decode(&sv)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("stream create: %s", resp.Status)
	}
	appendURL := srv.URL + "/v1/streams/" + sv.ID + "/bursts"

	post := func(url string, body []byte) (int, StreamAppendResponse) {
		t.Helper()
		resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var ar StreamAppendResponse
		json.NewDecoder(resp.Body).Decode(&ar)
		resp.Body.Close()
		return resp.StatusCode, ar
	}

	if code, ar := post(appendURL, []byte(texts[0])); code != http.StatusOK || ar.Appended == 0 {
		t.Fatalf("text chunk: code %d, appended %d", code, ar.Appended)
	}
	code, ar := post(appendURL, bins[1])
	if code != http.StatusOK || ar.Appended == 0 {
		t.Fatalf("binary chunk: code %d, appended %d", code, ar.Appended)
	}

	corrupt := append([]byte(nil), bins[0]...)
	corrupt[len(corrupt)/2] ^= 0x10
	if code, _ := post(appendURL+"?strict=1", corrupt); code != http.StatusBadRequest {
		t.Errorf("strict corrupt binary chunk: code %d, want 400", code)
	}
	// Lenient mode may quarantine the damage instead, but must not 500.
	if code, _ := post(appendURL, corrupt); code != http.StatusOK && code != http.StatusBadRequest {
		t.Errorf("lenient corrupt binary chunk: code %d", code)
	}
	// An empty body is an empty lenient chunk (0 bursts) but a strict 400.
	if code, ar := post(appendURL, nil); code != http.StatusOK || ar.Appended != 0 {
		t.Errorf("lenient empty chunk: code %d appended %d", code, ar.Appended)
	}
	if code, _ := post(appendURL+"?strict=1", nil); code != http.StatusBadRequest {
		t.Errorf("strict empty chunk: code %d, want 400", code)
	}
}

// TestTraceCacheConvertOnFirstRead exercises the cache lifecycle end to
// end: first text submission converts and files the colbin entries,
// repeat submissions decode from them, and poisoned entries fall back to
// the text parse and are re-derived.
func TestTraceCacheConvertOnFirstRead(t *testing.T) {
	texts, _ := uploadPair(t)
	dir := t.TempDir()
	s := newTest(t, Config{Workers: 2, TraceCacheDir: dir})
	defer shutdown(t, s)

	submit := func(series string) {
		t.Helper()
		j, _, err := s.Submit(JobRequest{Traces: texts, Series: series})
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, s, j)
	}

	submit("")
	st := s.tcache.Stats()
	if st.Misses != int64(len(texts)) || st.Hits != 0 || st.Entries != len(texts) {
		t.Fatalf("after first submit: %+v", st)
	}

	// Same traces again (different series so the job itself is not an
	// instant result-cache short-circuit of resolve — though resolve
	// runs per submission regardless).
	submit("reread")
	st = s.tcache.Stats()
	if st.Hits != int64(len(texts)) {
		t.Fatalf("repeat submit did not hit the conversion cache: %+v", st)
	}

	// Poison every cached conversion: decode fails its CRC, the text
	// parse takes over, and the entries are re-derived.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	poisoned := 0
	for _, e := range ents {
		p := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(p)
		if err != nil || len(data) < 20 {
			continue
		}
		data[len(data)/2] ^= 0xFF
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		poisoned++
	}
	if poisoned == 0 {
		t.Fatal("no cache files found to poison")
	}
	submit("poisoned")
	st = s.tcache.Stats()
	if st.Rejected == 0 {
		t.Fatalf("poisoned entries were not rejected: %+v", st)
	}
	if st.Entries != len(texts) {
		t.Fatalf("poisoned entries were not re-derived: %+v", st)
	}

	// The rebuilt entries must decode again.
	submit("rebuilt")
	if st = s.tcache.Stats(); st.Hits < 2*int64(len(texts)) {
		t.Fatalf("rebuilt entries did not serve hits: %+v", st)
	}
}

// TestTraceCacheKeyedByMode: strict and lenient parses of the same bytes
// must never share a cache entry.
func TestTraceCacheKeyedByMode(t *testing.T) {
	texts, _ := uploadPair(t)
	dir := t.TempDir()
	s := newTest(t, Config{Workers: 2, TraceCacheDir: dir})
	defer shutdown(t, s)

	j, _, err := s.Submit(JobRequest{Traces: texts})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, j)
	j, _, err = s.Submit(JobRequest{Traces: texts, Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, j)
	if st := s.tcache.Stats(); st.Entries != 2*len(texts) {
		t.Fatalf("strict and lenient share entries: %+v", st)
	}
}

