package service

// Job-journal wiring: the durable half of the submission contract. When
// the store is enabled (and the journal not explicitly disabled), every
// new job is journaled as an intent BEFORE Submit returns — the 202 a
// client sees means "this job survives a crash". The intent is resolved
// once the result is appended to perfdb (done) or the job reaches a
// definitive error (fail); jobs interrupted by a crash or shutdown stay
// pending and are replayed by the next startup, which consults the
// store first so nothing already persisted is recomputed.

import (
	"encoding/json"
	"time"

	"perftrack/internal/store"
)

type journalMetrics struct {
	replayed *Counter
	fsync    *Histogram
}

// openJournal opens the job journal next to the store and registers its
// metrics. Called from New after openStore.
func (s *Server) openJournal() error {
	r := s.reg
	s.jm = journalMetrics{
		replayed: r.NewCounter("trackd_journal_replayed_total", "Pending journal intents processed at startup (re-executed or deduplicated against the store)."),
		fsync:    r.NewHistogram("trackd_journal_fsync_seconds", "Latency of journal fsyncs.", nil),
	}
	j, err := store.OpenJournal(s.cfg.StoreDir, store.JournalOptions{
		SyncEvery:    s.cfg.JournalSyncEvery,
		CompactEvery: s.cfg.JournalCompactEvery,
		OnFsync:      func(d time.Duration) { s.jm.fsync.Observe(d.Seconds()) },
		FS:           s.cfg.StoreFS,
	})
	if err != nil {
		return err
	}
	s.journal = j
	// j.Stats() is a snapshot read behind its own mutex — no directory
	// listing, no waiting behind the journal mutex the intent-fsync path
	// holds — so the per-gauge fan-out below costs a scrape nothing.
	r.NewGaugeFunc("trackd_journal_pending", "Unresolved journal intents (acknowledged jobs not yet stored or definitively failed).", func() int64 { return int64(j.Stats().Pending) })
	r.NewGaugeFunc("trackd_journal_bytes", "On-disk bytes of the active journal generation.", func() int64 { return j.Stats().Bytes })
	r.NewGaugeFunc("trackd_journal_appends", "Cumulative journal entries written since open.", func() int64 { return int64(j.Stats().Appends) })
	r.NewGaugeFunc("trackd_journal_fsyncs", "Cumulative journal fsyncs since open.", func() int64 { return int64(j.Stats().Fsyncs) })
	r.NewGaugeFunc("trackd_journal_compactions", "Cumulative journal compactions since open.", func() int64 { return int64(j.Stats().Compactions) })
	r.NewGaugeFunc("trackd_journal_truncations", "Torn bytes truncated off journal generations at open.", func() int64 { return j.Stats().TornTruncated })
	return nil
}

// Journal exposes the job journal (nil when disabled). Tests and the
// chaos harness use it to inspect durability state.
func (s *Server) Journal() *store.Journal { return s.journal }

// resolveJournal marks a finished job's intent done or failed. Called
// WITHOUT the server mutex (the journal fsyncs). Reading j.journaled
// here without the lock is race-free because the flag is set only
// before the job is published to the queue and inflight table, and
// never written afterwards.
func (s *Server) resolveJournal(j *Job, errMsg string, ok bool) {
	if s.journal == nil || !j.journaled {
		return
	}
	s.journal.Resolve(j.Key, errMsg, ok)
}

// replay processes the pending intents recovered from the journal, in
// journal order. Each intent is deduplicated against the persistent
// store (a result that landed before the crash is not recomputed — the
// "no fingerprint computed twice" half of the recovery invariant) and
// otherwise resubmitted through the normal queue. replayDone closes
// once every replayed job reaches a terminal state; /readyz reports 503
// until then.
func (s *Server) replay(pending []store.PendingIntent) {
	defer close(s.replayDone)
	var waits []*Job
	for _, p := range pending {
		s.jm.replayed.Inc()
		if j := s.replayIntent(p); j != nil {
			waits = append(waits, j)
		}
	}
	for _, j := range waits {
		select {
		case <-j.done:
		case <-s.rootCtx.Done():
			return
		}
	}
}

// replayIntent resubmits one journaled intent. It returns the job to
// wait on, or nil when the intent resolved immediately (store hit,
// undecodable payload, fingerprint mismatch, or shutdown).
func (s *Server) replayIntent(p store.PendingIntent) *Job {
	var req JobRequest
	if err := json.Unmarshal(p.Payload, &req); err != nil {
		s.journal.Resolve(p.Key, "replay: undecodable intent: "+err.Error(), false)
		return nil
	}
	spec, err := resolveThrough(req, s.tcache)
	if err != nil {
		s.journal.Resolve(p.Key, "replay: "+err.Error(), false)
		return nil
	}
	if spec.key != p.Key {
		// A journal written by a different fingerprint scheme (or a
		// corrupted-but-CRC-valid payload): executing it would store the
		// result under a key nobody asked for. Fail it definitively.
		s.journal.Resolve(p.Key, "replay: fingerprint mismatch", false)
		return nil
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	if val, ok := s.cache.Get(spec.key); ok {
		s.refileLocked(spec, val)
		s.mu.Unlock()
		s.journal.Resolve(p.Key, "", true)
		return nil
	}
	if running, ok := s.inflight[spec.key]; ok {
		// A client resubmitted the same inputs before replay got here:
		// attach to that execution. No flag needs flipping — every job
		// published to the inflight table while the journal is on is
		// already journaled (Submit and replay both set the flag before
		// publishing), and intents are keyed by fingerprint, so that
		// job's resolution settles this intent too. Writing
		// running.journaled here would race the worker's unlocked read;
		// the field is immutable once the job is visible.
		s.mu.Unlock()
		return running
	}
	if _, ok := s.storeGetLocked(spec); ok {
		// The result landed in perfdb before the crash; only the
		// resolution entry was lost. No recomputation.
		s.mu.Unlock()
		s.journal.Resolve(p.Key, "", true)
		return nil
	}
	// In cluster mode, replay re-routes through the mesh: the key may be
	// owned elsewhere (or have been re-owned by a rebalance while this
	// node was down), and the owner's singleflight — plus the pre-execute
	// cluster lookup — keeps the recovered job exactly-once cluster-wide.
	if owner, fwd := s.forwardTarget(spec.key, false); fwd {
		j := s.forwardLocked(spec, true, owner, p.Payload)
		s.mu.Unlock()
		return j
	}
	j := s.newJobLocked(spec)
	j.journaled = true
	s.inflight[spec.key] = j
	s.mu.Unlock()

	// Blocking send: replay must not drop acknowledged work on a full
	// queue; it waits for capacity (or shutdown).
	select {
	case s.queue <- j:
		return j
	case <-s.rootCtx.Done():
		return nil
	}
}
