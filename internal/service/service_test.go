package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"perftrack/internal/apps"
	"perftrack/internal/mpisim"
	"perftrack/internal/trace"
)

// syntheticReq is the cheapest fully deterministic workload: the default
// synthetic robustness study (16 ranks, 4 frames).
func syntheticReq() JobRequest { return JobRequest{Study: "Synthetic"} }

// newTest starts a server, failing the test on store-open errors.
func newTest(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func waitDone(t *testing.T, s *Server, j *Job) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Wait(ctx, j); err != nil {
		t.Fatalf("waiting for job %s: %v", j.ID, err)
	}
}

func shutdown(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestSubmitTwiceServesSecondFromCache is the core cache contract: the
// same study submitted twice returns byte-identical results, with the
// second submission served from the content-addressed cache without a
// second pipeline execution.
func TestSubmitTwiceServesSecondFromCache(t *testing.T) {
	s := newTest(t, Config{Workers: 2})
	defer shutdown(t, s)

	j1, coalesced, err := s.Submit(syntheticReq())
	if err != nil {
		t.Fatalf("first submit: %v", err)
	}
	if coalesced {
		t.Fatal("first submission reported coalesced")
	}
	waitDone(t, s, j1)
	res1, state, errMsg := s.Result(j1)
	if state != StateDone {
		t.Fatalf("first job state %s (%s)", state, errMsg)
	}
	if len(res1) == 0 {
		t.Fatal("first job produced empty result")
	}

	j2, _, err := s.Submit(syntheticReq())
	if err != nil {
		t.Fatalf("second submit: %v", err)
	}
	waitDone(t, s, j2)
	v2 := s.View(j2)
	if !v2.CacheHit {
		t.Fatal("second submission was not a cache hit")
	}
	res2, _, _ := s.Result(j2)
	if !bytes.Equal(res1, res2) {
		t.Fatalf("cache returned different bytes: %d vs %d", len(res1), len(res2))
	}
	if j1.Key != j2.Key {
		t.Fatalf("identical requests got different keys %s vs %s", j1.Key, j2.Key)
	}
	if got := s.m.jobsExecuted.Value(); got != 1 {
		t.Fatalf("pipeline executed %d times, want 1", got)
	}
	if got := s.m.cacheHits.Value(); got != 1 {
		t.Fatalf("cache hits %d, want 1", got)
	}
}

// TestConfigChangesCacheKey: any knob that influences the output must
// change the cache key, so near-identical submissions never alias.
func TestConfigChangesCacheKey(t *testing.T) {
	base, err := resolve(syntheticReq())
	if err != nil {
		t.Fatal(err)
	}
	variants := []JobRequest{
		{Study: "Synthetic", Config: &ConfigSpec{Eps: 0.08}},
		{Study: "Synthetic", Config: &ConfigSpec{MinPts: 6}},
		{Study: "Synthetic", Config: &ConfigSpec{MinCorrelation: 0.3}},
		{Study: "Synthetic", Config: &ConfigSpec{DisableSPMD: true}},
		{Study: "Synthetic", Metrics: []string{"IPC"}},
		{Study: "WRF"},
	}
	seen := map[string]int{base.key: -1}
	for i, req := range variants {
		spec, err := resolve(req)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if prev, dup := seen[spec.key]; dup {
			t.Fatalf("variant %d collides with %d", i, prev)
		}
		seen[spec.key] = i
	}
}

// TestSingleflightConcurrentSubmissions: N concurrent identical
// submissions while the first is still executing must all attach to one
// job — the pipeline runs exactly once.
func TestSingleflightConcurrentSubmissions(t *testing.T) {
	s := newTest(t, Config{Workers: 2, QueueDepth: 16})
	s.testGate = make(chan struct{})
	defer shutdown(t, s)

	const n = 8
	jobs := make([]*Job, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, _, err := s.Submit(syntheticReq())
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			jobs[i] = j
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	close(s.testGate) // release the one real execution

	var first []byte
	for i, j := range jobs {
		waitDone(t, s, j)
		res, state, errMsg := s.Result(j)
		if state != StateDone {
			t.Fatalf("job %d state %s (%s)", i, state, errMsg)
		}
		if first == nil {
			first = res
		} else if !bytes.Equal(first, res) {
			t.Fatalf("job %d returned different bytes", i)
		}
	}
	if got := s.m.jobsExecuted.Value(); got != 1 {
		t.Fatalf("pipeline executed %d times for %d identical submissions, want 1", got, n)
	}
	if got := s.m.jobsCoalesced.Value() + s.m.cacheHits.Value(); got != n-1 {
		t.Fatalf("coalesced+hits = %d, want %d", got, n-1)
	}
}

// TestQueueFullRejectsWithoutDroppingInflight: a saturated queue must
// reject new work with ErrQueueFull while every admitted job still runs
// to completion.
func TestQueueFullRejectsWithoutDroppingInflight(t *testing.T) {
	s := newTest(t, Config{Workers: 1, QueueDepth: 1, RetryAfter: 2 * time.Second})
	s.testGate = make(chan struct{})
	defer shutdown(t, s)

	// Distinct keys so nothing coalesces: vary an output-relevant knob.
	reqN := func(i int) JobRequest {
		return JobRequest{Study: "Synthetic", Config: &ConfigSpec{MinCorrelation: 0.1 + float64(i)*1e-9}}
	}

	j0, _, err := s.Submit(reqN(0)) // taken by the (gated) worker
	if err != nil {
		t.Fatalf("submit 0: %v", err)
	}
	// Wait for the worker to pull j0 off the queue so the single queue
	// slot is free for j1 and the saturation below is deterministic.
	deadline := time.Now().Add(5 * time.Second)
	for s.View(j0).State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("worker never started job 0")
		}
		time.Sleep(5 * time.Millisecond)
	}
	j1, _, err := s.Submit(reqN(1)) // occupies the queue slot
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	if _, _, err := s.Submit(reqN(2)); err != ErrQueueFull {
		t.Fatalf("submit 2: got %v, want ErrQueueFull", err)
	}
	if got := s.m.jobsRejected.Value(); got != 1 {
		t.Fatalf("rejected counter %d, want 1", got)
	}

	close(s.testGate)
	waitDone(t, s, j0)
	waitDone(t, s, j1)
	for i, j := range []*Job{j0, j1} {
		if _, state, errMsg := s.Result(j); state != StateDone {
			t.Fatalf("in-flight job %d dropped: state %s (%s)", i, state, errMsg)
		}
	}
}

// TestShutdownCancelsInflight: Shutdown must cancel the running job and
// mark queued jobs canceled, never leaving a waiter hanging.
func TestShutdownCancelsInflight(t *testing.T) {
	s := newTest(t, Config{Workers: 1, QueueDepth: 4})
	s.testGate = make(chan struct{}) // never closed: jobs block until ctx cancel

	running, _, err := s.Submit(JobRequest{Study: "Synthetic"})
	if err != nil {
		t.Fatal(err)
	}
	queued, _, err := s.Submit(JobRequest{Study: "Synthetic", Config: &ConfigSpec{MinPts: 6}})
	if err != nil {
		t.Fatal(err)
	}

	shutdown(t, s)

	for i, j := range []*Job{running, queued} {
		select {
		case <-j.done:
		case <-time.After(5 * time.Second):
			t.Fatalf("job %d never reached a terminal state", i)
		}
		if v := s.View(j); v.State != StateCanceled {
			t.Fatalf("job %d state %s, want canceled", i, v.State)
		}
	}
	if got := s.m.jobsCanceled.Value(); got != 2 {
		t.Fatalf("canceled counter %d, want 2", got)
	}
	if _, _, err := s.Submit(syntheticReq()); err != ErrShuttingDown {
		t.Fatalf("submit after shutdown: got %v, want ErrShuttingDown", err)
	}
}

// TestResolveValidation rejects malformed requests before they reach the
// queue.
func TestResolveValidation(t *testing.T) {
	cases := []struct {
		name string
		req  JobRequest
		want string
	}{
		{"neither", JobRequest{}, "exactly one"},
		{"both", JobRequest{Study: "WRF", Traces: []string{"x"}}, "exactly one"},
		{"unknown study", JobRequest{Study: "NoSuchApp"}, "unknown study"},
		{"bad windows", JobRequest{Study: "WRF", Windows: 9999}, "windows"},
		{"unknown metric", JobRequest{Study: "WRF", Metrics: []string{"Bogons"}}, "unknown metric"},
		{"one trace no windows", JobRequest{Traces: []string{emptyTraceText(t)}}, "at least two"},
		{"garbage trace", JobRequest{Traces: []string{"not a trace\n", "also not\n"}}, "trace 0"},
		{"bad config", JobRequest{Study: "WRF", Config: &ConfigSpec{MinCorrelation: 3}}, "MinCorrelation"},
	}
	for _, tc := range cases {
		_, err := resolve(tc.req)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

// emptyTraceText serialises an empty trace: valid header, no bursts.
func emptyTraceText(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.Write(&buf, &trace.Trace{}); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestUploadTraces drives the upload path: simulate the synthetic study,
// serialise its runs to the text format, and submit them as raw traces —
// with a corrupt line in lenient mode, whose skip count must surface in
// the job diagnostics and the /healthz degraded-mode aggregation.
func TestUploadTraces(t *testing.T) {
	st, err := apps.ByName("Synthetic")
	if err != nil {
		t.Fatal(err)
	}
	traces, err := mpisim.SimulateSeries(st.Runs)
	if err != nil {
		t.Fatal(err)
	}
	texts := make([]string, len(traces))
	for i, tr := range traces {
		var buf bytes.Buffer
		if err := trace.Write(&buf, tr); err != nil {
			t.Fatal(err)
		}
		texts[i] = buf.String()
	}
	// Corrupt one line of the first trace.
	texts[0] += "B this line is garbage\n"

	s := newTest(t, Config{Workers: 2})
	defer shutdown(t, s)

	// Strict decoding rejects the corruption outright.
	if _, _, err := s.Submit(JobRequest{Traces: texts}); err == nil {
		t.Fatal("strict submit of corrupt trace succeeded")
	}

	j, _, err := s.Submit(JobRequest{Traces: texts, Lenient: true})
	if err != nil {
		t.Fatalf("lenient submit: %v", err)
	}
	waitDone(t, s, j)
	res, state, errMsg := s.Result(j)
	if state != StateDone {
		t.Fatalf("upload job state %s (%s)", state, errMsg)
	}
	if len(res) == 0 {
		t.Fatal("upload job produced empty result")
	}
	if v := s.View(j); !strings.Contains(v.Diagnostics, "skipped") {
		t.Fatalf("diagnostics %q missing skipped-line note", v.Diagnostics)
	}
	h := s.Healthz()
	if h.Status != "degraded" || h.DegradedMode.LinesSkipped == 0 {
		t.Fatalf("healthz did not surface degraded decode: %+v", h)
	}
}

// TestHTTPEndToEnd drives the whole API surface over HTTP: submit, poll,
// fetch, resubmit for a hit, and scrape /metrics and /healthz.
func TestHTTPEndToEnd(t *testing.T) {
	s := newTest(t, Config{Workers: 2})
	defer shutdown(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func(body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, b
	}
	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, b
	}

	// Submit: 202, Location header, miss.
	resp, body := post(`{"study":"Synthetic"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("X-Cache %q, want miss", got)
	}
	var view JobView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatalf("decoding job view: %v", err)
	}
	loc := resp.Header.Get("Location")
	if loc != "/v1/jobs/"+view.ID {
		t.Fatalf("Location %q does not match job id %q", loc, view.ID)
	}

	// Poll until done.
	var result1 []byte
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, b := get(loc + "/result")
		if r.StatusCode == http.StatusOK {
			result1 = b
			break
		}
		if r.StatusCode != http.StatusAccepted {
			t.Fatalf("result status %d: %s", r.StatusCode, b)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !json.Valid(result1) {
		t.Fatal("result is not valid JSON")
	}

	// Resubmit: 200 + X-Cache: hit, identical bytes.
	resp, body = post(`{"study":"Synthetic"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached submit status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("cached submit X-Cache %q, want hit", got)
	}
	var hitView JobView
	if err := json.Unmarshal(body, &hitView); err != nil {
		t.Fatal(err)
	}
	_, result2 := get("/v1/jobs/" + hitView.ID + "/result")
	if !bytes.Equal(result1, result2) {
		t.Fatal("cached result differs from original")
	}

	// Bad request surfaces as 400.
	if r, _ := post(`{"study":"NoSuchApp"}`); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad study status %d, want 400", r.StatusCode)
	}

	// Job listing includes both jobs.
	_, body = get("/v1/jobs")
	var listing struct {
		Jobs []JobView `json:"jobs"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Jobs) != 2 {
		t.Fatalf("listing has %d jobs, want 2", len(listing.Jobs))
	}

	// Studies catalog includes the paper's table plus Synthetic.
	_, body = get("/v1/studies")
	if !bytes.Contains(body, []byte("Synthetic")) || !bytes.Contains(body, []byte("WRF")) {
		t.Fatalf("studies listing missing entries: %s", body)
	}

	// Metrics expose the counters this test just exercised.
	r, body := get("/metrics")
	if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	for _, want := range []string{
		"trackd_jobs_accepted_total 2",
		"trackd_jobs_executed_total 1",
		"trackd_cache_hits_total 1",
		"trackd_stage_track_seconds_count 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Healthz reports ok with consistent counters.
	_, body = get("/healthz")
	var h Health
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("health status %q, want ok", h.Status)
	}
	if h.Jobs.Completed != 2 || h.Jobs.Executed != 1 {
		t.Fatalf("health jobs %+v", h.Jobs)
	}

	// Unknown job is a 404.
	if r, _ := get("/v1/jobs/never"); r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status %d, want 404", r.StatusCode)
	}
}

// TestHTTPQueueFull429 exercises the backpressure path over HTTP: 429
// with a Retry-After hint.
func TestHTTPQueueFull429(t *testing.T) {
	s := newTest(t, Config{Workers: 1, QueueDepth: 1, RetryAfter: 3 * time.Second})
	s.testGate = make(chan struct{})
	defer shutdown(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	submit := func(i int) *http.Response {
		t.Helper()
		body := fmt.Sprintf(`{"study":"Synthetic","config":{"minCorrelation":%g}}`, 0.1+float64(i)*1e-9)
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	if r := submit(0); r.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 0 status %d", r.StatusCode)
	}
	// Wait for the worker to start job 0 so the queue slot is free.
	deadline := time.Now().Add(5 * time.Second)
	for s.m.workersBusy.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if r := submit(1); r.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 1 status %d", r.StatusCode)
	}
	r := submit(2)
	if r.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit status %d, want 429", r.StatusCode)
	}
	if got := r.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After %q, want \"3\"", got)
	}
	close(s.testGate)
}
