package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func httpPostJSON(t *testing.T, s *Server, path string, v any) (string, int) {
	t.Helper()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b), resp.StatusCode
}

func httpGet(t *testing.T, s *Server, path string) (string, int) {
	t.Helper()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b), resp.StatusCode
}

// ---- breaker ----

// TestBreakerLifecycle: closed → open after threshold consecutive
// failures, probes admitted after cooldown, probe success closes it.
func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	var flips []bool
	b := newBreaker(3, time.Second, func(open bool) { flips = append(flips, open) })
	b.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		b.Failure()
		if !b.Allow() || b.Open() {
			t.Fatalf("open after %d failures, threshold 3", i+1)
		}
	}
	b.Failure()
	if !b.Open() || b.Allow() {
		t.Fatal("not open after 3 consecutive failures")
	}
	if !b.Blocked() {
		t.Fatal("freshly-opened breaker not blocked")
	}

	now = now.Add(500 * time.Millisecond)
	if b.Allow() {
		t.Fatal("probe admitted before cooldown")
	}
	now = now.Add(600 * time.Millisecond)
	if b.Blocked() {
		t.Fatal("blocked after cooldown elapsed")
	}
	if !b.Allow() {
		t.Fatal("probe refused after cooldown")
	}
	if b.Allow() {
		t.Fatal("second probe admitted inside the same cooldown window")
	}
	b.Success()
	if b.Open() || !b.Allow() {
		t.Fatal("probe success did not close the breaker")
	}
	// A success resets the consecutive-failure count.
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.Open() {
		t.Fatal("interleaved successes must reset the failure count")
	}
	if len(flips) != 2 || !flips[0] || flips[1] {
		t.Fatalf("transition log %v, want [open, close]", flips)
	}
}

// TestBreakerProbeFailureReopens: a failed probe restarts the cooldown.
func TestBreakerProbeFailureReopens(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(1, time.Second, nil)
	b.now = func() time.Time { return now }
	b.Failure()
	now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	b.Failure()
	if b.Allow() {
		t.Fatal("probe admitted immediately after a failed probe")
	}
	now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("probe refused after second cooldown")
	}
}

// TestBackoffDelayBounds: each attempt's delay stays inside
// [base·2ⁿ/2, base·2ⁿ) and saturates at max.
func TestBackoffDelayBounds(t *testing.T) {
	base, max := 10*time.Millisecond, 80*time.Millisecond
	for attempt := 0; attempt < 8; attempt++ {
		want := base << attempt
		if want > max {
			want = max
		}
		for i := 0; i < 50; i++ {
			d := backoffDelay(attempt, base, max)
			if d < want/2 || d >= want {
				t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, d, want/2, want)
			}
		}
	}
}

// ---- service-level resilience ----

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Shutdown(context.Background()) })
	return s
}

func waitReady(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if r := s.Readyz(); r.Ready {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never became ready: %+v", s.Readyz())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPersistRetrySucceeds: transient store-append failures are retried
// with backoff and the result still lands durably; the journal intent
// resolves and the breaker stays closed.
func TestPersistRetrySucceeds(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{
		Workers: 1, StoreDir: dir, StoreSyncEvery: 1,
		RetryBase: time.Millisecond, RetryMax: 4 * time.Millisecond,
	})
	fails := 2
	s.testAppendFault = func(string) error {
		if fails > 0 {
			fails--
			return errors.New("transient disk error")
		}
		return nil
	}
	req := simUploads(t)[0]
	j, _, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	s.Wait(context.Background(), j)
	if _, state, msg := s.Result(j); state != StateDone {
		t.Fatalf("job %s: %s", state, msg)
	}
	if _, ok, _ := s.store.Get(j.Key); !ok {
		t.Fatal("result not persisted despite retries")
	}
	if got := s.rm.retryAttempts.Value(); got != 2 {
		t.Fatalf("retry attempts %d, want 2", got)
	}
	if got := s.journal.Stats().Pending; got != 0 {
		t.Fatalf("journal pending %d after successful persist, want 0", got)
	}
	if s.storeBreaker.Open() {
		t.Fatal("breaker open after recovered transient failures")
	}
}

// TestStoreBreakerDegradesToReadOnly: persistent store failure exhausts
// the retries, trips the breaker, and the service refuses new write
// work with ErrDegraded while still serving reads; the completed-but-
// unpersisted job's intent stays pending and a restart lands it in the
// store.
func TestStoreBreakerDegradesToReadOnly(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Workers: 1, StoreDir: dir, StoreSyncEvery: 1,
		StoreRetries: 5, RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond,
		BreakerThreshold: 3, BreakerCooldown: time.Hour,
	}
	s := newTestServer(t, cfg)
	s.testAppendFault = func(string) error { return errors.New("disk on fire") }

	reqs := simUploads(t)
	j, _, err := s.Submit(reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	s.Wait(context.Background(), j)
	result, state, msg := s.Result(j)
	if state != StateDone || len(result) == 0 {
		t.Fatalf("job should complete from memory despite store failure: %s %s", state, msg)
	}
	if !s.storeBreaker.Open() {
		t.Fatal("store breaker not open after exhausted retries")
	}
	if got := s.journal.Stats().Pending; got != 1 {
		t.Fatalf("journal pending %d, want 1 (unpersisted result stays pending)", got)
	}

	// New write work is refused 503-style...
	if _, _, err := s.Submit(reqs[1]); !errors.Is(err, ErrDegraded) {
		t.Fatalf("submit while degraded: err %v, want ErrDegraded", err)
	}
	if got := s.rm.degradedResponses.Value(); got == 0 {
		t.Fatal("degraded responses not counted")
	}
	// ...but reads keep flowing: the same key resolves from cache.
	hit, _, err := s.Submit(reqs[0])
	if err != nil {
		t.Fatalf("cached read while degraded: %v", err)
	}
	if _, hState, _ := s.Result(hit); hState != StateDone {
		t.Fatal("cache hit not served while degraded")
	}
	if r := s.Readyz(); r.Ready {
		t.Fatal("readyz reports ready with the store breaker open")
	}

	// Restart over the same dir: replay persists the pending result
	// without recomputing it (store works again — no fault hook).
	s.Shutdown(context.Background())
	s2 := newTestServer(t, cfg)
	execs := 0
	s2.testExecHook = func(string) { execs++ }
	waitReady(t, s2)
	if _, ok, _ := s2.store.Get(j.Key); !ok {
		t.Fatal("replayed result did not land in the store")
	}
	if got := s2.journal.Stats().Pending; got != 0 {
		t.Fatalf("journal pending %d after replay, want 0", got)
	}
}

// TestExecBreakerTripsOnPipelineFailures: consecutive execution
// failures (forced via a nanosecond job timeout) open the execution
// breaker, refuse new work, and resolve the failed jobs' intents as
// definitive errors (no replay).
func TestExecBreakerTripsOnPipelineFailures(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Workers: 1, StoreDir: dir,
		JobTimeout:       time.Nanosecond,
		BreakerThreshold: 2, BreakerCooldown: time.Hour,
	}
	s := newTestServer(t, cfg)
	reqs := simUploads(t)
	for i := 0; i < 2; i++ {
		j, _, err := s.Submit(reqs[i])
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		s.Wait(context.Background(), j)
		if _, state, _ := s.Result(j); state != StateFailed {
			t.Fatalf("job %d state %s, want failed (timeout)", i, state)
		}
	}
	if !s.execBreaker.Open() {
		t.Fatal("exec breaker not open after consecutive failures")
	}
	if _, _, err := s.Submit(reqs[2]); !errors.Is(err, ErrDegraded) {
		t.Fatalf("submit with exec breaker open: err %v, want ErrDegraded", err)
	}
	if got := s.journal.Stats().Pending; got != 0 {
		t.Fatalf("journal pending %d, want 0 (definitive failures resolve)", got)
	}
	if r := s.Readyz(); r.Ready {
		t.Fatal("readyz ready with exec breaker open")
	}
}

// TestReplayAfterShutdownWithQueuedJobs: jobs acknowledged but not
// finished when the daemon stops stay pending in the journal; the next
// startup replays them to completion and /readyz flips only when the
// backlog is done.
func TestReplayAfterShutdownWithQueuedJobs(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, QueueDepth: 8, StoreDir: dir, StoreSyncEvery: 1}
	s := newTestServer(t, cfg)
	s.testGate = make(chan struct{}) // never closed: jobs block until shutdown

	reqs := simUploads(t)
	keys := make([]string, len(reqs))
	for i, req := range reqs {
		j, _, err := s.Submit(req)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		keys[i] = j.Key
	}
	if got := s.journal.Stats().Pending; got != len(reqs) {
		t.Fatalf("journal pending %d, want %d", got, len(reqs))
	}
	s.Shutdown(context.Background())

	s2 := newTestServer(t, cfg)
	execs := map[string]int{}
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	s2.testExecHook = func(key string) { <-mu; execs[key]++; mu <- struct{}{} }
	waitReady(t, s2)
	for _, key := range keys {
		if _, ok, _ := s2.store.Get(key); !ok {
			t.Fatalf("acknowledged key %.8s not stored after replay", key)
		}
	}
	if got := s2.journal.Stats().Pending; got != 0 {
		t.Fatalf("journal pending %d after replay", got)
	}
	// Resubmissions resolve instantly as hits, no recomputation.
	for i, req := range reqs {
		j, _, err := s2.Submit(req)
		if err != nil {
			t.Fatalf("resubmit %d: %v", i, err)
		}
		select {
		case <-j.done:
		default:
			t.Fatalf("replayed key %.8s did not resolve instantly", j.Key)
		}
	}
}

// TestReadyzNoJournal: without a store the journal is off and the
// server is ready immediately.
func TestReadyzNoJournal(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	if r := s.Readyz(); !r.Ready {
		t.Fatalf("fresh storeless server not ready: %+v", r)
	}
	if s.Journal() != nil {
		t.Fatal("journal open without a store dir")
	}
}

// TestJournalDisabled: StoreDir with JournalDisabled keeps the old
// memory-only acknowledgement behavior.
func TestJournalDisabled(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, StoreDir: t.TempDir(), JournalDisabled: true})
	if s.Journal() != nil {
		t.Fatal("journal open despite JournalDisabled")
	}
	j, _, err := s.Submit(simUploads(t)[0])
	if err != nil {
		t.Fatal(err)
	}
	s.Wait(context.Background(), j)
	if _, state, msg := s.Result(j); state != StateDone {
		t.Fatalf("job %s: %s", state, msg)
	}
}

// TestQueueFullResolvesIntent: a 429'd submission must not leave a
// pending intent behind (it would be replayed as a ghost job).
func TestQueueFullResolvesIntent(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1, StoreDir: dir})
	s.testGate = make(chan struct{})
	reqs := simUploads(t)
	// First job occupies the worker (blocked on the gate), second fills
	// the queue, third must be rejected.
	if _, _, err := s.Submit(reqs[0]); err != nil {
		t.Fatal(err)
	}
	var rejected bool
	for i := 1; i < len(reqs); i++ {
		_, _, err := s.Submit(reqs[i])
		if errors.Is(err, ErrQueueFull) {
			rejected = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !rejected {
		t.Skip("queue never filled (worker raced ahead)") // gate prevents this
	}
	st := s.journal.Stats()
	admitted := int(s.m.jobsAccepted.Value() - s.m.jobsRejected.Value())
	if st.Pending != admitted {
		t.Fatalf("journal pending %d, want %d (rejected submissions must resolve their intents)", st.Pending, admitted)
	}
	close(s.testGate)
}

// TestStageTimeout: a per-stage budget far smaller than the job budget
// fails a job whose stage stalls. The nanosecond stage budget expires
// before the simulation stage starts, while JobTimeout stays generous —
// proving the failure came from the stage budget.
func TestStageTimeout(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, JobTimeout: time.Hour, StageTimeout: time.Nanosecond})
	j, _, err := s.Submit(simUploads(t)[0])
	if err != nil {
		t.Fatal(err)
	}
	s.Wait(context.Background(), j)
	if _, state, _ := s.Result(j); state != StateFailed {
		t.Fatalf("state %s, want failed from stage timeout", state)
	}
	if s.m.jobsFailed.Value() != 1 {
		t.Fatal("stage-timeout failure not counted")
	}
}

// TestDegradedHTTPResponse: the HTTP layer maps ErrDegraded to 503 with
// a Retry-After header.
func TestDegradedHTTPResponse(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{
		Workers: 1, StoreDir: dir,
		JobTimeout: time.Nanosecond, BreakerThreshold: 1, BreakerCooldown: time.Hour,
	})
	req := simUploads(t)[0]
	j, _, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	s.Wait(context.Background(), j) // fails, trips exec breaker

	body, status := httpPostJSON(t, s, "/v1/jobs", simUploads(t)[1])
	if status != 503 {
		t.Fatalf("degraded submit status %d, want 503: %s", status, body)
	}
	rbody, rstatus := httpGet(t, s, "/readyz")
	if rstatus != 503 {
		t.Fatalf("readyz status %d, want 503: %s", rstatus, rbody)
	}
}
