package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"perftrack/internal/store"
	"perftrack/internal/trackeval"
	"perftrack/internal/trajectory"
)

// TestTrackevalScorecardRegressions is the full perfdb round trip of the
// evaluation layer: real scorecards (one per "commit", the newest from a
// tracker with its displacement evaluator disabled) are filed into a
// store under the trackeval series, a daemon boots over that store, and
// /v1/series/trackeval/regressions must flag the quality drop on MOTA —
// exactly what `trackctl regressions -series trackeval` shows a user.
func TestTrackevalScorecardRegressions(t *testing.T) {
	clean, err := trackeval.Evaluate(trackeval.Options{Seeds: []uint64{1}, SkipDiagnosis: true})
	if err != nil {
		t.Fatal(err)
	}
	nerfCfg := trackeval.DefaultConfig()
	nerfCfg.DisableDisplacement = true
	nerfed, err := trackeval.Evaluate(trackeval.Options{
		Seeds: []uint64{1}, SkipDiagnosis: true, Config: &nerfCfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if nerfed.Aggregate.MOTA >= clean.Aggregate.MOTA {
		t.Fatalf("nerfed MOTA %v not below clean %v; the regression under test vanished",
			nerfed.Aggregate.MOTA, clean.Aggregate.MOTA)
	}

	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const nRuns = 6
	for i := 0; i < nRuns; i++ {
		card := clean
		if i == nRuns-1 {
			card = nerfed
		}
		payload, err := card.PerfDBDocument()
		if err != nil {
			t.Fatal(err)
		}
		rec := store.Record{
			Key:      fmt.Sprintf("scorecard-%d", i),
			Series:   "trackeval",
			Label:    fmt.Sprintf("commit-%d", i),
			UnixNano: int64(i + 1),
			Payload:  payload,
		}
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	s := newTest(t, Config{Workers: 1, StoreDir: dir})
	defer shutdown(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// The displacement nerf costs a few percent of MOTA — a real but
	// modest drop, so the check runs at a tighter minRel than the default
	// 5%, the way a quality series would be configured.
	resp, err := http.Get(srv.URL + "/v1/series/trackeval/regressions?metric=MOTA&minRel=0.02")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rres struct {
		Runs     []map[string]any     `json:"runs"`
		Verdicts []trajectory.Verdict `json:"verdicts"`
		Notable  int                  `json:"notable"`
	}
	if err := json.Unmarshal(body, &rres); err != nil {
		t.Fatal(err)
	}
	if len(rres.Runs) != nRuns {
		t.Fatalf("%d runs in series, want %d", len(rres.Runs), nRuns)
	}
	if rres.Notable == 0 {
		t.Fatalf("quality drop not notable; verdicts: %s", body)
	}
	regressed := 0
	for _, v := range rres.Verdicts {
		if v.Kind != trajectory.KindRegressed {
			continue
		}
		regressed++
		if v.RelChange >= 0 {
			t.Errorf("regressed verdict with non-negative relChange: %+v", v)
		}
	}
	if regressed == 0 {
		t.Fatalf("no regressed verdict on the nerfed commit; verdicts: %s", body)
	}
}
