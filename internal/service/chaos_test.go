package service

// Chaos simulation: seeded whole-lifetime schedules that combine every
// fault the robustness layer defends against — hard crashes without
// draining, torn journal tails (truncation anywhere at or beyond the
// durable mark), and filesystem fault injection (short writes, fsync
// errors) under the store and journal — across several server
// generations over one directory. Two invariants hold throughout:
//
//	durability  — every acknowledged submission (Submit returned nil
//	              while the journal was on, so its intent fsynced)
//	              yields exactly one stored result after the final
//	              fault-free recovery, byte-identical to what any
//	              earlier generation served;
//	idempotence — within one server generation, a key executes at most
//	              1 + (persist failures for that key) times: replay and
//	              resubmission deduplicate against the cache, the
//	              inflight table and the store, and only a result that
//	              failed to persist may be recomputed.
//
// The per-generation bound is the honest refinement of "no fingerprint
// computed twice": losing a batched resolution or a persist means the
// *next* generation must recompute — that is the recovery working — but
// nothing may compute twice without a persist failure explaining it.
//
// Schedules are deterministic per seed: rerunning a seed replays the
// same interleaving decisions, and the event log of a failing schedule
// reads as a timeline.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"perftrack/internal/faults"
	"perftrack/internal/store"
)

// chaosRun is one seeded schedule's state across server generations.
type chaosRun struct {
	t    *testing.T
	seed uint64
	rng  *rand.Rand
	dir  string
	reqs []JobRequest

	srv *Server
	gen int

	// Hook-fed per-generation counters (workers call the hooks
	// concurrently).
	hookMu      sync.Mutex
	exec        map[string]int
	persistFail map[string]int

	// Cross-generation truth.
	acked   map[string]bool   // keys whose 202 was backed by a durable intent
	results map[string][]byte // key -> first observed result bytes
	pending []*Job
	clock   int64
	log     []string
}

func (c *chaosRun) tick(format string, args ...any) {
	c.clock++
	c.log = append(c.log, fmt.Sprintf("t=%03d g%d %s", c.clock, c.gen, fmt.Sprintf(format, args...)))
}

func (c *chaosRun) fail(format string, args ...any) {
	c.t.Helper()
	c.t.Fatalf("chaos seed %d:\n  %s\nevent log:\n  %s",
		c.seed, fmt.Sprintf(format, args...), strings.Join(c.log, "\n  "))
}

// startGen boots a server generation over the shared directory. Non-final
// generations may run on a faulty filesystem; the final one never does,
// so the closing verification measures what recovery salvaged, not what
// the injector is currently breaking.
func (c *chaosRun) startGen(faulted bool) {
	c.hookMu.Lock()
	c.exec = map[string]int{}
	c.persistFail = map[string]int{}
	c.hookMu.Unlock()

	cfg := Config{
		Workers:    2,
		QueueDepth: 4,
		// 2-entry cache over 3 keys: evictions force the store
		// read-through (and, after a persist failure, a legitimate
		// recompute) paths mid-generation.
		CacheMaxEntries:  2,
		StoreDir:         c.dir,
		StoreSyncEvery:   1,
		JournalSyncEvery: 1 + c.rng.IntN(8),
		// No mid-run compaction: the crash simulator cuts the active
		// generation file, and compaction swapping files under the
		// snapshot would retarget the cut. Open-time compaction still
		// collapses history every generation.
		JournalCompactEvery: 1 << 20,
		StoreRetries:        2,
		RetryBase:           time.Millisecond,
		RetryMax:            2 * time.Millisecond,
		BreakerThreshold:    3,
		BreakerCooldown:     2 * time.Millisecond,
		testExecHook: func(key string) {
			c.hookMu.Lock()
			c.exec[key]++
			c.hookMu.Unlock()
		},
		testPersistHook: func(key string, err error) {
			if err == nil {
				return
			}
			c.hookMu.Lock()
			c.persistFail[key]++
			c.hookMu.Unlock()
		},
	}
	if faulted {
		cfg.StoreFS = faults.NewFaultFS(faults.FSFaults{
			ShortWriteEveryN: 7 + c.rng.IntN(13),
			SyncFailEveryN:   5 + c.rng.IntN(13),
			TornRename:       true, // nothing may depend on rename atomicity
		})
		c.tick("boot (faulty fs)")
	} else {
		c.tick("boot")
	}
	srv, err := New(cfg)
	if err != nil && faulted {
		// The injector broke recovery itself (e.g. the open-time
		// compaction fsync): a crash at boot. Reboot on a healthy disk —
		// nothing durable may have been lost.
		c.tick("boot failed under faults (%v), retrying clean", err)
		cfg.StoreFS = nil
		srv, err = New(cfg)
	}
	if err != nil {
		c.fail("boot: %v", err)
	}
	c.srv = srv
	c.waitReplayed()
}

// waitReplayed blocks until startup replay drove every recovered intent
// to a terminal state. (Not Readyz: a generation may legitimately end
// degraded with a breaker open, which only a probe success clears.)
func (c *chaosRun) waitReplayed() {
	select {
	case <-c.srv.replayDone:
	case <-time.After(30 * time.Second):
		c.fail("startup replay did not finish")
	}
}

// submit issues request ri, tolerating backpressure (429) and degraded
// refusals (503) — both documented client outcomes, neither an ack.
func (c *chaosRun) submit(ri int) {
	j, _, err := c.srv.Submit(c.reqs[ri])
	switch {
	case err == nil:
		c.acked[j.Key] = true
		c.pending = append(c.pending, j)
	case err == ErrQueueFull:
		c.tick("req %d rejected: queue full", ri)
	case isDegraded(err):
		c.tick("req %d refused: degraded", ri)
		time.Sleep(3 * time.Millisecond) // let the breaker cool down
	default:
		c.fail("submit req %d: %v", ri, err)
	}
}

func isDegraded(err error) bool {
	return err != nil && strings.Contains(err.Error(), ErrDegraded.Error())
}

// drain waits out all pending jobs, records their results against the
// ledger, and checks the per-generation execution bound.
func (c *chaosRun) drain() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, j := range c.pending {
		if err := c.srv.Wait(ctx, j); err != nil {
			c.fail("wait %.8s: %v", j.Key, err)
		}
		c.record(j, true)
	}
	c.pending = c.pending[:0]
	c.checkExecBound()
}

// record folds one terminal job into the ledger. requireDone fails on
// anything but a completed job; a hard crash passes false because its
// jobs may legitimately end canceled.
func (c *chaosRun) record(j *Job, requireDone bool) {
	result, state, errMsg := c.srv.Result(j)
	if state != StateDone {
		if requireDone {
			c.fail("job for key %.8s: state %s: %s", j.Key, state, errMsg)
		}
		return
	}
	if prev, ok := c.results[j.Key]; ok {
		if !bytes.Equal(prev, result) {
			c.fail("key %.8s returned different bytes than its first completion", j.Key)
		}
	} else {
		c.results[j.Key] = result
	}
}

// checkExecBound enforces the per-generation idempotence invariant.
func (c *chaosRun) checkExecBound() {
	c.hookMu.Lock()
	defer c.hookMu.Unlock()
	for key, n := range c.exec {
		if n > 1+c.persistFail[key] {
			c.fail("key %.8s executed %d times this generation with %d persist failures (bound is 1+failures)",
				key, n, c.persistFail[key])
		}
	}
}

// crash ends the generation. clean drains first (every job terminal,
// resolutions appended); hard shuts down with work still queued or
// running, leaving those intents pending. Either way the journal may
// then be torn: truncated at a point at or beyond the durable mark of
// the active generation — exactly the region a real crash can lose.
func (c *chaosRun) crash(clean bool) {
	if clean {
		c.drain()
		c.tick("clean shutdown")
	} else {
		c.tick("hard crash with %d jobs in flight", len(c.pending))
	}
	st := c.srv.journal.Stats()
	if err := c.srv.Shutdown(context.Background()); err != nil {
		// A faulty-fs generation may fail its closing fsync; the torn
		// state left behind is the point of the exercise.
		c.tick("shutdown error absorbed: %v", err)
	}
	if !clean {
		for _, j := range c.pending {
			<-j.done // Shutdown resolved every job one way or the other
			c.record(j, false)
		}
		c.pending = c.pending[:0]
		c.checkExecBound()
	}
	if c.rng.IntN(2) == 0 {
		c.tear(st)
	}
}

// tear truncates the journal generation that was active at the stats
// snapshot to a random length in [SyncedBytes, size]: everything past
// the durable mark is fair game, everything before it — every
// acknowledged intent — must survive.
func (c *chaosRun) tear(st store.JournalStats) {
	path := filepath.Join(c.dir, fmt.Sprintf("journal-%06d.wal", st.ActiveGen))
	fi, err := os.Stat(path)
	if err != nil || fi.Size() <= st.SyncedBytes {
		return
	}
	cut := st.SyncedBytes + c.rng.Int64N(fi.Size()-st.SyncedBytes+1)
	if err := os.Truncate(path, cut); err != nil {
		c.fail("tearing journal: %v", err)
	}
	c.tick("journal torn: %d -> %d bytes (durable mark %d)", fi.Size(), cut, st.SyncedBytes)
}

// finalVerify boots the last, fault-free generation's closing check:
// every acknowledged key must be in the store with ledger-identical
// bytes, and resubmitting it must resolve instantly without recompute.
func (c *chaosRun) finalVerify() {
	c.drain()
	keyOf := make(map[string]int, len(c.reqs))
	for ri := range c.reqs {
		spec, err := resolve(c.reqs[ri])
		if err != nil {
			c.fail("resolve req %d: %v", ri, err)
		}
		keyOf[spec.key] = ri
	}
	for key := range c.acked {
		payload, ok, err := c.srv.store.Get(key)
		if err != nil || !ok {
			c.fail("acked key %.8s missing from the store after recovery (err %v)", key, err)
		}
		if prev, seen := c.results[key]; seen && !bytes.Equal(prev, payload) {
			c.fail("acked key %.8s stored with different bytes than it served", key)
		}
		j, _, err := c.srv.Submit(c.reqs[keyOf[key]])
		if err != nil {
			c.fail("final resubmit of %.8s: %v", key, err)
		}
		select {
		case <-j.done:
		default:
			c.fail("acked key %.8s did not resolve instantly after recovery", key)
		}
		result, state, errMsg := c.srv.Result(j)
		if state != StateDone {
			c.fail("final resubmit of %.8s: state %s: %s", key, state, errMsg)
		}
		if !bytes.Equal(result, payload) {
			c.fail("final resubmit of %.8s served different bytes than the store holds", key)
		}
	}
	if got := c.srv.journal.Stats().Pending; got != 0 {
		c.fail("journal still has %d pending intents after full recovery", got)
	}
	c.checkExecBound()
}

func runChaosSchedule(t *testing.T, seed uint64, baseDir string, reqs []JobRequest) {
	c := &chaosRun{
		t:       t,
		seed:    seed,
		rng:     rand.New(rand.NewPCG(seed, 0xc4a0)),
		dir:     filepath.Join(baseDir, fmt.Sprintf("c%d", seed)),
		reqs:    reqs,
		acked:   map[string]bool{},
		results: map[string][]byte{},
	}
	defer func() {
		if c.srv != nil {
			c.srv.Shutdown(context.Background())
		}
		os.RemoveAll(c.dir)
	}()

	nGens := 2 + c.rng.IntN(3)
	for c.gen = 0; c.gen < nGens; c.gen++ {
		final := c.gen == nGens-1
		c.startGen(!final && c.rng.IntN(2) == 0)
		nOps := 2 + c.rng.IntN(5)
		for op := 0; op < nOps; op++ {
			ri := c.rng.IntN(len(c.reqs))
			switch k := c.rng.IntN(10); {
			case k < 4: // submit and wait
				c.tick("submit+wait req %d", ri)
				c.submit(ri)
				c.drain()
			case k < 7: // submit asynchronously
				c.tick("submit async req %d", ri)
				c.submit(ri)
			case k < 9: // duplicate burst
				c.tick("duplicate burst req %d", ri)
				c.submit(ri)
				c.submit(ri)
			default: // overload: slam the queue until it pushes back
				c.tick("overload burst")
				for i := 0; i < 8; i++ {
					c.submit(c.rng.IntN(len(c.reqs)))
				}
			}
		}
		if final {
			c.finalVerify()
			c.srv.Shutdown(context.Background())
			c.srv = nil
		} else {
			c.crash(c.rng.IntN(2) == 0)
			c.srv = nil
		}
	}
}

// TestChaosSchedules runs the seeded crash/fault/overload schedules.
// 500 seeds in full mode satisfies the robustness acceptance bar; short
// mode keeps a representative sample.
func TestChaosSchedules(t *testing.T) {
	seeds := uint64(500)
	if testing.Short() {
		seeds = 60
	}
	base := t.TempDir()
	reqs := simUploads(t)
	for seed := uint64(0); seed < seeds; seed++ {
		runChaosSchedule(t, seed, base, reqs)
	}
}

// ---- replay latency bound ----

// nosyncFS strips fsync so the test can build a large journal quickly;
// the file contents are complete after Close, which is all replay reads.
type nosyncFS struct{ faults.OS }

func (fs nosyncFS) OpenFile(path string, flag int, perm os.FileMode) (faults.File, error) {
	f, err := fs.OS.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return nosyncFile{f}, nil
}

type nosyncFile struct{ faults.File }

func (nosyncFile) Sync() error { return nil }

// TestJournalReplayBound: a 10k-entry journal — resolved history plus a
// handful of pending intents whose results are already stored — must
// replay to readiness in under a second, without recomputing anything.
func TestJournalReplayBound(t *testing.T) {
	dir := t.TempDir()
	reqs := simUploads(t)
	cfg := Config{Workers: 2, StoreDir: dir, StoreSyncEvery: 64}

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, len(reqs))
	for i, req := range reqs {
		j, _, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		s.Wait(context.Background(), j)
		if _, state, msg := s.Result(j); state != StateDone {
			t.Fatalf("seed job %d: %s %s", i, state, msg)
		}
		keys[i] = j.Key
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Grow the journal to 10k entries: resolved intent/done pairs (the
	// bulk of any long-lived daemon's journal between compactions) plus
	// real pending intents for the three stored keys.
	jn, err := store.OpenJournal(dir, store.JournalOptions{
		SyncEvery: 1 << 20, CompactEvery: 1 << 20, FS: nosyncFS{},
	})
	if err != nil {
		t.Fatal(err)
	}
	entries := 0
	for i := 0; entries < 10_000-len(reqs); i++ {
		key := fmt.Sprintf("resolved-%06d", i)
		if err := jn.Intent(key, []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
		if err := jn.Resolve(key, "", true); err != nil {
			t.Fatal(err)
		}
		entries += 2
	}
	for i, req := range reqs {
		payload, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		if err := jn.Intent(keys[i], payload); err != nil {
			t.Fatal(err)
		}
		entries++
	}
	if err := jn.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("journal built: %d entries", entries)

	var execs atomic.Int64
	cfg2 := cfg
	cfg2.testExecHook = func(string) { execs.Add(1) }
	t0 := time.Now()
	s2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown(context.Background())
	select {
	case <-s2.replayDone:
	case <-time.After(10 * time.Second):
		t.Fatal("replay never finished")
	}
	elapsed := time.Since(t0)
	if elapsed > time.Second {
		t.Fatalf("replaying a %d-entry journal took %v, bound is 1s", entries, elapsed)
	}
	if n := execs.Load(); n != 0 {
		t.Fatalf("replay recomputed %d stored results", n)
	}
	if got := s2.journal.Stats().Pending; got != 0 {
		t.Fatalf("journal pending %d after replay", got)
	}
	for _, key := range keys {
		if _, ok, _ := s2.store.Get(key); !ok {
			t.Fatalf("key %.8s missing after replay", key)
		}
	}
	t.Logf("replayed %d entries in %v", entries, elapsed)
}
