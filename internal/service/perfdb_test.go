package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"perftrack/internal/trajectory"
)

// TestStoreSurvivesRestart is the perfdb contract: a result computed
// before a daemon restart is served after it without re-running the
// pipeline — the cache misses, the store answers.
func TestStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	req := JobRequest{Study: "Synthetic", Series: "nightly", RunLabel: "run-1"}

	s1 := newTest(t, Config{Workers: 2, StoreDir: dir, StoreSyncEvery: 1})
	j1, _, err := s1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s1, j1)
	res1, state, errMsg := s1.Result(j1)
	if state != StateDone {
		t.Fatalf("job state %s (%s)", state, errMsg)
	}
	if got := s1.Store().Stats().Records; got != 1 {
		t.Fatalf("store holds %d records, want 1", got)
	}
	shutdown(t, s1)

	// "Restart": a fresh server over the same directory, empty cache.
	s2 := newTest(t, Config{Workers: 2, StoreDir: dir})
	defer shutdown(t, s2)
	if got := s2.Store().Stats().Records; got != 1 {
		t.Fatalf("reopened store holds %d records, want 1", got)
	}
	j2, _, err := s2.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s2, j2)
	if v := s2.View(j2); !v.CacheHit {
		t.Fatal("post-restart submission was not served as a hit")
	}
	res2, _, _ := s2.Result(j2)
	if !bytes.Equal(res1, res2) {
		t.Fatalf("restarted store returned different bytes: %d vs %d", len(res1), len(res2))
	}
	if got := s2.m.jobsExecuted.Value(); got != 0 {
		t.Fatalf("pipeline executed %d times after restart, want 0", got)
	}
	if got := s2.sm.hits.Value(); got != 1 {
		t.Fatalf("store hits %d, want 1", got)
	}
	// Series membership survived too.
	metas := s2.Store().Series("nightly")
	if len(metas) != 1 || metas[0].Label != "run-1" {
		t.Fatalf("series metas %+v, want one run-1 record", metas)
	}
}

// TestRefileIntoSeries: resubmitting a known result under a series name
// must file it there even when the bytes come from cache or store.
func TestRefileIntoSeries(t *testing.T) {
	s := newTest(t, Config{Workers: 2, StoreDir: t.TempDir()})
	defer shutdown(t, s)

	j1, _, err := s.Submit(JobRequest{Study: "Synthetic"}) // unfiled
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, j1)
	if got := s.Store().SeriesNames(); len(got) != 0 {
		t.Fatalf("series present before any was named: %v", got)
	}

	j2, _, err := s.Submit(JobRequest{Study: "Synthetic", Series: "nightly", RunLabel: "n1"})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, j2)
	if v := s.View(j2); !v.CacheHit {
		t.Fatal("resubmission was not a cache hit")
	}
	metas := s.Store().Series("nightly")
	if len(metas) != 1 || metas[0].Label != "n1" {
		t.Fatalf("refile did not land in series: %+v", metas)
	}
	if got := s.m.jobsExecuted.Value(); got != 1 {
		t.Fatalf("pipeline executed %d times, want 1", got)
	}
}

// TestSeriesValidation: series names are path segments and must be safe.
func TestSeriesValidation(t *testing.T) {
	for _, bad := range []string{"a/b", "a b", "höhe", strings.Repeat("x", 200)} {
		if _, err := resolve(JobRequest{Study: "Synthetic", Series: bad}); err == nil {
			t.Errorf("series %q accepted", bad)
		}
	}
	if _, err := resolve(JobRequest{Study: "Synthetic", Series: "nightly-v1.2_x"}); err != nil {
		t.Errorf("valid series rejected: %v", err)
	}
}

// TestStoreDisabledEndpoints: without -store the perfdb endpoints answer
// 503, not 404s that would mask a deployment mistake.
func TestStoreDisabledEndpoints(t *testing.T) {
	s := newTest(t, Config{Workers: 1})
	defer shutdown(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	for _, path := range []string{
		"/v1/results", "/v1/results/abc", "/v1/series",
		"/v1/series/x/trajectories", "/v1/series/x/regressions",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s: status %d, want 503", path, resp.StatusCode)
		}
	}
}

// TestSeriesEndpointsHTTP drives the stored-history API end to end: four
// distinct submissions filed into one series, then listing, payload
// fetch by key prefix, trajectory chaining and regression verdicts over
// HTTP.
func TestSeriesEndpointsHTTP(t *testing.T) {
	s := newTest(t, Config{Workers: 2, StoreDir: t.TempDir()})
	defer shutdown(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Four runs of the same study with fingerprint-only perturbations:
	// same behaviours every run, so every trajectory must chain through
	// and judge steady.
	const nRuns = 4
	for i := 0; i < nRuns; i++ {
		req := JobRequest{
			Study:    "Synthetic",
			Series:   "nightly",
			RunLabel: fmt.Sprintf("run-%d", i),
			Config:   &ConfigSpec{MinCorrelation: 0.2 + float64(i+1)*1e-12},
		}
		j, _, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, s, j)
		if _, state, errMsg := s.Result(j); state != StateDone {
			t.Fatalf("run %d state %s (%s)", i, state, errMsg)
		}
	}

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, b
	}

	// Listing: all four records, filterable by series.
	_, body := get("/v1/results")
	var listing struct {
		Results []struct {
			Key    string `json:"key"`
			Series string `json:"series"`
			Label  string `json:"label"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Results) != nRuns {
		t.Fatalf("listing has %d results, want %d", len(listing.Results), nRuns)
	}

	// Payload by abbreviated key.
	key := listing.Results[0].Key
	resp, payload := get("/v1/results/" + key[:12])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result fetch status %d: %s", resp.StatusCode, payload)
	}
	if resp.Header.Get("X-Store-Key") != key {
		t.Fatalf("X-Store-Key %q, want %q", resp.Header.Get("X-Store-Key"), key)
	}
	if !json.Valid(payload) {
		t.Fatal("stored payload is not valid JSON")
	}

	// Series listing.
	_, body = get("/v1/series")
	if !bytes.Contains(body, []byte("nightly")) {
		t.Fatalf("series listing missing nightly: %s", body)
	}

	// Trajectories: every run contributes, and at least one trajectory
	// spans all four.
	_, body = get("/v1/series/nightly/trajectories")
	var tres struct {
		Runs         []map[string]any        `json:"runs"`
		Trajectories []trajectory.Trajectory `json:"trajectories"`
	}
	if err := json.Unmarshal(body, &tres); err != nil {
		t.Fatal(err)
	}
	if len(tres.Runs) != nRuns {
		t.Fatalf("trajectories ran over %d runs, want %d", len(tres.Runs), nRuns)
	}
	if len(tres.Trajectories) == 0 {
		t.Fatal("no trajectories chained")
	}
	if got := len(tres.Trajectories[0].Points); got != nRuns {
		t.Fatalf("dominant trajectory spans %d runs, want %d", got, nRuns)
	}

	// Regressions: identical runs must produce zero notable verdicts.
	_, body = get("/v1/series/nightly/regressions")
	var rres struct {
		Verdicts []trajectory.Verdict `json:"verdicts"`
		Notable  int                  `json:"notable"`
	}
	if err := json.Unmarshal(body, &rres); err != nil {
		t.Fatal(err)
	}
	if rres.Notable != 0 {
		t.Fatalf("identical runs produced %d notable verdicts: %+v", rres.Notable, rres.Verdicts)
	}
	if len(rres.Verdicts) == 0 {
		t.Fatal("no verdicts at all")
	}
	for _, v := range rres.Verdicts {
		if v.Kind != trajectory.KindSteady && v.Kind != trajectory.KindInsufficient {
			t.Fatalf("verdict %+v on identical runs", v)
		}
	}

	// Unknown series is a 404.
	if r, _ := get("/v1/series/nope/regressions"); r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown series status %d, want 404", r.StatusCode)
	}

	// Store metrics are exposed.
	_, body = get("/metrics")
	for _, want := range []string{
		"trackd_store_records 4",
		"trackd_trajectory_requests_total 1",
		"trackd_regression_checks_total 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
