package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"perftrack/internal/mesh"
	"perftrack/internal/oracle"
	"perftrack/internal/trace"
)

// Whole-cluster deterministic simulation: the single-node scheduler of
// simulation_test.go extended to a 3-node mesh over an in-memory
// transport. Seeded schedules interleave submits (including duplicate
// bursts landing on different nodes), single-node crashes with restarts
// over the same directory, and full network isolation of one node, with
// membership probes and rebalances at the heal points. Two invariants
// are enforced over the entire schedule, cluster-wide:
//
//	no acked result lost  — after every heal, every key that ever
//	                        completed is served with byte-identical
//	                        payload by EVERY node (locally or via
//	                        scatter-gather), and both journals on every
//	                        node are empty (no stranded intents, no
//	                        unpaid replication debt);
//	no double compute     — the pipeline runs exactly once per distinct
//	                        key across all nodes and all server
//	                        generations, crashes and partitions included.
//
// Topology events fire only at quiescent points and at most one node is
// degraded at a time, so replication (R=2) guarantees a surviving holder
// for every completed key — which is precisely what makes exactly-once
// provable rather than merely likely.

// clusterNet is an in-memory transport shared by all nodes: peer URLs of
// the form http://<id>.mesh dispatch straight into that node's HTTP
// handler. A down node refuses every connection; a cut severs the pair
// symmetrically (identified by the X-Mesh-From header every mesh call
// carries).
type clusterNet struct {
	mu       sync.Mutex
	handlers map[string]http.Handler
	down     map[string]bool
	cut      map[string]bool // pairKey(a,b) -> severed
}

func newClusterNet() *clusterNet {
	return &clusterNet{
		handlers: map[string]http.Handler{},
		down:     map[string]bool{},
		cut:      map[string]bool{},
	}
}

func pairKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

func (c *clusterNet) RoundTrip(req *http.Request) (*http.Response, error) {
	to := strings.TrimSuffix(req.URL.Host, ".mesh")
	from := req.Header.Get("X-Mesh-From")
	c.mu.Lock()
	h := c.handlers[to]
	dead := c.down[to]
	severed := from != "" && c.cut[pairKey(from, to)]
	c.mu.Unlock()
	if h == nil || dead || severed {
		return nil, fmt.Errorf("connection refused (%s unreachable)", to)
	}
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	resp := rw.Result()
	resp.Request = req
	return resp, nil
}

func (c *clusterNet) setHandler(id string, h http.Handler) {
	c.mu.Lock()
	c.handlers[id] = h
	c.down[id] = false
	c.mu.Unlock()
}

func (c *clusterNet) setDown(id string) {
	c.mu.Lock()
	c.down[id] = true
	c.mu.Unlock()
}

func (c *clusterNet) handler(id string) http.Handler {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.handlers[id]
}

// sever cuts (or heals) the links between id and every other node.
func (c *clusterNet) sever(id string, others []string, on bool) {
	c.mu.Lock()
	for _, o := range others {
		if o != id {
			c.cut[pairKey(id, o)] = on
		}
	}
	c.mu.Unlock()
}

// clusterUploads builds the request pool: six distinct tiny jobs, two of
// them filed under a series so schedules also exercise the cluster-wide
// series surface.
func clusterUploads(t *testing.T) []JobRequest {
	t.Helper()
	enc := func(tr *trace.Trace) string {
		var sb strings.Builder
		if err := trace.Write(&sb, tr); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	reqs := make([]JobRequest, 6)
	for i := range reqs {
		reqs[i] = JobRequest{
			Traces: []string{
				enc(oracle.GenTraces(uint64(300+i), fmt.Sprintf("c%da", i), 2, 2, 2+i%2)),
				enc(oracle.GenTraces(uint64(400+i), fmt.Sprintf("c%db", i), 2, 2, 2+i%2)),
			},
			Config: &ConfigSpec{Eps: 0.07, MinPts: 3},
		}
		if i%3 == 0 {
			reqs[i].Series = "simser"
			reqs[i].RunLabel = fmt.Sprintf("r%d", i)
		}
	}
	return reqs
}

type clusterJob struct {
	node int
	j    *Job
}

// clusterSim is the state of one seeded whole-cluster schedule.
type clusterSim struct {
	t    *testing.T
	seed uint64
	rng  *rand.Rand
	net  *clusterNet
	ids  []string
	cfgs []Config
	srvs []*Server
	reqs []JobRequest
	keys []string // keys[i] = fingerprint of reqs[i]

	clock   int64
	log     []string
	pending []clusterJob
	results map[string][]byte // acked ledger: key -> first observed bytes

	execMu sync.Mutex
	execs  map[string]int // key -> executions across all nodes+generations

	submittedEver []bool
	isoClaim      []int // req -> node that claimed it while isolated, -1 none
	isolated      int   // node currently severed, -1 none
	downNode      int   // node currently crashed, -1 none
}

func (c *clusterSim) tick(format string, args ...any) {
	c.clock++
	c.log = append(c.log, fmt.Sprintf("t=%03d %s", c.clock, fmt.Sprintf(format, args...)))
}

func (c *clusterSim) fail(format string, args ...any) {
	c.t.Helper()
	c.t.Fatalf("cluster schedule seed %d:\n  %s\nevent log:\n  %s",
		c.seed, fmt.Sprintf(format, args...), strings.Join(c.log, "\n  "))
}

func (c *clusterSim) noteExec(key string) {
	c.execMu.Lock()
	c.execs[key]++
	c.execMu.Unlock()
}

// runningNodes are the nodes clients can currently reach.
func (c *clusterSim) runningNodes() []int {
	out := make([]int, 0, len(c.srvs))
	for i := range c.srvs {
		if i != c.downNode {
			out = append(out, i)
		}
	}
	return out
}

// majorityNodes are running nodes on the connected side of a partition.
func (c *clusterSim) majorityNodes() []int {
	out := make([]int, 0, len(c.srvs))
	for _, i := range c.runningNodes() {
		if i != c.isolated {
			out = append(out, i)
		}
	}
	return out
}

// majorityReq picks a request the connected side may submit: anything
// not claimed by the isolated node (whose fresh keys must stay exclusive
// to it until the heal, or exactly-once would depend on a race).
func (c *clusterSim) majorityReq() int {
	var cands []int
	for ri := range c.reqs {
		if c.isoClaim[ri] == -1 {
			cands = append(cands, ri)
		}
	}
	return cands[c.rng.IntN(len(cands))]
}

// isolatedReq picks a request the severed node ni may submit without
// risking a cross-partition double compute: a key it already holds (pure
// local read), one it claimed earlier, or a fresh key never submitted
// anywhere (which it claims).
func (c *clusterSim) isolatedReq(ni int) (int, bool) {
	var cands []int
	for ri := range c.reqs {
		switch {
		case c.isoClaim[ri] == ni:
			cands = append(cands, ri)
		case c.isoClaim[ri] != -1:
		default:
			if _, held := c.srvs[ni].Store().GetMeta(c.keys[ri]); held {
				cands = append(cands, ri)
			} else if !c.submittedEver[ri] {
				cands = append(cands, ri)
			}
		}
	}
	if len(cands) == 0 {
		return 0, false
	}
	ri := cands[c.rng.IntN(len(cands))]
	if !c.submittedEver[ri] {
		c.isoClaim[ri] = ni
	}
	return ri, true
}

// submit issues reqs[ri] on node ni, draining once on queue pushback.
func (c *clusterSim) submit(ni, ri int) *Job {
	c.submittedEver[ri] = true
	j, _, err := c.srvs[ni].Submit(c.reqs[ri])
	if err == ErrQueueFull {
		c.tick("queue full on %s, draining", c.ids[ni])
		c.drainAll()
		j, _, err = c.srvs[ni].Submit(c.reqs[ri])
	}
	if err != nil {
		c.fail("submit req %d on %s: %v", ri, c.ids[ni], err)
	}
	return j
}

// record verifies a terminal job and folds its bytes into the ledger.
func (c *clusterSim) record(ni int, j *Job) {
	result, state, errMsg := c.srvs[ni].Result(j)
	if state != StateDone {
		c.fail("job %s on %s (key %.8s) state %s: %s", j.ID, c.ids[ni], j.Key, state, errMsg)
	}
	if prev, ok := c.results[j.Key]; ok {
		if !bytes.Equal(prev, result) {
			c.fail("key %.8s returned different bytes than first completion", j.Key)
		}
	} else {
		c.results[j.Key] = result
	}
}

// drainAll waits out every pending job cluster-wide and enforces the
// exactly-once invariant at the quiescent point.
func (c *clusterSim) drainAll() {
	for _, p := range c.pending {
		if err := c.srvs[p.node].Wait(context.Background(), p.j); err != nil {
			c.fail("wait on %s: %v", c.ids[p.node], err)
		}
		c.record(p.node, p.j)
	}
	c.pending = c.pending[:0]

	c.execMu.Lock()
	defer c.execMu.Unlock()
	for key := range c.results {
		if n := c.execs[key]; n != 1 {
			c.fail("key %.8s executed %d times across the cluster, want exactly 1", key, n)
		}
	}
	for key, n := range c.execs {
		if _, ok := c.results[key]; !ok {
			c.fail("key %.8s executed %d times but never completed for a client", key, n)
		}
	}
}

func (c *clusterSim) probeAll() {
	for _, i := range c.runningNodes() {
		c.srvs[i].Mesh().ProbeOnce(context.Background())
	}
}

func (c *clusterSim) rebalanceAll() {
	for _, i := range c.runningNodes() {
		if _, err := c.srvs[i].Rebalance(context.Background()); err != nil {
			c.fail("rebalance on %s: %v", c.ids[i], err)
		}
	}
}

// httpGet runs one client-style request against node ni's handler.
func (c *clusterSim) httpGet(ni int, path string) (int, []byte) {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rw := httptest.NewRecorder()
	c.net.handler(c.ids[ni]).ServeHTTP(rw, req)
	return rw.Code, rw.Body.Bytes()
}

// verifyAll is the no-acked-result-lost check, run only at full health
// after probes and a rebalance round: every completed key is served with
// identical bytes by every node, and no journal holds residue.
func (c *clusterSim) verifyAll() {
	keys := make([]string, 0, len(c.results))
	for k := range c.results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		for ni := range c.srvs {
			code, body := c.httpGet(ni, "/v1/results/"+key)
			if code != http.StatusOK || !bytes.Equal(body, c.results[key]) {
				c.fail("acked key %.8s not served by %s: status %d", key, c.ids[ni], code)
			}
		}
	}
	for ni := range c.srvs {
		if p := c.srvs[ni].Journal().Stats().Pending; p != 0 {
			c.fail("job journal on %s holds %d intents at quiescence", c.ids[ni], p)
		}
		if p := c.srvs[ni].MeshJournal().Stats().Pending; p != 0 {
			c.fail("mesh journal on %s holds %d unpaid debts after rebalance", c.ids[ni], p)
		}
	}
}

// scatterCheck reads one completed key through a random node's client
// API; with every node up, scatter-gather must find it wherever it lives.
func (c *clusterSim) scatterCheck() {
	if len(c.results) == 0 {
		return
	}
	keys := make([]string, 0, len(c.results))
	for k := range c.results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	key := keys[c.rng.IntN(len(keys))]
	ni := c.rng.IntN(len(c.srvs))
	c.tick("scatter read key %.8s via %s", key, c.ids[ni])
	code, body := c.httpGet(ni, "/v1/results/"+key)
	if code != http.StatusOK || !bytes.Equal(body, c.results[key]) {
		c.fail("scatter read of %.8s via %s: status %d", key, c.ids[ni], code)
	}
}

// crashNode kills one node at a quiescent point, keeps the survivors
// serving (re-routing keys the dead node owned), then restarts it over
// the same directory and converges membership and replicas.
func (c *clusterSim) crashNode() {
	c.drainAll()
	x := c.rng.IntN(len(c.srvs))
	c.tick("crash %s", c.ids[x])
	c.net.setDown(c.ids[x])
	c.downNode = x
	if err := c.srvs[x].Shutdown(context.Background()); err != nil {
		c.fail("shutdown %s: %v", c.ids[x], err)
	}

	survivors := c.runningNodes()
	for n := 1 + c.rng.IntN(2); n > 0; n-- {
		ni := survivors[c.rng.IntN(len(survivors))]
		ri := c.rng.IntN(len(c.reqs))
		c.tick("submit req %d to survivor %s", ri, c.ids[ni])
		c.pending = append(c.pending, clusterJob{ni, c.submit(ni, ri)})
	}
	c.drainAll()

	srv, err := New(c.cfgs[x])
	if err != nil {
		c.fail("restart %s: %v", c.ids[x], err)
	}
	c.srvs[x] = srv
	c.net.setHandler(c.ids[x], srv.Handler())
	c.downNode = -1
	select {
	case <-srv.replayDone:
	case <-time.After(time.Minute):
		c.fail("journal replay on restarted %s did not finish", c.ids[x])
	}
	c.probeAll()
	c.rebalanceAll()
	c.drainAll()
	c.verifyAll()
	c.tick("restarted %s, cluster converged", c.ids[x])
}

// isolateNode severs one node from both peers at a quiescent point. The
// majority keeps serving its side; the severed node serves keys it holds
// and computes fresh keys exclusive to it (forwarding falls back locally
// once both peers are marked down). Healing probes, rebalances, and
// proves convergence.
func (c *clusterSim) isolateNode() {
	c.drainAll()
	x := c.rng.IntN(len(c.srvs))
	c.tick("isolate %s", c.ids[x])
	c.net.sever(c.ids[x], c.ids, true)
	c.isolated = x

	for n := 2 + c.rng.IntN(3); n > 0; n-- {
		if c.rng.IntN(2) == 0 {
			maj := c.majorityNodes()
			ni := maj[c.rng.IntN(len(maj))]
			ri := c.majorityReq()
			c.tick("submit req %d on majority node %s", ri, c.ids[ni])
			c.pending = append(c.pending, clusterJob{ni, c.submit(ni, ri)})
		} else {
			ri, ok := c.isolatedReq(x)
			if !ok {
				c.tick("no eligible request for isolated %s", c.ids[x])
				continue
			}
			c.tick("submit req %d on isolated %s", ri, c.ids[x])
			c.pending = append(c.pending, clusterJob{x, c.submit(x, ri)})
		}
	}
	c.drainAll()

	c.net.sever(c.ids[x], c.ids, false)
	c.isolated = -1
	for ri := range c.isoClaim {
		c.isoClaim[ri] = -1
	}
	c.probeAll()
	c.rebalanceAll()
	c.drainAll()
	c.verifyAll()
	c.tick("healed %s, cluster converged", c.ids[x])
}

// dupBurst submits the same request concurrently on two different nodes;
// owner-side singleflight must collapse them to at most one execution
// (exactly zero extra if the key already completed).
func (c *clusterSim) dupBurst() {
	c.drainAll()
	nodes := c.majorityNodes()
	if len(nodes) < 2 {
		return
	}
	i := c.rng.IntN(len(nodes))
	k := (i + 1 + c.rng.IntN(len(nodes)-1)) % len(nodes)
	ri := c.majorityReq()
	c.tick("duplicate burst req %d on %s and %s", ri, c.ids[nodes[i]], c.ids[nodes[k]])
	a := c.submit(nodes[i], ri)
	b := c.submit(nodes[k], ri)
	c.pending = append(c.pending, clusterJob{nodes[i], a}, clusterJob{nodes[k], b})
	c.drainAll()
	ra, _, _ := c.srvs[nodes[i]].Result(a)
	rb, _, _ := c.srvs[nodes[k]].Result(b)
	if !bytes.Equal(ra, rb) {
		c.fail("duplicate submissions on different nodes returned different bytes")
	}
}

func runClusterSchedule(t *testing.T, seed uint64, baseDir string, reqs []JobRequest, keys []string) {
	dir := filepath.Join(baseDir, fmt.Sprintf("s%d", seed))
	ids := []string{"n1", "n2", "n3"}
	peers := make([]mesh.Peer, len(ids))
	for i, id := range ids {
		peers[i] = mesh.Peer{ID: id, URL: "http://" + id + ".mesh"}
	}
	c := &clusterSim{
		t:             t,
		seed:          seed,
		rng:           rand.New(rand.NewPCG(seed, 0xc105_7e12)),
		net:           newClusterNet(),
		ids:           ids,
		reqs:          reqs,
		keys:          keys,
		results:       map[string][]byte{},
		execs:         map[string]int{},
		submittedEver: make([]bool, len(reqs)),
		isoClaim:      make([]int, len(reqs)),
		isolated:      -1,
		downNode:      -1,
	}
	for ri := range c.isoClaim {
		c.isoClaim[ri] = -1
	}
	c.cfgs = make([]Config, len(ids))
	c.srvs = make([]*Server, len(ids))
	for i, id := range ids {
		c.cfgs[i] = Config{
			Workers:         2,
			QueueDepth:      8,
			CacheMaxEntries: 2,
			StoreDir:        filepath.Join(dir, id),
			StoreSyncEvery:  64,
			RetryBase:       time.Millisecond,
			RetryMax:        4 * time.Millisecond,
			Mesh: mesh.Config{
				NodeID:        id,
				Peers:         peers,
				ProbeFailures: 1,
				Transport:     c.net,
			},
			testExecHook: c.noteExec,
		}
		srv, err := New(c.cfgs[i])
		if err != nil {
			t.Fatalf("seed %d: node %s: %v", seed, id, err)
		}
		c.srvs[i] = srv
		c.net.setHandler(id, srv.Handler())
	}
	defer func() {
		for i := range c.srvs {
			if i != c.downNode {
				c.srvs[i].Shutdown(context.Background())
			}
		}
		os.RemoveAll(dir)
	}()

	crashes, isolations := 0, 0
	nOps := 5 + c.rng.IntN(5)
	for op := 0; op < nOps; op++ {
		switch k := c.rng.IntN(10); {
		case k < 3:
			nodes := c.runningNodes()
			ni := nodes[c.rng.IntN(len(nodes))]
			ri := c.majorityReq()
			c.tick("submit+wait req %d on %s", ri, c.ids[ni])
			c.pending = append(c.pending, clusterJob{ni, c.submit(ni, ri)})
			c.drainAll()
		case k < 5:
			nodes := c.runningNodes()
			ni := nodes[c.rng.IntN(len(nodes))]
			ri := c.majorityReq()
			c.tick("submit async req %d on %s", ri, c.ids[ni])
			c.pending = append(c.pending, clusterJob{ni, c.submit(ni, ri)})
		case k < 7:
			c.dupBurst()
		case k < 8:
			c.drainAll()
			c.scatterCheck()
		case k < 9 && crashes < 2:
			crashes++
			c.crashNode()
		default:
			if isolations < 1 {
				isolations++
				c.isolateNode()
			} else {
				nodes := c.runningNodes()
				ni := nodes[c.rng.IntN(len(nodes))]
				ri := c.majorityReq()
				c.tick("budget spent, submit req %d on %s", ri, c.ids[ni])
				c.pending = append(c.pending, clusterJob{ni, c.submit(ni, ri)})
			}
		}
	}

	// Final convergence: drain, settle replicas, prove every acked result
	// is served by every node and the series surface agrees cluster-wide.
	c.drainAll()
	c.probeAll()
	c.rebalanceAll()
	c.drainAll()
	c.verifyAll()

	wantSeries := false
	for ri := range c.reqs {
		if c.reqs[ri].Series != "" {
			if _, ok := c.results[c.keys[ri]]; ok {
				wantSeries = true
			}
		}
	}
	if wantSeries {
		for ni := range c.srvs {
			code, body := c.httpGet(ni, "/v1/series")
			if code != http.StatusOK {
				c.fail("series listing via %s: status %d", c.ids[ni], code)
			}
			var resp struct {
				Series []string `json:"series"`
			}
			if err := json.Unmarshal(body, &resp); err != nil {
				c.fail("series listing via %s: %v", c.ids[ni], err)
			}
			found := false
			for _, n := range resp.Series {
				if n == "simser" {
					found = true
				}
			}
			if !found {
				c.fail("node %s does not see series simser cluster-wide", c.ids[ni])
			}
		}
	}
}

func TestClusterSimulationSchedules(t *testing.T) {
	schedules := uint64(520)
	if testing.Short() {
		schedules = 40
	}
	base := t.TempDir()
	reqs := clusterUploads(t)
	keys := make([]string, len(reqs))
	for i := range reqs {
		spec, err := resolve(reqs[i])
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = spec.key
	}
	for seed := uint64(0); seed < schedules; seed++ {
		runClusterSchedule(t, seed, base, reqs, keys)
	}
}

// TestClusterReplayRacesRebalance is the 2-node kill/hand-off chaos
// schedule: a job journaled on node A (owned by node B) is interrupted by
// killing A before B finishes computing; B completes, and its replication
// push to the dead A becomes journaled hand-off debt. A then restarts
// while B concurrently probes and rebalances, so A's journal replay of
// the intent races B's hand-off delivery of the very same record into
// A's store. Whichever side wins, the job must resolve exactly once:
// one execution total, no stranded intent, no unpaid debt, and both
// nodes serving identical bytes.
func TestClusterReplayRacesRebalance(t *testing.T) {
	rounds := 14
	if testing.Short() {
		rounds = 4
	}
	ring := mesh.NewRing([]string{"na", "nb"}, 64)
	req, key := reqOwnedBy(t, "nb", ring)
	peers := []mesh.Peer{
		{ID: "na", URL: "http://na.mesh"},
		{ID: "nb", URL: "http://nb.mesh"},
	}
	base := t.TempDir()

	for round := 0; round < rounds; round++ {
		dir := filepath.Join(base, fmt.Sprintf("r%d", round))
		net := newClusterNet()
		var execMu sync.Mutex
		execs := 0
		cfg := func(id string) Config {
			return Config{
				Workers:        1,
				QueueDepth:     4,
				StoreDir:       filepath.Join(dir, id),
				StoreSyncEvery: 8,
				RetryBase:      time.Millisecond,
				RetryMax:       4 * time.Millisecond,
				Mesh: mesh.Config{
					NodeID:        id,
					Peers:         peers,
					VNodes:        64,
					ProbeFailures: 1,
					Transport:     net,
				},
				testExecHook: func(string) { execMu.Lock(); execs++; execMu.Unlock() },
			}
		}
		cfgA, cfgB := cfg("na"), cfg("nb")

		// B's exec hook doubles as the kill point: the worker blocks at the
		// exact moment it commits to computing (after its pre-execute
		// cluster fetch reported A alive), the test kills A, and only then
		// does the pipeline run — so B's replication push targets a replica
		// set that still contains A, fails against the dead node, and is
		// journaled as hand-off debt.
		killA := make(chan struct{})
		aDead := make(chan struct{})
		var killOnce sync.Once
		cfgB.testExecHook = func(string) {
			execMu.Lock()
			execs++
			execMu.Unlock()
			killOnce.Do(func() {
				killA <- struct{}{}
				<-aDead
			})
		}

		srvA, err := New(cfgA)
		if err != nil {
			t.Fatal(err)
		}
		srvB, err := New(cfgB)
		if err != nil {
			t.Fatal(err)
		}
		net.setHandler("na", srvA.Handler())
		net.setHandler("nb", srvB.Handler())

		// Submit on A: journaled locally, forwarded to owner B.
		if _, _, err := srvA.Submit(req); err != nil {
			t.Fatalf("round %d: submit: %v", round, err)
		}
		var jB *Job
		for deadline := time.Now().Add(30 * time.Second); jB == nil; {
			srvB.mu.Lock()
			jB = srvB.inflight[key]
			srvB.mu.Unlock()
			if jB == nil {
				if time.Now().After(deadline) {
					t.Fatalf("round %d: forwarded job never reached B", round)
				}
				time.Sleep(time.Millisecond)
			}
		}

		// B reached the execute point; kill A before the result exists.
		// A's long-poll aborts, its runRemote cancels, and the journaled
		// intent stays pending on disk.
		<-killA
		net.setDown("na")
		if err := srvA.Shutdown(context.Background()); err != nil {
			t.Fatalf("round %d: shutdown A: %v", round, err)
		}
		close(aDead)

		// B completes; its replication push to the dead A is journaled as
		// hand-off debt.
		if err := srvB.Wait(context.Background(), jB); err != nil {
			t.Fatalf("round %d: wait on B: %v", round, err)
		}
		if _, state, msg := srvB.Result(jB); state != StateDone {
			t.Fatalf("round %d: B job state %s: %s", round, state, msg)
		}
		if p := srvB.MeshJournal().Stats().Pending; p == 0 {
			t.Fatalf("round %d: expected hand-off debt on B after push to dead A", round)
		}

		// Restart A while B rebalances: replay races the hand-off.
		rebalDone := make(chan struct{})
		go func() {
			defer close(rebalDone)
			for i := 0; i < 3; i++ {
				srvB.Mesh().ProbeOnce(context.Background())
				srvB.Rebalance(context.Background())
			}
		}()
		if round%2 == 1 {
			time.Sleep(time.Duration(round) * 100 * time.Microsecond)
		}
		srvA2, err := New(cfgA)
		if err != nil {
			t.Fatalf("round %d: restart A: %v", round, err)
		}
		net.setHandler("na", srvA2.Handler())
		select {
		case <-srvA2.replayDone:
		case <-time.After(time.Minute):
			t.Fatalf("round %d: replay on A did not finish", round)
		}
		<-rebalDone

		// Settle: one more probe+rebalance round with both nodes alive.
		srvA2.Mesh().ProbeOnce(context.Background())
		srvB.Mesh().ProbeOnce(context.Background())
		if _, err := srvB.Rebalance(context.Background()); err != nil {
			t.Fatalf("round %d: final rebalance on B: %v", round, err)
		}
		if _, err := srvA2.Rebalance(context.Background()); err != nil {
			t.Fatalf("round %d: final rebalance on A: %v", round, err)
		}

		execMu.Lock()
		n := execs
		execMu.Unlock()
		if n != 1 {
			t.Fatalf("round %d: key executed %d times across kill/replay/rebalance, want exactly 1", round, n)
		}
		if p := srvA2.Journal().Stats().Pending; p != 0 {
			t.Fatalf("round %d: %d intents stranded on A after replay", round, p)
		}
		if p := srvB.MeshJournal().Stats().Pending; p != 0 {
			t.Fatalf("round %d: %d hand-off debts unpaid on B after rebalance", round, p)
		}
		if _, held := srvA2.Store().GetMeta(key); !held {
			t.Fatalf("round %d: hand-off never delivered the record to A", round)
		}
		var want []byte
		for i, h := range []http.Handler{srvA2.Handler(), srvB.Handler()} {
			rw := httptest.NewRecorder()
			h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/v1/results/"+key, nil))
			if rw.Code != http.StatusOK {
				t.Fatalf("round %d: node %d does not serve the key: status %d", round, i, rw.Code)
			}
			if i == 0 {
				want = append([]byte(nil), rw.Body.Bytes()...)
			} else if !bytes.Equal(want, rw.Body.Bytes()) {
				t.Fatalf("round %d: nodes serve different bytes", round)
			}
		}

		srvA2.Shutdown(context.Background())
		srvB.Shutdown(context.Background())
		os.RemoveAll(dir)
	}
}

// reqOwnedBy generates a request whose fingerprint lands on the wanted
// ring node.
func reqOwnedBy(t *testing.T, owner string, ring *mesh.Ring) (JobRequest, string) {
	t.Helper()
	enc := func(seed uint64, name string) string {
		var sb strings.Builder
		if err := trace.Write(&sb, oracle.GenTraces(seed, name, 2, 2, 2)); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	for seed := uint64(0); seed < 128; seed++ {
		req := JobRequest{
			Traces: []string{
				enc(900+seed, fmt.Sprintf("race%da", seed)),
				enc(1100+seed, fmt.Sprintf("race%db", seed)),
			},
			Config: &ConfigSpec{Eps: 0.07, MinPts: 3},
		}
		spec, err := resolve(req)
		if err != nil {
			t.Fatal(err)
		}
		if ring.Owner(spec.key) == owner {
			return req, spec.key
		}
	}
	t.Fatal("no candidate request owned by " + owner)
	return JobRequest{}, ""
}

// TestClusterSeriesScatter pins the cluster-wide series surface on a
// 2-node cluster with replication suppressed (R=1), so every record has
// exactly one holder and a correct answer from the other node can only
// come from scatter-gather.
func TestClusterSeriesScatter(t *testing.T) {
	ids := []string{"na", "nb"}
	peers := []mesh.Peer{
		{ID: "na", URL: "http://na.mesh"},
		{ID: "nb", URL: "http://nb.mesh"},
	}
	net := newClusterNet()
	dir := t.TempDir()
	srvs := make([]*Server, 2)
	for i, id := range ids {
		srv, err := New(Config{
			Workers:  2,
			StoreDir: filepath.Join(dir, id),
			Mesh: mesh.Config{
				NodeID:        id,
				Peers:         peers,
				Replicas:      1,
				ProbeFailures: 1,
				Transport:     net,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		srvs[i] = srv
		net.setHandler(id, srv.Handler())
		defer srv.Shutdown(context.Background())
	}

	enc := func(seed uint64, name string) string {
		var sb strings.Builder
		if err := trace.Write(&sb, oracle.GenTraces(seed, name, 2, 2, 2)); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	for i := 0; i < 3; i++ {
		req := JobRequest{
			Traces: []string{
				enc(uint64(700+i), fmt.Sprintf("sc%da", i)),
				enc(uint64(800+i), fmt.Sprintf("sc%db", i)),
			},
			Config:   &ConfigSpec{Eps: 0.07, MinPts: 3},
			Series:   "night",
			RunLabel: fmt.Sprintf("run-%d", i),
		}
		j, _, err := srvs[i%2].Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		if err := srvs[i%2].Wait(context.Background(), j); err != nil {
			t.Fatal(err)
		}
		if _, state, msg := srvs[i%2].Result(j); state != StateDone {
			t.Fatalf("run %d state %s: %s", i, state, msg)
		}
	}

	get := func(ni int, path string) (int, []byte) {
		rw := httptest.NewRecorder()
		net.handler(ids[ni]).ServeHTTP(rw, httptest.NewRequest(http.MethodGet, path, nil))
		return rw.Code, rw.Body.Bytes()
	}
	for ni := range srvs {
		code, body := get(ni, "/v1/results")
		if code != http.StatusOK {
			t.Fatalf("results listing via %s: status %d", ids[ni], code)
		}
		var listing struct {
			Results []json.RawMessage `json:"results"`
		}
		if err := json.Unmarshal(body, &listing); err != nil {
			t.Fatal(err)
		}
		if len(listing.Results) != 3 {
			t.Fatalf("node %s lists %d results cluster-wide, want 3", ids[ni], len(listing.Results))
		}

		code, body = get(ni, "/v1/series")
		var series struct {
			Series []string `json:"series"`
		}
		if code != http.StatusOK || json.Unmarshal(body, &series) != nil {
			t.Fatalf("series listing via %s: status %d", ids[ni], code)
		}
		if len(series.Series) != 1 || series.Series[0] != "night" {
			t.Fatalf("node %s series listing: %v", ids[ni], series.Series)
		}

		code, body = get(ni, "/v1/series/night/trajectories")
		if code != http.StatusOK {
			t.Fatalf("trajectories via %s: status %d: %s", ids[ni], code, body)
		}
		var tr struct {
			Runs []json.RawMessage `json:"runs"`
		}
		if err := json.Unmarshal(body, &tr); err != nil {
			t.Fatal(err)
		}
		if len(tr.Runs) != 3 {
			t.Fatalf("node %s chains %d runs cluster-wide, want 3", ids[ni], len(tr.Runs))
		}
	}
}
