package service

// Stream simulation: seeded schedules of append / crash / restart /
// subscriber churn against the streams API, checking the two streaming
// recovery invariants after every step:
//
//  1. No sealed window is lost: a window acknowledged as sealed before
//     a crash is present (restored, not recomputed) after the restart.
//  2. No window is evaluated twice: across every restart, the sealed
//     window indices observed by the client form exactly the sequence
//     0,1,2,... with no duplicate and no gap.
//
// Each schedule ends with a differential check: the persisted export of
// the final window is bit-exact with the batch pipeline over the same
// arrival-order chunks.
//
// `go test` runs a quick default; `make stream-sim` sets
// STREAM_SIM_SCHEDULES=300 for the full sweep under -race.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"perftrack/internal/oracle"
	"perftrack/internal/stream"
	"perftrack/internal/trace"
)

// simWorkloads are the decoded burst sequences schedules draw from
// (decoded once: the codec round-trip is what the daemon sees).
var simWorkloads = func() []*trace.Trace {
	var out []*trace.Trace
	for seed := uint64(0); seed < 4; seed++ {
		tr := oracle.GenTraces(seed, "sim", 6, 8, 2) // 96 bursts
		var buf bytes.Buffer
		if err := trace.Write(&buf, tr); err != nil {
			panic(err)
		}
		dec, _, err := trace.ReadWith(bytes.NewReader(buf.Bytes()), trace.DecodeOptions{Strict: false})
		if err != nil {
			panic(err)
		}
		out = append(out, dec)
	}
	return out
}()

func TestStreamSim(t *testing.T) {
	schedules := 60
	if v := os.Getenv("STREAM_SIM_SCHEDULES"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("STREAM_SIM_SCHEDULES=%q", v)
		}
		schedules = n
	}
	for i := 0; i < schedules; i++ {
		t.Run(fmt.Sprintf("schedule-%03d", i), func(t *testing.T) {
			t.Parallel()
			runStreamSchedule(t, uint64(i))
		})
	}
}

// churnSubscriber long-polls the event feed for one server life,
// checking that delivered events are strictly ordered. It stops when
// ctx is canceled or the server closes; ordering violations land in
// subErr (the schedule checks it after all subscribers drain — the
// goroutine must not touch t once the subtest may have returned).
func churnSubscriber(ctx context.Context, subErr *atomic.Value, client *http.Client, base, id string) {
	after := int64(0)
	for ctx.Err() == nil {
		req, err := http.NewRequestWithContext(ctx, "GET",
			base+"/v1/streams/"+id+"/events?after="+fmt.Sprint(after)+"&wait=100ms", nil)
		if err != nil {
			return
		}
		resp, err := client.Do(req)
		if err != nil {
			return // server life over
		}
		var poll struct {
			Events []streamEvent `json:"events"`
			Next   int64         `json:"next"`
		}
		json.NewDecoder(resp.Body).Decode(&poll)
		resp.Body.Close()
		for _, ev := range poll.Events {
			if ev.Seq <= after {
				subErr.Store(fmt.Sprintf("subscriber saw seq %d after %d", ev.Seq, after))
				return
			}
			after = ev.Seq
		}
		if poll.Next > after {
			after = poll.Next
		}
	}
}

func runStreamSchedule(t *testing.T, seed uint64) {
	rng := rand.New(rand.NewSource(int64(seed)*2654435761 + 17))
	tr := simWorkloads[int(seed)%len(simWorkloads)]
	bursts := tr.Bursts
	countN := 16 + rng.Intn(17) // 16..32
	total := (len(bursts) + countN - 1) / countN
	id := fmt.Sprintf("sim-%04d", seed)
	series := fmt.Sprintf("sim-series-%04d", seed)
	dir := t.TempDir()
	base := Config{Workers: 1, StoreDir: dir, JournalDisabled: true}

	// Crash points: after which appended-chunk counts to kill the daemon.
	crashes := map[int]bool{}
	for n := rng.Intn(3); n > 0; n-- {
		crashes[1+rng.Intn(8)] = true
	}

	var subs sync.WaitGroup
	var subErr atomic.Value

	type life struct {
		s      *Server
		srv    *httptest.Server
		cancel context.CancelFunc
	}
	open := func(first bool) life {
		s, err := New(base)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		srv := httptest.NewServer(s.Handler())
		ctx, cancel := context.WithCancel(context.Background())
		if !first {
			// Subscriber churn: each server life gets its own pollers,
			// killed with the life (connection churn).
			for n := rng.Intn(3); n > 0; n-- {
				subs.Add(1)
				go func() {
					defer subs.Done()
					churnSubscriber(ctx, &subErr, srv.Client(), srv.URL, id)
				}()
			}
		}
		return life{s: s, srv: srv, cancel: cancel}
	}
	kill := func(l life) {
		l.cancel()
		l.srv.Close()
		if err := l.s.Shutdown(context.Background()); err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	}

	l := open(true)
	client := l.srv.Client()
	var view StreamView
	resp := postJSON(t, client, l.srv.URL+"/v1/streams", StreamRequest{
		ID:     id,
		Label:  "sim",
		Ranks:  tr.Meta.Ranks,
		Window: stream.WindowSpec{CountN: countN},
		Series: series,
	}, &view)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	ctx, cancelSubs := context.WithCancel(context.Background())
	defer cancelSubs()
	for n := rng.Intn(3); n > 0; n-- {
		subs.Add(1)
		firstClient, firstURL := client, l.srv.URL
		go func() {
			defer subs.Done()
			churnSubscriber(ctx, &subErr, firstClient, firstURL, id)
		}()
	}

	var labels []string
	var finals []*stream.Delta
	note := func(ds []*stream.Delta) {
		for _, d := range ds {
			// Invariant 2: windows seal exactly once, in order, across
			// every crash and restart.
			if d.Window != len(labels) {
				t.Fatalf("window %d sealed out of order (want %d); labels %v", d.Window, len(labels), labels)
			}
			labels = append(labels, d.Label)
			finals = append(finals, d)
		}
	}

	pos, chunks := 0, 0
	for pos < len(bursts) {
		if crashes[chunks] {
			delete(crashes, chunks)
			kill(l)
			l = open(false)
			client = l.srv.Client()
			var v StreamView
			r, err := client.Get(l.srv.URL + "/v1/streams/" + id)
			if err != nil {
				t.Fatal(err)
			}
			if r.StatusCode != http.StatusOK {
				t.Fatalf("stream lost across restart: status %d", r.StatusCode)
			}
			json.NewDecoder(r.Body).Decode(&v)
			r.Body.Close()
			// Invariant 1: every window acknowledged as sealed before the
			// crash survived it.
			if v.Stats.WindowsSealed != len(labels) {
				t.Fatalf("restart restored %d windows, client saw %d sealed", v.Stats.WindowsSealed, len(labels))
			}
			if !v.Resumed {
				t.Fatal("restarted stream not marked resumed")
			}
			// The open window's bursts died with the daemon, by contract:
			// resend from the sealed boundary.
			pos = len(labels) * countN
		}
		n := 1 + rng.Intn(24)
		end := min(pos+n, len(bursts))
		var ar StreamAppendResponse
		r := postBytes(t, client, l.srv.URL+"/v1/streams/"+id+"/bursts",
			encodeChunk(t, tr.Meta, bursts[pos:end]), &ar)
		if r.StatusCode == http.StatusTooManyRequests {
			continue // backpressure: retry the same chunk
		}
		if r.StatusCode != http.StatusOK {
			t.Fatalf("append: status %d", r.StatusCode)
		}
		note(ar.Sealed)
		pos = end
		chunks++
	}
	var fin struct {
		Sealed []*stream.Delta `json:"sealed"`
	}
	if r := postJSON(t, client, l.srv.URL+"/v1/streams/"+id+"/finish", nil, &fin); r.StatusCode != http.StatusOK {
		t.Fatalf("finish: status %d", r.StatusCode)
	}
	note(fin.Sealed)
	if len(labels) != total {
		t.Fatalf("sealed %d windows, want %d", len(labels), total)
	}

	// Every window has exactly one raw record in the store (resume
	// input), no index missing, none duplicated.
	indices := map[int]int{}
	for _, m := range l.s.Store().Series(shadowSeries(id)) {
		payload, ok, err := l.s.Store().Get(m.Key)
		if err != nil || !ok {
			t.Fatalf("raw record %s: ok=%v err=%v", m.Key, ok, err)
		}
		var w stream.SealedWindow
		if err := json.Unmarshal(payload, &w); err != nil {
			t.Fatalf("raw record %s: %v", m.Key, err)
		}
		indices[w.Index]++
	}
	for i := 0; i < total; i++ {
		if indices[i] != 1 {
			t.Fatalf("window %d has %d raw records; map %v", i, indices[i], indices)
		}
	}

	// Differential close: the persisted export of the last cleanly
	// evaluated window matches the batch pipeline over the same
	// arrival-order chunk prefix. (A tail window too small to cluster
	// can carry an EvalError and has no export record, by design.)
	last := -1
	for j := range finals {
		if finals[j].EvalError == "" {
			last = j
		}
	}
	if last >= 0 {
		e, ok := l.s.streams.get(id)
		if !ok {
			t.Fatal("stream entry missing after finish")
		}
		cfg := e.sess.Config().Pipeline
		cfg.Metrics = e.sess.Metrics()
		key := streamExportKey(id, last)
		got, ok, err := l.s.Store().Get(key)
		if err != nil || !ok {
			t.Fatalf("export %s: ok=%v err=%v", key, ok, err)
		}
		end := min((last+1)*countN, len(bursts))
		want := batchWindowExport(t, bursts[:end], countN, tr.Meta.Ranks, labels[:last+1], cfg)
		if !bytes.Equal(got, want) {
			t.Fatalf("streaming export for window %d diverges from batch", last)
		}
	}

	cancelSubs()
	kill(l)
	subs.Wait()
	if e := subErr.Load(); e != nil {
		t.Fatal(e)
	}
	// One last restart: the finished stream stays finished.
	s2, err := New(base)
	if err != nil {
		t.Fatalf("final New: %v", err)
	}
	defer s2.Shutdown(context.Background())
	if _, ok := s2.streams.get(id); ok {
		t.Fatal("finished stream resurrected")
	}
}
