package service

// Cluster wiring: composes internal/mesh into the daemon. With clustering
// enabled (Config.Mesh.NodeID set), jobs route by consistent hashing over
// their content fingerprint: a node that does not own a submitted key
// journals the intent locally (the 202 durability promise stays local),
// registers a normal Job, and forwards the request to the owner instead
// of its own queue — exact dedup and singleflight then happen exactly
// once, at the owner. Completed results replicate to R ring successors
// using the store's CRC-framed record encoding; failed pushes become
// journaled hand-off debts that Rebalance retries, and Rebalance itself
// is journal-scoped so a crash mid-rebalance resumes on the next run.
// Read endpoints scatter-gather across alive peers, so any node answers
// for the whole cluster.
//
// Invariant contract, cluster edition:
//   - No acked result lost: an intent is fsynced on the receiving node
//     before its 202, regardless of ownership; it resolves done only
//     when the result is durable somewhere (the owner's X-Durable result
//     header, or a holder found by cluster lookup). Crash replay
//     re-routes through the mesh.
//   - No fingerprint computed twice: duplicate submits on any node
//     converge on the owner's singleflight table; before executing, a
//     cluster node also checks alive peers for an already-stored copy
//     (covers re-owned keys after a membership change).

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"path/filepath"
	"sort"
	"time"

	"perftrack/internal/mesh"
	"perftrack/internal/store"
	"perftrack/internal/trajectory"
)

type meshMetrics struct {
	forwards            *Counter
	forwardFailures     *Counter
	forwardFallbacks    *Counter
	receivedJobs        *Counter
	remoteHits          *Counter
	replicationPushes   *Counter
	replicationReceived *Counter
	replicationFailures *Counter
	handoffs            *Counter
	rebalances          *Counter
	scatters            *Counter
}

// openMesh builds the mesh node and the hand-off journal and registers
// the cluster metrics. Called from New when Config.Mesh.NodeID is set.
func (s *Server) openMesh() error {
	n, err := mesh.New(s.cfg.Mesh)
	if err != nil {
		return err
	}
	mj, err := store.OpenJournal(filepath.Join(s.cfg.StoreDir, "mesh"), store.JournalOptions{
		SyncEvery:    s.cfg.JournalSyncEvery,
		CompactEvery: s.cfg.JournalCompactEvery,
		FS:           s.cfg.StoreFS,
	})
	if err != nil {
		return err
	}
	s.mesh, s.meshJournal = n, mj

	r := s.reg
	s.mm = meshMetrics{
		forwards:            r.NewCounter("trackd_mesh_forwards_total", "Jobs forwarded to their ring owner on another node."),
		forwardFailures:     r.NewCounter("trackd_mesh_forward_failures_total", "Transport failures while forwarding a job to its owner."),
		forwardFallbacks:    r.NewCounter("trackd_mesh_forward_fallbacks_total", "Forwarded jobs executed locally because no owner was reachable."),
		receivedJobs:        r.NewCounter("trackd_mesh_received_jobs_total", "Job submissions received from peer nodes via the mesh."),
		remoteHits:          r.NewCounter("trackd_mesh_remote_hits_total", "Executions avoided because an alive peer already held the stored result."),
		replicationPushes:   r.NewCounter("trackd_mesh_replication_pushes_total", "Result records pushed to replica peers after completion."),
		replicationReceived: r.NewCounter("trackd_mesh_replication_received_total", "Replicated records applied from peer pushes."),
		replicationFailures: r.NewCounter("trackd_mesh_replication_failures_total", "Failed replication pushes (journaled as hand-off debt)."),
		handoffs:            r.NewCounter("trackd_mesh_rebalance_handoffs_total", "Records handed off to their current replica set by Rebalance."),
		rebalances:          r.NewCounter("trackd_mesh_rebalances_total", "Rebalance rounds run."),
		scatters:            r.NewCounter("trackd_mesh_scatter_requests_total", "Read requests answered by scatter-gathering alive peers."),
	}
	r.NewGaugeFunc("trackd_mesh_epoch", "Ring generation; bumps on every membership change.", func() int64 { return int64(n.Epoch()) })
	r.NewGaugeFunc("trackd_mesh_peers_alive", "Remote peers currently considered alive.", func() int64 { return int64(len(n.AlivePeers())) })
	r.NewGaugeFunc("trackd_mesh_replication_pending", "Journaled hand-off debts awaiting delivery (replication lag).", func() int64 { return int64(mj.Stats().Pending) })
	return nil
}

// Mesh exposes the cluster node (nil when clustering is disabled).
func (s *Server) Mesh() *mesh.Node { return s.mesh }

// MeshJournal exposes the hand-off journal (nil when disabled); the
// cluster simulation inspects replication debt through it.
func (s *Server) MeshJournal() *store.Journal { return s.meshJournal }

func viaMesh(r *http.Request) bool { return r.Header.Get("X-Mesh-From") != "" }

// forwardTarget decides whether a key must be forwarded: clustering on,
// the submission arrived from a client (not a peer — peer submissions
// are handled locally even if membership views disagree, which breaks
// forwarding loops), and the ring owner is another node.
func (s *Server) forwardTarget(key string, via bool) (string, bool) {
	if s.mesh == nil || via {
		return "", false
	}
	owner := s.mesh.Owner(key)
	if owner == "" || owner == s.mesh.Self() {
		return "", false
	}
	return owner, true
}

// forwardLocked registers a job that will be satisfied by its owner node
// and launches the forwarding goroutine; callers hold s.mu. The job
// lives in the local jobs/inflight tables like any other, so duplicate
// local submissions coalesce onto it and clients poll it by its local id.
func (s *Server) forwardLocked(spec *jobSpec, journaled bool, owner string, reqBody []byte) *Job {
	j := s.newJobLocked(spec)
	j.journaled = journaled
	j.remote = true
	j.owner = owner
	s.inflight[spec.key] = j
	s.mm.forwards.Inc()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.runRemote(j, reqBody)
	}()
	return j
}

const (
	forwardDone        = iota // terminal success: result bytes in hand
	forwardFailed             // the owner reached a definitive job failure
	forwardBusy               // owner alive but refusing work (429/503)
	forwardUnreachable        // transport-level failure talking to the owner
)

type forwardOutcome struct {
	kind    int
	result  []byte
	errMsg  string
	durable bool
}

// runRemote drives one forwarded job to a terminal state: submit to the
// owner, long-poll its result, and on owner death re-route via the
// updated ring, fall back to any holder in the cluster, and only then
// compute locally (blocking enqueue — the job is already acked).
func (s *Server) runRemote(j *Job, reqBody []byte) {
	ctx, cancel := context.WithTimeout(s.rootCtx, s.cfg.JobTimeout)
	defer cancel()

	const maxAttempts = 4
	for attempt := 0; attempt < maxAttempts && ctx.Err() == nil; attempt++ {
		owner := s.mesh.Owner(j.Key)
		if owner == "" || owner == s.mesh.Self() {
			break // membership shifted ownership home: run locally
		}
		out := s.forwardOnce(ctx, owner, reqBody)
		switch out.kind {
		case forwardDone:
			s.mesh.ReportSuccess(owner)
			s.publishRemote(j, out.result, "", out.durable)
			return
		case forwardFailed:
			s.mesh.ReportSuccess(owner)
			s.publishRemote(j, nil, out.errMsg, false)
			return
		case forwardBusy:
			s.mesh.ReportSuccess(owner)
			select {
			case <-time.After(backoffDelay(attempt+1, s.cfg.RetryBase, s.cfg.RetryMax)):
			case <-ctx.Done():
			}
		case forwardUnreachable:
			s.mm.forwardFailures.Inc()
			if ctx.Err() == nil {
				// Peer-death evidence only when it was not our own
				// deadline that killed the request.
				s.mesh.ReportFailure(owner)
			}
		}
	}
	if s.rootCtx.Err() != nil {
		s.publishRemoteCanceled(j)
		return
	}
	// No reachable owner. The result may still exist in the cluster (the
	// owner persisted before dying, or a replica holds it): serve that
	// before recomputing.
	if payload, ok := s.fetchFromCluster(ctx, j.Key); ok {
		s.publishRemote(j, payload, "", true)
		return
	}
	s.mm.forwardFallbacks.Inc()
	select {
	case s.queue <- j:
		// A worker takes over: run() publishes the outcome.
	case <-s.rootCtx.Done():
		s.publishRemoteCanceled(j)
	}
}

// forwardOnce submits the job to owner and long-polls the result.
func (s *Server) forwardOnce(ctx context.Context, owner string, reqBody []byte) forwardOutcome {
	status, _, body, err := s.mesh.DoH(ctx, owner, http.MethodPost, "/v1/jobs", reqBody)
	if err != nil {
		return forwardOutcome{kind: forwardUnreachable}
	}
	switch {
	case status == http.StatusOK || status == http.StatusAccepted:
	case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
		return forwardOutcome{kind: forwardBusy}
	default:
		return forwardOutcome{kind: forwardFailed, errMsg: apiError(status, body)}
	}
	var view JobView
	if err := json.Unmarshal(body, &view); err != nil || view.ID == "" {
		return forwardOutcome{kind: forwardFailed, errMsg: "owner returned undecodable job view"}
	}
	path := "/v1/jobs/" + view.ID + "/result?wait=30s"
	for ctx.Err() == nil {
		status, hdr, body, err := s.mesh.DoH(ctx, owner, http.MethodGet, path, nil)
		if err != nil {
			return forwardOutcome{kind: forwardUnreachable}
		}
		switch status {
		case http.StatusOK:
			return forwardOutcome{kind: forwardDone, result: body, durable: hdr.Get("X-Durable") == "true"}
		case http.StatusAccepted:
			// Long poll elapsed without a terminal state; poll again.
		case http.StatusGone:
			// Owner shutting down mid-job: fail over like a dead peer.
			return forwardOutcome{kind: forwardUnreachable}
		default:
			return forwardOutcome{kind: forwardFailed, errMsg: apiError(status, body)}
		}
	}
	return forwardOutcome{kind: forwardUnreachable}
}

func apiError(status int, body []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return e.Error
	}
	return fmt.Sprintf("owner returned status %d", status)
}

// publishRemote lands a forwarded job's terminal state. The local
// journal intent resolves done only when the result is durable somewhere
// in the cluster; a computed-but-nowhere-durable result leaves the
// intent pending for the next startup's replay, exactly like the
// single-node computed-but-not-persisted case.
func (s *Server) publishRemote(j *Job, result []byte, errMsg string, durable bool) {
	switch {
	case errMsg == "" && durable:
		s.resolveJournal(j, "", true)
	case errMsg != "":
		s.resolveJournal(j, errMsg, false)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	j.finished = time.Now()
	delete(s.inflight, j.Key)
	if errMsg == "" {
		j.state = StateDone
		j.result = result
		s.cache.Put(j.Key, result)
		s.m.jobsCompleted.Inc()
	} else {
		j.state = StateFailed
		j.errMsg = errMsg
		s.m.jobsFailed.Inc()
	}
	s.m.jobLatency.Observe(j.finished.Sub(j.submitted).Seconds())
	close(j.done)
}

func (s *Server) publishRemoteCanceled(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = StateCanceled
	j.errMsg = "daemon shutting down"
	j.finished = time.Now()
	delete(s.inflight, j.Key)
	s.m.jobsCanceled.Inc()
	close(j.done)
}

// fetchFromCluster asks every alive peer for the stored result under
// key. Workers call this before executing (a re-owned key may already be
// held elsewhere — recomputing it would break the exactly-once
// invariant); runRemote calls it when no owner is reachable.
func (s *Server) fetchFromCluster(ctx context.Context, key string) ([]byte, bool) {
	if s.mesh == nil {
		return nil, false
	}
	payload, _, ok := s.clusterResultLookup(ctx, key)
	return payload, ok
}

// clusterResultLookup resolves a (possibly abbreviated) key against the
// stores of every alive peer, returning the first hit.
func (s *Server) clusterResultLookup(ctx context.Context, key string) ([]byte, string, bool) {
	for _, p := range s.mesh.AlivePeers() {
		status, hdr, body, err := s.mesh.DoH(ctx, p.ID, http.MethodGet, "/v1/results/"+url.PathEscape(key), nil)
		if err != nil {
			if ctx.Err() == nil {
				s.mesh.ReportFailure(p.ID)
			}
			continue
		}
		s.mesh.ReportSuccess(p.ID)
		if status == http.StatusOK {
			s.mm.remoteHits.Inc()
			full := hdr.Get("X-Store-Key")
			if full == "" {
				full = key
			}
			return body, full, true
		}
	}
	return nil, "", false
}

// ---- replication ----

// replicate pushes a freshly persisted result to the other members of
// its replica set. A failed push journals a hand-off debt so the record
// reaches the replica on a later Rebalance even across a crash. Called
// without the server mutex, after persist succeeded.
func (s *Server) replicate(spec *jobSpec, payload []byte) {
	if s.mesh == nil {
		return
	}
	rec := store.Record{Key: spec.key, Series: spec.series, Label: spec.runLabel, Payload: payload}
	var seq uint64
	if m, ok := s.store.GetMeta(spec.key); ok {
		rec.Series, rec.Label, rec.UnixNano, seq = m.Series, m.Label, m.UnixNano, m.Seq
	}
	frame := store.EncodeFrame(nil, rec, seq)
	ctx, cancel := context.WithTimeout(s.rootCtx, s.cfg.JobTimeout)
	defer cancel()
	for _, target := range s.mesh.ReplicaSet(spec.key) {
		if target == s.mesh.Self() {
			continue
		}
		err := s.pushFrame(ctx, target, frame)
		if s.testReplicateHook != nil {
			s.testReplicateHook(spec.key, target, err)
		}
		if err != nil {
			s.mm.replicationFailures.Inc()
			s.journalHandoff(spec.key, target)
		} else {
			s.mm.replicationPushes.Inc()
		}
	}
}

// pushFrame delivers one framed record to a peer's replicate endpoint.
func (s *Server) pushFrame(ctx context.Context, peer string, frame []byte) error {
	status, _, body, err := s.mesh.DoH(ctx, peer, http.MethodPost, "/v1/mesh/replicate", frame)
	if err != nil {
		if ctx.Err() == nil {
			s.mesh.ReportFailure(peer)
		}
		return err
	}
	s.mesh.ReportSuccess(peer)
	if status != http.StatusOK {
		return fmt.Errorf("replicate to %s: %s", peer, apiError(status, body))
	}
	return nil
}

// Hand-off debts are journaled under "rep|<key>|<peer>"; the rebalance
// scope marker under rebalanceIntentKey. Both live in the mesh journal,
// so Pending() is exactly the replication lag.
const rebalanceIntentKey = "rebalance"

func handoffKey(key, peer string) string { return "rep|" + key + "|" + peer }

func parseHandoffKey(k string) (key, peer string, ok bool) {
	if len(k) < 5 || k[:4] != "rep|" {
		return "", "", false
	}
	rest := k[4:]
	for i := len(rest) - 1; i >= 0; i-- {
		if rest[i] == '|' {
			return rest[:i], rest[i+1:], rest[:i] != "" && rest[i+1:] != ""
		}
	}
	return "", "", false
}

func (s *Server) journalHandoff(key, peer string) {
	if s.meshJournal == nil {
		return
	}
	s.meshJournal.Intent(handoffKey(key, peer), []byte(key))
}

// Rebalance pushes every held record to its current replica set and
// settles journaled hand-off debts. It is idempotent (receivers skip
// records they already hold at the same or newer time) and journal-
// scoped: a pending rebalance marker survives a crash, and trackd runs
// Rebalance at startup and on every membership change, so an
// interrupted round resumes. Returns the number of records delivered.
func (s *Server) Rebalance(ctx context.Context) (int, error) {
	if s.mesh == nil || s.store == nil {
		return 0, nil
	}
	s.rebalanceMu.Lock()
	defer s.rebalanceMu.Unlock()
	s.mm.rebalances.Inc()
	if s.meshJournal != nil {
		s.meshJournal.Intent(rebalanceIntentKey, nil)
	}

	pushed := 0
	failed := map[string]bool{} // handoffKey → push failed this round
	var firstErr error
	var frame []byte
	for _, m := range s.store.List() {
		if err := ctx.Err(); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			break
		}
		payload, ok, err := s.store.Get(m.Key)
		if err != nil || !ok {
			continue // compacted away mid-scan
		}
		frame = store.EncodeFrame(frame[:0], store.Record{
			Key: m.Key, Series: m.Series, Label: m.Label, UnixNano: m.UnixNano, Payload: payload,
		}, m.Seq)
		for _, target := range s.mesh.ReplicaSet(m.Key) {
			if target == s.mesh.Self() {
				continue
			}
			if err := s.pushFrame(ctx, target, frame); err != nil {
				failed[handoffKey(m.Key, target)] = true
				s.journalHandoff(m.Key, target)
				if firstErr == nil {
					firstErr = err
				}
			} else {
				pushed++
				s.mm.handoffs.Inc()
			}
		}
	}

	// Settle debts only after a complete scan: every key we hold was
	// pushed to its full current replica set above, so a debt is cleared
	// unless its push failed again this round, its target left the
	// replica set (obsolete), or we no longer hold the record.
	if s.meshJournal != nil && firstErr == nil {
		for _, p := range s.meshJournal.Pending() {
			if p.Key == rebalanceIntentKey {
				continue
			}
			key, peer, ok := parseHandoffKey(p.Key)
			if !ok {
				s.meshJournal.Resolve(p.Key, "undecodable hand-off entry", false)
				continue
			}
			if failed[p.Key] {
				continue // still owed
			}
			if _, held := s.store.GetMeta(key); !held {
				s.meshJournal.Resolve(p.Key, "record no longer held", false)
				continue
			}
			_ = peer // covered by the scan (or obsolete): either way settled
			s.meshJournal.Resolve(p.Key, "", true)
		}
		s.meshJournal.Resolve(rebalanceIntentKey, "", true)
	}
	return pushed, firstErr
}

// ---- scatter-gather reads ----

// scatterMetas gathers /v1/results listings from every alive peer.
func (s *Server) scatterMetas(ctx context.Context, series string) []store.Meta {
	var out []store.Meta
	for _, p := range s.mesh.AlivePeers() {
		path := "/v1/results"
		if series != "" {
			path += "?series=" + url.QueryEscape(series)
		}
		status, _, body, err := s.mesh.DoH(ctx, p.ID, http.MethodGet, path, nil)
		if err != nil || status != http.StatusOK {
			continue
		}
		var resp struct {
			Results []store.Meta `json:"results"`
		}
		if json.Unmarshal(body, &resp) == nil {
			out = append(out, resp.Results...)
		}
	}
	return out
}

// mergeMetas deduplicates by key (newest submission time wins) and
// orders by submission time — the only ordering that is meaningful
// across nodes, since sequence numbers are node-local.
func mergeMetas(groups ...[]store.Meta) []store.Meta {
	byKey := map[string]store.Meta{}
	for _, g := range groups {
		for _, m := range g {
			if old, ok := byKey[m.Key]; !ok || m.UnixNano > old.UnixNano {
				byKey[m.Key] = m
			}
		}
	}
	out := make([]store.Meta, 0, len(byKey))
	for _, m := range byKey {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].UnixNano != out[j].UnixNano {
			return out[i].UnixNano < out[j].UnixNano
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// scatterSeriesNames unions the series names present anywhere.
func (s *Server) scatterSeriesNames(ctx context.Context, local []string) []string {
	seen := map[string]bool{}
	for _, n := range local {
		seen[n] = true
	}
	for _, p := range s.mesh.AlivePeers() {
		status, _, body, err := s.mesh.DoH(ctx, p.ID, http.MethodGet, "/v1/series", nil)
		if err != nil || status != http.StatusOK {
			continue
		}
		var resp struct {
			Series []string `json:"series"`
		}
		if json.Unmarshal(body, &resp) == nil {
			for _, n := range resp.Series {
				seen[n] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// loadSeriesRunsCluster extends loadSeriesRuns across the cluster:
// gather each alive peer's metas for the series, fetch the payloads we
// do not hold locally, and re-order the union by submission time.
func (s *Server) loadSeriesRunsCluster(ctx context.Context, name string) ([]trajectory.Run, error) {
	runs, err := s.loadSeriesRuns(name)
	if err != nil {
		return nil, err
	}
	have := map[string]bool{}
	for _, r := range runs {
		have[r.Key] = true
	}
	for _, p := range s.mesh.AlivePeers() {
		path := "/v1/results?series=" + url.QueryEscape(name)
		status, _, body, err := s.mesh.DoH(ctx, p.ID, http.MethodGet, path, nil)
		if err != nil || status != http.StatusOK {
			continue
		}
		var resp struct {
			Results []store.Meta `json:"results"`
		}
		if json.Unmarshal(body, &resp) != nil {
			continue
		}
		for _, m := range resp.Results {
			if have[m.Key] {
				continue
			}
			status, _, payload, err := s.mesh.DoH(ctx, p.ID, http.MethodGet, "/v1/results/"+url.PathEscape(m.Key), nil)
			if err != nil || status != http.StatusOK {
				continue
			}
			run, err := trajectory.ParseRun(payload, m.Key, m.Label, m.UnixNano)
			if err != nil {
				continue
			}
			have[m.Key] = true
			runs = append(runs, run)
		}
	}
	sort.Slice(runs, func(i, j int) bool {
		if runs[i].UnixNano != runs[j].UnixNano {
			return runs[i].UnixNano < runs[j].UnixNano
		}
		return runs[i].Key < runs[j].Key
	})
	return runs, nil
}

// seriesRuns picks cluster-wide or local series loading per request.
func (s *Server) seriesRuns(r *http.Request, name string) ([]trajectory.Run, error) {
	if s.mesh != nil && !viaMesh(r) {
		s.mm.scatters.Inc()
		return s.loadSeriesRunsCluster(r.Context(), name)
	}
	return s.loadSeriesRuns(name)
}

// ---- mesh HTTP endpoints ----

func (s *Server) handleMeshPing(w http.ResponseWriter, r *http.Request) {
	if s.mesh == nil {
		writeError(w, http.StatusNotFound, "clustering not enabled")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"node": s.mesh.Self(), "epoch": s.mesh.Epoch()})
}

func (s *Server) handleMeshReplicate(w http.ResponseWriter, r *http.Request) {
	if s.mesh == nil || s.store == nil {
		writeError(w, http.StatusNotFound, "clustering not enabled")
		return
	}
	applied, skipped, err := s.store.ImportFrames(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.mm.replicationReceived.Add(uint64(applied))
	writeJSON(w, http.StatusOK, map[string]int{"applied": applied, "skipped": skipped})
}
