package service

// Streams wiring: the live-ingestion surface over internal/stream. A
// stream is a resident stream.Session owned by the daemon: clients
// create it once, append burst chunks as the run executes, and follow
// the rolling per-window deltas over SSE or long-polling. Every sealed
// window is persisted to perfdb before the append that sealed it is
// acknowledged — a "raw" record carrying the durable SealedWindow (the
// crash-resume input) and, when the stream is filed under a series, an
// export record carrying the cumulative result so the trajectory and
// regression endpoints see live data. The streams journal (its own
// journal under <store>/streams) records which streams are live; a
// restart replays it, rebuilding each session from its raw records via
// stream.Restore — no re-clustering — and loses at most the open
// window, by contract.
//
// Streams are node-local even in cluster mode: a session is resident
// state, so clients pin a stream to the node that created it (the
// sealed exports still replicate nothing here — they are served by this
// node's perfdb like any local result).

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"perftrack/internal/cluster"
	"perftrack/internal/core"
	"perftrack/internal/metrics"
	"perftrack/internal/store"
	"perftrack/internal/stream"
	"perftrack/internal/trace"
)

// streamShadowPrefix names the per-stream perfdb series holding the raw
// SealedWindow records. The prefix keeps them out of the public series
// listing (they are an implementation detail of crash-resume, not runs
// to chain trajectories over).
const streamShadowPrefix = "stream-raw."

func shadowSeries(id string) string { return streamShadowPrefix + id }

// streamWindowKey addresses one sealed window's raw record.
func streamWindowKey(id string, index int) string {
	return fmt.Sprintf("stream.%s.raw.w%06d", id, index)
}

// streamExportKey addresses the cumulative export appended to the
// stream's public series when window `index` sealed.
func streamExportKey(id string, index int) string {
	return fmt.Sprintf("stream.%s.w%06d", id, index)
}

// StreamRequest is the POST /v1/streams body.
type StreamRequest struct {
	// ID optionally names the stream ([A-Za-z0-9._-], unique on this
	// node); empty lets the daemon assign one.
	ID string `json:"id,omitempty"`
	// Label is the experiment label; window frames are labelled
	// "<label>/w<k>" exactly like a batch split.
	Label string `json:"label,omitempty"`
	// Ranks is the MPI process count of the instrumented run (used for
	// quarantine checks and scale normalisation, like a trace header).
	Ranks int `json:"ranks,omitempty"`
	// Window cuts the stream into fixed-duration or count windows.
	Window stream.WindowSpec `json:"window"`
	// Metrics names the performance-space axes (default IPC × Instructions).
	Metrics []string `json:"metrics,omitempty"`
	// Config overrides individual pipeline knobs.
	Config *ConfigSpec `json:"config,omitempty"`
	// Series, when set, files each sealed window's cumulative result
	// under this perfdb series, so /v1/series/{name}/trajectories and
	// /regressions run over the live stream.
	Series string `json:"series,omitempty"`
}

// resolveStream validates the request into a session configuration.
func resolveStream(req StreamRequest) (stream.Config, error) {
	var sc stream.Config
	if err := req.Window.Validate(); err != nil {
		return sc, err
	}
	if err := validSeries(req.Series); err != nil {
		return sc, err
	}
	if req.ID != "" {
		if err := validSeries(req.ID); err != nil {
			return sc, fmt.Errorf("stream id %v", err)
		}
	}
	cfg := core.Config{
		Cluster: cluster.Config{Eps: 0.07, MinPts: 5, MinClusterWeight: 0.002},
	}
	cfg = req.Config.overlay(cfg)
	if len(req.Metrics) > 0 {
		ms := make([]metrics.Metric, 0, len(req.Metrics))
		for _, name := range req.Metrics {
			m, ok := metrics.ByName(name)
			if !ok {
				return sc, fmt.Errorf("unknown metric %q", name)
			}
			ms = append(ms, m)
		}
		cfg.Metrics = ms
	}
	if err := cfg.Validate(); err != nil {
		return sc, err
	}
	sc = stream.Config{
		Meta:     trace.Metadata{Label: req.Label, Ranks: req.Ranks},
		Window:   req.Window,
		Pipeline: cfg,
	}
	return sc, nil
}

// streamEvent is one rolling delta as delivered to subscribers. Seq is
// a per-process sequence number (it restarts after a daemon restart;
// Delta.Window is the stable cross-restart identity of a window).
type streamEvent struct {
	Seq    int64         `json:"seq"`
	Stream string        `json:"stream"`
	Delta  *stream.Delta `json:"delta"`
}

// streamEntry is one resident stream: the session plus its event ring
// and subscriber bookkeeping. The session mutex serialises all session
// access (stream.Session is not concurrency-safe); the event mutex is
// independent so subscribers never wait behind an evaluation.
type streamEntry struct {
	id      string
	series  string
	label   string
	window  stream.WindowSpec
	req     []byte // journaled creation payload
	created time.Time
	resumed bool

	// pending counts in-flight burst-chunk requests; beyond the
	// configured bound new chunks bounce with 429 (backpressure).
	pending atomic.Int64

	mu        sync.Mutex // guards sess, closed, lastError
	sess      *stream.Session
	closed    bool
	lastError string

	evMu    sync.Mutex
	events  []streamEvent
	head    int64
	notify  chan struct{}
	cursors map[int64]int64 // subscriber -> last delivered seq
	nextSub int64
	done    chan struct{} // closed when the stream finishes
}

// publish appends one event to the ring and wakes subscribers.
func (e *streamEntry) publish(ev streamEvent, ringCap int) {
	e.evMu.Lock()
	e.head++
	ev.Seq = e.head
	e.events = append(e.events, ev)
	if len(e.events) > ringCap {
		e.events = e.events[len(e.events)-ringCap:]
	}
	close(e.notify)
	e.notify = make(chan struct{})
	e.evMu.Unlock()
}

// eventsAfter snapshots the ring past `after`, plus the channel that
// will signal the next publish.
func (e *streamEntry) eventsAfter(after int64) ([]streamEvent, int64, <-chan struct{}) {
	e.evMu.Lock()
	defer e.evMu.Unlock()
	var out []streamEvent
	for _, ev := range e.events {
		if ev.Seq > after {
			out = append(out, ev)
		}
	}
	return out, e.head, e.notify
}

// subscribe registers a delta subscriber cursor (for the lag gauge).
func (e *streamEntry) subscribe(after int64) int64 {
	e.evMu.Lock()
	defer e.evMu.Unlock()
	e.nextSub++
	id := e.nextSub
	e.cursors[id] = after
	return id
}

func (e *streamEntry) setCursor(id, seq int64) {
	e.evMu.Lock()
	e.cursors[id] = seq
	e.evMu.Unlock()
}

func (e *streamEntry) unsubscribe(id int64) {
	e.evMu.Lock()
	delete(e.cursors, id)
	e.evMu.Unlock()
}

// lag returns the worst subscriber lag (head minus cursor) and the
// subscriber count.
func (e *streamEntry) lag() (int64, int) {
	e.evMu.Lock()
	defer e.evMu.Unlock()
	var worst int64
	for _, c := range e.cursors {
		if l := e.head - c; l > worst {
			worst = l
		}
	}
	return worst, len(e.cursors)
}

// markDone closes the done channel once.
func (e *streamEntry) markDone() {
	e.evMu.Lock()
	select {
	case <-e.done:
	default:
		close(e.done)
	}
	e.evMu.Unlock()
}

// streamRegistry holds the node's resident streams.
type streamRegistry struct {
	mu      sync.Mutex
	entries map[string]*streamEntry
	order   []string
	seq     int
}

func newStreamRegistry() *streamRegistry {
	return &streamRegistry{entries: map[string]*streamEntry{}}
}

func (r *streamRegistry) get(id string) (*streamEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	return e, ok
}

func (r *streamRegistry) list() []*streamEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*streamEntry, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.entries[id])
	}
	return out
}

func (r *streamRegistry) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// register files the entry, assigning an id when the request left it to
// the daemon. A duplicate explicit id is an error.
func (r *streamRegistry) register(e *streamEntry) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.id == "" {
		for {
			r.seq++
			id := fmt.Sprintf("s%06d", r.seq)
			if _, dup := r.entries[id]; !dup {
				e.id = id
				break
			}
		}
	} else if _, dup := r.entries[e.id]; dup {
		return fmt.Errorf("stream %q already exists", e.id)
	}
	r.entries[e.id] = e
	r.order = append(r.order, e.id)
	return nil
}

type streamMetrics struct {
	created       *Counter
	resumed       *Counter
	bursts        *Counter
	windowCloses  *Counter
	backpressure  *Counter
	persistErrors *Counter
	eventsOut     *Counter
	appendLatency *Histogram
	closeLatency  *Histogram
}

// openStreams wires the stream registry, metrics, and (when the store
// is enabled) the streams journal plus crash-resume. Called from New.
func (s *Server) openStreams() error {
	s.streams = newStreamRegistry()
	r := s.reg
	s.stm = streamMetrics{
		created:       r.NewCounter("trackd_stream_created_total", "Streaming sessions created."),
		resumed:       r.NewCounter("trackd_stream_resumed_total", "Streaming sessions rebuilt from the journal at startup."),
		bursts:        r.NewCounter("trackd_stream_bursts_total", "Bursts appended across all streams (every status)."),
		windowCloses:  r.NewCounter("trackd_stream_window_closes_total", "Windows sealed and evaluated across all streams."),
		backpressure:  r.NewCounter("trackd_stream_backpressure_total", "Burst chunks rejected with 429 because a stream had too many in-flight chunks."),
		persistErrors: r.NewCounter("trackd_stream_persist_errors_total", "Failed perfdb appends of sealed windows (the live session keeps serving)."),
		eventsOut:     r.NewCounter("trackd_stream_events_total", "Delta events delivered to subscribers."),
		appendLatency: r.NewHistogram("trackd_stream_append_seconds", "Latency of one burst append (no window close).", nil),
		closeLatency:  r.NewHistogram("trackd_stream_window_close_seconds", "Latency of an append that sealed (and evaluated) at least one window, persistence included.", nil),
	}
	r.NewGaugeFunc("trackd_stream_sessions", "Resident streaming sessions.", func() int64 {
		return int64(s.streams.count())
	})
	r.NewGaugeFunc("trackd_stream_subscribers", "Active delta subscribers across all streams.", func() int64 {
		var n int
		for _, e := range s.streams.list() {
			_, c := e.lag()
			n += c
		}
		return int64(n)
	})
	r.NewGaugeFunc("trackd_stream_subscriber_lag", "Worst delta-subscriber lag (events behind the head) across all streams.", func() int64 {
		var worst int64
		for _, e := range s.streams.list() {
			if l, _ := e.lag(); l > worst {
				worst = l
			}
		}
		return worst
	})

	if s.cfg.StoreDir == "" {
		return nil
	}
	j, err := store.OpenJournal(filepath.Join(s.cfg.StoreDir, "streams"), store.JournalOptions{
		SyncEvery:    s.cfg.JournalSyncEvery,
		CompactEvery: s.cfg.JournalCompactEvery,
		FS:           s.cfg.StoreFS,
	})
	if err != nil {
		return err
	}
	s.streamJournal = j
	for _, p := range j.Pending() {
		s.resumeStream(p)
	}
	return nil
}

// StreamJournal exposes the streams journal (nil without a store).
func (s *Server) StreamJournal() *store.Journal { return s.streamJournal }

// resumeStream rebuilds one journaled stream: the session is recreated
// from the creation request and every sealed window is restored from
// its raw perfdb record, oldest first. The open window at crash time is
// lost by contract. An undecodable or unrestorable stream resolves the
// intent as failed rather than wedging startup.
func (s *Server) resumeStream(p store.PendingIntent) {
	var req StreamRequest
	if err := json.Unmarshal(p.Payload, &req); err != nil {
		s.streamJournal.Resolve(p.Key, "resume: undecodable intent: "+err.Error(), false)
		return
	}
	req.ID = p.Key
	cfg, err := resolveStream(req)
	if err != nil {
		s.streamJournal.Resolve(p.Key, "resume: "+err.Error(), false)
		return
	}
	sess, err := stream.New(cfg)
	if err != nil {
		s.streamJournal.Resolve(p.Key, "resume: "+err.Error(), false)
		return
	}
	// Collect the stream's sealed windows and restore them in order.
	var sealed []stream.SealedWindow
	for _, m := range s.store.Series(shadowSeries(p.Key)) {
		payload, ok, gerr := s.store.Get(m.Key)
		if gerr != nil || !ok {
			continue
		}
		var w stream.SealedWindow
		if uerr := json.Unmarshal(payload, &w); uerr != nil {
			continue
		}
		sealed = append(sealed, w)
	}
	sort.Slice(sealed, func(i, j int) bool { return sealed[i].Index < sealed[j].Index })
	for _, w := range sealed {
		if rerr := sess.Restore(w); rerr != nil {
			s.streamJournal.Resolve(p.Key, "resume: window "+strconv.Itoa(w.Index)+": "+rerr.Error(), false)
			return
		}
	}
	e := s.newStreamEntry(req, sess, p.Payload)
	e.resumed = true
	if rerr := s.streams.register(e); rerr != nil {
		s.streamJournal.Resolve(p.Key, "resume: "+rerr.Error(), false)
		return
	}
	s.stm.resumed.Inc()
}

func (s *Server) newStreamEntry(req StreamRequest, sess *stream.Session, payload []byte) *streamEntry {
	return &streamEntry{
		id:      req.ID,
		series:  req.Series,
		label:   req.Label,
		window:  req.Window,
		req:     payload,
		created: time.Now(),
		sess:    sess,
		notify:  make(chan struct{}),
		cursors: map[int64]int64{},
		done:    make(chan struct{}),
	}
}

// closeStreams shuts the streams journal and wakes every subscriber.
// Called from Shutdown.
func (s *Server) closeStreams() error {
	if s.streams != nil {
		for _, e := range s.streams.list() {
			e.markDone()
		}
	}
	if s.streamJournal == nil {
		return nil
	}
	return s.streamJournal.Close()
}

// persistSealedLocked files one sealed window in perfdb and fsyncs: the
// raw record that crash-resume replays, plus (for filed streams with a
// successful evaluation) the cumulative export under the public series.
// Callers hold e.mu, so records land in seal order. Failures are
// counted, not fatal — the live session keeps serving from memory.
func (s *Server) persistSealedLocked(e *streamEntry, d *stream.Delta) {
	if s.store == nil || d.Sealed == nil {
		return
	}
	now := time.Now().UnixNano()
	raw, err := json.Marshal(d.Sealed)
	if err == nil {
		err = s.store.Append(store.Record{
			Key:      streamWindowKey(e.id, d.Sealed.Index),
			Series:   shadowSeries(e.id),
			Label:    d.Label,
			UnixNano: now,
			Payload:  raw,
		})
	}
	if err != nil {
		s.stm.persistErrors.Inc()
		return
	}
	if e.series != "" && d.EvalError == "" && d.Result != nil {
		var buf strings.Builder
		if werr := d.Result.WriteJSON(&buf, e.sess.Metrics()); werr == nil {
			if aerr := s.store.Append(store.Record{
				Key:      streamExportKey(e.id, d.Sealed.Index),
				Series:   e.series,
				Label:    d.Label,
				UnixNano: now,
				Payload:  []byte(buf.String()),
			}); aerr != nil {
				s.stm.persistErrors.Inc()
			}
		} else {
			s.stm.persistErrors.Inc()
		}
	}
	// Sealed means durable: the fsync happens before the append that
	// sealed this window is acknowledged (and before its delta event).
	if err := s.store.Sync(); err != nil {
		s.stm.persistErrors.Inc()
	}
}

// sealedLocked runs the post-seal bookkeeping for one delta: persist,
// publish, count. Callers hold e.mu.
func (s *Server) sealedLocked(e *streamEntry, d *stream.Delta) {
	s.persistSealedLocked(e, d)
	e.lastError = d.EvalError
	s.stm.windowCloses.Inc()
	e.publish(streamEvent{Stream: e.id, Delta: d}, s.cfg.StreamEventBuffer)
}

// StreamView is the JSON representation of a stream's state.
type StreamView struct {
	ID        string            `json:"id"`
	Series    string            `json:"series,omitempty"`
	Label     string            `json:"label,omitempty"`
	Window    stream.WindowSpec `json:"window"`
	Closed    bool              `json:"closed,omitempty"`
	Resumed   bool              `json:"resumed,omitempty"`
	CreatedAt string            `json:"createdAt"`
	Stats     stream.Stats      `json:"stats"`
	Head      int64             `json:"head"`
	LastError string            `json:"lastError,omitempty"`
	EventsURL string            `json:"eventsUrl"`
	BurstsURL string            `json:"burstsUrl"`
}

func (s *Server) streamView(e *streamEntry) StreamView {
	e.mu.Lock()
	st := e.sess.Stats()
	closed := e.closed
	lastErr := e.lastError
	e.mu.Unlock()
	e.evMu.Lock()
	head := e.head
	e.evMu.Unlock()
	return StreamView{
		ID:        e.id,
		Series:    e.series,
		Label:     e.label,
		Window:    e.window,
		Closed:    closed,
		Resumed:   e.resumed,
		CreatedAt: e.created.UTC().Format(time.RFC3339Nano),
		Stats:     st,
		Head:      head,
		LastError: lastErr,
		EventsURL: "/v1/streams/" + e.id + "/events",
		BurstsURL: "/v1/streams/" + e.id + "/bursts",
	}
}

// ---- HTTP layer ----

func (s *Server) handleStreamCreate(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req StreamRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}
	cfg, err := resolveStream(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if s.streams.count() >= s.cfg.StreamMaxSessions {
		s.stm.backpressure.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds()+0.5)))
		writeError(w, http.StatusTooManyRequests, "too many resident streams")
		return
	}
	sess, err := stream.New(cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	e := s.newStreamEntry(req, sess, nil)
	if err := s.streams.register(e); err != nil {
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	if s.streamJournal != nil {
		// Journal under the ASSIGNED id so resume can rebuild the entry;
		// the fsync inside Intent is what makes the 201 a promise that
		// the stream (its sealed windows, not its open one) survives a
		// crash.
		req.ID = e.id
		payload, _ := json.Marshal(req)
		e.req = payload
		if jerr := s.streamJournal.Intent(e.id, payload); jerr != nil {
			writeError(w, http.StatusServiceUnavailable, "journaling stream: "+jerr.Error())
			return
		}
	}
	s.stm.created.Inc()
	w.Header().Set("Location", "/v1/streams/"+e.id)
	writeJSON(w, http.StatusCreated, s.streamView(e))
}

func (s *Server) handleStreams(w http.ResponseWriter, r *http.Request) {
	entries := s.streams.list()
	views := make([]StreamView, 0, len(entries))
	for _, e := range entries {
		views = append(views, s.streamView(e))
	}
	writeJSON(w, http.StatusOK, map[string]any{"streams": views})
}

func (s *Server) streamEntryFor(w http.ResponseWriter, r *http.Request) *streamEntry {
	e, ok := s.streams.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such stream")
		return nil
	}
	return e
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if e := s.streamEntryFor(w, r); e != nil {
		writeJSON(w, http.StatusOK, s.streamView(e))
	}
}

// StreamAppendResponse acknowledges one burst chunk.
type StreamAppendResponse struct {
	Appended        int             `json:"appended"`
	Accepted        int             `json:"accepted"`
	Quarantined     int             `json:"quarantined"`
	Filtered        int             `json:"filtered"`
	DroppedEarly    int             `json:"droppedEarly"`
	DroppedLate     int             `json:"droppedLate"`
	RejectedHorizon int             `json:"rejectedHorizon"`
	LinesSkipped    int             `json:"linesSkipped,omitempty"`
	Sealed          []*stream.Delta `json:"sealed,omitempty"`
	Stats           stream.Stats    `json:"stats"`
}

func (s *Server) handleStreamAppend(w http.ResponseWriter, r *http.Request) {
	e := s.streamEntryFor(w, r)
	if e == nil {
		return
	}
	// Backpressure: bound the chunks racing for this session's mutex.
	// Beyond the bound the client gets an explicit 429 + Retry-After
	// instead of an unbounded convoy.
	if e.pending.Add(1) > int64(s.cfg.StreamMaxPending) {
		e.pending.Add(-1)
		s.stm.backpressure.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds()+0.5)))
		writeError(w, http.StatusTooManyRequests, "stream has too many in-flight chunks, retry later")
		return
	}
	defer e.pending.Add(-1)

	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	strict := r.URL.Query().Get("strict") == "true" || r.URL.Query().Get("strict") == "1"
	data, err := io.ReadAll(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading chunk: "+err.Error())
		return
	}
	// DecodeAny sniffs the colbin magic, so burst chunks may arrive in
	// either the text or the binary columnar format.
	tr, diag, err := trace.DecodeAny(data, trace.DecodeOptions{Strict: strict})
	if err != nil {
		writeError(w, http.StatusBadRequest, "decoding chunk: "+err.Error())
		return
	}

	var resp StreamAppendResponse
	resp.LinesSkipped = diag.Skipped()
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		writeError(w, http.StatusConflict, "stream is finished")
		return
	}
	for _, b := range tr.Bursts {
		t0 := time.Now()
		res, aerr := e.sess.Append(r.Context(), b)
		if aerr != nil {
			e.mu.Unlock()
			writeError(w, http.StatusInternalServerError, aerr.Error())
			return
		}
		s.stm.bursts.Inc()
		resp.Appended++
		switch res.Status {
		case stream.Accepted:
			resp.Accepted++
		case stream.Quarantined:
			resp.Quarantined++
		case stream.Filtered:
			resp.Filtered++
		case stream.DroppedEarly:
			resp.DroppedEarly++
		case stream.DroppedLate:
			resp.DroppedLate++
		case stream.RejectedHorizon:
			resp.RejectedHorizon++
		}
		for _, d := range res.Sealed {
			s.sealedLocked(e, d)
			resp.Sealed = append(resp.Sealed, d)
		}
		if len(res.Sealed) > 0 {
			s.stm.closeLatency.Observe(time.Since(t0).Seconds())
		} else {
			s.stm.appendLatency.Observe(time.Since(t0).Seconds())
		}
	}
	resp.Stats = e.sess.Stats()
	e.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// handleStreamFinish seals the open window (?total=N pads with empty
// windows up to N, matching a batch split into exactly N), resolves the
// stream's journal intent, and retires the session. The response
// carries the final deltas and view.
func (s *Server) handleStreamFinish(w http.ResponseWriter, r *http.Request) {
	e := s.streamEntryFor(w, r)
	if e == nil {
		return
	}
	total := 0
	if ts := r.URL.Query().Get("total"); ts != "" {
		v, err := strconv.Atoi(ts)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "total must be a non-negative integer")
			return
		}
		total = v
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		writeError(w, http.StatusConflict, "stream is already finished")
		return
	}
	deltas, err := e.sess.Finish(r.Context(), total)
	for _, d := range deltas {
		s.sealedLocked(e, d)
	}
	if err != nil {
		e.mu.Unlock()
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	e.closed = true
	e.mu.Unlock()
	e.markDone()
	if s.streamJournal != nil {
		s.streamJournal.Resolve(e.id, "", true)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"sealed": deltas,
		"stream": s.streamView(e),
	})
}

// handleStreamEvents follows a stream's rolling deltas. Two modes:
//
//   - Server-sent events (Accept: text/event-stream or ?sse=1): every
//     delta is pushed as an SSE "window" event as it seals, a final
//     "finish" event marks the stream's end.
//   - Long-poll JSON (default): ?after=SEQ&wait=DURATION blocks until an
//     event past SEQ exists (or the wait elapses) and returns the batch.
//
// Events carry per-process sequence numbers; Delta.Window is the stable
// identity across daemon restarts.
func (s *Server) handleStreamEvents(w http.ResponseWriter, r *http.Request) {
	e := s.streamEntryFor(w, r)
	if e == nil {
		return
	}
	after := int64(0)
	if as := r.URL.Query().Get("after"); as != "" {
		v, err := strconv.ParseInt(as, 10, 64)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "after must be a non-negative integer")
			return
		}
		after = v
	}
	sse := r.URL.Query().Get("sse") == "1" ||
		strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		s.streamSSE(w, r, e, after)
		return
	}

	wait := time.Duration(0)
	if ws := r.URL.Query().Get("wait"); ws != "" {
		if d, err := time.ParseDuration(ws); err == nil && d > 0 {
			wait = min(d, time.Minute)
		}
	}
	sub := e.subscribe(after)
	defer e.unsubscribe(sub)
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	for {
		evs, head, notify := e.eventsAfter(after)
		e.mu.Lock()
		closed := e.closed
		e.mu.Unlock()
		if len(evs) > 0 || wait == 0 || closed {
			if len(evs) > 0 {
				after = evs[len(evs)-1].Seq
			}
			e.setCursor(sub, max(after, head))
			s.stm.eventsOut.Add(uint64(len(evs)))
			writeJSON(w, http.StatusOK, map[string]any{
				"events": evs,
				"next":   max(after, head),
				"closed": closed,
			})
			return
		}
		select {
		case <-notify:
		case <-deadline.C:
			wait = 0 // answer empty on the next loop
		case <-r.Context().Done():
			return
		case <-e.done:
		case <-s.rootCtx.Done():
			wait = 0
		}
	}
}

func (s *Server) streamSSE(w http.ResponseWriter, r *http.Request, e *streamEntry, after int64) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	sub := e.subscribe(after)
	defer e.unsubscribe(sub)
	for {
		evs, _, notify := e.eventsAfter(after)
		for _, ev := range evs {
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			if _, err := fmt.Fprintf(w, "event: window\ndata: %s\n\n", data); err != nil {
				return
			}
			after = ev.Seq
			s.stm.eventsOut.Inc()
		}
		e.setCursor(sub, after)
		fl.Flush()
		e.mu.Lock()
		closed := e.closed
		e.mu.Unlock()
		if closed {
			// Drain fully before finishing: events published between the
			// snapshot above and the closed check are caught next loop.
			if evs, _, _ := e.eventsAfter(after); len(evs) == 0 {
				fmt.Fprintf(w, "event: finish\ndata: {\"stream\":%q}\n\n", e.id)
				fl.Flush()
				return
			}
			continue
		}
		select {
		case <-notify:
		case <-e.done:
		case <-r.Context().Done():
			return
		case <-s.rootCtx.Done():
			return
		}
	}
}

// StreamHealth is the per-stream section of /healthz.
type StreamHealth struct {
	ID            string `json:"id"`
	Series        string `json:"series,omitempty"`
	Closed        bool   `json:"closed,omitempty"`
	Windows       int    `json:"windows"`
	OpenBursts    int    `json:"openBursts"`
	Appended      int64  `json:"appended"`
	Quarantined   int64  `json:"quarantined"`
	Incremental   bool   `json:"incremental"`
	Subscribers   int    `json:"subscribers"`
	SubscriberLag int64  `json:"subscriberLag"`
	LastError     string `json:"lastError,omitempty"`
}

// streamHealth snapshots every resident stream for /healthz.
func (s *Server) streamHealth() []StreamHealth {
	entries := s.streams.list()
	out := make([]StreamHealth, 0, len(entries))
	for _, e := range entries {
		e.mu.Lock()
		st := e.sess.Stats()
		closed := e.closed
		lastErr := e.lastError
		e.mu.Unlock()
		lag, subs := e.lag()
		out = append(out, StreamHealth{
			ID:            e.id,
			Series:        e.series,
			Closed:        closed,
			Windows:       st.WindowsSealed,
			OpenBursts:    st.OpenBursts,
			Appended:      st.Appended,
			Quarantined:   st.Quarantined,
			Incremental:   st.Incremental,
			Subscribers:   subs,
			SubscriberLag: lag,
			LastError:     lastErr,
		})
	}
	return out
}
