// Package service turns the perftrack library into a tracking-as-a-service
// daemon: a bounded job queue feeding a worker pool, a content-addressed
// result cache keyed by the canonical hash of each job's inputs, and
// built-in Prometheus-text metrics. The HTTP surface is:
//
//	POST /v1/jobs            submit a study name or uploaded traces + config
//	GET  /v1/jobs            list jobs
//	GET  /v1/jobs/{id}        job status
//	GET  /v1/jobs/{id}/result the result JSON (byte-deterministic export)
//	GET  /v1/studies          the catalog
//	GET  /v1/results          the persistent store's record listing
//	GET  /v1/results/{key}    a stored result by (abbreviable) key
//	GET  /v1/series           the named run series present in the store
//	GET  /v1/series/{name}/trajectories  cross-run trajectory chaining
//	GET  /v1/series/{name}/regressions   changepoint verdicts per trajectory
//	POST /v1/streams          open a live-ingestion stream (journaled, resumable)
//	GET  /v1/streams          list resident streams
//	GET  /v1/streams/{id}     stream status
//	POST /v1/streams/{id}/bursts  append a burst chunk (429 under backpressure)
//	POST /v1/streams/{id}/finish  seal the open window and retire the stream
//	GET  /v1/streams/{id}/events  rolling per-window deltas (SSE or long-poll)
//	GET  /metrics             Prometheus text exposition
//	GET  /healthz             liveness + degraded-mode diagnostics
//	GET  /readyz              readiness: 503 during journal replay or open breakers
//
// Backpressure is explicit: when the queue is full a submission is
// rejected with 429 and a Retry-After header rather than queued without
// bound. Identical submissions are collapsed: a cache hit returns the
// stored bytes instantly, and concurrent duplicates attach to the one
// in-flight job (singleflight) so the pipeline runs exactly once per
// distinct input.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"perftrack/internal/apps"
	"perftrack/internal/core"
	"perftrack/internal/faults"
	"perftrack/internal/mesh"
	"perftrack/internal/mpisim"
	"perftrack/internal/store"
	"perftrack/internal/trace"
)

// Config parametrises the daemon.
type Config struct {
	// Workers is the worker pool size (default 4).
	Workers int
	// QueueDepth bounds the number of jobs waiting for a worker
	// (default 64). A full queue rejects submissions with 429.
	QueueDepth int
	// JobTimeout bounds each job's pipeline execution (default 2m).
	JobTimeout time.Duration
	// CacheMaxEntries / CacheMaxBytes bound the result cache
	// (defaults 256 entries, 256 MiB).
	CacheMaxEntries int
	CacheMaxBytes   int64
	// RetryAfter is the backoff hint sent with 429 responses
	// (default 1s).
	RetryAfter time.Duration
	// MaxBodyBytes bounds the request body (default 64 MiB).
	MaxBodyBytes int64
	// StoreDir, when set, enables perfdb: every completed analysis is
	// appended to the persistent store there, cache misses read through
	// it, and the series/trajectory endpoints come alive. It also
	// enables the job journal (crash-durable submissions) unless
	// JournalDisabled is set.
	StoreDir string
	// StoreMaxSegmentBytes / StoreSyncEvery pass through to the store
	// (zero means the store's own defaults: 64 MiB segments, fsync
	// every 8 appends).
	StoreMaxSegmentBytes int64
	StoreSyncEvery       int
	// TraceCacheDir holds the convert-on-first-read trace cache: binary
	// columnar conversions of uploaded text traces, keyed by content
	// hash, so repeat submissions skip the text parse. Empty defaults to
	// <StoreDir>/tracecache when StoreDir is set (and disables the cache
	// otherwise); TraceCacheDisabled turns it off unconditionally.
	// TraceCacheMaxBytes bounds the resident conversions (default
	// 256 MiB; the cache is a pure accelerator, so eviction only costs a
	// re-parse).
	TraceCacheDir      string
	TraceCacheMaxBytes int64
	TraceCacheDisabled bool
	// JournalDisabled turns off the job journal even when StoreDir is
	// set: submissions are acknowledged from memory only, as before the
	// fault-tolerance layer.
	JournalDisabled bool
	// JournalSyncEvery / JournalCompactEvery pass through to the journal
	// (zero means its defaults: resolutions batch 8 per fsync, compact
	// every 512 resolutions). Intents always fsync before the ack.
	JournalSyncEvery    int
	JournalCompactEvery int
	// StageTimeout, when positive, bounds each pipeline stage (prepare /
	// cluster / track / export) individually, inside the overall
	// JobTimeout. Zero disables per-stage budgets.
	StageTimeout time.Duration
	// StoreRetries bounds the retry attempts when appending a completed
	// result to the store fails (default 3; the first try is not a
	// retry). Retries back off exponentially with jitter between
	// RetryBase (default 25ms) and RetryMax (default 1s).
	StoreRetries int
	RetryBase    time.Duration
	RetryMax     time.Duration
	// BreakerThreshold consecutive failures open a circuit breaker
	// (default 5); an open breaker admits a probe after BreakerCooldown
	// (default 5s). One breaker guards store writes, another pipeline
	// executions; either being open degrades trackd to read-only.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// StoreFS, when set, substitutes the filesystem under the store and
	// journal — the chaos tests plug in faults.FaultFS here.
	StoreFS faults.FS
	// StreamMaxSessions bounds the resident streaming sessions (default
	// 64); creations beyond it answer 429. StreamMaxPending bounds the
	// in-flight burst chunks per stream before backpressure kicks in
	// (default 4). StreamEventBuffer is the per-stream delta ring a slow
	// subscriber can lag behind before missing events (default 256).
	StreamMaxSessions int
	StreamMaxPending  int
	StreamEventBuffer int
	// Mesh enables cluster mode when Mesh.NodeID is set: jobs route to
	// ring owners, results replicate to Mesh.Replicas nodes, and read
	// endpoints scatter-gather the whole cluster. Requires StoreDir.
	Mesh mesh.Config

	// Test seams, settable only from inside the package. Unlike the
	// Server fields of the same names, these are installed before the
	// worker pool and the replay goroutine start, so hooks observe
	// startup replay without racing it.
	testExecHook      func(key string)
	testPersistHook   func(key string, err error)
	testReplicateHook func(key, peer string, err error)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 2 * time.Minute
	}
	if c.CacheMaxEntries <= 0 {
		c.CacheMaxEntries = 256
	}
	if c.CacheMaxBytes <= 0 {
		c.CacheMaxBytes = 256 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.TraceCacheDir == "" && c.StoreDir != "" {
		c.TraceCacheDir = filepath.Join(c.StoreDir, "tracecache")
	}
	if c.TraceCacheMaxBytes <= 0 {
		c.TraceCacheMaxBytes = 256 << 20
	}
	if c.StoreRetries <= 0 {
		c.StoreRetries = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 25 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.StreamMaxSessions <= 0 {
		c.StreamMaxSessions = 64
	}
	if c.StreamMaxPending <= 0 {
		c.StreamMaxPending = 4
	}
	if c.StreamEventBuffer <= 0 {
		c.StreamEventBuffer = 256
	}
	return c
}

// ErrQueueFull is returned when the bounded queue cannot accept a job.
var ErrQueueFull = errors.New("service: job queue is full")

// ErrShuttingDown is returned for submissions after Shutdown began.
var ErrShuttingDown = errors.New("service: shutting down")

// Server is the tracking service: call New, mount Handler, and Shutdown
// when done.
type Server struct {
	cfg     Config
	cache   *Cache
	store   *store.Store
	journal *store.Journal
	// tcache is the convert-on-first-read trace conversion cache (nil
	// when disabled); resolveThrough reads and fills it.
	tcache *store.TraceCache

	// mesh and meshJournal come alive in cluster mode: the ring +
	// membership node and the hand-off journal recording replication
	// debts and in-progress rebalances. rebalanceMu serialises Rebalance
	// rounds.
	mesh        *mesh.Node
	meshJournal *store.Journal
	rebalanceMu sync.Mutex

	// streams holds the resident live-ingestion sessions; streamJournal
	// (under <store>/streams) records which of them must survive a
	// restart.
	streams       *streamRegistry
	streamJournal *store.Journal
	stm           streamMetrics

	reg *Registry
	m   serverMetrics
	sm  storeMetrics
	jm  journalMetrics
	rm  resilienceMetrics
	mm  meshMetrics

	// storeBreaker trips on consecutive failed store appends,
	// execBreaker on consecutive failed pipeline executions. Either
	// being open refuses new write work (read paths keep serving).
	storeBreaker *Breaker
	execBreaker  *Breaker

	// replayDone closes once startup journal replay (if any) has driven
	// every recovered intent to a terminal state; /readyz gates on it.
	replayDone chan struct{}

	rootCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	queue   chan *Job

	mu       sync.Mutex
	closed   bool
	seq      int
	jobs     map[string]*Job
	order    []string        // job ids in submission order
	inflight map[string]*Job // cache key -> queued/running job (singleflight)

	// Cumulative degraded-mode accounting across all completed jobs,
	// surfaced by /healthz (the service-level continuation of the
	// library's Diagnostics).
	health healthAccum

	// testGate, when set before any submission, blocks each job at the
	// start of execution until the channel is closed. Tests use it to
	// hold workers busy deterministically (queue saturation,
	// singleflight, shutdown-cancellation scenarios).
	testGate chan struct{}
	// testExecHook / testPersistHook, when set before any submission,
	// observe each pipeline execution start and each persist outcome.
	// The chaos harness counts fingerprint executions and persist
	// failures through them. testAppendFault, when set, is consulted
	// before each store append attempt and its non-nil error replaces
	// the append — deterministic store-write failure injection above
	// the filesystem.
	testExecHook      func(key string)
	testPersistHook   func(key string, err error)
	testAppendFault   func(key string) error
	testReplicateHook func(key, peer string, err error)
}

type healthAccum struct {
	jobsWithDiagnostics int
	burstsQuarantined   int
	linesSkipped        int
	framesDegraded      int
	framesBridged       int
	lastSummary         string
}

type serverMetrics struct {
	jobsAccepted   *Counter
	jobsRejected   *Counter
	jobsCoalesced  *Counter
	jobsExecuted   *Counter
	jobsCompleted  *Counter
	jobsFailed     *Counter
	jobsCanceled   *Counter
	jobsBinary     *Counter
	cacheHits      *Counter
	cacheMisses    *Counter
	cacheEvictions *Counter
	cacheEntries   *Gauge
	cacheBytes     *Gauge
	queueDepth     *Gauge
	queueCapacity  *Gauge
	workersBusy    *Gauge
	workersTotal   *Gauge
	stagePrepare   *Histogram
	stageCluster   *Histogram
	stageTrack     *Histogram
	stageExport    *Histogram
	jobLatency     *Histogram
}

// New starts a server: the worker pool begins consuming immediately.
// When cfg.StoreDir is set, the persistent store is opened (and its
// history recovered) before the first job can complete.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		cache:    NewCache(cfg.CacheMaxEntries, cfg.CacheMaxBytes),
		reg:      NewRegistry(),
		queue:    make(chan *Job, cfg.QueueDepth),
		jobs:     map[string]*Job{},
		inflight: map[string]*Job{},
	}
	s.rootCtx, s.cancel = context.WithCancel(context.Background())
	s.testExecHook, s.testPersistHook = cfg.testExecHook, cfg.testPersistHook
	s.testReplicateHook = cfg.testReplicateHook

	r := s.reg
	s.m = serverMetrics{
		jobsAccepted:   r.NewCounter("trackd_jobs_accepted_total", "Submissions admitted (including cache hits and coalesced duplicates)."),
		jobsRejected:   r.NewCounter("trackd_jobs_rejected_total", "Submissions rejected with 429 because the queue was full."),
		jobsCoalesced:  r.NewCounter("trackd_jobs_coalesced_total", "Submissions attached to an identical in-flight job (singleflight)."),
		jobsExecuted:   r.NewCounter("trackd_jobs_executed_total", "Pipeline executions started by workers (cache misses only)."),
		jobsCompleted:  r.NewCounter("trackd_jobs_completed_total", "Jobs finished successfully (including instant cache hits)."),
		jobsFailed:     r.NewCounter("trackd_jobs_failed_total", "Jobs that ended in error (including per-job timeouts)."),
		jobsCanceled:   r.NewCounter("trackd_jobs_canceled_total", "Jobs canceled by daemon shutdown."),
		jobsBinary:     r.NewCounter("trackd_jobs_binary_total", "Submissions whose body arrived in the binary columnar trace format."),
		cacheHits:      r.NewCounter("trackd_cache_hits_total", "Submissions served from the content-addressed result cache."),
		cacheMisses:    r.NewCounter("trackd_cache_misses_total", "Submissions whose key was absent from the result cache."),
		cacheEvictions: r.NewCounter("trackd_cache_evictions_total", "Results evicted from the cache by the LRU bounds."),
		cacheEntries:   r.NewGaugeFunc("trackd_cache_entries", "Results currently cached.", func() int64 { return int64(s.cache.Len()) }),
		cacheBytes:     r.NewGaugeFunc("trackd_cache_bytes", "Total bytes of cached results.", func() int64 { return s.cache.Bytes() }),
		queueDepth:     r.NewGaugeFunc("trackd_queue_depth", "Jobs waiting for a worker.", func() int64 { return int64(len(s.queue)) }),
		queueCapacity:  r.NewGaugeFunc("trackd_queue_capacity", "Bound of the job queue.", func() int64 { return int64(cfg.QueueDepth) }),
		workersBusy:    r.NewGauge("trackd_workers_busy", "Workers currently executing a job."),
		workersTotal:   r.NewGaugeFunc("trackd_workers", "Size of the worker pool.", func() int64 { return int64(cfg.Workers) }),
		stagePrepare:   r.NewHistogram("trackd_stage_prepare_seconds", "Latency of input preparation (simulation or trace windowing).", nil),
		stageCluster:   r.NewHistogram("trackd_stage_cluster_seconds", "Latency of frame building and clustering.", nil),
		stageTrack:     r.NewHistogram("trackd_stage_track_seconds", "Latency of the tracking combination algorithm.", nil),
		stageExport:    r.NewHistogram("trackd_stage_export_seconds", "Latency of result serialisation.", nil),
		jobLatency:     r.NewHistogram("trackd_job_seconds", "End-to-end job latency, submission to terminal state.", nil),
	}
	s.cache.onEvict = func() { s.m.cacheEvictions.Inc() }

	s.rm = resilienceMetrics{
		retryAttempts:     r.NewCounter("trackd_store_retry_attempts_total", "Retried store appends after a failure (first attempts not counted)."),
		storeBreakerFlips: r.NewCounter("trackd_store_breaker_transitions_total", "Store circuit breaker open/close transitions."),
		execBreakerFlips:  r.NewCounter("trackd_exec_breaker_transitions_total", "Execution circuit breaker open/close transitions."),
		degradedResponses: r.NewCounter("trackd_degraded_responses_total", "Submissions refused with 503 because the service was degraded to read-only."),
	}
	s.storeBreaker = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, func(bool) { s.rm.storeBreakerFlips.Inc() })
	s.execBreaker = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, func(bool) { s.rm.execBreakerFlips.Inc() })
	r.NewGaugeFunc("trackd_store_breaker_open", "1 while the store circuit breaker is open.", func() int64 {
		if s.storeBreaker.Open() {
			return 1
		}
		return 0
	})
	r.NewGaugeFunc("trackd_exec_breaker_open", "1 while the execution circuit breaker is open.", func() int64 {
		if s.execBreaker.Open() {
			return 1
		}
		return 0
	})

	if cfg.TraceCacheDir != "" && !cfg.TraceCacheDisabled {
		tc, err := store.OpenTraceCache(cfg.TraceCacheDir, cfg.TraceCacheMaxBytes)
		if err != nil {
			s.cancel()
			return nil, err
		}
		s.tcache = tc
		r.NewGaugeFunc("trackd_trace_cache_hits_total", "Text uploads served from their cached binary conversion.", func() int64 { return tc.Stats().Hits })
		r.NewGaugeFunc("trackd_trace_cache_misses_total", "Text uploads that paid the text parse.", func() int64 { return tc.Stats().Misses })
		r.NewGaugeFunc("trackd_trace_cache_entries", "Cached trace conversions resident on disk.", func() int64 { return int64(tc.Stats().Entries) })
		r.NewGaugeFunc("trackd_trace_cache_bytes", "Total bytes of cached trace conversions.", func() int64 { return tc.Stats().Bytes })
	}

	s.replayDone = make(chan struct{})
	if cfg.StoreDir != "" {
		if err := s.openStore(); err != nil {
			s.cancel()
			return nil, err
		}
		if !cfg.JournalDisabled {
			if err := s.openJournal(); err != nil {
				s.store.Close()
				s.cancel()
				return nil, err
			}
		}
	}
	// Streams come after the store (resume restores sealed windows from
	// it) and before the HTTP surface can serve.
	if err := s.openStreams(); err != nil {
		if s.store != nil {
			s.store.Close()
		}
		if s.journal != nil {
			s.journal.Close()
		}
		s.cancel()
		return nil, err
	}
	if cfg.Mesh.NodeID != "" {
		if cfg.StoreDir == "" {
			s.cancel()
			return nil, fmt.Errorf("service: cluster mode requires a store directory (replication needs perfdb)")
		}
		if err := s.openMesh(); err != nil {
			s.store.Close()
			if s.journal != nil {
				s.journal.Close()
			}
			s.cancel()
			return nil, err
		}
	}

	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}

	// Startup replay: drive every pending intent to a terminal state in
	// the background; /readyz reports 503 until it finishes.
	if s.journal != nil {
		if pending := s.journal.Pending(); len(pending) > 0 {
			go s.replay(pending)
		} else {
			close(s.replayDone)
		}
	} else {
		close(s.replayDone)
	}
	return s, nil
}

// Registry exposes the metrics registry (for embedding hosts).
func (s *Server) Registry() *Registry { return s.reg }

// Submit resolves the request, consults the cache and singleflight table,
// and either returns a finished job (cache hit), an existing identical
// in-flight job (coalesced=true), or enqueues a new one. ErrQueueFull
// means the caller should retry later (HTTP 429); ErrDegraded means the
// service is read-only (503) because a breaker is open or the journal
// cannot make the submission durable. When the journal is enabled, a
// nil error for a fresh job means its intent is fsynced: the job
// survives any crash from this point on.
//
// In cluster mode a key owned by another node is forwarded there after
// the local intent fsync — the durability promise stays local while
// dedup and singleflight concentrate at the owner.
func (s *Server) Submit(req JobRequest) (job *Job, coalesced bool, err error) {
	return s.submit(req, false)
}

// submit is Submit plus the mesh provenance bit: via is true when the
// request was forwarded by a peer, which pins execution here (no
// re-forwarding, even if membership views disagree mid-transition).
func (s *Server) submit(req JobRequest, via bool) (job *Job, coalesced bool, err error) {
	spec, err := resolveThrough(req, s.tcache)
	if err != nil {
		return nil, false, err
	}
	var intent []byte
	if intent, err = json.Marshal(req); err != nil {
		return nil, false, err
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false, ErrShuttingDown
	}
	s.m.jobsAccepted.Inc()

	if val, ok := s.cache.Get(spec.key); ok {
		s.m.cacheHits.Inc()
		s.refileLocked(spec, val)
		j := s.finishedJobLocked(spec, val)
		s.mu.Unlock()
		return j, false, nil
	}
	s.m.cacheMisses.Inc()

	if running, ok := s.inflight[spec.key]; ok {
		s.m.jobsCoalesced.Inc()
		s.mu.Unlock()
		return running, true, nil
	}

	// Read-through: a result computed before the last restart lives in
	// the persistent store even though the in-memory cache lost it.
	if val, ok := s.storeGetLocked(spec); ok {
		j := s.finishedJobLocked(spec, val)
		s.mu.Unlock()
		return j, false, nil
	}

	// Everything past here is write work. Degrade to read-only while a
	// breaker is open: reads above keep flowing, new executions do not.
	if (s.journal != nil && s.storeBreaker.Blocked()) || s.execBreaker.Blocked() {
		s.rm.degradedResponses.Inc()
		s.mu.Unlock()
		return nil, false, ErrDegraded
	}

	if s.journal == nil {
		if owner, fwd := s.forwardTarget(spec.key, via); fwd {
			j := s.forwardLocked(spec, false, owner, intent)
			s.mu.Unlock()
			return j, false, nil
		}
		j, err := s.admitLocked(spec, false)
		s.mu.Unlock()
		return j, false, err
	}
	s.mu.Unlock()

	// Journal the intent before acknowledging — the fsync inside is what
	// turns the 202 into a durability promise — but OUTSIDE the server
	// mutex: a slow or hung disk stalls this one submission, not every
	// status poll, cache hit and health snapshot queued behind the lock.
	if jerr := s.journal.Intent(spec.key, intent); jerr != nil {
		s.rm.degradedResponses.Inc()
		return nil, false, fmt.Errorf("%w: %v", ErrDegraded, jerr)
	}

	s.mu.Lock()
	if s.closed {
		// Shutdown began while the intent fsynced. The durable intent is
		// deliberately left pending: the next startup replays it, and
		// since this client never got its ack, the replayed run is at
		// worst one harmless execution.
		s.mu.Unlock()
		return nil, false, ErrShuttingDown
	}
	// The world may have changed while the lock was released: an
	// identical submission may have finished (cache), be running
	// (singleflight) or have landed in the store. Re-check before
	// enqueueing so a key still never executes twice without cause.
	if val, ok := s.cache.Get(spec.key); ok {
		s.refileLocked(spec, val)
		j := s.finishedJobLocked(spec, val)
		_, durable := s.store.GetMeta(spec.key)
		s.mu.Unlock()
		s.settleRecheckIntent(spec.key, durable)
		return j, false, nil
	}
	if running, ok := s.inflight[spec.key]; ok {
		s.m.jobsCoalesced.Inc()
		_, durable := s.store.GetMeta(spec.key)
		s.mu.Unlock()
		s.settleRecheckIntent(spec.key, durable)
		return running, true, nil
	}
	if val, ok := s.storeGetLocked(spec); ok {
		j := s.finishedJobLocked(spec, val)
		s.mu.Unlock()
		s.settleRecheckIntent(spec.key, true)
		return j, false, nil
	}
	if owner, fwd := s.forwardTarget(spec.key, via); fwd {
		j := s.forwardLocked(spec, true, owner, intent)
		s.mu.Unlock()
		return j, false, nil
	}
	j, err := s.admitLocked(spec, true)
	s.mu.Unlock()
	if errors.Is(err, ErrQueueFull) {
		// Balance the journaled intent with a fail entry so the rejected
		// submission is not replayed as a ghost job.
		s.journal.Resolve(spec.key, "queue full, never admitted", false)
	}
	return j, false, err
}

// admitLocked registers a fresh job and offers it to the bounded queue;
// callers hold s.mu. A full queue undoes the registration — safe because
// nothing else can have appended to s.order inside this critical section
// — and returns ErrQueueFull.
func (s *Server) admitLocked(spec *jobSpec, journaled bool) (*Job, error) {
	j := s.newJobLocked(spec)
	j.journaled = journaled
	select {
	case s.queue <- j:
	default:
		delete(s.jobs, j.ID)
		s.order = s.order[:len(s.order)-1]
		s.m.jobsRejected.Inc()
		return nil, ErrQueueFull
	}
	s.inflight[spec.key] = j
	return j, nil
}

// settleRecheckIntent balances the intent journaled by a submission that
// turned into a hit or a coalesce during its fsync window. When the
// result is already durable in the store the intent resolves done;
// otherwise it stays pending on purpose — either the in-flight execution
// it coalesced onto resolves the shared per-key intent when it finishes,
// or (result computed but never persisted) the next startup's replay
// lands it in the store.
func (s *Server) settleRecheckIntent(key string, durable bool) {
	if durable {
		s.journal.Resolve(key, "", true)
	}
}

// finishedJobLocked registers a job born done (cache or store hit);
// callers hold s.mu.
func (s *Server) finishedJobLocked(spec *jobSpec, val []byte) *Job {
	j := s.newJobLocked(spec)
	j.state = StateDone
	j.cacheHit = true
	j.result = val
	j.finished = time.Now()
	close(j.done)
	s.m.jobsCompleted.Inc()
	s.m.jobLatency.Observe(j.finished.Sub(j.submitted).Seconds())
	return j
}

// newJobLocked allocates and registers a job; callers hold s.mu.
func (s *Server) newJobLocked(spec *jobSpec) *Job {
	s.seq++
	j := &Job{
		ID:        fmt.Sprintf("j%06d-%s", s.seq, spec.key[:8]),
		Key:       spec.key,
		spec:      spec,
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	return j
}

// Job returns the job with the given id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Wait blocks until the job reaches a terminal state or ctx is done.
func (s *Server) Wait(ctx context.Context, j *Job) error {
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Result returns the job's result bytes once done.
func (s *Server) Result(j *Job) ([]byte, JobState, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.result, j.state, j.errMsg
}

// View snapshots a job for JSON rendering.
func (s *Server) View(j *Job) JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.view()
}

// worker consumes the queue until shutdown.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.rootCtx.Done():
			return
		case j := <-s.queue:
			s.run(j)
		}
	}
}

// run executes one job under the per-job timeout and publishes the
// outcome.
func (s *Server) run(j *Job) {
	s.mu.Lock()
	if j.state != StateQueued { // canceled while queued
		s.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	s.mu.Unlock()

	s.m.jobsExecuted.Inc()
	s.m.workersBusy.Add(1)
	defer s.m.workersBusy.Add(-1)

	ctx, cancel := context.WithTimeout(s.rootCtx, s.cfg.JobTimeout)
	defer cancel()

	if s.testGate != nil {
		select {
		case <-s.testGate:
		case <-ctx.Done():
		}
	}

	// In cluster mode, check alive peers for an already-stored copy
	// before computing: a key re-owned after a membership change may
	// already be durable on a node outside the current replica set, and
	// recomputing it would break exactly-once.
	var (
		result  []byte
		diags   *core.Diagnostics
		err     error
		fetched bool
	)
	if s.mesh != nil {
		if payload, ok := s.fetchFromCluster(ctx, j.Key); ok {
			result, fetched = payload, true
		}
	}
	if !fetched {
		if s.testExecHook != nil {
			s.testExecHook(j.Key)
		}
		result, diags, err = s.execute(ctx, j.spec)
	}

	// Classify the outcome once; the journal resolution, the breaker
	// verdict and the published state must all agree.
	shutdownCancel := err != nil && s.rootCtx.Err() != nil && ctx.Err() == context.Canceled
	var errMsg string
	switch {
	case err == nil:
	case shutdownCancel:
		errMsg = "daemon shutting down"
	case errors.Is(err, context.DeadlineExceeded):
		errMsg = fmt.Sprintf("job timeout after %s", s.cfg.JobTimeout)
	default:
		errMsg = err.Error()
	}

	// Persist and resolve the journal OUTSIDE the server mutex: persist
	// sleeps between retries and the journal fsyncs; neither may stall
	// submissions or the other workers.
	var persistErr error
	if err == nil {
		if !fetched {
			s.execBreaker.Success()
		}
		if s.store != nil {
			persistErr = s.persist(j.spec, result)
			if s.testPersistHook != nil {
				s.testPersistHook(j.Key, persistErr)
			}
			if persistErr == nil {
				// Replicate the durable result to its ring successors;
				// failed pushes become journaled hand-off debt.
				s.replicate(j.spec, result)
			}
		}
	} else if !shutdownCancel {
		s.execBreaker.Failure()
	}
	switch {
	case err == nil && persistErr == nil:
		s.resolveJournal(j, "", true)
	case err == nil:
		// Computed but not persisted after the retry budget: the client
		// is served from memory, the intent stays pending, and the next
		// startup replays it into the store.
	case shutdownCancel:
		// Interrupted, not finished: leave the intent pending so the
		// next startup resumes the job.
	default:
		s.resolveJournal(j, errMsg, false)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	j.finished = time.Now()
	delete(s.inflight, j.Key)
	switch {
	case err == nil:
		j.state = StateDone
		j.result = result
		j.diagnostics = diags
		s.cache.Put(j.Key, result)
		s.m.jobsCompleted.Inc()
		s.noteDiagnosticsLocked(diags)
	case shutdownCancel:
		j.state = StateCanceled
		j.errMsg = errMsg
		s.m.jobsCanceled.Inc()
	default:
		j.state = StateFailed
		j.errMsg = errMsg
		s.m.jobsFailed.Inc()
	}
	s.m.jobLatency.Observe(j.finished.Sub(j.submitted).Seconds())
	close(j.done)
}

// execute runs the pipeline stages, timing each into its histogram.
// Each stage runs under its own timeout budget (Config.StageTimeout)
// inside the job-wide deadline, so one pathological stage cannot eat
// the whole JobTimeout before the failure is attributed.
func (s *Server) execute(ctx context.Context, spec *jobSpec) ([]byte, *core.Diagnostics, error) {
	observe := func(h *Histogram, from time.Time) { h.Observe(time.Since(from).Seconds()) }
	stageCtx := func() (context.Context, context.CancelFunc) {
		if s.cfg.StageTimeout > 0 {
			return context.WithTimeout(ctx, s.cfg.StageTimeout)
		}
		return context.WithCancel(ctx)
	}

	t0 := time.Now()
	traces := spec.traces
	if spec.study != nil {
		sctx, cancel := stageCtx()
		var err error
		traces, err = mpisim.SimulateSeriesContext(sctx, spec.study.Runs)
		cancel()
		if err != nil {
			return nil, nil, err
		}
		if spec.study.Windows > 1 {
			if len(traces) != 1 {
				return nil, nil, fmt.Errorf("windowed study needs exactly one run, got %d", len(traces))
			}
			traces = traces[0].SplitWindows(spec.study.Windows)
		}
	} else if spec.windows > 1 {
		traces = traces[0].SplitWindows(spec.windows)
	}
	observe(s.m.stagePrepare, t0)

	t1 := time.Now()
	sctx, cancel := stageCtx()
	frames, err := core.BuildFramesContext(sctx, traces, spec.cfg)
	cancel()
	if err != nil {
		return nil, nil, err
	}
	observe(s.m.stageCluster, t1)

	t2 := time.Now()
	sctx, cancel = stageCtx()
	res, err := core.NewTracker(spec.cfg).TrackContext(sctx, frames)
	cancel()
	if err != nil {
		return nil, nil, err
	}
	observe(s.m.stageTrack, t2)
	res.Diagnostics.AddDecode(spec.linesSkipped)

	t3 := time.Now()
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf, spec.ms); err != nil {
		return nil, nil, err
	}
	observe(s.m.stageExport, t3)

	d := res.Diagnostics
	return buf.Bytes(), &d, nil
}

// noteDiagnosticsLocked folds one job's degraded-mode accounting into the
// health aggregation; callers hold s.mu.
func (s *Server) noteDiagnosticsLocked(d *core.Diagnostics) {
	if d == nil || d.Clean() {
		return
	}
	s.health.jobsWithDiagnostics++
	s.health.burstsQuarantined += d.BurstsQuarantined
	s.health.linesSkipped += d.LinesSkipped
	s.health.framesDegraded += d.FramesDegraded
	s.health.framesBridged += d.FramesBridged
	s.health.lastSummary = d.Summary()
}

// Shutdown stops accepting jobs, cancels queued and running ones, and
// waits for the workers to exit (bounded by ctx). In-flight pipeline
// stages observe the cancellation via their contexts, so workers return
// promptly instead of finishing doomed analyses.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	// Cancel running pipelines, then mark every queued job canceled.
	s.cancel()
	for {
		var j *Job
		select {
		case j = <-s.queue:
		default:
		}
		if j == nil {
			break
		}
		s.mu.Lock()
		if !j.state.Terminal() {
			j.state = StateCanceled
			j.errMsg = "daemon shutting down"
			j.finished = time.Now()
			delete(s.inflight, j.Key)
			s.m.jobsCanceled.Inc()
			close(j.done)
		}
		s.mu.Unlock()
	}

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	// Close the store, then the journal, last: a straggling append after
	// this point fails cleanly (counted, not crashed). Intents of
	// canceled jobs are deliberately NOT resolved — they stay pending on
	// disk and the next startup replays them.
	if s.store != nil {
		if cerr := s.store.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if s.journal != nil {
		if cerr := s.journal.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if s.mesh != nil {
		s.mesh.Stop()
	}
	if s.meshJournal != nil {
		if cerr := s.meshJournal.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if cerr := s.closeStreams(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// ---- HTTP layer ----

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/studies", s.handleStudies)
	mux.HandleFunc("GET /v1/results", s.handleResults)
	mux.HandleFunc("GET /v1/results/{key}", s.handleResultPayload)
	mux.HandleFunc("GET /v1/series", s.handleSeriesList)
	mux.HandleFunc("GET /v1/series/{name}/trajectories", s.handleTrajectories)
	mux.HandleFunc("GET /v1/series/{name}/regressions", s.handleRegressions)
	mux.HandleFunc("POST /v1/streams", s.handleStreamCreate)
	mux.HandleFunc("GET /v1/streams", s.handleStreams)
	mux.HandleFunc("GET /v1/streams/{id}", s.handleStream)
	mux.HandleFunc("POST /v1/streams/{id}/bursts", s.handleStreamAppend)
	mux.HandleFunc("POST /v1/streams/{id}/finish", s.handleStreamFinish)
	mux.HandleFunc("GET /v1/streams/{id}/events", s.handleStreamEvents)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /v1/mesh/ping", s.handleMeshPing)
	mux.HandleFunc("POST /v1/mesh/replicate", s.handleMeshReplicate)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	data, err := io.ReadAll(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading request: "+err.Error())
		return
	}
	var req JobRequest
	if trace.IsColbin(data) {
		// Raw binary submission: the body is one or more concatenated
		// colbin traces; job options ride in the query string.
		req, err = binaryJobRequest(data, r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		s.m.jobsBinary.Inc()
	} else if err := json.Unmarshal(data, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}
	via := viaMesh(r)
	if via && s.mesh != nil {
		s.mm.receivedJobs.Inc()
	}
	j, coalesced, err := s.submit(req, via)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds()+0.5)))
		writeError(w, http.StatusTooManyRequests, "job queue is full, retry later")
		return
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case errors.Is(err, ErrDegraded):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds()+0.5)))
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	v := s.View(j)
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	switch {
	case v.CacheHit:
		w.Header().Set("X-Cache", "hit")
		writeJSON(w, http.StatusOK, v)
	case coalesced:
		w.Header().Set("X-Cache", "coalesced")
		writeJSON(w, http.StatusAccepted, v)
	default:
		w.Header().Set("X-Cache", "miss")
		writeJSON(w, http.StatusAccepted, v)
	}
}

// binaryJobRequest unpacks a raw colbin POST body — one or more
// concatenated binary columnar traces — into the JobRequest the rest of
// the pipeline (journal intents, mesh forwarding, resolve) already
// understands. Job options that normally live in the JSON body ride in
// the query string: windows, metrics (comma-separated), lenient, series,
// runLabel, and config (a JSON-encoded ConfigSpec).
func binaryJobRequest(data []byte, r *http.Request) (JobRequest, error) {
	var req JobRequest
	parts, err := trace.SplitColbin(data)
	if err != nil {
		return req, fmt.Errorf("decoding binary traces: %w", err)
	}
	req.TracesBin = parts
	q := r.URL.Query()
	if v := q.Get("windows"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return req, fmt.Errorf("windows %q is not a number", v)
		}
		req.Windows = n
	}
	if v := q.Get("metrics"); v != "" {
		req.Metrics = strings.Split(v, ",")
	}
	req.Lenient = q.Get("lenient") == "true" || q.Get("lenient") == "1"
	req.Series = q.Get("series")
	req.RunLabel = q.Get("runLabel")
	if v := q.Get("config"); v != "" {
		var cs ConfigSpec
		if err := json.Unmarshal([]byte(v), &cs); err != nil {
			return req, fmt.Errorf("config query parameter: %w", err)
		}
		req.Config = &cs
	}
	return req, nil
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		views = append(views, s.jobs[id].view())
	}
	s.mu.Unlock()
	sortViews(views)
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, s.View(j))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	// ?wait=DURATION long-polls: respond as soon as the job is terminal
	// or the window elapses. Forwarding peers use this instead of a poll
	// storm.
	if ws := r.URL.Query().Get("wait"); ws != "" {
		if d, err := time.ParseDuration(ws); err == nil && d > 0 {
			if d > time.Minute {
				d = time.Minute
			}
			wctx, cancel := context.WithTimeout(r.Context(), d)
			s.Wait(wctx, j)
			cancel()
		}
	}
	result, state, errMsg := s.Result(j)
	switch state {
	case StateDone:
		w.Header().Set("Content-Type", "application/json")
		if j.cacheHit {
			w.Header().Set("X-Cache", "hit")
		} else {
			w.Header().Set("X-Cache", "miss")
		}
		// X-Durable tells a forwarding peer whether this result is in the
		// persistent store — the signal that lets it resolve its own
		// journal intent.
		if s.store != nil {
			if _, ok := s.store.GetMeta(j.Key); ok {
				w.Header().Set("X-Durable", "true")
			}
		}
		w.Write(result)
	case StateFailed:
		writeError(w, http.StatusInternalServerError, errMsg)
	case StateCanceled:
		writeError(w, http.StatusGone, errMsg)
	default:
		// Not finished yet: 202 tells pollers to come back.
		writeJSON(w, http.StatusAccepted, s.View(j))
	}
}

func (s *Server) handleStudies(w http.ResponseWriter, r *http.Request) {
	type studyView struct {
		Name        string `json:"name"`
		Description string `json:"description"`
		Frames      int    `json:"frames"`
		Param       string `json:"param"`
	}
	var out []studyView
	for _, st := range apps.All() {
		frames := len(st.Runs)
		if st.Windows > 1 {
			frames = st.Windows
		}
		out = append(out, studyView{Name: st.Name, Description: st.Description, Frames: frames, Param: st.ParamName})
	}
	syn, err := apps.ByName("Synthetic")
	if err == nil {
		out = append(out, studyView{Name: syn.Name, Description: syn.Description, Frames: len(syn.Runs), Param: syn.ParamName})
	}
	writeJSON(w, http.StatusOK, map[string]any{"studies": out})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

// Health is the /healthz document.
type Health struct {
	Status        string `json:"status"`
	Workers       int    `json:"workers"`
	WorkersBusy   int64  `json:"workersBusy"`
	QueueDepth    int    `json:"queueDepth"`
	QueueCapacity int    `json:"queueCapacity"`
	CacheEntries  int    `json:"cacheEntries"`
	CacheBytes    int64  `json:"cacheBytes"`
	Jobs          struct {
		Accepted  uint64 `json:"accepted"`
		Executed  uint64 `json:"executed"`
		Completed uint64 `json:"completed"`
		Failed    uint64 `json:"failed"`
		Canceled  uint64 `json:"canceled"`
		Rejected  uint64 `json:"rejected"`
	} `json:"jobs"`
	DegradedMode struct {
		JobsWithDiagnostics int    `json:"jobsWithDiagnostics"`
		BurstsQuarantined   int    `json:"burstsQuarantined"`
		LinesSkipped        int    `json:"linesSkipped"`
		FramesDegraded      int    `json:"framesDegraded"`
		FramesBridged       int    `json:"framesBridged"`
		LastSummary         string `json:"lastSummary,omitempty"`
	} `json:"degradedMode"`
	Store struct {
		Enabled    bool   `json:"enabled"`
		Records    int    `json:"records"`
		Segments   int    `json:"segments"`
		Bytes      int64  `json:"bytes"`
		Superseded uint64 `json:"superseded"`
	} `json:"store"`
	Journal struct {
		Enabled bool   `json:"enabled"`
		Pending int    `json:"pending"`
		Bytes   int64  `json:"bytes"`
		Appends uint64 `json:"appends"`
	} `json:"journal"`
	Breakers struct {
		StoreOpen bool `json:"storeOpen"`
		ExecOpen  bool `json:"execOpen"`
	} `json:"breakers"`
	Streams struct {
		Sessions      int            `json:"sessions"`
		Created       uint64         `json:"created"`
		Resumed       uint64         `json:"resumed"`
		Bursts        uint64         `json:"bursts"`
		WindowCloses  uint64         `json:"windowCloses"`
		Backpressure  uint64         `json:"backpressure"`
		PersistErrors uint64         `json:"persistErrors"`
		Subscribers   int            `json:"subscribers"`
		JournalLive   int            `json:"journalLive"`
		PerStream     []StreamHealth `json:"perStream,omitempty"`
	} `json:"streams"`
	Mesh struct {
		Enabled bool   `json:"enabled"`
		NodeID  string `json:"nodeId,omitempty"`
		Epoch   uint64 `json:"epoch,omitempty"`
		// Replicas is the configured copies per record (owner included);
		// Peers the per-peer liveness view; RingShares each live node's
		// exact fraction of the hash space; ReplicationPending the
		// journaled hand-off debts not yet delivered (replication lag).
		Replicas           int                `json:"replicas,omitempty"`
		Peers              []mesh.PeerStatus  `json:"peers,omitempty"`
		RingShares         map[string]float64 `json:"ringShares,omitempty"`
		ReplicationPending int                `json:"replicationPending,omitempty"`
	} `json:"mesh"`
}

// Healthz snapshots the daemon state for /healthz.
func (s *Server) Healthz() Health {
	var h Health
	s.mu.Lock()
	closed := s.closed
	acc := s.health
	s.mu.Unlock()

	h.Status = "ok"
	if closed {
		h.Status = "shutting-down"
	} else if acc.jobsWithDiagnostics > 0 {
		// Results are still served, but some came from the degraded-mode
		// pipeline: coarsened, not wrong. Surface it.
		h.Status = "degraded"
	}
	h.Workers = s.cfg.Workers
	h.WorkersBusy = s.m.workersBusy.Value()
	h.QueueDepth = len(s.queue)
	h.QueueCapacity = s.cfg.QueueDepth
	h.CacheEntries = s.cache.Len()
	h.CacheBytes = s.cache.Bytes()
	h.Jobs.Accepted = s.m.jobsAccepted.Value()
	h.Jobs.Executed = s.m.jobsExecuted.Value()
	h.Jobs.Completed = s.m.jobsCompleted.Value()
	h.Jobs.Failed = s.m.jobsFailed.Value()
	h.Jobs.Canceled = s.m.jobsCanceled.Value()
	h.Jobs.Rejected = s.m.jobsRejected.Value()
	h.DegradedMode.JobsWithDiagnostics = acc.jobsWithDiagnostics
	h.DegradedMode.BurstsQuarantined = acc.burstsQuarantined
	h.DegradedMode.LinesSkipped = acc.linesSkipped
	h.DegradedMode.FramesDegraded = acc.framesDegraded
	h.DegradedMode.FramesBridged = acc.framesBridged
	h.DegradedMode.LastSummary = acc.lastSummary
	if s.store != nil {
		st := s.store.Stats()
		h.Store.Enabled = true
		h.Store.Records = st.Records
		h.Store.Segments = st.Segments
		h.Store.Bytes = st.Bytes
		h.Store.Superseded = st.Superseded
	}
	if s.journal != nil {
		jst := s.journal.Stats()
		h.Journal.Enabled = true
		h.Journal.Pending = jst.Pending
		h.Journal.Bytes = jst.Bytes
		h.Journal.Appends = jst.Appends
	}
	h.Breakers.StoreOpen = s.storeBreaker.Open()
	h.Breakers.ExecOpen = s.execBreaker.Open()
	h.Streams.PerStream = s.streamHealth()
	h.Streams.Sessions = len(h.Streams.PerStream)
	h.Streams.Created = s.stm.created.Value()
	h.Streams.Resumed = s.stm.resumed.Value()
	h.Streams.Bursts = s.stm.bursts.Value()
	h.Streams.WindowCloses = s.stm.windowCloses.Value()
	h.Streams.Backpressure = s.stm.backpressure.Value()
	h.Streams.PersistErrors = s.stm.persistErrors.Value()
	for _, sh := range h.Streams.PerStream {
		h.Streams.Subscribers += sh.Subscribers
	}
	if s.streamJournal != nil {
		h.Streams.JournalLive = s.streamJournal.Stats().Pending
	}
	if s.mesh != nil {
		h.Mesh.Enabled = true
		h.Mesh.NodeID = s.mesh.Self()
		h.Mesh.Epoch = s.mesh.Epoch()
		h.Mesh.Replicas = s.mesh.Replicas()
		h.Mesh.Peers = s.mesh.Statuses()
		h.Mesh.RingShares = s.mesh.Ring().Shares()
		if s.meshJournal != nil {
			h.Mesh.ReplicationPending = s.meshJournal.Stats().Pending
		}
	}
	return h
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Healthz())
}

// Readiness is the /readyz document. Liveness (/healthz) answers "is
// the process up"; readiness answers "should traffic be routed here":
// not while journal replay is still resuming acknowledged work, and not
// while a breaker has degraded the service to read-only.
type Readiness struct {
	Ready   bool     `json:"ready"`
	Reasons []string `json:"reasons,omitempty"`
}

// Readyz reports whether the daemon is ready for new write traffic.
func (s *Server) Readyz() Readiness {
	var r Readiness
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		r.Reasons = append(r.Reasons, "shutting down")
	}
	select {
	case <-s.replayDone:
	default:
		r.Reasons = append(r.Reasons, "journal replay in progress")
	}
	if s.storeBreaker.Open() {
		r.Reasons = append(r.Reasons, "store circuit breaker open")
	}
	if s.execBreaker.Open() {
		r.Reasons = append(r.Reasons, "execution circuit breaker open")
	}
	r.Ready = len(r.Reasons) == 0
	return r
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ready := s.Readyz()
	status := http.StatusOK
	if !ready.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, ready)
}

// Hash re-exports the canonical trace hash for clients that want to
// predict cache keys.
func Hash(ts []*trace.Trace) [32]byte { return trace.HashSequence(ts) }
