package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"perftrack/internal/core"
	"perftrack/internal/oracle"
	"perftrack/internal/stream"
	"perftrack/internal/trace"
)

// streamTestTrace is a small seeded workload plus the decoded form of
// its burst chunks — decoded locally with the same codec the daemon
// uses, so the batch reference sees byte-identical inputs.
func streamTestTrace(t *testing.T, seed uint64) (*trace.Trace, []trace.Burst) {
	t.Helper()
	tr := oracle.GenTraces(seed, "live", 8, 10, 3) // 240 bursts
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	dec, _, err := trace.ReadWith(bytes.NewReader(buf.Bytes()), trace.DecodeOptions{Strict: false})
	if err != nil {
		t.Fatal(err)
	}
	return dec, dec.Bursts
}

// encodeChunk renders a burst slice in the perftrack text format.
func encodeChunk(t *testing.T, meta trace.Metadata, bursts []trace.Burst) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.Write(&buf, &trace.Trace{Meta: meta, Bursts: bursts}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postJSON(t *testing.T, client *http.Client, url string, body any, out any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding %s response %q: %v", url, raw, err)
		}
	}
	resp.Body = io.NopCloser(bytes.NewReader(raw))
	return resp
}

func postBytes(t *testing.T, client *http.Client, url string, body []byte, out any) *http.Response {
	t.Helper()
	resp, err := client.Post(url, "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding %s response %q: %v", url, raw, err)
		}
	}
	resp.Body = io.NopCloser(bytes.NewReader(raw))
	return resp
}

// batchWindowExport runs the batch pipeline over arrival-order chunks
// of the burst sequence and returns the export bytes.
func batchWindowExport(t *testing.T, bursts []trace.Burst, countN, ranks int, labels []string, cfg core.Config) []byte {
	t.Helper()
	var windows []*trace.Trace
	for i := 0; i < len(bursts); i += countN {
		end := min(i+countN, len(bursts))
		w := &trace.Trace{
			Meta:   trace.Metadata{Label: labels[len(windows)], Ranks: ranks},
			Bursts: append([]trace.Burst(nil), bursts[i:end]...),
		}
		w.SortByTaskTime()
		windows = append(windows, w)
	}
	frames, err := core.BuildFrames(windows, cfg)
	if err != nil {
		t.Fatalf("BuildFrames: %v", err)
	}
	res, err := core.NewTracker(cfg).Track(frames)
	if err != nil {
		t.Fatalf("Track: %v", err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf, cfg.Metrics); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStreamHTTPDifferential drives a stream over HTTP end to end:
// create, append chunks, finish — and checks the export persisted for
// the final window is bit-exact with the batch pipeline over the same
// arrival-order chunks.
func TestStreamHTTPDifferential(t *testing.T) {
	dir := t.TempDir()
	s := newTest(t, Config{Workers: 1, StoreDir: dir, JournalDisabled: true})
	defer s.Shutdown(context.Background())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	client := srv.Client()

	tr, bursts := streamTestTrace(t, 7)
	countN := 60
	var view StreamView
	resp := postJSON(t, client, srv.URL+"/v1/streams", StreamRequest{
		Label:  "live",
		Ranks:  tr.Meta.Ranks,
		Window: stream.WindowSpec{CountN: countN},
		Series: "live-series",
	}, &view)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	if view.ID == "" || !view.Stats.Incremental {
		t.Fatalf("unexpected view %+v", view)
	}

	var labels []string
	chunk := 37
	for i := 0; i < len(bursts); i += chunk {
		end := min(i+chunk, len(bursts))
		var ar StreamAppendResponse
		resp := postBytes(t, client, srv.URL+"/v1/streams/"+view.ID+"/bursts",
			encodeChunk(t, tr.Meta, bursts[i:end]), &ar)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("append: status %d", resp.StatusCode)
		}
		if ar.Appended != end-i {
			t.Fatalf("appended %d of %d", ar.Appended, end-i)
		}
		for _, d := range ar.Sealed {
			labels = append(labels, d.Label)
		}
	}
	var fin struct {
		Sealed []*stream.Delta `json:"sealed"`
		Stream StreamView      `json:"stream"`
	}
	resp = postJSON(t, client, srv.URL+"/v1/streams/"+view.ID+"/finish", nil, &fin)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("finish: status %d", resp.StatusCode)
	}
	for _, d := range fin.Sealed {
		labels = append(labels, d.Label)
	}
	wantWindows := (len(bursts) + countN - 1) / countN
	if len(labels) != wantWindows {
		t.Fatalf("sealed %d windows, want %d", len(labels), wantWindows)
	}
	if !fin.Stream.Closed {
		t.Fatal("stream not closed after finish")
	}

	// The persisted export of the last window must equal the batch run.
	key := streamExportKey(view.ID, wantWindows-1)
	got, ok, err := s.Store().Get(key)
	if err != nil || !ok {
		t.Fatalf("stored export %s: ok=%v err=%v", key, ok, err)
	}
	e, _ := s.streams.get(view.ID)
	cfg := e.sess.Config().Pipeline
	cfg.Metrics = e.sess.Metrics()
	want := batchWindowExport(t, bursts, countN, tr.Meta.Ranks, labels, cfg)
	if !bytes.Equal(got, want) {
		t.Fatalf("stream export diverges from batch (%d vs %d bytes)", len(got), len(want))
	}

	// The exports are filed under the public series; the raw records are
	// not listed there.
	var sl struct {
		Series []string `json:"series"`
	}
	r2, err := client.Get(srv.URL + "/v1/series")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(r2.Body).Decode(&sl)
	r2.Body.Close()
	for _, n := range sl.Series {
		if strings.HasPrefix(n, streamShadowPrefix) {
			t.Fatalf("shadow series %q leaked into /v1/series", n)
		}
	}
	var found bool
	for _, n := range sl.Series {
		found = found || n == "live-series"
	}
	if !found {
		t.Fatalf("live-series missing from %v", sl.Series)
	}

	// Trajectories over the live series answer 200 with runs.
	r3, err := client.Get(srv.URL + "/v1/series/live-series/trajectories")
	if err != nil {
		t.Fatal(err)
	}
	if r3.StatusCode != http.StatusOK {
		t.Fatalf("trajectories: status %d", r3.StatusCode)
	}
	r3.Body.Close()
}

// TestStreamResume crashes the daemon between chunks (at a window
// boundary) and proves the journaled stream resumes with every sealed
// window intact, keeps ingesting, and ends bit-exact with an
// uninterrupted batch run.
func TestStreamResume(t *testing.T) {
	dir := t.TempDir()
	tr, bursts := streamTestTrace(t, 11)
	countN := 40
	base := Config{Workers: 1, StoreDir: dir, JournalDisabled: true}

	s1 := newTest(t, base)
	srv1 := httptest.NewServer(s1.Handler())
	client := srv1.Client()
	var view StreamView
	resp := postJSON(t, client, srv1.URL+"/v1/streams", StreamRequest{
		ID:     "resume-x",
		Label:  "live",
		Ranks:  tr.Meta.Ranks,
		Window: stream.WindowSpec{CountN: countN},
		Series: "resumed-series",
	}, &view)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	var labels []string
	cut := 3 * countN // crash exactly at a window boundary
	if cut > len(bursts) {
		t.Fatalf("trace too small: %d bursts", len(bursts))
	}
	var ar StreamAppendResponse
	postBytes(t, client, srv1.URL+"/v1/streams/resume-x/bursts",
		encodeChunk(t, tr.Meta, bursts[:cut]), &ar)
	if len(ar.Sealed) != 3 {
		t.Fatalf("sealed %d windows before crash, want 3", len(ar.Sealed))
	}
	for _, d := range ar.Sealed {
		labels = append(labels, d.Label)
	}
	srv1.Close()
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	s2 := newTest(t, base)
	defer s2.Shutdown(context.Background())
	srv2 := httptest.NewServer(s2.Handler())
	defer srv2.Close()
	client = srv2.Client()

	var v2 StreamView
	r, err := client.Get(srv2.URL + "/v1/streams/resume-x")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("resumed stream lookup: status %d", r.StatusCode)
	}
	json.NewDecoder(r.Body).Decode(&v2)
	r.Body.Close()
	if !v2.Resumed || v2.Stats.WindowsSealed != 3 {
		t.Fatalf("resumed view %+v", v2)
	}

	var ar2 StreamAppendResponse
	postBytes(t, client, srv2.URL+"/v1/streams/resume-x/bursts",
		encodeChunk(t, tr.Meta, bursts[cut:]), &ar2)
	for _, d := range ar2.Sealed {
		labels = append(labels, d.Label)
	}
	var fin struct {
		Sealed []*stream.Delta `json:"sealed"`
	}
	postJSON(t, client, srv2.URL+"/v1/streams/resume-x/finish", nil, &fin)
	for _, d := range fin.Sealed {
		labels = append(labels, d.Label)
	}
	wantWindows := (len(bursts) + countN - 1) / countN
	if len(labels) != wantWindows {
		t.Fatalf("sealed %d windows across the restart, want %d", len(labels), wantWindows)
	}

	key := streamExportKey("resume-x", wantWindows-1)
	got, ok, err := s2.Store().Get(key)
	if err != nil || !ok {
		t.Fatalf("stored export %s: ok=%v err=%v", key, ok, err)
	}
	e, _ := s2.streams.get("resume-x")
	cfg := e.sess.Config().Pipeline
	cfg.Metrics = e.sess.Metrics()
	want := batchWindowExport(t, bursts, countN, tr.Meta.Ranks, labels, cfg)
	if !bytes.Equal(got, want) {
		t.Fatal("post-resume export diverges from batch")
	}

	// Finish resolved the journal: a third daemon does not resurrect it.
	if err := s2.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	s3 := newTest(t, base)
	defer s3.Shutdown(context.Background())
	if _, ok := s3.streams.get("resume-x"); ok {
		t.Fatal("finished stream resurrected after restart")
	}
}

// TestStreamEvents covers both subscription modes: long-poll returns
// the sealed deltas past a cursor, SSE pushes them as they seal and
// ends with a finish event.
func TestStreamEvents(t *testing.T) {
	s := newTest(t, Config{Workers: 1})
	defer s.Shutdown(context.Background())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	client := srv.Client()

	tr, bursts := streamTestTrace(t, 3)
	var view StreamView
	postJSON(t, client, srv.URL+"/v1/streams", StreamRequest{
		Label: "ev", Ranks: tr.Meta.Ranks,
		Window: stream.WindowSpec{CountN: 50},
	}, &view)

	// SSE subscriber attached before any window seals.
	sseReq, _ := http.NewRequest("GET", srv.URL+"/v1/streams/"+view.ID+"/events?sse=1", nil)
	sseResp, err := client.Do(sseReq)
	if err != nil {
		t.Fatal(err)
	}
	defer sseResp.Body.Close()
	sseEvents := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(sseResp.Body)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "event: ") {
				sseEvents <- strings.TrimPrefix(line, "event: ")
			}
		}
		close(sseEvents)
	}()

	postBytes(t, client, srv.URL+"/v1/streams/"+view.ID+"/bursts",
		encodeChunk(t, tr.Meta, bursts[:120]), nil)

	// Long-poll from the start: both sealed windows arrive in order.
	var poll struct {
		Events []streamEvent `json:"events"`
		Next   int64         `json:"next"`
		Closed bool          `json:"closed"`
	}
	r, err := client.Get(srv.URL + "/v1/streams/" + view.ID + "/events?after=0")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(r.Body).Decode(&poll)
	r.Body.Close()
	if len(poll.Events) != 2 || poll.Events[0].Delta.Window != 0 || poll.Events[1].Delta.Window != 1 {
		t.Fatalf("long-poll events %+v", poll.Events)
	}
	// A cursor past the head long-polls until the next seal.
	done := make(chan struct{})
	go func() {
		defer close(done)
		r, err := client.Get(srv.URL + "/v1/streams/" + view.ID + "/events?after=" +
			fmt.Sprint(poll.Next) + "&wait=30s")
		if err != nil {
			return
		}
		defer r.Body.Close()
		var p2 struct {
			Events []streamEvent `json:"events"`
		}
		json.NewDecoder(r.Body).Decode(&p2)
		if len(p2.Events) != 1 || p2.Events[0].Delta.Window != 2 {
			t.Errorf("long-poll follow-up %+v", p2.Events)
		}
	}()
	time.Sleep(50 * time.Millisecond)
	postBytes(t, client, srv.URL+"/v1/streams/"+view.ID+"/bursts",
		encodeChunk(t, tr.Meta, bursts[120:150]), nil)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("long-poll never woke")
	}

	postJSON(t, client, srv.URL+"/v1/streams/"+view.ID+"/finish", nil, nil)

	// The SSE subscriber saw one "window" event per seal, then "finish".
	var kinds []string
	timeout := time.After(30 * time.Second)
	for {
		var kind string
		var ok bool
		select {
		case kind, ok = <-sseEvents:
		case <-timeout:
			t.Fatalf("SSE timed out after %v", kinds)
		}
		if !ok {
			t.Fatalf("SSE closed after %v", kinds)
		}
		kinds = append(kinds, kind)
		if kind == "finish" {
			break
		}
	}
	windows := 0
	for _, k := range kinds {
		if k == "window" {
			windows++
		}
	}
	if windows != 3 || kinds[len(kinds)-1] != "finish" {
		t.Fatalf("SSE events %v", kinds)
	}
}

// TestStreamBackpressureAndLimits covers the explicit 429 paths: too
// many in-flight chunks on one stream, and too many resident sessions.
func TestStreamBackpressureAndLimits(t *testing.T) {
	s := newTest(t, Config{Workers: 1, StreamMaxSessions: 1, StreamMaxPending: 1})
	defer s.Shutdown(context.Background())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	client := srv.Client()

	tr, bursts := streamTestTrace(t, 5)
	var view StreamView
	resp := postJSON(t, client, srv.URL+"/v1/streams", StreamRequest{
		Label: "bp", Ranks: tr.Meta.Ranks, Window: stream.WindowSpec{CountN: 1000},
	}, &view)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}

	// Session cap: a second stream bounces with 429.
	r2 := postJSON(t, client, srv.URL+"/v1/streams", StreamRequest{
		Label: "bp2", Window: stream.WindowSpec{CountN: 10},
	}, nil)
	if r2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second create: %d, want 429", r2.StatusCode)
	}
	if r2.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Chunk backpressure: with the single slot occupied, a chunk bounces.
	e, _ := s.streams.get(view.ID)
	e.pending.Add(1)
	r3 := postBytes(t, client, srv.URL+"/v1/streams/"+view.ID+"/bursts",
		encodeChunk(t, tr.Meta, bursts[:5]), nil)
	if r3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("append under backpressure: %d, want 429", r3.StatusCode)
	}
	e.pending.Add(-1)
	if got := s.stm.backpressure.Value(); got != 2 {
		t.Fatalf("backpressure counter %d, want 2", got)
	}
	r4 := postBytes(t, client, srv.URL+"/v1/streams/"+view.ID+"/bursts",
		encodeChunk(t, tr.Meta, bursts[:5]), nil)
	if r4.StatusCode != http.StatusOK {
		t.Fatalf("append after backpressure cleared: %d", r4.StatusCode)
	}
}

// TestStreamValidationAndHealth covers the rejection paths and the
// stream sections of /healthz and /metrics.
func TestStreamValidationAndHealth(t *testing.T) {
	s := newTest(t, Config{Workers: 1})
	defer s.Shutdown(context.Background())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	client := srv.Client()

	bad := []StreamRequest{
		{Window: stream.WindowSpec{}},                               // no windowing
		{Window: stream.WindowSpec{CountN: 5, WindowNS: 100}},       // both modes
		{Window: stream.WindowSpec{CountN: 5}, Metrics: []string{"nope"}},
		{Window: stream.WindowSpec{CountN: 5}, ID: "bad/id"},
		{Window: stream.WindowSpec{CountN: 5}, Series: "bad series"},
	}
	for i, req := range bad {
		if r := postJSON(t, client, srv.URL+"/v1/streams", req, nil); r.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad request %d: status %d, want 400", i, r.StatusCode)
		}
	}

	tr, bursts := streamTestTrace(t, 9)
	var view StreamView
	postJSON(t, client, srv.URL+"/v1/streams", StreamRequest{
		ID: "dup", Label: "h", Ranks: tr.Meta.Ranks, Window: stream.WindowSpec{CountN: 64},
	}, &view)
	if r := postJSON(t, client, srv.URL+"/v1/streams", StreamRequest{
		ID: "dup", Window: stream.WindowSpec{CountN: 64},
	}, nil); r.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate id: status %d, want 409", r.StatusCode)
	}
	if r := postBytes(t, client, srv.URL+"/v1/streams/ghost/bursts", []byte("x"), nil); r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown stream append: %d, want 404", r.StatusCode)
	}

	postBytes(t, client, srv.URL+"/v1/streams/dup/bursts", encodeChunk(t, tr.Meta, bursts[:80]), nil)
	postJSON(t, client, srv.URL+"/v1/streams/dup/finish", nil, nil)
	if r := postJSON(t, client, srv.URL+"/v1/streams/dup/finish", nil, nil); r.StatusCode != http.StatusConflict {
		t.Fatalf("double finish: status %d, want 409", r.StatusCode)
	}
	if r := postBytes(t, client, srv.URL+"/v1/streams/dup/bursts", encodeChunk(t, tr.Meta, bursts[:5]), nil); r.StatusCode != http.StatusConflict {
		t.Fatalf("append after finish: status %d, want 409", r.StatusCode)
	}

	h := s.Healthz()
	if h.Streams.Sessions != 1 || h.Streams.WindowCloses < 2 || h.Streams.Bursts != 80 {
		t.Fatalf("healthz streams section %+v", h.Streams)
	}
	var found bool
	for _, sh := range h.Streams.PerStream {
		if sh.ID == "dup" && sh.Closed && sh.Windows == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("per-stream health missing: %+v", h.Streams.PerStream)
	}

	r, err := client.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	for _, m := range []string{
		"trackd_stream_sessions", "trackd_stream_bursts_total",
		"trackd_stream_window_closes_total", "trackd_stream_subscriber_lag",
		"trackd_stream_backpressure_total",
	} {
		if !strings.Contains(string(body), m) {
			t.Fatalf("/metrics missing %s", m)
		}
	}
}
