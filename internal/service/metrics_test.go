package service

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("jobs_total", "Jobs.")
	c.Inc()
	c.Add(2)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := "# HELP jobs_total Jobs.\n# TYPE jobs_total counter\njobs_total 3\n"
	if sb.String() != want {
		t.Fatalf("got:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestGaugeExposition(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("depth", "Depth.")
	g.Set(5)
	g.Add(-2)
	f := r.NewGaugeFunc("cap", "Capacity.", func() int64 { return 64 })
	if g.Value() != 3 || f.Value() != 64 {
		t.Fatalf("values %d, %d", g.Value(), f.Value())
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"# TYPE depth gauge\ndepth 3\n", "# TYPE cap gauge\ncap 64\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d, want 5", h.Count())
	}
	if h.Sum() != 56.05 {
		t.Fatalf("sum %g, want 56.05", h.Sum())
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Bucket counts are cumulative in the exposition format.
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_sum 56.05",
		"lat_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h", "H.", []float64{1})
	h.Observe(1) // le="1" is inclusive
	h.Observe(1.0000001)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `h_bucket{le="1"} 1`) {
		t.Fatalf("inclusive upper bound broken:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), `h_bucket{le="+Inf"} 2`) {
		t.Fatalf("+Inf bucket broken:\n%s", sb.String())
	}
}

func TestDuplicateMetricPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup", "First.")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewCounter("dup", "Second.")
}

func TestRegistrationOrderStable(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("zzz", "Z.")
	r.NewCounter("aaa", "A.")
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	if strings.Index(out, "zzz") > strings.Index(out, "aaa") {
		t.Fatal("exposition did not preserve registration order")
	}
	names := r.sortedNames()
	if len(names) != 2 || names[0] != "aaa" || names[1] != "zzz" {
		t.Fatalf("sortedNames %v", names)
	}
}

func TestMetricsConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c", "C.")
	g := r.NewGauge("g", "G.")
	h := r.NewHistogram("h", "H.", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || g.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("got c=%d g=%d h=%d, want 8000 each", c.Value(), g.Value(), h.Count())
	}
}
