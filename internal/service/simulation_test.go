package service

import (
	"bytes"
	"context"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"perftrack/internal/oracle"
	"perftrack/internal/trace"
)

// Deterministic whole-schedule simulation of the daemon + store: a seeded
// event scheduler drives submit / duplicate-burst / crash / restart
// interleavings against an in-process server, and after every quiescent
// point two invariants are enforced over the entire schedule:
//
//	no result lost      — once a key completed, every later submission
//	                      of it (same generation or after any number of
//	                      crash/restart cycles) resolves instantly with
//	                      byte-identical result bytes;
//	no double compute   — the pipeline runs at most once per distinct
//	                      key across the whole schedule, crashes
//	                      included: total executions over all server
//	                      generations equals the number of distinct keys
//	                      ever completed.
//
// This extends PR 2's singleflight test and PR 3's recovery tests from
// single-fault scenarios to thousands of seeded whole schedules, all
// under -race. The scheduler keeps a virtual clock (logical ticks, no
// wall time) so a failing schedule's event log reads as a reproducible
// timeline; rerunning the same seed replays the same schedule.

// simUploads builds the distinct upload requests the scheduler submits.
// Deliberately tiny traces (2 ranks × 2 iterations) keep one pipeline
// execution in the microsecond range so thousands of schedules fit in
// the test budget.
func simUploads(t *testing.T) []JobRequest {
	t.Helper()
	enc := func(tr *trace.Trace) string {
		var sb strings.Builder
		if err := trace.Write(&sb, tr); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	reqs := make([]JobRequest, 3)
	for i := range reqs {
		reqs[i] = JobRequest{
			Traces: []string{
				enc(oracle.GenTraces(uint64(100+i), fmt.Sprintf("u%da", i), 2, 2, 2+i%2)),
				enc(oracle.GenTraces(uint64(200+i), fmt.Sprintf("u%db", i), 2, 2, 2+i%2)),
			},
			Config: &ConfigSpec{Eps: 0.07, MinPts: 3},
		}
	}
	return reqs
}

// simSchedule is the state of one seeded schedule run.
type simSchedule struct {
	t    *testing.T
	seed uint64
	rng  *rand.Rand
	dir  string
	cfg  Config
	srv  *Server
	reqs []JobRequest

	clock     int64 // virtual time: one tick per scheduler event
	execPrior uint64
	pending   []*Job
	results   map[string][]byte // key -> first observed result bytes
	log       []string
}

func (s *simSchedule) tick(format string, args ...any) {
	s.clock++
	s.log = append(s.log, fmt.Sprintf("t=%03d %s", s.clock, fmt.Sprintf(format, args...)))
}

func (s *simSchedule) fail(format string, args ...any) {
	s.t.Helper()
	s.t.Fatalf("schedule seed %d:\n  %s\nevent log:\n  %s",
		s.seed, fmt.Sprintf(format, args...), strings.Join(s.log, "\n  "))
}

// submit issues one request, draining once and retrying if the bounded
// queue pushes back (the documented 429 client protocol).
func (s *simSchedule) submit(ri int) *Job {
	j, _, err := s.srv.Submit(s.reqs[ri])
	if err == ErrQueueFull {
		s.tick("queue full, draining")
		s.drain()
		j, _, err = s.srv.Submit(s.reqs[ri])
	}
	if err != nil {
		s.fail("submit req %d: %v", ri, err)
	}
	return j
}

// record verifies a terminal job and folds its result into the ledger.
func (s *simSchedule) record(j *Job) {
	result, state, errMsg := s.srv.Result(j)
	if state != StateDone {
		s.fail("job %s (key %.8s) state %s: %s", j.ID, j.Key, state, errMsg)
	}
	if prev, ok := s.results[j.Key]; ok {
		if !bytes.Equal(prev, result) {
			s.fail("key %.8s returned different bytes than first completion", j.Key)
		}
	} else {
		s.results[j.Key] = result
	}
}

// drain waits out all pending jobs and checks the global no-double-
// compute invariant at the quiescent point.
func (s *simSchedule) drain() {
	for _, j := range s.pending {
		if err := s.srv.Wait(context.Background(), j); err != nil {
			s.fail("wait: %v", err)
		}
		s.record(j)
	}
	s.pending = s.pending[:0]
	total := s.execPrior + s.srv.m.jobsExecuted.Value()
	if total != uint64(len(s.results)) {
		s.fail("executions %d != distinct completed keys %d (lost or double-computed work)",
			total, len(s.results))
	}
}

// crashRestart shuts the server down (durable state only survives via
// the store) and brings up a fresh one over the same directory, then
// proves no completed result was lost: every known key must resolve
// instantly, as a hit, with identical bytes.
func (s *simSchedule) crashRestart() {
	s.drain()
	s.execPrior += s.srv.m.jobsExecuted.Value()
	if err := s.srv.Shutdown(context.Background()); err != nil {
		s.fail("shutdown: %v", err)
	}
	srv, err := New(s.cfg)
	if err != nil {
		s.fail("restart: %v", err)
	}
	s.srv = srv
	s.tick("crash+restart (gen executions so far: %d)", s.execPrior)

	for ri := range s.reqs {
		j, _, err := s.srv.Submit(s.reqs[ri])
		if err != nil {
			s.fail("post-restart submit req %d: %v", ri, err)
		}
		if _, ok := s.results[j.Key]; !ok {
			// Never completed before the crash; it may legitimately
			// compute now.
			s.pending = append(s.pending, j)
			continue
		}
		select {
		case <-j.done:
		default:
			s.fail("key %.8s completed before crash but did not resolve instantly after restart", j.Key)
		}
		if !s.srv.View(j).CacheHit {
			s.fail("key %.8s resolved after restart but not marked as a hit", j.Key)
		}
		s.record(j)
	}
	s.drain()
}

func runSchedule(t *testing.T, seed uint64, baseDir string, reqs []JobRequest) {
	dir := filepath.Join(baseDir, fmt.Sprintf("s%d", seed))
	s := &simSchedule{
		t:    t,
		seed: seed,
		rng:  rand.New(rand.NewPCG(seed, 0x51a0)),
		dir:  dir,
		reqs: reqs,
		cfg: Config{
			Workers:    2,
			QueueDepth: 4,
			// A 2-entry cache in front of 3 keys forces evictions, so
			// schedules also exercise the store read-through path while
			// the server is up, not only across restarts.
			CacheMaxEntries: 2,
			StoreDir:        dir,
			StoreSyncEvery:  64,
		},
		results: map[string][]byte{},
	}
	srv, err := New(s.cfg)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	s.srv = srv
	defer func() {
		s.srv.Shutdown(context.Background())
		os.RemoveAll(dir)
	}()

	crashes := 0
	nOps := 6 + s.rng.IntN(6)
	for op := 0; op < nOps; op++ {
		ri := s.rng.IntN(len(s.reqs))
		switch k := s.rng.IntN(10); {
		case k < 4: // submit and wait
			s.tick("submit+wait req %d", ri)
			j := s.submit(ri)
			s.pending = append(s.pending, j)
			s.drain()
		case k < 7: // submit asynchronously, poll later
			s.tick("submit async req %d", ri)
			s.pending = append(s.pending, s.submit(ri))
		case k < 9: // concurrent duplicate burst
			s.tick("duplicate burst req %d", ri)
			s.drain()
			_, seen := s.results[keyOfReq(s, ri)]
			before := s.srv.m.jobsExecuted.Value()
			a := s.submit(ri)
			b := s.submit(ri)
			s.pending = append(s.pending, a, b)
			s.drain()
			delta := s.srv.m.jobsExecuted.Value() - before
			if seen && delta != 0 {
				s.fail("duplicate burst on completed key executed %d times", delta)
			}
			if !seen && delta != 1 {
				s.fail("duplicate burst on fresh key executed %d times, want exactly 1", delta)
			}
			ra, _, _ := s.srv.Result(a)
			rb, _, _ := s.srv.Result(b)
			if !bytes.Equal(ra, rb) {
				s.fail("duplicate submissions returned different bytes")
			}
		default: // crash and restart
			if crashes >= 2 {
				s.tick("crash budget spent, submitting instead (req %d)", ri)
				s.pending = append(s.pending, s.submit(ri))
				continue
			}
			crashes++
			s.crashRestart()
		}
	}
	s.crashRestart() // final: drain, crash, prove everything survives
}

// keyOfReq returns the cache key of request ri as the server would
// compute it (resolve is deterministic).
func keyOfReq(s *simSchedule, ri int) string {
	spec, err := resolve(s.reqs[ri])
	if err != nil {
		s.fail("resolve req %d: %v", ri, err)
	}
	return spec.key
}

func TestDeterministicSimulationSchedules(t *testing.T) {
	schedules := uint64(1100)
	if testing.Short() {
		schedules = 120
	}
	base := t.TempDir()
	reqs := simUploads(t)
	for seed := uint64(0); seed < schedules; seed++ {
		runSchedule(t, seed, base, reqs)
	}
}
