package service

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Dependency-free metrics in the Prometheus text exposition format.
// trackd must expose its operational state (queue depth, cache hit rate,
// per-stage latency) to standard scrapers without pulling the Prometheus
// client library into a repo that vendors nothing; counters, gauges and
// fixed-bucket histograms are all the daemon needs, so they are ~150
// lines here instead of a dependency.

// Counter is a monotonically increasing metric.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) write(w io.Writer) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
		c.name, c.help, c.name, c.name, c.v.Load())
	return err
}

// Gauge is a metric that can go up and down. When fn is set the gauge is
// computed at scrape time (e.g. current queue depth) instead of tracked.
type Gauge struct {
	name, help string
	v          atomic.Int64
	fn         func() int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add increments (or with negative n, decrements) the value.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g.fn != nil {
		return g.fn()
	}
	return g.v.Load()
}

func (g *Gauge) write(w io.Writer) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n",
		g.name, g.help, g.name, g.name, g.Value())
	return err
}

// DefBuckets are latency buckets in seconds spanning sub-millisecond
// cache hits to multi-minute studies.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// Histogram observes value distributions over fixed buckets.
type Histogram struct {
	name, help string
	buckets    []float64 // upper bounds, ascending

	mu    sync.Mutex
	count uint64
	sum   float64
	in    []uint64 // cumulative counts are computed at write time
}

// Observe records one value (typically seconds of latency).
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	for i, ub := range h.buckets {
		if v <= ub {
			h.in[i]++
			return
		}
	}
	// Falls into the implicit +Inf bucket only.
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

func formatBound(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func (h *Histogram) write(w io.Writer) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name); err != nil {
		return err
	}
	var cum uint64
	for i, ub := range h.buckets {
		cum += h.in[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, formatBound(ub), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, h.count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", h.name, strconv.FormatFloat(h.sum, 'g', -1, 64)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", h.name, h.count)
	return err
}

type collector interface{ write(io.Writer) error }

// Registry holds the daemon's metrics and renders them for scraping.
type Registry struct {
	mu    sync.Mutex
	names []string
	byN   map[string]collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byN: map[string]collector{}}
}

func (r *Registry) register(name string, c collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byN[name]; dup {
		panic("service: duplicate metric " + name)
	}
	r.names = append(r.names, name)
	r.byN[name] = c
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(name, c)
	return c
}

// NewGauge registers and returns a tracked gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(name, g)
	return g
}

// NewGaugeFunc registers a gauge computed at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() int64) *Gauge {
	g := &Gauge{name: name, help: help, fn: fn}
	r.register(name, g)
	return g
}

// NewHistogram registers and returns a histogram over the given bucket
// upper bounds (nil selects DefBuckets).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	h := &Histogram{name: name, help: help, buckets: buckets, in: make([]uint64, len(buckets))}
	r.register(name, h)
	return h
}

// WritePrometheus renders every registered metric in registration order
// (stable output makes the endpoint diffable in tests).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	byN := make(map[string]collector, len(r.byN))
	for k, v := range r.byN {
		byN[k] = v
	}
	r.mu.Unlock()
	for _, n := range names {
		if err := byN[n].write(w); err != nil {
			return err
		}
	}
	return nil
}

// sortedNames returns the registered metric names, sorted (test helper).
func (r *Registry) sortedNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]string(nil), r.names...)
	sort.Strings(out)
	return out
}
