package service

// perfdb wiring: the durable result store behind the LRU cache, and the
// trajectory/regression HTTP surface built on top of it.
//
// The cache stays the hot path; perfdb is the layer under it. Every
// completed analysis is appended to the store, and a cache miss consults
// the store before scheduling a pipeline execution, so a daemon restart
// loses no results. Results submitted with a series name accumulate into
// named run histories that /v1/series/{name}/trajectories chains into
// cross-run trajectories and /v1/series/{name}/regressions judges with
// the changepoint detector.

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"perftrack/internal/store"
	"perftrack/internal/trajectory"
)

type storeMetrics struct {
	hits               *Counter
	appendErrors       *Counter
	fsync              *Histogram
	trajectoryRequests *Counter
	regressionChecks   *Counter
	regressionsFlagged *Counter
}

// openStore opens the perfdb directory and registers its metrics. Called
// from New when Config.StoreDir is set.
func (s *Server) openStore() error {
	r := s.reg
	s.sm = storeMetrics{
		hits:               r.NewCounter("trackd_store_hits_total", "Cache misses served from the persistent result store."),
		appendErrors:       r.NewCounter("trackd_store_append_errors_total", "Failed appends to the persistent result store."),
		fsync:              r.NewHistogram("trackd_store_fsync_seconds", "Latency of store fsync batches.", nil),
		trajectoryRequests: r.NewCounter("trackd_trajectory_requests_total", "Series trajectory chainings served."),
		regressionChecks:   r.NewCounter("trackd_regression_checks_total", "Series regression detections served."),
		regressionsFlagged: r.NewCounter("trackd_regressions_flagged_total", "Notable verdicts (regressed/improved/vanished/new) across all regression checks."),
	}
	st, err := store.Open(s.cfg.StoreDir, store.Options{
		MaxSegmentBytes: s.cfg.StoreMaxSegmentBytes,
		SyncEvery:       s.cfg.StoreSyncEvery,
		OnFsync:         func(d time.Duration) { s.sm.fsync.Observe(d.Seconds()) },
		FS:              s.cfg.StoreFS,
	})
	if err != nil {
		return err
	}
	s.store = st
	r.NewGaugeFunc("trackd_store_records", "Live records in the persistent store.", func() int64 { return int64(st.Stats().Records) })
	r.NewGaugeFunc("trackd_store_segments", "Segment files in the persistent store.", func() int64 { return int64(st.Stats().Segments) })
	r.NewGaugeFunc("trackd_store_bytes", "On-disk bytes of the persistent store.", func() int64 { return st.Stats().Bytes })
	r.NewGaugeFunc("trackd_store_superseded", "Superseded records awaiting compaction.", func() int64 { return int64(st.Stats().Superseded) })
	r.NewGaugeFunc("trackd_store_appends", "Cumulative appends since open.", func() int64 { return int64(st.Stats().Appends) })
	r.NewGaugeFunc("trackd_store_fsyncs", "Cumulative fsyncs since open.", func() int64 { return int64(st.Stats().Fsyncs) })
	r.NewGaugeFunc("trackd_store_compactions", "Cumulative compactions since open.", func() int64 { return int64(st.Stats().Compactions) })
	return nil
}

// Store exposes the persistent store (nil when disabled).
func (s *Server) Store() *store.Store { return s.store }

// appendLocked files one result in the store; callers hold s.mu. Append
// failures are counted, not fatal: the result is still served from memory.
func (s *Server) appendLocked(spec *jobSpec, payload []byte) {
	err := s.store.Append(store.Record{
		Key:      spec.key,
		Series:   spec.series,
		Label:    spec.runLabel,
		UnixNano: time.Now().UnixNano(),
		Payload:  payload,
	})
	if err != nil {
		s.sm.appendErrors.Inc()
	}
}

// storeGetLocked consults perfdb on a cache miss; callers hold s.mu. A
// hit repopulates the cache (read-through).
func (s *Server) storeGetLocked(spec *jobSpec) ([]byte, bool) {
	if s.store == nil {
		return nil, false
	}
	payload, ok, err := s.store.Get(spec.key)
	if err != nil || !ok {
		return nil, false
	}
	s.sm.hits.Inc()
	s.cache.Put(spec.key, payload)
	s.refileLocked(spec, payload)
	return payload, true
}

// refileLocked records series membership for an already-stored result:
// resubmitting a known input under a (different) series name must still
// land it in that series' history. Callers hold s.mu.
func (s *Server) refileLocked(spec *jobSpec, payload []byte) {
	if s.store == nil || spec.series == "" {
		return
	}
	if m, ok := s.store.GetMeta(spec.key); ok && m.Series == spec.series && m.Label == spec.runLabel {
		return
	}
	s.appendLocked(spec, payload)
}

// ---- HTTP layer ----

func (s *Server) requireStore(w http.ResponseWriter) bool {
	if s.store == nil {
		writeError(w, http.StatusServiceUnavailable, "persistent store not enabled (start trackd with -store)")
		return false
	}
	return true
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	if !s.requireStore(w) {
		return
	}
	series := r.URL.Query().Get("series")
	metas := s.store.List()
	if series != "" {
		metas = s.store.Series(series)
	}
	if s.mesh != nil && !viaMesh(r) {
		// Cluster-wide listing: any node answers for the whole corpus.
		s.mm.scatters.Inc()
		metas = mergeMetas(metas, s.scatterMetas(r.Context(), series))
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"results": metas,
		"stats":   s.store.Stats(),
	})
}

func (s *Server) handleResultPayload(w http.ResponseWriter, r *http.Request) {
	if !s.requireStore(w) {
		return
	}
	key, err := s.store.ResolveKey(r.PathValue("key"))
	if err == nil {
		payload, ok, gerr := s.store.Get(key)
		if gerr != nil {
			writeError(w, http.StatusInternalServerError, gerr.Error())
			return
		}
		if ok {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("X-Store-Key", key)
			w.Write(payload)
			return
		}
	}
	// Local miss: in cluster mode the record may live on a peer.
	if s.mesh != nil && !viaMesh(r) {
		s.mm.scatters.Inc()
		if payload, fullKey, ok := s.clusterResultLookup(r.Context(), r.PathValue("key")); ok {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("X-Store-Key", fullKey)
			w.Write(payload)
			return
		}
	}
	if err == nil {
		err = fmt.Errorf("no such result")
	}
	writeError(w, http.StatusNotFound, err.Error())
}

func (s *Server) handleSeriesList(w http.ResponseWriter, r *http.Request) {
	if !s.requireStore(w) {
		return
	}
	names := s.store.SeriesNames()
	if s.mesh != nil && !viaMesh(r) {
		s.mm.scatters.Inc()
		names = s.scatterSeriesNames(r.Context(), names)
	}
	// The per-stream raw series are crash-resume plumbing, not run
	// histories; keep them out of the public catalog.
	public := names[:0]
	for _, n := range names {
		if !strings.HasPrefix(n, streamShadowPrefix) {
			public = append(public, n)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"series": public})
}

// loadSeriesRuns reads every stored result of a series, oldest first, and
// reduces each to its tracked objects.
func (s *Server) loadSeriesRuns(name string) ([]trajectory.Run, error) {
	metas := s.store.Series(name)
	runs := make([]trajectory.Run, 0, len(metas))
	for _, m := range metas {
		payload, ok, err := s.store.Get(m.Key)
		if err != nil {
			return nil, fmt.Errorf("reading %s: %w", m.Key, err)
		}
		if !ok {
			continue // compacted away between List and Get
		}
		run, err := trajectory.ParseRun(payload, m.Key, m.Label, m.UnixNano)
		if err != nil {
			return nil, err
		}
		runs = append(runs, run)
	}
	return runs, nil
}

// runHeads summarises a series' runs for API responses.
func runHeads(runs []trajectory.Run) []map[string]any {
	out := make([]map[string]any, len(runs))
	for i, r := range runs {
		out[i] = map[string]any{"key": r.Key, "label": r.Label, "unixNano": r.UnixNano, "objects": len(r.Objects)}
	}
	return out
}

func qFloat(r *http.Request, name string) float64 {
	v, err := strconv.ParseFloat(r.URL.Query().Get(name), 64)
	if err != nil {
		return 0
	}
	return v
}

func qInt(r *http.Request, name string) int {
	v, err := strconv.Atoi(r.URL.Query().Get(name))
	if err != nil {
		return 0
	}
	return v
}

func linkConfigFromQuery(r *http.Request) trajectory.LinkConfig {
	return trajectory.LinkConfig{
		MaxDist:  qFloat(r, "maxDist"),
		MinShare: qFloat(r, "linkMinShare"),
	}
}

func detectorConfigFromQuery(r *http.Request) trajectory.DetectorConfig {
	cfg := trajectory.DetectorConfig{
		Metric:    r.URL.Query().Get("metric"),
		Window:    qInt(r, "window"),
		MinPoints: qInt(r, "minPoints"),
		MADs:      qFloat(r, "mads"),
		MinRel:    qFloat(r, "minRel"),
		MinShare:  qFloat(r, "minShare"),
	}
	if v := r.URL.Query().Get("higherIsWorse"); v != "" {
		lower := v != "true" && v != "1"
		cfg.LowerIsWorse = &lower
	}
	return cfg
}

func (s *Server) handleTrajectories(w http.ResponseWriter, r *http.Request) {
	if !s.requireStore(w) {
		return
	}
	name := r.PathValue("name")
	runs, err := s.seriesRuns(r, name)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if len(runs) == 0 {
		writeError(w, http.StatusNotFound, "no such series")
		return
	}
	s.sm.trajectoryRequests.Inc()
	trajs := trajectory.Chain(runs, linkConfigFromQuery(r))
	writeJSON(w, http.StatusOK, map[string]any{
		"series":       name,
		"runs":         runHeads(runs),
		"trajectories": trajs,
	})
}

func (s *Server) handleRegressions(w http.ResponseWriter, r *http.Request) {
	if !s.requireStore(w) {
		return
	}
	name := r.PathValue("name")
	runs, err := s.seriesRuns(r, name)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if len(runs) == 0 {
		writeError(w, http.StatusNotFound, "no such series")
		return
	}
	s.sm.regressionChecks.Inc()
	trajs := trajectory.Chain(runs, linkConfigFromQuery(r))
	verdicts := trajectory.Detect(runs, trajs, detectorConfigFromQuery(r))
	notable := 0
	for _, v := range verdicts {
		if v.Notable() {
			notable++
		}
	}
	s.sm.regressionsFlagged.Add(uint64(notable))
	writeJSON(w, http.StatusOK, map[string]any{
		"series":   name,
		"runs":     runHeads(runs),
		"verdicts": verdicts,
		"notable":  notable,
	})
}
