package service

import (
	"container/list"
	"sync"
)

// Cache is the content-addressed result store: keys are hex SHA-256
// digests of the canonicalized inputs (traces + config + metric space),
// values are the byte-deterministic JSON exports those inputs produce.
// Because the pipeline is a pure function of the key's preimage, a hit
// can be served without any validation — identical key, identical bytes.
//
// Eviction is LRU, bounded both by entry count and by total value bytes,
// so one giant study cannot evict the daemon into swap and a million tiny
// ones cannot grow the map unboundedly.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	ll         *list.List // front = most recently used
	items      map[string]*list.Element

	// onEvict, when set, observes each eviction (metrics hook).
	onEvict func()
}

type cacheEntry struct {
	key string
	val []byte
}

// NewCache returns a cache bounded by maxEntries entries and maxBytes
// total value bytes. Zero or negative bounds mean "no bound on that
// axis"; both unbounded is allowed but unwise in a daemon.
func NewCache(maxEntries int, maxBytes int64) *Cache {
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      map[string]*list.Element{},
	}
}

// Get returns the cached value for key and marks it most recently used.
// The returned slice is shared: callers must treat it as immutable.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores val under key (replacing any previous value) and evicts
// least-recently-used entries until the bounds hold again. A value larger
// than maxBytes on its own is stored and immediately becomes the only
// entry candidate for the next eviction; it is not rejected, because the
// job already paid for the computation.
func (c *Cache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.bytes += int64(len(val)) - int64(len(ent.val))
		ent.val = val
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
		c.bytes += int64(len(val))
	}
	for c.over() && c.ll.Len() > 1 {
		c.evictOldest()
	}
}

func (c *Cache) over() bool {
	if c.maxEntries > 0 && c.ll.Len() > c.maxEntries {
		return true
	}
	if c.maxBytes > 0 && c.bytes > c.maxBytes {
		return true
	}
	return false
}

func (c *Cache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	ent := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.items, ent.key)
	c.bytes -= int64(len(ent.val))
	if c.onEvict != nil {
		c.onEvict()
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the total size of cached values.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
