package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"time"

	"perftrack/internal/apps"
	"perftrack/internal/cluster"
	"perftrack/internal/core"
	"perftrack/internal/metrics"
	"perftrack/internal/store"
	"perftrack/internal/trace"
)

// JobState is the lifecycle of a submitted analysis.
type JobState string

const (
	// StateQueued means the job is waiting for a worker.
	StateQueued JobState = "queued"
	// StateRunning means a worker is executing the pipeline.
	StateRunning JobState = "running"
	// StateDone means the result is available.
	StateDone JobState = "done"
	// StateFailed means the pipeline returned an error (including
	// per-job timeouts).
	StateFailed JobState = "failed"
	// StateCanceled means the daemon shut down before the job finished.
	StateCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobRequest is the POST /v1/jobs body: either a catalog study by name or
// an uploaded trace sequence (text or binary columnar), plus optional
// pipeline configuration. Exactly one of Study, Traces and TracesBin
// must be set.
type JobRequest struct {
	// Study names a catalog study ("WRF", "Synthetic", ...).
	Study string `json:"study,omitempty"`
	// Traces holds one perftrack-text-format trace per experiment.
	Traces []string `json:"traces,omitempty"`
	// TracesBin holds one binary columnar (colbin) trace per experiment.
	// JSON marshals each as base64, which is what lets a binary
	// submission survive the journal intent and mesh forwarding paths
	// unchanged. Raw colbin POST bodies are unpacked into this field at
	// the HTTP boundary.
	TracesBin [][]byte `json:"tracesBin,omitempty"`
	// Windows > 1 splits a single trace (or single-run study) into time
	// windows, the paper's evolution mode.
	Windows int `json:"windows,omitempty"`
	// Metrics names the axes of the performance space (default: the
	// study's own, or IPC × Instructions for uploads).
	Metrics []string `json:"metrics,omitempty"`
	// Config overrides individual pipeline knobs.
	Config *ConfigSpec `json:"config,omitempty"`
	// Lenient decodes uploaded traces tolerating malformed lines.
	Lenient bool `json:"lenient,omitempty"`
	// Series, when set, files the stored result under a named run
	// series in the persistent store — the history the trajectory and
	// regression endpoints mine. RunLabel names this run inside the
	// series (defaults to the input description). Neither influences
	// the cache key: the result bytes are a pure function of the
	// inputs; the series only says where they are filed.
	Series   string `json:"series,omitempty"`
	RunLabel string `json:"runLabel,omitempty"`
}

// ConfigSpec is the JSON-friendly subset of core.Config a client may
// override. Zero-valued fields inherit the base configuration.
type ConfigSpec struct {
	Eps                float64 `json:"eps,omitempty"`
	MinPts             int     `json:"minPts,omitempty"`
	MinClusterWeight   float64 `json:"minClusterWeight,omitempty"`
	MaxClusters        int     `json:"maxClusters,omitempty"`
	MinBurstDurationNS int64   `json:"minBurstDurationNs,omitempty"`
	TopDurationFrac    float64 `json:"topDurationFrac,omitempty"`
	MinCorrelation     float64 `json:"minCorrelation,omitempty"`
	SPMDThreshold      float64 `json:"spmdThreshold,omitempty"`
	SequenceThreshold  float64 `json:"sequenceThreshold,omitempty"`
	DisableSPMD        bool    `json:"disableSpmd,omitempty"`
	DisableCallstack   bool    `json:"disableCallstack,omitempty"`
	DisableSequence    bool    `json:"disableSequence,omitempty"`
}

// overlay applies the non-zero fields onto base.
func (cs *ConfigSpec) overlay(base core.Config) core.Config {
	if cs == nil {
		return base
	}
	if cs.Eps != 0 {
		base.Cluster.Eps = cs.Eps
	}
	if cs.MinPts != 0 {
		base.Cluster.MinPts = cs.MinPts
	}
	if cs.MinClusterWeight != 0 {
		base.Cluster.MinClusterWeight = cs.MinClusterWeight
	}
	if cs.MaxClusters != 0 {
		base.Cluster.MaxClusters = cs.MaxClusters
	}
	if cs.MinBurstDurationNS != 0 {
		base.MinBurstDurationNS = cs.MinBurstDurationNS
	}
	if cs.TopDurationFrac != 0 {
		base.TopDurationFrac = cs.TopDurationFrac
	}
	if cs.MinCorrelation != 0 {
		base.MinCorrelation = cs.MinCorrelation
	}
	if cs.SPMDThreshold != 0 {
		base.SPMDThreshold = cs.SPMDThreshold
	}
	if cs.SequenceThreshold != 0 {
		base.SequenceThreshold = cs.SequenceThreshold
	}
	if cs.DisableSPMD {
		base.DisableSPMD = true
	}
	if cs.DisableCallstack {
		base.DisableCallstack = true
	}
	if cs.DisableSequence {
		base.DisableSequence = true
	}
	return base
}

// jobSpec is a validated, runnable request: the resolved configuration,
// metric space and input (study or pre-parsed traces), plus the
// content-addressed cache key.
type jobSpec struct {
	study        *apps.Study
	traces       []*trace.Trace
	windows      int
	cfg          core.Config
	ms           []metrics.Metric
	linesSkipped int
	key          string
	label        string // human-readable input description
	series       string // perfdb series name ("" = unfiled)
	runLabel     string // this run's name inside the series
}

// resolve validates the request and computes its cache key, without a
// conversion cache (tests and embedders; the daemon path goes through
// resolveThrough so repeat text uploads hit the colbin cache).
func resolve(req JobRequest) (*jobSpec, error) {
	return resolveThrough(req, nil)
}

// resolveThrough is resolve with a convert-on-first-read trace cache:
// each uploaded text trace is keyed by the SHA-256 of its raw bytes (plus
// decode mode) and parsed from its cached binary columnar conversion when
// one exists, so the text parse is paid exactly once per distinct upload.
func resolveThrough(req JobRequest, tc *store.TraceCache) (*jobSpec, error) {
	sources := 0
	if req.Study != "" {
		sources++
	}
	if len(req.Traces) > 0 {
		sources++
	}
	if len(req.TracesBin) > 0 {
		sources++
	}
	if sources != 1 {
		return nil, fmt.Errorf("exactly one of \"study\" and \"traces\" (or \"tracesBin\") must be set")
	}
	if req.Windows < 0 || req.Windows > 1024 {
		return nil, fmt.Errorf("windows %d outside [0, 1024]", req.Windows)
	}
	spec := &jobSpec{windows: req.Windows}

	if req.Study != "" {
		st, err := apps.ByName(req.Study)
		if err != nil {
			return nil, err
		}
		if req.Windows > 1 {
			st.Windows = req.Windows
		}
		spec.study = &st
		spec.cfg = st.Track
		spec.label = "study:" + st.Name
	} else {
		spec.cfg = core.Config{
			Cluster: cluster.Config{Eps: 0.07, MinPts: 5, MinClusterWeight: 0.002},
		}
		opts := trace.DecodeOptions{Strict: !req.Lenient}
		for i, text := range req.Traces {
			t, diag, err := parseTextCached([]byte(text), opts, tc)
			if err != nil {
				return nil, fmt.Errorf("trace %d: %w", i, err)
			}
			spec.linesSkipped += diag.Skipped()
			spec.traces = append(spec.traces, t)
		}
		for i, raw := range req.TracesBin {
			t, diag, err := trace.DecodeColbinWith(raw, opts)
			if err != nil {
				return nil, fmt.Errorf("trace %d: %w", i, err)
			}
			spec.linesSkipped += diag.Skipped()
			spec.traces = append(spec.traces, t)
		}
		if req.Windows > 1 && len(spec.traces) != 1 {
			return nil, fmt.Errorf("windows needs exactly one trace, got %d", len(spec.traces))
		}
		if req.Windows <= 1 && len(spec.traces) < 2 {
			return nil, fmt.Errorf("tracking needs at least two traces (or one trace with windows), got %d", len(spec.traces))
		}
		spec.label = fmt.Sprintf("upload:%d traces", len(spec.traces))
	}

	spec.cfg = req.Config.overlay(spec.cfg)
	if err := spec.cfg.Validate(); err != nil {
		return nil, err
	}

	spec.ms = spec.cfg.Metrics
	if len(req.Metrics) > 0 {
		spec.ms = spec.ms[:0:0]
		for _, name := range req.Metrics {
			m, ok := metrics.ByName(name)
			if !ok {
				return nil, fmt.Errorf("unknown metric %q", name)
			}
			spec.ms = append(spec.ms, m)
		}
		spec.cfg.Metrics = spec.ms
	}
	if len(spec.ms) == 0 {
		spec.ms = metrics.DefaultSpace()
	}

	if err := validSeries(req.Series); err != nil {
		return nil, err
	}
	spec.series = req.Series
	spec.runLabel = req.RunLabel
	if spec.runLabel == "" {
		spec.runLabel = spec.label
	}

	spec.key = spec.fingerprint()
	return spec, nil
}

// parseTextCached parses one uploaded text trace, going through the
// binary conversion cache when one is available. Only clean parses are
// cached (a quarantining parse has diagnostics the binary form does not
// carry), and a cached entry that fails its CRC-checked binary decode is
// deleted and re-derived from the text — the cache can accelerate but
// never change an answer.
func parseTextCached(raw []byte, opts trace.DecodeOptions, tc *store.TraceCache) (*trace.Trace, trace.DecodeDiagnostics, error) {
	if tc == nil {
		return trace.ReadWith(bytes.NewReader(raw), opts)
	}
	key := store.TraceKey(raw, !opts.Strict)
	if bin, ok := tc.Get(key); ok {
		if t, err := trace.DecodeColbin(bin); err == nil {
			return t, trace.DecodeDiagnostics{}, nil
		}
		tc.Delete(key) // poisoned entry: rebuild from text below
	}
	t, diag, err := trace.ReadWith(bytes.NewReader(raw), opts)
	if err != nil {
		return nil, diag, err
	}
	if diag.Summary() == "" {
		tc.Put(key, trace.EncodeColbin(t)) // best-effort: a failed Put just re-parses next time
	}
	return t, diag, nil
}

// validSeries keeps series names short and URL-path-safe, since they
// appear as a path segment in /v1/series/{name}/....
func validSeries(name string) error {
	if len(name) > 128 {
		return fmt.Errorf("series name longer than 128 bytes")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("series name %q: only [A-Za-z0-9._-] allowed", name)
		}
	}
	return nil
}

// fingerprint derives the content-addressed cache key: SHA-256 over the
// canonicalized inputs (study name, or the canonical hashes of the
// uploaded traces) and every pipeline knob that can influence the output
// bytes. Catalog studies are deterministic by construction (seeded
// simulation), so the name plus configuration addresses their result.
func (s *jobSpec) fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "perftrack-job-v1\n")
	if s.study != nil {
		fmt.Fprintf(h, "study=%s\n", s.study.Name)
	} else {
		seq := trace.HashSequence(s.traces)
		fmt.Fprintf(h, "traces=%s\n", hex.EncodeToString(seq[:]))
	}
	fmt.Fprintf(h, "windows=%d\n", s.windows)
	names := make([]string, len(s.ms))
	for i, m := range s.ms {
		names[i] = m.Name
	}
	fmt.Fprintf(h, "metrics=%s\n", strings.Join(names, ","))
	c := s.cfg
	fmt.Fprintf(h, "cluster=%s,%g,%d,%g,%d\n",
		c.Cluster.Algorithm, c.Cluster.Eps, c.Cluster.MinPts,
		c.Cluster.MinClusterWeight, c.Cluster.MaxClusters)
	fmt.Fprintf(h, "filter=%d,%g\n", c.MinBurstDurationNS, c.TopDurationFrac)
	fmt.Fprintf(h, "thresholds=%g,%g,%d,%g\n",
		c.MinCorrelation, c.SPMDThreshold, c.SPMDTaskSample, c.SequenceThreshold)
	fmt.Fprintf(h, "disable=%t,%t,%t\n", c.DisableSPMD, c.DisableCallstack, c.DisableSequence)
	return hex.EncodeToString(h.Sum(nil))
}

// Job is one tracked analysis. Mutable fields are guarded by the server
// mutex; done is closed exactly once when the job reaches a terminal
// state, which is what waiters select on.
type Job struct {
	ID   string
	Key  string
	spec *jobSpec

	state    JobState
	cacheHit bool
	// journaled marks that an intent entry gates this job's resolution.
	// It is set only before the job is published to the queue and the
	// inflight table and never written afterwards, so workers may read
	// it without the server mutex.
	journaled bool
	// remote marks a job forwarded to its ring owner on another node;
	// owner names that node. Like journaled, both are set before the job
	// is published and immutable afterwards.
	remote      bool
	owner       string
	errMsg      string
	result      []byte
	diagnostics *core.Diagnostics

	submitted time.Time
	started   time.Time
	finished  time.Time

	done chan struct{}
}

// JobView is the JSON representation of a job's state.
type JobView struct {
	ID          string   `json:"id"`
	State       JobState `json:"state"`
	Input       string   `json:"input"`
	Key         string   `json:"key"`
	CacheHit    bool     `json:"cacheHit"`
	Error       string   `json:"error,omitempty"`
	Owner       string   `json:"owner,omitempty"`
	SubmittedAt string   `json:"submittedAt"`
	StartedAt   string   `json:"startedAt,omitempty"`
	FinishedAt  string   `json:"finishedAt,omitempty"`
	DurationMS  float64  `json:"durationMs,omitempty"`
	Diagnostics string   `json:"diagnostics,omitempty"`
	ResultURL   string   `json:"resultUrl,omitempty"`
}

// view snapshots the job under the server mutex.
func (j *Job) view() JobView {
	v := JobView{
		ID:          j.ID,
		State:       j.state,
		Input:       j.spec.label,
		Key:         j.Key,
		CacheHit:    j.cacheHit,
		Error:       j.errMsg,
		Owner:       j.owner,
		SubmittedAt: j.submitted.UTC().Format(time.RFC3339Nano),
	}
	if !j.started.IsZero() {
		v.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
		ref := j.started
		if ref.IsZero() {
			ref = j.submitted
		}
		v.DurationMS = float64(j.finished.Sub(ref)) / float64(time.Millisecond)
	}
	if j.diagnostics != nil {
		v.Diagnostics = j.diagnostics.Summary()
	}
	if j.state == StateDone {
		v.ResultURL = "/v1/jobs/" + j.ID + "/result"
	}
	return v
}

// sortViews orders job views newest-first for listings.
func sortViews(vs []JobView) {
	sort.Slice(vs, func(i, j int) bool { return vs[i].SubmittedAt > vs[j].SubmittedAt })
}
