package service

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheEntryBound(t *testing.T) {
	c := NewCache(3, 0)
	for i := 0; i < 5; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	if c.Len() != 3 {
		t.Fatalf("len %d, want 3", c.Len())
	}
	// Oldest two were evicted.
	for i := 0; i < 2; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); ok {
			t.Fatalf("k%d survived eviction", i)
		}
	}
	for i := 2; i < 5; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("k%d missing", i)
		}
	}
}

func TestCacheByteBound(t *testing.T) {
	evictions := 0
	c := NewCache(0, 100)
	c.onEvict = func() { evictions++ }
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("k%d", i), make([]byte, 40))
	}
	if c.Bytes() > 100 {
		t.Fatalf("bytes %d over bound 100", c.Bytes())
	}
	if c.Len() != 2 {
		t.Fatalf("len %d, want 2", c.Len())
	}
	if evictions != 2 {
		t.Fatalf("evictions %d, want 2", evictions)
	}
}

func TestCacheOversizeValueStillStored(t *testing.T) {
	// A value bigger than the byte bound is kept (the computation is
	// already paid for); it just becomes the lone entry.
	c := NewCache(0, 10)
	c.Put("big", make([]byte, 1000))
	if _, ok := c.Get("big"); !ok {
		t.Fatal("oversize value rejected")
	}
	if c.Len() != 1 {
		t.Fatalf("len %d, want 1", c.Len())
	}
	// The next insert evicts it.
	c.Put("small", make([]byte, 5))
	if _, ok := c.Get("big"); ok {
		t.Fatal("oversize value survived a subsequent insert")
	}
}

func TestCacheLRUOrder(t *testing.T) {
	c := NewCache(2, 0)
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	if _, ok := c.Get("a"); !ok { // refresh a: now b is oldest
		t.Fatal("a missing")
	}
	c.Put("c", []byte("3"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (least recently used)")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a was evicted despite being recently used")
	}
}

func TestCacheReplace(t *testing.T) {
	c := NewCache(4, 0)
	c.Put("k", []byte("old"))
	c.Put("k", []byte("newer"))
	v, ok := c.Get("k")
	if !ok || string(v) != "newer" {
		t.Fatalf("got %q, want \"newer\"", v)
	}
	if c.Len() != 1 {
		t.Fatalf("len %d after replace, want 1", c.Len())
	}
	if c.Bytes() != int64(len("newer")) {
		t.Fatalf("bytes %d, want %d", c.Bytes(), len("newer"))
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(32, 1<<20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g*7+i)%48)
				if v, ok := c.Get(key); ok && len(v) == 0 {
					t.Errorf("empty value for %s", key)
				}
				c.Put(key, []byte(key))
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 32 {
		t.Fatalf("len %d over bound", c.Len())
	}
}
