package service

// Resilience primitives for the fault-tolerance layer: a circuit
// breaker guarding the store write path and the pipeline execution
// path, jittered exponential backoff for retries, and the retrying
// persist step that moves a completed result into perfdb without
// holding the server mutex across sleeps.
//
// Policy: a result that cannot be persisted after the retry budget does
// NOT fail the job — the client is served from memory and the job's
// journal intent stays pending, so the next startup replays it and the
// result eventually reaches the store. A store that keeps failing trips
// the breaker, and while it is open trackd degrades to read-only:
// submissions that would need a journal write are refused with 503
// (ErrDegraded) while cached and stored results keep flowing.

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"perftrack/internal/store"
)

// ErrDegraded is returned for submissions refused because the service
// is in read-only degradation (store or execution breaker open, or the
// journal cannot make intents durable).
var ErrDegraded = errors.New("service: degraded to read-only, retry later")

// breakerClosed/breakerOpen are the two stable breaker states; "half
// open" is the open state after its cooldown, when probes are admitted.
const (
	breakerClosed = iota
	breakerOpen
)

// Breaker is a consecutive-failure circuit breaker. Closed passes
// everything; threshold consecutive failures open it; after cooldown it
// admits one probe per cooldown period (half-open) and a probe success
// closes it again. The zero value is unusable — use newBreaker.
type Breaker struct {
	mu           sync.Mutex
	threshold    int
	cooldown     time.Duration
	now          func() time.Time
	onTransition func(open bool)

	state    int
	fails    int
	openedAt time.Time
}

func newBreaker(threshold int, cooldown time.Duration, onTransition func(open bool)) *Breaker {
	return &Breaker{
		threshold: threshold, cooldown: cooldown,
		now: time.Now, onTransition: onTransition,
		state: breakerClosed,
	}
}

// Allow reports whether a protected call may proceed. In the open
// state, one probe is admitted each time a cooldown elapses; admitting
// the probe restarts the cooldown, so a wedged probe (caller never
// reports an outcome) cannot wedge the breaker.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerClosed {
		return true
	}
	if b.now().Sub(b.openedAt) >= b.cooldown {
		b.openedAt = b.now()
		return true
	}
	return false
}

// Blocked reports whether the breaker is open and still cooling down —
// the non-consuming check submission gating uses: once the cooldown has
// elapsed, new work is admitted again so it can serve as the probe.
func (b *Breaker) Blocked() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == breakerOpen && b.now().Sub(b.openedAt) < b.cooldown
}

// Success reports a protected call that succeeded.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.fails = 0
	transition := b.state == breakerOpen
	b.state = breakerClosed
	b.mu.Unlock()
	if transition && b.onTransition != nil {
		b.onTransition(false)
	}
}

// Failure reports a protected call that failed.
func (b *Breaker) Failure() {
	b.mu.Lock()
	b.fails++
	transition := b.state == breakerClosed && b.fails >= b.threshold
	if transition || b.state == breakerOpen {
		b.state = breakerOpen
		b.openedAt = b.now()
	}
	b.mu.Unlock()
	if transition && b.onTransition != nil {
		b.onTransition(true)
	}
}

// Open reports whether the breaker is currently open (including the
// cooled-down, probe-admitting phase).
func (b *Breaker) Open() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == breakerOpen
}

// backoffDelay is the jittered exponential backoff for retry attempt n
// (0-based): base·2ⁿ capped at max, then uniformly jittered into
// [d/2, d) so synchronized retries decorrelate.
func backoffDelay(attempt int, base, max time.Duration) time.Duration {
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(rand.Int63n(int64(half)))
}

// resilienceMetrics are the fault-tolerance layer's counters and gauges.
type resilienceMetrics struct {
	retryAttempts     *Counter
	storeBreakerFlips *Counter
	execBreakerFlips  *Counter
	degradedResponses *Counter
}

// persist moves one completed result into perfdb, retrying with
// jittered exponential backoff under the store breaker. Called WITHOUT
// the server mutex: the sleeps here must not stall submissions or other
// workers' completions. Returns nil once the record is appended.
func (s *Server) persist(spec *jobSpec, payload []byte) error {
	rec := store.Record{
		Key:      spec.key,
		Series:   spec.series,
		Label:    spec.runLabel,
		UnixNano: time.Now().UnixNano(),
		Payload:  payload,
	}
	var lastErr error
	for attempt := 0; attempt <= s.cfg.StoreRetries; attempt++ {
		if attempt > 0 {
			s.rm.retryAttempts.Inc()
			select {
			case <-time.After(backoffDelay(attempt-1, s.cfg.RetryBase, s.cfg.RetryMax)):
			case <-s.rootCtx.Done():
				if lastErr == nil {
					lastErr = ErrShuttingDown
				}
				return lastErr
			}
		}
		if !s.storeBreaker.Allow() {
			lastErr = ErrDegraded
			continue
		}
		var err error
		if s.testAppendFault != nil {
			err = s.testAppendFault(rec.Key)
		}
		if err == nil {
			err = s.store.Append(rec)
		}
		if err != nil {
			s.storeBreaker.Failure()
			s.sm.appendErrors.Inc()
			lastErr = err
			continue
		}
		s.storeBreaker.Success()
		return nil
	}
	return lastErr
}
