package report

import (
	"fmt"

	"perftrack/internal/apps"
	"perftrack/internal/core"
	"perftrack/internal/mpisim"
	"perftrack/internal/trace"
)

// StudyResult bundles a catalog study with its simulated traces and
// tracking result; every report builder takes one.
type StudyResult struct {
	Study  apps.Study
	Traces []*trace.Trace
	Result *core.Result
}

// RunStudy simulates a catalog study and tracks it.
func RunStudy(st apps.Study) (*StudyResult, error) {
	traces, err := mpisim.SimulateSeries(st.Runs)
	if err != nil {
		return nil, fmt.Errorf("report: study %s: %w", st.Name, err)
	}
	if st.Windows > 1 {
		if len(traces) != 1 {
			return nil, fmt.Errorf("report: study %s: windowed analysis needs one run, got %d", st.Name, len(traces))
		}
		traces = traces[0].SplitWindows(st.Windows)
	}
	frames, err := core.BuildFrames(traces, st.Track)
	if err != nil {
		return nil, fmt.Errorf("report: study %s: %w", st.Name, err)
	}
	res, err := core.NewTracker(st.Track).Track(frames)
	if err != nil {
		return nil, fmt.Errorf("report: study %s: %w", st.Name, err)
	}
	return &StudyResult{Study: st, Traces: traces, Result: res}, nil
}

// RunAll runs every catalog study in Table 2 order.
func RunAll() ([]*StudyResult, error) {
	var out []*StudyResult
	for _, st := range apps.All() {
		sr, err := RunStudy(st)
		if err != nil {
			return nil, err
		}
		out = append(out, sr)
	}
	return out, nil
}

// FrameLabels returns the experiment labels of the study's frames.
func (sr *StudyResult) FrameLabels() []string {
	out := make([]string, len(sr.Result.Frames))
	for i, f := range sr.Result.Frames {
		out[i] = f.Label
	}
	return out
}

// Summary returns a one-paragraph outcome description.
func (sr *StudyResult) Summary() string {
	r := sr.Result
	return fmt.Sprintf("%s: %d input images, %d tracked regions (k), optimal k %d, coverage %s",
		sr.Study.Name, len(r.Frames), r.SpanningCount, r.OptimalK, Pct(r.Coverage))
}
