// Package report turns tracking results into the textual artefacts the
// paper presents: fixed-width and Markdown tables (Tables 1-3), trend
// summaries (Figures 7, 10-12 as data), scatter/timeline plots via package
// plot, and the paper-vs-measured comparison recorded in EXPERIMENTS.md.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple rectangular table with a title.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row, padding or truncating to the header width.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	if len(t.Header) == 0 {
		row = append([]string(nil), cells...)
	}
	t.Rows = append(t.Rows, row)
}

func (t *Table) widths() []int {
	n := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > n {
			n = len(r)
		}
	}
	w := make([]int, n)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	return w
}

// String renders the table with aligned columns for terminals.
func (t *Table) String() string {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "%s\n", t.Title)
	}
	w := t.widths()
	writeRow := func(cells []string) {
		for i := 0; i < len(w); i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", w[i], c)
		}
		sb.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		total := 0
		for _, x := range w {
			total += x + 2
		}
		sb.WriteString(strings.Repeat("-", total-2))
		sb.WriteByte('\n')
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}

// Markdown renders the table as GitHub-flavoured Markdown.
func (t *Table) Markdown() string {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "**%s**\n\n", t.Title)
	}
	header := t.Header
	if len(header) == 0 && len(t.Rows) > 0 {
		header = make([]string, len(t.Rows[0]))
	}
	sb.WriteString("|")
	for _, h := range header {
		fmt.Fprintf(&sb, " %s |", h)
	}
	sb.WriteString("\n|")
	for range header {
		sb.WriteString("---|")
	}
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		sb.WriteString("|")
		for i := range header {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			fmt.Fprintf(&sb, " %s |", c)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Pct formats a fraction as a percentage with no decimals ("88%").
func Pct(f float64) string { return fmt.Sprintf("%.0f%%", 100*f) }

// SignedPct formats a fractional change as an explicitly signed
// percentage ("+3.2%", "-36.0%") for trend and diagnosis evidence.
func SignedPct(f float64) string { return fmt.Sprintf("%+.1f%%", 100*f) }

// F formats a float compactly.
func F(v float64, prec int) string {
	return fmt.Sprintf("%.*f", prec, v)
}

// SI formats a value with an engineering suffix ("6.8M").
func SI(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av >= 1e9:
		return fmt.Sprintf("%.2gG", v/1e9)
	case av >= 1e6:
		return fmt.Sprintf("%.2gM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.2gk", v/1e3)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}
