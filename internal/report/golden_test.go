package report

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"perftrack/internal/metrics"
)

var update = flag.Bool("update", false, "rewrite golden files")

// Golden-file tests pin the exact textual artefacts: table rendering and
// the full study report of a small deterministic catalog study. The
// simulator and tracker are seed-deterministic and every report builder
// iterates slices (or sorts map keys) before printing, so the bytes are
// stable; regenerate deliberately with
// `go test ./internal/report -run Golden -update` and review the diff.

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (create with -update): %v", name, err)
	}
	if got == string(want) {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w string
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if g != w {
			t.Fatalf("%s: first difference at line %d:\n  got:  %q\n  want: %q\n(rerun with -update if the change is intended)",
				name, i+1, g, w)
		}
	}
	t.Fatalf("%s: output differs from golden (rerun with -update if intended)", name)
}

func goldenTable() *Table {
	tb := &Table{
		Title:  "golden demo",
		Header: []string{"region", "frames", "IPC", "note"},
	}
	tb.AddRow("1", "4", "1.42", "compute")
	tb.AddRow("2", "4", "0.58", "halo exchange")
	tb.AddRow("3", "2", "0.91")
	return tb
}

func TestGoldenTable(t *testing.T) {
	tb := goldenTable()
	checkGolden(t, "table.txt.golden", tb.String())
	checkGolden(t, "table.md.golden", tb.Markdown())
}

// TestGoldenStudyReport pins the complete report of the shrunken CGPOP
// study (the same fixture the other report tests use): summary, frame
// inventory, tracked regions, trend tables, evaluator matrices, relations
// and the validation score in one artefact.
func TestGoldenStudyReport(t *testing.T) {
	sr := miniStudy(t)
	var sb strings.Builder
	if err := WriteStudyReport(&sb, sr); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "studyreport.txt.golden", sb.String())
}

// TestGoldenPaperArtefacts pins the paper-facing builders on the same
// study: Table 3 (per-frame cluster inventory), the first pair's
// displacement text, and the IPC trend table rendered as Markdown.
func TestGoldenPaperArtefacts(t *testing.T) {
	sr := miniStudy(t)
	checkGolden(t, "table3.txt.golden", Table3(sr).String())
	checkGolden(t, "displacement.txt.golden", DisplacementText(sr, 0))
	checkGolden(t, "trend_ipc.md.golden", TrendTable(sr, metrics.IPC).Markdown())
}
