package report

import (
	"strings"
	"testing"

	"perftrack/internal/apps"
	"perftrack/internal/metrics"
)

func TestTableString(t *testing.T) {
	tb := &Table{
		Title:  "demo",
		Header: []string{"A", "Bee", "C"},
	}
	tb.AddRow("1", "2", "3")
	tb.AddRow("longer", "x")
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), s)
	}
	// Columns align: "Bee" starts at the same offset in header and rows.
	hOff := strings.Index(lines[1], "Bee")
	rOff := strings.Index(lines[3], "2")
	if hOff != rOff {
		t.Errorf("columns misaligned: header %d vs row %d\n%s", hOff, rOff, s)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := &Table{Header: []string{"x", "y"}}
	tb.AddRow("1", "2")
	md := tb.Markdown()
	if !strings.Contains(md, "| x | y |") || !strings.Contains(md, "|---|---|") {
		t.Errorf("markdown = %q", md)
	}
	if !strings.Contains(md, "| 1 | 2 |") {
		t.Errorf("markdown row missing: %q", md)
	}
}

func TestTableShortRow(t *testing.T) {
	tb := &Table{Header: []string{"a", "b", "c"}}
	tb.AddRow("only")
	if len(tb.Rows[0]) != 3 {
		t.Errorf("short row not padded: %v", tb.Rows[0])
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.888) != "89%" {
		t.Errorf("Pct = %q", Pct(0.888))
	}
	if F(1.23456, 2) != "1.23" {
		t.Errorf("F = %q", F(1.23456, 2))
	}
	cases := map[float64]string{
		6.8e6:  "6.8M",
		4.3e9:  "4.3G",
		1200:   "1.2k",
		0.25:   "0.25",
		3.3e06: "3.3M",
	}
	for v, want := range cases {
		if got := SI(v); got != want {
			t.Errorf("SI(%v) = %q, want %q", v, got, want)
		}
	}
}

// miniStudy builds a small, fast catalog-like study for report tests.
func miniStudy(t *testing.T) *StudyResult {
	t.Helper()
	st, err := apps.ByName("CGPOP")
	if err != nil {
		t.Fatal(err)
	}
	// Shrink the run: fewer ranks and iterations keep the test quick
	// while preserving the structure.
	for i := range st.Runs {
		st.Runs[i].Scenario.Ranks = 32
		st.Runs[i].Scenario.Iterations = 3
	}
	sr, err := RunStudy(st)
	if err != nil {
		t.Fatal(err)
	}
	return sr
}

func TestRunStudyAndSummary(t *testing.T) {
	sr := miniStudy(t)
	if len(sr.Traces) != 4 || len(sr.Result.Frames) != 4 {
		t.Fatalf("traces/frames = %d/%d", len(sr.Traces), len(sr.Result.Frames))
	}
	s := sr.Summary()
	if !strings.Contains(s, "CGPOP") || !strings.Contains(s, "4 input images") {
		t.Errorf("summary = %q", s)
	}
	labels := sr.FrameLabels()
	if len(labels) != 4 || labels[0] != "MareNostrum/gfortran" {
		t.Errorf("labels = %v", labels)
	}
}

func TestTable2(t *testing.T) {
	sr := miniStudy(t)
	tb := Table2([]*StudyResult{sr})
	s := tb.String()
	if !strings.Contains(s, "CGPOP") || !strings.Contains(s, "(average)") {
		t.Errorf("table 2:\n%s", s)
	}
	if len(tb.Rows) != 2 {
		t.Errorf("rows = %d", len(tb.Rows))
	}
}

func TestTable3(t *testing.T) {
	sr := miniStudy(t)
	s := Table3(sr).String()
	for _, want := range []string{"Region 1", "IPC", "Instructions", "Duration", "MinoTauro/ifort"} {
		if !strings.Contains(s, want) {
			t.Errorf("table 3 missing %q:\n%s", want, s)
		}
	}
}

func TestTable1(t *testing.T) {
	sr := miniStudy(t)
	s := Table1(sr, 0).String()
	if !strings.Contains(s, "solvers.F90") {
		t.Errorf("table 1 missing source file:\n%s", s)
	}
	if !strings.Contains(s, "Region") {
		t.Errorf("table 1 missing regions:\n%s", s)
	}
	// Out-of-range pair index falls back to pair 0.
	if got := Table1(sr, 99).String(); got != s {
		t.Error("pair fallback changed output")
	}
}

func TestDisplacementAndSequenceText(t *testing.T) {
	sr := miniStudy(t)
	d := DisplacementText(sr, 0)
	if !strings.Contains(d, "displacement") || !strings.Contains(d, "%") {
		t.Errorf("displacement text:\n%s", d)
	}
	q := SequenceText(sr, 0)
	if !strings.Contains(q, "sequence") {
		t.Errorf("sequence text:\n%s", q)
	}
}

func TestFrameScatterAndTimeline(t *testing.T) {
	sr := miniStudy(t)
	sc := FrameScatter(sr, 0, false)
	if len(sc.Points) == 0 || !sc.YLog {
		t.Errorf("scatter: %d points, ylog=%v", len(sc.Points), sc.YLog)
	}
	renamed := FrameScatter(sr, 0, true)
	if !strings.Contains(renamed.Title, "tracked regions") {
		t.Errorf("renamed title = %q", renamed.Title)
	}
	norm := NormalizedScatter(sr, 0, true)
	for _, p := range norm.Points {
		if p.X < -0.01 || p.X > 1.01 || p.Y < -0.01 || p.Y > 1.01 {
			t.Fatalf("normalised point out of range: %+v", p)
		}
	}
	tl := TimelineOf(sr, 0, true, 0)
	if len(tl.Spans) != len(sr.Result.Frames[0].Trace.Bursts) {
		t.Errorf("timeline spans = %d", len(tl.Spans))
	}
	short := TimelineOf(sr, 0, false, 1)
	if len(short.Spans) >= len(tl.Spans) {
		t.Error("window did not limit the timeline")
	}
}

func TestTrendChartAndTable(t *testing.T) {
	sr := miniStudy(t)
	lc := TrendChart(sr, metrics.IPC, 0, false)
	if len(lc.Series) == 0 {
		t.Fatal("no trend series")
	}
	if len(lc.XTicks) != 4 {
		t.Errorf("xticks = %v", lc.XTicks)
	}
	// A very high variation bar empties the chart.
	if got := TrendChart(sr, metrics.IPC, 10, false); len(got.Series) != 0 {
		t.Error("variation bar ignored")
	}
	tb := TrendTable(sr, metrics.IPC)
	if len(tb.Rows) == 0 {
		t.Error("empty trend table")
	}
}

func TestWriteStudyReport(t *testing.T) {
	sr := miniStudy(t)
	var buf strings.Builder
	if err := WriteStudyReport(&buf, sr); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	for _, want := range []string{
		"Frames:", "Tracked regions:", "spanning",
		"IPC per tracked region", "Evaluator matrices",
		"Relations per pair:", "Ground-truth validation",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("study report missing %q", want)
		}
	}
}

func TestMetricCorrelationChart(t *testing.T) {
	sr := miniStudy(t)
	lc := MetricCorrelationChart(sr, 1, []metrics.Metric{metrics.IPC, metrics.L2DMisses})
	if len(lc.Series) != 2 {
		t.Fatalf("series = %d", len(lc.Series))
	}
	for _, s := range lc.Series {
		maxV := 0.0
		for _, v := range s.Y {
			if v > maxV {
				maxV = v
			}
		}
		if maxV < 99.99 || maxV > 100.01 {
			t.Errorf("series %s max = %v, want 100", s.Name, maxV)
		}
	}
}
