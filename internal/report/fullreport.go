package report

import (
	"fmt"
	"io"

	"perftrack/internal/metrics"
)

// WriteStudyReport writes the complete textual analysis of one study: the
// frame inventory, the per-pair relations with their evaluator matrices,
// the tracked regions with IPC/instruction trends, and — when ground
// truth annotations are present — the validation score. This is the
// report trackctl and the examples print for human consumption.
func WriteStudyReport(w io.Writer, sr *StudyResult) error {
	res := sr.Result
	fmt.Fprintln(w, sr.Summary())
	fmt.Fprintln(w)

	fmt.Fprintln(w, "Frames:")
	for fi, f := range res.Frames {
		fmt.Fprintf(w, "  %2d %-24s %6d bursts  %2d clusters  busy %8.3fs\n",
			fi, f.Label, len(f.Labels), f.NumClusters, f.ClusteredDurationNS()/1e9)
	}
	fmt.Fprintln(w)

	fmt.Fprintln(w, "Tracked regions:")
	for _, tr := range res.Regions {
		span := "partial"
		if tr.Spanning {
			span = "spanning"
		}
		fmt.Fprintf(w, "  region %-3d %-8s time %8.3fs  members %v\n",
			tr.ID, span, tr.TotalDurationNS/1e9, tr.Members)
	}
	fmt.Fprintln(w)

	for _, m := range []metrics.Metric{metrics.IPC, metrics.Instructions} {
		fmt.Fprintln(w, TrendTable(sr, m))
	}

	if len(res.Pairs) > 0 {
		pr := res.Pairs[0]
		fmt.Fprintf(w, "Evaluator matrices for the first pair (%s -> %s):\n\n",
			res.Frames[pr.From].Label, res.Frames[pr.To].Label)
		fmt.Fprintln(w, pr.DispAB)
		fmt.Fprintln(w, pr.StackAB)
		if pr.Seq != nil {
			fmt.Fprintln(w, pr.Seq)
		}
		fmt.Fprintln(w, "Relations per pair:")
		for _, p := range res.Pairs {
			fmt.Fprintf(w, "  %s -> %s:", res.Frames[p.From].Label, res.Frames[p.To].Label)
			for _, rel := range p.Relations {
				fmt.Fprintf(w, " A%v=B%v", rel.A, rel.B)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}

	if score := res.Validate(); score.Annotated > 0 {
		fmt.Fprintf(w, "Ground-truth validation: purity %.3f, adjusted Rand index %.3f over %d annotated bursts\n",
			score.Purity, score.ARI, score.Annotated)
	}
	return nil
}
