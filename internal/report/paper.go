package report

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"perftrack/internal/core"
	"perftrack/internal/metrics"
	"perftrack/internal/plot"
	"perftrack/internal/trace"
)

// This file regenerates the paper's tables and figures from tracking
// results. The numbering follows the paper: Table 1 (call-stack
// correlations), Table 2 (study summary), Table 3 (CGPOP results),
// Figure 3 (displacement matrix), Figure 4 (SPMD timelines), Figure 5
// (execution-sequence alignment), Figures 1/6/8/9 (scatter frames) and
// Figures 7/10/11/12 (trend charts).

// Table2 builds the summary-of-experiments table over a set of studies.
func Table2(results []*StudyResult) *Table {
	t := &Table{
		Title:  "Table 2: Summary of experiments",
		Header: []string{"Application", "Input images", "Tracked regions", "Coverage %"},
	}
	var covSum float64
	for _, sr := range results {
		r := sr.Result
		t.AddRow(sr.Study.Name,
			fmt.Sprintf("%d", len(r.Frames)),
			fmt.Sprintf("%d", r.SpanningCount),
			Pct(r.Coverage))
		covSum += r.Coverage
	}
	if len(results) > 0 {
		t.AddRow("(average)", "", "", Pct(covSum/float64(len(results))))
	}
	return t
}

// Table3 builds the per-region performance table of the compiler/platform
// study (CGPOP): average IPC, instructions and scaled whole-run duration
// of every tracked region under every configuration. Durations are the
// mean burst duration times the study's nominal invocation count for the
// region's phase (see EXPERIMENTS.md).
func Table3(sr *StudyResult) *Table {
	r := sr.Result
	header := append([]string{"", ""}, sr.FrameLabels()...)
	t := &Table{Title: fmt.Sprintf("Table 3: %s performance results", sr.Study.Name), Header: header}
	for _, tr := range r.Regions {
		if !tr.Spanning {
			continue
		}
		ipc, _ := r.Trend(tr.ID, metrics.IPC)
		ins, _ := r.Trend(tr.ID, metrics.Instructions)
		dur, _ := r.Trend(tr.ID, metrics.DurationMS)
		name := fmt.Sprintf("Region %d", tr.ID)
		nominal := 1
		if sr.Study.PhaseNominal != nil {
			if n, ok := sr.Study.PhaseNominal[r.RegionMajorityPhase(tr.ID)]; ok {
				nominal = n
			}
		}
		rowIPC := []string{name, "IPC"}
		rowIns := []string{"", "Instructions"}
		rowDur := []string{"", "Duration"}
		for fi := range r.Frames {
			rowIPC = append(rowIPC, F(ipc.Points[fi].Mean, 2))
			rowIns = append(rowIns, SI(ins.Points[fi].Mean))
			rowDur = append(rowDur, fmt.Sprintf("%.2fs", dur.Points[fi].Mean*float64(nominal)/1000))
		}
		t.Rows = append(t.Rows, rowIPC, rowIns, rowDur)
	}
	return t
}

// Table1 builds the call-stack evaluator view for one pair of frames: for
// every source reference, which objects of each frame contain computations
// that start there.
func Table1(sr *StudyResult, pair int) *Table {
	r := sr.Result
	if pair < 0 || pair >= len(r.Pairs) {
		pair = 0
	}
	a := r.Frames[r.Pairs[pair].From]
	b := r.Frames[r.Pairs[pair].To]
	t := &Table{
		Title: fmt.Sprintf("Table 1: call-stack correlations (%s vs %s)", a.Label, b.Label),
		Header: []string{
			a.Label + " regions", "Callstack reference", b.Label + " regions",
		},
	}
	st := core.StackTable(a, b)
	refs := make([]trace.CallstackRef, 0, len(st))
	for ref := range st {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].File != refs[j].File {
			return refs[i].File < refs[j].File
		}
		return refs[i].Line < refs[j].Line
	})
	for _, ref := range refs {
		e := st[ref]
		t.AddRow(regionList(e[0]), fmt.Sprintf("%d (%s)", ref.Line, ref.File), regionList(e[1]))
	}
	return t
}

func regionList(ids []int) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("Region %d", id)
	}
	return strings.Join(parts, ", ")
}

// DisplacementText renders the displacement correlation matrix of one pair
// (the paper's Figure 3).
func DisplacementText(sr *StudyResult, pair int) string {
	r := sr.Result
	if pair < 0 || pair >= len(r.Pairs) {
		pair = 0
	}
	pr := r.Pairs[pair]
	return fmt.Sprintf("Figure 3: correlations from displacements evaluator (%s rows x %s cols)\n%s",
		r.Frames[pr.From].Label, r.Frames[pr.To].Label, pr.DispAB)
}

// SequenceText renders the execution-sequence evaluator view of one pair
// (the paper's Figure 5): the two consensus sequences and the sequence
// correlation matrix.
func SequenceText(sr *StudyResult, pair int) string {
	r := sr.Result
	if pair < 0 || pair >= len(r.Pairs) {
		pair = 0
	}
	pr := r.Pairs[pair]
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 5: correlations from execution sequence evaluator (%s vs %s)\n",
		r.Frames[pr.From].Label, r.Frames[pr.To].Label)
	if pr.Seq != nil {
		sb.WriteString(pr.Seq.String())
	} else {
		sb.WriteString("(sequence evaluator disabled)\n")
	}
	return sb.String()
}

// FrameScatter builds the scatter plot of one frame. With renamed=false
// the points carry the frame's own cluster ids (the "input images" of
// Fig. 1/8); with renamed=true they carry tracked-region ids, giving the
// consistent numbering and colours of the output images (Fig. 6/9).
func FrameScatter(sr *StudyResult, frameIdx int, renamed bool) *plot.Scatter {
	r := sr.Result
	f := r.Frames[frameIdx]
	labels := f.Labels
	kind := "clusters"
	if renamed {
		labels = r.RegionLabels(frameIdx)
		kind = "tracked regions"
	}
	cfg := sr.Study.Track
	ms := cfg.Metrics
	if len(ms) == 0 {
		ms = metrics.DefaultSpace()
	}
	s := &plot.Scatter{
		Title:  fmt.Sprintf("%s %s (%s)", sr.Study.Name, f.Label, kind),
		XLabel: ms[0].Name,
		YLabel: ms[1].Name,
		XLog:   ms[0].LogScale,
		YLog:   ms[1].LogScale,
	}
	for i, p := range f.Points {
		s.Points = append(s.Points, plot.ScatterPoint{X: p[0], Y: p[1], Class: labels[i]})
	}
	return s
}

// NormalizedScatter plots a frame in the cross-experiment normalised space
// (the paper's Figure 1c).
func NormalizedScatter(sr *StudyResult, frameIdx int, renamed bool) *plot.Scatter {
	r := sr.Result
	f := r.Frames[frameIdx]
	labels := f.Labels
	if renamed {
		labels = r.RegionLabels(frameIdx)
	}
	s := &plot.Scatter{
		Title:  fmt.Sprintf("%s %s (normalised scales)", sr.Study.Name, f.Label),
		XLabel: "normalised dim 0",
		YLabel: "normalised dim 1",
	}
	for i, p := range f.Norm {
		s.Points = append(s.Points, plot.ScatterPoint{X: p[0], Y: p[1], Class: labels[i]})
	}
	return s
}

// TrendChart builds the per-region trend lines of a metric over the frame
// sequence (Figures 7, 10, 11, 12). Only spanning regions whose maximum
// variation reaches minVariation are included (the paper depicts "only the
// regions with higher IPC variations, above 3%"). useTotals selects the
// per-frame totals instead of means (Fig. 7b).
func TrendChart(sr *StudyResult, m metrics.Metric, minVariation float64, useTotals bool) *plot.LineChart {
	r := sr.Result
	lc := &plot.LineChart{
		Title:  fmt.Sprintf("%s: %s evolution", sr.Study.Name, m.Name),
		XLabel: sr.Study.ParamName,
		YLabel: m.Name,
		XTicks: sr.FrameLabels(),
	}
	for _, tr := range r.Regions {
		if !tr.Spanning {
			continue
		}
		rt, err := r.Trend(tr.ID, m)
		if err != nil || rt.MaxVariation() < minVariation {
			continue
		}
		ys := rt.Means()
		if useTotals {
			ys = rt.Totals()
		}
		lc.Series = append(lc.Series, plot.Series{
			Name:  fmt.Sprintf("Region %d", tr.ID),
			Y:     ys,
			Class: tr.ID,
		})
	}
	return lc
}

// TrendTable tabulates per-region metric means per frame.
func TrendTable(sr *StudyResult, m metrics.Metric) *Table {
	r := sr.Result
	t := &Table{
		Title:  fmt.Sprintf("%s: %s per tracked region", sr.Study.Name, m.Name),
		Header: append([]string{"Region"}, sr.FrameLabels()...),
	}
	for _, tr := range r.Regions {
		if !tr.Spanning {
			continue
		}
		rt, err := r.Trend(tr.ID, m)
		if err != nil {
			continue
		}
		row := []string{fmt.Sprintf("%d", tr.ID)}
		for _, p := range rt.Points {
			if !p.Present {
				row = append(row, "-")
				continue
			}
			row = append(row, formatMetric(p.Mean))
		}
		t.AddRow(row...)
	}
	return t
}

func formatMetric(v float64) string {
	if math.Abs(v) >= 1000 {
		return SI(v)
	}
	return F(v, 3)
}

// MetricCorrelationChart plots several metrics of one tracked region on a
// common axis: each series is expressed as the percentage of its own
// maximum across the sequence — the paper's Figure 11b, which correlates
// the IPC degradation with the growth of cache and TLB misses.
func MetricCorrelationChart(sr *StudyResult, regionID int, ms []metrics.Metric) *plot.LineChart {
	r := sr.Result
	lc := &plot.LineChart{
		Title:  fmt.Sprintf("%s: region %d metrics (%% of max)", sr.Study.Name, regionID),
		XLabel: sr.Study.ParamName,
		YLabel: "% of maximum",
		XTicks: sr.FrameLabels(),
	}
	for mi, m := range ms {
		rt, err := r.Trend(regionID, m)
		if err != nil {
			continue
		}
		means := rt.Means()
		maxV := 0.0
		for _, v := range means {
			if !math.IsNaN(v) && v > maxV {
				maxV = v
			}
		}
		ys := make([]float64, len(means))
		for i, v := range means {
			if math.IsNaN(v) || maxV == 0 {
				ys[i] = math.NaN()
			} else {
				ys[i] = 100 * v / maxV
			}
		}
		lc.Series = append(lc.Series, plot.Series{Name: m.Name, Y: ys, Class: mi + 1})
	}
	return lc
}

// TimelineOf renders the temporal cluster sequence of the first windowNS
// nanoseconds of a frame (the paper's Figure 4). renamed selects
// tracked-region colours.
func TimelineOf(sr *StudyResult, frameIdx int, renamed bool, windowNS int64) *plot.Timeline {
	r := sr.Result
	f := r.Frames[frameIdx]
	labels := f.Labels
	if renamed {
		labels = r.RegionLabels(frameIdx)
	}
	start, _ := f.Trace.Span()
	limit := start + windowNS
	tl := &plot.Timeline{
		Title:  fmt.Sprintf("%s %s: cluster sequence", sr.Study.Name, f.Label),
		XLabel: "time",
	}
	for i, b := range f.Trace.Bursts {
		if windowNS > 0 && b.StartNS >= limit {
			continue
		}
		tl.Spans = append(tl.Spans, plot.TimeSpan{
			Task:  b.Task,
			Start: float64(b.StartNS - start),
			End:   float64(b.EndNS() - start),
			Class: labels[i],
		})
	}
	return tl
}
