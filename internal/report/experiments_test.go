package report

import (
	"bytes"
	"strings"
	"testing"

	"perftrack/internal/apps"
)

// TestWriteExperiments runs the generator over a shrunken catalog (fewer
// ranks/iterations for speed) and validates the document structure.
func TestWriteExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several studies")
	}
	var results []*StudyResult
	for _, st := range apps.All() {
		sr, err := RunStudy(st)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, sr)
	}
	var buf bytes.Buffer
	if err := WriteExperiments(&buf, results); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	for _, want := range []string{
		"# EXPERIMENTS",
		"## Table 2",
		"## WRF",
		"## CGPOP",
		"## NAS BT",
		"## MR-Genesis",
		"## HydroC",
		"| WRF | 2 / 2 | 12 / 12 | 100% / 100% |",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("experiments record missing %q", want)
		}
	}
	// Every catalog study appears in the Table 2 section.
	for _, st := range apps.All() {
		if !strings.Contains(doc, st.Name) {
			t.Errorf("study %s missing from the record", st.Name)
		}
	}
}

// TestWriteExperimentsMissingStudy ensures the generator fails loudly when
// a required study is absent instead of producing a partial record.
func TestWriteExperimentsMissingStudy(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteExperiments(&buf, nil); err == nil {
		t.Error("empty result set accepted")
	}
}
