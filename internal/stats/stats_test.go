package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSumMean(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Sum(xs) != 10 {
		t.Errorf("Sum = %v", Sum(xs))
	}
	if Mean(xs) != 2.5 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
}

func TestWeightedMean(t *testing.T) {
	xs := []float64{1, 3}
	ws := []float64{3, 1}
	if got := WeightedMean(xs, ws); got != 1.5 {
		t.Errorf("WeightedMean = %v, want 1.5", got)
	}
	// Zero weights fall back to the plain mean.
	if got := WeightedMean(xs, []float64{0, 0}); got != 2 {
		t.Errorf("zero-weight WeightedMean = %v, want 2", got)
	}
	// Short weight slice: missing weights default to 1.
	if got := WeightedMean([]float64{2, 4}, []float64{1}); got != 3 {
		t.Errorf("short-weights WeightedMean = %v, want 3", got)
	}
	if WeightedMean(nil, nil) != 0 {
		t.Error("WeightedMean(nil) should be 0")
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if Variance([]float64{3}) != 0 {
		t.Error("variance of singleton should be 0")
	}
}

func TestMinMax(t *testing.T) {
	min, max, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil || min != -1 || max != 7 {
		t.Errorf("MinMax = %v %v %v", min, max, err)
	}
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Errorf("MinMax(nil) err = %v, want ErrEmpty", err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p, want float64
	}{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {-5, 15}, {120, 50},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil || got != c.want {
			t.Errorf("Percentile(%v) = %v, %v; want %v", c.p, got, err, c.want)
		}
	}
	// Linear interpolation between ranks.
	got, _ := Percentile([]float64{10, 20}, 50)
	if got != 15 {
		t.Errorf("interpolated percentile = %v, want 15", got)
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Error("empty percentile should fail")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Percentile mutated input: %v", xs)
	}
}

func TestMedian(t *testing.T) {
	got, err := Median([]float64{9, 1, 5})
	if err != nil || got != 5 {
		t.Errorf("Median = %v, %v", got, err)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Pearson(xs, []float64{2, 4, 6, 8}); !approx(got, 1, 1e-12) {
		t.Errorf("perfect correlation = %v", got)
	}
	if got := Pearson(xs, []float64{8, 6, 4, 2}); !approx(got, -1, 1e-12) {
		t.Errorf("perfect anticorrelation = %v", got)
	}
	if got := Pearson(xs, []float64{5, 5, 5, 5}); got != 0 {
		t.Errorf("degenerate correlation = %v, want 0", got)
	}
	if Pearson(nil, nil) != 0 {
		t.Error("empty Pearson should be 0")
	}
}

func TestPearsonProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 4 {
			return true
		}
		n := len(raw) / 2
		xs, ys := raw[:n], raw[n:2*n]
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		r := Pearson(xs, ys)
		if math.IsNaN(r) {
			return false
		}
		if r < -1-1e-9 || r > 1+1e-9 {
			return false
		}
		// Symmetry.
		return approx(r, Pearson(ys, xs), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 1 + 2x
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(fit.Slope, 2, 1e-12) || !approx(fit.Intercept, 1, 1e-12) {
		t.Errorf("fit = %+v", fit)
	}
	if !approx(fit.R2, 1, 1e-12) {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
	if got := fit.Predict(10); !approx(got, 21, 1e-12) {
		t.Errorf("Predict(10) = %v", got)
	}
}

func TestFitLinearVertical(t *testing.T) {
	fit, err := FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope != 0 || fit.Intercept != 2 {
		t.Errorf("vertical fit = %+v, want flat line at mean", fit)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); err != ErrEmpty {
		t.Errorf("single point fit err = %v", err)
	}
	if _, err := FitLinear(nil, nil); err != ErrEmpty {
		t.Errorf("empty fit err = %v", err)
	}
}

func TestFitLinearNoisy(t *testing.T) {
	// R2 strictly below 1 when points deviate from the line.
	fit, err := FitLinear([]float64{0, 1, 2, 3}, []float64{0, 1.1, 1.9, 3})
	if err != nil {
		t.Fatal(err)
	}
	if fit.R2 <= 0.9 || fit.R2 >= 1 {
		t.Errorf("noisy R2 = %v", fit.R2)
	}
}

func TestFitLogLinear(t *testing.T) {
	// y = 3 * x^-1 (the "instructions halve as ranks double" law).
	xs := []float64{1, 2, 4, 8}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 / x
	}
	fit, err := FitLogLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(fit.A, 3, 1e-9) || !approx(fit.B, -1, 1e-9) {
		t.Errorf("power fit = %+v", fit)
	}
	if got := fit.Predict(16); !approx(got, 3.0/16, 1e-9) {
		t.Errorf("Predict(16) = %v", got)
	}
	if !math.IsNaN(fit.Predict(-1)) {
		t.Error("Predict of non-positive x should be NaN")
	}
}

func TestFitLogLinearSkipsNonPositive(t *testing.T) {
	fit, err := FitLogLinear([]float64{-1, 0, 1, 2, 4}, []float64{5, 5, 3, 1.5, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if fit.N != 3 {
		t.Errorf("usable samples = %d, want 3", fit.N)
	}
	if !approx(fit.B, -1, 1e-9) {
		t.Errorf("B = %v, want -1", fit.B)
	}
}

func TestFitLogLinearEmpty(t *testing.T) {
	if _, err := FitLogLinear([]float64{-1, -2}, []float64{1, 2}); err == nil {
		t.Error("all-nonpositive fit should fail")
	}
}

func TestRelChange(t *testing.T) {
	if got := RelChange(10, 12); !approx(got, 0.2, 1e-12) {
		t.Errorf("RelChange = %v", got)
	}
	if got := RelChange(0, 5); got != 0 {
		t.Errorf("RelChange from zero = %v, want 0", got)
	}
	if got := RelChange(10, 8); !approx(got, -0.2, 1e-12) {
		t.Errorf("negative RelChange = %v", got)
	}
}

func TestFitLinearPredictsMeanAtMeanX(t *testing.T) {
	// Least squares always passes through (mean x, mean y).
	f := func(raw []float64) bool {
		if len(raw) < 6 {
			return true
		}
		n := len(raw) / 2
		xs, ys := raw[:n], raw[n:2*n]
		for _, v := range raw[:2*n] {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e50 {
				return true
			}
		}
		fit, err := FitLinear(xs, ys)
		if err != nil {
			return true
		}
		my := Mean(ys)
		pred := fit.Predict(Mean(xs))
		tol := 1e-6 * math.Max(1, math.Abs(my))
		return approx(pred, my, tol)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
