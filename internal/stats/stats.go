// Package stats provides the small statistical toolbox perftrack needs:
// moments, order statistics, correlation and simple regression models used
// to fit and extrapolate per-region performance trends.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by estimators that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// WeightedMean returns the w-weighted mean of xs. Zero total weight falls
// back to the unweighted mean.
func WeightedMean(xs, ws []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sw, sxw float64
	for i, x := range xs {
		w := 1.0
		if i < len(ws) {
			w = ws[i]
		}
		sw += w
		sxw += x * w
	}
	if sw == 0 {
		return Mean(xs)
	}
	return sxw / sw
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the extrema of xs. It returns ErrEmpty for empty input.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns ErrEmpty for empty input.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0], nil
	}
	if p >= 100 {
		return s[len(s)-1], nil
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo], nil
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) { return Percentile(xs, 50) }

// Pearson returns the Pearson correlation coefficient between xs and ys.
// Slices of mismatched length are truncated to the shorter one. Degenerate
// (zero-variance) inputs yield 0.
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	if n == 0 {
		return 0
	}
	mx := Mean(xs[:n])
	my := Mean(ys[:n])
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// LinearFit is a least-squares line y = Intercept + Slope*x.
type LinearFit struct {
	Slope, Intercept float64
	// R2 is the coefficient of determination of the fit.
	R2 float64
	// N is the number of samples the fit used.
	N int
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 { return f.Intercept + f.Slope*x }

// FitLinear computes the least-squares line through (xs, ys). It returns
// ErrEmpty when fewer than two points are available; a vertical set of
// points (all xs equal) yields a flat line at the mean.
func FitLinear(xs, ys []float64) (LinearFit, error) {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	if n < 2 {
		return LinearFit{}, ErrEmpty
	}
	mx := Mean(xs[:n])
	my := Mean(ys[:n])
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	fit := LinearFit{N: n}
	if sxx == 0 {
		fit.Intercept = my
		return fit, nil
	}
	fit.Slope = sxy / sxx
	fit.Intercept = my - fit.Slope*mx
	if syy > 0 {
		// R2 = 1 - SSE/SST
		var sse float64
		for i := 0; i < n; i++ {
			e := ys[i] - fit.Predict(xs[i])
			sse += e * e
		}
		fit.R2 = 1 - sse/syy
	} else {
		fit.R2 = 1
	}
	return fit, nil
}

// LogLinearFit is a power-law fit y = A * x^B obtained by regressing
// log(y) on log(x). It models trends such as "instructions per rank halve
// when the rank count doubles".
type LogLinearFit struct {
	A, B float64
	R2   float64
	N    int
}

// Predict evaluates the fitted power law at x (x must be positive).
func (f LogLinearFit) Predict(x float64) float64 {
	if x <= 0 {
		return math.NaN()
	}
	return f.A * math.Pow(x, f.B)
}

// FitLogLinear fits y = A*x^B over the strictly positive samples of
// (xs, ys). Non-positive samples are skipped; fewer than two usable points
// yield ErrEmpty.
func FitLogLinear(xs, ys []float64) (LogLinearFit, error) {
	var lx, ly []float64
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	for i := 0; i < n; i++ {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	lin, err := FitLinear(lx, ly)
	if err != nil {
		return LogLinearFit{}, err
	}
	return LogLinearFit{A: math.Exp(lin.Intercept), B: lin.Slope, R2: lin.R2, N: lin.N}, nil
}

// RelChange returns (b-a)/a, the relative change from a to b, or 0 when a
// is zero. Used pervasively to compare measured trend deltas against the
// percentages the paper reports.
func RelChange(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (b - a) / a
}
