package stream

import (
	"bytes"
	"context"
	"math/rand/v2"
	"testing"

	"perftrack/internal/metrics"
	"perftrack/internal/oracle"
	"perftrack/internal/trace"
)

func mustSession(t *testing.T, cfg Config) *Session {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func healthyBurst(task int, startNS int64) trace.Burst {
	var ctrs metrics.CounterVector
	ctrs[metrics.CtrInstructions] = 1e6
	ctrs[metrics.CtrCycles] = 1e6
	return trace.Burst{Task: task, StartNS: startNS, DurationNS: 10, Counters: ctrs}
}

func TestWindowSpecValidate(t *testing.T) {
	bad := []WindowSpec{
		{},
		{WindowNS: 100, CountN: 10},
		{CountN: -1},
		{WindowNS: -5},
		{CountN: 10, OriginNS: 50},
		{WindowNS: 10, MaxWindows: -1},
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Fatalf("spec %d (%+v) unexpectedly valid", i, w)
		}
	}
	good := []WindowSpec{
		{WindowNS: 100},
		{WindowNS: 100, OriginNS: -50, MaxWindows: 8},
		{CountN: 1},
	}
	for i, w := range good {
		if err := w.Validate(); err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
	}
}

// TestStreamAppendPolicy pins the windowing decisions: early and late
// bursts drop, far-future bursts are rejected at the horizon, and a
// future burst seals everything before its own window.
func TestStreamAppendPolicy(t *testing.T) {
	sess := mustSession(t, Config{
		Meta:     trace.Metadata{Label: "policy", Ranks: 4},
		Window:   WindowSpec{WindowNS: 100, OriginNS: 100, MaxWindows: 3},
		Pipeline: pipelineConfig(0),
	})
	ctx := context.Background()
	step := func(b trace.Burst, want AppendStatus, sealed int) AppendResult {
		t.Helper()
		res, err := sess.Append(ctx, b)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if res.Status != want || len(res.Sealed) != sealed {
			t.Fatalf("append @%d: status %v (%d sealed), want %v (%d)",
				b.StartNS, res.Status, len(res.Sealed), want, sealed)
		}
		return res
	}
	step(healthyBurst(0, 50), DroppedEarly, 0)
	step(healthyBurst(0, 150), Accepted, 0)
	// Window 2 burst seals windows 0 and 1 (1 is empty -> degraded).
	res := step(healthyBurst(1, 310), Accepted, 2)
	if res.Sealed[0].Window != 0 || res.Sealed[1].Window != 1 {
		t.Fatalf("sealed windows %d,%d", res.Sealed[0].Window, res.Sealed[1].Window)
	}
	if !res.Sealed[1].Degraded || res.Sealed[1].Bursts != 0 {
		t.Fatalf("empty window not degraded: %+v", res.Sealed[1])
	}
	step(healthyBurst(2, 120), DroppedLate, 0)
	step(healthyBurst(3, 100+3*100), RejectedHorizon, 0)
	st := sess.Stats()
	if st.DroppedEarly != 1 || st.DroppedLate != 1 || st.RejectedHorizon != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.WindowsSealed != 2 || st.OpenWindow != 2 {
		t.Fatalf("windows: %+v", st)
	}
	if got := sess.windowLabel(0); got != "policy/w1" {
		t.Fatalf("label %q", got)
	}
}

// TestStreamPermutationInvariance is the metamorphic gate: appending a
// window's bursts in any order yields byte-identical evaluations — the
// canonical seal order makes arrival order irrelevant within a window.
// Window membership is decided by timestamp, so feeding the windows in
// sequence with each window's bursts shuffled exercises exactly the
// within-window reordering a live producer's races would cause.
func TestStreamPermutationInvariance(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		tr := oracle.GenTraces(seed, "perm", 4, 4, 2)
		cfg := pipelineConfig(seed)
		nWin := 4
		start, end := tr.Span()
		width := (end - start + int64(nWin) - 1) / int64(nWin)
		windows := tr.SplitWindows(nWin)
		var baseline []byte
		for round := 0; round < 3; round++ {
			rng := rand.New(rand.NewPCG(seed, uint64(round)*0x9e37+1))
			sess := mustSession(t, Config{
				Meta:     tr.Meta,
				Window:   WindowSpec{WindowNS: width, OriginNS: start, MaxWindows: nWin},
				Pipeline: cfg,
			})
			ctx := context.Background()
			var deltas []*Delta
			for _, w := range windows {
				for _, bi := range rng.Perm(len(w.Bursts)) {
					res, err := sess.Append(ctx, w.Bursts[bi])
					if err != nil {
						t.Fatal(err)
					}
					deltas = append(deltas, res.Sealed...)
				}
			}
			fin, err := sess.Finish(ctx, nWin)
			if err != nil {
				t.Fatal(err)
			}
			deltas = append(deltas, fin...)
			if len(deltas) != nWin {
				t.Fatalf("seed %d round %d: %d windows sealed, want %d", seed, round, len(deltas), nWin)
			}
			final := deltas[nWin-1]
			var export []byte
			if final.EvalError == "" {
				export = resultBytes(t, final.Result, cfg)
			} else {
				export = []byte(final.EvalError)
			}
			if round == 0 {
				baseline = export
				continue
			}
			if !bytes.Equal(export, baseline) {
				t.Fatalf("seed %d round %d: permuted replay diverges", seed, round)
			}
		}
	}
}

// TestStreamCrashResumeDifferential kills a session at every window
// boundary and resumes a fresh one from the sealed-window records: the
// restored session must evaluate byte-identically to one that never
// crashed, without re-clustering any sealed window.
func TestStreamCrashResumeDifferential(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		tr := oracle.GenTraces(seed, "resume", 4, 5, 2)
		cfg := pipelineConfig(seed)
		nWin := 4
		deltas, _ := replayDuration(t, tr, nWin, cfg)
		if len(deltas) != nWin {
			t.Fatalf("seed %d: %d deltas", seed, len(deltas))
		}
		var sealed []*SealedWindow
		for _, d := range deltas {
			if d.Sealed == nil {
				t.Fatalf("seed %d: delta %d lacks sealed record", seed, d.Window)
			}
			sealed = append(sealed, d.Sealed)
		}
		finalRef := deltas[nWin-1]

		ordered := tr.Clone()
		ordered.SortByTime()
		start, end := tr.Span()
		width := (end - start + int64(nWin) - 1) / int64(nWin)
		for crashAt := 1; crashAt <= nWin; crashAt++ {
			sess := mustSession(t, Config{
				Meta:     tr.Meta,
				Window:   WindowSpec{WindowNS: width, OriginNS: start, MaxWindows: nWin},
				Pipeline: cfg,
			})
			for _, w := range sealed[:crashAt] {
				if err := sess.Restore(*w); err != nil {
					t.Fatalf("seed %d crash %d: Restore: %v", seed, crashAt, err)
				}
			}
			if sess.Windows() != crashAt {
				t.Fatalf("restored %d windows, want %d", sess.Windows(), crashAt)
			}
			ctx := context.Background()
			var rest []*Delta
			for _, b := range ordered.Bursts {
				// Bursts of already-sealed windows drop as late; the
				// open window's bursts replay cleanly.
				res, err := sess.Append(ctx, b)
				if err != nil {
					t.Fatal(err)
				}
				rest = append(rest, res.Sealed...)
			}
			fin, err := sess.Finish(ctx, nWin)
			if err != nil {
				t.Fatal(err)
			}
			rest = append(rest, fin...)
			if len(rest) != nWin-crashAt {
				t.Fatalf("seed %d crash %d: resumed session sealed %d more windows, want %d",
					seed, crashAt, len(rest), nWin-crashAt)
			}
			var final *Delta
			if len(rest) > 0 {
				final = rest[len(rest)-1]
			}
			if final == nil {
				// Crashed after the last window: evaluate the restored
				// sequence directly.
				res, err := sess.Evaluate(ctx)
				if finalRef.EvalError != "" {
					if err == nil || err.Error() != finalRef.EvalError {
						t.Fatalf("seed %d: restored eval error %v, want %q", seed, err, finalRef.EvalError)
					}
					continue
				}
				if err != nil {
					t.Fatalf("seed %d: restored eval: %v", seed, err)
				}
				if !bytes.Equal(resultBytes(t, res, cfg), resultBytes(t, finalRef.Result, cfg)) {
					t.Fatalf("seed %d: restore-only evaluation diverges", seed)
				}
				continue
			}
			if finalRef.EvalError != "" {
				if final.EvalError != finalRef.EvalError {
					t.Fatalf("seed %d crash %d: eval error %q, want %q", seed, crashAt, final.EvalError, finalRef.EvalError)
				}
				continue
			}
			if final.EvalError != "" {
				t.Fatalf("seed %d crash %d: unexpected eval error %q", seed, crashAt, final.EvalError)
			}
			if !bytes.Equal(resultBytes(t, final.Result, cfg), resultBytes(t, finalRef.Result, cfg)) {
				t.Fatalf("seed %d crash %d: resumed evaluation diverges from uninterrupted run", seed, crashAt)
			}
		}
	}
}

// TestStreamRestoreGuards pins the resume contract: restores must come
// before appends and in index order, with matching label/burst counts.
func TestStreamRestoreGuards(t *testing.T) {
	cfg := Config{
		Meta:     trace.Metadata{Label: "guards", Ranks: 2},
		Window:   WindowSpec{CountN: 4},
		Pipeline: pipelineConfig(0),
	}
	sess := mustSession(t, cfg)
	if err := sess.Restore(SealedWindow{Index: 3}); err == nil {
		t.Fatal("out-of-order restore accepted")
	}
	if err := sess.Restore(SealedWindow{Index: 0, Labels: []int{1}}); err == nil {
		t.Fatal("label/burst mismatch accepted")
	}
	if _, err := sess.Append(context.Background(), healthyBurst(0, 5)); err != nil {
		t.Fatal(err)
	}
	if err := sess.Restore(SealedWindow{Index: 0}); err == nil {
		t.Fatal("restore after append accepted")
	}
}

// TestStreamEvalRecovery: a stream whose early windows are all
// degraded reports the evaluation error per delta, then recovers as
// soon as a trackable window arrives.
func TestStreamEvalRecovery(t *testing.T) {
	tr := oracle.GenTraces(3, "recover", 4, 4, 2)
	ordered := tr.Clone()
	ordered.SortByTime()
	start, end := tr.Span()
	width := (end - start + 3) / 4
	sess := mustSession(t, Config{
		Meta:     tr.Meta,
		Window:   WindowSpec{WindowNS: width, OriginNS: start - 2*width, MaxWindows: 8},
		Pipeline: pipelineConfig(0),
	})
	ctx := context.Background()
	var deltas []*Delta
	for _, b := range ordered.Bursts {
		res, err := sess.Append(ctx, b)
		if err != nil {
			t.Fatal(err)
		}
		deltas = append(deltas, res.Sealed...)
	}
	fin, err := sess.Finish(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	deltas = append(deltas, fin...)
	if len(deltas) < 3 {
		t.Fatalf("only %d windows sealed", len(deltas))
	}
	// The first two windows predate the data (shifted origin): both
	// must be degraded-empty with an eval error.
	for i := 0; i < 2; i++ {
		if !deltas[i].Degraded || deltas[i].EvalError == "" {
			t.Fatalf("window %d: %+v", i, deltas[i])
		}
	}
	final := deltas[len(deltas)-1]
	if final.EvalError != "" {
		t.Fatalf("stream never recovered: %q", final.EvalError)
	}
	if sess.Last() == nil {
		t.Fatal("Last() nil after successful evaluation")
	}
	if final.Windows != len(deltas) {
		t.Fatalf("final delta windows %d, want %d", final.Windows, len(deltas))
	}
}
