// Package stream implements live trace ingestion: a resident Session
// accepts bursts one at a time, windows them by time or count, seals
// each window into a frame through the incremental clustering index,
// and re-evaluates the tracked study after every close — emitting a
// rolling Delta per window.
//
// The correctness anchor is differential: replaying a trace through a
// Session, window by window, is bit-exact with running the batch
// pipeline (core.BuildFrames + core.Track) over the same window
// boundaries. The canonical window order contract makes that precise:
// a sealed window's trace is its accepted bursts in a stable
// (Task, StartNS, Thread) sort of arrival order, so the labels are
// invariant under burst permutations within a window.
package stream

import (
	"context"
	"fmt"

	"perftrack/internal/core"
	"perftrack/internal/metrics"
	"perftrack/internal/trace"
)

// DefaultMaxWindows caps the window horizon: one far-future timestamp
// must not make the session seal (and evaluate) an unbounded run of
// empty windows.
const DefaultMaxWindows = 4096

// WindowSpec selects how the stream is cut into windows. Exactly one
// of WindowNS (fixed-duration windows) or CountN (every N appended
// bursts) must be positive.
type WindowSpec struct {
	// WindowNS is the fixed window width; window k covers
	// [OriginNS + k*WindowNS, OriginNS + (k+1)*WindowNS).
	WindowNS int64 `json:"windowNs,omitempty"`
	// OriginNS is the time origin of window 0. Bursts starting before
	// it are dropped as early.
	OriginNS int64 `json:"originNs,omitempty"`
	// CountN closes a window after every N appended bursts (counted in
	// arrival order, before quarantine/filtering, matching a batch
	// pipeline that chunks the input trace every N lines).
	CountN int `json:"countN,omitempty"`
	// MaxWindows bounds the total number of windows (0 = DefaultMaxWindows).
	MaxWindows int `json:"maxWindows,omitempty"`
}

// Validate rejects contradictory window specifications.
func (w WindowSpec) Validate() error {
	switch {
	case w.WindowNS > 0 && w.CountN > 0:
		return fmt.Errorf("stream: both WindowNS and CountN set")
	case w.WindowNS <= 0 && w.CountN <= 0:
		return fmt.Errorf("stream: one of WindowNS or CountN must be positive")
	case w.WindowNS < 0 || w.CountN < 0 || w.MaxWindows < 0:
		return fmt.Errorf("stream: negative window parameter")
	case w.OriginNS != 0 && w.WindowNS <= 0:
		return fmt.Errorf("stream: OriginNS needs duration windows")
	}
	return nil
}

func (w WindowSpec) maxWindows() int {
	if w.MaxWindows > 0 {
		return w.MaxWindows
	}
	return DefaultMaxWindows
}

// Config describes one streaming session.
type Config struct {
	// Meta carries the experiment label (window frames are labelled
	// "<label>/w<k+1>", like trace.SplitWindows) and the rank count
	// used for quarantine and scale normalisation.
	Meta trace.Metadata
	// Window cuts the stream.
	Window WindowSpec
	// Pipeline configures the tracking pipeline, exactly as for batch.
	Pipeline core.Config
}

// AppendStatus classifies the fate of one appended burst.
type AppendStatus int

const (
	// Accepted: the burst joined the open window.
	Accepted AppendStatus = iota
	// Quarantined: the burst was corrupt (fault class in Fault).
	Quarantined
	// Filtered: dropped by the minimum-duration filter.
	Filtered
	// DroppedEarly: the burst starts before the stream origin.
	DroppedEarly
	// DroppedLate: the burst belongs to an already-sealed window.
	DroppedLate
	// RejectedHorizon: the burst's timestamp lies beyond MaxWindows.
	RejectedHorizon
)

// String names the status for logs and metrics labels.
func (s AppendStatus) String() string {
	switch s {
	case Accepted:
		return "accepted"
	case Quarantined:
		return "quarantined"
	case Filtered:
		return "filtered"
	case DroppedEarly:
		return "dropped-early"
	case DroppedLate:
		return "dropped-late"
	case RejectedHorizon:
		return "rejected-horizon"
	}
	return "unknown"
}

// AppendResult reports what one Append did: the burst's own fate plus
// any windows the append sealed on its way (a burst for a future
// window seals everything before it).
type AppendResult struct {
	Status AppendStatus
	Fault  string
	Sealed []*Delta
}

// Stats is a snapshot of the session's counters.
type Stats struct {
	Appended        int64 `json:"appended"`
	Accepted        int64 `json:"accepted"`
	Quarantined     int64 `json:"quarantined"`
	Filtered        int64 `json:"filtered"`
	DroppedEarly    int64 `json:"droppedEarly"`
	DroppedLate     int64 `json:"droppedLate"`
	RejectedHorizon int64 `json:"rejectedHorizon"`
	WindowsSealed   int   `json:"windowsSealed"`
	OpenWindow      int   `json:"openWindow"`
	OpenBursts      int   `json:"openBursts"`
	Epoch           int   `json:"epoch"`
	Incremental     bool  `json:"incremental"`
}

// SealedWindow is the durable form of one closed window: everything
// needed to rebuild its frame after a crash without re-clustering.
type SealedWindow struct {
	Index          int            `json:"index"`
	Meta           trace.Metadata `json:"meta"`
	Bursts         []trace.Burst  `json:"bursts,omitempty"`
	Labels         []int          `json:"labels,omitempty"`
	NumClusters    int            `json:"numClusters"`
	Quarantined    int            `json:"quarantined,omitempty"`
	QuarantinedBy  map[string]int `json:"quarantinedBy,omitempty"`
	Degraded       bool           `json:"degraded,omitempty"`
	DegradedReason string         `json:"degradedReason,omitempty"`
	AppendedTotal  int64          `json:"appendedTotal"`
}

// Session is a resident streaming analysis. It is not safe for
// concurrent use: the owner (trackd's stream registry, the CLI
// replayer) serialises appends.
type Session struct {
	cfg  Config
	ms   []metrics.Metric
	seq  *core.SeqTracker
	wb   *core.WindowBuilder
	cur  int // index of the open window
	curN int // bursts appended to the open window (all statuses)

	stats Stats
	last  *core.Result
	// live reports whether any burst was appended this process life
	// (restores must precede all appends).
	live bool
}

// pipelineMetrics resolves the metric space the pipeline will use.
func pipelineMetrics(cfg core.Config) []metrics.Metric {
	if len(cfg.Metrics) > 0 {
		return cfg.Metrics
	}
	return metrics.DefaultSpace()
}

// New opens a streaming session.
func New(cfg Config) (*Session, error) {
	if err := cfg.Window.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Pipeline.Validate(); err != nil {
		return nil, err
	}
	seq, err := core.NewSeqTracker(cfg.Pipeline)
	if err != nil {
		return nil, err
	}
	s := &Session{cfg: cfg, ms: pipelineMetrics(cfg.Pipeline), seq: seq}
	if err := s.openWindow(0); err != nil {
		return nil, err
	}
	s.stats.Incremental = s.wb.Incremental()
	return s, nil
}

// windowLabel names window k the way trace.SplitWindows does.
func (s *Session) windowLabel(k int) string {
	return fmt.Sprintf("%s/w%d", s.cfg.Meta.Label, k+1)
}

func (s *Session) openWindow(k int) error {
	meta := s.cfg.Meta
	meta.Label = s.windowLabel(k)
	wb, err := core.NewWindowBuilder(meta, s.cfg.Pipeline)
	if err != nil {
		return err
	}
	s.wb, s.cur, s.curN = wb, k, 0
	return nil
}

// Windows returns the number of sealed windows.
func (s *Session) Windows() int { return s.seq.Len() }

// Last returns the most recent successful evaluation (nil before the
// first trackable window).
func (s *Session) Last() *core.Result { return s.last }

// Stats snapshots the session counters.
func (s *Session) Stats() Stats {
	st := s.stats
	st.OpenWindow = s.cur
	st.OpenBursts = s.wb.Len()
	st.Epoch = s.seq.Epoch()
	return st
}

// Config returns the session's configuration.
func (s *Session) Config() Config { return s.cfg }

// Metrics returns the metric space the pipeline evaluates in.
func (s *Session) Metrics() []metrics.Metric { return s.ms }

// windowOf maps a start timestamp to its duration-window index.
func (s *Session) windowOf(startNS int64) int64 {
	return (startNS - s.cfg.Window.OriginNS) / s.cfg.Window.WindowNS
}

// Append routes one burst. Fatal errors (broken pipeline config,
// internal sequence corruption) abort; everything data-dependent is
// reported in the AppendResult and the rolling deltas.
func (s *Session) Append(ctx context.Context, b trace.Burst) (AppendResult, error) {
	var res AppendResult
	if s.cfg.Window.WindowNS > 0 {
		if b.StartNS < s.cfg.Window.OriginNS {
			s.stats.DroppedEarly++
			res.Status = DroppedEarly
			return res, nil
		}
		k := s.windowOf(b.StartNS)
		if k < int64(s.cur) {
			s.stats.DroppedLate++
			res.Status = DroppedLate
			return res, nil
		}
		if k >= int64(s.cfg.Window.maxWindows()) {
			s.stats.RejectedHorizon++
			res.Status = RejectedHorizon
			return res, nil
		}
		// Seal every window before the burst's own (possibly empty —
		// they become degraded frames, exactly like batch windows with
		// no bursts in their time range).
		for int64(s.cur) < k {
			d, err := s.sealCurrent(ctx)
			if err != nil {
				return res, err
			}
			res.Sealed = append(res.Sealed, d)
		}
	}
	s.live = true
	s.stats.Appended++
	s.curN++
	st, fault := s.wb.Accept(b)
	res.Fault = fault
	switch st {
	case core.BurstAccepted:
		s.stats.Accepted++
		res.Status = Accepted
	case core.BurstQuarantined:
		s.stats.Quarantined++
		res.Status = Quarantined
	case core.BurstFiltered:
		s.stats.Filtered++
		res.Status = Filtered
	}
	if n := s.cfg.Window.CountN; n > 0 && s.curN >= n {
		d, err := s.sealCurrent(ctx)
		if err != nil {
			return res, err
		}
		res.Sealed = append(res.Sealed, d)
	}
	return res, nil
}

// sealCurrent closes the open window into a frame, appends it to the
// sequence, re-evaluates, and opens the next window.
func (s *Session) sealCurrent(ctx context.Context) (*Delta, error) {
	appendedAt := s.stats.Appended
	f, err := s.wb.Seal(s.cur)
	if err != nil {
		return nil, err
	}
	incremental := s.wb.Incremental()
	// The durable record captures the frame's intrinsic state, BEFORE
	// the evaluation re-derives collapse markings over the sequence: a
	// restore must replay the same inputs the live session appended.
	sealed := &SealedWindow{
		Index:          f.Index,
		Meta:           f.Trace.Meta,
		Bursts:         f.Trace.Bursts,
		Labels:         f.Labels,
		NumClusters:    f.NumClusters,
		Quarantined:    f.Quarantined,
		QuarantinedBy:  f.QuarantinedBy,
		Degraded:       f.Degraded,
		DegradedReason: f.DegradedReason,
		AppendedTotal:  appendedAt,
	}
	if err := s.seq.Append(f); err != nil {
		return nil, err
	}
	s.stats.WindowsSealed++
	res, evalErr := s.seq.Evaluate(ctx)
	if evalErr == nil {
		s.last = res
	} else if ctx.Err() != nil {
		return nil, evalErr
	}
	d := buildDelta(f, res, evalErr, incremental, s.seq.Epoch(), s.ms)
	d.Sealed = sealed
	if err := s.openWindow(s.cur + 1); err != nil {
		return nil, err
	}
	return d, nil
}

// Finish seals the open window. With total > 0 it seals every window
// up to index total-1 (trailing empty windows become degraded frames,
// matching a batch split into exactly `total` windows); with total <= 0
// it seals just the open window, and only if bursts were appended to
// it.
func (s *Session) Finish(ctx context.Context, total int) ([]*Delta, error) {
	var out []*Delta
	if total <= 0 {
		if s.curN == 0 {
			return nil, nil
		}
		d, err := s.sealCurrent(ctx)
		if err != nil {
			return nil, err
		}
		return []*Delta{d}, nil
	}
	if total > s.cfg.Window.maxWindows() {
		total = s.cfg.Window.maxWindows()
	}
	for s.cur < total {
		d, err := s.sealCurrent(ctx)
		if err != nil {
			return out, err
		}
		out = append(out, d)
	}
	return out, nil
}

// Evaluate re-runs (or serves the cached) evaluation of the sealed
// sequence, without closing the open window.
func (s *Session) Evaluate(ctx context.Context) (*core.Result, error) {
	return s.seq.Evaluate(ctx)
}

// Restore replays one sealed window from its durable record, in index
// order, before any Append. The frame is rebuilt from the persisted
// labels — no re-clustering — and the evaluation caches warm up
// exactly as if the window had just sealed.
func (s *Session) Restore(w SealedWindow) error {
	if s.live {
		return fmt.Errorf("stream: Restore after Append")
	}
	if w.Index != s.seq.Len() {
		return fmt.Errorf("stream: restore window %d, want %d", w.Index, s.seq.Len())
	}
	if len(w.Labels) != len(w.Bursts) {
		return fmt.Errorf("stream: window %d: %d labels for %d bursts", w.Index, len(w.Labels), len(w.Bursts))
	}
	f := &core.Frame{
		Index:          w.Index,
		Label:          w.Meta.Label,
		Ranks:          w.Meta.Ranks,
		Trace:          &trace.Trace{Meta: w.Meta, Bursts: w.Bursts},
		Labels:         w.Labels,
		NumClusters:    w.NumClusters,
		Quarantined:    w.Quarantined,
		QuarantinedBy:  w.QuarantinedBy,
		Degraded:       w.Degraded,
		DegradedReason: w.DegradedReason,
	}
	if len(w.Bursts) > 0 {
		dims := len(s.ms)
		flat := make([]float64, len(w.Bursts)*dims)
		f.Points = make([][]float64, len(w.Bursts))
		for i, b := range w.Bursts {
			row := flat[i*dims : (i+1)*dims : (i+1)*dims]
			f.Points[i] = metrics.SpaceInto(row, s.ms, b.Sample())
		}
	}
	if err := s.seq.Append(f); err != nil {
		return err
	}
	s.stats.WindowsSealed++
	s.stats.Appended = w.AppendedTotal
	return s.openWindow(w.Index + 1)
}
