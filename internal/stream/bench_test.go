package stream

import (
	"context"
	"testing"

	"perftrack/internal/cluster"
	"perftrack/internal/core"
	"perftrack/internal/oracle"
	"perftrack/internal/trace"
)

// benchTrace builds a 10-window stream workload: a seeded oracle trace
// heavy enough that clustering dominates, split by time.
func benchTrace(b *testing.B) (*trace.Trace, []*trace.Trace, core.Config) {
	b.Helper()
	tr := oracle.GenTraces(42, "bench", 32, 40, 2)
	cfg := core.Config{Cluster: cluster.Config{Eps: 0.07, MinPts: 5, MinClusterWeight: 0.002}}
	windows := tr.SplitWindows(10)
	return tr, windows, cfg
}

// seedSession replays the first nine windows into a fresh session and
// appends the tenth window's bursts, leaving it one Finish away from
// the measured close.
func seedSession(b *testing.B, tr *trace.Trace, cfg core.Config) *Session {
	b.Helper()
	ordered := tr.Clone()
	ordered.SortByTime()
	start, end := tr.Span()
	width := (end - start + 9) / 10
	sess, err := New(Config{
		Meta:     tr.Meta,
		Window:   WindowSpec{WindowNS: width, OriginNS: start, MaxWindows: 10},
		Pipeline: cfg,
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, bu := range ordered.Bursts {
		if _, err := sess.Append(ctx, bu); err != nil {
			b.Fatal(err)
		}
	}
	if sess.Windows() != 9 {
		b.Fatalf("expected 9 sealed windows before the measured close, have %d", sess.Windows())
	}
	return sess
}

// BenchmarkWindowClose10Incremental measures the steady-state cost of
// closing the 10th window on a live session: one window's clustering
// seal, one new frame-pair correlation, and the chain/delta rebuild.
func BenchmarkWindowClose10Incremental(b *testing.B) {
	tr, _, cfg := benchTrace(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sess := seedSession(b, tr, cfg)
		b.StartTimer()
		deltas, err := sess.Finish(ctx, 10)
		if err != nil {
			b.Fatal(err)
		}
		if len(deltas) != 1 || deltas[0].EvalError != "" {
			b.Fatalf("close failed: %+v", deltas)
		}
	}
}

// BenchmarkWindowClose10BatchRerun measures the alternative the
// incremental path replaces: re-running the whole batch pipeline over
// the ten accumulated windows when the last one arrives.
func BenchmarkWindowClose10BatchRerun(b *testing.B) {
	_, windows, cfg := benchTrace(b)
	canon := make([]*trace.Trace, len(windows))
	for i, w := range windows {
		c := w.Clone()
		c.SortByTaskTime()
		canon[i] = c
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frames, err := core.BuildFrames(canon, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.NewTracker(cfg).Track(frames); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamAppend measures the per-burst append cost in the
// middle of a window (no seal): quarantine check, metric evaluation,
// and the incremental index insertion.
func BenchmarkStreamAppend(b *testing.B) {
	tr, _, cfg := benchTrace(b)
	ordered := tr.Clone()
	ordered.SortByTime()
	start, end := tr.Span()
	width := end - start + 1 // one giant window: appends never seal
	sess, err := New(Config{
		Meta:     tr.Meta,
		Window:   WindowSpec{WindowNS: width, OriginNS: start},
		Pipeline: cfg,
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Append(ctx, ordered.Bursts[i%len(ordered.Bursts)]); err != nil {
			b.Fatal(err)
		}
	}
}
