package stream

import (
	"sort"

	"perftrack/internal/core"
	"perftrack/internal/metrics"
)

// TrendDelta is one rolling trend observation: the latest
// duration-weighted mean of one metric over one spanning region, plus
// the relative change since the region first appeared.
type TrendDelta struct {
	Region   int     `json:"region"`
	Metric   string  `json:"metric"`
	Mean     float64 `json:"mean"`
	RelDelta float64 `json:"relDelta"`
}

// Delta is the rolling update emitted when a window seals. It is the
// event payload streamed to subscribers: what the window contained, how
// the sealed frame clustered, and where the tracked study stands now.
type Delta struct {
	// Window is the sealed window's index; Label its frame label.
	Window int    `json:"window"`
	Label  string `json:"label"`
	// Bursts/Quarantined describe the sealed window's population.
	Bursts      int  `json:"bursts"`
	Quarantined int  `json:"quarantined,omitempty"`
	NumClusters int  `json:"numClusters"`
	Degraded    bool `json:"degraded,omitempty"`
	// DegradedReason says why the frame was unusable.
	DegradedReason string `json:"degradedReason,omitempty"`
	// Incremental reports whether cluster labels were maintained
	// incrementally (vs a seal-time batch run); Epoch is the
	// normalisation epoch after this close (bumps mean the series was
	// renormalised).
	Incremental bool `json:"incremental"`
	Epoch       int  `json:"epoch"`

	// Evaluation rollup over the whole sequence so far. EvalError is
	// set (and the rollup zero) when the sequence is not yet trackable,
	// e.g. every window so far is degraded.
	EvalError        string       `json:"evalError,omitempty"`
	Windows          int          `json:"windows"`
	Regions          int          `json:"regions,omitempty"`
	TrackedRegions   int          `json:"trackedRegions,omitempty"`
	OptimalK         int          `json:"optimalK,omitempty"`
	Coverage         float64      `json:"coverage,omitempty"`
	FramesBridged    int          `json:"framesBridged,omitempty"`
	FramesDegraded   int          `json:"framesDegraded,omitempty"`
	TotalQuarantined int          `json:"totalQuarantined,omitempty"`
	Trends           []TrendDelta `json:"trends,omitempty"`

	// Result is the full evaluation backing the rollup (nil when
	// EvalError is set). Not serialised: subscribers get the rollup,
	// persistence exports the result separately.
	Result *core.Result `json:"-"`
	// Sealed is the durable form of the closed window (nil only for
	// callers that disabled it). Not serialised into the event payload.
	Sealed *SealedWindow `json:"-"`
}

// buildDelta assembles the event for one sealed frame and (optional)
// sequence evaluation.
func buildDelta(f *core.Frame, res *core.Result, evalErr error, incremental bool, epoch int, ms []metrics.Metric) *Delta {
	d := &Delta{
		Window:         f.Index,
		Label:          f.Label,
		Bursts:         len(f.Labels),
		Quarantined:    f.Quarantined,
		NumClusters:    f.NumClusters,
		Degraded:       f.Degraded,
		DegradedReason: f.DegradedReason,
		Incremental:    incremental,
		Epoch:          epoch,
		Windows:        f.Index + 1,
	}
	if evalErr != nil {
		d.EvalError = evalErr.Error()
		return d
	}
	d.Result = res
	d.Regions = len(res.Regions)
	d.TrackedRegions = res.SpanningCount
	d.OptimalK = res.OptimalK
	d.Coverage = res.Coverage
	d.FramesBridged = res.Diagnostics.FramesBridged
	d.FramesDegraded = res.Diagnostics.FramesDegraded
	d.TotalQuarantined = res.Diagnostics.BurstsQuarantined
	// The sealed frame may carry a stale degraded flag from before the
	// evaluation re-derived the collapse rule; mirror the live state.
	d.Degraded = f.Degraded
	d.DegradedReason = f.DegradedReason
	for _, tr := range res.Regions {
		if !tr.Spanning {
			continue
		}
		for _, m := range ms {
			rt, err := res.Trend(tr.ID, m)
			if err != nil {
				continue
			}
			td := TrendDelta{Region: tr.ID, Metric: m.Name, RelDelta: rt.RelDeltaMean()}
			for i := len(rt.Points) - 1; i >= 0; i-- {
				if rt.Points[i].Present {
					td.Mean = rt.Points[i].Mean
					break
				}
			}
			d.Trends = append(d.Trends, td)
		}
	}
	sort.Slice(d.Trends, func(i, j int) bool {
		if d.Trends[i].Region != d.Trends[j].Region {
			return d.Trends[i].Region < d.Trends[j].Region
		}
		return d.Trends[i].Metric < d.Trends[j].Metric
	})
	return d
}
