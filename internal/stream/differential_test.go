package stream

import (
	"bytes"
	"context"
	"testing"

	"perftrack/internal/cluster"
	"perftrack/internal/core"
	"perftrack/internal/faults"
	"perftrack/internal/metrics"
	"perftrack/internal/oracle"
	"perftrack/internal/trace"
)

func pipelineConfig(variant uint64) core.Config {
	switch variant % 4 {
	case 0:
		return core.Config{Cluster: cluster.Config{Eps: 0.07, MinPts: 5, MinClusterWeight: 0.002}}
	case 1:
		return core.Config{
			Cluster:            cluster.Config{Eps: 0.1, MinPts: 4, MaxClusters: 6},
			MinBurstDurationNS: 1000,
		}
	case 2:
		return core.Config{Cluster: cluster.Config{MinPts: 4}}
	default:
		return core.Config{
			Cluster:         cluster.Config{Eps: 0.07, MinPts: 4},
			TopDurationFrac: 0.9,
		}
	}
}

func metricSpace(cfg core.Config) []metrics.Metric { return pipelineMetrics(cfg) }

// batchExport runs the batch pipeline over the given window traces
// (canonically sorted clones) and returns export bytes, or the error.
func batchExport(t *testing.T, windows []*trace.Trace, cfg core.Config) ([]byte, error) {
	t.Helper()
	canon := make([]*trace.Trace, len(windows))
	for i, w := range windows {
		c := w.Clone()
		c.SortByTaskTime()
		canon[i] = c
	}
	frames, err := core.BuildFrames(canon, cfg)
	if err != nil {
		return nil, err
	}
	res, err := core.NewTracker(cfg).Track(frames)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf, metricSpace(cfg)); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes(), nil
}

func resultBytes(t *testing.T, res *core.Result, cfg core.Config) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf, metricSpace(cfg)); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

// checkDeltas compares every sealed window's evaluation against the
// batch pipeline over the same prefix of window traces.
func checkDeltas(t *testing.T, tag string, deltas []*Delta, windows []*trace.Trace, cfg core.Config) {
	t.Helper()
	if len(deltas) != len(windows) {
		t.Fatalf("%s: sealed %d windows, want %d", tag, len(deltas), len(windows))
	}
	for n := 1; n <= len(windows); n++ {
		d := deltas[n-1]
		if d.Window != n-1 {
			t.Fatalf("%s: delta %d has window %d", tag, n-1, d.Window)
		}
		want, batchErr := batchExport(t, windows[:n], cfg)
		if batchErr != nil {
			if d.EvalError != batchErr.Error() {
				t.Fatalf("%s: window %d: eval error %q, batch error %q", tag, n-1, d.EvalError, batchErr)
			}
			continue
		}
		if d.EvalError != "" {
			t.Fatalf("%s: window %d: unexpected eval error %q", tag, n-1, d.EvalError)
		}
		got := resultBytes(t, d.Result, cfg)
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: window %d: streaming export diverges from batch (%d vs %d bytes)",
				tag, n-1, len(got), len(want))
		}
	}
}

// replayDuration feeds the trace into a duration-windowed session in
// arrival order and returns the deltas plus the batch-equivalent
// window traces (SplitWindows over the same boundaries).
func replayDuration(t *testing.T, tr *trace.Trace, nWin int, cfg core.Config) ([]*Delta, []*trace.Trace) {
	t.Helper()
	// A live producer appends in time order; the session's late-drop
	// policy only concerns stragglers (covered by the policy tests).
	ordered := tr.Clone()
	ordered.SortByTime()
	start, end := tr.Span()
	width := (end - start + int64(nWin) - 1) / int64(nWin)
	sess, err := New(Config{
		Meta:     tr.Meta,
		Window:   WindowSpec{WindowNS: width, OriginNS: start, MaxWindows: nWin},
		Pipeline: cfg,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx := context.Background()
	var deltas []*Delta
	for _, b := range ordered.Bursts {
		res, err := sess.Append(ctx, b)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		deltas = append(deltas, res.Sealed...)
	}
	fin, err := sess.Finish(ctx, nWin)
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	deltas = append(deltas, fin...)
	return deltas, tr.SplitWindows(nWin)
}

// TestStreamReplayDifferential is the subsystem's differential gate:
// ~150 seeded oracle scenarios (seeds × config variants × window
// shapes) replayed live through a Session are bit-exact, after every
// window close, with the batch pipeline over the same boundaries.
func TestStreamReplayDifferential(t *testing.T) {
	count := 0
	for seed := uint64(0); seed < 40; seed++ {
		ranks := 3 + int(seed%4)
		phases := 2 + int(seed%2)
		tr := oracle.GenTraces(seed, "live", ranks, 5, phases)
		for _, variant := range []uint64{seed, seed + 1} {
			cfg := pipelineConfig(variant)
			nWin := 3 + int((seed+variant)%3)
			deltas, windows := replayDuration(t, tr, nWin, cfg)
			checkDeltas(t, "duration", deltas, windows, cfg)
			count++
		}
	}
	if count < 80 {
		t.Fatalf("only %d scenario replays", count)
	}
}

// TestStreamCountWindowsDifferential checks the count-based windowing
// mode: every N appended bursts close a window, equivalent to a batch
// pipeline chunking the input every N bursts in arrival order.
func TestStreamCountWindowsDifferential(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		tr := oracle.GenTraces(seed, "chunked", 4, 4, 2)
		cfg := pipelineConfig(seed)
		n := 40 + int(seed%3)*17
		sess, err := New(Config{
			Meta:     tr.Meta,
			Window:   WindowSpec{CountN: n},
			Pipeline: cfg,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		var deltas []*Delta
		for _, b := range tr.Bursts {
			res, err := sess.Append(ctx, b)
			if err != nil {
				t.Fatal(err)
			}
			deltas = append(deltas, res.Sealed...)
		}
		fin, err := sess.Finish(ctx, 0)
		if err != nil {
			t.Fatal(err)
		}
		deltas = append(deltas, fin...)
		// Batch equivalent: chunk the arrival sequence every n bursts.
		var windows []*trace.Trace
		for i := 0; i < len(tr.Bursts); i += n {
			end := min(i+n, len(tr.Bursts))
			w := &trace.Trace{Meta: tr.Meta, Bursts: tr.Bursts[i:end]}
			w.Meta.Label = deltas[len(windows)].Label
			windows = append(windows, w)
		}
		checkDeltas(t, "count", deltas, windows, cfg)
	}
}

// TestStreamFaultInjectionDifferential replays fault-injected traces
// through live sessions: corrupt bursts quarantine at append, clock
// skews move bursts across windows (or drop them as early/late), and
// the sealed sequence still matches batch bit-exactly.
func TestStreamFaultInjectionDifferential(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		base := oracle.GenTraces(seed, "faulty", 4, 5, 2)
		for fi, inj := range faults.TraceInjectors(0.10) {
			faulty, _ := inj.Apply(base, seed)
			cfg := pipelineConfig(seed + uint64(fi))
			deltas, windows := replayDuration(t, faulty, 4, cfg)
			checkDeltas(t, "fault-"+inj.Name(), deltas, windows, cfg)
		}
	}
}
