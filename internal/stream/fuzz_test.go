package stream

import (
	"bytes"
	"context"
	"testing"

	"perftrack/internal/core"
	"perftrack/internal/faults"
	"perftrack/internal/oracle"
	"perftrack/internal/trace"
)

// FuzzStreamAppend feeds fault-injected byte streams into the append
// path: whatever a lenient decode salvages is appended burst-by-burst
// into a count-windowed session, and the final evaluation must stay
// bit-exact with the batch pipeline over the same chunks. The seed
// corpus covers clean encodings plus every byte-level injector.
func FuzzStreamAppend(f *testing.F) {
	base := oracle.GenTraces(1, "fz", 3, 3, 2)
	var buf bytes.Buffer
	if err := trace.Write(&buf, base); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes(), uint64(23))
	for i, bi := range faults.ByteInjectors(0.05) {
		data, _ := bi.ApplyBytes(buf.Bytes(), uint64(7+i))
		f.Add(data, uint64(11+i))
	}
	f.Fuzz(func(t *testing.T, data []byte, n uint64) {
		if len(data) > 1<<16 {
			return
		}
		tr, _, err := trace.ReadWith(bytes.NewReader(data), trace.DecodeOptions{Strict: false})
		if err != nil || tr == nil || len(tr.Bursts) == 0 {
			return
		}
		if len(tr.Bursts) > 384 {
			tr.Bursts = tr.Bursts[:384]
		}
		countN := int(n%96) + 32
		cfg := pipelineConfig(n)
		sess, err := New(Config{
			Meta:     tr.Meta,
			Window:   WindowSpec{CountN: countN},
			Pipeline: cfg,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		ctx := context.Background()
		var deltas []*Delta
		for _, b := range tr.Bursts {
			res, err := sess.Append(ctx, b)
			if err != nil {
				t.Fatalf("Append: %v", err)
			}
			deltas = append(deltas, res.Sealed...)
		}
		fin, err := sess.Finish(ctx, 0)
		if err != nil {
			t.Fatalf("Finish: %v", err)
		}
		deltas = append(deltas, fin...)
		if len(deltas) == 0 {
			return
		}
		// Batch equivalent of the full stream: arrival-order chunks.
		var windows []*trace.Trace
		for i := 0; i < len(tr.Bursts); i += countN {
			end := min(i+countN, len(tr.Bursts))
			w := &trace.Trace{Meta: tr.Meta, Bursts: tr.Bursts[i:end]}
			w.Meta.Label = deltas[len(windows)].Label
			windows = append(windows, w)
		}
		if len(windows) != len(deltas) {
			t.Fatalf("%d windows sealed, want %d", len(deltas), len(windows))
		}
		final := deltas[len(deltas)-1]
		want, batchErr := batchExportFuzz(windows, cfg)
		if batchErr != nil {
			if final.EvalError != batchErr.Error() {
				t.Fatalf("eval error %q, batch error %q", final.EvalError, batchErr)
			}
			return
		}
		if final.EvalError != "" {
			t.Fatalf("unexpected eval error %q", final.EvalError)
		}
		var got bytes.Buffer
		if err := final.Result.WriteJSON(&got, metricSpace(cfg)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatal("streaming export diverges from batch on fuzzed input")
		}
	})
}

// batchExportFuzz is batchExport without the *testing.T plumbing (fuzz
// workers pass a different T).
func batchExportFuzz(windows []*trace.Trace, cfg core.Config) ([]byte, error) {
	canon := make([]*trace.Trace, len(windows))
	for i, w := range windows {
		c := w.Clone()
		c.SortByTaskTime()
		canon[i] = c
	}
	frames, err := core.BuildFrames(canon, cfg)
	if err != nil {
		return nil, err
	}
	res, err := core.NewTracker(cfg).Track(frames)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf, pipelineMetrics(cfg)); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
