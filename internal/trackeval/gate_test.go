package trackeval

import (
	"strings"
	"testing"
)

// TestGatePinnedCorpus is the quality gate CI runs (`make trackeval`):
// the full pinned corpus at 10% fault severity must clear every floor.
func TestGatePinnedCorpus(t *testing.T) {
	card, err := Evaluate(Options{})
	if err != nil {
		t.Fatalf("evaluating pinned corpus: %v", err)
	}
	if err := card.Gate(); err != nil {
		t.Fatalf("pinned corpus fails the quality gate: %v\n%s", err, card.Table().String())
	}
	a := card.Aggregate
	if a.Scenarios != 14*len(PinnedSeeds()) {
		t.Errorf("scenarios = %d, want %d (14 families x %d seeds)", a.Scenarios, 14*len(PinnedSeeds()), len(PinnedSeeds()))
	}
	if a.DegradedFrames != len(PinnedSeeds()) {
		t.Errorf("degradedFrames = %d, want %d (one dead frame per seed)", a.DegradedFrames, len(PinnedSeeds()))
	}
	// The clean families must be tracked perfectly — any slack here means
	// the corpus stopped exercising what it claims to.
	for _, f := range card.Families {
		switch f.Family {
		case "steady", "drift", "crossing", "birthdeath":
			if f.MOTA != 1 || f.Purity != 1 {
				t.Errorf("clean family %s: mota=%v purity=%v, want exactly 1", f.Family, f.MOTA, f.Purity)
			}
		}
	}
	if a.DiagnosisAccuracy != 1 {
		t.Errorf("diagnosis accuracy = %v, want 1 on the planted-cause corpus", a.DiagnosisAccuracy)
	}
}

// TestGateCatchesNerf proves the gate bites: ablating the displacement
// evaluator — the paper's primary correlation signal — must fail it.
func TestGateCatchesNerf(t *testing.T) {
	clean, err := Evaluate(Options{SkipDiagnosis: true})
	if err != nil {
		t.Fatalf("clean evaluate: %v", err)
	}
	cfg := DefaultConfig()
	cfg.DisableDisplacement = true
	nerfed, err := Evaluate(Options{Config: &cfg, SkipDiagnosis: true})
	if err != nil {
		t.Fatalf("nerfed evaluate: %v", err)
	}

	if err := nerfed.Gate(); err == nil {
		t.Fatalf("gate passed with the displacement evaluator disabled:\n%s", nerfed.Table().String())
	} else if !strings.Contains(err.Error(), "mota") {
		t.Errorf("gate failure should name the mota floor, got: %v", err)
	}
	if drop := clean.Aggregate.MOTA - nerfed.Aggregate.MOTA; drop < 0.03 {
		t.Errorf("MOTA dropped only %.4f under ablation, want a clearly measurable (>= 0.03) drop", drop)
	}
	if nerfed.Aggregate.IDSwitches <= clean.Aggregate.IDSwitches {
		t.Errorf("idSwitches clean=%d nerfed=%d, want the ablation to cost identity",
			clean.Aggregate.IDSwitches, nerfed.Aggregate.IDSwitches)
	}
}

func TestGateErrorListsEveryMiss(t *testing.T) {
	card := &Scorecard{}
	card.Aggregate = AggregateScore{Purity: 0.5, Coverage: 0.5, MOTA: 0.5, DiagnosisAccuracy: 0.5}
	err := card.Gate()
	if err == nil {
		t.Fatal("gate passed an all-0.5 scorecard")
	}
	for _, want := range []string{"purity", "coverage", "mota", "diagnosis-accuracy"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("gate error misses %q: %v", want, err)
		}
	}
}
