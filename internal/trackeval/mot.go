package trackeval

import (
	"sort"

	"perftrack/internal/core"
	"perftrack/internal/oracle"
)

// MOT holds multi-object-tracking quality metrics for one scenario,
// computed against the planted Burst.Phase ground truth. All mass-based
// metrics weight bursts by duration, so a mistracked long region hurts
// more than a mistracked blip.
type MOT struct {
	// GTTracks is the number of distinct planted phases observed.
	GTTracks int `json:"gtTracks"`
	// ScoredFrames counts healthy (non-degraded) frames with annotated
	// bursts; degraded frames are excluded from every metric.
	ScoredFrames int `json:"scoredFrames"`
	// IDSwitches counts frame transitions where a phase's majority
	// tracked region changed identity (the classic MOT ID switch).
	IDSwitches int `json:"idSwitches"`
	// Fragmentation counts interruptions of a phase's coverage: each
	// extra maximal run of tracked frames beyond the first.
	Fragmentation int `json:"fragmentation"`
	// Purity is the duration-weighted fraction of each tracked region's
	// mass belonging to its majority phase, averaged over regions.
	Purity float64 `json:"purity"`
	// Coverage is coverage-vs-truth: the fraction of ground-truth mass
	// captured by each phase's single globally-matched region.
	Coverage float64 `json:"coverage"`
	// MissRate is the fraction of ground-truth mass left untracked
	// (noise or unlinked clusters).
	MissRate float64 `json:"missRate"`
	// MismatchRate is the fraction of ground-truth mass tracked, but by
	// a region other than the phase's global match.
	MismatchRate float64 `json:"mismatchRate"`
	// MOTA is the MOTA-like composite:
	// 1 - MissRate - MismatchRate - IDSwitchRate.
	MOTA float64 `json:"mota"`
	// MeanARI is the mean per-frame adjusted Rand index between the
	// planted phases and the tracked-region labelling.
	MeanARI float64 `json:"meanAri"`
	// GTMass is the total annotated burst duration scored (the weight
	// of this scenario inside corpus aggregates).
	GTMass float64 `json:"gtMass"`
}

type phaseRegion struct{ phase, region int }

// Score computes the MOT metrics of one tracked result against the
// planted Phase annotations carried by the frames' filtered traces.
func Score(res *core.Result) MOT {
	var m MOT

	phaseMass := map[int]float64{}        // phase -> total gt mass
	pairMass := map[phaseRegion]float64{} // (phase, region) -> mass, region 0 = untracked
	regionMass := map[int]float64{}       // region -> tracked mass (region > 0)

	// Per-phase, per-scored-frame majority region (0 = missed), in frame
	// order, for the ID-switch / fragmentation walk.
	type frameMatch struct {
		frame int
		match map[int]int
	}
	var matches []frameMatch

	ariSum, ariN := 0.0, 0

	for fi, f := range res.Frames {
		if f.Degraded || f.Trace == nil {
			continue
		}
		labels := res.RegionLabels(fi)
		truth := make([]int, len(f.Trace.Bursts))
		local := map[phaseRegion]float64{}
		any := false
		for i, b := range f.Trace.Bursts {
			truth[i] = b.Phase
			if b.Phase <= 0 {
				continue
			}
			any = true
			w := float64(b.DurationNS)
			if w <= 0 {
				w = 1
			}
			r := 0
			if i < len(labels) {
				r = labels[i]
			}
			phaseMass[b.Phase] += w
			pairMass[phaseRegion{b.Phase, r}] += w
			local[phaseRegion{b.Phase, r}] += w
			if r > 0 {
				regionMass[r] += w
			}
		}
		if !any {
			continue
		}
		m.ScoredFrames++
		if len(labels) == len(truth) {
			ariSum += oracle.ARI(truth, labels)
			ariN++
		}
		matches = append(matches, frameMatch{fi, argmaxRegions(local)})
	}

	total := 0.0
	phases := make([]int, 0, len(phaseMass))
	for p, w := range phaseMass {
		phases = append(phases, p)
		total += w
	}
	sort.Ints(phases)
	m.GTTracks = len(phases)
	m.GTMass = total
	if total == 0 {
		return m
	}

	// Global phase -> region matching (majority mass over all frames).
	global := argmaxRegions(pairMass)

	covered, missed := 0.0, 0.0
	for _, p := range phases {
		// A phase whose global match is 0 was never tracked anywhere: all
		// its mass is missed, none covered.
		if global[p] != 0 {
			covered += pairMass[phaseRegion{p, global[p]}]
		}
		missed += pairMass[phaseRegion{p, 0}]
	}
	m.Coverage = covered / total
	m.MissRate = missed / total
	m.MismatchRate = (total - covered - missed) / total

	// Purity: majority-phase mass fraction per region, mass-weighted.
	regions := make([]int, 0, len(regionMass))
	for r := range regionMass {
		regions = append(regions, r)
	}
	sort.Ints(regions)
	pureMass, trackedMass := 0.0, 0.0
	for _, r := range regions {
		best := 0.0
		for _, p := range phases {
			if w := pairMass[phaseRegion{p, r}]; w > best {
				best = w
			}
		}
		pureMass += best
		trackedMass += regionMass[r]
	}
	if trackedMass > 0 {
		m.Purity = pureMass / trackedMass
	}

	// ID switches and fragmentation along each phase's frame sequence.
	transitions := 0
	for _, p := range phases {
		lastID, present, runs := 0, 0, 0
		inRun := false
		for _, fm := range matches {
			r, ok := fm.match[p]
			if !ok {
				continue // phase absent from this frame (birth/death)
			}
			present++
			if r == 0 {
				inRun = false
				continue
			}
			if !inRun {
				runs++
				inRun = true
			}
			if lastID != 0 && r != lastID {
				m.IDSwitches++
			}
			lastID = r
		}
		if runs > 1 {
			m.Fragmentation += runs - 1
		}
		if present > 1 {
			transitions += present - 1
		}
	}

	idswRate := 0.0
	if transitions > 0 {
		idswRate = float64(m.IDSwitches) / float64(transitions)
	}
	m.MOTA = 1 - m.MissRate - m.MismatchRate - idswRate
	if ariN > 0 {
		m.MeanARI = ariSum / float64(ariN)
	}
	return m
}

// argmaxRegions maps each phase present in mass to its heaviest tracked
// region (region > 0; 0 when every burst of the phase went untracked).
// Ties break toward the lower region id for determinism.
func argmaxRegions(mass map[phaseRegion]float64) map[int]int {
	keys := make([]phaseRegion, 0, len(mass))
	for k := range mass {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].phase != keys[j].phase {
			return keys[i].phase < keys[j].phase
		}
		return keys[i].region < keys[j].region
	})
	best := map[int]float64{}
	out := map[int]int{}
	for _, k := range keys {
		if _, ok := out[k.phase]; !ok {
			out[k.phase] = 0 // phase seen; may stay unmatched
		}
		if k.region == 0 {
			continue
		}
		if w := mass[k]; w > best[k.phase] {
			best[k.phase] = w
			out[k.phase] = k.region
		}
	}
	return out
}
