package trackeval

import (
	"strings"
	"testing"

	"perftrack/internal/core"
)

// TestDiagnosisCorpusAllSeeds: every planted cause must be recovered,
// at model-corroborated confidence, for every pinned seed.
func TestDiagnosisCorpusAllSeeds(t *testing.T) {
	cfg := DefaultConfig()
	for _, seed := range PinnedSeeds() {
		scores, err := EvaluateDiagnosisCorpus(seed, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(scores) != 5 {
			t.Fatalf("seed %d: %d diagnosis scenarios, want 5", seed, len(scores))
		}
		for _, s := range scores {
			if !s.Hit {
				t.Errorf("seed %d: %s: planted %q, diagnosed %q (%s)",
					seed, s.Name, s.Planted, s.Diagnosed, s.Evidence)
			}
		}
	}
}

func diagResult(t *testing.T, name string, seed uint64) (*core.Result, DiagScenario) {
	t.Helper()
	cfg := DefaultConfig()
	for _, ds := range DiagnosisCorpus(seed) {
		if !strings.HasPrefix(ds.Name, name+"@") {
			continue
		}
		frames, err := core.BuildFrames(ds.Traces, cfg)
		if err != nil {
			t.Fatalf("%s: %v", ds.Name, err)
		}
		res, err := core.NewTracker(cfg).Track(frames)
		if err != nil {
			t.Fatalf("%s: %v", ds.Name, err)
		}
		return res, ds
	}
	t.Fatalf("no diagnosis scenario named %s", name)
	return nil, DiagScenario{}
}

func causeOf(diags []Diagnosis, c Cause) (Diagnosis, bool) {
	for _, d := range diags {
		if d.Cause == c {
			return d, true
		}
	}
	return Diagnosis{}, false
}

func TestDiagnoseCompilerEffectCorroborated(t *testing.T) {
	res, _ := diagResult(t, "compiler", 1)
	d, ok := causeOf(Diagnose(res), CauseCompilerEffect)
	if !ok {
		t.Fatalf("compiler effect not diagnosed: %+v", Diagnose(res))
	}
	if d.Confidence < 0.9 {
		t.Errorf("confidence = %v, want >= 0.9 (the xlf factors match the model)", d.Confidence)
	}
	for _, want := range []string{"gfortran", "xlf", "instructions", "IPC"} {
		if !strings.Contains(d.Evidence, want) {
			t.Errorf("evidence misses %q: %s", want, d.Evidence)
		}
	}
}

func TestDiagnoseCacheCliffNamesLevel(t *testing.T) {
	res, _ := diagResult(t, "cachecliff", 1)
	d, ok := causeOf(Diagnose(res), CauseCacheCliff)
	if !ok {
		t.Fatal("cache cliff not diagnosed")
	}
	if d.Confidence < 0.9 {
		t.Errorf("confidence = %v, want >= 0.9 (penalty model agrees)", d.Confidence)
	}
	if !strings.Contains(d.Evidence, "L1") {
		t.Errorf("evidence should name the overflowed level, got: %s", d.Evidence)
	}
}

func TestDiagnoseContentionKnee(t *testing.T) {
	res, _ := diagResult(t, "contention", 1)
	d, ok := causeOf(Diagnose(res), CauseContentionKnee)
	if !ok {
		t.Fatal("contention knee not diagnosed")
	}
	if d.Confidence < 0.9 {
		t.Errorf("confidence = %v, want >= 0.9 (bandwidth demand corroborates)", d.Confidence)
	}
	if !strings.Contains(d.Evidence, "packing grows 1→12") {
		t.Errorf("evidence should state the packing growth, got: %s", d.Evidence)
	}
}

func TestDiagnoseImbalanceFlagsPlantedRank(t *testing.T) {
	res, ds := diagResult(t, "imbalance", 1)
	d, ok := causeOf(Diagnose(res), CauseLoadImbalance)
	if !ok {
		t.Fatal("load imbalance not diagnosed")
	}
	if !containsInt(d.AnomalousRanks, ds.AnomalousRank) {
		t.Errorf("anomalous ranks %v miss the planted rank %d", d.AnomalousRanks, ds.AnomalousRank)
	}
	if len(d.AnomalousRanks) != 1 {
		t.Errorf("anomalous ranks %v, want exactly the planted one", d.AnomalousRanks)
	}
}

func TestDiagnoseSteadyControlStaysQuiet(t *testing.T) {
	res, _ := diagResult(t, "steady", 1)
	for _, d := range Diagnose(res) {
		if d.Cause != CauseSteady {
			t.Errorf("false positive on the steady control: %+v", d)
		}
		if len(d.AnomalousRanks) != 0 {
			t.Errorf("steady control flagged ranks %v", d.AnomalousRanks)
		}
	}
}
