package trackeval

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"perftrack/internal/trajectory"
)

// fakeCard builds a scorecard with the given aggregate quality numbers,
// keeping the per-family structure realistic enough for perfdb export.
func fakeCard(mota, purity, coverage float64) *Scorecard {
	card := &Scorecard{Version: scorecardVersion, Seeds: []uint64{1}, Ranks: 8, Iters: 2, Severity: 0.1}
	for i, fam := range []string{"steady", "drift", "crossing"} {
		card.Scenarios = append(card.Scenarios, ScenarioScore{
			Name:   fmt.Sprintf("%s@0001", fam),
			Family: fam,
			Seed:   1,
			Frames: corpusFrames,
			MOT: MOT{
				GTTracks: 3,
				Purity:   purity,
				Coverage: coverage,
				MOTA:     mota,
				MeanARI:  mota,
				GTMass:   1e9 * float64(i+1),
			},
		})
	}
	card.fold()
	return card
}

func TestFoldWeightsByMass(t *testing.T) {
	card := &Scorecard{}
	card.Scenarios = []ScenarioScore{
		{Family: "a", MOT: MOT{MOTA: 1.0, Purity: 1.0, Coverage: 1.0, GTMass: 3}},
		{Family: "b", MOT: MOT{MOTA: 0.0, Purity: 0.5, Coverage: 0.5, GTMass: 1}},
	}
	card.fold()
	if got := card.Aggregate.MOTA; math.Abs(got-0.75) > 1e-12 {
		t.Errorf("aggregate MOTA = %v, want 0.75 (3:1 mass weighting)", got)
	}
	if got := card.Aggregate.Purity; math.Abs(got-0.875) > 1e-12 {
		t.Errorf("aggregate purity = %v, want 0.875", got)
	}
	if card.Aggregate.DiagnosisAccuracy != 1 {
		t.Errorf("diagnosis accuracy = %v, want 1 when no diagnosis scenarios ran", card.Aggregate.DiagnosisAccuracy)
	}
	if len(card.Families) != 2 || card.Families[0].Family != "a" {
		t.Errorf("families = %+v, want sorted [a b]", card.Families)
	}
}

// TestPerfDBDocumentChainsAndDetects is the in-package half of the
// perfdb round trip: a history of scorecard documents must parse with
// trajectory.ParseRun, chain into stable trajectories, and a quality
// drop in the newest run must come back as a regressed verdict on MOTA
// — the exact machinery `trackctl regressions` runs server-side.
func TestPerfDBDocumentChainsAndDetects(t *testing.T) {
	var runs []trajectory.Run
	for i := 0; i < 6; i++ {
		card := fakeCard(1.0, 0.99, 1.0)
		if i == 5 {
			card = fakeCard(0.80, 0.90, 0.85) // the nerfed commit
		}
		payload, err := card.PerfDBDocument()
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		run, err := trajectory.ParseRun(payload, fmt.Sprintf("k%d", i), fmt.Sprintf("commit-%d", i), int64(i))
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if len(run.Objects) != 4 {
			t.Fatalf("run %d: %d objects, want 4 (aggregate + 3 families)", i, len(run.Objects))
		}
		runs = append(runs, run)
	}

	trajs := trajectory.Chain(runs, trajectory.LinkConfig{})
	if len(trajs) == 0 {
		t.Fatal("no trajectories chained from scorecard history")
	}
	long := 0
	for _, tr := range trajs {
		if len(tr.Points) == 6 {
			long++
		}
	}
	if long < 4 {
		t.Errorf("%d trajectories span all 6 runs, want all 4 objects to chain", long)
	}

	verdicts := trajectory.Detect(runs, trajs, trajectory.DetectorConfig{Metric: "MOTA"})
	regressed := 0
	for _, v := range verdicts {
		if v.Kind == trajectory.KindRegressed {
			regressed++
			if v.RelChange > -0.05 {
				t.Errorf("regression relChange = %v, want a clear drop", v.RelChange)
			}
		}
	}
	if regressed == 0 {
		t.Fatalf("quality drop not detected; verdicts: %+v", verdicts)
	}
}

func TestTableRendersEveryFamily(t *testing.T) {
	card := fakeCard(1, 1, 1)
	out := card.Table().String()
	for _, fam := range []string{"steady", "drift", "crossing", "TOTAL"} {
		if !strings.Contains(out, fam) {
			t.Errorf("table misses row %q:\n%s", fam, out)
		}
	}
	timing := card.TimingTable().String()
	for _, stage := range []string{"generate", "build-frames", "track", "score", "diagnose", "TOTAL"} {
		if !strings.Contains(timing, stage) {
			t.Errorf("timing table misses stage %q:\n%s", stage, timing)
		}
	}
}
