package trackeval

import (
	"fmt"
	"sort"
	"time"

	"perftrack/internal/cluster"
	"perftrack/internal/core"
)

// Timing is the per-stage wall-clock breakdown of an evaluation. It is
// excluded from the canonical scorecard JSON (timings are never
// deterministic) and surfaced separately.
type Timing struct {
	GenerateNS int64 `json:"generateNs"`
	BuildNS    int64 `json:"buildNs"`
	TrackNS    int64 `json:"trackNs"`
	ScoreNS    int64 `json:"scoreNs"`
	DiagnoseNS int64 `json:"diagnoseNs"`
}

func (t *Timing) add(o Timing) {
	t.GenerateNS += o.GenerateNS
	t.BuildNS += o.BuildNS
	t.TrackNS += o.TrackNS
	t.ScoreNS += o.ScoreNS
	t.DiagnoseNS += o.DiagnoseNS
}

// TotalNS is the summed wall-clock of all stages.
func (t Timing) TotalNS() int64 {
	return t.GenerateNS + t.BuildNS + t.TrackNS + t.ScoreNS + t.DiagnoseNS
}

// ScenarioScore is the scored outcome of one corpus scenario.
type ScenarioScore struct {
	Name     string  `json:"name"`
	Family   string  `json:"family"`
	Seed     uint64  `json:"seed"`
	Fault    string  `json:"fault,omitempty"`
	Severity float64 `json:"severity,omitempty"`

	Frames         int     `json:"frames"`
	DegradedFrames int     `json:"degradedFrames"`
	Regions        int     `json:"regions"`
	Spanning       int     `json:"spanning"`
	OptimalK       int     `json:"optimalK"`
	CoreCoverage   float64 `json:"coreCoverage"`

	MOT

	Timing Timing `json:"-"`
}

// DefaultConfig is the evaluation pipeline configuration: identical to
// the trackctl / service defaults so the gate scores the tracker users
// actually run.
func DefaultConfig() core.Config {
	return core.Config{Cluster: cluster.Config{
		Eps:              0.07,
		MinPts:           5,
		MinClusterWeight: 0.002,
	}}
}

// EvaluateScenario runs the full pipeline (frames, tracking, scoring)
// over one scenario and returns its score.
func EvaluateScenario(sc Scenario, cfg core.Config) (ScenarioScore, error) {
	ss := ScenarioScore{
		Name:     sc.Name,
		Family:   sc.Family,
		Seed:     sc.Seed,
		Fault:    sc.Fault,
		Severity: sc.Severity,
	}

	t0 := time.Now()
	frames, err := core.BuildFrames(sc.Traces, cfg)
	if err != nil {
		return ss, fmt.Errorf("scenario %s: building frames: %w", sc.Name, err)
	}
	t1 := time.Now()
	res, err := core.NewTracker(cfg).Track(frames)
	if err != nil {
		return ss, fmt.Errorf("scenario %s: tracking: %w", sc.Name, err)
	}
	t2 := time.Now()
	ss.MOT = Score(res)
	t3 := time.Now()

	ss.Frames = len(res.Frames)
	for _, f := range res.Frames {
		if f.Degraded {
			ss.DegradedFrames++
		}
	}
	ss.Regions = len(res.Regions)
	ss.Spanning = res.SpanningCount
	ss.OptimalK = res.OptimalK
	ss.CoreCoverage = res.Coverage
	ss.Timing = Timing{
		BuildNS: t1.Sub(t0).Nanoseconds(),
		TrackNS: t2.Sub(t1).Nanoseconds(),
		ScoreNS: t3.Sub(t2).Nanoseconds(),
	}
	return ss, nil
}

// Options parametrises a corpus evaluation.
type Options struct {
	// Seeds selects the corpus slices (default PinnedSeeds()).
	Seeds []uint64
	// Ranks, Iters and Severity forward to CorpusSpec.
	Ranks, Iters int
	Severity     float64
	// Config overrides the pipeline configuration (nil = DefaultConfig).
	Config *core.Config
	// SkipDiagnosis skips the planted-cause diagnosis corpus.
	SkipDiagnosis bool
}

// Evaluate runs the scenario corpus (and, unless skipped, the diagnosis
// corpus) over every seed and folds the scores into one scorecard.
func Evaluate(opts Options) (*Scorecard, error) {
	seeds := opts.Seeds
	if len(seeds) == 0 {
		seeds = PinnedSeeds()
	}
	cfg := DefaultConfig()
	if opts.Config != nil {
		cfg = *opts.Config
	}
	spec := CorpusSpec{Ranks: opts.Ranks, Iters: opts.Iters, Severity: opts.Severity}.withDefaults()

	card := &Scorecard{
		Version:  scorecardVersion,
		Seeds:    append([]uint64(nil), seeds...),
		Ranks:    spec.Ranks,
		Iters:    spec.Iters,
		Severity: spec.Severity,
	}
	for _, seed := range seeds {
		spec.Seed = seed
		tg0 := time.Now()
		corpus := Corpus(spec)
		card.Timing.GenerateNS += time.Since(tg0).Nanoseconds()
		for _, sc := range corpus {
			ss, err := EvaluateScenario(sc, cfg)
			if err != nil {
				return nil, err
			}
			card.Timing.add(ss.Timing)
			card.Scenarios = append(card.Scenarios, ss)
		}
		if !opts.SkipDiagnosis {
			td0 := time.Now()
			diags, err := EvaluateDiagnosisCorpus(seed, cfg)
			if err != nil {
				return nil, err
			}
			card.Timing.DiagnoseNS += time.Since(td0).Nanoseconds()
			card.Diagnoses = append(card.Diagnoses, diags...)
		}
	}

	sort.Slice(card.Scenarios, func(i, j int) bool {
		a, b := &card.Scenarios[i], &card.Scenarios[j]
		if a.Family != b.Family {
			return a.Family < b.Family
		}
		return a.Seed < b.Seed
	})
	sort.Slice(card.Diagnoses, func(i, j int) bool {
		a, b := &card.Diagnoses[i], &card.Diagnoses[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Seed < b.Seed
	})
	card.fold()
	return card, nil
}
