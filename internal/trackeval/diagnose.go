package trackeval

import (
	"fmt"
	"math"
	"sort"

	"perftrack/internal/core"
	"perftrack/internal/machine"
	"perftrack/internal/metrics"
	"perftrack/internal/report"
)

// Cause names one of the performance-evolution explanations the paper's
// case studies exhibit; Diagnose assigns one per tracked region.
type Cause string

const (
	// CauseSteady marks a region whose trends explain nothing remarkable.
	CauseSteady Cause = "steady"
	// CauseLoadImbalance marks a region whose per-rank time differs far
	// more than its per-rank behaviour (some ranks simply do more work).
	CauseLoadImbalance Cause = "load-imbalance"
	// CauseContentionKnee marks an IPC decline that accelerates as node
	// packing grows while miss densities stay flat — the MR-Genesis
	// bandwidth saturation shape (paper Fig. 11).
	CauseContentionKnee Cause = "contention-knee"
	// CauseCacheCliff marks an IPC drop coinciding with a step in miss
	// density — a working set overflowing a cache level (HydroC, Fig. 12).
	CauseCacheCliff Cause = "cache-capacity-cliff"
	// CauseCompilerEffect marks proportional instruction/IPC shifts at a
	// toolchain boundary with flat duration (CGPOP, Table 3).
	CauseCompilerEffect Cause = "compiler-effect"
)

// Diagnosis explains one tracked region's evolution.
type Diagnosis struct {
	// Region is the tracked-region id the diagnosis is about.
	Region int `json:"region"`
	// Cause is the named explanation.
	Cause Cause `json:"cause"`
	// Confidence grows when internal/machine's model corroborates the
	// shape (0.5–0.9).
	Confidence float64 `json:"confidence"`
	// Evidence is a one-line human-readable justification.
	Evidence string `json:"evidence"`
	// AnomalousRanks lists ranks whose share of the region's time sits
	// more than three scaled MADs above the median — the similarity-
	// analysis outlier flagging of the SPMD debugging literature.
	AnomalousRanks []int `json:"anomalousRanks,omitempty"`
}

// regionSeries carries the per-present-frame trend means Diagnose
// reasons over, plus the frame indices they came from.
type regionSeries struct {
	fis    []int
	ipc    []float64
	instr  []float64
	l1mpki []float64
	l2mpki []float64
	durms  []float64
	l2raw  []float64
	cycles []float64
}

func seriesFor(res *core.Result, regionID int) (regionSeries, bool) {
	var s regionSeries
	pull := func(m metrics.Metric) ([]float64, bool) {
		tr, err := res.Trend(regionID, m)
		if err != nil {
			return nil, false
		}
		var out []float64
		for fi, p := range tr.Points {
			if !p.Present || res.Frames[fi].Degraded {
				continue
			}
			if m.Name == metrics.IPC.Name { // first pull records the frames
				s.fis = append(s.fis, fi)
			}
			out = append(out, p.Mean)
		}
		return out, true
	}
	var ok bool
	if s.ipc, ok = pull(metrics.IPC); !ok {
		return s, false
	}
	s.instr, _ = pull(metrics.Instructions)
	s.l1mpki, _ = pull(metrics.L1MissesPerKInstr)
	s.l2mpki, _ = pull(metrics.L2MissesPerKInstr)
	s.durms, _ = pull(metrics.DurationMS)
	s.l2raw, _ = pull(metrics.L2DMisses)
	s.cycles, _ = pull(metrics.Cycles)
	return s, len(s.fis) >= 2
}

// Diagnose classifies every spanning tracked region's trends into a
// named cause, corroborating each hypothesis against internal/machine's
// analytic model where the trace metadata names a known platform or
// toolchain. Rules are checked most-specific first: a compiler boundary
// explains proportional instruction/IPC shifts before a cache-shaped
// story is even considered.
func Diagnose(res *core.Result) []Diagnosis {
	var out []Diagnosis
	for _, reg := range res.Regions {
		if !reg.Spanning {
			continue
		}
		s, ok := seriesFor(res, reg.ID)
		if !ok {
			continue
		}
		d := Diagnosis{Region: reg.ID, Cause: CauseSteady, Confidence: 0.5}
		anom, disp := anomalousRanks(res, reg.ID)

		if c, okc := diagnoseCompiler(res, s); okc {
			d = c
		} else if c, okc := diagnoseCacheCliff(res, s); okc {
			d = c
		} else if c, okc := diagnoseContention(res, s); okc {
			d = c
		} else if disp >= 0.20 && len(anom) > 0 {
			d = Diagnosis{
				Cause:      CauseLoadImbalance,
				Confidence: 0.8,
				Evidence: fmt.Sprintf(
					"per-rank region time spread %s above mean; ranks %v dominate",
					report.SignedPct(disp), anom),
			}
		} else {
			d.Evidence = "no compiler boundary, miss-density step, packing knee or rank skew detected"
		}
		d.Region = reg.ID
		d.AnomalousRanks = anom
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Region < out[j].Region })
	return out
}

func meta(res *core.Result, fi int) (machineName, compiler string, tpn int) {
	f := res.Frames[fi]
	if f.Trace == nil {
		return "", "", 0
	}
	m := f.Trace.Meta
	return m.Machine, m.Compiler, m.TasksPerNode
}

func rel(to, from float64) float64 {
	if from == 0 {
		return 0
	}
	return (to - from) / from
}

// diagnoseCompiler fires on a toolchain change between consecutive
// frames where instructions and IPC move together proportionally while
// the elapsed time stays flat — the CGPOP compiler trade.
func diagnoseCompiler(res *core.Result, s regionSeries) (Diagnosis, bool) {
	for k := 1; k < len(s.fis); k++ {
		_, c1, _ := meta(res, s.fis[k-1])
		_, c2, _ := meta(res, s.fis[k])
		if c1 == "" || c2 == "" || c1 == c2 {
			continue
		}
		dInstr := rel(s.instr[k], s.instr[k-1])
		dIPC := rel(s.ipc[k], s.ipc[k-1])
		dDur := 0.0
		if len(s.durms) == len(s.fis) {
			dDur = rel(s.durms[k], s.durms[k-1])
		}
		if math.Abs(dInstr) < 0.08 || dInstr*dIPC <= 0 {
			continue
		}
		ratio := dIPC / dInstr
		if ratio < 0.5 || ratio > 1.5 || math.Abs(dDur) > 0.10 {
			continue
		}
		conf := 0.7
		if m1, ok1 := machine.CompilerByName(c1); ok1 {
			if m2, ok2 := machine.CompilerByName(c2); ok2 {
				expect := m2.InstrFactor/m1.InstrFactor - 1
				if math.Abs(dInstr-expect) <= 0.10 {
					conf = 0.9
				}
			}
		}
		return Diagnosis{
			Cause:      CauseCompilerEffect,
			Confidence: conf,
			Evidence: fmt.Sprintf(
				"%s→%s: instructions %s with IPC %s and duration %s — a compiler trade, not a behaviour change",
				c1, c2, report.SignedPct(dInstr), report.SignedPct(dIPC), report.SignedPct(dDur)),
		}, true
	}
	return Diagnosis{}, false
}

// diagnoseCacheCliff fires on a step in miss density coinciding with an
// IPC drop, cross-checked against the platform's miss penalties.
func diagnoseCacheCliff(res *core.Result, s regionSeries) (Diagnosis, bool) {
	if len(s.l1mpki) != len(s.fis) || len(s.l2mpki) != len(s.fis) {
		return Diagnosis{}, false
	}
	const tiny = 1e-9
	for k := 1; k < len(s.fis); k++ {
		j1 := s.l1mpki[k] / math.Max(s.l1mpki[k-1], tiny)
		j2 := s.l2mpki[k] / math.Max(s.l2mpki[k-1], tiny)
		if j1 < 1.8 && j2 < 1.8 {
			continue
		}
		if s.ipc[k] > 0.92*s.ipc[k-1] {
			continue
		}
		level := "L1"
		if j2 > j1 {
			level = "L2"
		}
		conf := 0.6
		if mn, _, _ := meta(res, s.fis[k]); mn != "" {
			if arch, ok := machine.ArchByName(mn); ok && s.ipc[k] > 0 && s.ipc[k-1] > 0 {
				predicted := (s.l1mpki[k]-s.l1mpki[k-1])/1000*arch.L1PenaltyCycles +
					(s.l2mpki[k]-s.l2mpki[k-1])/1000*arch.MemPenaltyCycles
				observed := 1/s.ipc[k] - 1/s.ipc[k-1]
				if predicted > 0 && observed > 0 {
					r := observed / predicted
					if r >= 0.25 && r <= 4 {
						conf = 0.9
					}
				}
			}
		}
		return Diagnosis{
			Cause:      CauseCacheCliff,
			Confidence: conf,
			Evidence: fmt.Sprintf(
				"%s miss density jumps %.1fx between frames %d and %d while IPC falls %s — working set overflowed the %s",
				level, math.Max(j1, j2), s.fis[k-1], s.fis[k],
				report.SignedPct(rel(s.ipc[k], s.ipc[k-1])), level),
		}, true
	}
	return Diagnosis{}, false
}

// diagnoseContention fires when IPC decays faster and faster as the
// node packing grows while miss densities stay flat: the work didn't
// change, the shared memory channel saturated.
func diagnoseContention(res *core.Result, s regionSeries) (Diagnosis, bool) {
	n := len(s.fis)
	if n < 3 || len(s.l2mpki) != n {
		return Diagnosis{}, false
	}
	tpn := make([]int, n)
	for i, fi := range s.fis {
		_, _, tpn[i] = meta(res, fi)
		if tpn[i] <= 0 {
			return Diagnosis{}, false
		}
		if i > 0 && tpn[i] < tpn[i-1] {
			return Diagnosis{}, false
		}
	}
	if tpn[n-1] <= tpn[0] {
		return Diagnosis{}, false
	}
	if s.ipc[n-1] > 0.90*s.ipc[0] {
		return Diagnosis{}, false
	}
	minM, maxM := math.Inf(1), 0.0
	for _, v := range s.l2mpki {
		minM = math.Min(minM, v)
		maxM = math.Max(maxM, v)
	}
	if minM <= 0 || maxM/minM >= 1.4 {
		return Diagnosis{}, false
	}
	// Accelerating decline: the RELATIVE IPC loss per added co-located
	// process grows in the second half (the 1/(1-u) shape; absolute loss
	// cannot accelerate since IPC is bounded below by zero).
	mid := n / 2
	if tpn[mid] <= tpn[0] || tpn[n-1] <= tpn[mid] || s.ipc[0] <= 0 || s.ipc[mid] <= 0 {
		return Diagnosis{}, false
	}
	early := (1 - s.ipc[mid]/s.ipc[0]) / float64(tpn[mid]-tpn[0])
	late := (1 - s.ipc[n-1]/s.ipc[mid]) / float64(tpn[n-1]-tpn[mid])
	if late <= early {
		return Diagnosis{}, false
	}
	// Corroborate with the platform model: per-process bandwidth demand,
	// measured at the LIGHTEST packing (the saturated frames understate
	// demand by construction), extrapolated to the final packing, should
	// approach the node's memory bandwidth.
	conf := 0.6
	util := 0.0
	if mn, _, _ := meta(res, s.fis[0]); mn != "" {
		if arch, ok := machine.ArchByName(mn); ok &&
			len(s.l2raw) == n && len(s.cycles) == n && s.cycles[0] > 0 {
			perProcBW := s.l2raw[0] / s.cycles[0] * arch.LineBytes * arch.FreqGHz
			util = perProcBW * float64(tpn[n-1]) / arch.NodeMemBWGBs
			if util >= 0.35 {
				conf = 0.9
			}
		}
	}
	return Diagnosis{
		Cause:      CauseContentionKnee,
		Confidence: conf,
		Evidence: fmt.Sprintf(
			"IPC %s as packing grows %d→%d with flat L2 miss density (max/min %.2fx); est. bandwidth demand %.0f%% of the node channel",
			report.SignedPct(rel(s.ipc[n-1], s.ipc[0])), tpn[0], tpn[n-1], maxM/minM, 100*util),
	}, true
}

// anomalousRanks flags ranks whose total time inside the region sits
// more than three scaled MADs above the median rank time, and returns
// the region's dispersion (max/mean - 1) alongside.
func anomalousRanks(res *core.Result, regionID int) ([]int, float64) {
	perRank := map[int]float64{}
	for fi, f := range res.Frames {
		if f.Degraded || f.Trace == nil {
			continue
		}
		labels := res.RegionLabels(fi)
		for i, b := range f.Trace.Bursts {
			if i < len(labels) && labels[i] == regionID {
				perRank[b.Task] += float64(b.DurationNS)
			}
		}
	}
	if len(perRank) < 4 {
		return nil, 0
	}
	ranks := make([]int, 0, len(perRank))
	vals := make([]float64, 0, len(perRank))
	for r := range perRank {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	for _, r := range ranks {
		vals = append(vals, perRank[r])
	}

	med := median(append([]float64(nil), vals...))
	devs := make([]float64, len(vals))
	mean, max := 0.0, 0.0
	for i, v := range vals {
		devs[i] = math.Abs(v - med)
		mean += v
		max = math.Max(max, v)
	}
	mean /= float64(len(vals))
	disp := 0.0
	if mean > 0 {
		disp = max/mean - 1
	}
	scaled := 1.4826 * median(devs)
	floor := math.Max(scaled, 0.05*med)
	var anom []int
	for i, r := range ranks {
		if vals[i] > med+3*floor {
			anom = append(anom, r)
		}
	}
	return anom, disp
}

func median(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}
