// Package trackeval is the tracking-quality evaluation layer: it scores
// the tracker the way the multi-object-tracking (MOT) community scores
// video trackers — against planted ground truth — instead of only
// checking that the pipeline is fast and deterministic.
//
// The package provides four things:
//
//  1. A seeded scenario corpus (corpus.go) of planted-truth frame
//     sequences that stress the combiner: cluster birth/death,
//     merge/split, drift, crossing trends, callstack-free tracks, and
//     fault-injected degraded frames from internal/faults.
//  2. MOT-style metrics (mot.go) computed against the planted Phase
//     annotations: ID switches, track fragmentation, track purity,
//     coverage-vs-truth and a MOTA-like composite, plus a per-stage
//     timing breakdown.
//  3. Deterministic scorecards (scorecard.go) with quality floors
//     (`make trackeval`), exported as byte-stable JSON and as a
//     perfdb-compatible document, so tracking *quality* gets the same
//     cross-run regression detection trajectories give *performance*.
//  4. An automatic diagnosis pass (diagnose.go) that classifies
//     tracked-region trends into named causes — load imbalance,
//     contention knee, cache-capacity cliff, compiler effect — using
//     internal/machine's model, and flags anomalous ranks by similarity
//     analysis in the spirit of the SPMD performance-debugging work
//     (Liu & Zhan, arXiv 1002.4264 / 0906.1326).
package trackeval

import (
	"fmt"

	"perftrack/internal/faults"
	"perftrack/internal/oracle"
	"perftrack/internal/trace"
)

// corpusFrames is the frame count of every corpus scenario.
const corpusFrames = 8

// Instruction levels of the planted tracks: factors of 8 apart, like the
// oracle's static generator, so tracks stay separable on the log axis.
const (
	lvl0 = 1e6
	lvl1 = 8e6
	lvl2 = 6.4e7
)

// Scenario is one planted-truth tracking problem.
type Scenario struct {
	// Name is "<family>@<seed>", unique inside a multi-seed corpus.
	Name string `json:"name"`
	// Family names the stress pattern (steady, drift, crossing, ...).
	Family string `json:"family"`
	// Seed derives every random draw of the scenario.
	Seed uint64 `json:"seed"`
	// Traces is the frame sequence, each burst annotated with its
	// ground-truth Phase (never consumed by the pipeline itself).
	Traces []*trace.Trace `json:"-"`
	// Fault names the injector applied to FaultFrames ("" = clean).
	Fault string `json:"fault,omitempty"`
	// Severity is the injector's severity fraction (0 = clean).
	Severity float64 `json:"severity,omitempty"`
}

// CorpusSpec parametrises one seed's worth of corpus scenarios.
type CorpusSpec struct {
	// Seed derives every scenario of this corpus slice.
	Seed uint64
	// Ranks and Iters size each frame (defaults 8 and 2).
	Ranks, Iters int
	// Severity is the fault fraction of the degraded families
	// (default 0.10 — the acceptance point of the quality gate).
	Severity float64
}

func (s CorpusSpec) withDefaults() CorpusSpec {
	if s.Ranks <= 0 {
		s.Ranks = 8
	}
	if s.Iters <= 0 {
		s.Iters = 2
	}
	if s.Severity <= 0 {
		s.Severity = 0.10
	}
	return s
}

// series helpers: per-frame value vectors for PhaseTracks.

func constSeries(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func rampSeries(from, to float64, n int) []float64 {
	out := make([]float64, n)
	if n == 1 {
		out[0] = from
		return out
	}
	for i := range out {
		out[i] = from + (to-from)*float64(i)/float64(n-1)
	}
	return out
}

// zeroRange marks frames [from, to) absent (birth/death).
func zeroRange(vals []float64, from, to int) []float64 {
	out := append([]float64(nil), vals...)
	for i := from; i < to && i < len(out); i++ {
		out[i] = 0
	}
	return out
}

func noStack(tracks []oracle.PhaseTrack) []oracle.PhaseTrack {
	out := append([]oracle.PhaseTrack(nil), tracks...)
	for i := range out {
		out[i].NoStack = true
	}
	return out
}

// Track geometries shared by the clean and the callstack-free families.

func driftTracks(n int) []oracle.PhaseTrack {
	return []oracle.PhaseTrack{
		{ID: 1, IPC: rampSeries(0.9, 1.5, n), Instr: constSeries(lvl0, n)},
		{ID: 2, IPC: rampSeries(2.6, 1.9, n), Instr: constSeries(lvl1, n)},
		{ID: 3, IPC: constSeries(1.7, n), Instr: constSeries(lvl2, n)},
	}
}

func crossingTracks(n int) []oracle.PhaseTrack {
	// Tracks 1 and 2 swap their IPC ordering mid-sequence; the log-instr
	// axis keeps their clusters separate, so the displacement evaluator
	// must follow each through the crossing instead of swapping them.
	return []oracle.PhaseTrack{
		{ID: 1, IPC: rampSeries(0.8, 2.2, n), Instr: constSeries(lvl0, n)},
		{ID: 2, IPC: rampSeries(2.3, 0.9, n), Instr: constSeries(lvl2, n)},
		{ID: 3, IPC: constSeries(2.6, n), Instr: constSeries(lvl1, n)},
	}
}

func birthDeathTracks(n int) []oracle.PhaseTrack {
	return []oracle.PhaseTrack{
		{ID: 1, IPC: constSeries(1.2, n), Instr: constSeries(lvl0, n)},
		{ID: 2, IPC: zeroRange(constSeries(2.0, n), 0, 3), Instr: constSeries(lvl1, n)},
		{ID: 3, IPC: zeroRange(constSeries(2.6, n), n-3, n), Instr: constSeries(lvl2, n)},
	}
}

func mergeSplitTracks(n int) []oracle.PhaseTrack {
	// Tracks 1 and 2 share the instruction level and converge onto the
	// SAME position for the two middle frames: the clusterer merges them
	// there and the combiner must group the regions in doubt (a wide
	// relation) rather than swap or drop them.
	ipc1 := constSeries(1.0, n)
	ipc2 := constSeries(2.0, n)
	for i := 3; i <= 4 && i < n; i++ {
		ipc1[i], ipc2[i] = 1.5, 1.5
	}
	return []oracle.PhaseTrack{
		{ID: 1, IPC: ipc1, Instr: constSeries(lvl1, n)},
		{ID: 2, IPC: ipc2, Instr: constSeries(lvl1, n)},
		{ID: 3, IPC: constSeries(2.6, n), Instr: constSeries(lvl2, n)},
	}
}

// Corpus derives the full scenario family set for one seed: five clean
// combinator stresses, three callstack-free variants (the tracker must
// survive on displacement, simultaneity and sequence evidence alone),
// four fault-injected variants at spec.Severity on two mid-sequence
// frames, and one dead frame the tracker must bridge.
func Corpus(spec CorpusSpec) []Scenario {
	spec = spec.withDefaults()
	n := corpusFrames

	mk := func(family string, tracks []oracle.PhaseTrack) Scenario {
		return Scenario{
			Name:   fmt.Sprintf("%s@%04d", family, spec.Seed),
			Family: family,
			Seed:   spec.Seed,
			Traces: oracle.GenSequence(spec.Seed, family, spec.Ranks, spec.Iters, tracks),
		}
	}
	faulted := func(inj faults.Injector, severity float64, frames ...int) Scenario {
		sc := mk("fault-"+inj.Name(), driftTracks(n))
		sc.Fault = inj.Name()
		sc.Severity = severity
		for _, fi := range frames {
			if fi < len(sc.Traces) {
				t, _ := inj.Apply(sc.Traces[fi], spec.Seed+uint64(fi))
				sc.Traces[fi] = t
			}
		}
		return sc
	}

	sev := spec.Severity
	return []Scenario{
		mk("steady", []oracle.PhaseTrack{
			{ID: 1, IPC: constSeries(0.9, n), Instr: constSeries(lvl0, n)},
			{ID: 2, IPC: constSeries(1.6, n), Instr: constSeries(lvl1, n)},
			{ID: 3, IPC: constSeries(2.3, n), Instr: constSeries(lvl2, n)},
		}),
		mk("drift", driftTracks(n)),
		mk("crossing", crossingTracks(n)),
		mk("birthdeath", birthDeathTracks(n)),
		mk("mergesplit", mergeSplitTracks(n)),
		mk("nostack-drift", noStack(driftTracks(n))),
		mk("nostack-crossing", noStack(crossingTracks(n))),
		mk("nostack-birthdeath", noStack(birthDeathTracks(n))),
		mk("nostack-mergesplit", noStack(mergeSplitTracks(n))),
		faulted(faults.DropRanks{Frac: sev}, sev, 2, 5),
		faulted(faults.CorruptCounters{Frac: sev, Mode: faults.ModeZero}, sev, 2, 5),
		faulted(faults.DuplicateBursts{Frac: sev}, sev, 2, 5),
		faulted(faults.SkewClocks{Frac: sev, MaxSkewNS: 5_000_000}, sev, 2, 5),
		// A frame whose every counter read died: the pipeline must mark it
		// degraded and bridge across it rather than abort or mistrack.
		faulted(faults.CorruptCounters{Frac: 1, Mode: faults.ModeZero}, 1, 4),
	}
}

// PinnedSeeds is the seed set of the quality gate: the scorecard over
// these seeds is the corpus CI ratchets on.
func PinnedSeeds() []uint64 {
	out := make([]uint64, 10)
	for i := range out {
		out[i] = uint64(i + 1)
	}
	return out
}
