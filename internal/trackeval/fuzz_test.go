package trackeval

import (
	"bytes"
	"encoding/json"
	"testing"

	"perftrack/internal/trace"
)

// FuzzScenarioRoundTrip drives the whole evaluation stack through the
// trace codec: any generated corpus scenario, serialised and re-read,
// must score byte-identically. This pins two properties at once — the
// codec preserves everything the evaluation consumes (including the
// planted Phase annotations), and scoring is a pure function of the
// trace content.
func FuzzScenarioRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint16(100))
	f.Add(uint64(2), uint8(5), uint16(250))
	f.Add(uint64(42), uint8(8), uint16(500))
	f.Add(uint64(7), uint8(13), uint16(1))

	cfg := DefaultConfig()
	f.Fuzz(func(t *testing.T, seed uint64, famIdx uint8, sevMil uint16) {
		severity := float64(sevMil%1000) / 1000
		corpus := Corpus(CorpusSpec{Seed: seed, Severity: severity})
		sc := corpus[int(famIdx)%len(corpus)]

		direct, err := EvaluateScenario(sc, cfg)
		if err != nil {
			t.Skip() // scenario degenerated (e.g. all frames degraded)
		}

		rt := sc
		rt.Traces = make([]*trace.Trace, len(sc.Traces))
		for i, tr := range sc.Traces {
			var buf bytes.Buffer
			if err := trace.Write(&buf, tr); err != nil {
				t.Fatalf("frame %d: encoding: %v", i, err)
			}
			back, err := trace.Read(&buf)
			if err != nil {
				t.Fatalf("frame %d: decoding what we encoded: %v", i, err)
			}
			rt.Traces[i] = back
		}
		again, err := EvaluateScenario(rt, cfg)
		if err != nil {
			t.Fatalf("round-tripped scenario fails to evaluate: %v", err)
		}

		a, err := json.Marshal(direct)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(again)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("scenario %s: score changed across codec round trip\n direct: %s\n again:  %s", sc.Name, a, b)
		}
	})
}
