package trackeval

import (
	"math"
	"testing"

	"perftrack/internal/core"
	"perftrack/internal/oracle"
)

// evalTracks runs the pipeline over a generated sequence and scores it.
func evalTracks(t *testing.T, cfg core.Config, seed uint64, tracks []oracle.PhaseTrack) (MOT, *core.Result) {
	t.Helper()
	traces := oracle.GenSequence(seed, "mot-test", 8, 2, tracks)
	frames, err := core.BuildFrames(traces, cfg)
	if err != nil {
		t.Fatalf("building frames: %v", err)
	}
	res, err := core.NewTracker(cfg).Track(frames)
	if err != nil {
		t.Fatalf("tracking: %v", err)
	}
	return Score(res), res
}

func TestScorePerfectTracking(t *testing.T) {
	m, _ := evalTracks(t, DefaultConfig(), 7, []oracle.PhaseTrack{
		{ID: 1, IPC: constSeries(0.9, 6), Instr: constSeries(lvl0, 6)},
		{ID: 2, IPC: constSeries(1.8, 6), Instr: constSeries(lvl1, 6)},
		{ID: 3, IPC: constSeries(2.6, 6), Instr: constSeries(lvl2, 6)},
	})
	if m.GTTracks != 3 || m.ScoredFrames != 6 {
		t.Fatalf("gtTracks=%d scoredFrames=%d, want 3 and 6", m.GTTracks, m.ScoredFrames)
	}
	for name, v := range map[string]float64{
		"purity":   m.Purity,
		"coverage": m.Coverage,
		"mota":     m.MOTA,
		"ari":      m.MeanARI,
	} {
		if v != 1 {
			t.Errorf("%s = %v, want exactly 1 on a trivially separable corpus", name, v)
		}
	}
	if m.IDSwitches != 0 || m.Fragmentation != 0 || m.MissRate != 0 || m.MismatchRate != 0 {
		t.Errorf("unexpected mistracking: %+v", m)
	}
	if m.GTMass <= 0 {
		t.Errorf("gtMass = %v, want positive", m.GTMass)
	}
}

func TestScoreCountsUnclusteredMassAsMissed(t *testing.T) {
	// Track 4 carries ~0.02% of the duration: below MinClusterWeight its
	// cluster is dropped, so its mass must land in MissRate, not vanish.
	m, _ := evalTracks(t, DefaultConfig(), 11, []oracle.PhaseTrack{
		{ID: 1, IPC: constSeries(0.9, 6), Instr: constSeries(lvl0, 6)},
		{ID: 2, IPC: constSeries(1.8, 6), Instr: constSeries(lvl1, 6)},
		{ID: 3, IPC: constSeries(2.6, 6), Instr: constSeries(lvl2, 6)},
		{ID: 4, IPC: constSeries(1.4, 6), Instr: constSeries(1e4, 6)},
	})
	if m.GTTracks != 4 {
		t.Fatalf("gtTracks = %d, want 4", m.GTTracks)
	}
	if m.MissRate <= 0 {
		t.Errorf("missRate = %v, want > 0 for a sub-weight track", m.MissRate)
	}
	if m.Coverage >= 1 || m.MOTA >= 1 {
		t.Errorf("coverage=%v mota=%v, want both < 1", m.Coverage, m.MOTA)
	}
	// The missed track is tiny, so the composite stays near-perfect.
	if m.MOTA < 0.99 {
		t.Errorf("mota = %v, want >= 0.99 (only ~0.02%% of mass missed)", m.MOTA)
	}
}

func TestScoreDegradedFramesExcluded(t *testing.T) {
	spec := CorpusSpec{Seed: 3}.withDefaults()
	var dead Scenario
	for _, sc := range Corpus(spec) {
		if sc.Fault == "counter-zero" && sc.Severity == 1 {
			dead = sc
		}
	}
	if dead.Name == "" {
		t.Fatal("corpus lost its dead-frame scenario")
	}
	ss, err := EvaluateScenario(dead, DefaultConfig())
	if err != nil {
		t.Fatalf("evaluating: %v", err)
	}
	if ss.DegradedFrames != 1 {
		t.Fatalf("degradedFrames = %d, want 1", ss.DegradedFrames)
	}
	if ss.ScoredFrames != corpusFrames-1 {
		t.Errorf("scoredFrames = %d, want %d (dead frame excluded)", ss.ScoredFrames, corpusFrames-1)
	}
	if ss.MOTA != 1 || ss.Coverage != 1 {
		t.Errorf("mota=%v coverage=%v, want 1: the tracker bridges the dead frame", ss.MOTA, ss.Coverage)
	}
}

func TestScoreDetectsIDSwitches(t *testing.T) {
	// Ablated tracker (no displacement) on callstack-free merge/split:
	// re-acquiring tracks after the merge without geometric evidence
	// must cost identity — exactly what the MOT metrics exist to see.
	cfg := DefaultConfig()
	cfg.DisableDisplacement = true
	m, _ := evalTracks(t, cfg, 5, noStack(mergeSplitTracks(8)))
	if m.IDSwitches == 0 && m.MOTA == 1 {
		t.Errorf("ablated tracker scored perfect on nostack-mergesplit (mota=%v idsw=%d); the metric lost its teeth", m.MOTA, m.IDSwitches)
	}
	if m.MOTA >= 1 {
		t.Errorf("mota = %v, want < 1 under ablation", m.MOTA)
	}
}

func TestScoreEmptyResult(t *testing.T) {
	var m MOT
	if m != (MOT{}) {
		t.Fatal("zero MOT not zero")
	}
	got := Score(&core.Result{})
	if got.GTTracks != 0 || got.GTMass != 0 || got.MOTA != 0 {
		t.Errorf("Score(empty) = %+v, want zeros", got)
	}
}

func TestArgmaxRegionsDeterministicTies(t *testing.T) {
	mass := map[phaseRegion]float64{
		{1, 2}: 5, {1, 7}: 5, // exact tie: lower region id wins
		{2, 0}: 3, // fully missed phase still appears, matched to 0
	}
	got := argmaxRegions(mass)
	if got[1] != 2 {
		t.Errorf("tie broke to region %d, want 2", got[1])
	}
	if r, ok := got[2]; !ok || r != 0 {
		t.Errorf("missed phase mapped to %d (present %v), want 0", r, ok)
	}
}

func TestMOTARateArithmetic(t *testing.T) {
	m, _ := evalTracks(t, DefaultConfig(), 13, driftTracks(8))
	sum := 1 - m.MissRate - m.MismatchRate
	if m.IDSwitches == 0 && math.Abs(m.MOTA-sum) > 1e-12 {
		t.Errorf("mota = %v, want %v (1 - miss - mismatch with no switches)", m.MOTA, sum)
	}
}
