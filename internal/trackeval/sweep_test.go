package trackeval

import (
	"bytes"
	"testing"
)

// TestScorecardSeedSweepDeterminism pins the satellite requirement: for
// every pinned seed, evaluating twice yields byte-identical canonical
// scorecard JSON (the playbook of the repo-level seed-sweep suite). Any
// map-iteration or float-accumulation nondeterminism in the evaluation
// layer breaks this immediately.
func TestScorecardSeedSweepDeterminism(t *testing.T) {
	for _, seed := range PinnedSeeds() {
		run := func() ([]byte, []byte) {
			card, err := Evaluate(Options{Seeds: []uint64{seed}})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			canon, err := card.CanonicalJSON()
			if err != nil {
				t.Fatalf("seed %d: canonical json: %v", seed, err)
			}
			doc, err := card.PerfDBDocument()
			if err != nil {
				t.Fatalf("seed %d: perfdb document: %v", seed, err)
			}
			return canon, doc
		}
		c1, d1 := run()
		c2, d2 := run()
		if !bytes.Equal(c1, c2) {
			t.Errorf("seed %d: scorecard JSON differs between identical runs", seed)
		}
		if !bytes.Equal(d1, d2) {
			t.Errorf("seed %d: perfdb document differs between identical runs", seed)
		}
	}
}

// TestScorecardCanonicalJSONExcludesTimings guards the determinism
// boundary: wall-clock timings must never leak into the canonical form.
func TestScorecardCanonicalJSONExcludesTimings(t *testing.T) {
	card, err := Evaluate(Options{Seeds: []uint64{1}, SkipDiagnosis: true})
	if err != nil {
		t.Fatal(err)
	}
	if card.Timing.TotalNS() == 0 {
		t.Fatal("timing breakdown empty; the per-stage instrumentation is gone")
	}
	canon, err := card.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, leak := range []string{"generateNs", "buildNs", "trackNs", "scoreNs", "diagnoseNs"} {
		if bytes.Contains(canon, []byte(leak)) {
			t.Errorf("canonical JSON leaks timing field %q", leak)
		}
	}
}
