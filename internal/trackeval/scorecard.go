package trackeval

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"perftrack/internal/core"
	"perftrack/internal/report"
)

// scorecardVersion versions the canonical scorecard JSON schema.
const scorecardVersion = 1

// Quality floors of the trackeval gate (`make trackeval`), checked on
// the pinned corpus at 10% fault severity. Scorecard.Gate enforces them;
// CI ratchets on them like the perf gates ratchet on BENCH_core.json.
const (
	// GatePurityFloor is the minimum duration-weighted track purity.
	GatePurityFloor = 0.95
	// GateCoverageFloor is the minimum coverage-vs-truth.
	GateCoverageFloor = 0.90
	// GateMOTAFloor is the minimum MOTA-like composite. The pinned
	// corpus scores a clean 1.0; the floor sits close under it so any
	// evaluator regression that miscorrelates even a few percent of the
	// ground-truth mass (e.g. losing the displacement evaluator drops
	// MOTA to ~0.96) fails the gate.
	GateMOTAFloor = 0.99
	// GateDiagnosisFloor is the minimum planted-cause diagnosis accuracy.
	GateDiagnosisFloor = 0.90
)

// AggregateScore folds the whole corpus into one line: mass-weighted
// means of the quality ratios, sums of the event counts.
type AggregateScore struct {
	Scenarios      int     `json:"scenarios"`
	Frames         int     `json:"frames"`
	DegradedFrames int     `json:"degradedFrames"`
	GTTracks       int     `json:"gtTracks"`
	IDSwitches     int     `json:"idSwitches"`
	Fragmentation  int     `json:"fragmentation"`
	Purity         float64 `json:"purity"`
	Coverage       float64 `json:"coverage"`
	MOTA           float64 `json:"mota"`
	MeanARI        float64 `json:"meanAri"`
	GTMass         float64 `json:"gtMass"`
	// DiagnosisAccuracy is the fraction of planted-cause diagnosis
	// scenarios whose dominant region got the planted cause (1 when the
	// diagnosis corpus was skipped and no scenarios ran).
	DiagnosisAccuracy float64 `json:"diagnosisAccuracy"`
}

// FamilyScore folds one scenario family across all seeds.
type FamilyScore struct {
	Family        string  `json:"family"`
	Scenarios     int     `json:"scenarios"`
	IDSwitches    int     `json:"idSwitches"`
	Fragmentation int     `json:"fragmentation"`
	Purity        float64 `json:"purity"`
	Coverage      float64 `json:"coverage"`
	MOTA          float64 `json:"mota"`
	MeanARI       float64 `json:"meanAri"`
	GTMass        float64 `json:"gtMass"`
}

// Scorecard is the deterministic quality report of one corpus
// evaluation. CanonicalJSON of two runs with equal options is
// byte-identical; Timing deliberately stays out of it.
type Scorecard struct {
	Version  int      `json:"version"`
	Seeds    []uint64 `json:"seeds"`
	Ranks    int      `json:"ranks"`
	Iters    int      `json:"iters"`
	Severity float64  `json:"severity"`

	Aggregate AggregateScore   `json:"aggregate"`
	Families  []FamilyScore    `json:"families"`
	Scenarios []ScenarioScore  `json:"scenarios"`
	Diagnoses []DiagnosisScore `json:"diagnoses,omitempty"`

	Timing Timing `json:"-"`
}

// fold recomputes Aggregate and Families from Scenarios and Diagnoses.
func (s *Scorecard) fold() {
	famIdx := map[string]int{}
	s.Families = s.Families[:0]
	var agg AggregateScore

	accum := func(dst *FamilyScore, ss *ScenarioScore) {
		w := ss.GTMass
		dst.Scenarios++
		dst.IDSwitches += ss.IDSwitches
		dst.Fragmentation += ss.Fragmentation
		dst.Purity += w * ss.Purity
		dst.Coverage += w * ss.Coverage
		dst.MOTA += w * ss.MOTA
		dst.MeanARI += w * ss.MeanARI
		dst.GTMass += w
	}
	for i := range s.Scenarios {
		ss := &s.Scenarios[i]
		fi, ok := famIdx[ss.Family]
		if !ok {
			fi = len(s.Families)
			famIdx[ss.Family] = fi
			s.Families = append(s.Families, FamilyScore{Family: ss.Family})
		}
		accum(&s.Families[fi], ss)

		w := ss.GTMass
		agg.Scenarios++
		agg.Frames += ss.Frames
		agg.DegradedFrames += ss.DegradedFrames
		agg.GTTracks += ss.GTTracks
		agg.IDSwitches += ss.IDSwitches
		agg.Fragmentation += ss.Fragmentation
		agg.Purity += w * ss.Purity
		agg.Coverage += w * ss.Coverage
		agg.MOTA += w * ss.MOTA
		agg.MeanARI += w * ss.MeanARI
		agg.GTMass += w
	}
	norm := func(f *FamilyScore) {
		if f.GTMass > 0 {
			f.Purity /= f.GTMass
			f.Coverage /= f.GTMass
			f.MOTA /= f.GTMass
			f.MeanARI /= f.GTMass
		}
	}
	for i := range s.Families {
		norm(&s.Families[i])
	}
	sort.Slice(s.Families, func(i, j int) bool {
		return s.Families[i].Family < s.Families[j].Family
	})
	if agg.GTMass > 0 {
		agg.Purity /= agg.GTMass
		agg.Coverage /= agg.GTMass
		agg.MOTA /= agg.GTMass
		agg.MeanARI /= agg.GTMass
	}

	agg.DiagnosisAccuracy = 1
	if n := len(s.Diagnoses); n > 0 {
		hits := 0
		for _, d := range s.Diagnoses {
			if d.Hit {
				hits++
			}
		}
		agg.DiagnosisAccuracy = float64(hits) / float64(n)
	}
	s.Aggregate = agg
}

// CanonicalJSON renders the scorecard as deterministic, indented JSON:
// equal evaluations yield byte-identical output (the seed-sweep test
// pins this).
func (s *Scorecard) CanonicalJSON() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Gate checks the scorecard against the exported quality floors and
// returns a single error naming every floor missed, or nil.
func (s *Scorecard) Gate() error {
	var fails []string
	check := func(name string, got, floor float64) {
		if got < floor {
			fails = append(fails, fmt.Sprintf("%s %.4f < floor %.4f", name, got, floor))
		}
	}
	check("purity", s.Aggregate.Purity, GatePurityFloor)
	check("coverage", s.Aggregate.Coverage, GateCoverageFloor)
	check("mota", s.Aggregate.MOTA, GateMOTAFloor)
	check("diagnosis-accuracy", s.Aggregate.DiagnosisAccuracy, GateDiagnosisFloor)
	if len(fails) > 0 {
		return fmt.Errorf("trackeval gate: %s", strings.Join(fails, "; "))
	}
	return nil
}

// Table renders the per-family breakdown for terminals.
func (s *Scorecard) Table() *report.Table {
	t := &report.Table{
		Title:  "Tracking quality by scenario family",
		Header: []string{"family", "scen", "purity", "coverage", "MOTA", "ARI", "IDSW", "frag"},
	}
	for _, f := range s.Families {
		t.AddRow(f.Family, fmt.Sprintf("%d", f.Scenarios),
			report.Pct(f.Purity), report.Pct(f.Coverage),
			report.F(f.MOTA, 3), report.F(f.MeanARI, 3),
			fmt.Sprintf("%d", f.IDSwitches), fmt.Sprintf("%d", f.Fragmentation))
	}
	a := s.Aggregate
	t.AddRow("TOTAL", fmt.Sprintf("%d", a.Scenarios),
		report.Pct(a.Purity), report.Pct(a.Coverage),
		report.F(a.MOTA, 3), report.F(a.MeanARI, 3),
		fmt.Sprintf("%d", a.IDSwitches), fmt.Sprintf("%d", a.Fragmentation))
	return t
}

// TimingTable renders the per-stage timing breakdown.
func (s *Scorecard) TimingTable() *report.Table {
	t := &report.Table{
		Title:  "Evaluation stage timing",
		Header: []string{"stage", "total"},
	}
	row := func(name string, ns int64) {
		t.AddRow(name, fmt.Sprintf("%.1f ms", float64(ns)/1e6))
	}
	row("generate", s.Timing.GenerateNS)
	row("build-frames", s.Timing.BuildNS)
	row("track", s.Timing.TrackNS)
	row("score", s.Timing.ScoreNS)
	row("diagnose", s.Timing.DiagnoseNS)
	row("TOTAL", s.Timing.TotalNS())
	return t
}

// perfdb export: the scorecard rendered in the run-document schema
// trajectory.ParseRun understands (the shape internal/core exports), so
// quality scorecards file into the store and flow through
// /v1/series/<s>/regressions and `trackctl regressions` unchanged.
// Object 1 is the corpus aggregate; the family scores follow, each a
// single-frame "region" whose trends carry the quality metrics.

type pdbCluster struct {
	ID         int     `json:"id"`
	Size       int     `json:"size"`
	DurationNS float64 `json:"durationNs"`
	Region     int     `json:"region"`
}

type pdbFrame struct {
	Index    int          `json:"index"`
	Label    string       `json:"label"`
	Bursts   int          `json:"bursts"`
	Clusters []pdbCluster `json:"clusters"`
}

type pdbRegion struct {
	ID         int                `json:"id"`
	Spanning   bool               `json:"spanning"`
	DurationNS float64            `json:"durationNs"`
	Members    [][]int            `json:"members"`
	Trends     core.OrderedTrends `json:"trends"`
}

type pdbDoc struct {
	Frames         []pdbFrame  `json:"frames"`
	Regions        []pdbRegion `json:"regions"`
	TrackedRegions int         `json:"trackedRegions"`
	Coverage       float64     `json:"coverage"`
}

// PerfDBDocument renders the scorecard as a perfdb run payload.
func (s *Scorecard) PerfDBDocument() ([]byte, error) {
	doc := pdbDoc{
		TrackedRegions: 1 + len(s.Families),
		Coverage:       s.Aggregate.Coverage,
	}
	frame := pdbFrame{Index: 0, Label: "trackeval-corpus"}

	addRegion := func(id int, name string, mass float64, trends core.OrderedTrends) {
		doc.Regions = append(doc.Regions, pdbRegion{
			ID:         id,
			Spanning:   true,
			DurationNS: mass,
			Members:    [][]int{{id}},
			Trends:     trends,
		})
		frame.Clusters = append(frame.Clusters, pdbCluster{
			ID: id, Size: s.Aggregate.Scenarios, DurationNS: mass, Region: id,
		})
		frame.Bursts += s.Aggregate.Scenarios
		_ = name
	}

	a := s.Aggregate
	addRegion(1, "aggregate", a.GTMass, core.OrderedTrends{
		"MOTA":              {a.MOTA},
		"Purity":            {a.Purity},
		"Coverage":          {a.Coverage},
		"ARI":               {a.MeanARI},
		"IDSwitches":        {float64(a.IDSwitches)},
		"Fragmentation":     {float64(a.Fragmentation)},
		"DiagnosisAccuracy": {a.DiagnosisAccuracy},
	})
	for i, f := range s.Families {
		addRegion(2+i, f.Family, f.GTMass, core.OrderedTrends{
			"MOTA":          {f.MOTA},
			"Purity":        {f.Purity},
			"Coverage":      {f.Coverage},
			"ARI":           {f.MeanARI},
			"IDSwitches":    {float64(f.IDSwitches)},
			"Fragmentation": {float64(f.Fragmentation)},
		})
	}
	doc.Frames = []pdbFrame{frame}
	return json.MarshalIndent(doc, "", "  ")
}
