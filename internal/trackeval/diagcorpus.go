package trackeval

import (
	"fmt"
	"math/rand/v2"

	"perftrack/internal/core"
	"perftrack/internal/machine"
	"perftrack/internal/metrics"
	"perftrack/internal/trace"
)

// streamDiagCorpus decorrelates the diagnosis corpus from the scenario
// corpus when both derive from one seed.
const streamDiagCorpus = 0x41a6d05e

// DiagScenario is one planted-cause diagnosis problem: a frame sequence
// whose hot region exhibits exactly one of the named causes, generated
// through internal/machine's analytic model so the counters are
// mechanistically consistent with the planted explanation.
type DiagScenario struct {
	Name    string
	Seed    uint64
	Planted Cause
	Traces  []*trace.Trace
	// AnomalousRank is the rank planted as an outlier (-1 when none).
	AnomalousRank int
}

// diagPhase is one code region of a diagnosis frame.
type diagPhase struct {
	id   int
	cost machine.Cost
	// extraIters adds per-rank repetitions of the burst (load imbalance).
	extraIters map[int]int
}

const (
	diagRanks = 8
	diagIters = 3
)

// buildDiagFrame lays the phases out with barrier semantics, one burst
// per (iteration, phase, rank), counters scaled by a ±1% size jitter and
// a ±0.5% cycle jitter so bursts are distinct but stay in place.
func buildDiagFrame(rng *rand.Rand, meta trace.Metadata, phases []diagPhase) *trace.Trace {
	t := &trace.Trace{Meta: meta}
	clock := make([]int64, diagRanks)
	emit := func(ph diagPhase, r int) {
		j1 := 1 + (rng.Float64()-0.5)*0.02
		j2 := 1 + (rng.Float64()-0.5)*0.01
		b := trace.Burst{
			Task:       r,
			StartNS:    clock[r],
			DurationNS: int64(ph.cost.DurationNS * j1 * j2),
			Phase:      ph.id,
			Stack: trace.CallstackRef{
				Function: fmt.Sprintf("diag_phase_%d", ph.id),
				File:     "diag.f90",
				Line:     100 * ph.id,
			},
		}
		b.Counters[metrics.CtrInstructions] = ph.cost.Instructions * j1
		b.Counters[metrics.CtrCycles] = ph.cost.Cycles * j1 * j2
		b.Counters[metrics.CtrL1DMisses] = ph.cost.L1DMisses * j1
		b.Counters[metrics.CtrL2DMisses] = ph.cost.L2DMisses * j1
		b.Counters[metrics.CtrTLBMisses] = ph.cost.TLBMisses * j1
		b.Counters[metrics.CtrMemAccesses] = ph.cost.MemAccesses * j1
		t.Bursts = append(t.Bursts, b)
		clock[r] += b.DurationNS
	}
	for it := 0; it < diagIters; it++ {
		for _, ph := range phases {
			var maxEnd int64
			for r := 0; r < diagRanks; r++ {
				emit(ph, r)
				for k := 0; k < ph.extraIters[r]; k++ {
					emit(ph, r)
				}
				if clock[r] > maxEnd {
					maxEnd = clock[r]
				}
			}
			for r := range clock {
				clock[r] = maxEnd + 1000
			}
		}
	}
	t.SortByTaskTime()
	return t
}

// background is the stable anchor region every diagnosis scenario
// carries alongside its hot region, so tracking is never trivial.
func background(arch machine.Arch, comp machine.Compiler, procs int) diagPhase {
	return diagPhase{id: 2, cost: machine.Execute(machine.Workload{
		Instructions:    4e7,
		MemFrac:         0.02,
		WorkingSetBytes: 16 * 1024,
	}, arch, comp, machine.Sharing{ProcsPerNode: procs})}
}

// DiagnosisCorpus derives the planted-cause scenarios for one seed:
// a compiler trade, a cache-capacity cliff, a bandwidth contention
// knee, a planted rank imbalance, and a steady control.
func DiagnosisCorpus(seed uint64) []DiagScenario {
	mn := machine.MareNostrum()
	mt := machine.MinoTauro()
	gf := machine.GFortran()
	xlf := machine.XLF()

	mk := func(name string, planted Cause, anomRank int, build func(rng *rand.Rand) []*trace.Trace) DiagScenario {
		rng := rand.New(rand.NewPCG(seed, streamDiagCorpus))
		return DiagScenario{
			Name:          fmt.Sprintf("%s@%04d", name, seed),
			Seed:          seed,
			Planted:       planted,
			AnomalousRank: anomRank,
			Traces:        build(rng),
		}
	}
	meta := func(label string, arch machine.Arch, comp machine.Compiler, tpn, fi int) trace.Metadata {
		return trace.Metadata{
			App:          "trackeval-diag",
			Label:        fmt.Sprintf("%s-f%02d", label, fi),
			Ranks:        diagRanks,
			TasksPerNode: tpn,
			Machine:      arch.Name,
			Compiler:     comp.Name,
		}
	}

	return []DiagScenario{
		// CGPOP shape: toolchain flips mid-sequence, instructions and IPC
		// drop together, elapsed time stays flat.
		mk("compiler", CauseCompilerEffect, -1, func(rng *rand.Rand) []*trace.Trace {
			var out []*trace.Trace
			for fi := 0; fi < 6; fi++ {
				comp := gf
				if fi >= 3 {
					comp = xlf
				}
				hot := diagPhase{id: 1, cost: machine.Execute(machine.Workload{
					Instructions:    5e6,
					MemFrac:         0.2,
					WorkingSetBytes: 16 * 1024,
					IPCFactor:       0.5,
				}, mn, comp, machine.Sharing{ProcsPerNode: 4})}
				out = append(out, buildDiagFrame(rng,
					meta("compiler", mn, comp, 4, fi),
					[]diagPhase{hot, background(mn, comp, 4)}))
			}
			return out
		}),

		// HydroC shape: the working set grows past L1 and the miss density
		// steps up while IPC steps down.
		mk("cachecliff", CauseCacheCliff, -1, func(rng *rand.Rand) []*trace.Trace {
			var out []*trace.Trace
			ws := []float64{8, 16, 24, 48, 96, 192}
			for fi := 0; fi < len(ws); fi++ {
				hot := diagPhase{id: 1, cost: machine.Execute(machine.Workload{
					Instructions:    5e6,
					MemFrac:         0.3,
					WorkingSetBytes: ws[fi] * 1024,
				}, mt, gf, machine.Sharing{ProcsPerNode: 1})}
				out = append(out, buildDiagFrame(rng,
					meta("cachecliff", mt, gf, 1, fi),
					[]diagPhase{hot, background(mt, gf, 1)}))
			}
			return out
		}),

		// MR-Genesis shape: same work per process, fuller and fuller nodes;
		// IPC decay accelerates as the memory channel saturates while the
		// miss density stays flat.
		mk("contention", CauseContentionKnee, -1, func(rng *rand.Rand) []*trace.Trace {
			var out []*trace.Trace
			packing := []int{1, 2, 4, 6, 8, 12}
			for fi, procs := range packing {
				hot := diagPhase{id: 1, cost: machine.Execute(machine.Workload{
					Instructions:    5e6,
					MemFrac:         0.15,
					WorkingSetBytes: 64 << 20,
					MLP:             8,
				}, mt, gf, machine.Sharing{ProcsPerNode: procs})}
				out = append(out, buildDiagFrame(rng,
					meta("contention", mt, gf, procs, fi),
					[]diagPhase{hot, background(mt, gf, procs)}))
			}
			return out
		}),

		// Planted skew: rank 0 runs ~1.7x the hot-phase work units of its
		// peers, at identical per-burst behaviour — invisible in the metric
		// space, obvious in the per-rank time share.
		mk("imbalance", CauseLoadImbalance, 0, func(rng *rand.Rand) []*trace.Trace {
			var out []*trace.Trace
			for fi := 0; fi < 6; fi++ {
				hot := diagPhase{
					id: 1,
					cost: machine.Execute(machine.Workload{
						Instructions:    5e6,
						MemFrac:         0.2,
						WorkingSetBytes: 16 * 1024,
					}, mn, gf, machine.Sharing{ProcsPerNode: 4}),
					extraIters: map[int]int{0: 2},
				}
				out = append(out, buildDiagFrame(rng,
					meta("imbalance", mn, gf, 4, fi),
					[]diagPhase{hot, background(mn, gf, 4)}))
			}
			return out
		}),

		// Control: nothing happens; the diagnosis must say so.
		mk("steady", CauseSteady, -1, func(rng *rand.Rand) []*trace.Trace {
			var out []*trace.Trace
			for fi := 0; fi < 6; fi++ {
				hot := diagPhase{id: 1, cost: machine.Execute(machine.Workload{
					Instructions:    5e6,
					MemFrac:         0.2,
					WorkingSetBytes: 16 * 1024,
				}, mn, gf, machine.Sharing{ProcsPerNode: 4})}
				out = append(out, buildDiagFrame(rng,
					meta("steady", mn, gf, 4, fi),
					[]diagPhase{hot, background(mn, gf, 4)}))
			}
			return out
		}),
	}
}

// DiagnosisScore records how the diagnosis pass did on one planted
// scenario.
type DiagnosisScore struct {
	Name           string  `json:"name"`
	Seed           uint64  `json:"seed"`
	Planted        string  `json:"planted"`
	Diagnosed      string  `json:"diagnosed"`
	Confidence     float64 `json:"confidence"`
	Hit            bool    `json:"hit"`
	AnomalousRanks []int   `json:"anomalousRanks,omitempty"`
	Evidence       string  `json:"evidence,omitempty"`
}

// EvaluateDiagnosisCorpus tracks every planted-cause scenario of one
// seed and scores the diagnosis pass against the planted causes. A
// scenario is a hit when some spanning region is diagnosed with the
// planted cause (for load imbalance, additionally flagging the planted
// rank); the steady control is a hit when no region raises any cause.
func EvaluateDiagnosisCorpus(seed uint64, cfg core.Config) ([]DiagnosisScore, error) {
	var out []DiagnosisScore
	for _, ds := range DiagnosisCorpus(seed) {
		frames, err := core.BuildFrames(ds.Traces, cfg)
		if err != nil {
			return nil, fmt.Errorf("diagnosis scenario %s: building frames: %w", ds.Name, err)
		}
		res, err := core.NewTracker(cfg).Track(frames)
		if err != nil {
			return nil, fmt.Errorf("diagnosis scenario %s: tracking: %w", ds.Name, err)
		}
		diags := Diagnose(res)

		score := DiagnosisScore{
			Name:      ds.Name,
			Seed:      ds.Seed,
			Planted:   string(ds.Planted),
			Diagnosed: string(CauseSteady),
		}
		for _, d := range diags {
			if d.Cause == CauseSteady {
				continue
			}
			// Record the first (dominant-region) non-steady finding, and
			// prefer the planted cause when several regions disagree.
			if score.Diagnosed == string(CauseSteady) || d.Cause == ds.Planted {
				score.Diagnosed = string(d.Cause)
				score.Confidence = d.Confidence
				score.Evidence = d.Evidence
				score.AnomalousRanks = d.AnomalousRanks
				if d.Cause == ds.Planted {
					break
				}
			}
		}
		switch ds.Planted {
		case CauseSteady:
			score.Hit = score.Diagnosed == string(CauseSteady)
		case CauseLoadImbalance:
			score.Hit = score.Diagnosed == string(ds.Planted) &&
				containsInt(score.AnomalousRanks, ds.AnomalousRank)
		default:
			score.Hit = score.Diagnosed == string(ds.Planted)
		}
		out = append(out, score)
	}
	return out, nil
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
