package align

import (
	"math"
	"math/rand/v2"
	"reflect"
	"testing"
)

// The divide-and-conquer Pairwise must reproduce the historical
// full-matrix implementation EXACTLY — the same aligned sequences (not
// merely equally-scoring ones) and the bit-identical score — because the
// golden-byte suites downstream (report/plot goldens, seed sweeps) pin
// artifacts derived from the precise gap placement. pairwiseFull is the
// historical code retained verbatim; these tests drive both across the
// kinds of inputs the pipeline produces plus adversarial shapes.

func diffCheck(t *testing.T, a, b []int, sc Scoring) {
	t.Helper()
	wantA, wantB, wantScore := pairwiseFull(a, b, sc)
	gotA, gotB, gotScore := Pairwise(a, b, sc)
	if math.Float64bits(gotScore) != math.Float64bits(wantScore) {
		t.Fatalf("score mismatch: got %v want %v (a=%v b=%v sc=%+v)", gotScore, wantScore, a, b, sc)
	}
	if !reflect.DeepEqual(pad(gotA), pad(wantA)) || !reflect.DeepEqual(pad(gotB), pad(wantB)) {
		t.Fatalf("alignment path mismatch:\n got A=%v\nwant A=%v\n got B=%v\nwant B=%v\n(a=%v b=%v sc=%+v)",
			gotA, wantA, gotB, wantB, a, b, sc)
	}
}

// pad maps nil to the empty slice so DeepEqual compares contents.
func pad(s []int) []int {
	if s == nil {
		return []int{}
	}
	return s
}

func diffSeq(rng *rand.Rand, n, alphabet int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = rng.IntN(alphabet)
	}
	return s
}

func TestPairwiseMatchesFullMatrixRandom(t *testing.T) {
	scorings := []Scoring{
		DefaultScoring(),
		{Match: 1, Mismatch: -2, GapOpen: -3},
		{Match: 3, Mismatch: 0, GapOpen: -1},
		{Match: 2, Mismatch: -2, GapOpen: -2},
	}
	for seed := uint64(0); seed < 150; seed++ {
		rng := rand.New(rand.NewPCG(seed, 0xd1ff))
		// Lengths straddle the base-case cutoff so recursion depth varies,
		// small alphabets force dense score ties.
		n := rng.IntN(220)
		m := rng.IntN(220)
		alphabet := 1 + rng.IntN(4)
		a := diffSeq(rng, n, alphabet)
		b := diffSeq(rng, m, alphabet)
		sc := scorings[seed%uint64(len(scorings))]
		diffCheck(t, a, b, sc)
	}
}

func TestPairwiseMatchesFullMatrixRepetitive(t *testing.T) {
	// SPMD-shaped inputs: near-identical periodic phase streams, the
	// worst case for tie density (every period offset scores the same).
	for seed := uint64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewPCG(seed, 0x5e9))
		period := 1 + rng.IntN(6)
		n := 150 + rng.IntN(200)
		mk := func() []int {
			s := make([]int, 0, n)
			for len(s) < n {
				for p := 0; p < period && len(s) < n; p++ {
					switch r := rng.Float64(); {
					case r < 0.05: // drop
					case r < 0.10:
						s = append(s, p, p) // double
					default:
						s = append(s, p)
					}
				}
			}
			return s
		}
		diffCheck(t, mk(), mk(), DefaultScoring())
	}
}

func TestPairwiseMatchesFullMatrixEdges(t *testing.T) {
	sc := DefaultScoring()
	cases := [][2][]int{
		{nil, nil},
		{{1, 2, 3}, nil},
		{nil, {1, 2, 3}},
		{{1}, {1}},
		{{1}, {2}},
		{{1, 1, 1, 1}, {1, 1}},
		{{0, 0, 0}, {0, 0, 0, 0, 0, 0, 0}},
	}
	for _, c := range cases {
		diffCheck(t, c[0], c[1], sc)
	}
	// All-equal and all-distinct long inputs exercise degenerate
	// traceback shapes across multiple recursion levels.
	eq := make([]int, 300)
	diffCheck(t, eq, eq[:211], sc)
	asc := make([]int, 300)
	desc := make([]int, 250)
	for i := range asc {
		asc[i] = i
	}
	for i := range desc {
		desc[i] = 10_000 + i
	}
	diffCheck(t, asc, desc, sc)
}

func FuzzPairwiseDifferential(f *testing.F) {
	f.Add(uint64(1), 50, 60, 3)
	f.Add(uint64(7), 130, 5, 2)
	f.Add(uint64(9), 0, 40, 1)
	f.Fuzz(func(t *testing.T, seed uint64, n, m, alphabet int) {
		if n < 0 || m < 0 || n > 300 || m > 300 {
			t.Skip()
		}
		if alphabet < 1 || alphabet > 8 {
			t.Skip()
		}
		rng := rand.New(rand.NewPCG(seed, 0xf0))
		diffCheck(t, diffSeq(rng, n, alphabet), diffSeq(rng, m, alphabet), DefaultScoring())
	})
}
