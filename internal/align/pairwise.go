package align

import "sync"

// Needleman–Wunsch with Hirschberg-style divide-and-conquer traceback.
//
// The historical implementation materialised the full (n+1)×(m+1) score
// matrix plus a byte of back-pointer per cell — ~36 MB for a pair of
// 2000-symbol task sequences — to recover one alignment path. This version
// keeps O(n+m) live memory: a two-row forward score pass that also tracks,
// for every cell of the active row, the column where the back-pointer path
// from that cell crosses the middle row. That crossing column is the exact
// cell the historical traceback would have walked through, so splitting
// there and recursing on the two halves reproduces the historical
// alignment move for move — not merely *an* optimal alignment, but *the*
// canonical one — which the golden-byte suites downstream pin.
//
// Why the recursion is exact (and not just optimal):
//
//   - Back pointers depend only on score-matrix prefixes, so the top
//     subproblem's matrix is a restriction of the global one and its
//     traceback from (mid, jc) IS the global path segment.
//   - For the bottom subproblem, every cell satisfies D'(i',j') ≤
//     D(i,j) − D(mid,jc), with equality exactly on global-path cells
//     (any subproblem path extends through (mid,jc) to a global path).
//     At a path cell the globally chosen predecessor is itself a path
//     cell (equality), while the other two candidates sit at or below
//     their global values; the preference order diag > up > left breaks
//     the only possible tie — on diag — identically in both tables. By
//     induction from (n,m) the bottom traceback follows the same moves.
//
// The returned score is reproduced bit-for-bit by re-walking the final
// path with the same arithmetic the matrix recurrence used (boundary
// cells are i·gap products, interior cells left-associated sums), so
// callers see the exact float the historical dp[n][m] held.

// maxBaseArea bounds the full-matrix base case of the recursion: small
// enough to stay cache-resident (~128 KiB of scores + 16 KiB of pointers),
// large enough to amortise recursion overhead.
const maxBaseArea = 16384

// Row buffers are pooled: Star fires many pairwise alignments in a row
// (concurrently, see Star), and steady-state none of them should grow the
// heap.
var (
	rowPool  = sync.Pool{New: func() any { return new([]float64) }}
	intPool  = sync.Pool{New: func() any { return new([]int) }}
	bytePool = sync.Pool{New: func() any { return new([]uint8) }}
)

func getRow(n int) (*[]float64, []float64) {
	p := rowPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	return p, (*p)[:n]
}

func getInts(n int) (*[]int, []int) {
	p := intPool.Get().(*[]int)
	if cap(*p) < n {
		*p = make([]int, n)
	}
	return p, (*p)[:n]
}

func getBytes(n int) (*[]uint8, []uint8) {
	p := bytePool.Get().(*[]uint8)
	if cap(*p) < n {
		*p = make([]uint8, n)
	}
	return p, (*p)[:n]
}

// Pairwise globally aligns a and b, returning the aligned sequences padded
// with Gap and the alignment score. Symbols are arbitrary non-negative
// integers (cluster ids). The alignment and score are identical to the
// full-matrix reference (see pairwiseFull and the differential test).
func Pairwise(a, b []int, sc Scoring) (alignedA, alignedB []int, score float64) {
	n, m := len(a), len(b)
	ra := make([]int, 0, n+m)
	rb := make([]int, 0, n+m)
	ra, rb = alignRec(a, b, sc, ra, rb)
	return ra, rb, rescore(ra, rb, sc)
}

// alignRec appends the canonical alignment of a vs b to (ra, rb).
func alignRec(a, b []int, sc Scoring, ra, rb []int) ([]int, []int) {
	n, m := len(a), len(b)
	if n <= 1 || m <= 1 || (n+1)*(m+1) <= maxBaseArea {
		return alignBase(a, b, sc, ra, rb)
	}
	mid := n / 2
	jc := splitColumn(a, b, sc, mid)
	ra, rb = alignRec(a[:mid], b[:jc], sc, ra, rb)
	return alignRec(a[mid:], b[jc:], sc, ra, rb)
}

// splitColumn runs the two-row forward pass and returns the column where
// the canonical traceback path of the full problem crosses row mid: for
// every cell of the active row it tracks the crossing column of the
// back-pointer path from that cell, seeded with the identity at row mid.
func splitColumn(a, b []int, sc Scoring, mid int) int {
	n, m := len(a), len(b)
	pPrev, prev := getRow(m + 1)
	pCurr, curr := getRow(m + 1)
	pXPrev, xPrev := getInts(m + 1)
	pXCurr, xCurr := getInts(m + 1)
	defer func() {
		rowPool.Put(pPrev)
		rowPool.Put(pCurr)
		intPool.Put(pXPrev)
		intPool.Put(pXCurr)
	}()
	for j := 0; j <= m; j++ {
		prev[j] = float64(j) * sc.GapOpen
	}
	gap := sc.GapOpen
	// Rows 1..mid: plain score pass, no crossing bookkeeping yet.
	for i := 1; i <= mid; i++ {
		curr[0] = float64(i) * gap
		ai := a[i-1]
		for j := 1; j <= m; j++ {
			sub := sc.Mismatch
			if ai == b[j-1] {
				sub = sc.Match
			}
			best := prev[j-1] + sub
			if up := prev[j] + gap; up > best {
				best = up
			}
			if left := curr[j-1] + gap; left > best {
				best = left
			}
			curr[j] = best
		}
		prev, curr = curr, prev
	}
	for j := 0; j <= m; j++ {
		xPrev[j] = j // the path crosses row mid where it stands
	}
	// Rows mid+1..n: carry the crossing column along the back pointers.
	for i := mid + 1; i <= n; i++ {
		curr[0] = float64(i) * gap
		xCurr[0] = xPrev[0] // boundary cells point up
		ai := a[i-1]
		for j := 1; j <= m; j++ {
			sub := sc.Mismatch
			if ai == b[j-1] {
				sub = sc.Match
			}
			best, x := prev[j-1]+sub, xPrev[j-1]
			if up := prev[j] + gap; up > best {
				best, x = up, xPrev[j]
			}
			if left := curr[j-1] + gap; left > best {
				best, x = left, xCurr[j-1]
			}
			curr[j] = best
			xCurr[j] = x
		}
		prev, curr = curr, prev
		xPrev, xCurr = xCurr, xPrev
	}
	return xPrev[m]
}

// alignBase is the full-matrix base case: the historical algorithm over a
// pooled matrix, appending its traceback to (ra, rb).
func alignBase(a, b []int, sc Scoring, ra, rb []int) ([]int, []int) {
	n, m := len(a), len(b)
	cols := m + 1
	pdp, dp := getRow((n + 1) * cols)
	pback, back := getBytes((n + 1) * cols)
	defer func() {
		rowPool.Put(pdp)
		bytePool.Put(pback)
	}()
	dp[0] = 0
	back[0] = 0
	for i := 1; i <= n; i++ {
		dp[i*cols] = float64(i) * sc.GapOpen
		back[i*cols] = 1
	}
	for j := 1; j <= m; j++ {
		dp[j] = float64(j) * sc.GapOpen
		back[j] = 2
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			sub := sc.Mismatch
			if a[i-1] == b[j-1] {
				sub = sc.Match
			}
			diag := dp[(i-1)*cols+j-1] + sub
			up := dp[(i-1)*cols+j] + sc.GapOpen
			left := dp[i*cols+j-1] + sc.GapOpen
			best, dir := diag, uint8(0)
			if up > best {
				best, dir = up, 1
			}
			if left > best {
				best, dir = left, 2
			}
			dp[i*cols+j] = best
			back[i*cols+j] = dir
		}
	}
	start := len(ra)
	i, j := n, m
	for i > 0 || j > 0 {
		switch back[i*cols+j] {
		case 0:
			ra = append(ra, a[i-1])
			rb = append(rb, b[j-1])
			i--
			j--
		case 1:
			ra = append(ra, a[i-1])
			rb = append(rb, Gap)
			i--
		default:
			ra = append(ra, Gap)
			rb = append(rb, b[j-1])
			j--
		}
	}
	reverse(ra[start:])
	reverse(rb[start:])
	return ra, rb
}

// rescore walks an alignment forward and reproduces the exact float the
// full-matrix dp[n][m] would hold: matrix boundary cells are i·gap
// PRODUCTS while interior cells are left-associated running SUMS, so the
// walk tracks its (i, j) position and switches arithmetic accordingly.
// For integer scorings the distinction is moot (both are exact); for
// fractional ones it is what keeps the score bit-identical.
func rescore(ra, rb []int, sc Scoring) float64 {
	var v float64
	i, j := 0, 0
	for t := range ra {
		var inc float64
		switch {
		case ra[t] == Gap || rb[t] == Gap:
			inc = sc.GapOpen
			if ra[t] == Gap {
				j++
			} else {
				i++
			}
		case ra[t] == rb[t]:
			inc = sc.Match
			i++
			j++
		default:
			inc = sc.Mismatch
			i++
			j++
		}
		switch {
		case j == 0:
			v = float64(i) * sc.GapOpen
		case i == 0:
			v = float64(j) * sc.GapOpen
		default:
			v += inc
		}
	}
	return v
}

// pairwiseFull is the historical full-matrix implementation, retained
// verbatim as the reference the divide-and-conquer Pairwise is
// differentially tested against (see pairwise_differential_test.go).
func pairwiseFull(a, b []int, sc Scoring) (alignedA, alignedB []int, score float64) {
	n, m := len(a), len(b)
	cols := m + 1
	dp := make([]float64, (n+1)*cols)
	back := make([]uint8, (n+1)*cols)
	for i := 1; i <= n; i++ {
		dp[i*cols] = float64(i) * sc.GapOpen
		back[i*cols] = 1
	}
	for j := 1; j <= m; j++ {
		dp[j] = float64(j) * sc.GapOpen
		back[j] = 2
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			sub := sc.Mismatch
			if a[i-1] == b[j-1] {
				sub = sc.Match
			}
			diag := dp[(i-1)*cols+j-1] + sub
			up := dp[(i-1)*cols+j] + sc.GapOpen
			left := dp[i*cols+j-1] + sc.GapOpen
			best, dir := diag, uint8(0)
			if up > best {
				best, dir = up, 1
			}
			if left > best {
				best, dir = left, 2
			}
			dp[i*cols+j] = best
			back[i*cols+j] = dir
		}
	}
	i, j := n, m
	var ra, rb []int
	for i > 0 || j > 0 {
		switch back[i*cols+j] {
		case 0:
			ra = append(ra, a[i-1])
			rb = append(rb, b[j-1])
			i--
			j--
		case 1:
			ra = append(ra, a[i-1])
			rb = append(rb, Gap)
			i--
		default:
			ra = append(ra, Gap)
			rb = append(rb, b[j-1])
			j--
		}
	}
	reverse(ra)
	reverse(rb)
	return ra, rb, dp[n*cols+m]
}
