// Package align implements the sequence-alignment machinery of González et
// al. (PDCAT'09) that the paper's SPMD-simultaneity and execution-sequence
// evaluators are built on: Needleman–Wunsch global pairwise alignment of
// cluster-id sequences and a star-shaped multiple alignment whose columns
// expose which clusters execute simultaneously across tasks.
package align

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// Gap is the symbol used for gaps in aligned sequences.
const Gap = -1

// Scoring parametrises Needleman–Wunsch.
type Scoring struct {
	Match    float64
	Mismatch float64
	GapOpen  float64
}

// DefaultScoring rewards identity and mildly penalises mismatch and gaps,
// which suits highly repetitive SPMD phase sequences.
func DefaultScoring() Scoring { return Scoring{Match: 2, Mismatch: -1, GapOpen: -1} }

func reverse(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// Alignment is a multiple alignment: Rows[k][c] is the symbol of sequence k
// in column c, or Gap.
type Alignment struct {
	Rows [][]int
}

// Columns returns the number of alignment columns.
func (al *Alignment) Columns() int {
	if len(al.Rows) == 0 {
		return 0
	}
	return len(al.Rows[0])
}

// Column returns the symbols of column c across all rows (Gap included).
func (al *Alignment) Column(c int) []int {
	out := make([]int, len(al.Rows))
	for k, row := range al.Rows {
		out[k] = row[c]
	}
	return out
}

// Star builds a multiple alignment by aligning every sequence against a
// centre sequence (the longest one, ties broken by lowest index) and
// merging the pairwise alignments through the centre's coordinates — the
// classic star-alignment approximation, adequate for near-identical SPMD
// phase streams.
func Star(seqs [][]int, sc Scoring) *Alignment {
	if len(seqs) == 0 {
		return &Alignment{}
	}
	centre := 0
	for i, s := range seqs {
		if len(s) > len(seqs[centre]) {
			centre = i
		}
	}
	c := seqs[centre]
	// For each sequence: align to centre, remember for every centre
	// position the matched symbol, and how many insertions occur between
	// consecutive centre positions.
	type aligned struct {
		atPos  [][]int // for centre position p: symbols inserted right before p
		match  []int   // symbol aligned to centre position p, or Gap
		suffix []int   // symbols after the last centre position
	}
	all := make([]aligned, len(seqs))
	maxIns := make([]int, len(c)+1) // insertions before position p (p==len(c): suffix)
	alignOne := func(k int) {
		var a aligned
		a.atPos = make([][]int, len(c)+1)
		a.match = make([]int, len(c))
		for i := range a.match {
			a.match[i] = Gap
		}
		if k == centre {
			for i, sym := range c {
				a.match[i] = sym
			}
			all[k] = a
			return
		}
		ra, rb, _ := Pairwise(c, seqs[k], sc)
		pos := 0 // next centre position
		for t := range ra {
			switch {
			case ra[t] != Gap && rb[t] != Gap:
				a.match[pos] = rb[t]
				pos++
			case ra[t] != Gap: // deletion in s
				pos++
			default: // insertion in s before centre position pos
				a.atPos[pos] = append(a.atPos[pos], rb[t])
			}
		}
		all[k] = a
	}
	// The per-sequence alignments are independent and each writes only its
	// own all[k] slot, so the result is identical regardless of schedule;
	// run them across a bounded worker pool.
	if workers := min(runtime.GOMAXPROCS(0), len(seqs)); workers > 1 {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := range next {
					alignOne(k)
				}
			}()
		}
		for k := range seqs {
			next <- k
		}
		close(next)
		wg.Wait()
	} else {
		for k := range seqs {
			alignOne(k)
		}
	}
	for _, a := range all {
		for p, ins := range a.atPos {
			if len(ins) > maxIns[p] {
				maxIns[p] = len(ins)
			}
		}
	}
	// Emit rows: for each centre position, first the insertion block
	// (left-padded with gaps), then the match column.
	width := len(c)
	for _, m := range maxIns {
		width += m
	}
	rows := make([][]int, len(seqs))
	for k, a := range all {
		row := make([]int, 0, width)
		for p := 0; p <= len(c); p++ {
			ins := a.atPos[p]
			for g := 0; g < maxIns[p]-len(ins); g++ {
				row = append(row, Gap)
			}
			row = append(row, ins...)
			if p < len(c) {
				row = append(row, a.match[p])
			}
		}
		rows[k] = row
	}
	return &Alignment{Rows: rows}
}

// CoOccurrence returns, for every pair of distinct symbols (i, j), the
// probability that a column containing i also contains j on another row:
// out[i][j] = #columns{i and j present} / #columns{i present}. This is the
// paper's SPMD-simultaneity measure — "the probability of two different
// computations to be executed at the same time by different processes".
// The diagonal holds the probability that a column containing i has i on
// at least two rows. Symbols must lie in [0, nSymbols).
func (al *Alignment) CoOccurrence(nSymbols int) [][]float64 {
	out := make([][]float64, nSymbols)
	for i := range out {
		out[i] = make([]float64, nSymbols)
	}
	occur := make([]float64, nSymbols)
	colCount := make([]int, nSymbols)
	for c := 0; c < al.Columns(); c++ {
		for i := range colCount {
			colCount[i] = 0
		}
		for _, row := range al.Rows {
			s := row[c]
			if s >= 0 && s < nSymbols {
				colCount[s]++
			}
		}
		for i := 0; i < nSymbols; i++ {
			if colCount[i] == 0 {
				continue
			}
			occur[i]++
			for j := 0; j < nSymbols; j++ {
				switch {
				case j == i:
					if colCount[i] >= 2 {
						out[i][j]++
					}
				case colCount[j] > 0:
					out[i][j]++
				}
			}
		}
	}
	for i := 0; i < nSymbols; i++ {
		if occur[i] == 0 {
			continue
		}
		for j := 0; j < nSymbols; j++ {
			out[i][j] /= occur[i]
		}
	}
	return out
}

// Consensus returns the per-column majority symbol (gaps excluded);
// columns that are all gaps are dropped. The result is the representative
// global execution sequence of the experiment, used by the paper's
// execution-sequence evaluator.
func (al *Alignment) Consensus() []int {
	var out []int
	counts := map[int]int{}
	for c := 0; c < al.Columns(); c++ {
		clear(counts)
		for _, row := range al.Rows {
			if s := row[c]; s != Gap {
				counts[s]++
			}
		}
		if len(counts) == 0 {
			continue
		}
		keys := make([]int, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		best, bestN := keys[0], counts[keys[0]]
		for _, k := range keys[1:] {
			if counts[k] > bestN {
				best, bestN = k, counts[k]
			}
		}
		out = append(out, best)
	}
	return out
}

// SPMDScore measures how SPMD the alignment is: the average, over columns,
// of the fraction of non-gap rows agreeing with the column majority. 1.0
// means every task executes exactly the same phase stream in lockstep.
func (al *Alignment) SPMDScore() float64 {
	cols := al.Columns()
	if cols == 0 {
		return 0
	}
	var total float64
	counts := map[int]int{}
	for c := 0; c < cols; c++ {
		clear(counts)
		nonGap := 0
		for _, row := range al.Rows {
			if s := row[c]; s != Gap {
				counts[s]++
				nonGap++
			}
		}
		if nonGap == 0 {
			total += 1
			continue
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		total += float64(best) / float64(nonGap)
	}
	return total / float64(cols)
}

// Identity returns the fraction of aligned (non-gap/non-gap) columns of a
// pairwise alignment where the symbols agree. It errors when the aligned
// sequences have different lengths.
func Identity(alignedA, alignedB []int) (float64, error) {
	if len(alignedA) != len(alignedB) {
		return 0, fmt.Errorf("align: aligned length mismatch %d vs %d", len(alignedA), len(alignedB))
	}
	matches, aligned := 0, 0
	for i := range alignedA {
		if alignedA[i] == Gap || alignedB[i] == Gap {
			continue
		}
		aligned++
		if alignedA[i] == alignedB[i] {
			matches++
		}
	}
	if aligned == 0 {
		return 0, nil
	}
	return float64(matches) / float64(aligned), nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
