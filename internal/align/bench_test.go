package align

import (
	"math/rand/v2"
	"testing"
)

// Core microbenchmarks for the alignment kernels on SPMD-shaped phase
// streams: long, highly repetitive sequences with occasional dropped or
// duplicated phases, which is exactly what the sequence evaluator and the
// star alignment chew on. Part of the BenchmarkCore suite recorded in
// BENCH_core.json.

// benchSeq emits a phase stream: iterations of the pattern 1..phases with
// a small chance of dropping or doubling a phase.
func benchSeq(length, phases int, seed uint64) []int {
	rng := rand.New(rand.NewPCG(seed, 0xa119))
	s := make([]int, 0, length)
	for len(s) < length {
		for p := 1; p <= phases && len(s) < length; p++ {
			r := rng.Float64()
			switch {
			case r < 0.03: // dropped phase
			case r < 0.06: // doubled phase
				s = append(s, p, p)
			default:
				s = append(s, p)
			}
		}
	}
	return s
}

func BenchmarkCoreAlignPairwise(b *testing.B) {
	a := benchSeq(2000, 6, 1)
	c := benchSeq(2000, 6, 2)
	sc := DefaultScoring()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Pairwise(a, c, sc)
	}
}

func BenchmarkCoreAlignStar(b *testing.B) {
	seqs := make([][]int, 32)
	for k := range seqs {
		seqs[k] = benchSeq(300, 6, uint64(k))
	}
	sc := DefaultScoring()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Star(seqs, sc)
	}
}
