package align

import (
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPairwiseIdentical(t *testing.T) {
	a := []int{1, 2, 3, 4}
	ra, rb, score := Pairwise(a, a, DefaultScoring())
	if !reflect.DeepEqual(ra, a) || !reflect.DeepEqual(rb, a) {
		t.Errorf("identical alignment changed sequences: %v %v", ra, rb)
	}
	if score != 8 { // 4 matches x 2
		t.Errorf("score = %v, want 8", score)
	}
}

func TestPairwiseGap(t *testing.T) {
	ra, rb, _ := Pairwise([]int{1, 2, 3}, []int{1, 3}, DefaultScoring())
	if len(ra) != len(rb) {
		t.Fatal("aligned lengths differ")
	}
	// 2 must align against a gap.
	found := false
	for i := range ra {
		if ra[i] == 2 && rb[i] == Gap {
			found = true
		}
	}
	if !found {
		t.Errorf("expected 2/gap column: %v %v", ra, rb)
	}
	// 1 and 3 align to themselves.
	id, err := Identity(ra, rb)
	if err != nil || id != 1 {
		t.Errorf("identity = %v, %v (non-gap columns must all match)", id, err)
	}
}

func TestPairwiseEmpty(t *testing.T) {
	ra, rb, score := Pairwise(nil, []int{1, 2}, DefaultScoring())
	if len(ra) != 2 || ra[0] != Gap || ra[1] != Gap {
		t.Errorf("empty-vs-seq: %v", ra)
	}
	if !reflect.DeepEqual(rb, []int{1, 2}) {
		t.Errorf("rb = %v", rb)
	}
	if score != -2 {
		t.Errorf("score = %v", score)
	}
}

func TestPairwiseMismatchPreferredOverDoubleGap(t *testing.T) {
	// With mismatch -1 and gap -1, aligning [1] with [2] takes the
	// diagonal (one mismatch, -1) instead of two gaps (-2).
	ra, rb, score := Pairwise([]int{1}, []int{2}, DefaultScoring())
	if len(ra) != 1 || ra[0] != 1 || rb[0] != 2 {
		t.Errorf("alignment = %v %v", ra, rb)
	}
	if score != -1 {
		t.Errorf("score = %v", score)
	}
}

func TestPairwisePreservesSubsequences(t *testing.T) {
	f := func(seed uint64, la, lb uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 7))
		a := make([]int, int(la)%30)
		b := make([]int, int(lb)%30)
		for i := range a {
			a[i] = rng.IntN(5)
		}
		for i := range b {
			b[i] = rng.IntN(5)
		}
		ra, rb, _ := Pairwise(a, b, DefaultScoring())
		return reflect.DeepEqual(strip(ra), a) && reflect.DeepEqual(strip(rb), b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func strip(s []int) []int {
	out := []int{}
	for _, v := range s {
		if v != Gap {
			out = append(out, v)
		}
	}
	return out
}

func TestIdentityErrors(t *testing.T) {
	if _, err := Identity([]int{1}, []int{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	id, err := Identity([]int{Gap}, []int{1})
	if err != nil || id != 0 {
		t.Errorf("all-gap identity = %v, %v", id, err)
	}
}

func TestStarIdenticalSequences(t *testing.T) {
	seqs := [][]int{{1, 2, 3}, {1, 2, 3}, {1, 2, 3}}
	al := Star(seqs, DefaultScoring())
	if al.Columns() != 3 {
		t.Fatalf("columns = %d", al.Columns())
	}
	for c := 0; c < 3; c++ {
		col := al.Column(c)
		for _, s := range col {
			if s != c+1 {
				t.Errorf("column %d = %v", c, col)
			}
		}
	}
	if got := al.SPMDScore(); got != 1 {
		t.Errorf("SPMD score = %v, want 1", got)
	}
	if got := al.Consensus(); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Errorf("consensus = %v", got)
	}
}

func TestStarWithInsertion(t *testing.T) {
	seqs := [][]int{
		{1, 2, 3, 4},
		{1, 2, 9, 3, 4}, // the longest: becomes the centre
		{1, 2, 3, 4},
	}
	al := Star(seqs, DefaultScoring())
	if al.Columns() != 5 {
		t.Fatalf("columns = %d, want 5", al.Columns())
	}
	// Short sequences carry a gap where 9 sits.
	col := al.Column(2)
	if col[1] != 9 {
		t.Errorf("centre symbol misplaced: %v", col)
	}
	if col[0] != Gap || col[2] != Gap {
		t.Errorf("gaps misplaced: %v", col)
	}
	cons := al.Consensus()
	// Majority drops nothing: 9 survives in its own column.
	if !reflect.DeepEqual(cons, []int{1, 2, 9, 3, 4}) {
		t.Errorf("consensus = %v", cons)
	}
}

func TestStarEmpty(t *testing.T) {
	al := Star(nil, DefaultScoring())
	if al.Columns() != 0 {
		t.Error("empty star should have no columns")
	}
	if al.SPMDScore() != 0 {
		t.Error("empty SPMD score should be 0")
	}
}

func TestStarRowsAlignedEqually(t *testing.T) {
	f := func(seed uint64, nSeq, length uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 13))
		ns := int(nSeq)%6 + 1
		l := int(length) % 20
		seqs := make([][]int, ns)
		for i := range seqs {
			seqs[i] = make([]int, l)
			for j := range seqs[i] {
				seqs[i][j] = rng.IntN(4)
			}
		}
		al := Star(seqs, DefaultScoring())
		// Every row has the same width and strips back to its original.
		for i, row := range al.Rows {
			if len(row) != al.Columns() {
				return false
			}
			if !reflect.DeepEqual(strip(row), seqs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCoOccurrenceBimodal(t *testing.T) {
	// Half the tasks run symbol 1 where the other half runs symbol 2:
	// the SPMD signature of a rank-distributed bimodal region.
	seqs := [][]int{
		{1, 3}, {2, 3}, {1, 3}, {2, 3},
	}
	al := Star(seqs, DefaultScoring())
	co := al.CoOccurrence(4)
	if co[1][2] < 0.99 || co[2][1] < 0.99 {
		t.Errorf("bimodal pair co-occurrence = %v / %v, want ~1", co[1][2], co[2][1])
	}
	// Sequential symbols never share a column.
	if co[1][3] != 0 || co[3][1] != 0 {
		t.Errorf("sequential symbols co-occur: %v / %v", co[1][3], co[3][1])
	}
	// Symbol 3 appears on all rows of its column: self co-occurrence 1.
	if co[3][3] < 0.99 {
		t.Errorf("self co-occurrence = %v", co[3][3])
	}
}

func TestCoOccurrenceAlternating(t *testing.T) {
	// Time-alternating modes (all ranks in lockstep) never co-occur:
	// this is why HydroC's two behaviours stay separate regions.
	seqs := [][]int{
		{1, 2, 1, 2}, {1, 2, 1, 2}, {1, 2, 1, 2},
	}
	al := Star(seqs, DefaultScoring())
	co := al.CoOccurrence(3)
	if co[1][2] != 0 || co[2][1] != 0 {
		t.Errorf("alternating modes co-occur: %v / %v", co[1][2], co[2][1])
	}
}

func TestConsensusMajority(t *testing.T) {
	al := &Alignment{Rows: [][]int{
		{1, 5},
		{1, 6},
		{1, 6},
	}}
	if got := al.Consensus(); !reflect.DeepEqual(got, []int{1, 6}) {
		t.Errorf("consensus = %v", got)
	}
}

func TestConsensusSkipsAllGapColumns(t *testing.T) {
	al := &Alignment{Rows: [][]int{
		{1, Gap, 2},
		{1, Gap, 2},
	}}
	if got := al.Consensus(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("consensus = %v", got)
	}
}

func TestSPMDScorePartial(t *testing.T) {
	al := &Alignment{Rows: [][]int{
		{1, 2},
		{1, 3},
	}}
	// Column 0 agrees fully (1.0); column 1 splits (0.5).
	if got := al.SPMDScore(); got != 0.75 {
		t.Errorf("SPMD score = %v, want 0.75", got)
	}
}

func BenchmarkPairwise(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	a := make([]int, 200)
	c := make([]int, 200)
	for i := range a {
		a[i] = rng.IntN(12)
		c[i] = rng.IntN(12)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Pairwise(a, c, DefaultScoring())
	}
}

func BenchmarkStar32Tasks(b *testing.B) {
	rng := rand.New(rand.NewPCG(2, 1))
	base := make([]int, 96)
	for i := range base {
		base[i] = i % 12
	}
	seqs := make([][]int, 32)
	for i := range seqs {
		s := append([]int(nil), base...)
		// Small per-task perturbation.
		if rng.IntN(2) == 0 && len(s) > 0 {
			s[rng.IntN(len(s))] = rng.IntN(12)
		}
		seqs[i] = s
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Star(seqs, DefaultScoring())
	}
}
