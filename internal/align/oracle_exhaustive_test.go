package align

import (
	"math/rand/v2"
	"testing"

	"perftrack/internal/oracle"
)

// Differential check of the Needleman–Wunsch dynamic program against the
// exhaustive O(3^(n+m)) alignment search in internal/oracle. Sequences
// are kept to ≤6 symbols so the oracle stays fast; with the integer
// default scoring every optimal score is an exact float, so equality is
// exact. Beyond the score, the returned alignment itself is validated:
// stripping gaps must reproduce the inputs, and re-scoring the aligned
// pair must reproduce the reported score.

func randSeq(rng *rand.Rand, maxLen int) []int {
	n := rng.IntN(maxLen + 1)
	s := make([]int, n)
	for i := range s {
		s[i] = 1 + rng.IntN(4)
	}
	return s
}

func checkAlignment(t *testing.T, seed uint64, a, b []int, sc Scoring) {
	t.Helper()
	ra, rb, score := Pairwise(a, b, sc)
	want := oracle.AlignScore(a, b, sc.Match, sc.Mismatch, sc.GapOpen)
	if score != want {
		t.Fatalf("seed %d: Pairwise(%v, %v) score = %v, exhaustive optimum is %v",
			seed, a, b, score, want)
	}
	if len(ra) != len(rb) {
		t.Fatalf("seed %d: aligned lengths differ: %d vs %d", seed, len(ra), len(rb))
	}
	var strippedA, strippedB []int
	var rescore float64
	for i := range ra {
		switch {
		case ra[i] == Gap && rb[i] == Gap:
			t.Fatalf("seed %d: column %d is gap-gap", seed, i)
		case ra[i] == Gap || rb[i] == Gap:
			rescore += sc.GapOpen
		case ra[i] == rb[i]:
			rescore += sc.Match
		default:
			rescore += sc.Mismatch
		}
		if ra[i] != Gap {
			strippedA = append(strippedA, ra[i])
		}
		if rb[i] != Gap {
			strippedB = append(strippedB, rb[i])
		}
	}
	if !equalSeq(strippedA, a) || !equalSeq(strippedB, b) {
		t.Fatalf("seed %d: alignment does not reproduce inputs: %v/%v from %v/%v",
			seed, strippedA, strippedB, a, b)
	}
	if rescore != score {
		t.Fatalf("seed %d: alignment re-scores to %v, reported %v", seed, rescore, score)
	}
}

func equalSeq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestOracleAlignExhaustive(t *testing.T) {
	sc := DefaultScoring()
	for seed := uint64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewPCG(seed, 0xa119))
		checkAlignment(t, seed, randSeq(rng, 6), randSeq(rng, 6), sc)
	}
}

// TestOracleAlignExhaustiveAltScoring varies the (integer) scoring
// parameters so the dynamic program is not only right for the defaults.
func TestOracleAlignExhaustiveAltScoring(t *testing.T) {
	scorings := []Scoring{
		{Match: 1, Mismatch: -2, GapOpen: -3},
		{Match: 3, Mismatch: 0, GapOpen: -1},
		{Match: 2, Mismatch: -2, GapOpen: -2},
	}
	for si, sc := range scorings {
		for seed := uint64(0); seed < 10; seed++ {
			rng := rand.New(rand.NewPCG(seed, 0xa11a+uint64(si)))
			checkAlignment(t, seed, randSeq(rng, 5), randSeq(rng, 5), sc)
		}
	}
}

func FuzzAlignDifferential(f *testing.F) {
	for seed := uint64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		rng := rand.New(rand.NewPCG(seed, 0xa11b))
		checkAlignment(t, seed, randSeq(rng, 6), randSeq(rng, 6), DefaultScoring())
	})
}
