// Package mpisim simulates SPMD/MPI applications at the CPU-burst level.
//
// It is the substrate that replaces the paper's real workloads (WRF, CGPOP,
// NAS BT/FT, HydroC, MR-Genesis, Gromacs, Gadget, Quantum ESPRESSO) traced
// on real supercomputers. An application is a named sequence of phases
// executed every iteration by every rank, separated by synchronising
// communication — exactly the structure the paper's SPMD-simultaneity and
// execution-sequence evaluators rely on. Each phase declares its workload
// (instructions, memory intensity, working set) as a function of the
// execution scenario, plus optional per-rank/per-iteration variation hooks
// that model imbalance, bimodality, drift and code replication. The machine
// model (package machine) converts workloads into hardware counters and
// elapsed time, and the simulator assembles the result into a trace.
package mpisim

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"

	"perftrack/internal/machine"
	"perftrack/internal/metrics"
	"perftrack/internal/trace"
)

// Scenario fixes every knob of one experiment: it is the paper's "unique
// execution scenario, which directly influences the application behaviour".
type Scenario struct {
	// Label names the experiment within a study ("128-tasks", "Class B").
	Label string
	// Ranks is the number of MPI processes.
	Ranks int
	// TasksPerNode caps processes per node; 0 packs nodes to capacity.
	TasksPerNode int
	// Arch and Compiler select the platform model.
	Arch     machine.Arch
	Compiler machine.Compiler
	// Iterations is the number of main-loop iterations to simulate.
	Iterations int
	// ProblemScale multiplies the problem size relative to the app's
	// reference input (NAS classes, mesh refinement, ...).
	ProblemScale float64
	// BlockSize is the spatial blocking factor for apps that use one
	// (HydroC); 0 when not applicable.
	BlockSize int
	// Seed drives all stochastic variation deterministically.
	Seed uint64
}

// normalised returns a copy with defaults substituted.
func (s Scenario) normalised() Scenario {
	if s.Iterations <= 0 {
		s.Iterations = 10
	}
	if s.ProblemScale <= 0 {
		s.ProblemScale = 1
	}
	if s.TasksPerNode <= 0 || s.TasksPerNode > s.Arch.CoresPerNode() {
		s.TasksPerNode = s.Arch.CoresPerNode()
	}
	return s
}

// Validate reports a descriptive error for unusable scenarios.
func (s Scenario) Validate() error {
	if s.Ranks <= 0 {
		return fmt.Errorf("mpisim: scenario %q: ranks must be positive", s.Label)
	}
	if err := s.Arch.Validate(); err != nil {
		return fmt.Errorf("mpisim: scenario %q: %w", s.Label, err)
	}
	if err := s.Compiler.Validate(); err != nil {
		return fmt.Errorf("mpisim: scenario %q: %w", s.Label, err)
	}
	return nil
}

// Variation is what a phase's Vary hook may change for one particular
// (rank, iteration) instance. Zero-valued fields mean "no change".
type Variation struct {
	// InstrMul multiplies the phase instruction count (imbalance,
	// replication). 0 means 1.
	InstrMul float64
	// IPCMul multiplies the phase's intrinsic IPC factor. 0 means 1.
	IPCMul float64
	// WSMul multiplies the working set. 0 means 1.
	WSMul float64
	// MemFracMul multiplies the phase's memory-access fraction (capped at
	// 1). 0 means 1.
	MemFracMul float64
	// Stack overrides the call-stack reference (distinct code path taken).
	Stack *trace.CallstackRef
	// Skip drops the burst entirely (conditional phase not executed).
	Skip bool
	// PhaseTag refines the ground-truth annotation: the burst records
	// phase index + 100*PhaseTag. Use it for variations that constitute a
	// genuinely distinct behaviour the tracker is expected to keep as its
	// own region (e.g. time-alternating modes); leave it zero for
	// variations of one behaviour (imbalance, rank-distributed modes the
	// SPMD evaluator should group).
	PhaseTag int
}

func (v Variation) instrMul() float64 {
	if v.InstrMul == 0 {
		return 1
	}
	return v.InstrMul
}

func (v Variation) ipcMul() float64 {
	if v.IPCMul == 0 {
		return 1
	}
	return v.IPCMul
}

func (v Variation) wsMul() float64 {
	if v.WSMul == 0 {
		return 1
	}
	return v.WSMul
}

func (v Variation) memFracMul() float64 {
	if v.MemFracMul == 0 {
		return 1
	}
	return v.MemFracMul
}

// PhaseSpec describes one computing phase of the application's main loop.
type PhaseSpec struct {
	// Name labels the phase for diagnostics.
	Name string
	// Stack is the call-stack reference of the code region (the paper's
	// callstack evaluator matches through these).
	Stack trace.CallstackRef
	// Instr returns the per-rank instruction count for the scenario.
	Instr func(s Scenario) float64
	// MemFrac is the fraction of instructions accessing memory.
	MemFrac float64
	// WorkingSet returns the per-rank data footprint in bytes. nil means a
	// small (L1-resident) footprint.
	WorkingSet func(s Scenario) float64
	// IPCFactor scales architectural base IPC for this region's code
	// quality. 0 means 1.
	IPCFactor float64
	// MLP is the phase's miss-level parallelism (see machine.Workload).
	MLP float64
	// L1Floor/L1Ceil/L2Floor/L2Ceil override the machine model's default
	// miss-rate bounds for this phase's access profile.
	L1Floor, L1Ceil float64
	L2Floor, L2Ceil float64
	// Vary customises individual instances (imbalance, bimodality, drift).
	// It may be nil.
	Vary func(s Scenario, rank, iter int, rng *rand.Rand) Variation
	// NoiseInstr and NoiseIPC are relative Gaussian jitters applied to
	// every instance; negative disables, 0 selects the default (1%).
	NoiseInstr float64
	NoiseIPC   float64
	// CommNS is the synchronisation/communication gap after the phase in
	// nanoseconds; 0 selects a small default.
	CommNS float64
	// Repeat is the number of times the phase executes per iteration
	// (communication-heavy kernels often run several times per step).
	// 0 means once.
	Repeat int
}

func (p PhaseSpec) repeat() int {
	if p.Repeat <= 0 {
		return 1
	}
	return p.Repeat
}

func (p PhaseSpec) noiseInstr() float64 { return defaultNoise(p.NoiseInstr) }
func (p PhaseSpec) noiseIPC() float64   { return defaultNoise(p.NoiseIPC) }

func defaultNoise(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v == 0:
		return 0.01
	default:
		return v
	}
}

// AppSpec is a complete synthetic application model.
type AppSpec struct {
	// Name is the application name recorded in trace metadata.
	Name string
	// Phases execute in order once per iteration on every rank.
	Phases []PhaseSpec
	// NominalInvocations scales per-burst durations up to whole-run
	// region durations in reports (the simulator runs far fewer
	// iterations than the real codes; see EXPERIMENTS.md). 0 means
	// "report simulated durations as-is".
	NominalInvocations int
}

// Validate reports the first structural problem in the spec.
func (a AppSpec) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("mpisim: app without name")
	}
	if len(a.Phases) == 0 {
		return fmt.Errorf("mpisim: app %s: no phases", a.Name)
	}
	for i, p := range a.Phases {
		if p.Instr == nil {
			return fmt.Errorf("mpisim: app %s: phase %d (%s): missing Instr model", a.Name, i, p.Name)
		}
		if p.MemFrac < 0 || p.MemFrac > 1 {
			return fmt.Errorf("mpisim: app %s: phase %d (%s): MemFrac outside [0,1]", a.Name, i, p.Name)
		}
	}
	return nil
}

// phaseRNG derives a deterministic generator for one burst instance so the
// simulation is independent of evaluation order.
func phaseRNG(seed uint64, phase, rank, iter int) *rand.Rand {
	h := seed
	for _, v := range [...]uint64{uint64(phase) + 1, uint64(rank) + 1, uint64(iter) + 1} {
		// SplitMix64 step; cheap and well distributed.
		h += v * 0x9E3779B97F4A7C15
		h ^= h >> 30
		h *= 0xBF58476D1CE4E5B9
		h ^= h >> 27
		h *= 0x94D049BB133111EB
		h ^= h >> 31
	}
	return rand.New(rand.NewPCG(seed, h))
}

// gaussMul returns a multiplicative jitter exp(N(0, sigma)) ≈ 1±sigma,
// always positive.
func gaussMul(rng *rand.Rand, sigma float64) float64 {
	if sigma <= 0 {
		return 1
	}
	return math.Exp(rng.NormFloat64() * sigma)
}

// Simulate runs the application under the scenario and returns its trace.
// Bursts of the same phase start simultaneously on every rank (barrier
// semantics after each phase), so the SPMD structure the paper's second
// evaluator exploits is present by construction; per-rank duration
// variation then skews subsequent phases exactly as real imbalance would.
func Simulate(app AppSpec, sc Scenario) (*trace.Trace, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	sc = sc.normalised()

	t := &trace.Trace{
		Meta: trace.Metadata{
			App:          app.Name,
			Label:        sc.Label,
			Ranks:        sc.Ranks,
			TasksPerNode: sc.TasksPerNode,
			Machine:      sc.Arch.Name,
			Compiler:     sc.Compiler.Name,
			Params: map[string]string{
				"problemScale": fmt.Sprintf("%g", sc.ProblemScale),
				"blockSize":    fmt.Sprintf("%d", sc.BlockSize),
				"iterations":   fmt.Sprintf("%d", sc.Iterations),
				"seed":         fmt.Sprintf("%d", sc.Seed),
			},
		},
	}

	// Node packing: rank r lives on node r/TasksPerNode; every node except
	// possibly the last holds TasksPerNode processes.
	procsOnNode := func(rank int) int {
		node := rank / sc.TasksPerNode
		first := node * sc.TasksPerNode
		last := first + sc.TasksPerNode
		if last > sc.Ranks {
			last = sc.Ranks
		}
		return last - first
	}

	clock := make([]float64, sc.Ranks) // per-rank time in ns
	for iter := 0; iter < sc.Iterations; iter++ {
		for pi, ph := range app.Phases {
			for rep := 0; rep < ph.repeat(); rep++ {
				simulatePhase(app, sc, t, clock, pi, iter*ph.repeat()+rep, procsOnNode)
			}
		}
	}
	t.SortByTaskTime()
	return t, nil
}

// simulatePhase executes one instance of phase pi on every rank, appending
// the bursts to t and advancing the per-rank clocks through the closing
// barrier.
func simulatePhase(app AppSpec, sc Scenario, t *trace.Trace, clock []float64, pi, iter int, procsOnNode func(int) int) {
	ph := app.Phases[pi]
	var maxEnd float64
	{
		for rank := 0; rank < sc.Ranks; rank++ {
			rng := phaseRNG(sc.Seed, pi, rank, iter)
			var v Variation
			if ph.Vary != nil {
				v = ph.Vary(sc, rank, iter, rng)
			}
			if v.Skip {
				if clock[rank] > maxEnd {
					maxEnd = clock[rank]
				}
				continue
			}
			w := machine.Workload{
				Instructions: ph.Instr(sc) * v.instrMul() * gaussMul(rng, ph.noiseInstr()),
				MemFrac:      min(1, ph.MemFrac*v.memFracMul()),
				IPCFactor:    nonZero(ph.IPCFactor) * v.ipcMul() * gaussMul(rng, ph.noiseIPC()),
				MLP:          ph.MLP,
				L1Floor:      ph.L1Floor,
				L1Ceil:       ph.L1Ceil,
				L2Floor:      ph.L2Floor,
				L2Ceil:       ph.L2Ceil,
			}
			if ph.WorkingSet != nil {
				w.WorkingSetBytes = ph.WorkingSet(sc) * v.wsMul()
			} else {
				w.WorkingSetBytes = 16 * 1024 // comfortably L1-resident
			}
			cost := machine.Execute(w, sc.Arch, sc.Compiler, machine.Sharing{ProcsPerNode: procsOnNode(rank)})

			stack := ph.Stack
			if v.Stack != nil {
				stack = *v.Stack
			}
			b := trace.Burst{
				Task:       rank,
				StartNS:    int64(clock[rank]),
				DurationNS: int64(cost.DurationNS),
				Stack:      stack,
				Phase:      pi + 1 + 100*v.PhaseTag,
			}
			b.Counters[metrics.CtrInstructions] = cost.Instructions
			b.Counters[metrics.CtrCycles] = cost.Cycles
			b.Counters[metrics.CtrL1DMisses] = cost.L1DMisses
			b.Counters[metrics.CtrL2DMisses] = cost.L2DMisses
			b.Counters[metrics.CtrTLBMisses] = cost.TLBMisses
			b.Counters[metrics.CtrMemAccesses] = cost.MemAccesses
			t.Bursts = append(t.Bursts, b)

			clock[rank] += cost.DurationNS
			if clock[rank] > maxEnd {
				maxEnd = clock[rank]
			}
		}
	}
	// Barrier + communication: everyone resumes together.
	comm := ph.CommNS
	if comm <= 0 {
		comm = 20_000 // 20 microseconds
	}
	for rank := range clock {
		clock[rank] = maxEnd + comm
	}
}

func nonZero(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}

// Run pairs an application with one scenario.
type Run struct {
	App      AppSpec
	Scenario Scenario
}

// SimulateSeries simulates a list of runs in order, returning one trace per
// run. It fails fast on the first error.
func SimulateSeries(runs []Run) ([]*trace.Trace, error) {
	return SimulateSeriesContext(context.Background(), runs)
}

// SimulateSeriesContext is SimulateSeries with cancellation between runs,
// so a cancelled or timed-out caller does not simulate experiments whose
// traces nobody will analyse.
func SimulateSeriesContext(ctx context.Context, runs []Run) ([]*trace.Trace, error) {
	out := make([]*trace.Trace, 0, len(runs))
	for i, r := range runs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t, err := Simulate(r.App, r.Scenario)
		if err != nil {
			return nil, fmt.Errorf("mpisim: run %d (%s): %w", i, r.Scenario.Label, err)
		}
		out = append(out, t)
	}
	return out, nil
}
