package mpisim

import (
	"math"
	"math/rand/v2"
	"reflect"
	"testing"

	"perftrack/internal/machine"
	"perftrack/internal/metrics"
	"perftrack/internal/trace"
)

func testApp() AppSpec {
	return AppSpec{
		Name: "test",
		Phases: []PhaseSpec{
			{
				Name:      "compute",
				Stack:     trace.CallstackRef{Function: "compute", File: "a.c", Line: 10},
				Instr:     func(Scenario) float64 { return 1e7 },
				IPCFactor: 0.5,
				MemFrac:   0.05,
			},
			{
				Name:      "reduce",
				Stack:     trace.CallstackRef{Function: "reduce", File: "a.c", Line: 20},
				Instr:     func(Scenario) float64 { return 4e6 },
				IPCFactor: 0.8,
				MemFrac:   0.05,
			},
		},
	}
}

func testScenario() Scenario {
	return Scenario{
		Label:      "t",
		Ranks:      4,
		Arch:       machine.MareNostrum(),
		Compiler:   machine.GFortran(),
		Iterations: 3,
		Seed:       99,
	}
}

func TestSimulateBurstCount(t *testing.T) {
	tr, err := Simulate(testApp(), testScenario())
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * 3 * 2 // ranks x iterations x phases
	if len(tr.Bursts) != want {
		t.Errorf("bursts = %d, want %d", len(tr.Bursts), want)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("invalid trace: %v", err)
	}
}

func TestSimulateMetadata(t *testing.T) {
	sc := testScenario()
	sc.TasksPerNode = 2
	sc.ProblemScale = 2.5
	tr, err := Simulate(testApp(), sc)
	if err != nil {
		t.Fatal(err)
	}
	m := tr.Meta
	if m.App != "test" || m.Label != "t" || m.Ranks != 4 || m.TasksPerNode != 2 {
		t.Errorf("meta = %+v", m)
	}
	if m.Machine != "MareNostrum" || m.Compiler != "gfortran" {
		t.Errorf("meta machine/compiler = %+v", m)
	}
	if m.Params["problemScale"] != "2.5" {
		t.Errorf("params = %v", m.Params)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a, err := Simulate(testApp(), testScenario())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(testApp(), testScenario())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Bursts, b.Bursts) {
		t.Error("same seed produced different traces")
	}
	sc := testScenario()
	sc.Seed++
	c, err := Simulate(testApp(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Bursts, c.Bursts) {
		t.Error("different seed produced identical traces")
	}
}

func TestSimulateSPMDBarriers(t *testing.T) {
	// All ranks start each phase instance at the same timestamp (barrier
	// semantics): the structure the SPMD evaluator relies on.
	tr, err := Simulate(testApp(), testScenario())
	if err != nil {
		t.Fatal(err)
	}
	starts := map[int64]int{} // start time -> #bursts starting there
	for _, b := range tr.Bursts {
		starts[b.StartNS]++
	}
	for ts, n := range starts {
		if n != 4 {
			t.Errorf("%d bursts start at %d, want one per rank (4)", n, ts)
		}
	}
}

func TestSimulatePhaseAnnotations(t *testing.T) {
	tr, err := Simulate(testApp(), testScenario())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for _, b := range tr.Bursts {
		seen[b.Phase]++
	}
	if seen[1] != 12 || seen[2] != 12 {
		t.Errorf("phase counts = %v", seen)
	}
}

func TestSimulatePerTaskChronology(t *testing.T) {
	tr, err := Simulate(testApp(), testScenario())
	if err != nil {
		t.Fatal(err)
	}
	for task, seq := range tr.PerTaskSequences() {
		prevEnd := int64(-1)
		for _, bi := range seq {
			b := tr.Bursts[bi]
			if b.StartNS < prevEnd {
				t.Fatalf("task %d bursts overlap", task)
			}
			prevEnd = b.EndNS()
		}
	}
}

func TestSimulateNoiseDisabled(t *testing.T) {
	app := testApp()
	app.Phases[0].NoiseInstr = -1
	app.Phases[0].NoiseIPC = -1
	tr, err := Simulate(app, testScenario())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range tr.Bursts {
		if b.Phase != 1 {
			continue
		}
		if b.Counters[metrics.CtrInstructions] != 1e7 {
			t.Fatalf("noise-free instructions = %v, want 1e7", b.Counters[metrics.CtrInstructions])
		}
	}
}

func TestSimulateNoiseEnabled(t *testing.T) {
	tr, err := Simulate(testApp(), testScenario())
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[float64]bool{}
	for _, b := range tr.Bursts {
		if b.Phase == 1 {
			distinct[b.Counters[metrics.CtrInstructions]] = true
		}
	}
	if len(distinct) < 2 {
		t.Error("default noise produced identical instruction counts")
	}
}

func TestVariationHooks(t *testing.T) {
	app := testApp()
	override := trace.CallstackRef{Function: "alt", File: "b.c", Line: 99}
	app.Phases[0].NoiseInstr = -1
	app.Phases[0].NoiseIPC = -1
	app.Phases[0].Vary = func(_ Scenario, rank, _ int, _ *rand.Rand) Variation {
		switch rank {
		case 0:
			return Variation{Skip: true}
		case 1:
			return Variation{InstrMul: 2, Stack: &override}
		default:
			return Variation{}
		}
	}
	tr, err := Simulate(app, testScenario())
	if err != nil {
		t.Fatal(err)
	}
	var rank0, rank1 int
	for _, b := range tr.Bursts {
		if b.Phase != 1 {
			continue
		}
		switch b.Task {
		case 0:
			rank0++
		case 1:
			rank1++
			if b.Counters[metrics.CtrInstructions] != 2e7 {
				t.Errorf("InstrMul ignored: %v", b.Counters[metrics.CtrInstructions])
			}
			if b.Stack != override {
				t.Errorf("stack override ignored: %v", b.Stack)
			}
		}
	}
	if rank0 != 0 {
		t.Errorf("Skip ignored: rank 0 has %d phase-1 bursts", rank0)
	}
	if rank1 != 3 {
		t.Errorf("rank 1 phase-1 bursts = %d, want 3", rank1)
	}
}

func TestRepeat(t *testing.T) {
	app := testApp()
	app.Phases[0].Repeat = 3
	tr, err := Simulate(app, testScenario())
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, b := range tr.Bursts {
		if b.Phase == 1 {
			count++
		}
	}
	if count != 4*3*3 { // ranks x iterations x repeat
		t.Errorf("repeated phase bursts = %d, want 36", count)
	}
}

func TestValidationErrors(t *testing.T) {
	sc := testScenario()
	if _, err := Simulate(AppSpec{}, sc); err == nil {
		t.Error("unnamed app accepted")
	}
	if _, err := Simulate(AppSpec{Name: "x"}, sc); err == nil {
		t.Error("phase-less app accepted")
	}
	app := testApp()
	app.Phases[0].Instr = nil
	if _, err := Simulate(app, sc); err == nil {
		t.Error("missing Instr accepted")
	}
	app = testApp()
	app.Phases[0].MemFrac = 1.5
	if _, err := Simulate(app, sc); err == nil {
		t.Error("MemFrac > 1 accepted")
	}
	bad := sc
	bad.Ranks = 0
	if _, err := Simulate(testApp(), bad); err == nil {
		t.Error("zero ranks accepted")
	}
	bad = sc
	bad.Arch = machine.Arch{}
	if _, err := Simulate(testApp(), bad); err == nil {
		t.Error("invalid arch accepted")
	}
}

func TestScenarioDefaults(t *testing.T) {
	sc := Scenario{Ranks: 2, Arch: machine.MareNostrum(), Compiler: machine.GFortran()}
	n := sc.normalised()
	if n.Iterations != 10 || n.ProblemScale != 1 {
		t.Errorf("defaults = %+v", n)
	}
	if n.TasksPerNode != 4 {
		t.Errorf("TasksPerNode default = %d, want node capacity 4", n.TasksPerNode)
	}
	// Oversized TasksPerNode is clamped to the node.
	sc.TasksPerNode = 99
	if got := sc.normalised().TasksPerNode; got != 4 {
		t.Errorf("clamped TasksPerNode = %d", got)
	}
}

func TestNodePackingContention(t *testing.T) {
	// Packing the same ranks onto fewer nodes must not speed anything up.
	app := AppSpec{
		Name: "mem",
		Phases: []PhaseSpec{{
			Name:       "stream",
			Stack:      trace.CallstackRef{Function: "s", File: "s.c", Line: 1},
			Instr:      func(Scenario) float64 { return 1e7 },
			MemFrac:    0.3,
			WorkingSet: func(Scenario) float64 { return 4 * 1024 * 1024 },
			IPCFactor:  0.6,
			L2Floor:    0.3,
			MLP:        10,
			NoiseInstr: -1,
			NoiseIPC:   -1,
		}},
	}
	mean := func(tpn int) float64 {
		sc := Scenario{
			Label: "x", Ranks: 12, TasksPerNode: tpn,
			Arch: machine.MinoTauro(), Compiler: machine.GFortran(),
			Iterations: 2, Seed: 5,
		}
		tr, err := Simulate(app, sc)
		if err != nil {
			t.Fatal(err)
		}
		var sumI, sumC float64
		for _, b := range tr.Bursts {
			sumI += b.Counters[metrics.CtrInstructions]
			sumC += b.Counters[metrics.CtrCycles]
		}
		return sumI / sumC
	}
	spread := mean(1)
	packed := mean(12)
	if packed >= spread {
		t.Errorf("packing did not degrade IPC: %v vs %v", packed, spread)
	}
}

func TestGaussMul(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	if gaussMul(rng, 0) != 1 {
		t.Error("zero sigma should be exactly 1")
	}
	v := gaussMul(rng, 0.1)
	if v <= 0 || math.IsNaN(v) {
		t.Errorf("gaussMul = %v", v)
	}
}

func TestPhaseRNGIndependence(t *testing.T) {
	// Different (phase, rank, iter) triples get independent, stable
	// streams.
	a1 := phaseRNG(1, 0, 0, 0).Float64()
	a2 := phaseRNG(1, 0, 0, 0).Float64()
	if a1 != a2 {
		t.Error("phaseRNG not stable")
	}
	b := phaseRNG(1, 0, 1, 0).Float64()
	if a1 == b {
		t.Error("phaseRNG identical across ranks")
	}
}

func TestSimulateSeries(t *testing.T) {
	runs := []Run{
		{App: testApp(), Scenario: testScenario()},
		{App: testApp(), Scenario: testScenario()},
	}
	traces, err := SimulateSeries(runs)
	if err != nil || len(traces) != 2 {
		t.Fatalf("SimulateSeries = %v, %v", traces, err)
	}
	bad := runs
	bad[1].Scenario.Ranks = 0
	if _, err := SimulateSeries(bad); err == nil {
		t.Error("SimulateSeries accepted a bad run")
	}
}

func BenchmarkSimulate(b *testing.B) {
	app := testApp()
	sc := testScenario()
	sc.Ranks = 64
	sc.Iterations = 10
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(app, sc); err != nil {
			b.Fatal(err)
		}
	}
}
