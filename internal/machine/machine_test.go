package machine

import (
	"math"
	"testing"
	"testing/quick"
)

func TestArchValidate(t *testing.T) {
	for _, a := range []Arch{MareNostrum(), MinoTauro()} {
		if err := a.Validate(); err != nil {
			t.Errorf("%s invalid: %v", a.Name, err)
		}
	}
	bad := []func(*Arch){
		func(a *Arch) { a.Name = "" },
		func(a *Arch) { a.FreqGHz = 0 },
		func(a *Arch) { a.SocketsPerNode = 0 },
		func(a *Arch) { a.CoresPerSocket = -1 },
		func(a *Arch) { a.L1KB = 0 },
		func(a *Arch) { a.L2KB = 0 },
		func(a *Arch) { a.LineBytes = 0 },
		func(a *Arch) { a.BaseIPC = 0 },
		func(a *Arch) { a.MaxUtilisation = 0 },
		func(a *Arch) { a.MaxUtilisation = 1 },
	}
	for i, mutate := range bad {
		a := MareNostrum()
		mutate(&a)
		if err := a.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestCompilerValidate(t *testing.T) {
	for _, c := range []Compiler{GFortran(), XLF(), IFort()} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s invalid: %v", c.Name, err)
		}
	}
	if err := (Compiler{Name: "x", InstrFactor: 0, IPCFactor: 1}).Validate(); err == nil {
		t.Error("zero InstrFactor accepted")
	}
	if err := (Compiler{InstrFactor: 1, IPCFactor: 1}).Validate(); err == nil {
		t.Error("unnamed compiler accepted")
	}
}

func TestCoresPerNode(t *testing.T) {
	if got := MareNostrum().CoresPerNode(); got != 4 {
		t.Errorf("MareNostrum cores/node = %d, want 4", got)
	}
	if got := MinoTauro().CoresPerNode(); got != 12 {
		t.Errorf("MinoTauro cores/node = %d, want 12", got)
	}
}

func TestByNameLookups(t *testing.T) {
	if a, ok := ArchByName("MareNostrum"); !ok || a.Name != "MareNostrum" {
		t.Error("ArchByName MareNostrum failed")
	}
	if _, ok := ArchByName("Cray"); ok {
		t.Error("unknown arch accepted")
	}
	if c, ok := CompilerByName("xlf"); !ok || c.Name != "xlf" {
		t.Error("CompilerByName xlf failed")
	}
	if _, ok := CompilerByName("pgcc"); ok {
		t.Error("unknown compiler accepted")
	}
}

func TestMissRate(t *testing.T) {
	// Below capacity: the floor.
	if got := missRate(1024, 32*1024, 0.01, 0.5); got != 0.01 {
		t.Errorf("in-cache rate = %v", got)
	}
	// At exactly capacity: still the floor.
	if got := missRate(32*1024, 32*1024, 0.01, 0.5); got != 0.01 {
		t.Errorf("boundary rate = %v", got)
	}
	// Far above capacity: approaches the ceiling.
	if got := missRate(32*1024*1024, 32*1024, 0.01, 0.5); got < 0.48 {
		t.Errorf("streaming rate = %v", got)
	}
	// Degenerate cache.
	if got := missRate(1024, 0, 0.01, 0.5); got != 0.5 {
		t.Errorf("zero-capacity rate = %v", got)
	}
}

func TestMissRateMonotonicProperty(t *testing.T) {
	f := func(ws1, ws2 float64) bool {
		ws1, ws2 = math.Abs(ws1), math.Abs(ws2)
		if math.IsNaN(ws1) || math.IsNaN(ws2) || math.IsInf(ws1, 0) || math.IsInf(ws2, 0) {
			return true
		}
		if ws1 > ws2 {
			ws1, ws2 = ws2, ws1
		}
		const cap, floor, ceil = 32 * 1024, 0.01, 0.5
		r1 := missRate(ws1, cap, floor, ceil)
		r2 := missRate(ws2, cap, floor, ceil)
		return r1 <= r2+1e-12 && r1 >= floor-1e-12 && r2 <= ceil+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func baseWorkload() Workload {
	return Workload{
		Instructions:    1e7,
		MemFrac:         0.1,
		WorkingSetBytes: 16 * 1024,
		IPCFactor:       0.5,
	}
}

func TestExecuteBasics(t *testing.T) {
	a := MareNostrum()
	c := GFortran()
	cost := Execute(baseWorkload(), a, c, Sharing{ProcsPerNode: 1})
	if cost.Instructions != 1e7 {
		t.Errorf("instructions = %v", cost.Instructions)
	}
	if cost.Cycles <= 0 || cost.DurationNS <= 0 {
		t.Errorf("non-positive cost: %+v", cost)
	}
	// IPC = instructions/cycles by construction.
	if math.Abs(cost.IPC-cost.Instructions/cost.Cycles) > 1e-9 {
		t.Errorf("IPC inconsistent: %+v", cost)
	}
	// duration = cycles / freq (GHz == cycles per ns).
	if math.Abs(cost.DurationNS-cost.Cycles/a.FreqGHz) > 1e-6 {
		t.Errorf("duration inconsistent: %+v", cost)
	}
	// L1-resident workload: IPC close to the achievable peak.
	peak := a.BaseIPC * 0.5
	if cost.IPC > peak || cost.IPC < peak*0.8 {
		t.Errorf("IPC = %v, want near peak %v", cost.IPC, peak)
	}
}

func TestExecuteDefaults(t *testing.T) {
	w := baseWorkload()
	w.IPCFactor = 0 // means 1
	cost := Execute(w, MareNostrum(), GFortran(), Sharing{})
	peak := MareNostrum().BaseIPC
	if cost.IPC > peak || cost.IPC < peak*0.8 {
		t.Errorf("default IPCFactor: IPC = %v, want near %v", cost.IPC, peak)
	}
}

func TestExecuteCompilerTradeoff(t *testing.T) {
	// Matched instruction and IPC factors leave the duration unchanged —
	// the paper's CGPOP observation (Table 3).
	a := MareNostrum()
	w := baseWorkload()
	ref := Execute(w, a, GFortran(), Sharing{ProcsPerNode: 1})
	matched := Compiler{Name: "magic", InstrFactor: 0.64, IPCFactor: 0.64}
	got := Execute(w, a, matched, Sharing{ProcsPerNode: 1})
	if math.Abs(got.Instructions-0.64*ref.Instructions) > 1 {
		t.Errorf("instructions not scaled: %v vs %v", got.Instructions, ref.Instructions)
	}
	relDur := math.Abs(got.DurationNS-ref.DurationNS) / ref.DurationNS
	if relDur > 0.02 {
		t.Errorf("duration moved %.2f%% with matched factors", 100*relDur)
	}
}

func TestExecuteCacheOverflowDegradesIPC(t *testing.T) {
	a := MareNostrum()
	small := baseWorkload()
	big := small
	big.WorkingSetBytes = 64 * 1024 * 1024
	ipcSmall := Execute(small, a, GFortran(), Sharing{ProcsPerNode: 1}).IPC
	ipcBig := Execute(big, a, GFortran(), Sharing{ProcsPerNode: 1}).IPC
	if ipcBig >= ipcSmall {
		t.Errorf("cache overflow did not hurt: %v >= %v", ipcBig, ipcSmall)
	}
}

func TestExecuteContentionMonotonic(t *testing.T) {
	// More co-located processes can only slow a memory-bound workload.
	a := MinoTauro()
	w := Workload{
		Instructions:    1e7,
		MemFrac:         0.3,
		WorkingSetBytes: 4 * 1024 * 1024,
		IPCFactor:       0.6,
		L2Floor:         0.3,
		MLP:             10,
	}
	prev := math.Inf(1)
	for procs := 1; procs <= a.CoresPerNode(); procs++ {
		ipc := Execute(w, a, GFortran(), Sharing{ProcsPerNode: procs}).IPC
		if ipc > prev+1e-9 {
			t.Errorf("IPC rose when adding processes: %v at %d procs (prev %v)", ipc, procs, prev)
		}
		prev = ipc
	}
	// And a full node must be measurably slower than an empty one.
	alone := Execute(w, a, GFortran(), Sharing{ProcsPerNode: 1}).IPC
	full := Execute(w, a, GFortran(), Sharing{ProcsPerNode: 12}).IPC
	if (alone-full)/alone < 0.02 {
		t.Errorf("contention too weak: %v -> %v", alone, full)
	}
}

func TestExecuteSharedL2Division(t *testing.T) {
	// With a shared last-level cache, co-located processes shrink the
	// effective capacity and raise the miss count.
	a := MinoTauro()
	w := Workload{
		Instructions:    1e7,
		MemFrac:         0.3,
		WorkingSetBytes: 8 * 1024 * 1024, // fits 12 MB alone, not 12/6 MB
		IPCFactor:       0.6,
	}
	alone := Execute(w, a, GFortran(), Sharing{ProcsPerNode: 1})
	full := Execute(w, a, GFortran(), Sharing{ProcsPerNode: 12})
	if full.L2DMisses <= alone.L2DMisses {
		t.Errorf("shared L2 misses did not grow: %v -> %v", alone.L2DMisses, full.L2DMisses)
	}
}

func TestExecutePrivateL2NoDivision(t *testing.T) {
	a := MareNostrum() // private L2
	w := Workload{
		Instructions:    1e7,
		MemFrac:         0.3,
		WorkingSetBytes: 512 * 1024, // fits the 1 MB private L2
		IPCFactor:       0.6,
	}
	alone := Execute(w, a, GFortran(), Sharing{ProcsPerNode: 1})
	full := Execute(w, a, GFortran(), Sharing{ProcsPerNode: 4})
	if full.L2DMisses != alone.L2DMisses {
		t.Errorf("private L2 miss count changed with sharing: %v -> %v", alone.L2DMisses, full.L2DMisses)
	}
}

func TestExecuteMLPReducesStalls(t *testing.T) {
	a := MareNostrum()
	w := Workload{
		Instructions:    1e7,
		MemFrac:         0.2,
		WorkingSetBytes: 16 * 1024 * 1024,
		IPCFactor:       0.8,
	}
	serial := Execute(w, a, GFortran(), Sharing{ProcsPerNode: 1})
	w.MLP = 8
	parallelMisses := Execute(w, a, GFortran(), Sharing{ProcsPerNode: 1})
	if parallelMisses.Cycles >= serial.Cycles {
		t.Errorf("MLP did not reduce cycles: %v vs %v", parallelMisses.Cycles, serial.Cycles)
	}
	// Raw miss counts are unchanged — MLP only overlaps the latency.
	if parallelMisses.L2DMisses != serial.L2DMisses {
		t.Error("MLP changed the miss count")
	}
}

func TestExecuteFloorCeilOverrides(t *testing.T) {
	a := MareNostrum()
	w := Workload{
		Instructions:    1e7,
		MemFrac:         0.3,
		WorkingSetBytes: 16 * 1024, // L1 resident
		IPCFactor:       1,
		L1Floor:         0.09,
	}
	cost := Execute(w, a, GFortran(), Sharing{ProcsPerNode: 1})
	want := 1e7 * 0.3 * 0.09
	if math.Abs(cost.L1DMisses-want) > 1 {
		t.Errorf("L1 floor override: misses = %v, want %v", cost.L1DMisses, want)
	}
}

func TestExecuteZeroMemWorkload(t *testing.T) {
	a := MareNostrum()
	w := Workload{Instructions: 1e6, MemFrac: 0, IPCFactor: 1}
	cost := Execute(w, a, GFortran(), Sharing{ProcsPerNode: 1})
	if cost.L1DMisses != 0 || cost.L2DMisses != 0 || cost.TLBMisses != 0 {
		t.Errorf("zero-mem workload produced misses: %+v", cost)
	}
	if math.Abs(cost.IPC-a.BaseIPC) > 1e-9 {
		t.Errorf("zero-mem IPC = %v, want %v", cost.IPC, a.BaseIPC)
	}
}

func TestExecuteIPCNeverExceedsPeak(t *testing.T) {
	f := func(instr, memFrac, ws, ipcf float64, procs uint8) bool {
		instr = 1 + math.Abs(math.Mod(instr, 1e9))
		memFrac = math.Abs(math.Mod(memFrac, 1))
		ws = math.Abs(math.Mod(ws, 1e9))
		ipcf = 0.1 + math.Abs(math.Mod(ipcf, 2))
		p := 1 + int(procs%12)
		if math.IsNaN(instr) || math.IsNaN(memFrac) || math.IsNaN(ws) || math.IsNaN(ipcf) {
			return true
		}
		w := Workload{Instructions: instr, MemFrac: memFrac, WorkingSetBytes: ws, IPCFactor: ipcf}
		a := MinoTauro()
		cost := Execute(w, a, GFortran(), Sharing{ProcsPerNode: p})
		peak := a.BaseIPC * ipcf
		return cost.IPC <= peak*(1+1e-9) && cost.IPC > 0 && !math.IsNaN(cost.DurationNS)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
