// Package machine provides the parametric hardware and toolchain model that
// substitutes for the supercomputers of the paper's evaluation
// (MareNostrum's IBM PowerPC 970MP nodes and MinoTauro's Intel Xeon E5649
// nodes) and for the gfortran/xlf/ifort compilers.
//
// The tracking technique itself only consumes per-burst metric vectors, so
// a mechanistic model that converts a workload description (instructions,
// memory intensity, working set) into counters and elapsed cycles is enough
// to reproduce the performance *shapes* the paper reports: IPC loss driven
// by cache misses as the problem grows (NAS BT, Fig. 10), a bandwidth
// contention knee as nodes fill up (MR-Genesis, Fig. 11), a cache-capacity
// cliff when the working set overflows L1 (HydroC, Fig. 12), and the
// instructions-versus-IPC trade of specialised compilers (CGPOP, Tab. 3).
package machine

import (
	"fmt"
	"math"
)

// Arch describes one compute platform. Sizes are per core unless noted.
type Arch struct {
	// Name identifies the platform in trace metadata and reports.
	Name string
	// FreqGHz is the core clock frequency.
	FreqGHz float64
	// SocketsPerNode and CoresPerSocket define node geometry.
	SocketsPerNode int
	CoresPerSocket int
	// L1KB is the private L1 data cache size in KiB.
	L1KB float64
	// L2KB is the last-level cache size in KiB, shared by a socket when
	// SharedL2 is true, private otherwise.
	L2KB     float64
	SharedL2 bool
	// LineBytes is the cache line size.
	LineBytes float64
	// TLBEntries and PageKB define data-TLB reach (entries x page size).
	TLBEntries float64
	PageKB     float64
	// BaseIPC is the IPC the core sustains when every access hits L1.
	BaseIPC float64
	// L1PenaltyCycles is the stall contribution of one L1 miss that hits L2.
	L1PenaltyCycles float64
	// MemPenaltyCycles is the unloaded stall contribution of one L2 miss.
	MemPenaltyCycles float64
	// TLBPenaltyCycles is the stall contribution of one TLB miss.
	TLBPenaltyCycles float64
	// NodeMemBWGBs is the aggregate node memory bandwidth in GB/s. Together
	// with PerProcBWGBs it drives the node-sharing contention knee.
	NodeMemBWGBs float64
	// MaxUtilisation caps the modelled bandwidth utilisation so the
	// queueing term stays finite (an M/M/1-style 1/(1-u) slowdown).
	MaxUtilisation float64
}

// CoresPerNode returns the total cores of one node.
func (a Arch) CoresPerNode() int { return a.SocketsPerNode * a.CoresPerSocket }

// Validate reports a descriptive error for nonsensical specifications.
func (a Arch) Validate() error {
	switch {
	case a.Name == "":
		return fmt.Errorf("machine: arch without name")
	case a.FreqGHz <= 0:
		return fmt.Errorf("machine: %s: frequency must be positive", a.Name)
	case a.SocketsPerNode <= 0 || a.CoresPerSocket <= 0:
		return fmt.Errorf("machine: %s: node geometry must be positive", a.Name)
	case a.L1KB <= 0 || a.L2KB <= 0 || a.LineBytes <= 0:
		return fmt.Errorf("machine: %s: cache geometry must be positive", a.Name)
	case a.BaseIPC <= 0:
		return fmt.Errorf("machine: %s: base IPC must be positive", a.Name)
	case a.MaxUtilisation <= 0 || a.MaxUtilisation >= 1:
		return fmt.Errorf("machine: %s: max utilisation must lie in (0,1)", a.Name)
	}
	return nil
}

// MareNostrum models the JS21 blades of the paper: 2 dual-core PowerPC
// 970MP at 2.3 GHz, 32 KB L1D and 1 MB private L2 per core. The base IPC is
// low, matching the ~0.25 IPC CGPOP achieves there (Table 3).
func MareNostrum() Arch {
	return Arch{
		Name:             "MareNostrum",
		FreqGHz:          2.3,
		SocketsPerNode:   2,
		CoresPerSocket:   2,
		L1KB:             32,
		L2KB:             1024,
		SharedL2:         false,
		LineBytes:        128,
		TLBEntries:       1024,
		PageKB:           4,
		BaseIPC:          1.6,
		L1PenaltyCycles:  14,
		MemPenaltyCycles: 280,
		TLBPenaltyCycles: 60,
		NodeMemBWGBs:     10.6,
		MaxUtilisation:   0.95,
	}
}

// MinoTauro models the paper's second platform: 2 Intel Xeon E5649 6-core
// sockets at 2.53 GHz, 32 KB L1D per core and a 12 MB L3 shared per socket
// (modelled as the SharedL2 last level here).
func MinoTauro() Arch {
	return Arch{
		Name:             "MinoTauro",
		FreqGHz:          2.53,
		SocketsPerNode:   2,
		CoresPerSocket:   6,
		L1KB:             32,
		L2KB:             12288,
		SharedL2:         true,
		LineBytes:        64,
		TLBEntries:       512,
		PageKB:           4,
		BaseIPC:          2.2,
		L1PenaltyCycles:  10,
		MemPenaltyCycles: 180,
		TLBPenaltyCycles: 30,
		NodeMemBWGBs:     32,
		MaxUtilisation:   0.95,
	}
}

// Compiler models a toolchain as the pair of effects the paper actually
// observes in the CGPOP study (Section 4.1): specialised compilers reduce
// the instruction count but may lose IPC in the same proportion, leaving
// the execution time flat.
type Compiler struct {
	// Name identifies the toolchain (e.g. "xlf-12.1 -O3").
	Name string
	// InstrFactor multiplies the instruction count relative to the
	// reference (gfortran) build of the same code.
	InstrFactor float64
	// IPCFactor multiplies the achievable IPC relative to the reference.
	IPCFactor float64
}

// Validate reports a descriptive error for nonsensical specifications.
func (c Compiler) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("machine: compiler without name")
	}
	if c.InstrFactor <= 0 || c.IPCFactor <= 0 {
		return fmt.Errorf("machine: compiler %s: factors must be positive", c.Name)
	}
	return nil
}

// GFortran is the baseline generic compiler: factors of exactly 1.
func GFortran() Compiler {
	return Compiler{Name: "gfortran", InstrFactor: 1, IPCFactor: 1}
}

// XLF models IBM XL Fortran on PowerPC: −36% instructions at −36% IPC
// (paper Table 3: 6.8M→4.3M instructions, 0.25→0.16 IPC, flat duration).
func XLF() Compiler {
	return Compiler{Name: "xlf", InstrFactor: 0.64, IPCFactor: 0.64}
}

// IFort models Intel Fortran on Xeon: −30% instructions at −28% IPC
// (paper Table 3: 5M→3.5M instructions, 0.42→0.30 IPC, near-flat duration).
func IFort() Compiler {
	return Compiler{Name: "ifort", InstrFactor: 0.70, IPCFactor: 0.717}
}

// ArchByName resolves the built-in platforms.
func ArchByName(name string) (Arch, bool) {
	switch name {
	case "MareNostrum":
		return MareNostrum(), true
	case "MinoTauro":
		return MinoTauro(), true
	}
	return Arch{}, false
}

// CompilerByName resolves the built-in toolchains.
func CompilerByName(name string) (Compiler, bool) {
	switch name {
	case "gfortran":
		return GFortran(), true
	case "xlf":
		return XLF(), true
	case "ifort":
		return IFort(), true
	}
	return Compiler{}, false
}

// missRate returns the fraction of accesses that miss a cache of capacity
// cap bytes given a streaming working set of ws bytes. Below capacity only
// a small compulsory-miss floor remains; above capacity the hit fraction
// decays with the capacity ratio, producing the sharp knee the paper
// observes when a working set overflows a level (HydroC, Fig. 12c).
func missRate(wsBytes, capBytes, floor, ceil float64) float64 {
	if capBytes <= 0 {
		return ceil
	}
	if wsBytes <= capBytes {
		return floor
	}
	// Fraction of the working set that cannot be retained.
	excess := 1 - capBytes/wsBytes
	r := floor + (ceil-floor)*excess
	return math.Min(ceil, math.Max(floor, r))
}

// Workload describes one burst's computation demand, independent of the
// platform executing it.
type Workload struct {
	// Instructions the burst retires on the reference compiler.
	Instructions float64
	// MemFrac is the fraction of instructions that access memory.
	MemFrac float64
	// WorkingSetBytes is the data footprint the burst streams over.
	WorkingSetBytes float64
	// IPCFactor scales the architectural base IPC for this code region
	// (intrinsic code quality: dependency chains, branchiness, ...).
	IPCFactor float64
	// MLP is the miss-level parallelism: how many outstanding misses the
	// code sustains on average (prefetching, independent streams). The
	// effective per-miss stall is the raw penalty divided by MLP, while
	// bandwidth demand still counts every miss. 0 means 1 (fully
	// serialised misses).
	MLP float64
	// L1Floor/L1Ceil and L2Floor/L2Ceil override the default miss-rate
	// bounds of the streaming model for codes with a different access
	// profile (e.g. blocked kernels whose compulsory miss floor is
	// 1/elements-per-line). 0 selects the defaults.
	L1Floor, L1Ceil float64
	L2Floor, L2Ceil float64
}

func defaultRate(v, def float64) float64 {
	if v == 0 {
		return def
	}
	return v
}

// Sharing describes how the process is packed onto the node.
type Sharing struct {
	// ProcsPerNode is the number of application processes on the node.
	ProcsPerNode int
}

// Cost is the modelled outcome of executing a Workload on an Arch with a
// Compiler under a Sharing configuration.
type Cost struct {
	Instructions float64
	Cycles       float64
	L1DMisses    float64
	L2DMisses    float64
	TLBMisses    float64
	MemAccesses  float64
	DurationNS   float64
	IPC          float64
}

// Execute runs the analytic performance model. The cycle count is the sum
// of a pipeline term (instructions over achievable IPC) plus stall terms
// for each miss class, with the memory penalty inflated by an M/M/1-style
// queueing factor 1/(1-u) once the node's aggregate bandwidth demand
// approaches saturation — that nonlinearity produces the MR-Genesis
// contention knee (Fig. 11).
func Execute(w Workload, a Arch, c Compiler, sh Sharing) Cost {
	if w.IPCFactor == 0 {
		w.IPCFactor = 1
	}
	if w.MLP == 0 {
		w.MLP = 1
	}
	procs := sh.ProcsPerNode
	if procs <= 0 {
		procs = 1
	}
	instr := w.Instructions * c.InstrFactor
	mem := instr * w.MemFrac

	l1Rate := missRate(w.WorkingSetBytes, a.L1KB*1024,
		defaultRate(w.L1Floor, 0.002), defaultRate(w.L1Ceil, 0.35))
	l1m := mem * l1Rate

	effL2 := a.L2KB * 1024
	if a.SharedL2 {
		// Processes on the same socket compete for last-level capacity.
		perSocket := (procs + a.SocketsPerNode - 1) / a.SocketsPerNode
		if perSocket > a.CoresPerSocket {
			perSocket = a.CoresPerSocket
		}
		if perSocket > 1 {
			effL2 /= float64(perSocket)
		}
	}
	l2Rate := missRate(w.WorkingSetBytes, effL2,
		defaultRate(w.L2Floor, 0.02), defaultRate(w.L2Ceil, 0.85))
	l2m := l1m * l2Rate

	tlbReach := a.TLBEntries * a.PageKB * 1024
	tlbRate := missRate(w.WorkingSetBytes, tlbReach, 0.0001, 0.02)
	tlbm := mem * tlbRate

	// Bandwidth demand of one process if it ran unstalled: bytes per
	// second = l2 misses per cycle x line size x frequency. The aggregate
	// demand of all co-located processes sets the utilisation.
	ipcPeak := a.BaseIPC * c.IPCFactor * w.IPCFactor
	basePipeline := instr / ipcPeak
	memStall := l2m * a.MemPenaltyCycles / w.MLP
	baseCycles := basePipeline + l1m*a.L1PenaltyCycles + memStall + tlbm*a.TLBPenaltyCycles
	var perProcBW float64
	if baseCycles > 0 {
		perProcBW = l2m / baseCycles * a.LineBytes * a.FreqGHz // GB/s
	}
	util := perProcBW * float64(procs) / a.NodeMemBWGBs
	if util > a.MaxUtilisation {
		util = a.MaxUtilisation
	}

	cycles := basePipeline +
		l1m*a.L1PenaltyCycles +
		memStall/(1-util) +
		tlbm*a.TLBPenaltyCycles
	if cycles <= 0 {
		cycles = 1
	}

	return Cost{
		Instructions: instr,
		Cycles:       cycles,
		L1DMisses:    l1m,
		L2DMisses:    l2m,
		TLBMisses:    tlbm,
		MemAccesses:  mem,
		DurationNS:   cycles / a.FreqGHz, // cycles / (GHz) = ns
		IPC:          instr / cycles,
	}
}
