package trace

import (
	"bytes"
	"testing"
)

// FuzzRead ensures the trace parser never panics on arbitrary input and
// that anything it accepts round-trips through the writer.
func FuzzRead(f *testing.F) {
	var seed bytes.Buffer
	if err := Write(&seed, sampleTrace()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("#PERFTRACK 1\n")
	f.Add("#PERFTRACK 1\n#meta app=x ranks=2\nB 0 0 0 1 f f.c 1 0 0 0 0 0 0 0\n")
	f.Add("")
	f.Add("#PERFTRACK 1\n#param k=\"v with space\"\nB 1 0 5 5 \"fn x\" g.c 2 1 1 2 3 4 5 6\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Read(bytes.NewReader([]byte(input)))
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("accepted trace failed to serialise: %v", err)
		}
		if _, err := Read(&buf); err != nil {
			t.Fatalf("writer output does not re-parse: %v", err)
		}
	})
}

// FuzzReadCSV ensures the CSV importer never panics.
func FuzzReadCSV(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteCSV(&seed, sampleTrace()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("task,thread\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadCSV(bytes.NewReader([]byte(input)))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tr); err != nil {
			t.Fatalf("accepted CSV failed to serialise: %v", err)
		}
	})
}
