package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"runtime"
	"sync"

	"perftrack/internal/metrics"
)

// Colbin decoding. The reader walks the CRC-framed sections once to find
// block boundaries (cheap: header reads plus burst-count varints), then
// decodes the blocks in parallel — every delta chain restarts at a block
// boundary, so blocks are independent given the string table. Decode cost
// is a handful of varint adds per burst plus a raw float64 column copy:
// memory bandwidth, not strconv.
//
// Corruption policy mirrors the store scanner: a section whose CRC
// mismatches is quarantined in lenient mode (the frame length still
// delimits it, so scanning resynchronises at the next section) and is a
// loud error in strict mode. A file without its 'E' end marker is torn:
// strict errors, lenient keeps the decoded prefix and reports Truncated.
// Header sections ('M', 'S') have no redundancy to recover from, so
// corruption there fails the decode in both modes — never a silent
// misdecode.

// colMeta is the parsed 'M' section.
type colMeta struct {
	meta   Metadata
	order  []metrics.Counter
	total  int
	blocks int // writer's block size hint (informational)
}

// colBlock is one 'B' section located by the scan, not yet CRC-verified.
type colBlock struct {
	section int    // 1-based section index, for diagnostics
	body    []byte // payload after the kind byte (burst count included)
	crc     uint32 // frame CRC over kind+payload
	frame   []byte // kind byte + payload, the CRC input
	n       int    // declared burst count
	off     int    // cumulative burst offset in the output slice
}

// errNotColbin reports input that does not start with the colbin magic.
var errNotColbin = fmt.Errorf("trace: not a colbin file (missing %q magic)", ColbinMagic)

// DecodeColbin parses a binary columnar trace strictly: any corruption,
// truncation or trailing garbage aborts the decode.
func DecodeColbin(data []byte) (*Trace, error) {
	t := &Trace{}
	_, err := decodeColbin(data, DecodeOptions{Strict: true}, t)
	if err != nil {
		return nil, err
	}
	return t, nil
}

// DecodeColbinWith parses a binary columnar trace according to opts. In
// lenient mode corrupt blocks are quarantined into the diagnostics (the
// surviving bursts keep their order) and a torn tail reports Truncated;
// header corruption still errors, since nothing can be recovered past it.
func DecodeColbinWith(data []byte, opts DecodeOptions) (*Trace, DecodeDiagnostics, error) {
	t := &Trace{}
	diag, err := decodeColbin(data, opts, t)
	if err != nil {
		return nil, diag, err
	}
	return t, diag, nil
}

// DecodeColbinInto parses strictly, reusing t's burst slice capacity:
// the repeat-read hot path (the convert cache, benchmark loops) pays no
// per-burst allocation at all.
func DecodeColbinInto(data []byte, t *Trace) error {
	_, err := decodeColbin(data, DecodeOptions{Strict: true}, t)
	return err
}

// ReadColbin parses a binary columnar trace from r strictly.
func ReadColbin(r io.Reader) (*Trace, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return DecodeColbin(data)
}

// ReadColbinWith parses a binary columnar trace from r according to opts.
func ReadColbinWith(r io.Reader, opts DecodeOptions) (*Trace, DecodeDiagnostics, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, DecodeDiagnostics{}, err
	}
	return DecodeColbinWith(data, opts)
}

// DecodeAny sniffs the payload format — colbin magic or perftrack text —
// and decodes accordingly. It is the single entry point for callers that
// accept either format (the service boundary, trackctl).
func DecodeAny(data []byte, opts DecodeOptions) (*Trace, DecodeDiagnostics, error) {
	if IsColbin(data) {
		return DecodeColbinWith(data, opts)
	}
	return ReadWith(newBytesReader(data), opts)
}

// ReadFileAny reads the named trace file strictly, sniffing the format.
func ReadFileAny(path string) (*Trace, error) {
	t, _, err := ReadFileAnyWith(path, DecodeOptions{Strict: true})
	return t, err
}

// ReadFileAnyWith reads the named trace file according to opts, sniffing
// the format.
func ReadFileAnyWith(path string, opts DecodeOptions) (*Trace, DecodeDiagnostics, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, DecodeDiagnostics{}, err
	}
	t, diag, err := DecodeAny(data, opts)
	if err != nil {
		return nil, diag, fmt.Errorf("%s: %w", path, err)
	}
	return t, diag, nil
}

// SplitColbin splits a body of concatenated colbin traces into one byte
// slice per trace (subslices of data, no copying). Each trace runs from
// its magic through its 'E' section; the next byte after an 'E' must
// start a new magic. Frame CRCs are not verified here — the decoder does
// that — but framing must be intact for the split to be unambiguous.
func SplitColbin(data []byte) ([][]byte, error) {
	var out [][]byte
	for len(data) > 0 {
		if !IsColbin(data) {
			return nil, errNotColbin
		}
		off := len(ColbinMagic)
		for {
			if off+8 > len(data) {
				return nil, fmt.Errorf("trace: colbin trace %d: torn section header", len(out)+1)
			}
			bodyLen := int(binary.LittleEndian.Uint32(data[off:]))
			if bodyLen <= 0 || bodyLen > colbinMaxBody {
				return nil, fmt.Errorf("trace: colbin trace %d: implausible section length %d", len(out)+1, bodyLen)
			}
			if off+8+bodyLen > len(data) {
				return nil, fmt.Errorf("trace: colbin trace %d: torn section body", len(out)+1)
			}
			kind := data[off+8]
			off += 8 + bodyLen
			if kind == sectionEnd {
				break
			}
		}
		out = append(out, data[:off])
		data = data[off:]
	}
	if len(out) == 0 {
		return nil, errNotColbin
	}
	return out, nil
}

// newBytesReader avoids importing bytes just for a reader.
type bytesReader struct {
	data []byte
	off  int
}

func newBytesReader(data []byte) *bytesReader { return &bytesReader{data: data} }

func (r *bytesReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// decodeColbin is the shared strict/lenient decode core. It reuses t's
// burst slice capacity when possible and fills t in place.
func decodeColbin(data []byte, opts DecodeOptions, t *Trace) (DecodeDiagnostics, error) {
	var diag DecodeDiagnostics
	if !IsColbin(data) {
		return diag, errNotColbin
	}
	quarantine := func(section int, err error) error {
		if opts.Strict {
			return fmt.Errorf("trace: colbin section %d: %w", section, err)
		}
		diag.BadLines = append(diag.BadLines, BadLine{Line: section, Reason: err.Error()})
		if opts.MaxBadLines > 0 && len(diag.BadLines) > opts.MaxBadLines {
			return fmt.Errorf("trace: giving up after %d corrupt colbin sections (last: section %d: %v)",
				len(diag.BadLines), section, err)
		}
		return nil
	}

	// Pass 1: walk the frames. Header sections are parsed (and CRC
	// checked) inline; blocks are located and counted only, so the heavy
	// per-burst work can fan out afterwards.
	var (
		meta    *colMeta
		strtab  []string
		blocks  []colBlock
		sawEnd  bool
		section int
		total   int
	)
	off := len(ColbinMagic)
	for off < len(data) && !sawEnd {
		section++
		if off+8 > len(data) {
			if opts.Strict {
				return diag, fmt.Errorf("trace: colbin section %d: torn section header", section)
			}
			diag.Truncated = true
			break
		}
		bodyLen := int(binary.LittleEndian.Uint32(data[off:]))
		wantCRC := binary.LittleEndian.Uint32(data[off+4:])
		if bodyLen <= 0 || bodyLen > colbinMaxBody {
			// Framing is lost: without a trustworthy length there is no
			// next section to resynchronise at.
			if opts.Strict {
				return diag, fmt.Errorf("trace: colbin section %d: implausible length %d", section, bodyLen)
			}
			diag.BadLines = append(diag.BadLines, BadLine{Line: section,
				Reason: fmt.Sprintf("implausible section length %d; framing lost", bodyLen)})
			diag.Truncated = true
			break
		}
		if off+8+bodyLen > len(data) {
			if opts.Strict {
				return diag, fmt.Errorf("trace: colbin section %d: torn section body", section)
			}
			diag.Truncated = true
			break
		}
		frame := data[off+8 : off+8+bodyLen]
		off += 8 + bodyLen
		kind, payload := frame[0], frame[1:]

		switch kind {
		case sectionMeta, sectionStrtab, sectionEnd:
			// Header and trailer sections: CRC inline, no recovery
			// possible for M/S.
			if crc32.Checksum(frame, colbinCRC) != wantCRC {
				if kind == sectionEnd {
					if err := quarantine(section, fmt.Errorf("end marker crc mismatch")); err != nil {
						return diag, err
					}
					diag.Truncated = true
					sawEnd = true // framing consumed it; stop here
					continue
				}
				return diag, fmt.Errorf("trace: colbin section %d: header section crc mismatch", section)
			}
			switch kind {
			case sectionMeta:
				if meta != nil {
					return diag, fmt.Errorf("trace: colbin section %d: duplicate metadata section", section)
				}
				m, err := parseColMeta(payload)
				if err != nil {
					return diag, fmt.Errorf("trace: colbin section %d: %w", section, err)
				}
				meta = m
			case sectionStrtab:
				if meta == nil {
					return diag, fmt.Errorf("trace: colbin section %d: string table before metadata", section)
				}
				if strtab != nil {
					return diag, fmt.Errorf("trace: colbin section %d: duplicate string table", section)
				}
				st, err := parseColStrtab(payload)
				if err != nil {
					return diag, fmt.Errorf("trace: colbin section %d: %w", section, err)
				}
				strtab = st
			case sectionEnd:
				n, k := binary.Uvarint(payload)
				if k <= 0 {
					return diag, fmt.Errorf("trace: colbin section %d: malformed end marker", section)
				}
				if opts.Strict && int(n) != total {
					return diag, fmt.Errorf("trace: colbin section %d: end marker counts %d bursts, blocks carry %d", section, n, total)
				}
				sawEnd = true
			}
		case sectionBlock:
			if meta == nil || strtab == nil {
				return diag, fmt.Errorf("trace: colbin section %d: burst block before metadata/string table", section)
			}
			n, k := binary.Uvarint(payload)
			// The count gates the output allocation, so bound it by what
			// the payload could possibly hold before trusting it (CRC is
			// checked later, in the parallel phase).
			minPer := 8 + 8*len(meta.order)
			if k <= 0 || int(n) > len(payload)/max(1, minPer)+1 {
				if err := quarantine(section, fmt.Errorf("implausible block burst count")); err != nil {
					return diag, err
				}
				continue
			}
			blocks = append(blocks, colBlock{
				section: section, body: payload[k:], crc: wantCRC, frame: frame,
				n: int(n), off: total,
			})
			total += int(n)
		default:
			// Unknown section kind: strict rejects (version skew is a
			// format error, not forward compatibility), lenient skips.
			if err := quarantine(section, fmt.Errorf("unknown section kind %q", kind)); err != nil {
				return diag, err
			}
		}
	}
	if meta == nil {
		return diag, fmt.Errorf("trace: colbin file has no metadata section")
	}
	if strtab == nil && total > 0 {
		return diag, fmt.Errorf("trace: colbin file has burst blocks but no string table")
	}
	if !sawEnd {
		if opts.Strict {
			return diag, fmt.Errorf("trace: colbin file is torn: missing end marker")
		}
		diag.Truncated = true
	}
	if sawEnd && off < len(data) {
		if opts.Strict {
			return diag, fmt.Errorf("trace: %d trailing bytes after colbin end marker", len(data)-off)
		}
		diag.BadLines = append(diag.BadLines, BadLine{Line: section + 1,
			Reason: fmt.Sprintf("%d trailing bytes after end marker", len(data)-off)})
	}
	if opts.Strict && total != meta.total {
		return diag, fmt.Errorf("trace: colbin metadata counts %d bursts, blocks carry %d", meta.total, total)
	}

	// Pass 2: decode blocks in parallel into one contiguous burst slice.
	t.Meta = meta.meta
	t.Bursts = growBursts(t.Bursts, total)
	bad := make([]error, len(blocks))
	runColBlocks(len(blocks), func(i int) {
		b := blocks[i]
		if crc32.Checksum(b.frame, colbinCRC) != b.crc {
			bad[i] = fmt.Errorf("block crc mismatch (%d bursts quarantined)", b.n)
			return
		}
		bad[i] = decodeColBlock(b.body, t.Bursts[b.off:b.off+b.n], strtab, meta.order)
		if bad[i] != nil {
			bad[i] = fmt.Errorf("%v (%d bursts quarantined)", bad[i], b.n)
		}
	})
	// Compact out quarantined block ranges, preserving order.
	w := 0
	for i, b := range blocks {
		if bad[i] != nil {
			if err := quarantine(b.section, bad[i]); err != nil {
				return diag, err
			}
			continue
		}
		if w != b.off {
			copy(t.Bursts[w:], t.Bursts[b.off:b.off+b.n])
		}
		w += b.n
	}
	t.Bursts = t.Bursts[:w]
	return diag, nil
}

// growBursts resizes dst to n, reusing capacity.
func growBursts(dst []Burst, n int) []Burst {
	if cap(dst) >= n {
		dst = dst[:n]
		for i := range dst {
			dst[i] = Burst{}
		}
		return dst
	}
	return make([]Burst, n)
}

// parseColMeta decodes the 'M' payload.
func parseColMeta(p []byte) (*colMeta, error) {
	r := colCursor{buf: p}
	m := &colMeta{}
	m.meta.App = r.str("app")
	m.meta.Label = r.str("label")
	m.meta.Ranks = int(r.varint("ranks"))
	m.meta.TasksPerNode = int(r.varint("tasksPerNode"))
	m.meta.Machine = r.str("machine")
	m.meta.Compiler = r.str("compiler")
	nparams := r.uvarint("param count")
	if r.err == nil && nparams > uint64(len(p)) {
		return nil, fmt.Errorf("implausible param count %d", nparams)
	}
	for i := uint64(0); i < nparams && r.err == nil; i++ {
		k := r.str("param key")
		v := r.str("param value")
		if r.err == nil {
			if m.meta.Params == nil {
				m.meta.Params = map[string]string{}
			}
			m.meta.Params[k] = v
		}
	}
	ncounters := r.uvarint("counter count")
	if r.err == nil && ncounters > uint64(len(p)) {
		return nil, fmt.Errorf("implausible counter count %d", ncounters)
	}
	for i := uint64(0); i < ncounters && r.err == nil; i++ {
		name := r.str("counter name")
		if r.err != nil {
			break
		}
		c, ok := metrics.CounterByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown counter %q", name)
		}
		m.order = append(m.order, c)
	}
	m.total = int(r.uvarint("burst count"))
	m.blocks = int(r.uvarint("block size"))
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(p) {
		return nil, fmt.Errorf("trailing bytes in metadata section")
	}
	return m, nil
}

// parseColStrtab decodes the 'S' payload.
func parseColStrtab(p []byte) ([]string, error) {
	r := colCursor{buf: p}
	n := r.uvarint("string count")
	if r.err != nil {
		return nil, r.err
	}
	if n > uint64(len(p)) {
		return nil, fmt.Errorf("implausible string count %d", n)
	}
	table := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		table = append(table, r.str("string"))
		if r.err != nil {
			return nil, r.err
		}
	}
	if r.off != len(p) {
		return nil, fmt.Errorf("trailing bytes in string table")
	}
	return table, nil
}

// decodeColBlock decodes one CRC-verified block payload (burst count
// already consumed) into dst. The column order here is the pinned format:
// it must match the writer and is covered by the golden-layout test.
func decodeColBlock(p []byte, dst []Burst, strtab []string, order []metrics.Counter) error {
	n := len(dst)
	off := 0
	col := func(set func(i int, v int64)) error {
		prev := int64(0)
		for i := 0; i < n; i++ {
			u, k := binary.Uvarint(p[off:])
			if k <= 0 {
				return fmt.Errorf("malformed varint column")
			}
			off += k
			prev += unzigzag(u)
			set(i, prev)
		}
		return nil
	}
	if err := col(func(i int, v int64) { dst[i].Task = int(v) }); err != nil {
		return err
	}
	if err := col(func(i int, v int64) { dst[i].Thread = int(v) }); err != nil {
		return err
	}
	if err := col(func(i int, v int64) { dst[i].StartNS = v }); err != nil {
		return err
	}
	if err := col(func(i int, v int64) { dst[i].DurationNS = v }); err != nil {
		return err
	}
	var badIdx error
	idx := func(v int64) string {
		if v < 0 || v >= int64(len(strtab)) {
			badIdx = fmt.Errorf("string index %d outside table of %d", v, len(strtab))
			return ""
		}
		return strtab[v]
	}
	if err := col(func(i int, v int64) { dst[i].Stack.Function = idx(v) }); err != nil {
		return err
	}
	if err := col(func(i int, v int64) { dst[i].Stack.File = idx(v) }); err != nil {
		return err
	}
	if badIdx != nil {
		return badIdx
	}
	if err := col(func(i int, v int64) { dst[i].Stack.Line = int(v) }); err != nil {
		return err
	}
	if err := col(func(i int, v int64) { dst[i].Phase = int(v) }); err != nil {
		return err
	}
	if len(p)-off != n*8*len(order) {
		return fmt.Errorf("counter columns carry %d bytes, want %d", len(p)-off, n*8*len(order))
	}
	for _, c := range order {
		for i := 0; i < n; i++ {
			dst[i].Counters[c] = math.Float64frombits(binary.LittleEndian.Uint64(p[off:]))
			off += 8
		}
	}
	return nil
}

// colCursor is a tiny bounds-checked reader over a section payload.
type colCursor struct {
	buf []byte
	off int
	err error
}

func (r *colCursor) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, k := binary.Uvarint(r.buf[r.off:])
	if k <= 0 {
		r.err = fmt.Errorf("malformed %s", what)
		return 0
	}
	r.off += k
	return v
}

func (r *colCursor) varint(what string) int64 { return unzigzag(r.uvarint(what)) }

func (r *colCursor) str(what string) string {
	n := r.uvarint(what + " length")
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.buf)-r.off) {
		r.err = fmt.Errorf("%s overruns section", what)
		return ""
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// runColBlocks fans fn(0..n-1) across at most GOMAXPROCS goroutines —
// the same bounded-pool pattern as the analysis core, local to this
// package because core depends on trace.
func runColBlocks(n int, fn func(int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
