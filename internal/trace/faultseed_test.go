package trace_test

// Fault-seeded fuzzing and the lenient round-trip property. This file
// lives in the external test package because it drives internal/trace
// through internal/faults, which itself imports internal/trace.

import (
	"bytes"
	"testing"

	"perftrack/internal/faults"
	"perftrack/internal/metrics"
	"perftrack/internal/trace"
)

// seedTrace builds a moderately sized trace for corruption: enough tasks
// and bursts that every injector has material to work with.
func seedTrace() *trace.Trace {
	t := &trace.Trace{Meta: trace.Metadata{
		App: "fuzz", Label: "seed", Ranks: 6, Machine: "TestBox",
		Params: map[string]string{"class": "A"},
	}}
	for task := 0; task < 6; task++ {
		clock := int64(0)
		for it := 0; it < 12; it++ {
			var c metrics.CounterVector
			c[metrics.CtrInstructions] = 1e6 + float64(1000*it)
			c[metrics.CtrCycles] = 2e6
			t.Bursts = append(t.Bursts, trace.Burst{
				Task: task, StartNS: clock, DurationNS: 800_000,
				Stack:    trace.CallstackRef{Function: "f", File: "f.c", Line: it%3 + 1},
				Counters: c, Phase: it % 3,
			})
			clock += 1_000_000
		}
	}
	return t
}

func encodeT(tb testing.TB, t *trace.Trace) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := trace.Write(&buf, t); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzLenientRead seeds the fuzzer with the output of every byte-level
// fault injector (on top of a clean trace) and checks the lenient decoder
// never panics and never errors with unlimited tolerance.
func FuzzLenientRead(f *testing.F) {
	clean := encodeT(f, seedTrace())
	f.Add(string(clean))
	for _, frac := range []float64{0.05, 0.25, 0.75} {
		for _, inj := range faults.ByteInjectors(frac) {
			for seed := uint64(1); seed <= 3; seed++ {
				corrupt, _ := inj.ApplyBytes(clean, seed)
				f.Add(string(corrupt))
			}
		}
	}
	f.Fuzz(func(t *testing.T, input string) {
		tr, diag, err := trace.ReadWith(bytes.NewReader([]byte(input)), trace.DecodeOptions{})
		if err != nil {
			return // only I/O or give-up errors; never a panic
		}
		_ = diag.Summary()
		// Whatever survived quarantine must re-serialise.
		var buf bytes.Buffer
		if err := trace.Write(&buf, tr); err != nil {
			t.Fatalf("lenient decode produced an unserialisable trace: %v", err)
		}
	})
}

// TestLenientRoundTripProperty is the robustness contract of the codec:
// for every byte-level injector and severity, lenient-decoding the
// corrupted encoding never panics, never errors, and quarantines at most
// the number of injected faults.
func TestLenientRoundTripProperty(t *testing.T) {
	clean := encodeT(t, seedTrace())
	cleanTr, diag, err := trace.ReadWith(bytes.NewReader(clean), trace.DecodeOptions{})
	if err != nil || diag.Skipped() != 0 {
		t.Fatalf("clean encoding must decode cleanly: err=%v skipped=%d", err, diag.Skipped())
	}
	for _, frac := range []float64{0.02, 0.1, 0.3, 0.6} {
		for _, inj := range faults.ByteInjectors(frac) {
			for seed := uint64(1); seed <= 10; seed++ {
				corrupt, rep := inj.ApplyBytes(clean, seed)
				tr, diag, err := trace.ReadWith(bytes.NewReader(corrupt), trace.DecodeOptions{})
				if err != nil {
					t.Fatalf("%s frac=%g seed=%d: lenient decode errored: %v", inj.Name(), frac, seed, err)
				}
				if diag.Skipped() > rep.Faults {
					t.Errorf("%s frac=%g seed=%d: quarantined %d lines > %d injected faults",
						inj.Name(), frac, seed, diag.Skipped(), rep.Faults)
				}
				if got := len(tr.Bursts) + diag.Skipped(); got < len(cleanTr.Bursts)-rep.Faults {
					t.Errorf("%s frac=%g seed=%d: %d bursts + %d quarantined < %d original - %d faults: lines vanished silently",
						inj.Name(), frac, seed, len(tr.Bursts), diag.Skipped(), len(cleanTr.Bursts), rep.Faults)
				}
			}
		}
	}
}

// TestInMemoryFaultsRoundTrip checks every in-memory injector's output
// survives a strict encode/decode round trip: the corruption lives in the
// values, not the format.
func TestInMemoryFaultsRoundTrip(t *testing.T) {
	in := seedTrace()
	for _, inj := range faults.TraceInjectors(0.2) {
		corrupted, rep := inj.Apply(in, 99)
		enc := encodeT(t, corrupted)
		back, err := trace.Read(bytes.NewReader(enc))
		if err != nil {
			// NaN/Inf counters serialise as parseable floats, so even
			// those must round-trip strictly.
			t.Fatalf("%s: corrupted trace failed strict round trip: %v", inj.Name(), err)
		}
		if len(back.Bursts) != len(corrupted.Bursts) {
			t.Errorf("%s: %d bursts in, %d out", inj.Name(), len(corrupted.Bursts), len(back.Bursts))
		}
		if rep.Faults == 0 {
			t.Errorf("%s: injector at frac 0.2 reported no faults", inj.Name())
		}
	}
}
