package trace

import (
	"encoding/binary"
	"hash/crc32"
	"io"
	"math"
	"os"

	"perftrack/internal/metrics"
)

// The perftrack binary columnar format ("colbin"), version 1. It exists
// because the text codec — strconv, per-line allocation, field splitting —
// dominates cold ingest now that the analysis core is memory-bound. The
// binary layout is columnar so decode cost is bounded by memory bandwidth:
// integer columns are delta+zigzag varints (bursts are near-sorted by task
// and time, so deltas are tiny), call-stack strings are indices into a
// shared string table, and counter columns are raw little-endian IEEE-754
// float64 blocks that memcpy straight into burst vectors.
//
// Framing reuses the internal/store record discipline so every section is
// self-delimiting and self-checking:
//
//	file    = magic(8) section+
//	section = u32 bodyLen (LE) | u32 crc32c(body, Castagnoli) | body
//	body    = kind byte | payload
//
// Sections, in pinned order:
//
//	'M' metadata  app, label, ranks, tasksPerNode, machine, compiler,
//	              sorted params, counter column order, burst/block counts
//	'S' strtab    shared table for function and file strings
//	'B' block     one column group of up to colbinBlockSize bursts
//	'E' end       total burst count again — a file without its end marker
//	              is torn
//
// Within a 'B' block the columns appear in a pinned order (task, thread,
// startNS, durationNS, funcIdx, fileIdx, line, phase, then one raw float64
// column per counter in the declared counter order); every delta chain
// restarts at each block so blocks decode independently and in parallel.
// The field order and encodings are pinned by a golden hash test exactly
// like the canonical fingerprint format: changing the layout is a format
// version bump, never a silent drift.
//
// The text codec remains the differential reference: round-trip tests
// require text→binary→text and binary→Trace→binary bit-exactness across
// the seeded corpora, including fault-injected inputs.

// ColbinMagic is the 8-byte file signature. The CR/LF/NUL tail catches
// text-mode transfer mangling the same way the PNG signature does.
const ColbinMagic = "PTCB\x01\r\n\x00"

const (
	// colbinVersion is byte 5 of the magic; bump together.
	colbinVersion = 1
	// colbinBlockSize is the writer's bursts-per-block. Readers accept
	// any per-block count; this is a bandwidth/parallelism trade-off,
	// not a format constant.
	colbinBlockSize = 4096
	// colbinMaxBody guards the reader against absurd section lengths
	// produced by corruption, same rationale as the store scanner.
	colbinMaxBody = 1 << 30

	sectionMeta   = 'M'
	sectionStrtab = 'S'
	sectionBlock  = 'B'
	sectionEnd    = 'E'
)

var colbinCRC = crc32.MakeTable(crc32.Castagnoli)

// IsColbin reports whether data begins with the colbin magic. It is the
// sniff the service boundary uses to route request bodies: anything else
// falls through to the JSON/text paths.
func IsColbin(data []byte) bool {
	return len(data) >= len(ColbinMagic) && string(data[:len(ColbinMagic)]) == ColbinMagic
}

// zigzag maps signed to unsigned so small negatives stay small varints.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendStr appends a uvarint-length-prefixed string.
func appendStr(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// beginSection reserves the 8-byte frame header and appends the kind
// byte, returning the extended buffer and the header offset.
func beginSection(buf []byte, kind byte) ([]byte, int) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
	return append(buf, kind), start
}

// endSection fills the reserved frame header with the body length and
// CRC, exactly the store record discipline.
func endSection(buf []byte, start int) []byte {
	body := buf[start+8:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(body)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(body, colbinCRC))
	return buf
}

// EncodeColbin serialises the trace in the binary columnar format and
// returns the encoded bytes. Burst order is preserved exactly as stored:
// colbin is a faithful codec, not a canonicalizer (the text writer's
// task/time sort happens there, not here).
func EncodeColbin(t *Trace) []byte {
	// Size hint: ~24 bytes per burst of varint columns plus the raw
	// counter columns dominates; headers are noise.
	est := len(ColbinMagic) + 256 + len(t.Bursts)*(24+8*int(metrics.NumCounters))
	buf := make([]byte, 0, est)
	buf = append(buf, ColbinMagic...)

	// 'M' metadata.
	var start int
	buf, start = beginSection(buf, sectionMeta)
	buf = appendStr(buf, t.Meta.App)
	buf = appendStr(buf, t.Meta.Label)
	buf = binary.AppendUvarint(buf, zigzag(int64(t.Meta.Ranks)))
	buf = binary.AppendUvarint(buf, zigzag(int64(t.Meta.TasksPerNode)))
	buf = appendStr(buf, t.Meta.Machine)
	buf = appendStr(buf, t.Meta.Compiler)
	keys := sortedParamKeys(t.Meta.Params)
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		buf = appendStr(buf, k)
		buf = appendStr(buf, t.Meta.Params[k])
	}
	buf = binary.AppendUvarint(buf, uint64(metrics.NumCounters))
	for c := metrics.Counter(0); c < metrics.NumCounters; c++ {
		buf = appendStr(buf, c.String())
	}
	buf = binary.AppendUvarint(buf, uint64(len(t.Bursts)))
	buf = binary.AppendUvarint(buf, uint64(colbinBlockSize))
	buf = endSection(buf, start)

	// 'S' string table: distinct function/file strings in first-seen
	// order. First-seen keeps the encoding deterministic for a given
	// burst order without a sort.
	idx := make(map[string]uint64)
	var table []string
	intern := func(s string) uint64 {
		if i, ok := idx[s]; ok {
			return i
		}
		i := uint64(len(table))
		idx[s] = i
		table = append(table, s)
		return i
	}
	funcIdx := make([]uint64, len(t.Bursts))
	fileIdx := make([]uint64, len(t.Bursts))
	for i := range t.Bursts {
		funcIdx[i] = intern(t.Bursts[i].Stack.Function)
		fileIdx[i] = intern(t.Bursts[i].Stack.File)
	}
	buf, start = beginSection(buf, sectionStrtab)
	buf = binary.AppendUvarint(buf, uint64(len(table)))
	for _, s := range table {
		buf = appendStr(buf, s)
	}
	buf = endSection(buf, start)

	// 'B' blocks. Every delta chain restarts per block so blocks decode
	// independently.
	for off := 0; off < len(t.Bursts); off += colbinBlockSize {
		n := len(t.Bursts) - off
		if n > colbinBlockSize {
			n = colbinBlockSize
		}
		bursts := t.Bursts[off : off+n]
		buf, start = beginSection(buf, sectionBlock)
		buf = binary.AppendUvarint(buf, uint64(n))
		buf = appendDeltaColumn(buf, n, func(i int) int64 { return int64(bursts[i].Task) })
		buf = appendDeltaColumn(buf, n, func(i int) int64 { return int64(bursts[i].Thread) })
		buf = appendDeltaColumn(buf, n, func(i int) int64 { return bursts[i].StartNS })
		buf = appendDeltaColumn(buf, n, func(i int) int64 { return bursts[i].DurationNS })
		buf = appendDeltaColumn(buf, n, func(i int) int64 { return int64(funcIdx[off+i]) })
		buf = appendDeltaColumn(buf, n, func(i int) int64 { return int64(fileIdx[off+i]) })
		buf = appendDeltaColumn(buf, n, func(i int) int64 { return int64(bursts[i].Stack.Line) })
		buf = appendDeltaColumn(buf, n, func(i int) int64 { return int64(bursts[i].Phase) })
		for c := metrics.Counter(0); c < metrics.NumCounters; c++ {
			for i := 0; i < n; i++ {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(bursts[i].Counters[c]))
			}
		}
		buf = endSection(buf, start)
	}

	// 'E' end marker: its presence is what distinguishes a complete file
	// from a torn one; the repeated burst count cross-checks the blocks.
	buf, start = beginSection(buf, sectionEnd)
	buf = binary.AppendUvarint(buf, uint64(len(t.Bursts)))
	buf = endSection(buf, start)
	return buf
}

// appendDeltaColumn appends n values as a delta+zigzag varint chain
// starting from zero.
func appendDeltaColumn(buf []byte, n int, get func(int) int64) []byte {
	prev := int64(0)
	for i := 0; i < n; i++ {
		v := get(i)
		buf = binary.AppendUvarint(buf, zigzag(v-prev))
		prev = v
	}
	return buf
}

// WriteColbin serialises the trace to w in the binary columnar format.
func WriteColbin(w io.Writer, t *Trace) error {
	data := EncodeColbin(t)
	for len(data) > 0 {
		n, err := w.Write(data)
		if err != nil {
			return err
		}
		data = data[n:]
	}
	return nil
}

// WriteColbinFile serialises the trace to the named file.
func WriteColbinFile(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteColbin(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// sortedParamKeys returns the parameter keys in sorted order (the same
// canonical order the text codec and the fingerprint use).
func sortedParamKeys(params map[string]string) []string {
	if len(params) == 0 {
		return nil
	}
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	// Insertion sort: param maps are tiny and this avoids pulling sort
	// into the hot encode path for a handful of keys.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
