package trace

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"math"
	"math/rand/v2"
	"path/filepath"
	"reflect"
	"testing"

	"perftrack/internal/metrics"
)

// genTrace builds a seeded trace exercising everything the codec must
// carry: unordered bursts, negative phases, quoted/unicode strings, NaN
// and infinity counter values, empty strings, and enough bursts to span
// several encoder blocks when big is set.
func genTrace(seed uint64, big bool) *Trace {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	t := &Trace{
		Meta: Metadata{
			App: "colbin gen", Label: "seed-run", Ranks: 16, TasksPerNode: 4,
			Machine: "Mare Nostrum", Compiler: `gfortran "4.1.2" -O3`,
			Params:  map[string]string{"class": "B", "block size": "128", "π": "3.14"},
		},
	}
	funcs := []string{"solve_x", "mat mul", "", "cálculo", "init\tphase"}
	files := []string{"solver.f90", "dir name/file.f90", "", "日本.c"}
	n := 200
	if big {
		n = 3*colbinBlockSize + 117
	}
	for i := 0; i < n; i++ {
		var cv metrics.CounterVector
		for c := range cv {
			switch rng.IntN(20) {
			case 0:
				cv[c] = math.NaN()
			case 1:
				cv[c] = math.Inf(1)
			case 2:
				cv[c] = math.Copysign(0, -1)
			default:
				cv[c] = rng.Float64() * 1e9
			}
		}
		t.Bursts = append(t.Bursts, Burst{
			Task:    rng.IntN(16),
			Thread:  rng.IntN(4),
			StartNS: rng.Int64N(1e12) - 100, // includes small negatives
			// negative durations are invalid traces but valid codec input
			DurationNS: rng.Int64N(1e9),
			Stack: CallstackRef{
				Function: funcs[rng.IntN(len(funcs))],
				File:     files[rng.IntN(len(files))],
				Line:     rng.IntN(5000) - 10,
			},
			Phase: rng.IntN(8) - 1,
		})
		t.Bursts[len(t.Bursts)-1].Counters = cv
	}
	return t
}

// equalTraces compares traces by IEEE bit patterns, so NaN payloads and
// -0 count as equal to themselves (DeepEqual treats NaN != NaN).
func equalTraces(a, b *Trace) bool {
	if !reflect.DeepEqual(a.Meta, b.Meta) || len(a.Bursts) != len(b.Bursts) {
		return false
	}
	for i := range a.Bursts {
		if !equalBursts(a.Bursts[i], b.Bursts[i]) {
			return false
		}
	}
	return true
}

func equalBursts(x, y Burst) bool {
	if x.Task != y.Task || x.Thread != y.Thread || x.StartNS != y.StartNS ||
		x.DurationNS != y.DurationNS || x.Stack != y.Stack || x.Phase != y.Phase {
		return false
	}
	for c := range x.Counters {
		if math.Float64bits(x.Counters[c]) != math.Float64bits(y.Counters[c]) {
			return false
		}
	}
	return true
}

func TestColbinRoundTrip(t *testing.T) {
	cases := map[string]*Trace{
		"sample": sampleTrace(),
		"empty":  {Meta: Metadata{App: "empty"}},
		"zero":   {},
	}
	for seed := uint64(1); seed <= 8; seed++ {
		cases["gen"] = genTrace(seed, false)
		cases["gen-big"] = genTrace(seed+100, seed == 1)
		for name, tr := range cases {
			data := EncodeColbin(tr)
			got, err := DecodeColbin(data)
			if err != nil {
				t.Fatalf("seed %d %s: DecodeColbin: %v", seed, name, err)
			}
			if !equalTraces(got, tr) {
				t.Fatalf("seed %d %s: decode mismatch", seed, name)
			}
			// Re-encoding the decoded trace must reproduce the bytes:
			// the encoding is canonical for a given burst order.
			if !bytes.Equal(EncodeColbin(got), data) {
				t.Fatalf("seed %d %s: re-encode differs", seed, name)
			}
		}
	}
}

// TestColbinTextDifferential keeps the text codec as the differential
// reference: converting through colbin must be invisible to the text
// writer, byte for byte, in both directions.
func TestColbinTextDifferential(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		orig := genTrace(seed, false)

		// text -> Trace -> colbin -> Trace -> text, bit-exact.
		var text1 bytes.Buffer
		if err := Write(&text1, orig); err != nil {
			t.Fatal(err)
		}
		parsed, err := Read(bytes.NewReader(text1.Bytes()))
		if err != nil {
			// NaN/Inf counters round-trip through the text format too,
			// so a parse failure is a real regression.
			t.Fatalf("seed %d: text parse: %v", seed, err)
		}
		viaCol, err := DecodeColbin(EncodeColbin(parsed))
		if err != nil {
			t.Fatalf("seed %d: colbin round trip: %v", seed, err)
		}
		var text2 bytes.Buffer
		if err := Write(&text2, viaCol); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(text1.Bytes(), text2.Bytes()) {
			t.Fatalf("seed %d: text -> colbin -> text not bit-exact", seed)
		}

		// The canonical fingerprint must survive the conversion: the
		// convert cache depends on it.
		direct, err := DecodeColbin(EncodeColbin(orig))
		if err != nil {
			t.Fatal(err)
		}
		if direct.CanonicalHash() != orig.CanonicalHash() {
			t.Fatalf("seed %d: canonical hash changed through colbin", seed)
		}
	}
}

// TestColbinGoldenLayout pins the on-disk byte layout — section order,
// column order, encodings — the same way the golden hash tests pin the
// fingerprint format. If this fails, the format changed: bump the magic
// version, do not update the hash casually.
func TestColbinGoldenLayout(t *testing.T) {
	tr := sampleTrace()
	tr.Bursts[1].Counters[metrics.CtrCycles] = 12345.5
	tr.Bursts[2].Phase = -1
	sum := sha256.Sum256(EncodeColbin(tr))
	const want = "fad8a93b7080dc9b52229278a0839fa962549c6744e542bd13dcbdf98d416310"
	if got := hex.EncodeToString(sum[:]); got != want {
		t.Fatalf("colbin layout hash changed:\n got %s\nwant %s", got, want)
	}
}

func TestColbinDecodeIntoReuse(t *testing.T) {
	a, b := genTrace(1, false), genTrace(2, false)
	dataA, dataB := EncodeColbin(a), EncodeColbin(b)
	var tr Trace
	if err := DecodeColbinInto(dataA, &tr); err != nil {
		t.Fatal(err)
	}
	if !equalTraces(&tr, a) {
		t.Fatal("first DecodeColbinInto mismatch")
	}
	if err := DecodeColbinInto(dataB, &tr); err != nil {
		t.Fatal(err)
	}
	if !equalTraces(&tr, b) {
		t.Fatal("reused DecodeColbinInto mismatch")
	}
}

// TestColbinDecodeIntoAllocs pins the binary decoder's allocation
// behaviour: decoding thousands of bursts into a reused trace must cost
// O(strings + blocks) allocations, never O(bursts).
func TestColbinDecodeIntoAllocs(t *testing.T) {
	tr := genTrace(7, true) // > 12k bursts across 4 blocks
	data := EncodeColbin(tr)
	var dst Trace
	if err := DecodeColbinInto(data, &dst); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := DecodeColbinInto(data, &dst); err != nil {
			t.Fatal(err)
		}
	})
	// ~20 table strings, a handful of section slices, the bounded
	// worker pool. 128 leaves slack without ever tolerating a
	// per-burst allocation (that would be >12000).
	if allocs > 128 {
		t.Fatalf("DecodeColbinInto allocates %.0f times for %d bursts", allocs, len(tr.Bursts))
	}
}

func TestColbinTruncationAtEveryByte(t *testing.T) {
	tr := sampleTrace()
	data := EncodeColbin(tr)
	for cut := 0; cut < len(data); cut++ {
		if _, err := DecodeColbin(data[:cut]); err == nil {
			t.Fatalf("strict decode accepted a file truncated at byte %d/%d", cut, len(data))
		}
		// Lenient must not panic and must either fail or flag the tear.
		got, diag, err := DecodeColbinWith(data[:cut], DecodeOptions{})
		if err == nil && got != nil && !diag.Truncated && diag.Skipped() == 0 {
			t.Fatalf("lenient decode of %d/%d-byte prefix reported a clean file", cut, len(data))
		}
	}
}

func TestColbinBitFlipNeverSilent(t *testing.T) {
	tr := genTrace(3, false)
	data := EncodeColbin(tr)
	rng := rand.New(rand.NewPCG(99, 7))
	for trial := 0; trial < 400; trial++ {
		corrupt := append([]byte(nil), data...)
		pos := rng.IntN(len(corrupt))
		corrupt[pos] ^= 1 << rng.IntN(8)
		got, err := DecodeColbin(corrupt)
		if err != nil {
			continue // loud failure: exactly what we want
		}
		// The flip must have been in a bit the format does not cover
		// (there is none: every byte is under a CRC or the magic), so
		// an accepted decode must be identical to the original.
		if !equalTraces(got, tr) {
			t.Fatalf("trial %d: bit flip at byte %d decoded silently to a different trace", trial, pos)
		}
	}
}

func TestColbinLenientQuarantinesBlocks(t *testing.T) {
	tr := genTrace(5, true) // multiple blocks
	data := EncodeColbin(tr)
	// Flip a byte inside the second half of the file, far from the
	// header sections: some block CRC breaks.
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)/2] ^= 0x40
	got, diag, err := DecodeColbinWith(corrupt, DecodeOptions{})
	if err != nil {
		t.Fatalf("lenient decode: %v", err)
	}
	if diag.Skipped() == 0 && len(got.Bursts) == len(tr.Bursts) {
		t.Fatal("corruption neither quarantined nor shrank the trace")
	}
	// Every surviving block is a contiguous run of original bursts, in
	// order: check the decoded bursts form a subsequence of the input.
	j := 0
	for i := range got.Bursts {
		for j < len(tr.Bursts) && !equalBursts(got.Bursts[i], tr.Bursts[j]) {
			j++
		}
		if j == len(tr.Bursts) {
			t.Fatalf("decoded burst %d is not an in-order subsequence of the input", i)
		}
		j++
	}
}

func TestSplitColbin(t *testing.T) {
	traces := []*Trace{genTrace(11, false), sampleTrace(), genTrace(12, false)}
	var body []byte
	for _, tr := range traces {
		body = append(body, EncodeColbin(tr)...)
	}
	parts, err := SplitColbin(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != len(traces) {
		t.Fatalf("SplitColbin found %d traces, want %d", len(parts), len(traces))
	}
	for i, part := range parts {
		got, err := DecodeColbin(part)
		if err != nil {
			t.Fatalf("part %d: %v", i, err)
		}
		if !equalTraces(got, traces[i]) {
			t.Fatalf("part %d decodes to the wrong trace", i)
		}
	}
	if _, err := SplitColbin(body[:len(body)-3]); err == nil {
		t.Fatal("SplitColbin accepted a torn tail")
	}
	if _, err := SplitColbin([]byte("#PERFTRACK 1\n")); err == nil {
		t.Fatal("SplitColbin accepted a text body")
	}
	if _, err := SplitColbin(nil); err == nil {
		t.Fatal("SplitColbin accepted an empty body")
	}
}

func TestColbinFlatMatchesBurstDecode(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		tr := genTrace(seed, seed == 2)
		data := EncodeColbin(tr)
		f, err := DecodeColbinFlat(data)
		if err != nil {
			t.Fatal(err)
		}
		if !equalTraces(f.Trace(), tr) {
			t.Fatalf("seed %d: Flat.Trace() mismatch", seed)
		}
		// PointsInto must agree bit-for-bit with the boxed path the
		// pipeline uses today: metrics.SpaceInto over burst samples.
		ms := []metrics.Metric{metrics.IPC, metrics.Instructions}
		got := f.PointsInto(nil, ms)
		want := make([]float64, len(tr.Bursts)*len(ms))
		for i, b := range tr.Bursts {
			metrics.SpaceInto(want[i*len(ms):(i+1)*len(ms)], ms, b.Sample())
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("seed %d: point %d differs: %v vs %v", seed, i, got[i], want[i])
			}
		}
	}
}

func TestReadFileAnySniffs(t *testing.T) {
	tr := genTrace(21, false)
	dir := t.TempDir()
	textPath := filepath.Join(dir, "t.trace")
	binPath := filepath.Join(dir, "t.colbin")
	if err := WriteFile(textPath, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteColbinFile(binPath, tr); err != nil {
		t.Fatal(err)
	}
	fromBin, err := ReadFileAny(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if !equalTraces(fromBin, tr) {
		t.Fatal("binary ReadFileAny mismatch")
	}
	fromText, err := ReadFileAny(textPath)
	if err != nil {
		t.Fatal(err)
	}
	// The text writer sorts and normalises (e.g. -0 prints as 0), so the
	// reference is what the text reader itself produces.
	want, err := ReadFile(textPath)
	if err != nil {
		t.Fatal(err)
	}
	if !equalTraces(fromText, want) {
		t.Fatal("text ReadFileAny mismatch")
	}
	if _, err := ReadFileAny(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("ReadFileAny accepted a missing file")
	}
}

func TestDecodeAnyEmptyAndGarbage(t *testing.T) {
	if _, _, err := DecodeAny(nil, DecodeOptions{Strict: true}); err == nil {
		t.Fatal("strict DecodeAny accepted empty input")
	}
	// Lenient text decode of garbage quarantines; it must not be
	// mistaken for colbin.
	_, diag, err := DecodeAny([]byte("not a trace"), DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !diag.MissingHeader {
		t.Fatal("garbage input should report a missing header")
	}
	// A corrupt magic (right prefix, wrong tail) is not colbin.
	bad := []byte("PTCB\x01\r\nX rest")
	if IsColbin(bad) {
		t.Fatal("IsColbin accepted a corrupt magic")
	}
}
