package trace

import (
	"bytes"
	"math/rand/v2"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"perftrack/internal/metrics"
)

func roundTrip(t *testing.T, tr *Trace) *Trace {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v\ninput:\n%s", err, buf.String())
	}
	return got
}

func TestCodecRoundTrip(t *testing.T) {
	tr := sampleTrace()
	tr.Bursts[0].Counters[metrics.CtrInstructions] = 12345
	tr.Bursts[0].Counters[metrics.CtrCycles] = 6789.5
	got := roundTrip(t, tr)
	if !reflect.DeepEqual(got.Meta, tr.Meta) {
		t.Errorf("meta mismatch:\n got %+v\nwant %+v", got.Meta, tr.Meta)
	}
	want := tr.Clone()
	want.SortByTaskTime()
	if !reflect.DeepEqual(got.Bursts, want.Bursts) {
		t.Errorf("bursts mismatch:\n got %+v\nwant %+v", got.Bursts, want.Bursts)
	}
}

func TestCodecQuotedFields(t *testing.T) {
	tr := sampleTrace()
	tr.Meta.App = "my app"          // space
	tr.Meta.Compiler = `icc "13.0"` // quotes
	tr.Meta.Params = map[string]string{"flags": "-O3 -g"}
	tr.Bursts[0].Stack.Function = "operator ()"
	tr.Bursts[0].Stack.File = `dir name/file.f90`
	got := roundTrip(t, tr)
	if got.Meta.App != tr.Meta.App || got.Meta.Compiler != tr.Meta.Compiler {
		t.Errorf("quoted meta mismatch: %+v", got.Meta)
	}
	if got.Meta.Params["flags"] != "-O3 -g" {
		t.Errorf("quoted param mismatch: %v", got.Meta.Params)
	}
	found := false
	for _, b := range got.Bursts {
		if b.Stack.Function == "operator ()" && b.Stack.File == "dir name/file.f90" {
			found = true
		}
	}
	if !found {
		t.Errorf("quoted stack lost: %+v", got.Bursts)
	}
}

func TestCodecEmptyStrings(t *testing.T) {
	tr := &Trace{Meta: Metadata{Ranks: 1}}
	tr.Bursts = []Burst{{Task: 0, DurationNS: 1}}
	got := roundTrip(t, tr)
	if got.Bursts[0].Stack.Function != "" || got.Bursts[0].Stack.File != "" {
		t.Errorf("empty stack fields mangled: %+v", got.Bursts[0].Stack)
	}
}

func TestCodecFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.prv.txt")
	tr := sampleTrace()
	if err := WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Bursts) != len(tr.Bursts) {
		t.Errorf("bursts = %d, want %d", len(got.Bursts), len(tr.Bursts))
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("missing file should error")
	}
}

func TestCodecErrors(t *testing.T) {
	cases := []struct {
		name, input string
	}{
		{"missing magic", "B 0 0 0 1 f f.c 1 0 0 0 0 0 0 0\n"},
		{"bad version", "#PERFTRACK 99\n"},
		{"malformed magic", "#PERFTRACK\n"},
		{"unknown counter", "#PERFTRACK 1\n#counters PAPI_NOPE\n"},
		{"garbage record", "#PERFTRACK 1\nX what\n"},
		{"short burst", "#PERFTRACK 1\nB 0 0 0\n"},
		{"trailing fields", "#PERFTRACK 1\nB 0 0 0 1 f f.c 1 0 0 0 0 0 0 0 extra\n"},
		{"bad ranks", "#PERFTRACK 1\n#meta ranks=abc\n"},
		{"unterminated quote", "#PERFTRACK 1\n#meta app=\"oops\n"},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.input)); err == nil {
			t.Errorf("%s: Read accepted malformed input", c.name)
		}
	}
}

func TestCodecIgnoresUnknownDirectives(t *testing.T) {
	input := "#PERFTRACK 1\n#meta app=x ranks=1 future=stuff\n#fancy new directive\nB 0 0 0 1 f f.c 1 0 0 0 0 0 0 0\n"
	tr, err := Read(strings.NewReader(input))
	if err != nil {
		t.Fatalf("forward-compat parse failed: %v", err)
	}
	if tr.Meta.App != "x" || len(tr.Bursts) != 1 {
		t.Errorf("parsed %+v", tr)
	}
}

func TestCodecBlankLines(t *testing.T) {
	input := "#PERFTRACK 1\n\n\nB 0 0 0 1 f f.c 1 0 0 0 0 0 0 0\n\n"
	tr, err := Read(strings.NewReader(input))
	if err != nil || len(tr.Bursts) != 1 {
		t.Errorf("blank lines broke parsing: %v %+v", err, tr)
	}
}

func TestCodecCounterOrderHeader(t *testing.T) {
	// A reordered #counters header must assign values to the right slots.
	input := "#PERFTRACK 1\n#counters PAPI_TOT_CYC PAPI_TOT_INS\nB 0 0 0 1 f f.c 1 0 50 100\n"
	tr, err := Read(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	b := tr.Bursts[0]
	if b.Counters[metrics.CtrCycles] != 50 || b.Counters[metrics.CtrInstructions] != 100 {
		t.Errorf("counter reorder mishandled: %+v", b.Counters)
	}
}

// randomTrace builds a reproducible pseudo-random trace for property
// tests.
func randomTrace(seed uint64, n int) *Trace {
	rng := rand.New(rand.NewPCG(seed, 1))
	tr := &Trace{
		Meta: Metadata{
			App:   "fuzz",
			Label: "l",
			Ranks: 1 + rng.IntN(8),
		},
	}
	funcs := []string{"alpha", "beta", "with space", `qu"ote`, ""}
	for i := 0; i < n; i++ {
		b := Burst{
			Task:       rng.IntN(tr.Meta.Ranks),
			Thread:     rng.IntN(2),
			StartNS:    rng.Int64N(1e9),
			DurationNS: rng.Int64N(1e6),
			Phase:      rng.IntN(5),
			Stack: CallstackRef{
				Function: funcs[rng.IntN(len(funcs))],
				File:     "f.c",
				Line:     rng.IntN(1000),
			},
		}
		for c := 0; c < int(metrics.NumCounters); c++ {
			b.Counters[c] = float64(rng.Int64N(1e12))
		}
		tr.Bursts = append(tr.Bursts, b)
	}
	return tr
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 40)
		tr := randomTrace(seed, n)
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		want := tr.Clone()
		want.SortByTaskTime()
		return reflect.DeepEqual(got.Bursts, want.Bursts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkWrite(b *testing.B) {
	tr := randomTrace(1, 10_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRead(b *testing.B) {
	tr := randomTrace(1, 10_000)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
