package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"perftrack/internal/metrics"
)

func TestCSVRoundTrip(t *testing.T) {
	tr := sampleTrace()
	tr.Bursts[0].Counters[metrics.CtrInstructions] = 999
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Clone()
	want.SortByTaskTime()
	if !reflect.DeepEqual(got.Bursts, want.Bursts) {
		t.Errorf("csv round trip mismatch:\n got %+v\nwant %+v", got.Bursts, want.Bursts)
	}
}

func TestCSVHeader(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(buf.String(), "\n", 2)[0]
	for _, col := range []string{"task", "durationNs", "PAPI_TOT_INS"} {
		if !strings.Contains(first, col) {
			t.Errorf("header %q missing column %q", first, col)
		}
	}
}

func TestCSVFieldsWithCommas(t *testing.T) {
	tr := sampleTrace()
	tr.Bursts[0].Stack.Function = "foo, the bar"
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, b := range got.Bursts {
		if b.Stack.Function == "foo, the bar" {
			found = true
		}
	}
	if !found {
		t.Error("comma-containing field lost")
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []struct{ name, input string }{
		{"empty", ""},
		{"short header", "task,thread\n"},
		{"unknown counter", "task,thread,startNs,durationNs,function,file,line,phase,NOPE\n"},
		{"bad task", csvHeader() + "x,0,0,1,f,f.c,1,0" + zeros() + "\n"},
		{"bad counter value", csvHeader() + "0,0,0,1,f,f.c,1,0,a,0,0,0,0,0\n"},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.input)); err == nil {
			t.Errorf("%s: accepted malformed CSV", c.name)
		}
	}
}

func csvHeader() string {
	h := "task,thread,startNs,durationNs,function,file,line,phase"
	for c := metrics.Counter(0); c < metrics.NumCounters; c++ {
		h += "," + c.String()
	}
	return h + "\n"
}

func zeros() string {
	return strings.Repeat(",0", int(metrics.NumCounters))
}
