package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"perftrack/internal/metrics"
)

// The perftrack trace format is a line-oriented text format:
//
//	#PERFTRACK 1
//	#meta app=WRF label=128-tasks ranks=128 tasksPerNode=4 machine=MareNostrum compiler=gfortran
//	#param class=B
//	#counters PAPI_TOT_INS PAPI_TOT_CYC PAPI_L1_DCM PAPI_L2_DCM PAPI_TLB_DM PAPI_LST_INS
//	B <task> <thread> <startNS> <durNS> <func> <file> <line> <phase> <c0> <c1> ...
//
// String fields are quoted with strconv.Quote when they contain spaces or
// are empty; otherwise they appear bare. The format is deliberately simple
// enough to inspect with standard shell tools and diff across runs.

const (
	formatMagic   = "#PERFTRACK"
	formatVersion = 1
	// maxLineBytes caps one input line (4 MiB, the historical scanner
	// buffer bound). Longer lines are quarantined in lenient mode and
	// abort with a line number in strict mode; either way decoding no
	// longer dies mid-file without saying where.
	maxLineBytes = 1 << 22
)

// readLimitedLine reads one newline-terminated line of at most
// maxLineBytes bytes from br. Oversized lines are consumed to their end
// and reported tooLong with the content discarded, so the caller can
// quarantine them and keep going. The returned error is io.EOF exactly
// when the input is exhausted (possibly with a final unterminated line).
func readLimitedLine(br *bufio.Reader) (line string, tooLong bool, err error) {
	var buf []byte
	for {
		frag, err := br.ReadSlice('\n')
		if err == bufio.ErrBufferFull {
			buf = append(buf, frag...)
			if len(buf) > maxLineBytes {
				// Drain the remainder of the oversized line.
				for {
					_, derr := br.ReadSlice('\n')
					if derr == bufio.ErrBufferFull {
						continue
					}
					return "", true, derr
				}
			}
			continue
		}
		if err != nil && err != io.EOF {
			return "", false, err
		}
		buf = append(buf, frag...)
		if len(buf) > maxLineBytes {
			return "", true, err
		}
		return string(buf), false, err
	}
}

// Write serialises the trace to w in the perftrack text format. Bursts are
// written in (task, time) order to make output deterministic. Every write
// is checked so a full disk or closed pipe surfaces as an error instead of
// a silently truncated file.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s %d\n", formatMagic, formatVersion); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "#meta app=%s label=%s ranks=%d tasksPerNode=%d machine=%s compiler=%s\n",
		quoteField(t.Meta.App), quoteField(t.Meta.Label), t.Meta.Ranks,
		t.Meta.TasksPerNode, quoteField(t.Meta.Machine), quoteField(t.Meta.Compiler)); err != nil {
		return err
	}
	keys := make([]string, 0, len(t.Meta.Params))
	for k := range t.Meta.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(bw, "#param %s=%s\n", quoteField(k), quoteField(t.Meta.Params[k])); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprint(bw, "#counters"); err != nil {
		return err
	}
	for c := metrics.Counter(0); c < metrics.NumCounters; c++ {
		if _, err := fmt.Fprintf(bw, " %s", c); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(bw); err != nil {
		return err
	}

	sorted := t.Clone()
	sorted.SortByTaskTime()
	for _, b := range sorted.Bursts {
		if _, err := fmt.Fprintf(bw, "B %d %d %d %d %s %s %d %d",
			b.Task, b.Thread, b.StartNS, b.DurationNS,
			quoteField(b.Stack.Function), quoteField(b.Stack.File), b.Stack.Line, b.Phase); err != nil {
			return err
		}
		for _, v := range b.Counters {
			if _, err := fmt.Fprintf(bw, " %s", formatCount(v)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile serialises the trace to the named file.
func WriteFile(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// DecodeOptions selects between strict decoding (the historical
// all-or-nothing behaviour of Read) and lenient decoding, which
// quarantines malformed lines with line-numbered diagnostics and keeps
// going — the mode real, partially corrupted traces need. The zero value
// is maximally lenient.
type DecodeOptions struct {
	// Strict aborts at the first malformed line. False quarantines
	// malformed lines instead.
	Strict bool
	// MaxBadLines bounds how many malformed lines lenient mode tolerates
	// before giving up on the input entirely (0 = unlimited). Ignored in
	// strict mode.
	MaxBadLines int
}

// BadLine records one quarantined input line.
type BadLine struct {
	// Line is the 1-based line number in the input.
	Line int
	// Reason describes the parse failure, naming the offending field.
	Reason string
}

// DecodeDiagnostics reports what lenient decoding had to skip. For the
// binary columnar format, BadLine entries carry section numbers instead
// of line numbers.
type DecodeDiagnostics struct {
	// BadLines lists the quarantined lines (text) or sections (colbin)
	// in input order.
	BadLines []BadLine
	// MissingHeader is set when no #PERFTRACK magic line was seen.
	MissingHeader bool
	// Truncated is set when a colbin input ends without its end marker:
	// the decoded bursts are a clean prefix of a torn file.
	Truncated bool
}

// Skipped returns the number of quarantined lines.
func (d DecodeDiagnostics) Skipped() int { return len(d.BadLines) }

// Summary renders a short human-readable account, or "" when clean.
func (d DecodeDiagnostics) Summary() string {
	if len(d.BadLines) == 0 && !d.MissingHeader && !d.Truncated {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "skipped %d malformed line(s)", len(d.BadLines))
	if d.MissingHeader {
		sb.WriteString(", missing #PERFTRACK header")
	}
	if d.Truncated {
		sb.WriteString(", input truncated")
	}
	for i, bl := range d.BadLines {
		if i == 3 {
			fmt.Fprintf(&sb, "; (%d more)", len(d.BadLines)-i)
			break
		}
		fmt.Fprintf(&sb, "; line %d: %s", bl.Line, bl.Reason)
	}
	return sb.String()
}

// Read parses a trace in the perftrack text format, strictly: the first
// malformed line aborts the decode.
func Read(r io.Reader) (*Trace, error) {
	t, _, err := ReadWith(r, DecodeOptions{Strict: true})
	return t, err
}

// ReadWith parses a trace according to opts. In lenient mode malformed
// lines are quarantined into the returned diagnostics instead of failing
// the decode; an error is still returned for I/O failures, for inputs
// whose bad-line count exceeds opts.MaxBadLines, and for every malformed
// line in strict mode.
func ReadWith(r io.Reader, opts DecodeOptions) (*Trace, DecodeDiagnostics, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	t := &Trace{}
	var diag DecodeDiagnostics
	lineNo := 0
	counterOrder := defaultCounterOrder()
	sawMagic := false
	// quarantine routes one malformed line: strict mode fails, lenient
	// mode records it (and gives up past MaxBadLines).
	quarantine := func(err error) error {
		if opts.Strict {
			return fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		diag.BadLines = append(diag.BadLines, BadLine{Line: lineNo, Reason: err.Error()})
		if opts.MaxBadLines > 0 && len(diag.BadLines) > opts.MaxBadLines {
			return fmt.Errorf("trace: giving up after %d malformed lines (last: line %d: %v)",
				len(diag.BadLines), lineNo, err)
		}
		return nil
	}
	for {
		raw, tooLong, rerr := readLimitedLine(br)
		if rerr != nil && rerr != io.EOF {
			return nil, diag, rerr
		}
		atEOF := rerr == io.EOF
		if atEOF && raw == "" && !tooLong {
			break
		}
		lineNo++
		if tooLong {
			// An oversized line is one bad record, not a reason to drop
			// the rest of the trace: quarantine it in lenient mode, keep
			// the line-numbered abort in strict mode.
			if qerr := quarantine(fmt.Errorf("line exceeds %d-byte cap", maxLineBytes)); qerr != nil {
				return nil, diag, qerr
			}
			if atEOF {
				break
			}
			continue
		}
		line := strings.TrimSpace(raw)
		if line == "" {
			if atEOF {
				break
			}
			continue
		}
		var err error
		switch {
		case strings.HasPrefix(line, formatMagic):
			fields := strings.Fields(line)
			if len(fields) != 2 {
				err = fmt.Errorf("malformed magic %q", line)
				break
			}
			v, verr := strconv.Atoi(fields[1])
			if verr != nil || v != formatVersion {
				err = fmt.Errorf("unsupported version %q", fields[1])
				break
			}
			sawMagic = true
		case strings.HasPrefix(line, "#meta"):
			err = parseMeta(line, &t.Meta)
		case strings.HasPrefix(line, "#param"):
			k, v, perr := parseParam(line)
			if perr != nil {
				err = perr
				break
			}
			if t.Meta.Params == nil {
				t.Meta.Params = map[string]string{}
			}
			t.Meta.Params[k] = v
		case strings.HasPrefix(line, "#counters"):
			order, cerr := parseCounters(line)
			if cerr != nil {
				err = cerr
				break
			}
			counterOrder = order
		case strings.HasPrefix(line, "#"):
			// Unknown comment/directive: ignore for forward compatibility.
		case strings.HasPrefix(line, "B "):
			b, berr := parseBurst(line, counterOrder)
			if berr != nil {
				err = berr
				break
			}
			t.Bursts = append(t.Bursts, b)
		default:
			err = fmt.Errorf("unrecognised record %q", line)
		}
		if err != nil {
			if qerr := quarantine(err); qerr != nil {
				return nil, diag, qerr
			}
		}
		if atEOF {
			break
		}
	}
	if !sawMagic {
		if opts.Strict {
			return nil, diag, fmt.Errorf("trace: missing %s header", formatMagic)
		}
		diag.MissingHeader = true
	}
	return t, diag, nil
}

// ReadFile parses the named trace file strictly.
func ReadFile(path string) (*Trace, error) {
	t, _, err := ReadFileWith(path, DecodeOptions{Strict: true})
	return t, err
}

// ReadFileWith parses the named trace file according to opts.
func ReadFileWith(path string, opts DecodeOptions) (*Trace, DecodeDiagnostics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, DecodeDiagnostics{}, err
	}
	defer f.Close()
	t, diag, err := ReadWith(f, opts)
	if err != nil {
		return nil, diag, fmt.Errorf("%s: %w", path, err)
	}
	return t, diag, nil
}

func defaultCounterOrder() []metrics.Counter {
	order := make([]metrics.Counter, metrics.NumCounters)
	for i := range order {
		order[i] = metrics.Counter(i)
	}
	return order
}

// quoteField emits s bare when it is a single printable token, quoted
// otherwise, so the file remains whitespace-splittable.
func quoteField(s string) string {
	if s == "" || strings.ContainsAny(s, " \t\"\\") {
		return strconv.Quote(s)
	}
	return s
}

// fieldScanner splits a line into tokens honouring quoted fields.
type fieldScanner struct {
	rest string
}

func (fs *fieldScanner) next() (string, error) {
	fs.rest = strings.TrimLeft(fs.rest, " \t")
	if fs.rest == "" {
		return "", io.EOF
	}
	if fs.rest[0] == '"' {
		// Quoted field: find the closing quote honouring escapes.
		for i := 1; i < len(fs.rest); i++ {
			if fs.rest[i] == '\\' {
				i++
				continue
			}
			if fs.rest[i] == '"' {
				tok := fs.rest[:i+1]
				fs.rest = fs.rest[i+1:]
				return strconv.Unquote(tok)
			}
		}
		return "", fmt.Errorf("unterminated quoted field %q", fs.rest)
	}
	i := strings.IndexAny(fs.rest, " \t")
	if i < 0 {
		tok := fs.rest
		fs.rest = ""
		return tok, nil
	}
	tok := fs.rest[:i]
	fs.rest = fs.rest[i:]
	return tok, nil
}

func (fs *fieldScanner) nextInt() (int, error) {
	tok, err := fs.next()
	if err == io.EOF {
		return 0, fmt.Errorf("missing value")
	}
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(tok)
	if err != nil {
		return 0, fmt.Errorf("invalid integer %q", tok)
	}
	return n, nil
}

func (fs *fieldScanner) nextInt64() (int64, error) {
	tok, err := fs.next()
	if err == io.EOF {
		return 0, fmt.Errorf("missing value")
	}
	if err != nil {
		return 0, err
	}
	n, err := strconv.ParseInt(tok, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid integer %q", tok)
	}
	return n, nil
}

func (fs *fieldScanner) nextFloat() (float64, error) {
	tok, err := fs.next()
	if err == io.EOF {
		return 0, fmt.Errorf("missing value")
	}
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid number %q", tok)
	}
	return v, nil
}

// nextKV reads one key=value pair where the value (and in #param lines the
// key) may be a quoted field. It returns io.EOF when the line is
// exhausted.
func (fs *fieldScanner) nextKV() (key, val string, err error) {
	fs.rest = strings.TrimLeft(fs.rest, " \t")
	if fs.rest == "" {
		return "", "", io.EOF
	}
	// Key: possibly quoted, terminated by '='.
	if fs.rest[0] == '"' {
		key, err = fs.next()
		if err != nil {
			return "", "", err
		}
		if fs.rest == "" || fs.rest[0] != '=' {
			return "", "", fmt.Errorf("malformed key=value near %q", fs.rest)
		}
		fs.rest = fs.rest[1:]
	} else {
		eq := strings.IndexByte(fs.rest, '=')
		sp := strings.IndexAny(fs.rest, " \t")
		if eq < 0 || (sp >= 0 && sp < eq) {
			return "", "", fmt.Errorf("malformed key=value near %q", fs.rest)
		}
		key = fs.rest[:eq]
		fs.rest = fs.rest[eq+1:]
	}
	// Value: a quoted or bare field starting immediately after '='.
	if fs.rest == "" || fs.rest[0] == ' ' || fs.rest[0] == '\t' {
		return key, "", nil
	}
	val, err = fs.next()
	if err == io.EOF {
		return key, "", nil
	}
	return key, val, err
}

func parseMeta(line string, m *Metadata) error {
	fs := &fieldScanner{rest: strings.TrimPrefix(line, "#meta")}
	for {
		k, v, err := fs.nextKV()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		switch k {
		case "app":
			m.App = v
		case "label":
			m.Label = v
		case "ranks":
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("ranks: invalid integer %q", v)
			}
			m.Ranks = n
		case "tasksPerNode":
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("tasksPerNode: invalid integer %q", v)
			}
			m.TasksPerNode = n
		case "machine":
			m.Machine = v
		case "compiler":
			m.Compiler = v
		default:
			// Ignore unknown keys for forward compatibility.
		}
	}
}

func parseParam(line string) (key, val string, err error) {
	fs := &fieldScanner{rest: strings.TrimPrefix(line, "#param")}
	key, val, err = fs.nextKV()
	if err != nil {
		return "", "", fmt.Errorf("malformed param line: %v", err)
	}
	return key, val, nil
}

func parseCounters(line string) ([]metrics.Counter, error) {
	names := strings.Fields(line)[1:]
	order := make([]metrics.Counter, len(names))
	for i, n := range names {
		c, ok := metrics.CounterByName(n)
		if !ok {
			return nil, fmt.Errorf("unknown counter %q", n)
		}
		order[i] = c
	}
	return order, nil
}

func parseBurst(line string, order []metrics.Counter) (Burst, error) {
	fs := &fieldScanner{rest: strings.TrimPrefix(line, "B ")}
	var b Burst
	var err error
	if b.Task, err = fs.nextInt(); err != nil {
		return b, fmt.Errorf("task: %w", err)
	}
	if b.Thread, err = fs.nextInt(); err != nil {
		return b, fmt.Errorf("thread: %w", err)
	}
	if b.StartNS, err = fs.nextInt64(); err != nil {
		return b, fmt.Errorf("start: %w", err)
	}
	if b.DurationNS, err = fs.nextInt64(); err != nil {
		return b, fmt.Errorf("duration: %w", err)
	}
	if b.Stack.Function, err = fs.next(); err != nil {
		return b, fmt.Errorf("function: %w", fieldErr(err))
	}
	if b.Stack.File, err = fs.next(); err != nil {
		return b, fmt.Errorf("file: %w", fieldErr(err))
	}
	if b.Stack.Line, err = fs.nextInt(); err != nil {
		return b, fmt.Errorf("line: %w", err)
	}
	if b.Phase, err = fs.nextInt(); err != nil {
		return b, fmt.Errorf("phase: %w", err)
	}
	for _, c := range order {
		v, err := fs.nextFloat()
		if err != nil {
			return b, fmt.Errorf("counter %s: %w", c, err)
		}
		b.Counters[c] = v
	}
	if _, err := fs.next(); err != io.EOF {
		return b, fmt.Errorf("trailing fields in burst record")
	}
	return b, nil
}

// fieldErr converts the scanner's io.EOF sentinel into a readable
// message for error chains shown to users.
func fieldErr(err error) error {
	if err == io.EOF {
		return fmt.Errorf("missing value")
	}
	return err
}

// formatCount renders a counter value compactly: integral values print
// without a fractional part.
func formatCount(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
