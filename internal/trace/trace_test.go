package trace

import (
	"strings"
	"testing"

	"perftrack/internal/metrics"
)

func burst(task int, start, dur int64, fn string, line, phase int) Burst {
	return Burst{
		Task:       task,
		StartNS:    start,
		DurationNS: dur,
		Stack:      CallstackRef{Function: fn, File: fn + ".f90", Line: line},
		Phase:      phase,
	}
}

func sampleTrace() *Trace {
	t := &Trace{
		Meta: Metadata{
			App: "demo", Label: "run-1", Ranks: 2, TasksPerNode: 2,
			Machine: "TestBox", Compiler: "gfortran",
			Params: map[string]string{"class": "A"},
		},
	}
	t.Bursts = []Burst{
		burst(0, 0, 100, "a", 1, 1),
		burst(0, 150, 50, "b", 2, 2),
		burst(1, 0, 120, "a", 1, 1),
		burst(1, 150, 60, "b", 2, 2),
	}
	return t
}

func TestBurstEndNSAndSample(t *testing.T) {
	b := burst(0, 10, 5, "f", 1, 1)
	if b.EndNS() != 15 {
		t.Errorf("EndNS = %d", b.EndNS())
	}
	b.Counters[metrics.CtrInstructions] = 42
	s := b.Sample()
	if s.DurationNS != 5 || s.Counters[metrics.CtrInstructions] != 42 {
		t.Errorf("Sample = %+v", s)
	}
}

func TestCallstackRefString(t *testing.T) {
	r := CallstackRef{Function: "solve_x", File: "solver.f90", Line: 2472}
	if got := r.String(); got != "solve_x (solver.f90:2472)" {
		t.Errorf("String = %q", got)
	}
	if !(CallstackRef{}).IsZero() {
		t.Error("zero ref should be zero")
	}
	if (CallstackRef{}).String() != "<no-callstack>" {
		t.Error("zero ref string")
	}
	if r.IsZero() {
		t.Error("non-zero ref reported zero")
	}
}

func TestSortByTaskTime(t *testing.T) {
	tr := sampleTrace()
	// Shuffle deliberately.
	tr.Bursts[0], tr.Bursts[3] = tr.Bursts[3], tr.Bursts[0]
	tr.SortByTaskTime()
	prev := tr.Bursts[0]
	for _, b := range tr.Bursts[1:] {
		if b.Task < prev.Task || (b.Task == prev.Task && b.StartNS < prev.StartNS) {
			t.Fatalf("not sorted: %+v after %+v", b, prev)
		}
		prev = b
	}
}

func TestSortByTime(t *testing.T) {
	tr := sampleTrace()
	tr.SortByTime()
	prev := tr.Bursts[0]
	for _, b := range tr.Bursts[1:] {
		if b.StartNS < prev.StartNS {
			t.Fatalf("not time sorted")
		}
		prev = b
	}
}

func TestTotalDurationSpanTasks(t *testing.T) {
	tr := sampleTrace()
	if got := tr.TotalDuration(); got != 330 {
		t.Errorf("TotalDuration = %d", got)
	}
	start, end := tr.Span()
	if start != 0 || end != 210 {
		t.Errorf("Span = %d..%d", start, end)
	}
	if tr.Tasks() != 2 {
		t.Errorf("Tasks = %d", tr.Tasks())
	}
	empty := &Trace{}
	s, e := empty.Span()
	if s != 0 || e != 0 {
		t.Error("empty span should be 0,0")
	}
}

func TestClone(t *testing.T) {
	tr := sampleTrace()
	cl := tr.Clone()
	cl.Bursts[0].Task = 99
	cl.Meta.Params["class"] = "B"
	if tr.Bursts[0].Task == 99 {
		t.Error("Clone shares burst storage")
	}
	if tr.Meta.Params["class"] == "B" {
		t.Error("Clone shares params map")
	}
}

func TestFilterMinDuration(t *testing.T) {
	tr := sampleTrace()
	f := tr.FilterMinDuration(100)
	if len(f.Bursts) != 2 {
		t.Errorf("kept %d bursts, want 2", len(f.Bursts))
	}
	for _, b := range f.Bursts {
		if b.DurationNS < 100 {
			t.Errorf("kept a short burst: %+v", b)
		}
	}
}

func TestFilterTopDuration(t *testing.T) {
	tr := sampleTrace() // durations 100,50,120,60 — total 330
	f := tr.FilterTopDuration(0.5)
	// Longest bursts until >= 165ns: 120+100 = 220.
	if len(f.Bursts) != 2 {
		t.Errorf("kept %d bursts, want 2", len(f.Bursts))
	}
	if f.TotalDuration() < 165 {
		t.Errorf("kept time %d below budget", f.TotalDuration())
	}
	// frac >= 1 keeps everything.
	if got := tr.FilterTopDuration(1); len(got.Bursts) != 4 {
		t.Error("frac=1 should keep all")
	}
}

func TestTimeWindow(t *testing.T) {
	tr := sampleTrace()
	w := tr.TimeWindow(0, 100)
	if len(w.Bursts) != 2 {
		t.Errorf("window kept %d, want 2", len(w.Bursts))
	}
	for _, b := range w.Bursts {
		if b.StartNS >= 100 {
			t.Errorf("burst outside window: %+v", b)
		}
	}
}

func TestSplitWindows(t *testing.T) {
	tr := sampleTrace()
	ws := tr.SplitWindows(2)
	if len(ws) != 2 {
		t.Fatalf("windows = %d", len(ws))
	}
	total := 0
	for i, w := range ws {
		total += len(w.Bursts)
		want := "run-1/w" + string(rune('1'+i))
		if w.Meta.Label != want {
			t.Errorf("window %d label = %q, want %q", i, w.Meta.Label, want)
		}
	}
	if total != len(tr.Bursts) {
		t.Errorf("windows lost bursts: %d of %d", total, len(tr.Bursts))
	}
	// n <= 1 returns a single clone.
	if got := tr.SplitWindows(1); len(got) != 1 || len(got[0].Bursts) != 4 {
		t.Error("SplitWindows(1) should return the whole trace")
	}
}

func TestPerTaskSequences(t *testing.T) {
	tr := sampleTrace()
	seqs := tr.PerTaskSequences()
	if len(seqs) != 2 {
		t.Fatalf("tasks = %d", len(seqs))
	}
	for task, seq := range seqs {
		prev := int64(-1)
		for _, bi := range seq {
			b := tr.Bursts[bi]
			if b.Task != task {
				t.Errorf("sequence of task %d contains burst of task %d", task, b.Task)
			}
			if b.StartNS < prev {
				t.Errorf("sequence of task %d out of order", task)
			}
			prev = b.StartNS
		}
	}
}

func TestStacks(t *testing.T) {
	tr := sampleTrace()
	st := tr.Stacks()
	if len(st) != 2 {
		t.Fatalf("distinct stacks = %d", len(st))
	}
	for ref, n := range st {
		if n != 2 {
			t.Errorf("stack %v count = %d, want 2", ref, n)
		}
	}
}

func TestValidate(t *testing.T) {
	ok := sampleTrace()
	if err := ok.Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Trace)
	}{
		{"negative duration", func(tr *Trace) { tr.Bursts[0].DurationNS = -1 }},
		{"negative start", func(tr *Trace) { tr.Bursts[0].StartNS = -1 }},
		{"negative task", func(tr *Trace) { tr.Bursts[0].Task = -1 }},
		{"task out of range", func(tr *Trace) { tr.Bursts[0].Task = 5 }},
	}
	for _, c := range cases {
		tr := sampleTrace()
		c.mutate(tr)
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid trace", c.name)
		}
	}
}

func TestSummary(t *testing.T) {
	s := sampleTrace().Summary()
	if s == "" {
		t.Fatal("empty summary")
	}
	for _, want := range []string{"demo", "run-1", "4 bursts", "2 tasks"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}
