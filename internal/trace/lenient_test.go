package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// encodeSample serialises the shared sample trace.
func encodeSample(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// injectBadLines splices malformed records into an encoded trace after
// the header, returning the new text and the count of injected lines.
func injectBadLines(enc string, bad ...string) string {
	lines := strings.Split(enc, "\n")
	// Insert after the #counters header so the bad lines sit between
	// valid burst records.
	for i, l := range lines {
		if strings.HasPrefix(l, "#counters") {
			rest := append([]string{}, lines[i+1:]...)
			return strings.Join(append(append(lines[:i+1:i+1], bad...), rest...), "\n")
		}
	}
	return enc
}

func TestLenientQuarantinesBadLines(t *testing.T) {
	enc := injectBadLines(encodeSample(t),
		"B 0 0 nonsense",             // invalid start field
		"Z what is this",             // unrecognised record
		"B 9 0 0 10 f f.c 1 0 1 2 3", // short counter vector
	)
	tr, diag, err := ReadWith(strings.NewReader(enc), DecodeOptions{Strict: false})
	if err != nil {
		t.Fatalf("lenient decode failed: %v", err)
	}
	if len(tr.Bursts) != len(sampleTrace().Bursts) {
		t.Errorf("want %d healthy bursts, got %d", len(sampleTrace().Bursts), len(tr.Bursts))
	}
	if diag.Skipped() != 3 {
		t.Fatalf("want 3 quarantined lines, got %d: %+v", diag.Skipped(), diag.BadLines)
	}
	// Line numbers are 1-based positions in the actual input.
	if diag.BadLines[0].Line != 5 || diag.BadLines[2].Line != 7 {
		t.Errorf("bad line numbers: %+v", diag.BadLines)
	}
	if !strings.Contains(diag.BadLines[0].Reason, "start") {
		t.Errorf("first reason should name the start field: %q", diag.BadLines[0].Reason)
	}
	if !strings.Contains(diag.BadLines[2].Reason, "counter") {
		t.Errorf("third reason should name the counter field: %q", diag.BadLines[2].Reason)
	}
	if s := diag.Summary(); !strings.Contains(s, "skipped 3") {
		t.Errorf("summary: %q", s)
	}
}

func TestStrictErrorNamesLineAndField(t *testing.T) {
	enc := injectBadLines(encodeSample(t), "B 0 0 12 oops f f.c 1 0 1 2 3 4 5 6")
	_, err := Read(strings.NewReader(enc))
	if err == nil {
		t.Fatal("strict decode accepted a malformed duration")
	}
	msg := err.Error()
	if !strings.Contains(msg, "line 5") {
		t.Errorf("error should carry the line number: %q", msg)
	}
	if !strings.Contains(msg, "duration") || !strings.Contains(msg, `"oops"`) {
		t.Errorf("error should name the offending field and token: %q", msg)
	}
}

func TestMaxBadLines(t *testing.T) {
	enc := injectBadLines(encodeSample(t), "junk 1", "junk 2", "junk 3")
	_, diag, err := ReadWith(strings.NewReader(enc), DecodeOptions{MaxBadLines: 2})
	if err == nil {
		t.Fatal("want an error past MaxBadLines")
	}
	if !strings.Contains(err.Error(), "giving up") {
		t.Errorf("error: %v", err)
	}
	if diag.Skipped() != 3 {
		t.Errorf("diagnostics should still list the bad lines seen: %d", diag.Skipped())
	}
	// Unlimited tolerance is the zero value.
	_, diag, err = ReadWith(strings.NewReader(enc), DecodeOptions{})
	if err != nil || diag.Skipped() != 3 {
		t.Errorf("unlimited lenient decode: err=%v skipped=%d", err, diag.Skipped())
	}
}

func TestMissingHeader(t *testing.T) {
	enc := encodeSample(t)
	noMagic := strings.Join(strings.Split(enc, "\n")[1:], "\n")
	if _, err := Read(strings.NewReader(noMagic)); err == nil {
		t.Error("strict decode accepted a header-less trace")
	}
	tr, diag, err := ReadWith(strings.NewReader(noMagic), DecodeOptions{})
	if err != nil {
		t.Fatalf("lenient decode failed: %v", err)
	}
	if !diag.MissingHeader {
		t.Error("diagnostics should flag the missing header")
	}
	if len(tr.Bursts) != len(sampleTrace().Bursts) {
		t.Errorf("bursts should still parse: got %d", len(tr.Bursts))
	}
	if s := diag.Summary(); !strings.Contains(s, "missing #PERFTRACK header") {
		t.Errorf("summary: %q", s)
	}
}

// failWriter fails every write after the first n bytes.
type failWriter struct {
	n       int
	written int
}

var errDiskFull = errors.New("disk full")

func (w *failWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		can := w.n - w.written
		if can < 0 {
			can = 0
		}
		w.written += can
		return can, errDiskFull
	}
	w.written += len(p)
	return len(p), nil
}

func TestWritePropagatesErrors(t *testing.T) {
	// A trace big enough to overflow bufio's 4KB buffer mid-body, plus a
	// limit small enough to also fail during the header flush: every
	// write site must surface the error.
	big := sampleTrace()
	for i := 0; i < 500; i++ {
		big.Bursts = append(big.Bursts, burst(i%4, int64(i)*1000, 500, "f", 1, 1))
	}
	for _, limit := range []int{0, 10, 4096, 8192} {
		err := Write(&failWriter{n: limit}, big)
		if !errors.Is(err, errDiskFull) {
			t.Errorf("limit %d: want disk-full error, got %v", limit, err)
		}
	}
	// Sanity: an unbounded writer succeeds.
	if err := Write(&bytes.Buffer{}, big); err != nil {
		t.Errorf("unbounded write failed: %v", err)
	}
}
