package trace

import (
	"encoding/hex"
	"math"
	"testing"

	"perftrack/internal/metrics"
)

// Edge-case pinning for the canonical hash. The perfdb store keys results
// by this fingerprint across daemon restarts and releases, so the hash is
// a persistent on-disk format: any encoding change silently orphans every
// stored result. These goldens freeze the exact bytes for the float
// encodings most likely to drift (NaN payloads, signed zero, subnormals)
// and the empty-input degenerate cases. If one of these tests fails, the
// hash changed — that needs a key-version bump, not a golden update.

// edgeTrace is a minimal fixture whose first counter carries the edge
// value under test.
func edgeTrace(c0 float64) *Trace {
	return &Trace{
		Meta: Metadata{App: "edge", Label: "e1", Ranks: 1},
		Bursts: []Burst{{Task: 0, StartNS: 1, DurationNS: 2,
			Stack:    CallstackRef{Function: "f", File: "f.c", Line: 1},
			Counters: metrics.CounterVector{c0, 2, 3, 4, 5, 6}}},
	}
}

// TestCanonicalHashGoldenEdgeValues pins the hash for IEEE-754 edge
// values. Floats are hashed by bit pattern, so every one of these is a
// distinct input: the two NaNs differ only in payload bits, the zeros
// only in sign, and the subnormal is the smallest representable double.
func TestCanonicalHashGoldenEdgeValues(t *testing.T) {
	cases := []struct {
		name string
		c0   float64
		want string
	}{
		{"one", 1.0, "66d95a7aec48c68510cdbe3ead0b0d7b9c6ecba7353a89bf3c89e30ef114cde0"},
		{"qnan", math.NaN(), "aae0a2e9dd654486c24441627532aed7b530c18acf1fa51600d202326545cdb9"},
		{"nan-payload", math.Float64frombits(0x7ff8000000000000 | 0xbeef), "067f5ebefdc5d2fe6978a6f32d74c8f069da2354b090985f93977dd0bac209c2"},
		{"pos-zero", 0.0, "20dac07746deeac342a0d4d4264a33e6c553dfb0f28e0332d9707877da1b99f6"},
		{"neg-zero", math.Copysign(0, -1), "35688c56fb5470a80ee33794d35db78c98f55f3c76d78e1439029dc3d51d9bb5"},
		{"subnormal-min", math.Float64frombits(1), "93b77896b16700f5bc81e443c5765db88983cf82c58927993b3fb90d554db2ac"},
		{"normal-min", math.Float64frombits(0x0010000000000000), "c9a49598c128150cfca8dbc15b6875e47021d10a2aa7aaee70f8a238e3fece7d"},
	}
	seen := map[string]string{}
	for _, tc := range cases {
		h := edgeTrace(tc.c0).CanonicalHash()
		got := hex.EncodeToString(h[:])
		if got != tc.want {
			t.Errorf("%s: hash %s, want pinned %s", tc.name, got, tc.want)
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("%s collides with %s", tc.name, prev)
		}
		seen[got] = tc.name
	}
}

// TestCanonicalHashNaNPayloadsDistinguish: two NaNs with different
// payload bits are different inputs (bit-pattern hashing), while the
// same NaN hashes identically across calls.
func TestCanonicalHashNaNPayloadsDistinguish(t *testing.T) {
	a := edgeTrace(math.Float64frombits(0x7ff8000000000001))
	b := edgeTrace(math.Float64frombits(0x7ff8000000000002))
	if a.CanonicalHash() == b.CanonicalHash() {
		t.Error("NaNs with distinct payloads hash equal")
	}
	if a.CanonicalHash() != edgeTrace(math.Float64frombits(0x7ff8000000000001)).CanonicalHash() {
		t.Error("identical NaN payload hashes unstable")
	}
}

// TestCanonicalHashEmptyVsMissingBursts: a nil burst slice and an empty
// one are the same canonical input (both encode a zero count) — pinned,
// because store keys must not depend on which of the two a decoder
// happens to produce.
func TestCanonicalHashEmptyVsMissingBursts(t *testing.T) {
	const want = "154b57f4d4788ef0fbc189c284b7a479c6d84b8e2b22e21ab790ee6dc178641f"
	nilBursts := &Trace{Meta: Metadata{App: "edge", Label: "e1", Ranks: 1}}
	emptyBursts := &Trace{Meta: Metadata{App: "edge", Label: "e1", Ranks: 1}, Bursts: []Burst{}}
	hn := nilBursts.CanonicalHash()
	he := emptyBursts.CanonicalHash()
	if hn != he {
		t.Error("nil and empty burst slices hash differently")
	}
	if got := hex.EncodeToString(hn[:]); got != want {
		t.Errorf("empty-trace hash %s, want pinned %s", got, want)
	}
}

// TestHashSequenceEmptyPinned: the empty sequence has its own pinned
// fingerprint, identical for nil and empty slices and distinct from any
// member hash.
func TestHashSequenceEmptyPinned(t *testing.T) {
	const want = "4e14be57bfa62caae977154a9154842726cc261aa226e50063720a30928b00a8"
	hn := HashSequence(nil)
	he := HashSequence([]*Trace{})
	if hn != he {
		t.Error("nil and empty sequences hash differently")
	}
	if got := hex.EncodeToString(hn[:]); got != want {
		t.Errorf("empty-sequence hash %s, want pinned %s", got, want)
	}
	one := HashSequence([]*Trace{edgeTrace(1)})
	if one == hn {
		t.Error("one-trace sequence collides with the empty sequence")
	}
}
