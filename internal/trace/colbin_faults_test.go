package trace_test

// Byte-level fault injection against the binary columnar codec, plus the
// colbin round-trip fuzz target. External test package because it drives
// internal/trace through internal/faults, which imports internal/trace.

import (
	"reflect"
	"testing"

	"perftrack/internal/faults"
	"perftrack/internal/trace"
)

// TestColbinFaultInjection is the corruption contract of the binary
// format: for every byte-level injector and severity, a strict decode of
// the corrupted encoding either fails loudly or yields the original trace
// bit for bit — never a silently different trace — and a lenient decode
// never panics, and either diagnoses the damage or recovers the original.
func TestColbinFaultInjection(t *testing.T) {
	orig := seedTrace()
	clean := trace.EncodeColbin(orig)
	for _, frac := range []float64{0.02, 0.1, 0.3, 0.6} {
		for _, inj := range faults.ByteInjectors(frac) {
			for seed := uint64(1); seed <= 10; seed++ {
				corrupt, rep := inj.ApplyBytes(clean, seed)

				got, err := trace.DecodeColbin(corrupt)
				if err == nil && !reflect.DeepEqual(got, orig) {
					t.Fatalf("%s frac=%g seed=%d: strict decode of %d-fault input silently differs",
						inj.Name(), frac, seed, rep.Faults)
				}

				lgot, diag, lerr := trace.DecodeColbinWith(corrupt, trace.DecodeOptions{})
				if lerr != nil {
					continue // header damage: loud failure is allowed
				}
				if diag.Skipped() == 0 && !diag.Truncated && !reflect.DeepEqual(lgot, orig) {
					t.Fatalf("%s frac=%g seed=%d: lenient decode reported clean but differs from input",
						inj.Name(), frac, seed)
				}
				// Surviving bursts must be an in-order subsequence of the
				// original: quarantine drops whole blocks, never reorders
				// or invents bursts.
				j := 0
				for i := range lgot.Bursts {
					for j < len(orig.Bursts) && !reflect.DeepEqual(lgot.Bursts[i], orig.Bursts[j]) {
						j++
					}
					if j == len(orig.Bursts) {
						t.Fatalf("%s frac=%g seed=%d: surviving burst %d not an in-order subsequence",
							inj.Name(), frac, seed, i)
					}
					j++
				}
			}
		}
	}
}

// FuzzColbinRoundTrip seeds valid encodings (clean and fault-injected)
// and checks the property that defines the codec: any input the strict
// decoder accepts re-encodes to something that decodes to the same trace.
// Byte equality is deliberately not required — the decoder accepts
// non-minimal varints the canonical encoder would never emit.
func FuzzColbinRoundTrip(f *testing.F) {
	clean := trace.EncodeColbin(seedTrace())
	f.Add(clean)
	f.Add(trace.EncodeColbin(&trace.Trace{Meta: trace.Metadata{App: "tiny"}}))
	f.Add([]byte(trace.ColbinMagic))
	for _, frac := range []float64{0.05, 0.25} {
		for _, inj := range faults.ByteInjectors(frac) {
			corrupt, _ := inj.ApplyBytes(clean, 1)
			f.Add(corrupt)
		}
	}
	f.Fuzz(func(t *testing.T, input []byte) {
		tr, err := trace.DecodeColbin(input)
		if err == nil {
			back, err := trace.DecodeColbin(trace.EncodeColbin(tr))
			if err != nil {
				t.Fatalf("re-encode of accepted input failed to decode: %v", err)
			}
			if !reflect.DeepEqual(back, tr) {
				t.Fatal("colbin round trip changed the trace")
			}
		}
		// Lenient must never panic on the same input, and whatever it
		// salvages must re-encode.
		ltr, _, lerr := trace.DecodeColbinWith(input, trace.DecodeOptions{})
		if lerr == nil {
			if _, err := trace.DecodeColbin(trace.EncodeColbin(ltr)); err != nil {
				t.Fatalf("lenient salvage is unserialisable: %v", err)
			}
		}
	})
}
