package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"perftrack/internal/metrics"
)

// WriteCSV exports the bursts as a flat CSV table (one row per burst) for
// spreadsheet/notebook interop. Columns: task, thread, startNs,
// durationNs, function, file, line, phase, then one column per hardware
// counter.
func WriteCSV(w io.Writer, t *Trace) error {
	cw := csv.NewWriter(w)
	header := []string{"task", "thread", "startNs", "durationNs", "function", "file", "line", "phase"}
	for c := metrics.Counter(0); c < metrics.NumCounters; c++ {
		header = append(header, c.String())
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	sorted := t.Clone()
	sorted.SortByTaskTime()
	row := make([]string, 0, len(header))
	for _, b := range sorted.Bursts {
		row = row[:0]
		row = append(row,
			strconv.Itoa(b.Task),
			strconv.Itoa(b.Thread),
			strconv.FormatInt(b.StartNS, 10),
			strconv.FormatInt(b.DurationNS, 10),
			b.Stack.Function,
			b.Stack.File,
			strconv.Itoa(b.Stack.Line),
			strconv.Itoa(b.Phase),
		)
		for _, v := range b.Counters {
			row = append(row, formatCount(v))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a table produced by WriteCSV. The trace metadata is not
// part of the CSV; callers set Meta themselves.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: csv header: %w", err)
	}
	const fixed = 8
	if len(header) < fixed {
		return nil, fmt.Errorf("trace: csv header too short: %v", header)
	}
	order := make([]metrics.Counter, 0, len(header)-fixed)
	for _, name := range header[fixed:] {
		c, ok := metrics.CounterByName(name)
		if !ok {
			return nil, fmt.Errorf("trace: csv: unknown counter column %q", name)
		}
		order = append(order, c)
	}
	t := &Trace{}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("trace: csv line %d: %d fields, want %d", line, len(rec), len(header))
		}
		var b Burst
		if b.Task, err = strconv.Atoi(rec[0]); err != nil {
			return nil, fmt.Errorf("trace: csv line %d task: %w", line, err)
		}
		if b.Thread, err = strconv.Atoi(rec[1]); err != nil {
			return nil, fmt.Errorf("trace: csv line %d thread: %w", line, err)
		}
		if b.StartNS, err = strconv.ParseInt(rec[2], 10, 64); err != nil {
			return nil, fmt.Errorf("trace: csv line %d start: %w", line, err)
		}
		if b.DurationNS, err = strconv.ParseInt(rec[3], 10, 64); err != nil {
			return nil, fmt.Errorf("trace: csv line %d duration: %w", line, err)
		}
		b.Stack.Function = rec[4]
		b.Stack.File = rec[5]
		if b.Stack.Line, err = strconv.Atoi(rec[6]); err != nil {
			return nil, fmt.Errorf("trace: csv line %d line: %w", line, err)
		}
		if b.Phase, err = strconv.Atoi(rec[7]); err != nil {
			return nil, fmt.Errorf("trace: csv line %d phase: %w", line, err)
		}
		for i, c := range order {
			v, err := strconv.ParseFloat(rec[fixed+i], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: csv line %d counter %s: %w", line, c, err)
			}
			b.Counters[c] = v
		}
		t.Bursts = append(t.Bursts, b)
	}
	return t, nil
}
