package trace

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"math"
	"sort"
)

// Content addressing: every trace has a canonical SHA-256 fingerprint
// covering exactly the information the analysis pipeline consumes — the
// metadata fields, the sorted parameter map and the burst sequence in its
// stored order. Two traces with equal hashes produce bit-identical
// pipeline results (the pipeline is deterministic in burst order), which
// is what makes the service's result cache sound: a cached result can be
// returned for any submission whose inputs hash to the same key.
//
// The encoding is length-prefixed and type-tagged so field values can
// never alias across boundaries ("ab"+"c" vs "a"+"bc"), and floats are
// hashed by their IEEE-754 bit patterns so -0, NaN payloads and subnormal
// values all distinguish.

// hashWriter accumulates canonical encodings into a hash.Hash.
type hashWriter struct {
	h   hash.Hash
	buf [8]byte
}

func (hw *hashWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(hw.buf[:], v)
	hw.h.Write(hw.buf[:])
}

func (hw *hashWriter) i64(v int64)   { hw.u64(uint64(v)) }
func (hw *hashWriter) f64(v float64) { hw.u64(math.Float64bits(v)) }
func (hw *hashWriter) str(s string)  { hw.u64(uint64(len(s))); hw.h.Write([]byte(s)) }
func (hw *hashWriter) tag(b byte)    { hw.h.Write([]byte{b}) }
func (hw *hashWriter) sum() [32]byte { var out [32]byte; hw.h.Sum(out[:0]); return out }

// CanonicalHash returns the SHA-256 fingerprint of the trace's canonical
// encoding. The hash is stable across processes and platforms and changes
// whenever any field the pipeline can observe changes.
func (t *Trace) CanonicalHash() [32]byte {
	hw := &hashWriter{h: sha256.New()}
	hw.tag('T')
	hw.str(t.Meta.App)
	hw.str(t.Meta.Label)
	hw.i64(int64(t.Meta.Ranks))
	hw.i64(int64(t.Meta.TasksPerNode))
	hw.str(t.Meta.Machine)
	hw.str(t.Meta.Compiler)
	keys := make([]string, 0, len(t.Meta.Params))
	for k := range t.Meta.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	hw.u64(uint64(len(keys)))
	for _, k := range keys {
		hw.str(k)
		hw.str(t.Meta.Params[k])
	}
	hw.u64(uint64(len(t.Bursts)))
	for _, b := range t.Bursts {
		hw.tag('B')
		hw.i64(int64(b.Task))
		hw.i64(int64(b.Thread))
		hw.i64(b.StartNS)
		hw.i64(b.DurationNS)
		hw.str(b.Stack.Function)
		hw.str(b.Stack.File)
		hw.i64(int64(b.Stack.Line))
		hw.i64(int64(b.Phase))
		for _, v := range b.Counters {
			hw.f64(v)
		}
	}
	return hw.sum()
}

// HashSequence combines the canonical hashes of a trace sequence into one
// fingerprint. Order matters: the pipeline's frame sequence is ordered,
// so [a, b] and [b, a] are different studies.
func HashSequence(ts []*Trace) [32]byte {
	hw := &hashWriter{h: sha256.New()}
	hw.tag('S')
	hw.u64(uint64(len(ts)))
	for _, t := range ts {
		h := t.CanonicalHash()
		hw.h.Write(h[:])
	}
	return hw.sum()
}
