package trace

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// oversizedInput builds a valid trace text with one absurdly long line
// spliced between two good bursts.
func oversizedInput(tb testing.TB) ([]byte, int) {
	tb.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, sampleTrace()); err != nil {
		tb.Fatal(err)
	}
	lines := strings.SplitAfter(buf.String(), "\n")
	// Insert after the first burst line; the monster line is a burst
	// record whose function field never ends.
	monster := "B 0 0 0 1 " + strings.Repeat("x", maxLineBytes+100) + "\n"
	var out bytes.Buffer
	badAt := 0
	inserted := false
	for i, l := range lines {
		if !inserted && strings.HasPrefix(l, "B ") {
			out.WriteString(l)
			out.WriteString(monster)
			badAt = i + 2 // 1-based line number of the monster
			inserted = true
			continue
		}
		out.WriteString(l)
	}
	if !inserted {
		tb.Fatal("no burst line in sample trace")
	}
	return out.Bytes(), badAt
}

// TestLenientOversizedLine is the regression test for the scanner-cap
// bug: a single line beyond the buffer cap used to abort the whole
// lenient decode; now it is quarantined with a diagnostic and every
// other burst survives.
func TestLenientOversizedLine(t *testing.T) {
	input, badAt := oversizedInput(t)
	tr, diag, err := ReadWith(bytes.NewReader(input), DecodeOptions{})
	if err != nil {
		t.Fatalf("lenient decode aborted on oversized line: %v", err)
	}
	if len(tr.Bursts) != len(sampleTrace().Bursts) {
		t.Fatalf("lenient decode kept %d bursts, want all %d", len(tr.Bursts), len(sampleTrace().Bursts))
	}
	if diag.Skipped() != 1 {
		t.Fatalf("quarantined %d lines, want 1: %s", diag.Skipped(), diag.Summary())
	}
	bl := diag.BadLines[0]
	if bl.Line != badAt {
		t.Errorf("quarantined line %d, want %d", bl.Line, badAt)
	}
	if !strings.Contains(bl.Reason, fmt.Sprintf("%d-byte cap", maxLineBytes)) {
		t.Errorf("diagnostic %q does not name the line cap", bl.Reason)
	}
}

func TestStrictOversizedLine(t *testing.T) {
	input, badAt := oversizedInput(t)
	_, _, err := ReadWith(bytes.NewReader(input), DecodeOptions{Strict: true})
	if err == nil {
		t.Fatal("strict decode accepted an oversized line")
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("line %d", badAt)) {
		t.Errorf("strict error %q does not carry the line number", err)
	}
}

// TestOversizedFinalLine covers the tear case: the oversized line is the
// last line and has no trailing newline.
func TestOversizedFinalLine(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	input := append(buf.Bytes(), []byte("B 1 0 9 9 "+strings.Repeat("y", maxLineBytes+1))...)
	tr, diag, err := ReadWith(bytes.NewReader(input), DecodeOptions{})
	if err != nil {
		t.Fatalf("lenient decode: %v", err)
	}
	if diag.Skipped() != 1 {
		t.Fatalf("quarantined %d lines, want 1", diag.Skipped())
	}
	if len(tr.Bursts) != len(sampleTrace().Bursts) {
		t.Fatalf("kept %d bursts, want %d", len(tr.Bursts), len(sampleTrace().Bursts))
	}
}
