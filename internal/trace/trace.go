// Package trace models burst-level performance traces: the substrate the
// paper obtains from Extrae/Paraver instrumentation of MPI applications.
//
// A CPU burst is the sequential computation between two calls to the
// parallel runtime (MPI). Each burst records which task (MPI rank) ran it,
// when and for how long, the call-stack reference of the code region it
// executes, and a hardware counter vector describing how it performed.
// Delimiting bursts only needs library interposition on the MPI API, so no
// source access or manual instrumentation is required — which is precisely
// why the paper tracks behaviour at this granularity.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"perftrack/internal/metrics"
)

// CallstackRef points to the source location where a burst's computation
// starts: the paper's third evaluator matches regions through these
// references (function, file, line).
type CallstackRef struct {
	Function string
	File     string
	Line     int
}

// String renders the reference like "solve_x (solver.f90:2472)".
func (c CallstackRef) String() string {
	if c.IsZero() {
		return "<no-callstack>"
	}
	return fmt.Sprintf("%s (%s:%d)", c.Function, c.File, c.Line)
}

// IsZero reports whether the reference carries no information.
func (c CallstackRef) IsZero() bool {
	return c.Function == "" && c.File == "" && c.Line == 0
}

// Burst is one sequential computing region of one task.
type Burst struct {
	// Task is the MPI rank that executed the burst.
	Task int
	// Thread is the thread within the task (0 for pure MPI codes).
	Thread int
	// StartNS is the burst start time in nanoseconds since the run began.
	StartNS int64
	// DurationNS is the burst elapsed time in nanoseconds.
	DurationNS int64
	// Stack references the code region the burst executes.
	Stack CallstackRef
	// Counters holds the hardware counters read over the burst.
	Counters metrics.CounterVector
	// Phase is the ground-truth phase identifier when the trace comes from
	// the simulator (-1 when unknown, e.g. parsed from a file without the
	// annotation). It is never consumed by the analysis pipeline; it exists
	// so tests can validate clustering and tracking decisions.
	Phase int
}

// EndNS returns the burst completion timestamp.
func (b Burst) EndNS() int64 { return b.StartNS + b.DurationNS }

// Sample converts the burst into the minimal form metrics evaluate on.
func (b Burst) Sample() metrics.Sample {
	return metrics.Sample{DurationNS: float64(b.DurationNS), Counters: b.Counters}
}

// Metadata describes the experiment a trace was captured from. The tracking
// pipeline uses Ranks for cross-experiment scale normalisation and Label
// for reporting; the remaining fields are descriptive.
type Metadata struct {
	// App is the application name (e.g. "WRF").
	App string
	// Label identifies the experiment within a study (e.g. "128-tasks").
	Label string
	// Ranks is the number of MPI processes of the run.
	Ranks int
	// TasksPerNode is the process-to-node packing (0 when unknown).
	TasksPerNode int
	// Machine names the platform (e.g. "MareNostrum").
	Machine string
	// Compiler names the toolchain (e.g. "gfortran-4.1.2 -O3").
	Compiler string
	// Params carries free-form scenario parameters (problem class, block
	// size, ...). Keys and values must not contain whitespace.
	Params map[string]string
}

// Trace is a full burst-level trace of one experiment.
type Trace struct {
	Meta   Metadata
	Bursts []Burst
}

// Clone returns a deep copy of the trace.
func (t *Trace) Clone() *Trace {
	out := &Trace{Meta: t.Meta}
	if t.Meta.Params != nil {
		out.Meta.Params = make(map[string]string, len(t.Meta.Params))
		for k, v := range t.Meta.Params {
			out.Meta.Params[k] = v
		}
	}
	out.Bursts = append([]Burst(nil), t.Bursts...)
	return out
}

// SortByTaskTime orders bursts by (Task, StartNS, Thread), the canonical
// order the codec emits and the per-task sequence extraction expects.
func (t *Trace) SortByTaskTime() {
	sort.SliceStable(t.Bursts, func(i, j int) bool {
		a, b := t.Bursts[i], t.Bursts[j]
		if a.Task != b.Task {
			return a.Task < b.Task
		}
		if a.StartNS != b.StartNS {
			return a.StartNS < b.StartNS
		}
		return a.Thread < b.Thread
	})
}

// SortByTime orders bursts globally by (StartNS, Task, Thread).
func (t *Trace) SortByTime() {
	sort.SliceStable(t.Bursts, func(i, j int) bool {
		a, b := t.Bursts[i], t.Bursts[j]
		if a.StartNS != b.StartNS {
			return a.StartNS < b.StartNS
		}
		if a.Task != b.Task {
			return a.Task < b.Task
		}
		return a.Thread < b.Thread
	})
}

// TotalDuration returns the summed duration of all bursts in nanoseconds.
func (t *Trace) TotalDuration() int64 {
	var sum int64
	for _, b := range t.Bursts {
		sum += b.DurationNS
	}
	return sum
}

// Span returns the [min start, max end] interval covered by the trace.
func (t *Trace) Span() (startNS, endNS int64) {
	if len(t.Bursts) == 0 {
		return 0, 0
	}
	startNS = t.Bursts[0].StartNS
	endNS = t.Bursts[0].EndNS()
	for _, b := range t.Bursts[1:] {
		if b.StartNS < startNS {
			startNS = b.StartNS
		}
		if e := b.EndNS(); e > endNS {
			endNS = e
		}
	}
	return startNS, endNS
}

// Tasks returns the number of distinct tasks present in the trace. For
// well-formed traces this equals Meta.Ranks, but partial traces may contain
// fewer.
func (t *Trace) Tasks() int {
	seen := map[int]bool{}
	for _, b := range t.Bursts {
		seen[b.Task] = true
	}
	return len(seen)
}

// FilterMinDuration returns a shallow copy of the trace keeping only bursts
// of at least minNS nanoseconds. The paper's clustering step discards the
// fine-grain bursts that do not contribute meaningful time (they would both
// perturb the density estimate and bloat the frame).
func (t *Trace) FilterMinDuration(minNS int64) *Trace {
	out := &Trace{Meta: t.Meta}
	for _, b := range t.Bursts {
		if b.DurationNS >= minNS {
			out.Bursts = append(out.Bursts, b)
		}
	}
	return out
}

// FilterTopDuration returns a shallow copy keeping the smallest set of
// longest bursts that covers at least frac (0..1] of the total burst time.
// This mirrors the usual BSC practice of clustering only the bursts that
// explain most of the computation time.
func (t *Trace) FilterTopDuration(frac float64) *Trace {
	if frac >= 1 || len(t.Bursts) == 0 {
		return t.Clone()
	}
	idx := make([]int, len(t.Bursts))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool {
		return t.Bursts[idx[i]].DurationNS > t.Bursts[idx[j]].DurationNS
	})
	total := t.TotalDuration()
	budget := int64(frac * float64(total))
	keep := make([]bool, len(t.Bursts))
	var acc int64
	for _, i := range idx {
		if acc >= budget {
			break
		}
		keep[i] = true
		acc += t.Bursts[i].DurationNS
	}
	out := &Trace{Meta: t.Meta}
	for i, b := range t.Bursts {
		if keep[i] {
			out.Bursts = append(out.Bursts, b)
		}
	}
	return out
}

// TimeWindow returns the bursts whose start time falls in [fromNS, toNS).
// Frames built from successive windows of a single long trace implement the
// paper's "evolution along time intervals within the same experiment" mode.
func (t *Trace) TimeWindow(fromNS, toNS int64) *Trace {
	out := &Trace{Meta: t.Meta}
	for _, b := range t.Bursts {
		if b.StartNS >= fromNS && b.StartNS < toNS {
			out.Bursts = append(out.Bursts, b)
		}
	}
	return out
}

// SplitWindows partitions the trace into n equal-duration time windows.
// Window labels get a "/w<i>" suffix appended to the trace label.
func (t *Trace) SplitWindows(n int) []*Trace {
	if n <= 1 {
		return []*Trace{t.Clone()}
	}
	start, end := t.Span()
	if end <= start {
		return []*Trace{t.Clone()}
	}
	width := (end - start + int64(n) - 1) / int64(n)
	out := make([]*Trace, n)
	for i := 0; i < n; i++ {
		w := t.TimeWindow(start+int64(i)*width, start+int64(i+1)*width)
		w.Meta.Label = fmt.Sprintf("%s/w%d", t.Meta.Label, i+1)
		out[i] = w
	}
	return out
}

// PerTaskSequences returns, for each task present, the chronological list
// of indices into t.Bursts executed by that task. The map is keyed by task
// id; each sequence is ordered by start time.
func (t *Trace) PerTaskSequences() map[int][]int {
	seqs := map[int][]int{}
	for i, b := range t.Bursts {
		seqs[b.Task] = append(seqs[b.Task], i)
	}
	for task := range seqs {
		s := seqs[task]
		sort.SliceStable(s, func(i, j int) bool {
			return t.Bursts[s[i]].StartNS < t.Bursts[s[j]].StartNS
		})
	}
	return seqs
}

// Stacks returns the set of distinct call-stack references with the number
// of bursts pointing at each.
func (t *Trace) Stacks() map[CallstackRef]int {
	out := map[CallstackRef]int{}
	for _, b := range t.Bursts {
		out[b.Stack]++
	}
	return out
}

// Validate checks structural invariants: non-negative durations and
// timestamps, tasks within [0, Ranks) when Ranks is set. It returns a
// descriptive error for the first violation found.
func (t *Trace) Validate() error {
	for i, b := range t.Bursts {
		if b.DurationNS < 0 {
			return fmt.Errorf("trace %q: burst %d has negative duration %d", t.Meta.Label, i, b.DurationNS)
		}
		if b.StartNS < 0 {
			return fmt.Errorf("trace %q: burst %d has negative start %d", t.Meta.Label, i, b.StartNS)
		}
		if b.Task < 0 {
			return fmt.Errorf("trace %q: burst %d has negative task %d", t.Meta.Label, i, b.Task)
		}
		if t.Meta.Ranks > 0 && b.Task >= t.Meta.Ranks {
			return fmt.Errorf("trace %q: burst %d task %d out of range (ranks=%d)",
				t.Meta.Label, i, b.Task, t.Meta.Ranks)
		}
	}
	return nil
}

// Summary returns a one-line human-readable description of the trace.
func (t *Trace) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s", t.Meta.App)
	if t.Meta.Label != "" {
		fmt.Fprintf(&sb, "[%s]", t.Meta.Label)
	}
	start, end := t.Span()
	fmt.Fprintf(&sb, ": %d bursts, %d tasks, span %.3f s, busy %.3f s",
		len(t.Bursts), t.Tasks(), float64(end-start)/1e9, float64(t.TotalDuration())/1e9)
	return sb.String()
}
