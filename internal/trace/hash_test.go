package trace

import (
	"testing"

	"perftrack/internal/metrics"
)

func hashFixture() *Trace {
	return &Trace{
		Meta: Metadata{
			App: "app", Label: "run-1", Ranks: 4, TasksPerNode: 2,
			Machine: "m", Compiler: "c",
			Params: map[string]string{"class": "B", "seed": "7"},
		},
		Bursts: []Burst{
			{Task: 0, StartNS: 10, DurationNS: 100,
				Stack:    CallstackRef{Function: "f", File: "f.c", Line: 3},
				Counters: metrics.CounterVector{1000, 2000, 10, 5, 1, 300}},
			{Task: 1, StartNS: 12, DurationNS: 90,
				Stack:    CallstackRef{Function: "g", File: "g.c", Line: 9},
				Counters: metrics.CounterVector{900, 1800, 12, 4, 2, 280}},
		},
	}
}

// TestCanonicalHashStable asserts the hash is a pure function of the trace
// content, independent of map iteration order.
func TestCanonicalHashStable(t *testing.T) {
	a, b := hashFixture(), hashFixture()
	for i := 0; i < 16; i++ {
		if a.CanonicalHash() != b.CanonicalHash() {
			t.Fatal("equal traces hash differently")
		}
	}
	if a.CanonicalHash() != a.Clone().CanonicalHash() {
		t.Fatal("clone hashes differently")
	}
}

// TestCanonicalHashSensitivity asserts every observable field perturbs the
// hash: the cache must never serve a result computed from different input.
func TestCanonicalHashSensitivity(t *testing.T) {
	base := hashFixture().CanonicalHash()
	mutations := map[string]func(*Trace){
		"app":          func(t *Trace) { t.Meta.App = "other" },
		"label":        func(t *Trace) { t.Meta.Label = "run-2" },
		"ranks":        func(t *Trace) { t.Meta.Ranks = 8 },
		"param-value":  func(t *Trace) { t.Meta.Params["class"] = "C" },
		"param-added":  func(t *Trace) { t.Meta.Params["extra"] = "1" },
		"burst-task":   func(t *Trace) { t.Bursts[0].Task = 3 },
		"burst-start":  func(t *Trace) { t.Bursts[0].StartNS = 11 },
		"burst-dur":    func(t *Trace) { t.Bursts[1].DurationNS = 91 },
		"burst-stack":  func(t *Trace) { t.Bursts[0].Stack.Line = 4 },
		"burst-phase":  func(t *Trace) { t.Bursts[0].Phase = 2 },
		"counter":      func(t *Trace) { t.Bursts[0].Counters[metrics.CtrCycles] = 2001 },
		"burst-order":  func(t *Trace) { t.Bursts[0], t.Bursts[1] = t.Bursts[1], t.Bursts[0] },
		"burst-gone":   func(t *Trace) { t.Bursts = t.Bursts[:1] },
		"empty-fields": func(t *Trace) { t.Bursts[0].Stack.Function, t.Bursts[0].Stack.File = "ff.c", "" },
	}
	for name, mutate := range mutations {
		tr := hashFixture()
		mutate(tr)
		if tr.CanonicalHash() == base {
			t.Errorf("mutation %q did not change the hash", name)
		}
	}
}

// TestHashSequenceOrder asserts sequence hashing is order-sensitive and
// differs from any single member's hash.
func TestHashSequenceOrder(t *testing.T) {
	a := hashFixture()
	b := hashFixture()
	b.Meta.Label = "run-2"
	ab := HashSequence([]*Trace{a, b})
	ba := HashSequence([]*Trace{b, a})
	if ab == ba {
		t.Error("sequence hash is order-insensitive")
	}
	if ab == a.CanonicalHash() || ab == HashSequence([]*Trace{a}) {
		t.Error("sequence hash collides with shorter sequences")
	}
}
