package trace_test

import (
	"bytes"
	"testing"

	"perftrack/internal/metrics"
	"perftrack/internal/oracle"
	"perftrack/internal/trace"
)

// benchCodecTrace is the shared codec workload: a seeded oracle trace
// big enough that per-burst costs dominate fixed overheads (32 ranks ×
// 40 iterations × 2 phases ≈ 2560 bursts with full counter sets).
func benchCodecTrace(b *testing.B) (*trace.Trace, []byte, []byte) {
	b.Helper()
	tr := oracle.GenTraces(42, "bench", 32, 40, 2)
	var text bytes.Buffer
	if err := trace.Write(&text, tr); err != nil {
		b.Fatal(err)
	}
	return tr, text.Bytes(), trace.EncodeColbin(tr)
}

// BenchmarkCodecTextRead is the baseline the binary format is measured
// against: the line-oriented text parse (strconv + field splitting per
// burst). scripts/bench_codec.sh gates colbin read at >= 5x this.
func BenchmarkCodecTextRead(b *testing.B) {
	_, text, _ := benchCodecTrace(b)
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Read(bytes.NewReader(text)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecTextWrite(b *testing.B) {
	tr, text, _ := benchCodecTrace(b)
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		buf.Grow(len(text))
		if err := trace.Write(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecColbinRead(b *testing.B) {
	_, text, bin := benchCodecTrace(b)
	b.SetBytes(int64(len(text))) // text-equivalent bytes, so MB/s compares across codecs
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.DecodeColbin(bin); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecColbinWrite(b *testing.B) {
	tr, text, _ := benchCodecTrace(b)
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trace.EncodeColbin(tr)
	}
}

// BenchmarkCodecColbinReadInto is the cached-re-read path: the service
// decodes a cache hit into a reused Trace, so steady state does no
// per-burst allocation. scripts/bench_codec.sh gates this at >= 10x the
// text parse.
func BenchmarkCodecColbinReadInto(b *testing.B) {
	_, text, bin := benchCodecTrace(b)
	var dst trace.Trace
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := trace.DecodeColbinInto(bin, &dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecColbinReadFlat decodes straight into the strided column
// layout and projects the metric space from it, the zero-copy feed into
// clustering.
func BenchmarkCodecColbinReadFlat(b *testing.B) {
	_, text, bin := benchCodecTrace(b)
	ms := []metrics.Metric{metrics.IPC, metrics.Instructions}
	var pts []float64
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := trace.DecodeColbinFlat(bin)
		if err != nil {
			b.Fatal(err)
		}
		pts = f.PointsInto(pts[:0], ms)
	}
	_ = pts
}
