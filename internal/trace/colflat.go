package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"perftrack/internal/metrics"
)

// Flat is a colbin trace decoded as a struct of columns instead of a
// burst slice: the shape the downstream flat pipeline consumes. Counter
// values land in one strided []float64 — burst i's counters occupy
// Counters[i*stride : i*stride+stride] — so PointsInto can evaluate a
// metric space straight into the flat point layout cluster.RunFlat takes,
// with no per-burst structs anywhere on the path.
type Flat struct {
	Meta Metadata
	// N is the burst count; every column has length N.
	N int
	Task, Thread []int32
	StartNS      []int64
	DurationNS   []int64
	// FuncIdx/FileIdx index Strings, the decoded string table.
	FuncIdx, FileIdx []int32
	Line, Phase      []int32
	Strings          []string
	// Counters is the strided counter matrix; Stride is its row width
	// (always metrics.NumCounters after a successful decode).
	Counters []float64
	Stride   int
}

// DecodeColbinFlat parses a binary columnar trace strictly into the flat
// column layout. Blocks decode in parallel like the burst-slice path.
func DecodeColbinFlat(data []byte) (*Flat, error) {
	meta, strtab, blocks, total, err := scanColbinStrict(data)
	if err != nil {
		return nil, err
	}
	f := &Flat{
		Meta: meta.meta, N: total,
		Task: make([]int32, total), Thread: make([]int32, total),
		StartNS: make([]int64, total), DurationNS: make([]int64, total),
		FuncIdx: make([]int32, total), FileIdx: make([]int32, total),
		Line: make([]int32, total), Phase: make([]int32, total),
		Strings:  strtab,
		Counters: make([]float64, total*int(metrics.NumCounters)),
		Stride:   int(metrics.NumCounters),
	}
	bad := make([]error, len(blocks))
	runColBlocks(len(blocks), func(i int) {
		b := blocks[i]
		if crc32.Checksum(b.frame, colbinCRC) != b.crc {
			bad[i] = fmt.Errorf("trace: colbin section %d: block crc mismatch", b.section)
			return
		}
		if err := decodeColBlockFlat(b.body, f, b.off, b.n, meta.order); err != nil {
			bad[i] = fmt.Errorf("trace: colbin section %d: %w", b.section, err)
		}
	})
	for _, err := range bad {
		if err != nil {
			return nil, err
		}
	}
	return f, nil
}

// scanColbinStrict is the strict section walk shared by the flat decoder:
// it locates blocks and parses the header sections, failing loudly on any
// framing or CRC problem.
func scanColbinStrict(data []byte) (*colMeta, []string, []colBlock, int, error) {
	if !IsColbin(data) {
		return nil, nil, nil, 0, errNotColbin
	}
	var (
		meta    *colMeta
		strtab  []string
		blocks  []colBlock
		sawEnd  bool
		section int
		total   int
	)
	off := len(ColbinMagic)
	for off < len(data) && !sawEnd {
		section++
		if off+8 > len(data) {
			return nil, nil, nil, 0, fmt.Errorf("trace: colbin section %d: torn section header", section)
		}
		bodyLen := int(binary.LittleEndian.Uint32(data[off:]))
		wantCRC := binary.LittleEndian.Uint32(data[off+4:])
		if bodyLen <= 0 || bodyLen > colbinMaxBody {
			return nil, nil, nil, 0, fmt.Errorf("trace: colbin section %d: implausible length %d", section, bodyLen)
		}
		if off+8+bodyLen > len(data) {
			return nil, nil, nil, 0, fmt.Errorf("trace: colbin section %d: torn section body", section)
		}
		frame := data[off+8 : off+8+bodyLen]
		off += 8 + bodyLen
		kind, payload := frame[0], frame[1:]
		switch kind {
		case sectionBlock:
			if meta == nil || strtab == nil {
				return nil, nil, nil, 0, fmt.Errorf("trace: colbin section %d: burst block before metadata/string table", section)
			}
			n, k := binary.Uvarint(payload)
			minPer := 8 + 8*len(meta.order)
			if k <= 0 || int(n) > len(payload)/max(1, minPer)+1 {
				return nil, nil, nil, 0, fmt.Errorf("trace: colbin section %d: implausible block burst count", section)
			}
			blocks = append(blocks, colBlock{
				section: section, body: payload[k:], crc: wantCRC, frame: frame,
				n: int(n), off: total,
			})
			total += int(n)
		default:
			if crc32.Checksum(frame, colbinCRC) != wantCRC {
				return nil, nil, nil, 0, fmt.Errorf("trace: colbin section %d: section crc mismatch", section)
			}
			switch kind {
			case sectionMeta:
				if meta != nil {
					return nil, nil, nil, 0, fmt.Errorf("trace: colbin section %d: duplicate metadata section", section)
				}
				m, err := parseColMeta(payload)
				if err != nil {
					return nil, nil, nil, 0, fmt.Errorf("trace: colbin section %d: %w", section, err)
				}
				meta = m
			case sectionStrtab:
				if meta == nil || strtab != nil {
					return nil, nil, nil, 0, fmt.Errorf("trace: colbin section %d: misplaced string table", section)
				}
				st, err := parseColStrtab(payload)
				if err != nil {
					return nil, nil, nil, 0, fmt.Errorf("trace: colbin section %d: %w", section, err)
				}
				strtab = st
			case sectionEnd:
				n, k := binary.Uvarint(payload)
				if k <= 0 || int(n) != total {
					return nil, nil, nil, 0, fmt.Errorf("trace: colbin section %d: end marker disagrees with blocks", section)
				}
				sawEnd = true
			default:
				return nil, nil, nil, 0, fmt.Errorf("trace: colbin section %d: unknown section kind %q", section, kind)
			}
		}
	}
	if meta == nil {
		return nil, nil, nil, 0, fmt.Errorf("trace: colbin file has no metadata section")
	}
	if strtab == nil && total > 0 {
		return nil, nil, nil, 0, fmt.Errorf("trace: colbin file has burst blocks but no string table")
	}
	if !sawEnd {
		return nil, nil, nil, 0, fmt.Errorf("trace: colbin file is torn: missing end marker")
	}
	if off < len(data) {
		return nil, nil, nil, 0, fmt.Errorf("trace: %d trailing bytes after colbin end marker", len(data)-off)
	}
	if total != meta.total {
		return nil, nil, nil, 0, fmt.Errorf("trace: colbin metadata counts %d bursts, blocks carry %d", meta.total, total)
	}
	return meta, strtab, blocks, total, nil
}

// decodeColBlockFlat decodes one CRC-verified block payload into the flat
// columns starting at burst offset base. Same pinned column order as
// decodeColBlock.
func decodeColBlockFlat(p []byte, f *Flat, base, n int, order []metrics.Counter) error {
	off := 0
	col32 := func(dst []int32) error {
		prev := int64(0)
		for i := 0; i < n; i++ {
			u, k := binary.Uvarint(p[off:])
			if k <= 0 {
				return fmt.Errorf("malformed varint column")
			}
			off += k
			prev += unzigzag(u)
			dst[base+i] = int32(prev)
		}
		return nil
	}
	col64 := func(dst []int64) error {
		prev := int64(0)
		for i := 0; i < n; i++ {
			u, k := binary.Uvarint(p[off:])
			if k <= 0 {
				return fmt.Errorf("malformed varint column")
			}
			off += k
			prev += unzigzag(u)
			dst[base+i] = prev
		}
		return nil
	}
	if err := col32(f.Task); err != nil {
		return err
	}
	if err := col32(f.Thread); err != nil {
		return err
	}
	if err := col64(f.StartNS); err != nil {
		return err
	}
	if err := col64(f.DurationNS); err != nil {
		return err
	}
	if err := col32(f.FuncIdx); err != nil {
		return err
	}
	if err := col32(f.FileIdx); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if fi, gi := f.FuncIdx[base+i], f.FileIdx[base+i]; fi < 0 || int(fi) >= len(f.Strings) ||
			gi < 0 || int(gi) >= len(f.Strings) {
			return fmt.Errorf("string index outside table of %d", len(f.Strings))
		}
	}
	if err := col32(f.Line); err != nil {
		return err
	}
	if err := col32(f.Phase); err != nil {
		return err
	}
	if len(p)-off != n*8*len(order) {
		return fmt.Errorf("counter columns carry %d bytes, want %d", len(p)-off, n*8*len(order))
	}
	stride := f.Stride
	for _, c := range order {
		row := base*stride + int(c)
		for i := 0; i < n; i++ {
			f.Counters[row] = math.Float64frombits(binary.LittleEndian.Uint64(p[off:]))
			row += stride
			off += 8
		}
	}
	return nil
}

// Sample returns burst i in the minimal form metrics evaluate on.
func (f *Flat) Sample(i int) metrics.Sample {
	var cv metrics.CounterVector
	copy(cv[:], f.Counters[i*f.Stride:(i+1)*f.Stride])
	return metrics.Sample{DurationNS: float64(f.DurationNS[i]), Counters: cv}
}

// Burst materialises burst i as a struct, for callers that need one.
func (f *Flat) Burst(i int) Burst {
	b := Burst{
		Task: int(f.Task[i]), Thread: int(f.Thread[i]),
		StartNS: f.StartNS[i], DurationNS: f.DurationNS[i],
		Stack: CallstackRef{
			Function: f.Strings[f.FuncIdx[i]],
			File:     f.Strings[f.FileIdx[i]],
			Line:     int(f.Line[i]),
		},
		Phase: int(f.Phase[i]),
	}
	copy(b.Counters[:], f.Counters[i*f.Stride:(i+1)*f.Stride])
	return b
}

// Trace materialises the whole flat trace as a *Trace for the parts of
// the pipeline that still consume burst slices.
func (f *Flat) Trace() *Trace {
	t := &Trace{Meta: f.Meta, Bursts: make([]Burst, f.N)}
	for i := range t.Bursts {
		t.Bursts[i] = f.Burst(i)
	}
	return t
}

// PointsInto evaluates the metric space over every burst, writing the
// strided point layout cluster.RunFlat consumes into dst (len must be
// N*len(ms); pass nil to allocate). Row i holds burst i's coordinates.
func (f *Flat) PointsInto(dst []float64, ms []metrics.Metric) []float64 {
	if dst == nil {
		dst = make([]float64, f.N*len(ms))
	}
	dims := len(ms)
	for i := 0; i < f.N; i++ {
		metrics.SpaceInto(dst[i*dims:(i+1)*dims], ms, f.Sample(i))
	}
	return dst
}
