package trace

import "testing"

func craft(metaTotalZero bool) []byte {
	tr := &Trace{Meta: Metadata{App: "a"}}
	for i := 0; i < 10; i++ {
		tr.Bursts = append(tr.Bursts, Burst{Task: i, StartNS: int64(i)})
	}
	data := EncodeColbin(tr)
	type fr struct {
		kind byte
		body []byte
	}
	var frames []fr
	off := len(ColbinMagic)
	for off < len(data) {
		bl := int(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		frame := data[off+8 : off+8+bl]
		frames = append(frames, fr{frame[0], frame[1:]})
		off += 8 + bl
	}
	var out []byte
	out = append(out, ColbinMagic...)
	appendSec := func(kind byte, payload []byte) {
		var start int
		out, start = beginSection(out, kind)
		out = append(out, payload...)
		out = endSection(out, start)
	}
	for _, f := range frames {
		if f.kind == sectionMeta && metaTotalZero {
			// patch burst count (second-to-last uvarint) 10 -> 0
			p := append([]byte{}, f.body...)
			// last two bytes are burstCount=10 (0x0a), blockSize=4096 (0x80 0x20)
			p[len(p)-3] = 0x00
			appendSec(sectionMeta, p)
			continue
		}
		if f.kind == sectionEnd {
			crafted := []byte{0xf6, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01} // n = 2^64-10
			appendSec(sectionBlock, crafted)
			appendSec(sectionEnd, []byte{0x00})
			continue
		}
		appendSec(f.kind, f.body)
	}
	return out
}

func TestOverflowLenient(t *testing.T) {
	tt, diag, err := DecodeColbinWith(craft(false), DecodeOptions{Strict: false})
	t.Logf("lenient: trace=%v diag=%+v err=%v", tt != nil, diag, err)
}

func TestOverflowStrictPatchedMeta(t *testing.T) {
	tt, _, err := DecodeColbinWith(craft(true), DecodeOptions{Strict: true})
	t.Logf("strict: trace=%v err=%v", tt != nil, err)
}
