package trajectory

import (
	"fmt"
	"testing"
)

// benchRuns fabricates a series of nRuns runs, each with nObjs stable
// behaviours whose metrics drift deterministically a little run to run —
// the chain-friendly shape a healthy nightly series produces.
func benchRuns(nRuns, nObjs int) []Run {
	runs := make([]Run, nRuns)
	for r := range runs {
		runs[r] = Run{Key: fmt.Sprintf("key-%04d", r), Label: fmt.Sprintf("run-%d", r)}
		for o := 0; o < nObjs; o++ {
			drift := 0.01 * float64((r*7+o*3)%5-2) // ±2% deterministic wobble
			ipc := (0.6 + 0.14*float64(o%5)) * (1 + drift)
			runs[r].Objects = append(runs[r].Objects, ObjectState{
				Region:        o + 1,
				Spanning:      true,
				Metrics:       map[string]float64{"IPC": ipc, "Instructions": 1e7 * float64(o+1)},
				DurationShare: 1 / float64(nObjs),
				BurstShare:    1 / float64(nObjs),
			})
		}
	}
	return runs
}

// BenchmarkChain measures trajectory chaining over a long series — the
// cost of answering /v1/series/{name}/trajectories once the runs are
// parsed.
func BenchmarkChain(b *testing.B) {
	for _, size := range []struct{ runs, objs int }{{100, 8}, {1000, 8}} {
		b.Run(fmt.Sprintf("runs=%d/objs=%d", size.runs, size.objs), func(b *testing.B) {
			runs := benchRuns(size.runs, size.objs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := Chain(runs, LinkConfig{}); len(got) == 0 {
					b.Fatal("no trajectories")
				}
			}
		})
	}
}

// BenchmarkChainDetect is the full judgment path: chain the series and
// run the regression detector over every trajectory.
func BenchmarkChainDetect(b *testing.B) {
	runs := benchRuns(1000, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trajs := Chain(runs, LinkConfig{})
		if got := Detect(runs, trajs, DetectorConfig{}); len(got) == 0 {
			b.Fatal("no verdicts")
		}
	}
}
