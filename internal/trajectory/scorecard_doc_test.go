package trajectory

import (
	"fmt"
	"strings"
	"testing"
)

// scorecardDoc is a literal trackeval scorecard document, as
// trackeval.(*Scorecard).PerfDBDocument emits it: one synthetic frame,
// region 1 the corpus aggregate, regions 2+ the scenario families, each
// carrying the quality metrics as single-element trends. This test pins
// the schema contract from the consumer side — if the exportDoc shape
// drifts, the quality series silently stops chaining, and this fails
// before any daemon does.
func scorecardDoc(mota, purity float64) []byte {
	return []byte(fmt.Sprintf(`{
  "frames": [
    {
      "index": 0,
      "label": "trackeval-corpus",
      "bursts": 28,
      "clusters": [
        {"id": 1, "size": 14, "durationNs": 4e11, "region": 1},
        {"id": 2, "size": 14, "durationNs": 1e11, "region": 2}
      ]
    }
  ],
  "regions": [
    {
      "id": 1,
      "spanning": true,
      "durationNs": 4e11,
      "members": [[1]],
      "trends": {
        "ARI": [0.93],
        "Coverage": [1],
        "DiagnosisAccuracy": [1],
        "Fragmentation": [0],
        "IDSwitches": [0],
        "MOTA": [%g],
        "Purity": [%g]
      }
    },
    {
      "id": 2,
      "spanning": true,
      "durationNs": 1e11,
      "members": [[2]],
      "trends": {
        "ARI": [0.56],
        "Coverage": [1],
        "Fragmentation": [0],
        "IDSwitches": [0],
        "MOTA": [%g],
        "Purity": [%g]
      }
    }
  ],
  "trackedRegions": 2,
  "coverage": 1
}`, mota, purity, mota, purity))
}

func TestScorecardDocumentContract(t *testing.T) {
	run, err := ParseRun(scorecardDoc(1.0, 0.98), "k1", "commit-1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Objects) != 2 {
		t.Fatalf("parsed %d objects, want 2 (aggregate + family)", len(run.Objects))
	}
	agg := run.Objects[0]
	if agg.Region != 1 || !agg.Spanning {
		t.Fatalf("aggregate object = %+v, want spanning region 1", agg)
	}
	for name, want := range map[string]float64{"MOTA": 1.0, "Purity": 0.98, "Coverage": 1, "DiagnosisAccuracy": 1} {
		if got := agg.Metrics[name]; got != want {
			t.Errorf("aggregate %s = %v, want %v", name, got, want)
		}
	}
	if agg.DurationShare <= agg.BurstShare/10 || agg.DurationShare >= 1 {
		t.Errorf("aggregate durationShare = %v, want a proper fraction", agg.DurationShare)
	}
}

// TestScorecardHistoryDetectsQualityDrop: a run history of scorecard
// documents, the newest with lower MOTA, must chain into trajectories
// and produce a regressed verdict — MOTA is higher-is-better, which the
// detector must infer (LowerIsWorse defaults true).
func TestScorecardHistoryDetectsQualityDrop(t *testing.T) {
	var runs []Run
	for i := 0; i < 6; i++ {
		doc := scorecardDoc(1.0, 0.98)
		if i == 5 {
			doc = scorecardDoc(0.80, 0.90)
		}
		run, err := ParseRun(doc, fmt.Sprintf("k%d", i), fmt.Sprintf("commit-%d", i), int64(i))
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		runs = append(runs, run)
	}
	trajs := Chain(runs, LinkConfig{})
	full := 0
	for _, tr := range trajs {
		if len(tr.Points) == 6 {
			full++
		}
	}
	if full < 2 {
		t.Fatalf("%d trajectories span the full history, want both objects to chain", full)
	}
	verdicts := Detect(runs, trajs, DetectorConfig{Metric: "MOTA"})
	regressed := 0
	for _, v := range verdicts {
		if v.Kind == KindRegressed {
			regressed++
			if v.RelChange > -0.1 {
				t.Errorf("relChange = %v, want about -20%%", v.RelChange)
			}
			if !strings.Contains(v.String(), "MOTA") {
				t.Errorf("verdict string does not name the metric: %s", v)
			}
		}
	}
	if regressed == 0 {
		t.Fatalf("MOTA drop not flagged; verdicts: %+v", verdicts)
	}
}
