package trajectory

import (
	"math"
	"testing"
)

// obj builds an ObjectState with an IPC/Instructions position and a
// duration share.
func obj(region int, ipc, instr, share float64) ObjectState {
	return ObjectState{
		Region:        region,
		Spanning:      true,
		Metrics:       map[string]float64{"IPC": ipc, "Instructions": instr},
		DurationShare: share,
		BurstShare:    share,
	}
}

// runOf wraps objects into a Run.
func runOf(label string, objs ...ObjectState) Run {
	return Run{Key: label, Label: label, Objects: objs}
}

// TestChainStableSeries: the same three behaviours in every run must
// produce exactly three trajectories, each spanning every run, ranked by
// share.
func TestChainStableSeries(t *testing.T) {
	var runs []Run
	for i := 0; i < 6; i++ {
		runs = append(runs, runOf("r",
			obj(0, 1.2, 1e9, 0.5),
			obj(1, 0.6, 4e9, 0.3),
			obj(2, 2.0, 2e8, 0.2),
		))
	}
	trajs := Chain(runs, LinkConfig{})
	if len(trajs) != 3 {
		t.Fatalf("got %d trajectories, want 3", len(trajs))
	}
	for i, tr := range trajs {
		if len(tr.Points) != len(runs) {
			t.Fatalf("trajectory %d spans %d runs, want %d", i, len(tr.Points), len(runs))
		}
		if tr.ID != i {
			t.Fatalf("trajectory %d has ID %d", i, tr.ID)
		}
	}
	// Ranked by share: the 0.5 behaviour first.
	if got := trajs[0].Points[0].State.DurationShare; got != 0.5 {
		t.Fatalf("dominant trajectory share %g, want 0.5", got)
	}
}

// TestChainDriftLinks: a behaviour moving a little each run stays one
// trajectory; a jump beyond MaxDist breaks the chain in two.
func TestChainDriftLinks(t *testing.T) {
	var drift []Run
	for i := 0; i < 5; i++ {
		drift = append(drift, runOf("r", obj(0, 1.0+0.03*float64(i), 1e9, 0.9)))
	}
	if got := Chain(drift, LinkConfig{}); len(got) != 1 {
		t.Fatalf("smooth drift split into %d trajectories, want 1", len(got))
	}

	jump := []Run{
		runOf("a", obj(0, 1.0, 1e9, 0.9)),
		runOf("b", obj(0, 1.0, 1e9, 0.9)),
		runOf("c", obj(0, 4.0, 9e9, 0.9)), // different behaviour entirely
	}
	if got := Chain(jump, LinkConfig{}); len(got) != 2 {
		t.Fatalf("behaviour jump chained into %d trajectories, want 2", len(got))
	}
}

// TestChainVanishAndAppear: an object missing from later runs ends its
// trajectory; a new object starts a fresh one; a gap does not re-link.
func TestChainVanishAndAppear(t *testing.T) {
	runs := []Run{
		runOf("1", obj(0, 1.0, 1e9, 0.6), obj(1, 0.5, 5e9, 0.4)),
		runOf("2", obj(0, 1.0, 1e9, 0.6), obj(1, 0.5, 5e9, 0.4)),
		runOf("3", obj(0, 1.0, 1e9, 1.0)),                        // behaviour 1 vanished
		runOf("4", obj(0, 1.0, 1e9, 0.6), obj(9, 0.5, 5e9, 0.4)), // behaviour 1's twin returns
	}
	trajs := Chain(runs, LinkConfig{})
	if len(trajs) != 3 {
		t.Fatalf("got %d trajectories, want 3 (stable, vanished, reappeared-as-new)", len(trajs))
	}
	var spans []int
	for _, tr := range trajs {
		spans = append(spans, len(tr.Points))
	}
	if spans[0] != 4 {
		t.Fatalf("stable trajectory spans %d runs, want 4", spans[0])
	}
}

// TestChainMinShareFilter: sub-threshold objects never enter the chain.
func TestChainMinShareFilter(t *testing.T) {
	runs := []Run{
		runOf("1", obj(0, 1.0, 1e9, 0.999), obj(1, 9.0, 1e5, 0.001)),
		runOf("2", obj(0, 1.0, 1e9, 0.999), obj(1, 9.0, 1e5, 0.001)),
	}
	trajs := Chain(runs, LinkConfig{MinShare: 0.01})
	if len(trajs) != 1 {
		t.Fatalf("noise object entered the chain: %d trajectories", len(trajs))
	}
}

// boolp returns a *bool (DetectorConfig.LowerIsWorse).
func boolp(b bool) *bool { return &b }

// detSeries builds a one-trajectory series with the given IPC values.
func detSeries(ipcs ...float64) ([]Run, []Trajectory) {
	var runs []Run
	for _, v := range ipcs {
		runs = append(runs, runOf("r", obj(0, v, 1e9, 1.0)))
	}
	return runs, Chain(runs, LinkConfig{})
}

// TestDetectRegression: a clear IPC drop at the newest run is flagged
// regressed; the same rise is improved; noise-level movement is steady.
func TestDetectRegression(t *testing.T) {
	cases := []struct {
		name string
		ipcs []float64
		want Kind
	}{
		{"drop", []float64{1.0, 1.01, 0.99, 1.0, 1.0, 0.70}, KindRegressed},
		{"rise", []float64{1.0, 1.01, 0.99, 1.0, 1.0, 1.30}, KindImproved},
		{"steady", []float64{1.0, 1.01, 0.99, 1.0, 1.0, 1.01}, KindSteady},
		{"tiny-but-surprising", []float64{1.0, 1.0, 1.0, 1.0, 1.0, 1.01}, KindSteady},
	}
	for _, tc := range cases {
		runs, trajs := detSeries(tc.ipcs...)
		vs := Detect(runs, trajs, DetectorConfig{})
		if len(vs) != 1 {
			t.Fatalf("%s: %d verdicts, want 1", tc.name, len(vs))
		}
		if vs[0].Kind != tc.want {
			t.Fatalf("%s: verdict %s, want %s (%+v)", tc.name, vs[0].Kind, tc.want, vs[0])
		}
	}
}

// TestDetectHigherIsWorse: with LowerIsWorse=false (e.g. a duration
// metric), a rise regresses and a drop improves.
func TestDetectHigherIsWorse(t *testing.T) {
	runs, trajs := detSeries(1.0, 1.0, 1.0, 1.0, 1.3)
	vs := Detect(runs, trajs, DetectorConfig{LowerIsWorse: boolp(false)})
	if vs[0].Kind != KindRegressed {
		t.Fatalf("rise with LowerIsWorse=false: %s, want regressed", vs[0].Kind)
	}
	runs, trajs = detSeries(1.0, 1.0, 1.0, 1.0, 0.7)
	vs = Detect(runs, trajs, DetectorConfig{LowerIsWorse: boolp(false)})
	if vs[0].Kind != KindImproved {
		t.Fatalf("drop with LowerIsWorse=false: %s, want improved", vs[0].Kind)
	}
}

// TestDetectVanishedAndNew: established trajectories missing from the
// newest run report vanished; first-seen ones report new; flicker (too
// short a history) reports insufficient.
func TestDetectVanishedAndNew(t *testing.T) {
	runs := []Run{
		runOf("1", obj(0, 1.0, 1e9, 0.5), obj(1, 0.5, 5e9, 0.5)),
		runOf("2", obj(0, 1.0, 1e9, 0.5), obj(1, 0.5, 5e9, 0.5)),
		runOf("3", obj(0, 1.0, 1e9, 0.5), obj(1, 0.5, 5e9, 0.5)),
		runOf("4", obj(0, 1.0, 1e9, 0.5), obj(9, 3.0, 2e7, 0.5)), // 1 vanished, 9 new
	}
	vs := Detect(runs, Chain(runs, LinkConfig{}), DetectorConfig{})
	kinds := map[Kind]int{}
	for _, v := range vs {
		kinds[v.Kind]++
	}
	if kinds[KindVanished] != 1 || kinds[KindNew] != 1 {
		t.Fatalf("kinds %v, want one vanished and one new", kinds)
	}
	// The stable trajectory has only 3 baseline points: still judged.
	if kinds[KindSteady] != 1 {
		t.Fatalf("kinds %v, want the stable trajectory steady", kinds)
	}
}

// TestDetectInsufficientHistory: two runs are not enough to judge.
func TestDetectInsufficientHistory(t *testing.T) {
	runs, trajs := detSeries(1.0, 0.5)
	vs := Detect(runs, trajs, DetectorConfig{})
	if len(vs) != 1 || vs[0].Kind != KindInsufficient {
		t.Fatalf("verdicts %+v, want one insufficient-history", vs)
	}
	if vs[0].Notable() {
		t.Fatal("insufficient-history must not be notable")
	}
}

// TestDetectMinShare: a regression in a trajectory below MinShare is not
// reported at all.
func TestDetectMinShare(t *testing.T) {
	var runs []Run
	for i := 0; i < 6; i++ {
		ipc := 1.0
		if i == 5 {
			ipc = 0.5
		}
		runs = append(runs, runOf("r",
			obj(0, 2.0, 1e9, 0.995),
			obj(1, ipc, 1e6, 0.005),
		))
	}
	trajs := Chain(runs, LinkConfig{MinShare: 0.001})
	vs := Detect(runs, trajs, DetectorConfig{MinShare: 0.01})
	for _, v := range vs {
		if v.TrajectoryID != 0 {
			t.Fatalf("sub-share trajectory judged: %+v", v)
		}
	}
}

// TestSeriesNaN: missing metrics surface as NaN in Series and do not
// poison the baseline.
func TestSeriesNaN(t *testing.T) {
	tr := Trajectory{Points: []Point{
		{RunIndex: 0, State: ObjectState{Metrics: map[string]float64{"IPC": 1}}},
		{RunIndex: 1, State: ObjectState{Metrics: map[string]float64{}}},
	}}
	s := tr.Series("IPC")
	if s[0] != 1 || !math.IsNaN(s[1]) {
		t.Fatalf("Series = %v", s)
	}
}
