package trajectory

import (
	"bytes"
	"fmt"
	"testing"

	"perftrack/internal/cluster"
	"perftrack/internal/core"
	"perftrack/internal/machine"
	"perftrack/internal/metrics"
	"perftrack/internal/mpisim"
	"perftrack/internal/trace"
)

// simApp models a small SPMD code with nPhases well-separated behaviours.
// slowPhase (when >= 0) gets its IPC multiplied by slowIPC — the injected
// performance bug the detector must find.
func simApp(nPhases, slowPhase int, slowIPC float64) mpisim.AppSpec {
	arch := machine.MinoTauro()
	phases := make([]mpisim.PhaseSpec, nPhases)
	for i := range phases {
		instr := 5e6 * pow(1.7, i)
		ipc := 0.6 + 0.14*float64(i%5)
		if i == slowPhase {
			ipc *= slowIPC
		}
		phases[i] = mpisim.PhaseSpec{
			Name:      fmt.Sprintf("phase%d", i+1),
			Stack:     trace.CallstackRef{Function: fmt.Sprintf("phase%d", i+1), File: "app.c", Line: 100 + i},
			Instr:     func(mpisim.Scenario) float64 { return instr },
			IPCFactor: ipc / arch.BaseIPC,
			MemFrac:   0.02,
		}
	}
	return mpisim.AppSpec{Name: "trajsim", Phases: phases}
}

func pow(base float64, exp int) float64 {
	out := 1.0
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}

// analyzeRun simulates one "stored run" (a 2-frame mini study of app),
// runs the full clustering+tracking pipeline, and returns its export
// document parsed into a trajectory Run.
func analyzeRun(t *testing.T, app mpisim.AppSpec, runIdx int) Run {
	t.Helper()
	var traces []*trace.Trace
	for f := 0; f < 2; f++ {
		tr, err := mpisim.Simulate(app, mpisim.Scenario{
			Label:      fmt.Sprintf("run%d-frame%d", runIdx, f),
			Ranks:      8,
			Arch:       machine.MinoTauro(),
			Compiler:   machine.GFortran(),
			Iterations: 4,
			Seed:       uint64(1000*runIdx + f + 1),
		})
		if err != nil {
			t.Fatalf("simulating run %d frame %d: %v", runIdx, f, err)
		}
		traces = append(traces, tr)
	}
	cfg := core.Config{
		Cluster: cluster.Config{Eps: 0.07, MinPts: 5, MinClusterWeight: 0.002},
		Metrics: metrics.DefaultSpace(),
	}
	frames, err := core.BuildFrames(traces, cfg)
	if err != nil {
		t.Fatalf("building frames for run %d: %v", runIdx, err)
	}
	res, err := core.NewTracker(cfg).Track(frames)
	if err != nil {
		t.Fatalf("tracking run %d: %v", runIdx, err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf, cfg.Metrics); err != nil {
		t.Fatalf("exporting run %d: %v", runIdx, err)
	}
	run, err := ParseRun(buf.Bytes(), fmt.Sprintf("key-%d", runIdx), fmt.Sprintf("run-%d", runIdx), int64(runIdx))
	if err != nil {
		t.Fatal(err)
	}
	return run
}

// TestInjectedSlowdownIsTheOnlyRegression is the acceptance contract of
// the trajectory engine: across a series of 7 stored runs of the same
// 4-behaviour application, where the last run degrades one behaviour's
// IPC by 30%, the regression report must flag exactly that trajectory as
// regressed — and nothing else as notable.
func TestInjectedSlowdownIsTheOnlyRegression(t *testing.T) {
	const nPhases, nRuns = 4, 7
	const slowPhase = 1 // phase2: mid instruction count, distinct IPC
	var runs []Run
	for r := 0; r < nRuns; r++ {
		app := simApp(nPhases, -1, 1)
		if r == nRuns-1 {
			app = simApp(nPhases, slowPhase, 0.70)
		}
		runs = append(runs, analyzeRun(t, app, r))
	}

	trajs := Chain(runs, LinkConfig{})
	if len(trajs) < nPhases {
		t.Fatalf("chained %d trajectories, want >= %d", len(trajs), nPhases)
	}
	full := 0
	for _, tr := range trajs {
		if len(tr.Points) == nRuns {
			full++
		}
	}
	if full != nPhases {
		t.Fatalf("%d trajectories span all runs, want %d", full, nPhases)
	}

	verdicts := Detect(runs, trajs, DetectorConfig{})
	var notable []Verdict
	for _, v := range verdicts {
		if v.Notable() {
			notable = append(notable, v)
		}
	}
	if len(notable) != 1 {
		t.Fatalf("got %d notable verdicts, want exactly 1: %+v", len(notable), notable)
	}
	v := notable[0]
	if v.Kind != KindRegressed {
		t.Fatalf("verdict %s, want regressed: %+v", v.Kind, v)
	}
	if v.RelChange > -0.15 || v.RelChange < -0.45 {
		t.Fatalf("regression magnitude %.2f, want around -0.30", v.RelChange)
	}
	// The flagged trajectory must be the slowed behaviour: its baseline
	// IPC matches phase2's configured IPC (0.74), not any other phase's.
	wantIPC := 0.6 + 0.14*float64(slowPhase%5)
	if v.Baseline < wantIPC*0.9 || v.Baseline > wantIPC*1.1 {
		t.Fatalf("flagged trajectory baseline IPC %.3f, want ~%.2f (the injected phase)", v.Baseline, wantIPC)
	}
}

// TestParseRunShares: the parsed object states carry sane share
// accounting (shares sum to ~1 over the run's regions).
func TestParseRunShares(t *testing.T) {
	run := analyzeRun(t, simApp(4, -1, 1), 0)
	if len(run.Objects) < 4 {
		t.Fatalf("parsed %d objects, want >= 4", len(run.Objects))
	}
	var durSum, burstSum float64
	for _, o := range run.Objects {
		if o.DurationShare < 0 || o.DurationShare > 1 {
			t.Fatalf("object %d duration share %g out of range", o.Region, o.DurationShare)
		}
		durSum += o.DurationShare
		burstSum += o.BurstShare
		if len(o.Metrics) == 0 {
			t.Fatalf("object %d has no metric position", o.Region)
		}
	}
	if durSum < 0.99 || durSum > 1.01 {
		t.Fatalf("duration shares sum to %g, want ~1", durSum)
	}
	if burstSum < 0.9 || burstSum > 1.01 {
		t.Fatalf("burst shares sum to %g, want ~1", burstSum)
	}
}
