// Package trajectory links tracked objects across stored runs.
//
// The tracking pipeline (internal/core) follows an application's
// behavioural clusters across the frames of ONE study; its export
// document is what trackd persists in the perfdb store. This package is
// the next level up: given a named series of stored results — say, the
// nightly run of the same benchmark over months — it chains each run's
// tracked regions into cross-run trajectories, computes per-trajectory
// metric series (centroid IPC/instructions, burst share, duration
// share), and runs a changepoint detector over them (see detect.go).
// That turns a pile of independent analyses into the thing the paper
// argues for: following a code region's behaviour across experiments,
// here across the whole stored history.
//
// Linking reuses the tracker's correlation output: a region's signature
// (its per-metric centroid over the frames it spans, plus its share of
// the run's computation time) is exactly what the in-run tracker
// produced; consecutive runs are matched greedily by relative centroid
// distance, nearest pair first, the same density-is-identity intuition
// the paper applies between frames.
package trajectory

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// exportDoc mirrors the subset of core's export schema the trajectory
// engine consumes. It is decoded structurally (not via core's types) so
// stored documents from older daemons parse as long as these fields
// exist.
type exportDoc struct {
	Frames []struct {
		Bursts   int `json:"bursts"`
		Clusters []struct {
			ID         int     `json:"id"`
			Size       int     `json:"size"`
			DurationNS float64 `json:"durationNs"`
			Region     int     `json:"region"`
		} `json:"clusters"`
	} `json:"frames"`
	Regions []struct {
		ID         int                  `json:"id"`
		Spanning   bool                 `json:"spanning"`
		DurationNS float64              `json:"durationNs"`
		Members    [][]int              `json:"members"`
		Trends     map[string][]float64 `json:"trends"`
	} `json:"regions"`
}

// ObjectState summarises one tracked region of one stored run: the
// region's time-averaged position in the metric space plus how much of
// the run's computation it explains.
type ObjectState struct {
	// Region is the region id inside its run's result.
	Region int `json:"region"`
	// Spanning reports whether the region covered every frame of its run.
	Spanning bool `json:"spanning"`
	// Metrics maps metric name to the mean of the region's per-frame
	// means over the frames where it is present.
	Metrics map[string]float64 `json:"metrics"`
	// DurationShare is the region's fraction of the summed region time.
	DurationShare float64 `json:"durationShare"`
	// BurstShare is the region's fraction of all clustered bursts.
	BurstShare float64 `json:"burstShare"`
}

// Run is one stored result reduced to its tracked objects.
type Run struct {
	// Key is the store key of the result, Label its run label.
	Key   string `json:"key"`
	Label string `json:"label"`
	// UnixNano is the submission time recorded in the store.
	UnixNano int64 `json:"unixNano"`
	// Objects are the run's tracked regions, ordered by id.
	Objects []ObjectState `json:"objects"`
}

// ParseRun reduces a stored export document to its tracked objects.
func ParseRun(payload []byte, key, label string, unixNano int64) (Run, error) {
	var doc exportDoc
	if err := json.Unmarshal(payload, &doc); err != nil {
		return Run{}, fmt.Errorf("trajectory: parsing result %s: %w", key, err)
	}
	run := Run{Key: key, Label: label, UnixNano: unixNano}

	// Region totals for the share denominators.
	var totalDur float64
	regionBursts := map[int]int{}
	totalBursts := 0
	for _, f := range doc.Frames {
		for _, c := range f.Clusters {
			if c.Region >= 0 {
				regionBursts[c.Region] += c.Size
				totalBursts += c.Size
			}
		}
	}
	for _, r := range doc.Regions {
		totalDur += r.DurationNS
	}

	for _, r := range doc.Regions {
		obj := ObjectState{
			Region:   r.ID,
			Spanning: r.Spanning,
			Metrics:  map[string]float64{},
		}
		// Present frames are the ones with members; the trends arrays
		// carry 0 for absent frames, so average only over present ones.
		present := make([]bool, len(r.Members))
		np := 0
		for i, ms := range r.Members {
			if len(ms) > 0 {
				present[i] = true
				np++
			}
		}
		for name, vals := range r.Trends {
			var sum float64
			n := 0
			for i, v := range vals {
				if i < len(present) && present[i] {
					sum += v
					n++
				}
			}
			if n > 0 {
				obj.Metrics[name] = sum / float64(n)
			}
		}
		if np == 0 && len(r.Trends) > 0 {
			// Degenerate document (no membership info): fall back to the
			// plain mean so the object still has a position.
			for name, vals := range r.Trends {
				var sum float64
				for _, v := range vals {
					sum += v
				}
				if len(vals) > 0 {
					obj.Metrics[name] = sum / float64(len(vals))
				}
			}
		}
		if totalDur > 0 {
			obj.DurationShare = r.DurationNS / totalDur
		}
		if totalBursts > 0 {
			obj.BurstShare = float64(regionBursts[r.ID]) / float64(totalBursts)
		}
		run.Objects = append(run.Objects, obj)
	}
	sort.Slice(run.Objects, func(i, j int) bool { return run.Objects[i].Region < run.Objects[j].Region })
	return run, nil
}

// LinkConfig tunes the cross-run matcher.
type LinkConfig struct {
	// MaxDist is the maximum link distance (mean relative difference
	// over the shared metric axes plus the duration-share axis) for two
	// objects in consecutive runs to be the same trajectory (default
	// 0.35 — a 25% single-metric move still links, a different
	// behaviour does not).
	MaxDist float64
	// MinShare drops objects below this duration share before linking:
	// sub-percent clusters flicker in and out and would litter the
	// history with one-point trajectories (default 0.005).
	MinShare float64
}

func (c LinkConfig) withDefaults() LinkConfig {
	if c.MaxDist <= 0 {
		c.MaxDist = 0.35
	}
	if c.MinShare <= 0 {
		c.MinShare = 0.005
	}
	return c
}

// Point is one trajectory's state in one run.
type Point struct {
	// RunIndex indexes into the Runs slice the trajectory was chained
	// over.
	RunIndex int `json:"runIndex"`
	// State is the object's summary in that run.
	State ObjectState `json:"state"`
}

// Trajectory is one behaviour followed across runs.
type Trajectory struct {
	// ID numbers trajectories by decreasing total duration share.
	ID int `json:"id"`
	// Points are the per-run states, run index strictly increasing.
	// Absent runs (the behaviour vanished and reappeared) simply have no
	// point.
	Points []Point `json:"points"`
}

// FirstRun and LastRun bound the runs the trajectory appears in.
func (tr *Trajectory) FirstRun() int { return tr.Points[0].RunIndex }
func (tr *Trajectory) LastRun() int  { return tr.Points[len(tr.Points)-1].RunIndex }

// Series extracts the trajectory's per-point values of one metric
// (NaN when the metric is missing from a point).
func (tr *Trajectory) Series(metric string) []float64 {
	out := make([]float64, len(tr.Points))
	for i, p := range tr.Points {
		if v, ok := p.State.Metrics[metric]; ok {
			out[i] = v
		} else {
			out[i] = math.NaN()
		}
	}
	return out
}

// meanShare is the trajectory's average duration share (ranking key).
func (tr *Trajectory) meanShare() float64 {
	var sum float64
	for _, p := range tr.Points {
		sum += p.State.DurationShare
	}
	return sum / float64(len(tr.Points))
}

// linkDist is the distance two object states must clear to link: the
// mean relative difference over the metric axes both sides share, plus
// the duration-share axis. Relative differences make IPC (≈1) and
// instruction counts (≈1e9) commensurable without normalising passes.
func linkDist(a, b ObjectState) float64 {
	var sum float64
	n := 0
	for name, av := range a.Metrics {
		bv, ok := b.Metrics[name]
		if !ok {
			continue
		}
		sum += relDiff(av, bv)
		n++
	}
	if n == 0 {
		return math.Inf(1)
	}
	sum += relDiff(a.DurationShare, b.DurationShare)
	return sum / float64(n+1)
}

// relDiff is |a-b| scaled by the larger magnitude (0 when both are 0).
func relDiff(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// Chain links the runs' objects into trajectories. Matching between
// consecutive runs is greedy nearest-pair-first under cfg.MaxDist; each
// object joins at most one trajectory per run. Unmatched objects start
// new trajectories. The result is ordered by decreasing mean duration
// share and IDs follow that order, so trajectory 0 is the dominant
// behaviour of the series.
func Chain(runs []Run, cfg LinkConfig) []Trajectory {
	cfg = cfg.withDefaults()
	var open []*Trajectory // trajectories whose last point is in some prior run

	for ri, run := range runs {
		objs := make([]ObjectState, 0, len(run.Objects))
		for _, o := range run.Objects {
			if o.DurationShare >= cfg.MinShare {
				objs = append(objs, o)
			}
		}

		// Candidate links: open trajectories ending at the previous run
		// versus this run's objects.
		type cand struct {
			dist    float64
			trajIdx int // into open
			objIdx  int // into objs
		}
		var cands []cand
		for ti, tr := range open {
			last := tr.Points[len(tr.Points)-1]
			if last.RunIndex != ri-1 {
				continue // only consecutive runs link; gaps end trajectories
			}
			for oi, o := range objs {
				if d := linkDist(last.State, o); d <= cfg.MaxDist {
					cands = append(cands, cand{d, ti, oi})
				}
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			a, b := cands[i], cands[j]
			if a.dist != b.dist {
				return a.dist < b.dist
			}
			if a.trajIdx != b.trajIdx {
				return a.trajIdx < b.trajIdx
			}
			return a.objIdx < b.objIdx
		})
		usedTraj := map[int]bool{}
		usedObj := map[int]bool{}
		for _, c := range cands {
			if usedTraj[c.trajIdx] || usedObj[c.objIdx] {
				continue
			}
			usedTraj[c.trajIdx] = true
			usedObj[c.objIdx] = true
			open[c.trajIdx].Points = append(open[c.trajIdx].Points, Point{RunIndex: ri, State: objs[c.objIdx]})
		}
		for oi, o := range objs {
			if !usedObj[oi] {
				open = append(open, &Trajectory{Points: []Point{{RunIndex: ri, State: o}}})
			}
		}
	}

	out := make([]Trajectory, len(open))
	for i, tr := range open {
		out[i] = *tr
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i].meanShare(), out[j].meanShare()
		if a != b {
			return a > b
		}
		if out[i].FirstRun() != out[j].FirstRun() {
			return out[i].FirstRun() < out[j].FirstRun()
		}
		return out[i].Points[0].State.Region < out[j].Points[0].State.Region
	})
	for i := range out {
		out[i].ID = i
	}
	return out
}
