package trajectory

import (
	"fmt"
	"math"
	"sort"
)

// Changepoint/regression detection over trajectory metric series.
//
// The detector is deliberately simple and robust: the newest point of
// each trajectory is compared against the rolling median of the window
// preceding it, with the spread estimated by the scaled median absolute
// deviation (MAD). Median+MAD tolerate the occasional outlier run that
// mean+stddev would chase, which matters when the baseline window holds
// a handful of noisy nightly runs. A point is flagged only when it is
// BOTH many MADs out (statistically surprising) and far in relative
// terms (practically meaningful) — either gate alone misfires: pure MAD
// flags microscopic moves of ultra-stable series, pure relative change
// flags ordinary noise of jittery ones.

// Kind classifies a trajectory's verdict at the newest run.
type Kind string

const (
	// KindSteady: the newest value sits inside the baseline band.
	KindSteady Kind = "steady"
	// KindImproved / KindRegressed: the newest value broke out of the
	// band in the direction that is better / worse for the metric.
	KindImproved  Kind = "improved"
	KindRegressed Kind = "regressed"
	// KindVanished: the trajectory has an established history but no
	// point in the newest run.
	KindVanished Kind = "vanished"
	// KindNew: the trajectory appears for the first time in the newest
	// run.
	KindNew Kind = "new"
	// KindInsufficient: too few baseline points to judge.
	KindInsufficient Kind = "insufficient-history"
)

// DetectorConfig tunes the changepoint detector.
type DetectorConfig struct {
	// Metric is the series to watch (default "IPC").
	Metric string
	// LowerIsWorse states the metric's direction: true means a drop is a
	// regression (IPC, bandwidth); false means a rise is (duration,
	// misses). Default true, which is correct for IPC.
	LowerIsWorse *bool
	// Window is the rolling baseline length in runs (default 5).
	Window int
	// MinPoints is the minimum baseline size to judge at all (default 3).
	MinPoints int
	// MADs is the deviation threshold in scaled MADs (default 4).
	MADs float64
	// MinRel is the minimum relative change against the baseline median
	// (default 0.05): statistical surprise alone does not page anyone.
	MinRel float64
	// MinShare ignores trajectories whose mean duration share is below
	// this (default 0.01): a regression in 0.3% of the time is noise.
	MinShare float64
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.Metric == "" {
		c.Metric = "IPC"
	}
	if c.LowerIsWorse == nil {
		t := true
		c.LowerIsWorse = &t
	}
	if c.Window <= 0 {
		c.Window = 5
	}
	if c.MinPoints <= 0 {
		c.MinPoints = 3
	}
	if c.MADs <= 0 {
		c.MADs = 4
	}
	if c.MinRel <= 0 {
		c.MinRel = 0.05
	}
	if c.MinShare <= 0 {
		c.MinShare = 0.01
	}
	return c
}

// Verdict is the detector's structured output for one trajectory.
type Verdict struct {
	// TrajectoryID references the chained trajectory.
	TrajectoryID int `json:"trajectoryId"`
	// Metric is the series judged.
	Metric string `json:"metric"`
	// Kind is the classification.
	Kind Kind `json:"kind"`
	// Last is the newest value; Baseline the rolling median it was
	// compared against; MAD the scaled spread estimate; Deviation the
	// distance in MADs (signed, positive = above baseline); RelChange
	// the relative change against the baseline.
	Last      float64 `json:"last"`
	Baseline  float64 `json:"baseline"`
	MAD       float64 `json:"mad"`
	Deviation float64 `json:"deviation"`
	RelChange float64 `json:"relChange"`
	// Share is the trajectory's mean duration share: how much of the
	// computation the verdict is about.
	Share float64 `json:"share"`
	// Runs is the number of runs the trajectory appears in.
	Runs int `json:"runs"`
}

// Notable reports whether the verdict should surface in a regression
// report (everything except steady and insufficient-history).
func (v Verdict) Notable() bool {
	return v.Kind != KindSteady && v.Kind != KindInsufficient
}

// String renders a one-line human-readable verdict.
func (v Verdict) String() string {
	switch v.Kind {
	case KindVanished, KindNew:
		return fmt.Sprintf("trajectory %d: %s (share %.1f%%, %d runs)",
			v.TrajectoryID, v.Kind, 100*v.Share, v.Runs)
	default:
		return fmt.Sprintf("trajectory %d: %s %s %.4g vs baseline %.4g (%+.1f%%, %.1f MADs, share %.1f%%)",
			v.TrajectoryID, v.Metric, v.Kind, v.Last, v.Baseline,
			100*v.RelChange, v.Deviation, 100*v.Share)
	}
}

// median over a copy of xs; NaNs must be filtered by the caller.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	mid := len(c) / 2
	if len(c)%2 == 1 {
		return c[mid]
	}
	return (c[mid-1] + c[mid]) / 2
}

// scaledMAD is the median absolute deviation scaled to be comparable to
// a standard deviation under normality (×1.4826).
func scaledMAD(xs []float64, med float64) float64 {
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = math.Abs(x - med)
	}
	return 1.4826 * median(devs)
}

// Detect judges every trajectory of the chained series at the newest
// run (index len(runs)-1). Verdicts are ordered: regressions first, then
// improvements, vanished, new, then the rest, each by decreasing share.
func Detect(runs []Run, trajectories []Trajectory, cfg DetectorConfig) []Verdict {
	cfg = cfg.withDefaults()
	if len(runs) == 0 {
		return nil
	}
	newest := len(runs) - 1
	var out []Verdict
	for _, tr := range trajectories {
		share := tr.meanShare()
		if share < cfg.MinShare {
			continue
		}
		v := Verdict{
			TrajectoryID: tr.ID,
			Metric:       cfg.Metric,
			Share:        share,
			Runs:         len(tr.Points),
		}
		switch {
		case tr.LastRun() != newest:
			// Established history, gone now. A one-point wonder that
			// disappeared is not an event worth paging about.
			if len(tr.Points) >= cfg.MinPoints {
				v.Kind = KindVanished
			} else {
				v.Kind = KindInsufficient
			}
		case tr.FirstRun() == newest:
			v.Kind = KindNew
		default:
			series := tr.Series(cfg.Metric)
			last := series[len(series)-1]
			var baseline []float64
			for _, x := range series[:len(series)-1] {
				if !math.IsNaN(x) {
					baseline = append(baseline, x)
				}
			}
			if len(baseline) > cfg.Window {
				baseline = baseline[len(baseline)-cfg.Window:]
			}
			if math.IsNaN(last) || len(baseline) < cfg.MinPoints {
				v.Kind = KindInsufficient
				break
			}
			med := median(baseline)
			mad := scaledMAD(baseline, med)
			// Floor the spread so a perfectly flat baseline does not
			// divide by zero and declare every wiggle infinite: treat
			// the baseline as at least MinRel/MADs relative noise.
			floor := math.Abs(med) * cfg.MinRel / cfg.MADs
			if mad < floor {
				mad = floor
			}
			v.Last, v.Baseline, v.MAD = last, med, mad
			if med != 0 {
				v.RelChange = (last - med) / math.Abs(med)
			}
			if mad > 0 {
				v.Deviation = (last - med) / mad
			}
			switch {
			case math.Abs(v.Deviation) < cfg.MADs || math.Abs(v.RelChange) < cfg.MinRel:
				v.Kind = KindSteady
			case (v.Deviation < 0) == *cfg.LowerIsWorse:
				v.Kind = KindRegressed
			default:
				v.Kind = KindImproved
			}
		}
		out = append(out, v)
	}
	rank := map[Kind]int{
		KindRegressed: 0, KindImproved: 1, KindVanished: 2,
		KindNew: 3, KindSteady: 4, KindInsufficient: 5,
	}
	sort.SliceStable(out, func(i, j int) bool {
		if rank[out[i].Kind] != rank[out[j].Kind] {
			return rank[out[i].Kind] < rank[out[j].Kind]
		}
		if out[i].Share != out[j].Share {
			return out[i].Share > out[j].Share
		}
		return out[i].TrajectoryID < out[j].TrajectoryID
	})
	return out
}
