package cluster

import (
	"fmt"
	"math"
	"sort"
)

// This file holds the streaming counterpart of the batch DBSCAN path:
// an index that accepts points one at a time and keeps the density
// state — per-point neighbour counts, the core set and the core
// connectivity — current after every insertion, so sealing a window
// needs no full clustering pass.
//
// The batch pipeline (RunFlat) min–max-normalises the window, runs
// dbscanFlat and renumbers by weight. Its labels are a pure function of
// the final geometry plus the scan order:
//
//   - A point is core iff its eps-neighbourhood (itself included) holds
//     at least MinPts points — no order involved.
//   - Two cores within eps always end in the same cluster, so the core
//     partition is the connected components of the core–core eps graph —
//     no order involved.
//   - The outer scan discovers each component at its minimal core index,
//     so raw cluster ids are the components ranked by minimal core index.
//   - A border point is adopted during the expansion of the earliest
//     discovered cluster holding a core within eps of it: the component,
//     among those with a core in range, with the smallest minimal core
//     index.
//
// Incremental therefore maintains exactly the order-free part (counts
// and the core components, updated by localized re-expansion around
// each insertion) and defers the order-dependent part to Seal, which is
// handed the canonical point order and replays the rules above plus
// relabelByWeight — bit-exact with RunFlat over the same points in that
// order, as the differential suite in incremental_test.go proves.
//
// Normalisation is the one global dependency: every coordinate is
// scaled by the running per-dimension min/max, so an insertion that
// extends a range invalidates every cell assignment and the structure
// is rebuilt. Extensions get rare as the window fills (O(log n) expected
// for i.i.d. coordinates), so rebuilds amortise away; Stats reports the
// count so callers can watch pathological feeds.

// IncrementalStats describes the live state of an incremental index.
type IncrementalStats struct {
	// Points is the number of inserted points.
	Points int
	// Cores is the number of current core points.
	Cores int
	// Components is the number of connected core components (the live
	// provisional cluster count, before weight cuts).
	Components int
	// Cells is the number of populated grid cells.
	Cells int
	// Rebuilds counts the range-extension rebuilds performed so far.
	Rebuilds int
}

// Incremental is an insert-only DBSCAN index over a growing point set.
// It requires explicit Eps and MinPts: the k-dist eps estimator and the
// size-scaled MinPts default need the whole window up front, which is
// exactly what a streaming session does not have. Callers with
// estimator configurations use the batch path instead.
type Incremental struct {
	dims   int
	cfg    Config
	eps    float64
	minPts int

	n       int
	raw     []float64 // un-normalised coordinates, strided
	weights []float64
	mins    []float64
	maxs    []float64
	normed  []float64 // raw normalised by the current ranges, strided

	// Cell directory: same floor(v/eps) geometry and exact 8-byte
	// big-endian keys as the batch grid index, but with growable buckets
	// because points keep arriving. Lookups are alloc-free via the
	// map[string] compiler optimisation; only a brand-new cell allocates
	// its key.
	cellSlot map[string]int32
	buckets  [][]int32

	counts []int32 // eps-neighbour count per point, self included
	parent []int32 // union-find over points; only core links are made
	usize  []int32
	cores  int

	rebuilds int

	cellBuf  []int64
	nbrCell  []int64
	keyBuf   []byte
	neighBuf []int32
	expBuf   []int32
}

// NewIncremental returns an empty incremental index for dims-dimensional
// points under cfg. cfg must pin the density parameters (Eps > 0,
// MinPts > 0) and select the DBSCAN algorithm.
func NewIncremental(dims int, cfg Config) (*Incremental, error) {
	if dims <= 0 {
		return nil, fmt.Errorf("cluster: incremental index needs dims > 0, got %d", dims)
	}
	if cfg.Algorithm != "" && cfg.Algorithm != AlgoDBSCAN {
		return nil, fmt.Errorf("cluster: incremental index supports only %s, not %q", AlgoDBSCAN, cfg.Algorithm)
	}
	if cfg.Eps <= 0 || cfg.MinPts <= 0 {
		return nil, fmt.Errorf("cluster: incremental index needs explicit Eps and MinPts (got %g, %d)", cfg.Eps, cfg.MinPts)
	}
	s := &Incremental{
		dims:     dims,
		cfg:      cfg,
		eps:      cfg.Eps,
		minPts:   cfg.MinPts,
		mins:     make([]float64, dims),
		maxs:     make([]float64, dims),
		cellSlot: map[string]int32{},
		cellBuf:  make([]int64, dims),
		nbrCell:  make([]int64, dims),
		keyBuf:   make([]byte, dims*8),
	}
	for d := 0; d < dims; d++ {
		s.mins[d] = math.Inf(1)
		s.maxs[d] = math.Inf(-1)
	}
	return s, nil
}

// N returns the number of inserted points.
func (s *Incremental) N() int { return s.n }

// Stats snapshots the live index state.
func (s *Incremental) Stats() IncrementalStats {
	st := IncrementalStats{
		Points:   s.n,
		Cores:    s.cores,
		Cells:    len(s.buckets),
		Rebuilds: s.rebuilds,
	}
	seen := map[int32]bool{}
	for i := 0; i < s.n; i++ {
		if int(s.counts[i]) < s.minPts {
			continue
		}
		r := s.find(int32(i))
		if !seen[r] {
			seen[r] = true
			st.Components++
		}
	}
	return st
}

// Add inserts one point (len(p) == dims) with its weight, updating
// cells, neighbour counts and the core components in place. When the
// point extends a normalisation range the whole index is rebuilt under
// the new scales.
func (s *Incremental) Add(p []float64, w float64) {
	if len(p) != s.dims {
		panic(fmt.Sprintf("cluster: incremental Add of %d-dim point into %d-dim index", len(p), s.dims))
	}
	i := s.n
	s.n++
	s.raw = append(s.raw, p...)
	s.weights = append(s.weights, w)
	s.counts = append(s.counts, 0)
	s.parent = append(s.parent, int32(i))
	s.usize = append(s.usize, 1)
	extend := false
	for d, v := range p {
		if v < s.mins[d] {
			s.mins[d] = v
			extend = true
		}
		if v > s.maxs[d] {
			s.maxs[d] = v
			extend = true
		}
	}
	if extend {
		s.rebuild()
		return
	}
	s.normed = append(s.normed, make([]float64, s.dims)...)
	s.normalizeInto(i)
	s.insert(i)
}

// normalizeInto rescales point i into normed under the current ranges,
// with the exact arithmetic of the batch normalizeFlat: (v-min)/width,
// degenerate widths pinned to 0.5.
func (s *Incremental) normalizeInto(i int) {
	for d := 0; d < s.dims; d++ {
		v := s.raw[i*s.dims+d]
		w := s.maxs[d] - s.mins[d]
		if w <= 0 {
			s.normed[i*s.dims+d] = 0.5
		} else {
			s.normed[i*s.dims+d] = (v - s.mins[d]) / w
		}
	}
}

// rebuild renormalises every point and reinserts them under the new
// ranges. The result is identical to having inserted everything with
// the final ranges in the first place: counts and core components are
// order-free functions of the final geometry.
func (s *Incremental) rebuild() {
	s.rebuilds++
	if cap(s.normed) < s.n*s.dims {
		s.normed = make([]float64, s.n*s.dims)
	} else {
		s.normed = s.normed[:s.n*s.dims]
	}
	s.cellSlot = make(map[string]int32, len(s.buckets)+1)
	s.buckets = s.buckets[:0]
	s.cores = 0
	for i := 0; i < s.n; i++ {
		s.counts[i] = 0
		s.parent[i] = int32(i)
		s.usize[i] = 1
		s.normalizeInto(i)
	}
	for i := 0; i < s.n; i++ {
		s.insert(i)
	}
}

// insert adds (already normalised) point i to the cell directory and
// updates the density state: one neighbourhood query for the point
// itself, an increment per neighbour, and a localized re-expansion
// around every neighbour the increment promotes to core.
func (s *Incremental) insert(i int) {
	q := s.normed[i*s.dims : (i+1)*s.dims]
	neigh := s.neighborsOf(q, s.neighBuf[:0])
	s.neighBuf = neigh
	// The point is not filed yet, so the query cannot see it; the batch
	// count includes self whenever the self-distance is a real zero (a
	// NaN or Inf coordinate poisons it to NaN and fails dist <= eps²).
	s.counts[i] = int32(len(neigh))
	selfOK := true
	for _, v := range q {
		if v-v != 0 {
			selfOK = false
			break
		}
	}
	if selfOK {
		s.counts[i]++
	}
	for _, j := range neigh {
		if int(j) == i {
			continue
		}
		s.counts[j]++
		if int(s.counts[j]) == s.minPts {
			s.reexpand(int(j))
		}
	}
	if int(s.counts[i]) >= s.minPts {
		s.cores++
		for _, j := range neigh {
			if int(j) != i && int(s.counts[j]) >= s.minPts {
				s.union(int32(i), j)
			}
		}
	}
	s.addToCell(q, int32(i))
}

// reexpand joins a freshly promoted core with every core already in its
// neighbourhood. This is the localized replacement for the batch
// expansion pass: a single insertion can only change density around the
// points it neighbours, so re-examining those suffices.
func (s *Incremental) reexpand(j int) {
	s.cores++
	q := s.normed[j*s.dims : (j+1)*s.dims]
	nb := s.neighborsOf(q, s.expBuf[:0])
	s.expBuf = nb
	for _, k := range nb {
		if int(k) != j && int(s.counts[k]) >= s.minPts {
			s.union(int32(j), k)
		}
	}
}

func (s *Incremental) find(i int32) int32 {
	for s.parent[i] != i {
		s.parent[i] = s.parent[s.parent[i]]
		i = s.parent[i]
	}
	return i
}

func (s *Incremental) union(a, b int32) {
	ra, rb := s.find(a), s.find(b)
	if ra == rb {
		return
	}
	if s.usize[ra] < s.usize[rb] {
		ra, rb = rb, ra
	}
	s.parent[rb] = ra
	s.usize[ra] += s.usize[rb]
}

// addToCell files point i under its cell key.
func (s *Incremental) addToCell(q []float64, i int32) {
	for d := 0; d < s.dims; d++ {
		s.cellBuf[d] = cellCoord(q[d], s.eps)
	}
	encodeWide(s.keyBuf, s.cellBuf)
	slot, ok := s.cellSlot[string(s.keyBuf)]
	if !ok {
		slot = int32(len(s.buckets))
		s.cellSlot[string(s.keyBuf)] = slot
		s.buckets = append(s.buckets, nil)
	}
	s.buckets[slot] = append(s.buckets[slot], i)
}

// neighborsOf appends to out every inserted point within eps of q (q's
// own index included when already filed), scanning the 3^dims cell
// neighbourhood with the batch index's inclusive dist² <= eps²
// criterion.
func (s *Incremental) neighborsOf(q []float64, out []int32) []int32 {
	eps2 := s.eps * s.eps
	for d := 0; d < s.dims; d++ {
		s.cellBuf[d] = cellCoord(q[d], s.eps)
		s.nbrCell[d] = s.cellBuf[d] - 1
	}
	for {
		encodeWide(s.keyBuf, s.nbrCell)
		if slot, ok := s.cellSlot[string(s.keyBuf)]; ok {
			for _, j := range s.buckets[slot] {
				base := int(j) * s.dims
				var dist float64
				for d := 0; d < s.dims; d++ {
					dd := s.normed[base+d] - q[d]
					dist += dd * dd
				}
				if dist <= eps2 {
					out = append(out, j)
				}
			}
		}
		d := 0
		for ; d < s.dims; d++ {
			s.nbrCell[d]++
			if s.nbrCell[d] <= s.cellBuf[d]+1 {
				break
			}
			s.nbrCell[d] = s.cellBuf[d] - 1
		}
		if d == s.dims {
			break
		}
	}
	return out
}

// Seal derives the final labels under the canonical point order: canon
// maps canonical position k to the insertion index canon[k] (nil means
// insertion order). The returned Result — labels in canonical order,
// renumbered by weight with the configured cuts — is bit-exact with
// RunFlat over the same points laid out in that order. Seal does not
// consume the index: more points may be added and later windows sealed
// again, which is what makes re-analysis from one resident index cheap.
func (s *Incremental) Seal(canon []int) (*Result, error) {
	n := s.n
	if n == 0 {
		return &Result{}, nil
	}
	if canon == nil {
		canon = make([]int, n)
		for i := range canon {
			canon[i] = i
		}
	}
	if len(canon) != n {
		return nil, fmt.Errorf("cluster: seal permutation of %d entries over %d points", len(canon), n)
	}
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	for k, i := range canon {
		if i < 0 || i >= n || pos[i] >= 0 {
			return nil, fmt.Errorf("cluster: seal order is not a permutation (index %d)", i)
		}
		pos[i] = k
	}

	// Minimal canonical core position per component root: the batch scan
	// discovers each cluster exactly there.
	const unset = -1
	minCore := make([]int, n)
	for i := range minCore {
		minCore[i] = unset
	}
	for i := 0; i < n; i++ {
		if int(s.counts[i]) < s.minPts {
			continue
		}
		r := s.find(int32(i))
		if minCore[r] == unset || pos[i] < minCore[r] {
			minCore[r] = pos[i]
		}
	}
	var roots []int32
	for i := 0; i < n; i++ {
		r := int32(i)
		if s.parent[r] == r && minCore[r] != unset {
			roots = append(roots, r)
		}
	}
	sort.Slice(roots, func(a, b int) bool { return minCore[roots[a]] < minCore[roots[b]] })
	rawOf := make([]int, n)
	for rank, r := range roots {
		rawOf[r] = rank + 1
	}

	labels := make([]int, n)
	var nbuf []int32
	for k := 0; k < n; k++ {
		i := canon[k]
		if int(s.counts[i]) >= s.minPts {
			labels[k] = rawOf[s.find(int32(i))]
			continue
		}
		// Border or noise: adopted by the earliest-discovered component
		// holding a core within eps, exactly as the batch expansion
		// reaches it first.
		q := s.normed[i*s.dims : (i+1)*s.dims]
		nbuf = s.neighborsOf(q, nbuf[:0])
		best := unset
		var bestRoot int32
		for _, j := range nbuf {
			if int(s.counts[j]) < s.minPts {
				continue
			}
			r := s.find(j)
			if m := minCore[r]; best == unset || m < best {
				best = m
				bestRoot = r
			}
		}
		if best == unset {
			labels[k] = Noise
		} else {
			labels[k] = rawOf[bestRoot]
		}
	}

	res := &Result{Labels: labels, Eps: s.eps, MinPts: s.minPts}
	// relabelByWeight accumulates cluster weights in point order; feed it
	// the weights in canonical order so the float sums associate exactly
	// as the batch pass does.
	w := make([]float64, n)
	for k, i := range canon {
		w[k] = s.weights[i]
	}
	relabelByWeight(res, w, s.cfg)
	return res, nil
}
