package cluster

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"perftrack/internal/oracle"
)

// flatCanon lays the scenario points out in canonical (generation)
// order as strided storage.
func flatCanon(points [][]float64) ([]float64, int) {
	if len(points) == 0 {
		return nil, 0
	}
	dims := len(points[0])
	x := make([]float64, 0, len(points)*dims)
	for _, p := range points {
		x = append(x, p...)
	}
	return x, dims
}

func incrementalConfig(seed uint64, sc oracle.Scenario) Config {
	cfg := Config{Eps: sc.Eps, MinPts: sc.MinPts}
	switch seed % 4 {
	case 1:
		cfg.MaxClusters = 2
	case 2:
		cfg.MinClusterWeight = 0.2
	case 3:
		cfg.MaxClusters = 3
		cfg.MinClusterWeight = 0.05
	}
	return cfg
}

// TestIncrementalSealDifferential proves the heart of the streaming
// path: for hundreds of seeded scenarios and randomized insertion
// orders, sealing the incremental index under the canonical order is
// bit-exact with the batch RunFlat over the same points in that order.
func TestIncrementalSealDifferential(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		sc := oracle.GenScenario(seed)
		x, dims := flatCanon(sc.Points)
		n := len(sc.Points)
		rng := rand.New(rand.NewPCG(seed, 0x1ec5))
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = float64(1+rng.IntN(5)) * 1e6
		}
		cfg := incrementalConfig(seed, sc)
		want, err := RunFlat(x, dims, weights, cfg)
		if err != nil {
			t.Fatalf("seed %d: RunFlat: %v", seed, err)
		}

		inc, err := NewIncremental(dims, cfg)
		if err != nil {
			t.Fatalf("seed %d: NewIncremental: %v", seed, err)
		}
		// Insert in a random order; Seal receives the inverse map back to
		// canonical positions.
		order := rng.Perm(n)
		canon := make([]int, n)
		for step, ci := range order {
			canon[ci] = step
		}
		for _, ci := range order {
			inc.Add(sc.Points[ci], weights[ci])
		}
		got, err := inc.Seal(canon)
		if err != nil {
			t.Fatalf("seed %d: Seal: %v", seed, err)
		}
		if !reflect.DeepEqual(got.Labels, want.Labels) {
			t.Fatalf("seed %d: labels diverge\n inc:   %v\n batch: %v", seed, got.Labels, want.Labels)
		}
		if got.NumClusters != want.NumClusters || got.Eps != want.Eps || got.MinPts != want.MinPts {
			t.Fatalf("seed %d: result header diverges: got %+v want %+v", seed, got, want)
		}
	}
}

// TestIncrementalSealIsNonDestructive seals the index mid-stream,
// checks the prefix against batch, keeps inserting and seals again:
// the resident index serves both windows exactly.
func TestIncrementalSealIsNonDestructive(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		sc := oracle.GenScenario(seed)
		n := len(sc.Points)
		if n < 4 {
			continue
		}
		dims := len(sc.Points[0])
		cfg := Config{Eps: sc.Eps, MinPts: sc.MinPts}
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = float64(1 + i%7)
		}
		inc, err := NewIncremental(dims, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cut := n / 2
		for i := 0; i < cut; i++ {
			inc.Add(sc.Points[i], weights[i])
		}
		x, _ := flatCanon(sc.Points[:cut])
		want, err := RunFlat(x, dims, weights[:cut], cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := inc.Seal(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Labels, want.Labels) {
			t.Fatalf("seed %d: prefix labels diverge", seed)
		}
		for i := cut; i < n; i++ {
			inc.Add(sc.Points[i], weights[i])
		}
		x, _ = flatCanon(sc.Points)
		want, err = RunFlat(x, dims, weights, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err = inc.Seal(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Labels, want.Labels) {
			t.Fatalf("seed %d: full labels diverge after mid-stream seal", seed)
		}
	}
}

// TestIncrementalSeparatedDifferential runs the planted-truth corpus:
// beyond matching batch exactly, the separated scenarios make any
// wrong merge/split blatant.
func TestIncrementalSeparatedDifferential(t *testing.T) {
	for seed := uint64(0); seed < 100; seed++ {
		sc, _ := oracle.GenSeparated(seed)
		x, dims := flatCanon(sc.Points)
		n := len(sc.Points)
		cfg := Config{Eps: sc.Eps, MinPts: sc.MinPts}
		want, err := RunFlat(x, dims, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		inc, err := NewIncremental(dims, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Unit weights: Seal must tolerate them like RunFlat does.
		rng := rand.New(rand.NewPCG(seed, 0x5e9a))
		order := rng.Perm(n)
		canon := make([]int, n)
		for step, ci := range order {
			canon[ci] = step
		}
		for _, ci := range order {
			inc.Add(sc.Points[ci], 1)
		}
		got, err := inc.Seal(canon)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Labels, want.Labels) {
			t.Fatalf("seed %d: separated labels diverge", seed)
		}
	}
}

// TestIncrementalRebuilds feeds monotonically growing coordinates — the
// adversarial case where every insertion extends the normalisation
// range — and checks the index still seals exactly and reports its
// rebuild count.
func TestIncrementalRebuilds(t *testing.T) {
	cfg := Config{Eps: 0.1, MinPts: 3}
	inc, err := NewIncremental(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var pts [][]float64
	for i := 0; i < 64; i++ {
		p := []float64{float64(i), float64(i % 5)}
		pts = append(pts, p)
		inc.Add(p, 1)
	}
	if inc.Stats().Rebuilds == 0 {
		t.Fatal("expected range-extension rebuilds on monotone input")
	}
	x, dims := flatCanon(pts)
	want, err := RunFlat(x, dims, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := inc.Seal(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Labels, want.Labels) {
		t.Fatal("labels diverge under adversarial rebuild load")
	}
}

// TestIncrementalRejectsEstimatorConfigs pins the contract: data-driven
// eps/minPts need the whole window and are batch-only.
func TestIncrementalRejectsEstimatorConfigs(t *testing.T) {
	cases := []Config{
		{Eps: 0, MinPts: 4},
		{Eps: 0.1, MinPts: 0},
		{Algorithm: AlgoKMeans, Eps: 0.1, MinPts: 4},
	}
	for i, cfg := range cases {
		if _, err := NewIncremental(2, cfg); err == nil {
			t.Fatalf("case %d: config %+v unexpectedly accepted", i, cfg)
		}
	}
	if _, err := NewIncremental(0, Config{Eps: 0.1, MinPts: 4}); err == nil {
		t.Fatal("zero dims unexpectedly accepted")
	}
}

// TestIncrementalStats sanity-checks the live counters against a known
// two-blob layout.
func TestIncrementalStats(t *testing.T) {
	cfg := Config{Eps: 0.15, MinPts: 3}
	inc, err := NewIncremental(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	blob := func(cx, cy float64) {
		for i := 0; i < 5; i++ {
			inc.Add([]float64{cx + float64(i)*0.001, cy + float64(i)*0.001}, 1)
		}
	}
	blob(0.1, 0.1)
	blob(0.9, 0.9)
	st := inc.Stats()
	if st.Points != 10 {
		t.Fatalf("points = %d", st.Points)
	}
	if st.Components != 2 {
		t.Fatalf("components = %d (cores %d)", st.Components, st.Cores)
	}
	if st.Cells == 0 {
		t.Fatal("no populated cells")
	}
}
