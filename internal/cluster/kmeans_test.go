package cluster

import (
	"math"
	"math/rand/v2"
	"reflect"
	"testing"
)

func threeBlobs(seed uint64) [][]float64 {
	rng := rand.New(rand.NewPCG(seed, 1))
	pts := blob(rng, 100, 0.15, 0.15, 0.02)
	pts = append(pts, blob(rng, 100, 0.5, 0.8, 0.02)...)
	pts = append(pts, blob(rng, 100, 0.85, 0.2, 0.02)...)
	return pts
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	pts := threeBlobs(1)
	labels, cents := KMeans(pts, 3, 7)
	if len(cents) != 3 {
		t.Fatalf("centroids = %d", len(cents))
	}
	// Each blob must be pure: all 100 points share one label.
	for b := 0; b < 3; b++ {
		want := labels[b*100]
		for i := b*100 + 1; i < (b+1)*100; i++ {
			if labels[i] != want {
				t.Fatalf("blob %d split: point %d has label %d, want %d", b, i, labels[i], want)
			}
		}
	}
	// And the three labels are distinct.
	if labels[0] == labels[100] || labels[100] == labels[200] || labels[0] == labels[200] {
		t.Error("blobs merged")
	}
}

func TestKMeansDeterministic(t *testing.T) {
	pts := threeBlobs(2)
	a, _ := KMeans(pts, 3, 42)
	b, _ := KMeans(pts, 3, 42)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different clusterings")
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	labels, cents := KMeans(nil, 3, 1)
	if len(labels) != 0 || cents != nil {
		t.Error("empty input mishandled")
	}
	// k > n clamps to n.
	pts := [][]float64{{0, 0}, {1, 1}}
	labels, cents = KMeans(pts, 5, 1)
	if len(cents) != 2 {
		t.Errorf("clamped centroids = %d", len(cents))
	}
	for _, l := range labels {
		if l < 1 || l > 2 {
			t.Errorf("label out of range: %d", l)
		}
	}
	// Identical points: no crash, one effective cluster.
	same := [][]float64{{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}}
	labels, _ = KMeans(same, 2, 1)
	if len(labels) != 3 {
		t.Error("identical points mishandled")
	}
}

func TestSilhouetteQuality(t *testing.T) {
	pts := threeBlobs(3)
	good, _ := KMeans(pts, 3, 7)
	sGood := Silhouette(pts, good)
	if sGood < 0.7 {
		t.Errorf("well-separated silhouette = %v, want high", sGood)
	}
	// A deliberately wrong k scores worse.
	bad, _ := KMeans(pts, 2, 7)
	sBad := Silhouette(pts, bad)
	if sBad >= sGood {
		t.Errorf("k=2 silhouette %v >= k=3 silhouette %v", sBad, sGood)
	}
}

func TestSilhouetteDegenerate(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 1}}
	if got := Silhouette(pts, []int{1, 1}); got != 0 {
		t.Errorf("single-cluster silhouette = %v", got)
	}
	if got := Silhouette(pts, []int{0, 0}); got != 0 {
		t.Errorf("all-noise silhouette = %v", got)
	}
}

func TestKMeansAutoFindsK(t *testing.T) {
	pts := threeBlobs(4)
	labels, k := KMeansAuto(pts, 6, 7)
	if k != 3 {
		t.Errorf("selected k = %d, want 3", k)
	}
	distinct := map[int]bool{}
	for _, l := range labels {
		distinct[l] = true
	}
	if len(distinct) != 3 {
		t.Errorf("labelling uses %d clusters", len(distinct))
	}
}

func TestRunKMeansRelabelsByWeight(t *testing.T) {
	pts := threeBlobs(5)
	weights := make([]float64, len(pts))
	for i := range weights {
		switch {
		case i < 100:
			weights[i] = 1
		case i < 200:
			weights[i] = 100 // the heavy blob
		default:
			weights[i] = 10
		}
	}
	res, err := RunKMeans(pts, weights, Config{MaxClusters: 6}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 3 {
		t.Fatalf("clusters = %d", res.NumClusters)
	}
	if res.Labels[150] != 1 {
		t.Errorf("heavy blob labelled %d, want 1", res.Labels[150])
	}
	if res.Labels[250] != 2 || res.Labels[50] != 3 {
		t.Errorf("weight ordering wrong: %d %d", res.Labels[250], res.Labels[50])
	}
}

func TestKMeansVsDBSCANOnNoise(t *testing.T) {
	// The structural difference the paper's choice rests on: with
	// outliers present, DBSCAN isolates them as noise while k-means must
	// absorb them into a cluster, dragging centroids.
	rng := rand.New(rand.NewPCG(6, 1))
	pts := blob(rng, 200, 0.3, 0.3, 0.01)
	pts = append(pts, blob(rng, 200, 0.7, 0.7, 0.01)...)
	outlier := []float64{0.05, 0.95}
	pts = append(pts, outlier)

	db := DBSCAN(pts, 0.05, 5)
	if db[len(db)-1] != Noise {
		t.Error("DBSCAN failed to isolate the outlier")
	}
	km, _ := KMeans(pts, 2, 7)
	if km[len(km)-1] == 0 {
		t.Error("k-means has no noise concept; the outlier must get a label")
	}
}

func TestSilhouetteRange(t *testing.T) {
	pts := threeBlobs(8)
	labels, _ := KMeans(pts, 4, 9)
	s := Silhouette(pts, labels)
	if math.IsNaN(s) || s < -1 || s > 1 {
		t.Errorf("silhouette out of range: %v", s)
	}
}

func BenchmarkKMeans(b *testing.B) {
	pts := threeBlobs(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		KMeans(pts, 3, 7)
	}
}
