package cluster

import (
	"math"
	"testing"

	"perftrack/internal/oracle"
)

// Differential harness: the grid-accelerated DBSCAN and NN paths must
// produce answers identical to the brute-force references in
// internal/oracle on seeded random scenarios. The scenarios are lattice-
// quantised, so exact ties and points exactly on the eps boundary are
// common — any divergence from the canonical tie-break rules documented
// in nn.go shows up as a failure here, not as a silent wrong answer in a
// study. `make oracle` runs these (together with the core and align
// differential tests) as the pre-merge gate for every optimisation.

func TestOracleDBSCANDifferential(t *testing.T) {
	for seed := uint64(0); seed < 100; seed++ {
		sc := oracle.GenScenario(seed)
		got := DBSCAN(sc.Points, sc.Eps, sc.MinPts)
		want := oracle.DBSCAN(sc.Points, sc.Eps, sc.MinPts)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d (n=%d eps=%v minPts=%d): label[%d] = %d, oracle says %d",
					seed, len(sc.Points), sc.Eps, sc.MinPts, i, got[i], want[i])
			}
		}
	}
}

func TestOracleNNDifferential(t *testing.T) {
	for seed := uint64(0); seed < 60; seed++ {
		sc := oracle.GenScenario(seed)
		dims := len(sc.Points[0])
		// Two cell sizes: the scenario's lattice-aligned eps (maximises
		// boundary coincidences) and the production nnCell value.
		for _, cell := range []float64{sc.Eps, 0.05} {
			nn := NewNN(sc.Points, cell)
			check := func(q []float64, what string) {
				gi, gd := nn.Nearest(q)
				wi, wd := oracle.Nearest(sc.Points, q)
				if gi != wi || gd != wd {
					t.Fatalf("seed %d cell %v %s: Nearest(%v) = (%d, %v), oracle says (%d, %v)",
						seed, cell, what, q, gi, gd, wi, wd)
				}
			}
			// Random queries (some outside the unit square, exercising
			// the out-of-bbox linear fallback)...
			for qi := 0; qi < 20; qi++ {
				check(oracle.GenQuery(seed, qi, dims), "query")
			}
			// ...and every indexed point as its own query: duplicates
			// make zero-distance ties, where only the index ordering
			// disambiguates.
			for i := range sc.Points {
				if i%3 == 0 {
					check(sc.Points[i], "self")
				}
			}
		}
	}
}

func TestOracleNNFarQueryFallback(t *testing.T) {
	sc := oracle.GenScenario(3)
	nn := NewNN(sc.Points, 0.01) // tiny cells force a large ring bound
	q := make([]float64, len(sc.Points[0]))
	for d := range q {
		q[d] = 50 // far outside the indexed bounding box
	}
	gi, gd := nn.Nearest(q)
	wi, wd := oracle.Nearest(sc.Points, q)
	if gi != wi || gd != wd {
		t.Fatalf("far query = (%d, %v), oracle says (%d, %v)", gi, gd, wi, wd)
	}
}

// TestOracleNNSparseOutlierRegression pins the sparse-data bug of the
// pre-bbox ring search: with cell 0.05, the old implementation stopped
// expanding at ring 81 ("r·cell > 4, and we already have a candidate"),
// returning the diagonal point at distance ~4.101 even though a closer
// point at distance 4.075 sits in ring 82. The bbox-bounded sweep (or its
// linear-scan fallback) must return the true nearest neighbour no matter
// how far the data spreads.
func TestOracleNNSparseOutlierRegression(t *testing.T) {
	pts := [][]float64{
		{2.9, 2.9},    // ring 58 from the origin cell, distance ~4.101
		{-4.075, 0.0}, // ring 82, distance 4.075 — the true nearest
	}
	q := []float64{0, 0}
	nn := NewNN(pts, 0.05)
	gi, gd := nn.Nearest(q)
	wi, wd := oracle.Nearest(pts, q)
	if wi != 1 {
		t.Fatalf("oracle sanity: nearest = %d, want 1", wi)
	}
	if gi != wi || gd != wd {
		t.Fatalf("Nearest = (%d, %v), oracle says (%d, %v)", gi, gd, wi, wd)
	}
}

func FuzzDBSCANDifferential(f *testing.F) {
	for seed := uint64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		sc := oracle.GenScenario(seed)
		got := DBSCAN(sc.Points, sc.Eps, sc.MinPts)
		want := oracle.DBSCAN(sc.Points, sc.Eps, sc.MinPts)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: label[%d] = %d, oracle says %d", seed, i, got[i], want[i])
			}
		}
	})
}

func FuzzNNDifferential(f *testing.F) {
	f.Add(uint64(0), 0.5, 0.5)
	f.Add(uint64(1), 0.0, 1.0)
	f.Add(uint64(2), -3.0, 7.5)
	f.Fuzz(func(t *testing.T, seed uint64, qx, qy float64) {
		if math.IsNaN(qx) || math.IsInf(qx, 0) || math.IsNaN(qy) || math.IsInf(qy, 0) {
			t.Skip("non-finite query")
		}
		sc := oracle.GenScenario(seed)
		q := make([]float64, len(sc.Points[0]))
		q[0], q[1] = qx, qy
		nn := NewNN(sc.Points, sc.Eps)
		gi, gd := nn.Nearest(q)
		wi, wd := oracle.Nearest(sc.Points, q)
		if gi != wi || gd != wd {
			t.Fatalf("seed %d: Nearest(%v) = (%d, %v), oracle says (%d, %v)", seed, q, gi, gd, wi, wd)
		}
	})
}
