package cluster

import (
	"math/rand/v2"
	"testing"
)

// The core microbenchmark suite (BenchmarkCore*) measures the hot
// analysis kernels on synthetic frames shaped like the catalog studies:
// a handful of dense gaussian blobs in the normalised unit square plus a
// sprinkle of background noise. `make bench-core` regenerates
// BENCH_core.json from these, and `make bench-compare` gates regressions
// against the committed baseline.

// benchPoints builds n points in dims dimensions: 8 blobs of tight
// gaussian spread plus 5% uniform noise, deterministic under the seed.
func benchPoints(n, dims int, seed uint64) [][]float64 {
	rng := rand.New(rand.NewPCG(seed, 0xbe7c))
	centres := make([][]float64, 8)
	for c := range centres {
		centres[c] = make([]float64, dims)
		for d := range centres[c] {
			centres[c][d] = 0.1 + 0.8*rng.Float64()
		}
	}
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dims)
		if rng.Float64() < 0.05 {
			for d := range p {
				p[d] = rng.Float64()
			}
		} else {
			c := centres[rng.IntN(len(centres))]
			for d := range p {
				p[d] = c[d] + 0.02*rng.NormFloat64()
			}
		}
		pts[i] = p
	}
	return pts
}

func BenchmarkCoreClusterDBSCAN(b *testing.B) {
	pts := benchPoints(5000, 2, 1)
	b.ReportAllocs()
	b.ResetTimer()
	var labels []int
	for i := 0; i < b.N; i++ {
		labels = DBSCAN(pts, 0.03, 8)
	}
	b.StopTimer()
	n := 0
	for _, l := range labels {
		if l > n {
			n = l
		}
	}
	b.ReportMetric(float64(n), "clusters")
}

func BenchmarkCoreClusterDBSCAN4D(b *testing.B) {
	pts := benchPoints(3000, 4, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DBSCAN(pts, 0.08, 8)
	}
}

func BenchmarkCoreClusterRun(b *testing.B) {
	pts := benchPoints(5000, 2, 3)
	weights := make([]float64, len(pts))
	rng := rand.New(rand.NewPCG(9, 9))
	for i := range weights {
		weights[i] = 1 + 1000*rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(pts, weights, Config{Eps: 0.03, MinPts: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoreNNNearest measures one full displacement-style sweep:
// every query point classified to its nearest indexed point.
func BenchmarkCoreNNNearest(b *testing.B) {
	pts := benchPoints(5000, 2, 4)
	queries := benchPoints(5000, 2, 5)
	nn := NewNN(pts, 0.05)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			nn.Nearest(q)
		}
	}
}

func BenchmarkCoreNNBuild(b *testing.B) {
	pts := benchPoints(5000, 2, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewNN(pts, 0.05)
	}
}
