// Package cluster implements density-based clustering of CPU bursts in an
// arbitrary-dimensional performance-metric space, following the approach of
// González et al. (IPDPS'09) that the paper builds on: DBSCAN over
// per-dimension min–max-normalised metric values, with the resulting
// clusters ranked by how much execution time they explain.
//
// Clusters are the paper's trackable objects: "all CPU bursts that are
// similar with respect to these metrics get grouped into the same object".
package cluster

import (
	"fmt"
	"math"
	"sort"
)

// Noise is the label assigned to points that belong to no cluster. Cluster
// identifiers are 1-based, matching the paper's numbering.
const Noise = 0

// Algorithm names for Config.Algorithm.
const (
	// AlgoDBSCAN is the default density-based algorithm of the paper's
	// reference tool chain.
	AlgoDBSCAN = "dbscan"
	// AlgoKMeans selects the partitional baseline (k-means++ with
	// silhouette model selection) for comparison studies.
	AlgoKMeans = "kmeans"
)

// Config parametrises a clustering run.
type Config struct {
	// Algorithm selects the clusterer: AlgoDBSCAN (default) or
	// AlgoKMeans.
	Algorithm string
	// Eps is the DBSCAN neighbourhood radius in normalised space. 0 asks
	// for the k-dist heuristic (EstimateEps).
	Eps float64
	// MinPts is the DBSCAN density threshold. 0 selects a default scaled
	// to the data size (0.5% of points, at least 4).
	MinPts int
	// MinClusterWeight drops clusters whose total weight (burst time)
	// falls below this fraction of the clustered weight; their points
	// become noise. Default 0 keeps everything.
	MinClusterWeight float64
	// MaxClusters keeps only the heaviest N clusters (0 = unlimited); the
	// paper's tool reduces the objects to "the ones considered more
	// relevant, those that represent a high percentage of the application
	// time".
	MaxClusters int
	// Interrupt, when non-nil, is polled periodically inside the
	// clustering loops; a non-nil return aborts the run with that error.
	// It is how cancelled contexts stop a long DBSCAN mid-flight instead
	// of burning CPU until completion.
	Interrupt func() error
}

func (c Config) minPts(n int) int {
	if c.MinPts > 0 {
		return c.MinPts
	}
	mp := n / 200
	if mp < 4 {
		mp = 4
	}
	return mp
}

// Result holds the outcome of clustering one point set.
type Result struct {
	// Labels assigns every input point a cluster id (1-based) or Noise.
	Labels []int
	// NumClusters is the number of clusters after filtering/renumbering.
	NumClusters int
	// Eps and MinPts record the effective parameters used.
	Eps    float64
	MinPts int
}

// ClusterSizes returns the point count per cluster id (index 0 = noise).
func (r *Result) ClusterSizes() []int {
	sizes := make([]int, r.NumClusters+1)
	for _, l := range r.Labels {
		if l >= 0 && l < len(sizes) {
			sizes[l]++
		}
	}
	return sizes
}

// Normalize min–max-normalises every dimension into [0,1] and returns the
// normalised copy plus the per-dimension ranges. Degenerate dimensions map
// to the constant 0.5.
func Normalize(points [][]float64) (normed [][]float64, mins, maxs []float64) {
	if len(points) == 0 {
		return nil, nil, nil
	}
	dims := len(points[0])
	mins = make([]float64, dims)
	maxs = make([]float64, dims)
	for d := 0; d < dims; d++ {
		mins[d] = math.Inf(1)
		maxs[d] = math.Inf(-1)
	}
	for _, p := range points {
		for d, v := range p {
			if v < mins[d] {
				mins[d] = v
			}
			if v > maxs[d] {
				maxs[d] = v
			}
		}
	}
	normed = make([][]float64, len(points))
	for i, p := range points {
		q := make([]float64, dims)
		for d, v := range p {
			w := maxs[d] - mins[d]
			if w <= 0 {
				q[d] = 0.5
			} else {
				q[d] = (v - mins[d]) / w
			}
		}
		normed[i] = q
	}
	return normed, mins, maxs
}

// sqDist returns the squared Euclidean distance between a and b.
func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// gridIndex buckets points of the unit hypercube into cells of side eps so
// that an eps-neighbourhood query only inspects the 3^d adjacent cells.
type gridIndex struct {
	eps    float64
	dims   int
	cells  map[string][]int
	points [][]float64
	// cellMin/cellMax bound the populated cell coordinates per dimension;
	// the NN ring search uses them to cap its sweep at the ring that
	// covers the whole index instead of guessing with a magic radius.
	cellMin, cellMax []int
}

func newGridIndex(points [][]float64, eps float64) *gridIndex {
	g := &gridIndex{eps: eps, cells: map[string][]int{}, points: points}
	if len(points) > 0 {
		g.dims = len(points[0])
	}
	g.cellMin = make([]int, g.dims)
	g.cellMax = make([]int, g.dims)
	for i, p := range points {
		c := g.coord(p)
		for d, v := range c {
			if i == 0 || v < g.cellMin[d] {
				g.cellMin[d] = v
			}
			if i == 0 || v > g.cellMax[d] {
				g.cellMax[d] = v
			}
		}
		k := g.keyOf(c)
		g.cells[k] = append(g.cells[k], i)
	}
	return g
}

func (g *gridIndex) coord(p []float64) []int {
	c := make([]int, g.dims)
	for d := 0; d < g.dims; d++ {
		c[d] = int(math.Floor(p[d] / g.eps))
	}
	return c
}

func (g *gridIndex) keyOf(c []int) string {
	// Small fixed-size encoding; cells are few (1/eps per dim).
	b := make([]byte, 0, g.dims*5)
	for _, v := range c {
		b = append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v), ':')
	}
	return string(b)
}

func (g *gridIndex) key(p []float64) string { return g.keyOf(g.coord(p)) }

// neighbors returns the indices of all points within eps of q (including q
// itself when q is an indexed point).
func (g *gridIndex) neighbors(q []float64) []int {
	base := g.coord(q)
	eps2 := g.eps * g.eps
	var out []int
	// Enumerate the 3^dims adjacent cells.
	offsets := make([]int, g.dims)
	for i := range offsets {
		offsets[i] = -1
	}
	cell := make([]int, g.dims)
	for {
		for d := 0; d < g.dims; d++ {
			cell[d] = base[d] + offsets[d]
		}
		for _, idx := range g.cells[g.keyOf(cell)] {
			if sqDist(g.points[idx], q) <= eps2 {
				out = append(out, idx)
			}
		}
		// Advance the offset odometer.
		d := 0
		for ; d < g.dims; d++ {
			offsets[d]++
			if offsets[d] <= 1 {
				break
			}
			offsets[d] = -1
		}
		if d == g.dims {
			break
		}
	}
	return out
}

// DBSCAN labels points (already normalised to comparable scales) with the
// classic density-based algorithm. It returns 1-based cluster ids with
// Noise (0) for outliers. Deterministic: clusters are discovered in point
// order, so identical input yields identical labels.
func DBSCAN(points [][]float64, eps float64, minPts int) []int {
	labels, _ := dbscan(points, eps, minPts, nil)
	return labels
}

// interruptEvery is how many units of work pass between Interrupt polls;
// frequent enough that cancellation lands within microseconds, rare
// enough to stay invisible in profiles.
const interruptEvery = 1024

// dbscan is DBSCAN with an optional interrupt hook polled every
// interruptEvery neighbourhood expansions, so a cancelled job stops
// mid-cluster instead of finishing the whole frame.
func dbscan(points [][]float64, eps float64, minPts int, interrupt func() error) ([]int, error) {
	n := len(points)
	labels := make([]int, n)
	if n == 0 {
		return labels, nil
	}
	const (
		unvisited = 0
		noiseMark = -1
	)
	state := make([]int, n) // 0 unvisited, -1 noise, >0 cluster id
	g := newGridIndex(points, eps)
	next := 0
	work := 0
	poll := func() error {
		if interrupt == nil {
			return nil
		}
		work++
		if work%interruptEvery != 0 {
			return nil
		}
		return interrupt()
	}
	var queue []int
	for i := 0; i < n; i++ {
		if state[i] != unvisited {
			continue
		}
		if err := poll(); err != nil {
			return nil, err
		}
		neigh := g.neighbors(points[i])
		if len(neigh) < minPts {
			state[i] = noiseMark
			continue
		}
		next++
		state[i] = next
		queue = append(queue[:0], neigh...)
		for qi := 0; qi < len(queue); qi++ {
			if err := poll(); err != nil {
				return nil, err
			}
			j := queue[qi]
			if state[j] == noiseMark {
				state[j] = next // border point adopted by the cluster
				continue
			}
			if state[j] != unvisited {
				continue
			}
			state[j] = next
			jn := g.neighbors(points[j])
			if len(jn) >= minPts {
				queue = append(queue, jn...)
			}
		}
	}
	for i, s := range state {
		if s == noiseMark {
			labels[i] = Noise
		} else {
			labels[i] = s
		}
	}
	return labels, nil
}

// EstimateEps implements the k-dist heuristic: it computes the distance to
// the k-th nearest neighbour for a sample of points and returns a high
// percentile of that distribution, which approximates the knee of the
// sorted k-dist curve.
func EstimateEps(points [][]float64, k int) float64 {
	n := len(points)
	if n == 0 {
		return 0.05
	}
	if k < 1 {
		k = 4
	}
	if k >= n {
		k = n - 1
	}
	if k < 1 {
		return 0.05
	}
	// Sample at most 512 points for the estimate; the heuristic is
	// insensitive to sampling and exact k-NN over everything is O(n^2).
	step := 1
	if n > 512 {
		step = n / 512
	}
	var kd []float64
	dists := make([]float64, 0, n)
	for i := 0; i < n; i += step {
		dists = dists[:0]
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			dists = append(dists, sqDist(points[i], points[j]))
		}
		sort.Float64s(dists)
		kd = append(kd, math.Sqrt(dists[k-1]))
	}
	sort.Float64s(kd)
	idx := int(0.90 * float64(len(kd)-1))
	eps := kd[idx] * 1.05
	if eps <= 0 {
		eps = 0.01
	}
	return eps
}

// Run normalises the points, clusters them and post-processes the labels:
// clusters are renumbered 1..K by decreasing total weight, clusters below
// the weight cut (or beyond MaxClusters) are folded into noise. weights
// may be nil (unit weights).
func Run(points [][]float64, weights []float64, cfg Config) (*Result, error) {
	if len(points) == 0 {
		return &Result{}, nil
	}
	dims := len(points[0])
	for i, p := range points {
		if len(p) != dims {
			return nil, fmt.Errorf("cluster: point %d has %d dims, want %d", i, len(p), dims)
		}
	}
	switch cfg.Algorithm {
	case "", AlgoDBSCAN:
		// Fall through to the density-based path below.
	case AlgoKMeans:
		return RunKMeans(points, weights, cfg, 1)
	default:
		return nil, fmt.Errorf("cluster: unknown algorithm %q", cfg.Algorithm)
	}
	normed, _, _ := Normalize(points)
	eps := cfg.Eps
	if eps <= 0 {
		eps = EstimateEps(normed, cfg.minPts(len(points)))
	}
	minPts := cfg.minPts(len(points))
	labels, err := dbscan(normed, eps, minPts, cfg.Interrupt)
	if err != nil {
		return nil, err
	}

	res := &Result{Labels: labels, Eps: eps, MinPts: minPts}
	relabelByWeight(res, weights, cfg)
	return res, nil
}

// relabelByWeight renumbers clusters 1..K by decreasing total weight and
// applies the MinClusterWeight / MaxClusters cuts.
func relabelByWeight(res *Result, weights []float64, cfg Config) {
	weightOf := func(i int) float64 {
		if weights == nil || i >= len(weights) {
			return 1
		}
		return weights[i]
	}
	totals := map[int]float64{}
	var clusteredWeight float64
	for i, l := range res.Labels {
		if l == Noise {
			continue
		}
		w := weightOf(i)
		totals[l] += w
		clusteredWeight += w
	}
	ids := make([]int, 0, len(totals))
	for id := range totals {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if totals[ids[i]] != totals[ids[j]] {
			return totals[ids[i]] > totals[ids[j]]
		}
		return ids[i] < ids[j]
	})
	remap := map[int]int{}
	kept := 0
	for _, id := range ids {
		if cfg.MaxClusters > 0 && kept >= cfg.MaxClusters {
			remap[id] = Noise
			continue
		}
		if cfg.MinClusterWeight > 0 && clusteredWeight > 0 &&
			totals[id]/clusteredWeight < cfg.MinClusterWeight {
			remap[id] = Noise
			continue
		}
		kept++
		remap[id] = kept
	}
	for i, l := range res.Labels {
		if l == Noise {
			continue
		}
		res.Labels[i] = remap[l]
	}
	res.NumClusters = kept
}

// Centroids returns the unweighted centroid of every cluster (index 0 is
// unused) over the given coordinate set.
func Centroids(points [][]float64, labels []int, numClusters int) [][]float64 {
	if numClusters <= 0 || len(points) == 0 {
		return nil
	}
	dims := len(points[0])
	cents := make([][]float64, numClusters+1)
	counts := make([]int, numClusters+1)
	for c := 1; c <= numClusters; c++ {
		cents[c] = make([]float64, dims)
	}
	for i, l := range labels {
		if l <= 0 || l > numClusters {
			continue
		}
		for d, v := range points[i] {
			cents[l][d] += v
		}
		counts[l]++
	}
	for c := 1; c <= numClusters; c++ {
		if counts[c] > 0 {
			for d := range cents[c] {
				cents[c][d] /= float64(counts[c])
			}
		}
	}
	return cents
}
