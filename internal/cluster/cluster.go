// Package cluster implements density-based clustering of CPU bursts in an
// arbitrary-dimensional performance-metric space, following the approach of
// González et al. (IPDPS'09) that the paper builds on: DBSCAN over
// per-dimension min–max-normalised metric values, with the resulting
// clusters ranked by how much execution time they explain.
//
// Clusters are the paper's trackable objects: "all CPU bursts that are
// similar with respect to these metrics get grouped into the same object".
package cluster

import (
	"fmt"
	"math"
	"sort"
)

// Noise is the label assigned to points that belong to no cluster. Cluster
// identifiers are 1-based, matching the paper's numbering.
const Noise = 0

// Algorithm names for Config.Algorithm.
const (
	// AlgoDBSCAN is the default density-based algorithm of the paper's
	// reference tool chain.
	AlgoDBSCAN = "dbscan"
	// AlgoKMeans selects the partitional baseline (k-means++ with
	// silhouette model selection) for comparison studies.
	AlgoKMeans = "kmeans"
)

// Config parametrises a clustering run.
type Config struct {
	// Algorithm selects the clusterer: AlgoDBSCAN (default) or
	// AlgoKMeans.
	Algorithm string
	// Eps is the DBSCAN neighbourhood radius in normalised space. 0 asks
	// for the k-dist heuristic (EstimateEps).
	Eps float64
	// MinPts is the DBSCAN density threshold. 0 selects a default scaled
	// to the data size (0.5% of points, at least 4).
	MinPts int
	// MinClusterWeight drops clusters whose total weight (burst time)
	// falls below this fraction of the clustered weight; their points
	// become noise. Default 0 keeps everything.
	MinClusterWeight float64
	// MaxClusters keeps only the heaviest N clusters (0 = unlimited); the
	// paper's tool reduces the objects to "the ones considered more
	// relevant, those that represent a high percentage of the application
	// time".
	MaxClusters int
	// Interrupt, when non-nil, is polled periodically inside the
	// clustering loops; a non-nil return aborts the run with that error.
	// It is how cancelled contexts stop a long DBSCAN mid-flight instead
	// of burning CPU until completion.
	Interrupt func() error
}

func (c Config) minPts(n int) int {
	if c.MinPts > 0 {
		return c.MinPts
	}
	mp := n / 200
	if mp < 4 {
		mp = 4
	}
	return mp
}

// Result holds the outcome of clustering one point set.
type Result struct {
	// Labels assigns every input point a cluster id (1-based) or Noise.
	Labels []int
	// NumClusters is the number of clusters after filtering/renumbering.
	NumClusters int
	// Eps and MinPts record the effective parameters used.
	Eps    float64
	MinPts int
}

// ClusterSizes returns the point count per cluster id (index 0 = noise).
func (r *Result) ClusterSizes() []int {
	sizes := make([]int, r.NumClusters+1)
	for _, l := range r.Labels {
		if l >= 0 && l < len(sizes) {
			sizes[l]++
		}
	}
	return sizes
}

// Normalize min–max-normalises every dimension into [0,1] and returns the
// normalised copy plus the per-dimension ranges. Degenerate dimensions map
// to the constant 0.5.
func Normalize(points [][]float64) (normed [][]float64, mins, maxs []float64) {
	if len(points) == 0 {
		return nil, nil, nil
	}
	dims := len(points[0])
	mins = make([]float64, dims)
	maxs = make([]float64, dims)
	for d := 0; d < dims; d++ {
		mins[d] = math.Inf(1)
		maxs[d] = math.Inf(-1)
	}
	for _, p := range points {
		for d, v := range p {
			if v < mins[d] {
				mins[d] = v
			}
			if v > maxs[d] {
				maxs[d] = v
			}
		}
	}
	normed = make([][]float64, len(points))
	for i, p := range points {
		q := make([]float64, dims)
		for d, v := range p {
			w := maxs[d] - mins[d]
			if w <= 0 {
				q[d] = 0.5
			} else {
				q[d] = (v - mins[d]) / w
			}
		}
		normed[i] = q
	}
	return normed, mins, maxs
}

// sqDist returns the squared Euclidean distance between a and b.
func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// DBSCAN labels points (already normalised to comparable scales) with the
// classic density-based algorithm. It returns 1-based cluster ids with
// Noise (0) for outliers. Deterministic: clusters are discovered in point
// order, so identical input yields identical labels.
func DBSCAN(points [][]float64, eps float64, minPts int) []int {
	x, dims := flatten(points)
	labels, _ := dbscanFlat(x, dims, eps, minPts, nil)
	return labels
}

// DBSCANFlat is DBSCAN over strided flat storage: point i occupies
// x[i*dims:(i+1)*dims]. It is the allocation-lean path the pipeline uses
// so bursts are not re-boxed at package boundaries.
func DBSCANFlat(x []float64, dims int, eps float64, minPts int) []int {
	labels, _ := dbscanFlat(x, dims, eps, minPts, nil)
	return labels
}

// interruptEvery is how many units of work pass between Interrupt polls;
// frequent enough that cancellation lands within microseconds, rare
// enough to stay invisible in profiles.
const interruptEvery = 1024

// dbscanFlat is DBSCAN over strided flat storage with an optional
// interrupt hook polled every interruptEvery neighbourhood expansions, so
// a cancelled job stops mid-cluster instead of finishing the whole frame.
// The neighbour and queue buffers are reused across every expansion of
// the run, so the steady state allocates nothing per query.
func dbscanFlat(x []float64, dims int, eps float64, minPts int, interrupt func() error) ([]int, error) {
	n := 0
	if dims > 0 {
		n = len(x) / dims
	}
	labels := make([]int, n)
	if n == 0 {
		return labels, nil
	}
	const (
		unvisited = 0
		noiseMark = -1
	)
	state := make([]int, n) // 0 unvisited, -1 noise, >0 cluster id
	g := newGridIndexFlat(x, dims, eps)
	next := 0
	work := 0
	poll := func() error {
		if interrupt == nil {
			return nil
		}
		work++
		if work%interruptEvery != 0 {
			return nil
		}
		return interrupt()
	}
	neigh := make([]int, 0, 64)
	var queue []int
	for i := 0; i < n; i++ {
		if state[i] != unvisited {
			continue
		}
		if err := poll(); err != nil {
			return nil, err
		}
		neigh = g.neighbors(g.point(int32(i)), neigh)
		if len(neigh) < minPts {
			state[i] = noiseMark
			continue
		}
		next++
		state[i] = next
		// Labelling happens at ENQUEUE time so each cluster member enters
		// the queue at most once; a member queued here is dequeued exactly
		// once for its own expansion check. Dequeue-time labelling (the
		// textbook formulation) admits O(members·degree) duplicate queue
		// entries on dense data — identical labels, far more queue traffic.
		queue = queue[:0]
		for _, j := range neigh {
			if state[j] == noiseMark {
				state[j] = next // border point adopted by the cluster
				continue
			}
			if state[j] != unvisited {
				continue
			}
			state[j] = next
			queue = append(queue, j)
		}
		for qi := 0; qi < len(queue); qi++ {
			if err := poll(); err != nil {
				return nil, err
			}
			j := queue[qi]
			neigh = g.neighbors(g.point(int32(j)), neigh)
			if len(neigh) < minPts {
				continue // border point: adopted, never expanded
			}
			for _, k := range neigh {
				if state[k] == noiseMark {
					state[k] = next
					continue
				}
				if state[k] != unvisited {
					continue
				}
				state[k] = next
				queue = append(queue, k)
			}
		}
	}
	for i, s := range state {
		if s == noiseMark {
			labels[i] = Noise
		} else {
			labels[i] = s
		}
	}
	return labels, nil
}

// EstimateEps implements the k-dist heuristic: it computes the distance to
// the k-th nearest neighbour for a sample of points and returns a high
// percentile of that distribution, which approximates the knee of the
// sorted k-dist curve.
func EstimateEps(points [][]float64, k int) float64 {
	x, dims := flatten(points)
	return estimateEpsFlat(x, dims, k)
}

// estimateEpsFlat is EstimateEps over strided flat storage, with the same
// sampling, accumulation order and percentile arithmetic (bit-exact).
func estimateEpsFlat(x []float64, dims, k int) float64 {
	n := 0
	if dims > 0 {
		n = len(x) / dims
	}
	if n == 0 {
		return 0.05
	}
	if k < 1 {
		k = 4
	}
	if k >= n {
		k = n - 1
	}
	if k < 1 {
		return 0.05
	}
	// Sample at most 512 points for the estimate; the heuristic is
	// insensitive to sampling and exact k-NN over everything is O(n^2).
	step := 1
	if n > 512 {
		step = n / 512
	}
	var kd []float64
	dists := make([]float64, 0, n)
	for i := 0; i < n; i += step {
		dists = dists[:0]
		pi := x[i*dims : (i+1)*dims]
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			dists = append(dists, sqDist(pi, x[j*dims:(j+1)*dims]))
		}
		sort.Float64s(dists)
		kd = append(kd, math.Sqrt(dists[k-1]))
	}
	sort.Float64s(kd)
	idx := int(0.90 * float64(len(kd)-1))
	eps := kd[idx] * 1.05
	if eps <= 0 {
		eps = 0.01
	}
	return eps
}

// Run normalises the points, clusters them and post-processes the labels:
// clusters are renumbered 1..K by decreasing total weight, clusters below
// the weight cut (or beyond MaxClusters) are folded into noise. weights
// may be nil (unit weights).
func Run(points [][]float64, weights []float64, cfg Config) (*Result, error) {
	if len(points) == 0 {
		return &Result{}, nil
	}
	dims := len(points[0])
	for i, p := range points {
		if len(p) != dims {
			return nil, fmt.Errorf("cluster: point %d has %d dims, want %d", i, len(p), dims)
		}
	}
	x, _ := flatten(points)
	return RunFlat(x, dims, weights, cfg)
}

// RunFlat is Run over strided flat storage: point i occupies
// x[i*dims:(i+1)*dims]. The pipeline feeds frames through this entry so
// burst coordinates stay in one cache-friendly backing array end to end.
func RunFlat(x []float64, dims int, weights []float64, cfg Config) (*Result, error) {
	if len(x) == 0 {
		return &Result{}, nil
	}
	if dims <= 0 || len(x)%dims != 0 {
		return nil, fmt.Errorf("cluster: flat storage of %d values is not a multiple of %d dims", len(x), dims)
	}
	n := len(x) / dims
	switch cfg.Algorithm {
	case "", AlgoDBSCAN:
		// Fall through to the density-based path below.
	case AlgoKMeans:
		return RunKMeans(boxRows(x, dims), weights, cfg, 1)
	default:
		return nil, fmt.Errorf("cluster: unknown algorithm %q", cfg.Algorithm)
	}
	normed := normalizeFlat(x, dims)
	eps := cfg.Eps
	if eps <= 0 {
		eps = estimateEpsFlat(normed, dims, cfg.minPts(n))
	}
	minPts := cfg.minPts(n)
	labels, err := dbscanFlat(normed, dims, eps, minPts, cfg.Interrupt)
	if err != nil {
		return nil, err
	}

	res := &Result{Labels: labels, Eps: eps, MinPts: minPts}
	relabelByWeight(res, weights, cfg)
	return res, nil
}

// boxRows builds a [][]float64 view whose rows alias the flat backing
// array — no per-point copying, just slice headers.
func boxRows(x []float64, dims int) [][]float64 {
	if dims <= 0 {
		return nil
	}
	n := len(x) / dims
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = x[i*dims : (i+1)*dims : (i+1)*dims]
	}
	return rows
}

// normalizeFlat is Normalize over flat storage, returning a fresh flat
// array with every dimension min–max-scaled into [0,1] (degenerate
// dimensions map to 0.5), with the same arithmetic as Normalize.
func normalizeFlat(x []float64, dims int) []float64 {
	n := len(x) / dims
	mins := make([]float64, dims)
	maxs := make([]float64, dims)
	for d := 0; d < dims; d++ {
		mins[d] = math.Inf(1)
		maxs[d] = math.Inf(-1)
	}
	for i := 0; i < n; i++ {
		for d := 0; d < dims; d++ {
			v := x[i*dims+d]
			if v < mins[d] {
				mins[d] = v
			}
			if v > maxs[d] {
				maxs[d] = v
			}
		}
	}
	out := make([]float64, len(x))
	for i := 0; i < n; i++ {
		for d := 0; d < dims; d++ {
			v := x[i*dims+d]
			w := maxs[d] - mins[d]
			if w <= 0 {
				out[i*dims+d] = 0.5
			} else {
				out[i*dims+d] = (v - mins[d]) / w
			}
		}
	}
	return out
}

// relabelByWeight renumbers clusters 1..K by decreasing total weight and
// applies the MinClusterWeight / MaxClusters cuts.
func relabelByWeight(res *Result, weights []float64, cfg Config) {
	weightOf := func(i int) float64 {
		if weights == nil || i >= len(weights) {
			return 1
		}
		return weights[i]
	}
	totals := map[int]float64{}
	var clusteredWeight float64
	for i, l := range res.Labels {
		if l == Noise {
			continue
		}
		w := weightOf(i)
		totals[l] += w
		clusteredWeight += w
	}
	ids := make([]int, 0, len(totals))
	for id := range totals {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if totals[ids[i]] != totals[ids[j]] {
			return totals[ids[i]] > totals[ids[j]]
		}
		return ids[i] < ids[j]
	})
	remap := map[int]int{}
	kept := 0
	for _, id := range ids {
		if cfg.MaxClusters > 0 && kept >= cfg.MaxClusters {
			remap[id] = Noise
			continue
		}
		if cfg.MinClusterWeight > 0 && clusteredWeight > 0 &&
			totals[id]/clusteredWeight < cfg.MinClusterWeight {
			remap[id] = Noise
			continue
		}
		kept++
		remap[id] = kept
	}
	for i, l := range res.Labels {
		if l == Noise {
			continue
		}
		res.Labels[i] = remap[l]
	}
	res.NumClusters = kept
}

// Centroids returns the unweighted centroid of every cluster (index 0 is
// unused) over the given coordinate set.
func Centroids(points [][]float64, labels []int, numClusters int) [][]float64 {
	if numClusters <= 0 || len(points) == 0 {
		return nil
	}
	dims := len(points[0])
	cents := make([][]float64, numClusters+1)
	counts := make([]int, numClusters+1)
	for c := 1; c <= numClusters; c++ {
		cents[c] = make([]float64, dims)
	}
	for i, l := range labels {
		if l <= 0 || l > numClusters {
			continue
		}
		for d, v := range points[i] {
			cents[l][d] += v
		}
		counts[l]++
	}
	for c := 1; c <= numClusters; c++ {
		if counts[c] > 0 {
			for d := range cents[c] {
				cents[c][d] /= float64(counts[c])
			}
		}
	}
	return cents
}
