package cluster

import "math"

// This file holds the flat-memory spatial index shared by DBSCAN and the
// nearest-neighbour search. Points live in one strided []float64 (point i
// occupies x[i*dims:(i+1)*dims]) and cells are addressed by an exact
// packed int64 key, so a neighbourhood query allocates nothing: no string
// key per cell, no boxed coordinate slice per point, no per-query []int.
//
// The historical index keyed cells by a string of the low 32 bits of each
// cell coordinate, which (a) allocated on every single cell lookup and
// (b) silently collided cells whose coordinates differ by a multiple of
// 2^32 — reachable with a tiny eps against large coordinate values. The
// packed key is exact: cell coordinates are clamped to ±2^62 (far beyond
// any coordinate float64 arithmetic can resolve at unit scale) and packed
// via mixed-radix strides over the populated coordinate spans, falling
// back to a full 8-bytes-per-dimension encoding when the spans are too
// vast to pack into 63 bits.

// maxStackDims bounds the dimensionality for which query scratch lives on
// the stack; higher-dimensional queries fall back to heap scratch.
const maxStackDims = 16

// maxCellCoord clamps cell coordinates. Clamping cannot change results:
// every cell candidate is distance-verified, and an index spread wide
// enough to clamp always exceeds the ring-sweep bound, which routes
// nearest-neighbour queries to the exact linear scan.
const maxCellCoord = int64(1) << 62

// cellCoord quantises one coordinate to its cell index.
func cellCoord(v, eps float64) int64 {
	f := math.Floor(v / eps)
	if !(f > -(1 << 62)) { // also catches NaN
		return -maxCellCoord
	}
	if f >= 1<<62 {
		return maxCellCoord
	}
	return int64(f)
}

// gridIndex buckets the points of a flat strided point set into cells of
// side eps. Per-cell point indices are stored contiguously (CSR layout) in
// ascending order, matching the insertion order of the historical
// map-of-slices index.
type gridIndex struct {
	eps  float64
	dims int
	n    int
	x    []float64 // strided point storage, len n*dims

	// cellMin/cellMax bound the populated cell coordinates per dimension;
	// queries outside the box skip the lookup, and the NN ring search uses
	// them to cap its sweep.
	cellMin, cellMax []int64

	// Packed addressing: key = Σ (c[d]-cellMin[d])·stride[d], exact
	// whenever the populated spans fit 63 bits. stride == nil selects the
	// exact wide fallback keyed by the full 8-byte coordinate encoding.
	// When the packed key space is small (the usual case for normalised
	// data), dense maps keys straight to slots with no hashing at all.
	stride []int64
	dense  []int32 // keyed by packed key, -1 = empty cell
	slots  map[int64]int32
	wide   map[string]int32

	// CSR buckets: bucket s holds idx[start[s]:start[s+1]], ascending.
	start []int32
	idx   []int32
}

// newGridIndex adapts the historical [][]float64 constructor.
func newGridIndex(points [][]float64, eps float64) *gridIndex {
	x, dims := flatten(points)
	return newGridIndexFlat(x, dims, eps)
}

// flatten copies a boxed point set into strided storage.
func flatten(points [][]float64) ([]float64, int) {
	if len(points) == 0 {
		return nil, 0
	}
	dims := len(points[0])
	x := make([]float64, 0, len(points)*dims)
	for _, p := range points {
		x = append(x, p...)
	}
	return x, dims
}

func newGridIndexFlat(x []float64, dims int, eps float64) *gridIndex {
	g := &gridIndex{eps: eps, dims: dims, x: x}
	if dims > 0 {
		g.n = len(x) / dims
	}
	g.cellMin = make([]int64, dims)
	g.cellMax = make([]int64, dims)
	if g.n == 0 {
		return g
	}
	coords := make([]int64, g.n*dims)
	for i := 0; i < g.n; i++ {
		for d := 0; d < dims; d++ {
			c := cellCoord(x[i*dims+d], eps)
			coords[i*dims+d] = c
			if i == 0 || c < g.cellMin[d] {
				g.cellMin[d] = c
			}
			if i == 0 || c > g.cellMax[d] {
				g.cellMax[d] = c
			}
		}
	}
	// Mixed-radix strides over the populated spans, with overflow checks;
	// any overflow selects the exact wide encoding instead.
	stride := make([]int64, dims)
	prod := int64(1)
	packed := true
	for d := 0; d < dims; d++ {
		span := g.cellMax[d] - g.cellMin[d] + 1
		if span <= 0 || prod > (int64(1)<<62)/span {
			packed = false
			break
		}
		stride[d] = prod
		prod *= span
	}
	// Assign bucket slots in first-seen order and bucket the points.
	slotOf := make([]int32, g.n)
	var counts []int32
	if packed {
		g.stride = stride
		// Dense slot table when the packed key space is modest relative
		// to the point count (always true for normalised unit-cube data);
		// otherwise hash. The 1<<22 cap bounds the table at 16 MiB.
		const denseCap = int64(1) << 22
		if prod <= denseCap && prod <= 64*int64(g.n)+1024 {
			g.dense = make([]int32, prod)
			for k := range g.dense {
				g.dense[k] = -1
			}
		} else {
			g.slots = make(map[int64]int32, g.n/2+1)
		}
		for i := 0; i < g.n; i++ {
			key := int64(0)
			for d := 0; d < dims; d++ {
				key += (coords[i*dims+d] - g.cellMin[d]) * stride[d]
			}
			var s int32
			var ok bool
			if g.dense != nil {
				s = g.dense[key]
				ok = s >= 0
			} else {
				s, ok = g.slots[key]
			}
			if !ok {
				s = int32(len(counts))
				if g.dense != nil {
					g.dense[key] = s
				} else {
					g.slots[key] = s
				}
				counts = append(counts, 0)
			}
			counts[s]++
			slotOf[i] = s
		}
	} else {
		g.wide = make(map[string]int32, g.n/2+1)
		buf := make([]byte, dims*8)
		for i := 0; i < g.n; i++ {
			encodeWide(buf, coords[i*dims:(i+1)*dims])
			s, ok := g.wide[string(buf)]
			if !ok {
				s = int32(len(counts))
				g.wide[string(buf)] = s
				counts = append(counts, 0)
			}
			counts[s]++
			slotOf[i] = s
		}
	}
	g.start = make([]int32, len(counts)+1)
	for s, c := range counts {
		g.start[s+1] = g.start[s] + c
	}
	g.idx = make([]int32, g.n)
	cursor := append([]int32(nil), g.start[:len(counts)]...)
	for i := 0; i < g.n; i++ {
		s := slotOf[i]
		g.idx[cursor[s]] = int32(i)
		cursor[s]++
	}
	return g
}

// encodeWide writes the exact big-endian encoding of a cell coordinate
// vector (8 bytes per dimension) into buf.
func encodeWide(buf []byte, c []int64) {
	for d, v := range c {
		u := uint64(v)
		for b := 0; b < 8; b++ {
			buf[d*8+b] = byte(u >> (56 - 8*b))
		}
	}
}

// bucket returns the indices of the points in cell c, or nil. The scratch
// byte buffer is only touched in wide mode.
func (g *gridIndex) bucket(c []int64, wideBuf []byte) []int32 {
	for d, v := range c {
		if v < g.cellMin[d] || v > g.cellMax[d] {
			return nil
		}
	}
	var s int32
	var ok bool
	if g.stride != nil {
		key := int64(0)
		for d, v := range c {
			key += (v - g.cellMin[d]) * g.stride[d]
		}
		if g.dense != nil {
			s = g.dense[key]
			ok = s >= 0
		} else {
			s, ok = g.slots[key]
		}
	} else {
		encodeWide(wideBuf, c)
		s, ok = g.wide[string(wideBuf)]
	}
	if !ok {
		return nil
	}
	return g.idx[g.start[s]:g.start[s+1]]
}

// point returns the strided storage row of point i.
func (g *gridIndex) point(i int32) []float64 {
	return g.x[int(i)*g.dims : (int(i)+1)*g.dims]
}

// sqDistTo returns the squared distance from indexed point i to q, with
// the same per-dimension accumulation order as sqDist. Kept small enough
// to inline; the 2-D hot paths in visitRing and neighbors carry their own
// unrolled copies with identical (left-associated) accumulation.
func (g *gridIndex) sqDistTo(i int32, q []float64) float64 {
	base := int(i) * g.dims
	var s float64
	for d := 0; d < g.dims; d++ {
		dd := g.x[base+d] - q[d]
		s += dd * dd
	}
	return s
}

// queryScratch holds the per-call coordinate and key scratch of a grid
// query; for dims <= maxStackDims it lives entirely on the caller's stack.
type queryScratch struct {
	base [maxStackDims]int64
	cell [maxStackDims]int64
	off  [maxStackDims]int64
	lo   [maxStackDims]int64
	hi   [maxStackDims]int64
	wide [maxStackDims * 8]byte
}

func scratchInts(buf *[maxStackDims]int64, dims int) []int64 {
	if dims <= maxStackDims {
		return buf[:dims]
	}
	return make([]int64, dims)
}

func (g *gridIndex) wideBuf(sc *queryScratch) []byte {
	if g.wide == nil {
		return nil
	}
	if g.dims <= maxStackDims {
		return sc.wide[:g.dims*8]
	}
	return make([]byte, g.dims*8)
}

// neighbors appends to out[:0] the indices of all points within eps of q
// (including q itself when indexed) and returns it. Steady state it
// allocates nothing: pass the previous return value back in as out.
func (g *gridIndex) neighbors(q []float64, out []int) []int {
	out = out[:0]
	if g.n == 0 {
		return out
	}
	eps2 := g.eps * g.eps
	var sc queryScratch
	base := scratchInts(&sc.base, g.dims)
	cell := scratchInts(&sc.cell, g.dims)
	off := scratchInts(&sc.off, g.dims)
	wbuf := g.wideBuf(&sc)
	for d := 0; d < g.dims; d++ {
		base[d] = cellCoord(q[d], g.eps)
		off[d] = -1
	}
	// Enumerate the 3^dims adjacent cells (same odometer order as the
	// historical index; absent cells contribute nothing).
	for {
		for d := 0; d < g.dims; d++ {
			cell[d] = base[d] + off[d]
		}
		bucket := g.bucket(cell, wbuf)
		if g.dims == 2 && len(bucket) > 0 {
			// Unrolled 2-D candidate scan: same left-associated
			// accumulation as sqDistTo, no per-candidate call.
			q0, q1 := q[0], q[1]
			for _, pi := range bucket {
				b := int(pi) * 2
				d0 := g.x[b] - q0
				d1 := g.x[b+1] - q1
				if d0*d0+d1*d1 <= eps2 {
					out = append(out, int(pi))
				}
			}
		} else {
			for _, pi := range bucket {
				if g.sqDistTo(pi, q) <= eps2 {
					out = append(out, int(pi))
				}
			}
		}
		d := 0
		for ; d < g.dims; d++ {
			off[d]++
			if off[d] <= 1 {
				break
			}
			off[d] = -1
		}
		if d == g.dims {
			break
		}
	}
	return out
}
