package cluster

import (
	"math/rand/v2"
	"testing"

	"perftrack/internal/oracle"
)

// Metamorphic properties: transformations of the input that must not
// change the clustering answer. They run on planted, well-separated
// scenarios (margins ≫ eps) so the assertions are robust to floating-
// point noise — a violated property here is an ordering or indexing bug,
// never an ulp.

// TestOracleDBSCANPermutationInvariance: the recovered partition must not
// depend on the order the points are presented in. (Cluster *numbers*
// legitimately change with discovery order; the partition itself — which
// points group together, which are noise — must not. On separated data
// there are no contested border points, so this is exact.)
func TestOracleDBSCANPermutationInvariance(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		sc, _ := oracle.GenSeparated(seed)
		base := DBSCAN(sc.Points, sc.Eps, sc.MinPts)

		rng := rand.New(rand.NewPCG(seed, 0x9e37))
		perm := rng.Perm(len(sc.Points))
		shuffled := make([][]float64, len(sc.Points))
		for i, src := range perm {
			shuffled[i] = sc.Points[src]
		}
		permLabels := DBSCAN(shuffled, sc.Eps, sc.MinPts)
		// Map the permuted labels back onto original point positions.
		back := make([]int, len(base))
		for i, src := range perm {
			back[src] = permLabels[i]
		}
		if ari := oracle.ARI(base, back); ari != 1 {
			t.Errorf("seed %d: partition changed under permutation, ARI = %v", seed, ari)
		}
	}
}

// TestOracleDBSCANDuplicateStability: exactly duplicating points that are
// already cluster members must not change the partition of the original
// points (density only increases inside existing clusters) and each
// duplicate must join its source's cluster.
func TestOracleDBSCANDuplicateStability(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		sc, truth := oracle.GenSeparated(seed)
		base := DBSCAN(sc.Points, sc.Eps, sc.MinPts)

		rng := rand.New(rand.NewPCG(seed, 0x9e38))
		pts := append([][]float64(nil), sc.Points...)
		var sources []int
		for n := 0; n < 5; n++ {
			i := rng.IntN(len(sc.Points))
			if truth[i] == 0 {
				continue // duplicating noise could promote it to a cluster
			}
			pts = append(pts, sc.Points[i])
			sources = append(sources, i)
		}
		got := DBSCAN(pts, sc.Eps, sc.MinPts)
		if ari := oracle.ARI(base, got[:len(sc.Points)]); ari != 1 {
			t.Errorf("seed %d: original points repartitioned after duplication, ARI = %v", seed, ari)
		}
		for k, src := range sources {
			if got[len(sc.Points)+k] != got[src] {
				t.Errorf("seed %d: duplicate of point %d labeled %d, source labeled %d",
					seed, src, got[len(sc.Points)+k], got[src])
			}
		}
	}
}

// TestOracleNNDuplicateStability: appending exact duplicates (which get
// higher indices) must never change any Nearest answer — the canonical
// tie-break prefers the lowest index, and every duplicate ties with its
// source.
func TestOracleNNDuplicateStability(t *testing.T) {
	for seed := uint64(0); seed < 15; seed++ {
		sc, _ := oracle.GenSeparated(seed)
		rng := rand.New(rand.NewPCG(seed, 0x9e39))
		pts := append([][]float64(nil), sc.Points...)
		for n := 0; n < 6; n++ {
			pts = append(pts, sc.Points[rng.IntN(len(sc.Points))])
		}
		before := NewNN(sc.Points, 0.05)
		after := NewNN(pts, 0.05)
		for qi := 0; qi < 15; qi++ {
			q := oracle.GenQuery(seed, qi, len(sc.Points[0]))
			bi, bd := before.Nearest(q)
			ai, ad := after.Nearest(q)
			if bi != ai || bd != ad {
				t.Errorf("seed %d query %d: answer changed after duplication: (%d, %v) vs (%d, %v)",
					seed, qi, bi, bd, ai, ad)
			}
		}
	}
}
