package cluster

import "math"

// NN is a grid-accelerated exact nearest-neighbour index over a point set.
// The tracking displacement evaluator cross-classifies every burst of one
// frame to its nearest clustered burst of the next, which would be O(n²)
// with linear scans; the ring-expanding grid search keeps it near O(n) for
// the dense, normalised frames we operate on.
type NN struct {
	grid   *gridIndex
	points [][]float64
}

// NewNN builds an index over points (expected to be normalised to roughly
// the unit hypercube). cell is the grid cell side; values around the
// typical nearest-neighbour distance work well. Non-positive cells default
// to 0.05.
func NewNN(points [][]float64, cell float64) *NN {
	if cell <= 0 {
		cell = 0.05
	}
	return &NN{grid: newGridIndex(points, cell), points: points}
}

// Len returns the number of indexed points.
func (nn *NN) Len() int { return len(nn.points) }

// maxRingSweep caps how many Chebyshev rings the grid search will walk.
// Queries whose bounding ring exceeds it (far outside the indexed range,
// or a degenerate cell size) fall back to a linear scan, which is cheaper
// than enumerating huge empty rings and trivially implements the spec.
const maxRingSweep = 64

// Nearest returns the index of the point closest to q and its Euclidean
// distance. It returns (-1, +Inf) for an empty index.
//
// Canonical tie-break specification (the contract the differential
// harness in oracle_differential_test.go enforces against the brute-force
// reference in internal/oracle):
//
//	The nearest neighbour of q is the point with the minimal squared
//	Euclidean distance to q, computed as Σ(p[d]-q[d])² in dimension
//	order. Among points at exactly equal squared distance, the one with
//	the LOWEST index in the input slice wins — globally, regardless of
//	which grid cell or ring the candidates occupy. This is precisely
//	the result of a left-to-right linear scan keeping the first
//	strictly-better candidate.
//
// Three details of the ring search make it honour the spec:
//
//   - a candidate in a later ring displaces the incumbent only when
//     strictly closer OR equal-and-lower-index (see visitRing);
//   - the sweep stops before ring r only when bestSq is strictly below
//     ((r-1)·cell)², the minimum possible squared distance of any point
//     in an unexplored ring. In exact arithmetic equality at the bound is
//     unreachable (a point that close would sit in a nearer ring), but
//     after floating-point rounding of coordinates it is not; strictness
//     costs at most one extra ring and removes the edge;
//   - the sweep runs to the ring covering the whole populated bounding
//     box instead of a magic cutoff radius. The historical
//     "r·cell > 4 and we have *a* candidate" break returned a non-nearest
//     point for sparse data spread beyond the unit range (see
//     TestOracleNNSparseOutlierRegression).
func (nn *NN) Nearest(q []float64) (int, float64) {
	if len(nn.points) == 0 {
		return -1, math.Inf(1)
	}
	g := nn.grid
	base := g.coord(q)
	// rMax is the Chebyshev cell distance from q's cell to the farthest
	// populated cell: the ring beyond which the index holds nothing.
	rMax := 0
	for d := 0; d < g.dims; d++ {
		if dd := base[d] - g.cellMin[d]; dd > rMax {
			rMax = dd
		}
		if dd := g.cellMax[d] - base[d]; dd > rMax {
			rMax = dd
		}
	}
	best := -1
	bestSq := math.Inf(1)
	if rMax > maxRingSweep {
		for i, p := range nn.points {
			if d := sqDist(p, q); d < bestSq {
				best, bestSq = i, d
			}
		}
		return best, math.Sqrt(bestSq)
	}
	for r := 0; r <= rMax; r++ {
		if best >= 0 {
			minPossible := float64(r-1) * g.eps // points in ring r are at least this far
			if minPossible > 0 && bestSq < minPossible*minPossible {
				break
			}
		}
		nn.visitRing(base, r, q, &best, &bestSq)
	}
	return best, math.Sqrt(bestSq)
}

// visitRing scans all cells at Chebyshev distance exactly r from base,
// updating the best candidate. It reports whether any populated cell was
// seen.
func (nn *NN) visitRing(base []int, r int, q []float64, best *int, bestSq *float64) bool {
	g := nn.grid
	dims := g.dims
	found := false
	// Enumerate offsets in [-r, r]^dims with Chebyshev norm exactly r.
	offsets := make([]int, dims)
	for i := range offsets {
		offsets[i] = -r
	}
	cell := make([]int, dims)
	for {
		cheb := 0
		for _, o := range offsets {
			if a := abs(o); a > cheb {
				cheb = a
			}
		}
		if cheb == r {
			for d := 0; d < dims; d++ {
				cell[d] = base[d] + offsets[d]
			}
			if idxs := g.cells[g.keyOf(cell)]; len(idxs) > 0 {
				found = true
				for _, idx := range idxs {
					d := sqDist(nn.points[idx], q)
					if d < *bestSq || (d == *bestSq && idx < *best) {
						*best, *bestSq = idx, d
					}
				}
			}
		}
		// Odometer advance.
		d := 0
		for ; d < dims; d++ {
			offsets[d]++
			if offsets[d] <= r {
				break
			}
			offsets[d] = -r
		}
		if d == dims {
			break
		}
	}
	return found
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
