package cluster

import "math"

// NN is a grid-accelerated exact nearest-neighbour index over a point set.
// The tracking displacement evaluator cross-classifies every burst of one
// frame to its nearest clustered burst of the next, which would be O(n²)
// with linear scans; the ring-expanding grid search keeps it near O(n) for
// the dense, normalised frames we operate on. Points live in one strided
// []float64 and cells carry packed integer keys, so a query touches no
// allocator and no string hashing — Nearest is allocation-free for up to
// maxStackDims dimensions (asserted by testing.AllocsPerRun in
// alloc_test.go).
type NN struct {
	grid *gridIndex
}

// NewNN builds an index over points (expected to be normalised to roughly
// the unit hypercube). cell is the grid cell side; values around the
// typical nearest-neighbour distance work well. Non-positive cells default
// to 0.05.
func NewNN(points [][]float64, cell float64) *NN {
	x, dims := flatten(points)
	return NewNNFlat(x, dims, cell)
}

// NewNNFlat builds the index directly over strided flat storage: point i
// occupies x[i*dims:(i+1)*dims]. The index aliases x; do not mutate it
// while querying.
func NewNNFlat(x []float64, dims int, cell float64) *NN {
	if cell <= 0 {
		cell = 0.05
	}
	return &NN{grid: newGridIndexFlat(x, dims, cell)}
}

// Len returns the number of indexed points.
func (nn *NN) Len() int { return nn.grid.n }

// maxRingSweep caps how many Chebyshev rings the grid search will walk.
// Queries whose bounding ring exceeds it (far outside the indexed range,
// or a degenerate cell size) fall back to a linear scan, which is cheaper
// than enumerating huge empty rings and trivially implements the spec.
const maxRingSweep = 64

// Nearest returns the index of the point closest to q and its Euclidean
// distance. It returns (-1, +Inf) for an empty index.
//
// Canonical tie-break specification (the contract the differential
// harness in oracle_differential_test.go enforces against the brute-force
// reference in internal/oracle):
//
//	The nearest neighbour of q is the point with the minimal squared
//	Euclidean distance to q, computed as Σ(p[d]-q[d])² in dimension
//	order. Among points at exactly equal squared distance, the one with
//	the LOWEST index in the input slice wins — globally, regardless of
//	which grid cell or ring the candidates occupy. This is precisely
//	the result of a left-to-right linear scan keeping the first
//	strictly-better candidate.
//
// Three details of the ring search make it honour the spec:
//
//   - a candidate in a later ring displaces the incumbent only when
//     strictly closer OR equal-and-lower-index (see visitRing);
//   - the sweep stops before ring r only when bestSq is strictly below
//     ((r-1)·cell)², the minimum possible squared distance of any point
//     in an unexplored ring. In exact arithmetic equality at the bound is
//     unreachable (a point that close would sit in a nearer ring), but
//     after floating-point rounding of coordinates it is not; strictness
//     costs at most one extra ring and removes the edge;
//   - the sweep runs to the ring covering the whole populated bounding
//     box instead of a magic cutoff radius. The historical
//     "r·cell > 4 and we have *a* candidate" break returned a non-nearest
//     point for sparse data spread beyond the unit range (see
//     TestOracleNNSparseOutlierRegression).
func (nn *NN) Nearest(q []float64) (int, float64) {
	g := nn.grid
	if g.n == 0 {
		return -1, math.Inf(1)
	}
	var sc queryScratch
	base := scratchInts(&sc.base, g.dims)
	for d := 0; d < g.dims; d++ {
		base[d] = cellCoord(q[d], g.eps)
	}
	// rMax is the Chebyshev cell distance from q's cell to the farthest
	// populated cell: the ring beyond which the index holds nothing.
	var rMax int64
	for d := 0; d < g.dims; d++ {
		if dd := chebGap(base[d], g.cellMin[d]); dd > rMax {
			rMax = dd
		}
		if dd := chebGap(g.cellMax[d], base[d]); dd > rMax {
			rMax = dd
		}
	}
	best := -1
	bestSq := math.Inf(1)
	if rMax > maxRingSweep {
		for i := 0; i < g.n; i++ {
			if d := g.sqDistTo(int32(i), q); d < bestSq {
				best, bestSq = i, d
			}
		}
		return best, math.Sqrt(bestSq)
	}
	for r := int64(0); r <= rMax; r++ {
		if best >= 0 {
			minPossible := float64(r-1) * g.eps // points in ring r are at least this far
			if minPossible > 0 && bestSq < minPossible*minPossible {
				break
			}
		}
		best, bestSq = nn.visitRing(&sc, base, r, q, best, bestSq)
	}
	return best, math.Sqrt(bestSq)
}

// chebGap returns max(a-b, 0) saturating instead of overflowing (cell
// coordinates are clamped to ±2^62, so the raw difference can exceed the
// int64 range).
func chebGap(a, b int64) int64 {
	if a <= b {
		return 0
	}
	d := uint64(a) - uint64(b)
	if d > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(d)
}

// visitRing scans all populated cells at Chebyshev distance exactly r from
// base, returning the updated best candidate. The per-dimension offset
// range is clamped to the populated bounding box, so empty space costs
// nothing.
func (nn *NN) visitRing(sc *queryScratch, base []int64, r int64, q []float64, best int, bestSq float64) (int, float64) {
	g := nn.grid
	dims := g.dims
	cell := scratchInts(&sc.cell, dims)
	off := scratchInts(&sc.off, dims)
	lo := scratchInts(&sc.lo, dims)
	hi := scratchInts(&sc.hi, dims)
	wbuf := g.wideBuf(sc)
	// Per-dimension clamped offset bounds: intersect [-r, r] with the
	// populated box, so empty rings outside it cost nothing.
	for d := 0; d < dims; d++ {
		lo[d], hi[d] = -r, r
		if m := g.cellMin[d] - base[d]; m > lo[d] {
			lo[d] = m
		}
		if m := g.cellMax[d] - base[d]; m < hi[d] {
			hi[d] = m
		}
		if lo[d] > hi[d] {
			return best, bestSq // ring entirely outside the populated box
		}
		off[d] = lo[d]
	}
	for {
		cheb := int64(0)
		for _, o := range off {
			if o < 0 {
				o = -o
			}
			if o > cheb {
				cheb = o
			}
		}
		if cheb == r {
			for d := 0; d < dims; d++ {
				cell[d] = base[d] + off[d]
			}
			bucket := g.bucket(cell, wbuf)
			if dims == 2 && len(bucket) > 0 {
				// Unrolled 2-D candidate scan: same left-associated
				// accumulation as sqDistTo, no per-candidate call.
				q0, q1 := q[0], q[1]
				for _, pi := range bucket {
					b := int(pi) * 2
					d0 := g.x[b] - q0
					d1 := g.x[b+1] - q1
					d := d0*d0 + d1*d1
					if d < bestSq || (d == bestSq && int(pi) < best) {
						best, bestSq = int(pi), d
					}
				}
			} else {
				for _, pi := range bucket {
					d := g.sqDistTo(pi, q)
					if d < bestSq || (d == bestSq && int(pi) < best) {
						best, bestSq = int(pi), d
					}
				}
			}
		}
		// Odometer advance over the clamped box.
		d := 0
		for ; d < dims; d++ {
			off[d]++
			if off[d] <= hi[d] {
				break
			}
			off[d] = lo[d]
		}
		if d == dims {
			break
		}
	}
	return best, bestSq
}
