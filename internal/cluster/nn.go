package cluster

import "math"

// NN is a grid-accelerated exact nearest-neighbour index over a point set.
// The tracking displacement evaluator cross-classifies every burst of one
// frame to its nearest clustered burst of the next, which would be O(n²)
// with linear scans; the ring-expanding grid search keeps it near O(n) for
// the dense, normalised frames we operate on.
type NN struct {
	grid   *gridIndex
	points [][]float64
}

// NewNN builds an index over points (expected to be normalised to roughly
// the unit hypercube). cell is the grid cell side; values around the
// typical nearest-neighbour distance work well. Non-positive cells default
// to 0.05.
func NewNN(points [][]float64, cell float64) *NN {
	if cell <= 0 {
		cell = 0.05
	}
	return &NN{grid: newGridIndex(points, cell), points: points}
}

// Len returns the number of indexed points.
func (nn *NN) Len() int { return len(nn.points) }

// Nearest returns the index of the point closest to q and its Euclidean
// distance. It returns (-1, +Inf) for an empty index. Ties resolve to the
// lowest index, making results deterministic.
func (nn *NN) Nearest(q []float64) (int, float64) {
	if len(nn.points) == 0 {
		return -1, math.Inf(1)
	}
	g := nn.grid
	base := g.coord(q)
	best := -1
	bestSq := math.Inf(1)
	// Expand Chebyshev rings of cells around q's cell. Once the best
	// distance found is no greater than the minimum possible distance to
	// the next unexplored ring, the search is complete.
	for r := 0; ; r++ {
		minPossible := float64(r-1) * g.eps // points in ring r are at least this far
		if r > 0 && best >= 0 && bestSq <= minPossible*minPossible {
			break
		}
		visited := nn.visitRing(base, r, q, &best, &bestSq)
		if !visited && best >= 0 {
			// Ring had no populated cells; keep expanding until the bound
			// proves we are done (handled above on the next iteration).
		}
		// Safety: after the rings exceed the grid span, fall back to done.
		if float64(r)*g.eps > 4 && best >= 0 {
			break
		}
		if float64(r)*g.eps > 64 {
			break
		}
	}
	if best < 0 {
		// Degenerate fallback: linear scan (can happen with extreme
		// outliers far outside the indexed range).
		for i, p := range nn.points {
			if d := sqDist(p, q); d < bestSq {
				best, bestSq = i, d
			}
		}
	}
	return best, math.Sqrt(bestSq)
}

// visitRing scans all cells at Chebyshev distance exactly r from base,
// updating the best candidate. It reports whether any populated cell was
// seen.
func (nn *NN) visitRing(base []int, r int, q []float64, best *int, bestSq *float64) bool {
	g := nn.grid
	dims := g.dims
	found := false
	// Enumerate offsets in [-r, r]^dims with Chebyshev norm exactly r.
	offsets := make([]int, dims)
	for i := range offsets {
		offsets[i] = -r
	}
	cell := make([]int, dims)
	for {
		cheb := 0
		for _, o := range offsets {
			if a := abs(o); a > cheb {
				cheb = a
			}
		}
		if cheb == r {
			for d := 0; d < dims; d++ {
				cell[d] = base[d] + offsets[d]
			}
			if idxs := g.cells[g.keyOf(cell)]; len(idxs) > 0 {
				found = true
				for _, idx := range idxs {
					d := sqDist(nn.points[idx], q)
					if d < *bestSq || (d == *bestSq && idx < *best) {
						*best, *bestSq = idx, d
					}
				}
			}
		}
		// Odometer advance.
		d := 0
		for ; d < dims; d++ {
			offsets[d]++
			if offsets[d] <= r {
				break
			}
			offsets[d] = -r
		}
		if d == dims {
			break
		}
	}
	return found
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
