package cluster

import (
	"math"
	"testing"
)

// Regression tests for the 32-bit cell-key truncation bug. The historical
// gridIndex keyed cells by a string built from the LOW 32 BITS of each cell
// coordinate, so two cells whose coordinates differ by a multiple of 2^32
// (reachable with a small eps against large coordinate values) silently
// shared one bucket. Correctness survived — every bucket candidate is
// distance-verified — but colliding buckets degraded queries toward linear
// scans. The packed int64 key (and the exact 8-byte wide fallback) makes
// bucketing exact; these tests pin that on inputs that collided pre-fix.

// TestCellKeyNoTruncationCollision uses two 1-D points whose cell
// coordinates are exactly 0 and 2^32: identical under 32-bit truncation,
// distinct under the exact key.
func TestCellKeyNoTruncationCollision(t *testing.T) {
	const eps = 1.0
	a := 0.5
	b := math.Ldexp(1, 32) + 0.5 // cell coordinate 2^32
	g := newGridIndexFlat([]float64{a, b}, 1, eps)
	if got := g.bucket([]int64{0}, nil); len(got) != 1 || got[0] != 0 {
		t.Fatalf("cell 0 bucket = %v, want exactly [0]; coordinates differing by 2^32 share a bucket", got)
	}
	if got := g.bucket([]int64{int64(1) << 32}, nil); len(got) != 1 || got[0] != 1 {
		t.Fatalf("cell 2^32 bucket = %v, want exactly [1]", got)
	}
	// The far point must not appear as a neighbour of the near one.
	if got := g.neighbors([]float64{a}, nil); len(got) != 1 || got[0] != 0 {
		t.Fatalf("neighbors(%v) = %v, want [0]", a, got)
	}
}

// TestCellKeyWideFallbackExact drives the spans past what packs into 63
// bits (forcing the wide 8-byte-per-dimension encoding) and checks the
// same non-collision property there.
func TestCellKeyWideFallbackExact(t *testing.T) {
	const eps = 1.0
	far := math.Ldexp(1, 33)
	x := []float64{
		0.5, 0.5,
		far + 0.5, far + 0.5,
	}
	g := newGridIndexFlat(x, 2, eps)
	if g.stride != nil {
		t.Fatalf("expected wide fallback for spans of 2^33 in both dimensions")
	}
	var sc queryScratch
	wbuf := g.wideBuf(&sc)
	if got := g.bucket([]int64{0, 0}, wbuf); len(got) != 1 || got[0] != 0 {
		t.Fatalf("cell (0,0) bucket = %v, want exactly [0]", got)
	}
	if got := g.neighbors([]float64{0.5, 0.5}, nil); len(got) != 1 || got[0] != 0 {
		t.Fatalf("neighbors near origin = %v, want [0]", got)
	}
	// NN across the gap still finds the exact nearest point: the spread
	// exceeds the ring-sweep cap, routing the query to the linear scan.
	nn := &NN{grid: g}
	idx, dist := nn.Nearest([]float64{far, far})
	if idx != 1 {
		t.Fatalf("Nearest far query = index %d, want 1", idx)
	}
	want := math.Sqrt(0.5)
	if math.Abs(dist-want) > 1e-12 {
		t.Fatalf("Nearest far query distance = %v, want %v", dist, want)
	}
}

// TestCellCoordClampAndNaN pins the defensive clamping of cellCoord: cell
// coordinates saturate at ±2^62 and NaN maps to the negative clamp, so
// degenerate inputs cannot overflow key arithmetic.
func TestCellCoordClampAndNaN(t *testing.T) {
	if got := cellCoord(math.Inf(1), 1e-300); got != maxCellCoord {
		t.Errorf("cellCoord(+Inf) = %d, want %d", got, maxCellCoord)
	}
	if got := cellCoord(math.Inf(-1), 1e-300); got != -maxCellCoord {
		t.Errorf("cellCoord(-Inf) = %d, want %d", got, -maxCellCoord)
	}
	if got := cellCoord(math.NaN(), 1.0); got != -maxCellCoord {
		t.Errorf("cellCoord(NaN) = %d, want %d", got, -maxCellCoord)
	}
	if got := cellCoord(2.5, 1.0); got != 2 {
		t.Errorf("cellCoord(2.5, 1) = %d, want 2", got)
	}
	if got := cellCoord(-2.5, 1.0); got != -3 {
		t.Errorf("cellCoord(-2.5, 1) = %d, want -3", got)
	}
}
