package cluster

import (
	"math"
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"
)

// blob generates n points normally distributed around (cx, cy).
func blob(rng *rand.Rand, n int, cx, cy, sigma float64) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = []float64{
			cx + rng.NormFloat64()*sigma,
			cy + rng.NormFloat64()*sigma,
		}
	}
	return out
}

func TestNormalize(t *testing.T) {
	pts := [][]float64{{0, 10}, {5, 20}, {10, 30}}
	normed, mins, maxs := Normalize(pts)
	if mins[0] != 0 || maxs[0] != 10 || mins[1] != 10 || maxs[1] != 30 {
		t.Errorf("ranges = %v %v", mins, maxs)
	}
	if normed[0][0] != 0 || normed[2][0] != 1 || normed[1][1] != 0.5 {
		t.Errorf("normed = %v", normed)
	}
}

func TestNormalizeDegenerateDim(t *testing.T) {
	pts := [][]float64{{5, 1}, {5, 2}}
	normed, _, _ := Normalize(pts)
	if normed[0][0] != 0.5 || normed[1][0] != 0.5 {
		t.Errorf("degenerate dim should map to 0.5: %v", normed)
	}
}

func TestNormalizeEmpty(t *testing.T) {
	normed, mins, maxs := Normalize(nil)
	if normed != nil || mins != nil || maxs != nil {
		t.Error("Normalize(nil) should return nils")
	}
}

func TestDBSCANTwoBlobs(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	pts := append(blob(rng, 200, 0.2, 0.2, 0.01), blob(rng, 200, 0.8, 0.8, 0.01)...)
	labels := DBSCAN(pts, 0.05, 5)
	seen := map[int]int{}
	for _, l := range labels {
		seen[l]++
	}
	if len(seen) != 2 {
		t.Fatalf("clusters = %v, want exactly 2 (no noise)", seen)
	}
	// First blob is discovered first, so it gets id 1.
	if labels[0] != 1 || labels[350] != 2 {
		t.Errorf("label assignment: first=%d later=%d", labels[0], labels[350])
	}
	// All points of one blob share a label.
	for i := 1; i < 200; i++ {
		if labels[i] != labels[0] {
			t.Fatalf("blob 1 split at %d", i)
		}
	}
}

func TestDBSCANNoise(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 1))
	pts := blob(rng, 100, 0.5, 0.5, 0.01)
	pts = append(pts, []float64{0.05, 0.95}) // an isolated outlier
	labels := DBSCAN(pts, 0.05, 5)
	if labels[100] != Noise {
		t.Errorf("outlier labelled %d, want noise", labels[100])
	}
	if labels[0] == Noise {
		t.Error("dense point labelled noise")
	}
}

func TestDBSCANMinPtsEffect(t *testing.T) {
	// A sparse group below minPts becomes noise.
	pts := [][]float64{{0.1, 0.1}, {0.11, 0.1}, {0.12, 0.1}}
	labels := DBSCAN(pts, 0.05, 5)
	for i, l := range labels {
		if l != Noise {
			t.Errorf("point %d labelled %d, want noise with minPts=5", i, l)
		}
	}
	labels = DBSCAN(pts, 0.05, 2)
	for i, l := range labels {
		if l != 1 {
			t.Errorf("point %d labelled %d, want 1 with minPts=2", i, l)
		}
	}
}

func TestDBSCANChainCluster(t *testing.T) {
	// Density-connected chain: DBSCAN must keep it one cluster even
	// though the endpoints are far apart.
	var pts [][]float64
	for i := 0; i < 100; i++ {
		pts = append(pts, []float64{float64(i) * 0.008, 0.5})
	}
	labels := DBSCAN(pts, 0.02, 3)
	for i, l := range labels {
		if l != 1 {
			t.Fatalf("chain split: point %d labelled %d", i, l)
		}
	}
}

func TestDBSCANDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 1))
	pts := append(blob(rng, 150, 0.3, 0.3, 0.02), blob(rng, 150, 0.7, 0.7, 0.02)...)
	a := DBSCAN(pts, 0.05, 5)
	b := DBSCAN(pts, 0.05, 5)
	if !reflect.DeepEqual(a, b) {
		t.Error("DBSCAN not deterministic")
	}
}

func TestDBSCANEmpty(t *testing.T) {
	if got := DBSCAN(nil, 0.05, 5); len(got) != 0 {
		t.Error("empty input should return empty labels")
	}
}

func TestGridNeighborsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 1))
	pts := blob(rng, 300, 0.5, 0.5, 0.2)
	const eps = 0.07
	g := newGridIndex(pts, eps)
	for qi := 0; qi < 50; qi++ {
		q := pts[qi*5]
		got := map[int]bool{}
		for _, i := range g.neighbors(q, nil) {
			got[i] = true
		}
		for i, p := range pts {
			inRange := sqDist(p, q) <= eps*eps
			if inRange != got[i] {
				t.Fatalf("query %d point %d: grid=%v brute=%v", qi, i, got[i], inRange)
			}
		}
	}
}

func TestNNMatchesBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 9))
		n := 50 + rng.IntN(200)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.Float64(), rng.Float64()}
		}
		nn := NewNN(pts, 0.05)
		for k := 0; k < 20; k++ {
			q := []float64{rng.Float64() * 1.2, rng.Float64() * 1.2}
			gotIdx, gotDist := nn.Nearest(q)
			bestIdx, bestSq := -1, math.Inf(1)
			for i, p := range pts {
				if d := sqDist(p, q); d < bestSq {
					bestIdx, bestSq = i, d
				}
			}
			if math.Abs(gotDist-math.Sqrt(bestSq)) > 1e-9 {
				return false
			}
			// Same distance; identity may differ only on exact ties.
			if gotIdx != bestIdx && sqDist(pts[gotIdx], q) != bestSq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestNNEmpty(t *testing.T) {
	nn := NewNN(nil, 0.05)
	idx, d := nn.Nearest([]float64{0, 0})
	if idx != -1 || !math.IsInf(d, 1) {
		t.Errorf("empty NN = %d, %v", idx, d)
	}
}

func TestNNFarQuery(t *testing.T) {
	pts := [][]float64{{0.5, 0.5}}
	nn := NewNN(pts, 0.05)
	idx, d := nn.Nearest([]float64{30, 30})
	if idx != 0 {
		t.Errorf("far query idx = %d", idx)
	}
	want := math.Hypot(29.5, 29.5)
	if math.Abs(d-want) > 1e-9 {
		t.Errorf("far query dist = %v, want %v", d, want)
	}
}

func TestEstimateEps(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 1))
	pts := blob(rng, 400, 0.5, 0.5, 0.02)
	eps := EstimateEps(pts, 4)
	if eps <= 0 {
		t.Fatalf("eps = %v", eps)
	}
	// For a tight blob the k-dist estimate stays well below the blob
	// diameter.
	if eps > 0.1 {
		t.Errorf("eps = %v unexpectedly large", eps)
	}
	if EstimateEps(nil, 4) <= 0 {
		t.Error("empty estimate should fall back to a positive default")
	}
}

func TestRunRelabelsByWeight(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 1))
	// Blob A is smaller in points but carries far more weight.
	ptsA := blob(rng, 50, 0.2, 0.2, 0.01)
	ptsB := blob(rng, 200, 0.8, 0.8, 0.01)
	pts := append(append([][]float64{}, ptsA...), ptsB...)
	weights := make([]float64, len(pts))
	for i := range weights {
		if i < 50 {
			weights[i] = 100
		} else {
			weights[i] = 1
		}
	}
	res, err := Run(pts, weights, Config{Eps: 0.05, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 2 {
		t.Fatalf("clusters = %d", res.NumClusters)
	}
	if res.Labels[0] != 1 {
		t.Errorf("heavy cluster id = %d, want 1", res.Labels[0])
	}
	if res.Labels[100] != 2 {
		t.Errorf("light cluster id = %d, want 2", res.Labels[100])
	}
}

func TestRunMinClusterWeight(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 1))
	pts := append(blob(rng, 500, 0.2, 0.2, 0.01), blob(rng, 10, 0.8, 0.8, 0.002)...)
	res, err := Run(pts, nil, Config{Eps: 0.05, MinPts: 5, MinClusterWeight: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 1 {
		t.Fatalf("clusters = %d, want 1 after weight cut", res.NumClusters)
	}
	if res.Labels[505] != Noise {
		t.Errorf("tiny cluster survived as %d", res.Labels[505])
	}
}

func TestRunMaxClusters(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 1))
	pts := append(blob(rng, 100, 0.1, 0.1, 0.01), blob(rng, 100, 0.5, 0.5, 0.01)...)
	pts = append(pts, blob(rng, 100, 0.9, 0.9, 0.01)...)
	res, err := Run(pts, nil, Config{Eps: 0.05, MinPts: 5, MaxClusters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 2 {
		t.Errorf("clusters = %d, want capped 2", res.NumClusters)
	}
}

func TestRunDimsMismatch(t *testing.T) {
	if _, err := Run([][]float64{{1, 2}, {1}}, nil, Config{Eps: 0.1}); err == nil {
		t.Error("mismatched dims accepted")
	}
}

func TestRunEmpty(t *testing.T) {
	res, err := Run(nil, nil, Config{})
	if err != nil || res.NumClusters != 0 {
		t.Errorf("empty run = %+v, %v", res, err)
	}
}

func TestRunAutoEps(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 1))
	pts := append(blob(rng, 300, 0.2, 0.2, 0.01), blob(rng, 300, 0.8, 0.8, 0.01)...)
	res, err := Run(pts, nil, Config{}) // eps and minPts from heuristics
	if err != nil {
		t.Fatal(err)
	}
	if res.Eps <= 0 || res.MinPts <= 0 {
		t.Errorf("effective params not recorded: %+v", res)
	}
	if res.NumClusters != 2 {
		t.Errorf("auto-eps clusters = %d, want 2", res.NumClusters)
	}
}

func TestClusterSizes(t *testing.T) {
	res := &Result{Labels: []int{1, 1, 2, 0, 2, 2}, NumClusters: 2}
	sizes := res.ClusterSizes()
	if sizes[0] != 1 || sizes[1] != 2 || sizes[2] != 3 {
		t.Errorf("sizes = %v", sizes)
	}
}

func TestCentroids(t *testing.T) {
	pts := [][]float64{{0, 0}, {2, 2}, {10, 10}}
	labels := []int{1, 1, 2}
	cents := Centroids(pts, labels, 2)
	if cents[1][0] != 1 || cents[1][1] != 1 {
		t.Errorf("centroid 1 = %v", cents[1])
	}
	if cents[2][0] != 10 {
		t.Errorf("centroid 2 = %v", cents[2])
	}
	if Centroids(pts, labels, 0) != nil {
		t.Error("zero clusters should return nil")
	}
}

func TestDBSCANLabelsAllPointsProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		n := int(nRaw)%300 + 1
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.Float64(), rng.Float64()}
		}
		labels := DBSCAN(pts, 0.08, 4)
		if len(labels) != n {
			return false
		}
		maxLabel := 0
		for _, l := range labels {
			if l < 0 {
				return false
			}
			if l > maxLabel {
				maxLabel = l
			}
		}
		// Labels are contiguous 1..max.
		seen := make([]bool, maxLabel+1)
		for _, l := range labels {
			seen[l] = true
		}
		for id := 1; id <= maxLabel; id++ {
			if !seen[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDBSCAN(b *testing.B) {
	rng := rand.New(rand.NewPCG(10, 1))
	var pts [][]float64
	for c := 0; c < 8; c++ {
		pts = append(pts, blob(rng, 2500, 0.1+0.1*float64(c), 0.1+0.1*float64(c), 0.01)...)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DBSCAN(pts, 0.05, 5)
	}
}

func BenchmarkNN(b *testing.B) {
	rng := rand.New(rand.NewPCG(11, 1))
	pts := blob(rng, 20_000, 0.5, 0.5, 0.2)
	nn := NewNN(pts, 0.05)
	qs := blob(rng, 1000, 0.5, 0.5, 0.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.Nearest(qs[i%len(qs)])
	}
}
