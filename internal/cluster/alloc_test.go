package cluster

import (
	"math/rand/v2"
	"testing"
)

// The flat-memory rewrite's contract is that steady-state spatial queries
// never touch the allocator: no string key per cell lookup, no boxed
// coordinate slice, no per-query result slice. These tests pin that with
// testing.AllocsPerRun so a regression (say, scratch escaping to the heap)
// fails loudly instead of quietly re-inflating GC pressure.

func allocPoints(n, dims int, seed uint64) []float64 {
	rng := rand.New(rand.NewPCG(seed, 0xa110c))
	x := make([]float64, n*dims)
	for i := range x {
		x[i] = rng.Float64()
	}
	return x
}

func TestNearestZeroAllocs(t *testing.T) {
	for _, dims := range []int{2, 3, 4} {
		x := allocPoints(2000, dims, uint64(dims))
		nn := NewNNFlat(x, dims, 0.05)
		queries := allocPoints(64, dims, 99)
		qi := 0
		avg := testing.AllocsPerRun(200, func() {
			q := queries[qi*dims : (qi+1)*dims]
			qi = (qi + 1) % 64
			nn.Nearest(q)
		})
		if avg != 0 {
			t.Errorf("dims=%d: NN.Nearest allocates %.1f objects per query, want 0", dims, avg)
		}
	}
}

func TestGridNeighborsZeroAllocs(t *testing.T) {
	for _, dims := range []int{2, 4} {
		x := allocPoints(2000, dims, uint64(10+dims))
		g := newGridIndexFlat(x, dims, 0.05)
		queries := allocPoints(64, dims, 7)
		// Warm the out buffer to the steady-state capacity first.
		out := make([]int, 0, 64)
		for qi := 0; qi < 64; qi++ {
			out = g.neighbors(queries[qi*dims:(qi+1)*dims], out)
		}
		qi := 0
		avg := testing.AllocsPerRun(200, func() {
			q := queries[qi*dims : (qi+1)*dims]
			qi = (qi + 1) % 64
			out = g.neighbors(q, out)
		})
		if avg != 0 {
			t.Errorf("dims=%d: grid neighbors allocates %.1f objects per query, want 0", dims, avg)
		}
	}
}
