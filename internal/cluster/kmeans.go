package cluster

import (
	"math"
	"math/rand/v2"
	"sort"
)

// This file provides the alternative clusterer the BSC line of work
// evaluated DBSCAN against (González et al., IPDPS'09 discuss why
// density-based clustering suits CPU-burst data better than partitional
// algorithms): k-means with k-means++ seeding, plus silhouette-based model
// selection. perftrack uses it as a comparison baseline — the ablation
// benchmarks quantify how tracking quality degrades when frames are
// clustered partitionally.

// KMeans runs Lloyd's algorithm with k-means++ seeding on points
// (normalised coordinates), returning 1-based labels (every point gets a
// cluster; k-means has no noise concept) and the final centroids.
// Deterministic for a given seed.
func KMeans(points [][]float64, k int, seed uint64) (labels []int, centroids [][]float64) {
	n := len(points)
	labels = make([]int, n)
	if n == 0 || k <= 0 {
		return labels, nil
	}
	if k > n {
		k = n
	}
	dims := len(points[0])
	rng := rand.New(rand.NewPCG(seed, 0x9E3779B97F4A7C15))

	// k-means++ seeding.
	centroids = make([][]float64, 0, k)
	first := rng.IntN(n)
	centroids = append(centroids, append([]float64(nil), points[first]...))
	dist2 := make([]float64, n)
	for len(centroids) < k {
		var sum float64
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(p, c); d < best {
					best = d
				}
			}
			dist2[i] = best
			sum += best
		}
		if sum == 0 {
			// All remaining points coincide with a centroid; duplicate one.
			centroids = append(centroids, append([]float64(nil), points[rng.IntN(n)]...))
			continue
		}
		target := rng.Float64() * sum
		idx := 0
		for i, d := range dist2 {
			target -= d
			if target <= 0 {
				idx = i
				break
			}
		}
		centroids = append(centroids, append([]float64(nil), points[idx]...))
	}

	// Lloyd iterations.
	counts := make([]int, k)
	sums := make([][]float64, k)
	for i := range sums {
		sums[i] = make([]float64, dims)
	}
	for iter := 0; iter < 100; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for ci, c := range centroids {
				if d := sqDist(p, c); d < bestD {
					best, bestD = ci, d
				}
			}
			if labels[i] != best+1 {
				labels[i] = best + 1
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		for ci := range centroids {
			counts[ci] = 0
			for d := range sums[ci] {
				sums[ci][d] = 0
			}
		}
		for i, p := range points {
			ci := labels[i] - 1
			counts[ci]++
			for d, v := range p {
				sums[ci][d] += v
			}
		}
		for ci := range centroids {
			if counts[ci] == 0 {
				continue // keep the stale centroid; it may recapture points
			}
			for d := range centroids[ci] {
				centroids[ci][d] = sums[ci][d] / float64(counts[ci])
			}
		}
	}
	return labels, centroids
}

// Silhouette computes the mean silhouette coefficient of a labelling
// (1-based labels; label 0 / noise points are ignored). For large inputs
// it samples at most 512 points. Returns 0 for degenerate clusterings
// (fewer than 2 clusters).
func Silhouette(points [][]float64, labels []int) float64 {
	// Group member indices per cluster.
	groups := map[int][]int{}
	for i, l := range labels {
		if l > 0 {
			groups[l] = append(groups[l], i)
		}
	}
	if len(groups) < 2 {
		return 0
	}
	ids := make([]int, 0, len(groups))
	for id := range groups {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	var considered []int
	for i, l := range labels {
		if l > 0 {
			considered = append(considered, i)
		}
	}
	step := 1
	if len(considered) > 512 {
		step = len(considered) / 512
	}
	var total float64
	var count int
	meanDist := func(i int, members []int) float64 {
		var s float64
		n := 0
		for _, j := range members {
			if j == i {
				continue
			}
			s += math.Sqrt(sqDist(points[i], points[j]))
			n++
		}
		if n == 0 {
			return 0
		}
		return s / float64(n)
	}
	for idx := 0; idx < len(considered); idx += step {
		i := considered[idx]
		own := labels[i]
		if len(groups[own]) < 2 {
			continue // silhouette of singletons is defined as 0
		}
		a := meanDist(i, groups[own])
		b := math.Inf(1)
		for _, id := range ids {
			if id == own {
				continue
			}
			if d := meanDist(i, groups[id]); d < b {
				b = d
			}
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
		}
		count++
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// KMeansAuto selects k in [2, maxK] by the silhouette criterion and
// returns the best labelling. It is the partitional counterpart of Run.
func KMeansAuto(points [][]float64, maxK int, seed uint64) (labels []int, k int) {
	if maxK < 2 {
		maxK = 2
	}
	bestScore := math.Inf(-1)
	for kk := 2; kk <= maxK; kk++ {
		l, _ := KMeans(points, kk, seed)
		s := Silhouette(points, l)
		if s > bestScore {
			bestScore, labels, k = s, l, kk
		}
	}
	return labels, k
}

// RunKMeans mirrors Run but clusters partitionally: it normalises the
// points, selects k by silhouette (capped at cfg.MaxClusters, or 16) and
// relabels the clusters by weight like Run does.
func RunKMeans(points [][]float64, weights []float64, cfg Config, seed uint64) (*Result, error) {
	if len(points) == 0 {
		return &Result{}, nil
	}
	normed, _, _ := Normalize(points)
	maxK := cfg.MaxClusters
	if maxK <= 0 {
		maxK = 16
	}
	labels, _ := KMeansAuto(normed, maxK, seed)
	res := &Result{Labels: labels}
	relabelByWeight(res, weights, cfg)
	return res, nil
}
