package mesh

import (
	"fmt"
	"math"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%016x-key-%d", hash64(fmt.Sprint(i)), i)
	}
	return keys
}

func TestRingDeterministic(t *testing.T) {
	a := NewRing([]string{"n1", "n2", "n3"}, 64)
	b := NewRing([]string{"n3", "n1", "n2", "n2"}, 64) // order/dups must not matter
	for _, k := range testKeys(500) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner of %q differs between identical rings: %s vs %s", k, a.Owner(k), b.Owner(k))
		}
	}
	if got := a.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3"}, 64)
	counts := map[string]int{}
	keys := testKeys(6000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	for node, c := range counts {
		frac := float64(c) / float64(len(keys))
		if frac < 0.15 || frac > 0.55 {
			t.Fatalf("node %s owns %.1f%% of keys — ring badly unbalanced (%v)", node, 100*frac, counts)
		}
	}
	// Exact arc shares must roughly agree with the empirical split and
	// sum to 1.
	shares := r.Shares()
	var sum float64
	for node, s := range shares {
		sum += s
		emp := float64(counts[node]) / float64(len(keys))
		if math.Abs(s-emp) > 0.05 {
			t.Fatalf("node %s share %.3f vs empirical %.3f", node, s, emp)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %v, want 1", sum)
	}
}

// TestRingMinimalMovement is the property consistent hashing exists for:
// removing one node must only move the keys that node owned.
func TestRingMinimalMovement(t *testing.T) {
	full := NewRing([]string{"n1", "n2", "n3"}, 64)
	without2 := NewRing([]string{"n1", "n3"}, 64)
	for _, k := range testKeys(2000) {
		before, after := full.Owner(k), without2.Owner(k)
		if before != "n2" && before != after {
			t.Fatalf("key %q moved %s -> %s although its owner did not leave", k, before, after)
		}
		if before == "n2" && after == "n2" {
			t.Fatalf("key %q still owned by removed node", k)
		}
	}
}

func TestReplicaSet(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3"}, 64)
	for _, k := range testKeys(500) {
		set := r.ReplicaSet(k, 2)
		if len(set) != 2 {
			t.Fatalf("replica set size %d, want 2", len(set))
		}
		if set[0] != r.Owner(k) {
			t.Fatalf("replica set %v does not start with owner %s", set, r.Owner(k))
		}
		if set[0] == set[1] {
			t.Fatalf("replica set %v has duplicate nodes", set)
		}
	}
	// Asking for more replicas than members returns every member once.
	if set := r.ReplicaSet("x", 9); len(set) != 3 {
		t.Fatalf("oversized replica set %v, want all 3 nodes", set)
	}
	if NewRing(nil, 8).Owner("x") != "" {
		t.Fatal("empty ring must own nothing")
	}
}

// TestReplicaSpread guards against a degenerate vnode layout where one
// node is the successor of another for nearly every arc: the *second*
// replica must also spread across the cluster.
func TestReplicaSpread(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3"}, 64)
	second := map[string]int{}
	keys := testKeys(6000)
	for _, k := range keys {
		second[r.ReplicaSet(k, 2)[1]]++
	}
	for node, c := range second {
		frac := float64(c) / float64(len(keys))
		if frac < 0.1 || frac > 0.6 {
			t.Fatalf("node %s is second replica for %.1f%% of keys (%v)", node, 100*frac, second)
		}
	}
}
