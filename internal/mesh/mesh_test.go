package mesh

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// fakeNet is an in-memory transport: peer URLs of the form http://ID.mesh
// dispatch to registered handlers; down peers refuse connections.
type fakeNet struct {
	mu       sync.Mutex
	handlers map[string]http.HandlerFunc
	down     map[string]bool
}

func newFakeNet() *fakeNet {
	return &fakeNet{handlers: map[string]http.HandlerFunc{}, down: map[string]bool{}}
}

func (f *fakeNet) RoundTrip(req *http.Request) (*http.Response, error) {
	id := strings.TrimSuffix(req.URL.Host, ".mesh")
	f.mu.Lock()
	h, ok := f.handlers[id]
	dead := f.down[id]
	f.mu.Unlock()
	if !ok || dead {
		return nil, fmt.Errorf("connection refused (%s down)", id)
	}
	rw := httptest.NewRecorder()
	h(rw, req)
	resp := rw.Result()
	resp.Request = req
	return resp, nil
}

func (f *fakeNet) setDown(id string, down bool) {
	f.mu.Lock()
	f.down[id] = down
	f.mu.Unlock()
}

func threePeers() []Peer {
	return []Peer{
		{ID: "n1", URL: "http://n1.mesh"},
		{ID: "n2", URL: "http://n2.mesh"},
		{ID: "n3", URL: "http://n3.mesh"},
	}
}

func TestParsePeers(t *testing.T) {
	ps, err := ParsePeers("n1=http://a:1, n2=http://b:2 ,n3=http://c:3")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 3 || ps[1].ID != "n2" || ps[1].URL != "http://b:2" {
		t.Fatalf("parsed %+v", ps)
	}
	for _, bad := range []string{"", "n1", "=http://x", "n1="} {
		if _, err := ParsePeers(bad); err == nil {
			t.Fatalf("ParsePeers(%q) accepted", bad)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{NodeID: "nx", Peers: threePeers()}); err == nil {
		t.Fatal("node id outside peer list accepted")
	}
	if _, err := New(Config{NodeID: "n1", Peers: append(threePeers(), Peer{ID: "n1", URL: "http://dup"})}); err == nil {
		t.Fatal("duplicate peer id accepted")
	}
}

func TestMembershipProbes(t *testing.T) {
	net := newFakeNet()
	pong := func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) }
	net.handlers["n2"] = pong
	net.handlers["n3"] = pong

	n, err := New(Config{
		NodeID: "n1", Peers: threePeers(),
		ProbeFailures: 2, Transport: net,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n.Ring().Len() != 3 {
		t.Fatalf("optimistic start ring has %d nodes, want 3", n.Ring().Len())
	}
	epoch0 := n.Epoch()

	// Kill n3: the first failed probe round only counts, the second
	// transitions it down and shrinks the ring.
	net.setDown("n3", true)
	if n.ProbeOnce(context.Background()) {
		t.Fatal("one failure should not transition with ProbeFailures=2")
	}
	if !n.ProbeOnce(context.Background()) {
		t.Fatal("second consecutive failure should mark n3 down")
	}
	if got := n.Ring().Nodes(); len(got) != 2 || got[0] != "n1" || got[1] != "n2" {
		t.Fatalf("ring after n3 death: %v", got)
	}
	if n.Epoch() == epoch0 {
		t.Fatal("epoch did not advance on membership change")
	}
	for _, st := range n.Statuses() {
		if st.ID == "n3" && st.Alive {
			t.Fatal("n3 still reported alive")
		}
	}

	// Ownership of every key must now land on a live node, and keys
	// previously owned by n1/n2 must not have moved.
	full := NewRing([]string{"n1", "n2", "n3"}, n.cfg.VNodes)
	for _, k := range testKeys(300) {
		owner := n.Owner(k)
		if owner == "n3" {
			t.Fatalf("dead node still owns %q", k)
		}
		if was := full.Owner(k); was != "n3" && was != owner {
			t.Fatalf("key %q moved %s -> %s without its owner dying", k, was, owner)
		}
	}

	// Revive n3: one successful probe restores it.
	net.setDown("n3", false)
	if !n.ProbeOnce(context.Background()) {
		t.Fatal("revival should transition n3 up")
	}
	if n.Ring().Len() != 3 {
		t.Fatalf("ring after revival has %d nodes", n.Ring().Len())
	}
}

func TestReportFeedback(t *testing.T) {
	n, err := New(Config{NodeID: "n1", Peers: threePeers(), ProbeFailures: 1, Transport: newFakeNet()})
	if err != nil {
		t.Fatal(err)
	}
	var changes int
	n.onChange = func() { changes++ }
	if !n.ReportFailure("n2") {
		t.Fatal("first failure with threshold 1 should transition")
	}
	if n.ReportFailure("n2") {
		t.Fatal("already-down peer should not re-transition")
	}
	if !n.ReportSuccess("n2") {
		t.Fatal("success should bring n2 back")
	}
	if changes != 2 {
		t.Fatalf("onChange ran %d times, want 2", changes)
	}
	if n.ReportFailure("unknown") || n.ReportSuccess("unknown") {
		t.Fatal("unknown peer must be ignored")
	}
}

func TestDoAgainstPeer(t *testing.T) {
	net := newFakeNet()
	net.handlers["n2"] = func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("X-Mesh-From") != "n1" {
			t.Errorf("missing X-Mesh-From, got %q", r.Header.Get("X-Mesh-From"))
		}
		w.WriteHeader(http.StatusTeapot)
		fmt.Fprint(w, "short and stout")
	}
	n, err := New(Config{NodeID: "n1", Peers: threePeers(), Transport: net})
	if err != nil {
		t.Fatal(err)
	}
	status, body, err := n.Do(context.Background(), "n2", http.MethodGet, "/v1/mesh/ping", nil)
	if err != nil || status != http.StatusTeapot || string(body) != "short and stout" {
		t.Fatalf("Do = %d %q %v", status, body, err)
	}
	if _, _, err := n.Do(context.Background(), "n3", http.MethodGet, "/x", nil); err == nil {
		t.Fatal("unregistered peer should error")
	}
	if _, _, err := n.Do(context.Background(), "nope", http.MethodGet, "/x", nil); err == nil {
		t.Fatal("unknown peer should error")
	}
}
