// Package mesh turns N trackd processes into one logical service: a
// consistent-hash ring routes each job to an owner node by its canonical
// content fingerprint (the SHA-256 job key is already the perfect shard
// key — exact dedup and singleflight survive sharding), static-list
// membership with probe-driven liveness decides which nodes are in the
// ring, and a small HTTP client layer carries forwarded submissions,
// scatter-gather reads and perfdb record replication between peers.
//
// The package deliberately knows nothing about the service layer: it
// deals in node ids, URLs and opaque keys. internal/service composes it
// into routing hooks; the deterministic cluster simulation drives it
// through an in-memory transport with no real network or timers.
package mesh

import (
	"fmt"
	"sort"
)

// ringPoint is one virtual node on the ring.
type ringPoint struct {
	h    uint64
	node string
}

// Ring is an immutable consistent-hash ring over a set of node ids.
// Each node contributes VNodes points; a key belongs to the node owning
// the first point clockwise of the key's hash. Immutability keeps reads
// lock-free: membership changes swap in a freshly built ring.
type Ring struct {
	points []ringPoint
	nodes  []string
	vnodes int
}

// hash64 mixes s through FNV-1a and a splitmix64 finalizer. FNV alone
// clusters badly for short, similar strings (node ids differing in one
// digit); the finalizer spreads the points evenly enough that ownership
// shares stay within a few percent of uniform at 64 vnodes.
func hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// NewRing builds a ring over the given node ids (order-insensitive;
// duplicates are collapsed). vnodes <= 0 selects the default of 64
// points per node.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	seen := map[string]bool{}
	uniq := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n != "" && !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	sort.Strings(uniq)
	r := &Ring{nodes: uniq, vnodes: vnodes}
	r.points = make([]ringPoint, 0, len(uniq)*vnodes)
	for _, n := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{h: hash64(fmt.Sprintf("%s#%d", n, v)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		return r.points[i].node < r.points[j].node // deterministic tie-break
	})
	return r
}

// Nodes returns the ring's member ids, sorted.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Len returns the number of member nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Owner returns the node owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.successor(hash64(key))].node
}

// successor returns the index of the first point with hash >= h,
// wrapping to 0 past the end.
func (r *Ring) successor(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// ReplicaSet returns the n distinct nodes responsible for key: the owner
// first, then ring successors. Fewer than n members returns them all.
func (r *Ring) ReplicaSet(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	seen := map[string]bool{}
	i := r.successor(hash64(key))
	for len(out) < n {
		node := r.points[i].node
		if !seen[node] {
			seen[node] = true
			out = append(out, node)
		}
		i++
		if i == len(r.points) {
			i = 0
		}
	}
	return out
}

// Shares returns each node's exact fraction of the hash space — the
// ring-ownership summary /healthz reports. Shares sum to 1 (up to float
// rounding) on a non-empty ring.
func (r *Ring) Shares() map[string]float64 {
	out := make(map[string]float64, len(r.nodes))
	if len(r.points) == 0 {
		return out
	}
	const whole = float64(1<<63) * 2 // 2^64 as float
	// Point i owns the arc (points[i-1].h, points[i].h]; the first point
	// also owns the wrap-around arc past the last point.
	prev := r.points[len(r.points)-1].h
	for _, p := range r.points {
		arc := p.h - prev // uint64 subtraction wraps correctly
		out[p.node] += float64(arc) / whole
		prev = p.h
	}
	return out
}
