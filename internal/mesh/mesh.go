package mesh

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Peer is one cluster member: a stable node id and the base URL its
// trackd API listens on.
type Peer struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// Config parametrises a Node.
type Config struct {
	// NodeID is this node's id; it must appear in Peers.
	NodeID string
	// Peers is the full static cluster map, including this node.
	Peers []Peer
	// Replicas is the number of nodes (owner included) that durably hold
	// each result (default 2, capped at the cluster size).
	Replicas int
	// VNodes is the number of ring points per node (default 64).
	VNodes int
	// ProbeFailures marks a peer down after this many consecutive failed
	// probes or requests (default 2).
	ProbeFailures int
	// ProbeInterval paces the background probe loop started by Start
	// (default 2s). The deterministic simulation never calls Start and
	// drives ProbeOnce directly instead.
	ProbeInterval time.Duration
	// Transport carries every peer request (default
	// http.DefaultTransport). The cluster simulation plugs an in-memory
	// handler dispatcher in here.
	Transport http.RoundTripper
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.ProbeFailures <= 0 {
		c.ProbeFailures = 2
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.Transport == nil {
		c.Transport = http.DefaultTransport
	}
	return c
}

// peerState tracks one remote peer's liveness.
type peerState struct {
	peer  Peer
	alive bool
	fails int // consecutive failures since the last success
}

// PeerStatus is the /healthz view of one peer.
type PeerStatus struct {
	ID    string `json:"id"`
	URL   string `json:"url"`
	Alive bool   `json:"alive"`
	Fails int    `json:"fails,omitempty"`
}

// Node is this process's view of the cluster: static membership, probe-
// driven liveness, and the consistent-hash ring over the live members.
// All methods are safe for concurrent use.
type Node struct {
	cfg    Config
	self   Peer
	client *http.Client

	mu     sync.Mutex
	peers  map[string]*peerState // remote peers only
	ring   *Ring                 // over self + alive peers
	epoch  uint64                // bumps on every ring rebuild
	stopCh chan struct{}
	wg     sync.WaitGroup

	// onChange, when set via Start, runs (outside the mutex) after every
	// liveness transition — trackd hooks rebalancing here.
	onChange func()
}

// New validates the configuration and returns a node that considers
// every peer alive until probes say otherwise (optimistic start: a cold
// cluster must not refuse to route before the first probe round).
func New(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.NodeID == "" {
		return nil, fmt.Errorf("mesh: empty node id")
	}
	n := &Node{
		cfg:    cfg,
		client: &http.Client{Transport: cfg.Transport},
		peers:  map[string]*peerState{},
		stopCh: make(chan struct{}),
	}
	seen := map[string]bool{}
	for _, p := range cfg.Peers {
		if p.ID == "" || p.URL == "" {
			return nil, fmt.Errorf("mesh: peer with empty id or url (%q=%q)", p.ID, p.URL)
		}
		if seen[p.ID] {
			return nil, fmt.Errorf("mesh: duplicate peer id %q", p.ID)
		}
		seen[p.ID] = true
		p.URL = strings.TrimRight(p.URL, "/")
		if p.ID == cfg.NodeID {
			n.self = p
			continue
		}
		n.peers[p.ID] = &peerState{peer: p, alive: true}
	}
	if n.self.ID == "" {
		return nil, fmt.Errorf("mesh: node id %q not in peer list", cfg.NodeID)
	}
	n.rebuildLocked()
	return n, nil
}

// ParsePeers parses the -peers flag format: comma-separated id=URL
// entries ("n1=http://127.0.0.1:7077,n2=http://127.0.0.1:7078").
func ParsePeers(s string) ([]Peer, error) {
	var out []Peer
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("mesh: bad peer %q (want id=URL)", part)
		}
		out = append(out, Peer{ID: id, URL: url})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("mesh: empty peer list")
	}
	return out, nil
}

// rebuildLocked recomputes the ring over self + alive peers; callers
// hold n.mu.
func (n *Node) rebuildLocked() {
	nodes := []string{n.self.ID}
	for id, ps := range n.peers {
		if ps.alive {
			nodes = append(nodes, id)
		}
	}
	n.ring = NewRing(nodes, n.cfg.VNodes)
	n.epoch++
}

// Self returns this node's id.
func (n *Node) Self() string { return n.self.ID }

// SelfURL returns this node's advertised base URL.
func (n *Node) SelfURL() string { return n.self.URL }

// Replicas returns the configured replica count (owner included).
func (n *Node) Replicas() int { return n.cfg.Replicas }

// Epoch returns the ring generation; it bumps on every liveness change.
func (n *Node) Epoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// Ring returns the current ring (immutable snapshot).
func (n *Node) Ring() *Ring {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ring
}

// Owner returns the live node owning key (possibly this node).
func (n *Node) Owner(key string) string { return n.Ring().Owner(key) }

// ReplicaSet returns the live nodes responsible for key, owner first.
func (n *Node) ReplicaSet(key string) []string {
	return n.Ring().ReplicaSet(key, n.cfg.Replicas)
}

// Peer resolves a peer id to its Peer record (self included).
func (n *Node) Peer(id string) (Peer, bool) {
	if id == n.self.ID {
		return n.self, true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	ps, ok := n.peers[id]
	if !ok {
		return Peer{}, false
	}
	return ps.peer, true
}

// AlivePeers returns the remote peers currently considered alive,
// sorted by id.
func (n *Node) AlivePeers() []Peer {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Peer, 0, len(n.peers))
	for _, ps := range n.peers {
		if ps.alive {
			out = append(out, ps.peer)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Statuses returns every remote peer's liveness, sorted by id.
func (n *Node) Statuses() []PeerStatus {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]PeerStatus, 0, len(n.peers))
	for _, ps := range n.peers {
		out = append(out, PeerStatus{ID: ps.peer.ID, URL: ps.peer.URL, Alive: ps.alive, Fails: ps.fails})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ReportSuccess feeds a successful peer interaction into liveness: the
// peer is marked alive and its failure streak reset. Returns true when
// this transitioned the peer (ring rebuilt).
func (n *Node) ReportSuccess(id string) bool {
	n.mu.Lock()
	ps, ok := n.peers[id]
	if !ok {
		n.mu.Unlock()
		return false
	}
	ps.fails = 0
	changed := !ps.alive
	if changed {
		ps.alive = true
		n.rebuildLocked()
	}
	n.mu.Unlock()
	if changed {
		n.notifyChange()
	}
	return changed
}

// ReportFailure feeds a failed peer interaction (refused connection,
// timeout) into liveness; ProbeFailures consecutive failures mark the
// peer down. Returns true when this transitioned the peer.
func (n *Node) ReportFailure(id string) bool {
	n.mu.Lock()
	ps, ok := n.peers[id]
	if !ok {
		n.mu.Unlock()
		return false
	}
	ps.fails++
	changed := ps.alive && ps.fails >= n.cfg.ProbeFailures
	if changed {
		ps.alive = false
		n.rebuildLocked()
	}
	n.mu.Unlock()
	if changed {
		n.notifyChange()
	}
	return changed
}

func (n *Node) notifyChange() {
	if n.onChange != nil {
		n.onChange()
	}
}

// ProbeOnce probes every remote peer's /v1/mesh/ping and folds the
// outcomes into liveness. It returns true when any peer transitioned.
// The background loop calls this on a ticker; the deterministic cluster
// simulation calls it directly so probing is an explicit scheduled event.
func (n *Node) ProbeOnce(ctx context.Context) bool {
	n.mu.Lock()
	targets := make([]Peer, 0, len(n.peers))
	for _, ps := range n.peers {
		targets = append(targets, ps.peer)
	}
	n.mu.Unlock()
	sort.Slice(targets, func(i, j int) bool { return targets[i].ID < targets[j].ID })

	changed := false
	for _, p := range targets {
		pctx, cancel := context.WithTimeout(ctx, n.cfg.ProbeInterval)
		status, _, err := n.Do(pctx, p.ID, http.MethodGet, "/v1/mesh/ping", nil)
		cancel()
		if err != nil || status != http.StatusOK {
			if n.ReportFailure(p.ID) {
				changed = true
			}
		} else if n.ReportSuccess(p.ID) {
			changed = true
		}
	}
	return changed
}

// Start launches the background probe loop; onChange (may be nil) runs
// after every liveness transition, outside the membership mutex. Stop
// terminates the loop.
func (n *Node) Start(onChange func()) {
	n.onChange = onChange
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		t := time.NewTicker(n.cfg.ProbeInterval)
		defer t.Stop()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go func() { <-n.stopCh; cancel() }()
		for {
			select {
			case <-n.stopCh:
				return
			case <-t.C:
				n.ProbeOnce(ctx)
			}
		}
	}()
}

// Stop terminates the probe loop started by Start.
func (n *Node) Stop() {
	select {
	case <-n.stopCh:
	default:
		close(n.stopCh)
	}
	n.wg.Wait()
}

// Do issues one HTTP request against a peer and returns the status code
// and full response body. A transport-level failure (refused connection,
// partition) is returned as an error with a zero status; HTTP-level
// errors come back as their status code. Do does NOT feed liveness —
// callers decide which failures are peer-death evidence via
// ReportFailure/ReportSuccess.
func (n *Node) Do(ctx context.Context, peerID, method, path string, body []byte) (int, []byte, error) {
	status, _, b, err := n.DoH(ctx, peerID, method, path, body)
	return status, b, err
}

// DoH is Do plus the response headers — forwarding needs them (the
// owner's X-Durable header decides whether a proxied job's local journal
// intent may resolve).
func (n *Node) DoH(ctx context.Context, peerID, method, path string, body []byte) (int, http.Header, []byte, error) {
	p, ok := n.Peer(peerID)
	if !ok {
		return 0, nil, nil, fmt.Errorf("mesh: unknown peer %q", peerID)
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, p.URL+path, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set("X-Mesh-From", n.self.ID)
	resp, err := n.client.Do(req)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("mesh: %s %s on %s: %w", method, path, peerID, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("mesh: reading %s from %s: %w", path, peerID, err)
	}
	return resp.StatusCode, resp.Header, b, nil
}
