package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"perftrack/internal/metrics"
)

func TestExportStructure(t *testing.T) {
	res, err := buildAndTrack(testConfig(),
		mkTrace("x", 4, 4, simplePhases()),
		mkTrace("y", 4, 4, simplePhases()))
	if err != nil {
		t.Fatal(err)
	}
	exp := res.Export([]metrics.Metric{metrics.IPC})
	if len(exp.Frames) != 2 || exp.Spanning != 2 || exp.Coverage != 1 {
		t.Fatalf("export header = %+v", exp)
	}
	for _, f := range exp.Frames {
		if len(f.Clusters) != 2 {
			t.Errorf("frame %d exported %d clusters", f.Index, len(f.Clusters))
		}
		for _, c := range f.Clusters {
			if c.Region == 0 {
				t.Errorf("cluster %d has no region id", c.ID)
			}
			if len(c.Centroid) != 2 {
				t.Errorf("cluster centroid dims = %d", len(c.Centroid))
			}
		}
	}
	for _, r := range exp.Regions {
		if _, ok := r.Trends["IPC"]; !ok {
			t.Errorf("region %d missing IPC trend", r.ID)
		}
		if len(r.Trends["IPC"]) != 2 {
			t.Errorf("region %d trend length = %d", r.ID, len(r.Trends["IPC"]))
		}
	}
	if len(exp.Relations) == 0 {
		t.Error("no relations exported")
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	res, err := buildAndTrack(testConfig(),
		mkTrace("x", 4, 4, simplePhases()),
		mkTrace("y", 4, 4, simplePhases()))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf, metrics.DefaultSpace()); err != nil {
		t.Fatal(err)
	}
	var back Export
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("exported JSON does not parse: %v", err)
	}
	if back.Spanning != res.SpanningCount || back.Coverage != res.Coverage {
		t.Errorf("round-trip header mismatch: %+v", back)
	}
	if len(back.Frames) != len(res.Frames) {
		t.Errorf("round-trip frames = %d", len(back.Frames))
	}
}
