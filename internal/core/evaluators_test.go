package core

import (
	"math"
	"testing"

	"perftrack/internal/trace"
)

// twoFrames builds a pair of frames from two traces with the default test
// configuration.
func twoFrames(t *testing.T, a, b *trace.Trace) (*Frame, *Frame, Config) {
	t.Helper()
	cfg := testConfig()
	frames, err := BuildFrames([]*trace.Trace{a, b}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return frames[0], frames[1], cfg.withDefaults()
}

func simplePhases() []phaseDef {
	return []phaseDef{
		{IPC: 1.2, Instr: 1e7, Stack: stackR("a", 1)},
		{IPC: 0.6, Instr: 4e6, Stack: stackR("b", 2)},
	}
}

func TestDisplacementIdentity(t *testing.T) {
	// Two identical experiments: the matrix must be the identity.
	fa, fb, cfg := twoFrames(t,
		mkTrace("x", 4, 4, simplePhases()),
		mkTrace("y", 4, 4, simplePhases()))
	m := Displacement(fa, fb, cfg)
	for i := 1; i <= fa.NumClusters; i++ {
		j, v := m.RowArgmax(i)
		if j != i || v < 0.99 {
			t.Errorf("row %d -> col %d (%v), want identity", i, j, v)
		}
	}
}

func TestDisplacementShiftedCluster(t *testing.T) {
	// The second experiment moves phase "a" slightly in IPC: nearest
	// neighbour classification still finds it.
	shifted := simplePhases()
	shifted[0].IPC = 1.3
	fa, fb, cfg := twoFrames(t,
		mkTrace("x", 4, 4, simplePhases()),
		mkTrace("y", 4, 4, shifted))
	m := Displacement(fa, fb, cfg)
	if j, _ := m.RowArgmax(1); j != 1 {
		t.Errorf("shifted cluster not matched: row 1 -> %d\n%s", j, m)
	}
}

func TestDisplacementEmptyFrames(t *testing.T) {
	fa, _, cfg := twoFrames(t,
		mkTrace("x", 4, 4, simplePhases()),
		mkTrace("y", 4, 4, simplePhases()))
	empty := &Frame{Index: 9, NumClusters: 0}
	m := Displacement(fa, empty, cfg)
	if len(m.NonZero()) != 0 {
		t.Error("displacement into empty frame produced cells")
	}
}

func TestCallstackMatrix(t *testing.T) {
	fa, fb, cfg := twoFrames(t,
		mkTrace("x", 4, 4, simplePhases()),
		mkTrace("y", 4, 4, simplePhases()))
	m := Callstack(fa, fb, cfg)
	// Same stacks: diagonal 100%, off-diagonal zero.
	for i := 1; i <= fa.NumClusters; i++ {
		for j := 1; j <= fb.NumClusters; j++ {
			want := 0.0
			if i == j {
				want = 1.0
			}
			if math.Abs(m.At(i, j)-want) > 1e-9 {
				t.Errorf("stack[%d][%d] = %v, want %v", i, j, m.At(i, j), want)
			}
		}
	}
}

func TestCallstackSharedReference(t *testing.T) {
	// Two phases share a stack (the paper's bimodal case): both columns
	// light up for both rows.
	shared := []phaseDef{
		{IPC: 1.2, Instr: 1e7, Stack: stackR("same", 7)},
		{IPC: 0.6, Instr: 4e6, Stack: stackR("same", 7)},
	}
	fa, fb, cfg := twoFrames(t,
		mkTrace("x", 4, 4, shared),
		mkTrace("y", 4, 4, shared))
	m := Callstack(fa, fb, cfg)
	for i := 1; i <= 2; i++ {
		for j := 1; j <= 2; j++ {
			if m.At(i, j) < 0.99 {
				t.Errorf("shared stack cell [%d][%d] = %v", i, j, m.At(i, j))
			}
		}
	}
}

func TestStacksDisjointVeto(t *testing.T) {
	fa, fb, _ := twoFrames(t,
		mkTrace("x", 4, 4, simplePhases()),
		mkTrace("y", 4, 4, simplePhases()))
	if !stacksDisjoint(fa, fb, 1, 2) {
		t.Error("different stacks should be disjoint")
	}
	if stacksDisjoint(fa, fb, 1, 1) {
		t.Error("same stacks reported disjoint")
	}
	// Clusters without stacks never veto.
	for _, ci := range fa.Clusters[1:] {
		ci.Stacks = map[trace.CallstackRef]int{}
	}
	if stacksDisjoint(fa, fb, 1, 2) {
		t.Error("stackless cluster vetoed")
	}
}

func TestSPMDSimultaneityBimodal(t *testing.T) {
	// Phase "b" runs in two modes split across ranks: its two clusters
	// co-occur in the alignment columns.
	phases := []phaseDef{
		{IPC: 1.2, Instr: 1e7, Stack: stackR("a", 1)},
		{IPC: 0.6, Instr: 4e6, Stack: stackR("b", 2), PerRank: func(r int) (float64, float64) {
			if r%2 == 0 {
				return 0.6, 4e6
			}
			return 0.45, 4e6
		}},
	}
	tr := mkTrace("x", 8, 4, phases)
	cfg := testConfig()
	frames, err := BuildFrames([]*trace.Trace{tr}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := frames[0]
	if f.NumClusters != 3 {
		t.Fatalf("clusters = %d, want 3 (one phase split in two)", f.NumClusters)
	}
	al := frameAlignment(f, cfg.withDefaults())
	m := SPMDSimultaneity(f, al, cfg.withDefaults())
	pairs := SPMDPairs(m, cfg.withDefaults())
	if len(pairs) != 1 {
		t.Fatalf("SPMD pairs = %v, want exactly the bimodal pair\n%s", pairs, m)
	}
	// The pair must be the two "b" clusters — both contain phase 2.
	p := pairs[0]
	for _, id := range p {
		phasesSeen := map[int]int{}
		for i, l := range f.Labels {
			if l == id {
				phasesSeen[f.Trace.Bursts[i].Phase]++
			}
		}
		if phasesSeen[2] == 0 {
			t.Errorf("SPMD pair member %d does not hold phase 2: %v", id, phasesSeen)
		}
	}
}

func TestSPMDNoFalsePairs(t *testing.T) {
	// Sequential phases never co-occur.
	tr := mkTrace("x", 8, 4, simplePhases())
	cfg := testConfig().withDefaults()
	frames, err := BuildFrames([]*trace.Trace{tr}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	al := frameAlignment(frames[0], cfg)
	m := SPMDSimultaneity(frames[0], al, cfg)
	if pairs := SPMDPairs(m, cfg); len(pairs) != 0 {
		t.Errorf("false SPMD pairs: %v\n%s", pairs, m)
	}
}

func TestSequenceCorrelateWithPivots(t *testing.T) {
	// Three phases; the middle one is the pivot. The evaluator must bind
	// the flanking clusters positionally.
	phases := []phaseDef{
		{IPC: 1.2, Instr: 1e7, Stack: stackR("a", 1)},
		{IPC: 0.8, Instr: 6e6, Stack: stackR("p", 2)},
		{IPC: 0.5, Instr: 3e6, Stack: stackR("c", 3)},
	}
	fa, fb, cfg := twoFrames(t,
		mkTrace("x", 4, 4, phases),
		mkTrace("y", 4, 4, phases))
	alA := frameAlignment(fa, cfg)
	alB := frameAlignment(fb, cfg)
	seqA, seqB := alA.Consensus(), alB.Consensus()

	// Find which cluster of each frame holds phase 2 (the pivot).
	pivotOf := func(f *Frame) int {
		for id := 1; id <= f.NumClusters; id++ {
			for i, l := range f.Labels {
				if l == id && f.Trace.Bursts[i].Phase == 2 {
					return id
				}
			}
		}
		return 0
	}
	pa, pb := pivotOf(fa), pivotOf(fb)
	m := SequenceCorrelate(fa, fb, seqA, seqB, map[int]int{pa: 1}, map[int]int{pb: 1}, cfg)

	// Every non-pivot cluster of A must bind to the B cluster holding
	// the same ground-truth phase.
	for ida := 1; ida <= fa.NumClusters; ida++ {
		if ida == pa {
			continue
		}
		j, v := m.RowArgmax(ida)
		if v < 0.9 {
			t.Errorf("cluster %d weakly bound (%v)\n%s", ida, v, m)
			continue
		}
		phaseA := majorityPhase(fa, ida)
		phaseB := majorityPhase(fb, j)
		if phaseA != phaseB {
			t.Errorf("sequence bound phase %d to phase %d", phaseA, phaseB)
		}
	}
}

func majorityPhase(f *Frame, id int) int {
	counts := map[int]int{}
	for i, l := range f.Labels {
		if l == id {
			counts[f.Trace.Bursts[i].Phase]++
		}
	}
	best, bestN := 0, 0
	for p, n := range counts {
		if n > bestN {
			best, bestN = p, n
		}
	}
	return best
}

func TestStackTable(t *testing.T) {
	fa, fb, _ := twoFrames(t,
		mkTrace("x", 4, 4, simplePhases()),
		mkTrace("y", 4, 4, simplePhases()))
	table := StackTable(fa, fb)
	if len(table) != 2 {
		t.Fatalf("stack table entries = %d", len(table))
	}
	for ref, e := range table {
		if len(e[0]) != 1 || len(e[1]) != 1 {
			t.Errorf("ref %v has entries %v", ref, e)
		}
	}
}

func TestHasStacks(t *testing.T) {
	fa, _, _ := twoFrames(t,
		mkTrace("x", 4, 4, simplePhases()),
		mkTrace("y", 4, 4, simplePhases()))
	if !hasStacks(fa) {
		t.Error("frame with stacks reported none")
	}
	for _, ci := range fa.Clusters[1:] {
		ci.Stacks = map[trace.CallstackRef]int{}
	}
	if hasStacks(fa) {
		t.Error("stackless frame reported stacks")
	}
}

func TestTaskSequencesSampling(t *testing.T) {
	tr := mkTrace("x", 16, 2, simplePhases())
	cfg := testConfig()
	frames, err := BuildFrames([]*trace.Trace{tr}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seqs := taskSequences(frames[0], 4)
	if len(seqs) != 4 {
		t.Errorf("sampled %d sequences, want 4", len(seqs))
	}
	for _, s := range seqs {
		if len(s) != 4 { // 2 iterations x 2 phases
			t.Errorf("sequence length = %d, want 4", len(s))
		}
	}
	// Unlimited sampling returns every task.
	if got := len(taskSequences(frames[0], 0)); got != 16 {
		t.Errorf("unsampled sequences = %d", got)
	}
}
