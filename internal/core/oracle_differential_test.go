package core

import (
	"testing"

	"perftrack/internal/cluster"
	"perftrack/internal/oracle"
)

// Differential harness for the displacement evaluator: the parallel,
// grid-accelerated cross-classification must be bit-identical to the
// sequential linear-scan reference in internal/oracle. The per-worker
// tallies are integer-valued floats merged before the single division per
// row, so exact equality is the contract, not an approximation.

// frameFromScenario wraps a seeded point scenario as a minimal Frame: the
// displacement evaluator only consumes Norm, Labels and NumClusters.
func frameFromScenario(idx int, sc oracle.Scenario) *Frame {
	labels := cluster.DBSCAN(sc.Points, sc.Eps, sc.MinPts)
	k := 0
	for _, l := range labels {
		if l > k {
			k = l
		}
	}
	return &Frame{Index: idx, Norm: sc.Points, Labels: labels, NumClusters: k}
}

// scenarioWithDims returns the first scenario at or after seed whose
// points have the wanted dimensionality (frames of one pair must share a
// metric space).
func scenarioWithDims(seed uint64, dims int) oracle.Scenario {
	for {
		sc := oracle.GenScenario(seed)
		if len(sc.Points[0]) == dims {
			return sc
		}
		seed++
	}
}

func TestOracleDisplacementDifferential(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		scA := oracle.GenScenario(seed)
		dims := len(scA.Points[0])
		scB := scenarioWithDims(seed+1000, dims)
		a := frameFromScenario(0, scA)
		b := frameFromScenario(1, scB)

		got := Displacement(a, b, Config{})
		want := oracle.Displacement(a.Norm, a.Labels, a.NumClusters,
			b.Norm, b.Labels, b.NumClusters, 0.05)

		if len(got.P) != len(want) {
			t.Fatalf("seed %d: matrix has %d rows, oracle %d", seed, len(got.P), len(want))
		}
		for i := range want {
			for j := range want[i] {
				if got.P[i][j] != want[i][j] {
					t.Fatalf("seed %d: P[%d][%d] = %v, oracle says %v (aK=%d bK=%d)",
						seed, i, j, got.P[i][j], want[i][j], a.NumClusters, b.NumClusters)
				}
			}
		}
	}
}

func FuzzDisplacementDifferential(f *testing.F) {
	for seed := uint64(0); seed < 6; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		scA := oracle.GenScenario(seed)
		scB := scenarioWithDims(seed+1000, len(scA.Points[0]))
		a := frameFromScenario(0, scA)
		b := frameFromScenario(1, scB)
		got := Displacement(a, b, Config{})
		want := oracle.Displacement(a.Norm, a.Labels, a.NumClusters,
			b.Norm, b.Labels, b.NumClusters, 0.05)
		for i := range want {
			for j := range want[i] {
				if got.P[i][j] != want[i][j] {
					t.Fatalf("seed %d: P[%d][%d] = %v, oracle says %v",
						seed, i, j, got.P[i][j], want[i][j])
				}
			}
		}
	})
}
