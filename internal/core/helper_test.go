package core

import (
	"perftrack/internal/cluster"
	"perftrack/internal/metrics"
	"perftrack/internal/trace"
)

// phaseDef describes one synthetic phase for hand-built test traces. Each
// instance becomes one burst; IPC and Instr place it in the performance
// space, Stack links it to source code. PerRank optionally overrides
// (ipc, instr) for individual ranks — the hook used to fabricate bimodal
// and imbalanced regions.
type phaseDef struct {
	IPC     float64
	Instr   float64
	Stack   trace.CallstackRef
	PerRank func(rank int) (ipc, instr float64)
	// SkipRanks drops the phase on those ranks entirely.
	SkipRanks map[int]bool
}

func stackR(fn string, line int) trace.CallstackRef {
	return trace.CallstackRef{Function: fn, File: "test.f90", Line: line}
}

// mkTrace builds a fully deterministic SPMD trace: every iteration runs
// the phases in order, all ranks synchronising after each phase (barrier
// semantics, matching the simulator). The machine runs at 1 cycle/ns.
func mkTrace(label string, ranks, iters int, phases []phaseDef) *trace.Trace {
	t := &trace.Trace{Meta: trace.Metadata{App: "synthetic", Label: label, Ranks: ranks}}
	clock := make([]int64, ranks)
	for it := 0; it < iters; it++ {
		for pi, ph := range phases {
			var maxEnd int64
			for r := 0; r < ranks; r++ {
				if ph.SkipRanks[r] {
					if clock[r] > maxEnd {
						maxEnd = clock[r]
					}
					continue
				}
				ipc, instr := ph.IPC, ph.Instr
				if ph.PerRank != nil {
					ipc, instr = ph.PerRank(r)
				}
				cycles := instr / ipc
				b := trace.Burst{
					Task:       r,
					StartNS:    clock[r],
					DurationNS: int64(cycles),
					Stack:      ph.Stack,
					Phase:      pi + 1,
				}
				b.Counters[metrics.CtrInstructions] = instr
				b.Counters[metrics.CtrCycles] = cycles
				t.Bursts = append(t.Bursts, b)
				clock[r] += int64(cycles)
				if clock[r] > maxEnd {
					maxEnd = clock[r]
				}
			}
			for r := range clock {
				clock[r] = maxEnd + 1000
			}
		}
	}
	t.SortByTaskTime()
	return t
}

// testConfig returns a tracking configuration suited to the tight,
// noise-free synthetic traces.
func testConfig() Config {
	return Config{
		Cluster: cluster.Config{Eps: 0.07, MinPts: 3},
	}
}

// buildAndTrack is a convenience wrapper for end-to-end tests.
func buildAndTrack(cfg Config, traces ...*trace.Trace) (*Result, error) {
	frames, err := BuildFrames(traces, cfg)
	if err != nil {
		return nil, err
	}
	return NewTracker(cfg).Track(frames)
}
