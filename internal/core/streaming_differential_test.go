package core

import (
	"bytes"
	"context"
	"math/rand/v2"
	"testing"

	"perftrack/internal/cluster"
	"perftrack/internal/faults"
	"perftrack/internal/metrics"
	"perftrack/internal/oracle"
	"perftrack/internal/trace"
)

// streamingConfig varies the pipeline configuration so both the
// incremental index path and every seal-time fallback get exercised.
func streamingConfig(seed uint64) Config {
	switch seed % 4 {
	case 0: // incremental-eligible, the service default
		return Config{Cluster: cluster.Config{Eps: 0.07, MinPts: 5, MinClusterWeight: 0.002}}
	case 1: // incremental-eligible with duration filter + cluster caps
		return Config{
			Cluster:            cluster.Config{Eps: 0.1, MinPts: 4, MaxClusters: 6},
			MinBurstDurationNS: 1000,
		}
	case 2: // estimator fallback: data-driven eps needs the whole window
		return Config{Cluster: cluster.Config{MinPts: 4}}
	default: // top-duration filter forces the batch fallback too
		return Config{
			Cluster:         cluster.Config{Eps: 0.07, MinPts: 4},
			TopDurationFrac: 0.9,
		}
	}
}

// canonWindows clones every window trace and lays it out in canonical
// (Task, StartNS, Thread) order — the sealed-window order contract the
// batch side of the differential gate evaluates against.
func canonWindows(windows []*trace.Trace) []*trace.Trace {
	out := make([]*trace.Trace, len(windows))
	for i, w := range windows {
		c := w.Clone()
		c.SortByTaskTime()
		out[i] = c
	}
	return out
}

func exportBytes(t *testing.T, res *Result, cfg Config) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf, cfg.withDefaults().Metrics); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

// replayWindows drives the streaming ingest/evaluate split over the
// given windows, appending each window's bursts in a seeded random
// permutation, and returns the evaluation export after every window.
func replayWindows(t *testing.T, seed uint64, windows []*trace.Trace, cfg Config) [][]byte {
	t.Helper()
	st, err := NewSeqTracker(cfg)
	if err != nil {
		t.Fatalf("NewSeqTracker: %v", err)
	}
	rng := rand.New(rand.NewPCG(seed, 0x57f3a))
	var exports [][]byte
	for wi, w := range windows {
		wb, err := NewWindowBuilder(w.Meta, cfg)
		if err != nil {
			t.Fatalf("window %d: NewWindowBuilder: %v", wi, err)
		}
		for _, bi := range rng.Perm(len(w.Bursts)) {
			wb.Accept(w.Bursts[bi])
		}
		f, err := wb.Seal(wi)
		if err != nil {
			t.Fatalf("window %d: Seal: %v", wi, err)
		}
		if err := st.Append(f); err != nil {
			t.Fatalf("window %d: Append: %v", wi, err)
		}
		res, err := st.Evaluate(context.Background())
		if err != nil {
			t.Fatalf("window %d: Evaluate: %v", wi, err)
		}
		exports = append(exports, exportBytes(t, res, cfg))
	}
	return exports
}

// batchPrefix runs the batch pipeline over the first n canonical
// windows and returns the export bytes.
func batchPrefix(t *testing.T, canon []*trace.Trace, n int, cfg Config) []byte {
	t.Helper()
	frames, err := BuildFrames(canon[:n], cfg)
	if err != nil {
		t.Fatalf("prefix %d: BuildFrames: %v", n, err)
	}
	res, err := NewTracker(cfg).Track(frames)
	if err != nil {
		t.Fatalf("prefix %d: Track: %v", n, err)
	}
	return exportBytes(t, res, cfg)
}

// TestStreamingWindowDifferential is the heart of the streaming gate:
// replaying seeded traces window-by-window through the incremental
// split (WindowBuilder + SeqTracker) yields, after EVERY window, a
// result byte-identical with the batch pipeline run from scratch over
// the same window boundaries — across incremental-eligible and
// fallback configurations, with bursts appended in random order.
func TestStreamingWindowDifferential(t *testing.T) {
	for seed := uint64(0); seed < 24; seed++ {
		tr := oracle.GenTraces(seed, "stream", 4+int(seed%3), 6, 2+int(seed%2))
		windows := tr.SplitWindows(4 + int(seed%3))
		cfg := streamingConfig(seed)
		canon := canonWindows(windows)
		got := replayWindows(t, seed, windows, cfg)
		for n := 1; n <= len(windows); n++ {
			want := batchPrefix(t, canon, n, cfg)
			if !bytes.Equal(got[n-1], want) {
				t.Fatalf("seed %d: streaming export after window %d diverges from batch (%d vs %d bytes)",
					seed, n, len(got[n-1]), len(want))
			}
		}
	}
}

// TestStreamingFaultInjectionDifferential replays fault-injected traces:
// every in-memory injector at 10%% severity corrupts the trace before
// windowing, and the streaming replay must still match batch bit-exactly
// window by window — quarantine accounting included.
func TestStreamingFaultInjectionDifferential(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		base := oracle.GenTraces(seed, "faulty", 4, 6, 2)
		for fi, inj := range faults.TraceInjectors(0.10) {
			faulty, _ := inj.Apply(base, seed)
			windows := faulty.SplitWindows(4)
			cfg := streamingConfig(seed + uint64(fi))
			canon := canonWindows(windows)
			got := replayWindows(t, seed^uint64(fi)<<8, windows, cfg)
			for n := 1; n <= len(windows); n++ {
				want := batchPrefix(t, canon, n, cfg)
				if !bytes.Equal(got[n-1], want) {
					t.Fatalf("seed %d injector %s: streaming diverges after window %d", seed, inj.Name(), n)
				}
			}
		}
	}
}

// TestStreamingDegradedWindowsDifferential forces empty and collapsed
// windows into the stream (a window with zero bursts, windows arriving
// after quarantine removed everything) and checks the bridging and
// degraded accounting match batch.
func TestStreamingDegradedWindowsDifferential(t *testing.T) {
	tr := oracle.GenTraces(7, "gaps", 4, 6, 3)
	windows := tr.SplitWindows(5)
	// Empty one window entirely and poison another so quarantine drops
	// every burst (batch marks both degraded and bridges across).
	windows[1].Bursts = nil
	for i := range windows[3].Bursts {
		windows[3].Bursts[i].DurationNS = -1
	}
	for _, cfgSeed := range []uint64{0, 2} {
		cfg := streamingConfig(cfgSeed)
		canon := canonWindows(windows)
		got := replayWindows(t, 99+cfgSeed, windows, cfg)
		for n := 1; n <= len(windows); n++ {
			want := batchPrefix(t, canon, n, cfg)
			if !bytes.Equal(got[n-1], want) {
				t.Fatalf("cfg %d: degraded-window streaming diverges after window %d", cfgSeed, n)
			}
		}
	}
}

// TestWindowBuilderAcceptClassification pins the per-burst accept
// statuses against the batch quarantine/filter semantics.
func TestWindowBuilderAcceptClassification(t *testing.T) {
	cfg := Config{
		Cluster:            cluster.Config{Eps: 0.1, MinPts: 3},
		MinBurstDurationNS: 100,
	}
	meta := trace.Metadata{Label: "accept", Ranks: 2}
	wb, err := NewWindowBuilder(meta, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ctrs metrics.CounterVector
	ctrs[metrics.CtrInstructions] = 1e6
	ctrs[metrics.CtrCycles] = 1e6
	good := trace.Burst{Task: 0, StartNS: 10, DurationNS: 500, Counters: ctrs}
	if st, _ := wb.Accept(good); st != BurstAccepted {
		t.Fatalf("good burst: status %v", st)
	}
	short := good
	short.DurationNS = 50
	if st, _ := wb.Accept(short); st != BurstFiltered {
		t.Fatalf("short burst: status %v", st)
	}
	bad := good
	bad.Task = 7 // out of the 2-rank range
	st, fault := wb.Accept(bad)
	if st != BurstQuarantined || fault != "task-out-of-range" {
		t.Fatalf("bad burst: status %v fault %q", st, fault)
	}
	if wb.Len() != 1 {
		t.Fatalf("window holds %d bursts, want 1", wb.Len())
	}
	f, err := wb.Seal(0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Quarantined != 1 || f.QuarantinedBy["task-out-of-range"] != 1 {
		t.Fatalf("quarantine accounting: %d %v", f.Quarantined, f.QuarantinedBy)
	}
}
