package core

import (
	"fmt"
	"strings"
)

// Matrix is a correlation matrix between the objects of two frames (or of
// one frame with itself, for the SPMD evaluator): P[i][j] is the evidence
// that row-object i corresponds to column-object j, expressed as a
// probability in [0,1]. Row/column index 0 is unused; ids are 1-based like
// cluster identifiers.
type Matrix struct {
	// Name records which evaluator produced the matrix.
	Name string
	// RowFrame and ColFrame are the frame indices the axes refer to.
	RowFrame, ColFrame int
	// P holds the correlation values, P[rowID][colID], 1-based.
	P [][]float64
}

// NewMatrix allocates a rows×cols matrix (1-based, so the backing arrays
// have an extra slot).
func NewMatrix(name string, rowFrame, colFrame, rows, cols int) *Matrix {
	p := make([][]float64, rows+1)
	for i := range p {
		p[i] = make([]float64, cols+1)
	}
	return &Matrix{Name: name, RowFrame: rowFrame, ColFrame: colFrame, P: p}
}

// Rows and Cols return the 1-based dimensions.
func (m *Matrix) Rows() int { return len(m.P) - 1 }
func (m *Matrix) Cols() int {
	if len(m.P) == 0 {
		return 0
	}
	return len(m.P[0]) - 1
}

// At returns P[i][j], tolerating out-of-range ids (0).
func (m *Matrix) At(i, j int) float64 {
	if i <= 0 || i >= len(m.P) || j <= 0 || j >= len(m.P[i]) {
		return 0
	}
	return m.P[i][j]
}

// Set stores P[i][j], ignoring out-of-range ids.
func (m *Matrix) Set(i, j int, v float64) {
	if i <= 0 || i >= len(m.P) || j <= 0 || j >= len(m.P[i]) {
		return
	}
	m.P[i][j] = v
}

// Threshold zeroes every cell strictly below min: "occurrences with a very
// small probability (5% by default) are neglected as outliers".
func (m *Matrix) Threshold(min float64) {
	for i := 1; i < len(m.P); i++ {
		for j := 1; j < len(m.P[i]); j++ {
			if m.P[i][j] < min {
				m.P[i][j] = 0
			}
		}
	}
}

// NormalizeRows rescales every row to sum to 1 (rows summing to 0 are left
// untouched).
func (m *Matrix) NormalizeRows() {
	for i := 1; i < len(m.P); i++ {
		var sum float64
		for j := 1; j < len(m.P[i]); j++ {
			sum += m.P[i][j]
		}
		if sum == 0 {
			continue
		}
		for j := 1; j < len(m.P[i]); j++ {
			m.P[i][j] /= sum
		}
	}
}

// RowArgmax returns the column with the highest value in row i and that
// value (0, 0 when the row is empty).
func (m *Matrix) RowArgmax(i int) (int, float64) {
	bestJ, bestV := 0, 0.0
	if i <= 0 || i >= len(m.P) {
		return 0, 0
	}
	for j := 1; j < len(m.P[i]); j++ {
		if m.P[i][j] > bestV {
			bestJ, bestV = j, m.P[i][j]
		}
	}
	return bestJ, bestV
}

// NonZero returns all (row, col, value) cells above zero in row-major
// order.
func (m *Matrix) NonZero() []Cell {
	var out []Cell
	for i := 1; i < len(m.P); i++ {
		for j := 1; j < len(m.P[i]); j++ {
			if m.P[i][j] > 0 {
				out = append(out, Cell{Row: i, Col: j, Value: m.P[i][j]})
			}
		}
	}
	return out
}

// Cell is one non-zero entry of a correlation matrix.
type Cell struct {
	Row, Col int
	Value    float64
}

// String renders the matrix as a compact percentage table, in the style of
// the paper's Figure 3.
func (m *Matrix) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (frame %d rows x frame %d cols)\n", m.Name, m.RowFrame, m.ColFrame)
	sb.WriteString("      ")
	for j := 1; j <= m.Cols(); j++ {
		fmt.Fprintf(&sb, "%7s", fmt.Sprintf("B%d", j))
	}
	sb.WriteByte('\n')
	for i := 1; i <= m.Rows(); i++ {
		fmt.Fprintf(&sb, "A%-4d ", i)
		for j := 1; j <= m.Cols(); j++ {
			v := m.P[i][j]
			if v == 0 {
				sb.WriteString("      .")
			} else {
				fmt.Fprintf(&sb, "%6.0f%%", v*100)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
