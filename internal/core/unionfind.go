package core

// unionFind is a standard disjoint-set structure with path compression and
// union by size, used by the combiner to merge correlation evidence into
// relations.
type unionFind struct {
	parent []int
	size   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = uf.parent[x]
	}
	return x
}

// union merges the sets of a and b, returning true when they were
// previously distinct.
func (uf *unionFind) union(a, b int) bool {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return false
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
	return true
}

// groups returns the members of every set with more than zero elements,
// keyed by representative, with members in ascending order.
func (uf *unionFind) groups() map[int][]int {
	out := map[int][]int{}
	for i := range uf.parent {
		out[uf.find(i)] = append(out[uf.find(i)], i)
	}
	return out
}
